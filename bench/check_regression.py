#!/usr/bin/env python3
"""Compares a fresh benchmark baseline against the committed one.

Usage: check_regression.py baseline.json fresh.json [--threshold 0.15]

Exits non-zero if any benchmark present in both files regressed by
more than the threshold on its ns/op metric (ns_per_alloc or
ns_per_op, whichever the suite records). Benchmarks that appear only
on one side are reported but never fail the check — suites are allowed
to grow and shrink. Comparisons across build types are refused: a
debug-vs-release diff measures the compiler, not the change.
"""

import json
import sys

NS_KEYS = ("ns_per_alloc", "ns_per_op", "ns_per_page")


def load(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for r in data.get("results", []):
        # Thread- and size-family records share a name; the arg/thread
        # suffixes keep them distinct (and readable in the report).
        label = r["name"]
        if "arg" in r:
            label = f"{label}/{r['arg']}"
        if "threads" in r:
            label = f"{label}/threads:{r['threads']}"
        for key in NS_KEYS:
            if key in r:
                rows[label] = r[key]
                break
    return data, rows


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    threshold = 0.15
    argv = sys.argv[1:]
    if "--threshold" in argv:
        threshold = float(argv[argv.index("--threshold") + 1])
    base_path, fresh_path = args[0], args[1]

    base_data, base = load(base_path)
    fresh_data, fresh = load(fresh_path)

    base_bt = base_data.get("context", {}).get("build_type")
    fresh_bt = fresh_data.get("context", {}).get("build_type")
    # Baselines predating build-type recording compare as unknown.
    if base_bt and fresh_bt and base_bt != fresh_bt:
        print(
            f"error: build types differ ({base_bt} vs {fresh_bt}); "
            "refusing to compare"
        )
        return 2

    suite = fresh_data.get("benchmark", "?")
    failures = []
    print(f"{suite}: comparing {len(fresh)} fresh vs {len(base)} baseline "
          f"(threshold +{threshold:.0%})")
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            print(f"  {name:<32} new benchmark, no baseline")
            continue
        if name not in fresh:
            print(f"  {name:<32} dropped from suite")
            continue
        b, f = base[name], fresh[name]
        delta = (f - b) / b if b else 0.0
        flag = ""
        if delta > threshold:
            flag = "  REGRESSION"
            failures.append(name)
        print(f"  {name:<32} {b:>9.3f} -> {f:>9.3f} ns "
              f"({delta:+.1%}){flag}")

    if failures:
        print(f"{suite}: {len(failures)} regression(s) beyond "
              f"{threshold:.0%}: {', '.join(failures)}")
        return 1
    print(f"{suite}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
