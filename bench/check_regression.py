#!/usr/bin/env python3
"""Compares a fresh benchmark baseline against the committed one.

Usage: check_regression.py baseline.json fresh.json [--threshold 0.15]
       check_regression.py --self-test

Exits non-zero if any benchmark present in both files regressed by
more than the threshold on its ns/op metric (ns_per_alloc, ns_per_op,
ns_per_page or ns_per_request — whichever the suite records).
Benchmarks that appear only
on one side are reported but never fail the check — suites are allowed
to grow and shrink. Comparisons across build types are refused: a
debug-vs-release diff measures the compiler, not the change.

Exit codes: 0 ok, 1 regression(s), 2 refused (build types differ).
"""

import argparse
import json
import sys

NS_KEYS = ("ns_per_alloc", "ns_per_op", "ns_per_page", "ns_per_request")


def load(path):
    with open(path) as f:
        data = json.load(f)
    return data, extract_rows(data)


def extract_rows(data):
    rows = {}
    for r in data.get("results", []):
        # Thread- and size-family records share a name; the arg/thread
        # suffixes keep them distinct (and readable in the report).
        label = r["name"]
        if "arg" in r:
            label = f"{label}/{r['arg']}"
        if "threads" in r:
            label = f"{label}/threads:{r['threads']}"
        for key in NS_KEYS:
            if key in r:
                rows[label] = r[key]
                break
    return rows


def compare(base_data, fresh_data, threshold):
    base = extract_rows(base_data)
    fresh = extract_rows(fresh_data)

    base_bt = base_data.get("context", {}).get("build_type")
    fresh_bt = fresh_data.get("context", {}).get("build_type")
    # Baselines predating build-type recording compare as unknown.
    if base_bt and fresh_bt and base_bt != fresh_bt:
        print(
            f"error: build types differ ({base_bt} vs {fresh_bt}); "
            "refusing to compare"
        )
        return 2

    suite = fresh_data.get("benchmark", "?")
    failures = []
    print(f"{suite}: comparing {len(fresh)} fresh vs {len(base)} baseline "
          f"(threshold +{threshold:.0%})")
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            print(f"  {name:<32} new benchmark, no baseline")
            continue
        if name not in fresh:
            print(f"  {name:<32} dropped from suite")
            continue
        b, f = base[name], fresh[name]
        delta = (f - b) / b if b else 0.0
        flag = ""
        if delta > threshold:
            flag = "  REGRESSION"
            failures.append(name)
        print(f"  {name:<32} {b:>9.3f} -> {f:>9.3f} ns "
              f"({delta:+.1%}){flag}")

    if failures:
        print(f"{suite}: {len(failures)} regression(s) beyond "
              f"{threshold:.0%}: {', '.join(failures)}")
        return 1
    print(f"{suite}: ok")
    return 0


def self_test():
    """In-process checks of the comparison logic, including the
    argument-parsing regression this script once shipped: `--threshold
    0.2 a.json b.json` used to leak "0.2" into the positional
    arguments and compare the wrong files."""

    def suite(ns_by_name, build_type="Release", key="ns_per_op"):
        return {
            "benchmark": "selftest",
            "context": {"build_type": build_type},
            "results": [
                {"name": n, key: v} for n, v in ns_by_name.items()
            ],
        }

    failures = []

    def check(name, got, want):
        status = "ok" if got == want else f"FAIL (got {got}, want {want})"
        print(f"self-test: {name:<42} {status}")
        if got != want:
            failures.append(name)

    base = suite({"BM_a": 10.0, "BM_b": 5.0})
    check("identical suites pass",
          compare(base, suite({"BM_a": 10.0, "BM_b": 5.0}), 0.15), 0)
    check("20% regression fails at 15%",
          compare(base, suite({"BM_a": 12.0, "BM_b": 5.0}), 0.15), 1)
    check("20% regression passes at 25%",
          compare(base, suite({"BM_a": 12.0, "BM_b": 5.0}), 0.25), 0)
    check("improvement passes",
          compare(base, suite({"BM_a": 7.0, "BM_b": 5.0}), 0.15), 0)
    check("added/dropped benchmarks never fail",
          compare(base, suite({"BM_a": 10.0, "BM_c": 99.0}), 0.15), 0)
    check("build-type mismatch refused",
          compare(base, suite({"BM_a": 10.0}, build_type="Debug"), 0.15), 2)

    # The server (rpool) suite records ns_per_request: the pooled and
    # reset request-cycle rows must be extracted and compared like any
    # other ns metric, not silently skipped as unknown keys.
    pool_base = suite({"BM_RequestCyclePooled/4096": 30.0,
                       "BM_RequestCycleNew/4096": 90.0},
                      key="ns_per_request")
    check("ns_per_request rows extracted",
          len(extract_rows(pool_base)), 2)
    check("pooled-cycle suite identical passes",
          compare(pool_base, pool_base, 0.15), 0)
    check("pooled-cycle regression caught",
          compare(pool_base,
                  suite({"BM_RequestCyclePooled/4096": 60.0,
                         "BM_RequestCycleNew/4096": 90.0},
                        key="ns_per_request"), 0.15), 1)

    # The parser itself: an option value must not become a positional.
    ns = parse_args(["--threshold", "0.2", "base.json", "fresh.json"])
    check("option value not eaten as positional",
          (ns.baseline, ns.fresh, ns.threshold),
          ("base.json", "fresh.json", 0.2))
    ns = parse_args(["base.json", "fresh.json", "--threshold", "0.3"])
    check("trailing --threshold accepted",
          (ns.baseline, ns.fresh, ns.threshold),
          ("base.json", "fresh.json", 0.3))
    ns = parse_args(["base.json", "fresh.json"])
    check("default threshold", ns.threshold, 0.15)

    if failures:
        print(f"self-test: {len(failures)} check(s) failed")
        return 1
    print("self-test: all checks passed")
    return 0


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", nargs="?", help="committed BENCH_*.json")
    parser.add_argument("fresh", nargs="?", help="freshly distilled JSON")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed ns/op growth fraction (default 0.15)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the script's own checks and exit")
    return parser.parse_args(argv)


def main():
    ns = parse_args(sys.argv[1:])
    if ns.self_test:
        return self_test()
    if not ns.baseline or not ns.fresh:
        print("error: baseline and fresh JSON paths are required")
        return 2
    base_data, _ = load(ns.baseline)
    fresh_data, _ = load(ns.fresh)
    return compare(base_data, fresh_data, ns.threshold)


if __name__ == "__main__":
    sys.exit(main())
