#!/usr/bin/env python3
"""Validates the JSON artifacts the rstat observability layer emits.

Usage: validate_trace.py [--trace trace.json] [--metrics rstat_metrics.json]

Checks that the trace file is well-formed Chrome trace-event JSON
(the Perfetto / chrome://tracing interchange format) containing only
the rstat event vocabulary with sane payloads — instant lifecycle
events plus the derived live-regions/live-bytes/pooled-regions
counter tracks — and
that the metrics file carries every section and counter invariant a
MetricsSnapshot guarantees. Either artifact may be validated alone.
Exits 0 when everything given passes, 1 otherwise.
"""

import argparse
import json
import sys

EVENT_NAMES = {
    "newregion",
    "deleteregion",
    "deleteregion-refused",
    "run-grab",
    "run-free",
    "coalesce-sweep",
    "pending-flush",
    "quarantine-evict",
    "share",
    "trydelete",
    "trydelete-refused",
    "resolve-stale",
    "quiesce",
    "trydelete-handoff",
    "resetregion",
    "resetregion-refused",
    "pool-acquire",
    "pool-release",
    "pool-trim",
}

# Derived heap-shape counter tracks ("C" phase events): name -> the
# args series key carrying the running value.
COUNTER_NAMES = {
    "live-regions": "regions",
    "live-bytes": "bytes",
    "pooled-regions": "regions",
}

MANAGER_KEYS = [
    "totalAllocs", "totalRequestedBytes", "liveRequestedBytes",
    "maxLiveRequestedBytes", "totalRegions", "liveRegions",
    "maxLiveRegions", "maxRegionBytes", "deleteAttempts",
    "deleteFailures", "resetRegions", "resetRefusals",
    "cleanupThunksRun", "barrierStores",
    "barrierSameRegion", "barrierAdjustments",
]

POOL_KEYS = ["hits", "misses", "releases", "trims"]

PAGESOURCE_KEYS = [
    "osBytes", "inUseBytes", "reservedPages", "frontierPages",
    "freeListedPages", "cachedSinglePages", "quarantinedPages",
    "coalesceSweeps", "quarantineEvictions",
]

HISTOGRAM_KEYS = [
    "regionSizeClasses", "liveRegionSizeClasses", "regionLifetimes",
]


def fail(errors, msg):
    errors.append(msg)


def validate_trace(path, errors):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("displayTimeUnit") != "ns":
        fail(errors, "trace: displayTimeUnit is not 'ns'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, "trace: traceEvents missing or not a list")
        return 0
    if not events:
        fail(errors, "trace: no events recorded (armed run expected some)")
    per_tid_ts = {}
    counters = 0
    counter_tracks = set()
    for i, e in enumerate(events):
        where = f"trace event #{i}"
        if e.get("cat") != "region":
            fail(errors, f"{where}: cat is not 'region'")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(errors, f"{where}: bad ts {ts!r}")
        if not isinstance(e.get("tid"), int):
            fail(errors, f"{where}: bad tid {e.get('tid')!r}")
        args = e.get("args")
        if e.get("ph") == "C":
            # Derived heap-shape counter: value must be the track's
            # series key, a non-negative integer (the exporter clamps).
            counters += 1
            counter_tracks.add(e.get("name"))
            series = COUNTER_NAMES.get(e.get("name"))
            if series is None:
                fail(errors, f"{where}: unknown counter {e.get('name')!r}")
            elif (not isinstance(args, dict)
                    or not isinstance(args.get(series), int)
                    or args[series] < 0):
                fail(errors, f"{where}: counter args must carry a "
                             f"non-negative integer {series!r}")
            continue
        if e.get("name") not in EVENT_NAMES:
            fail(errors, f"{where}: unknown event name {e.get('name')!r}")
        if e.get("ph") != "i":
            fail(errors, f"{where}: ph is not 'i' (instant)")
        if e.get("s") != "t":
            fail(errors, f"{where}: scope is not 't' (thread)")
        if (not isinstance(args, dict)
                or not isinstance(args.get("a"), int)
                or not isinstance(args.get("b"), int)):
            fail(errors, f"{where}: args must carry integer a and b")
        # Per-ring order: each thread's ring is exported oldest-first,
        # so timestamps must be non-decreasing within one tid.
        tid = e.get("tid")
        if isinstance(ts, (int, float)) and isinstance(tid, int):
            if ts < per_tid_ts.get(tid, 0):
                fail(errors, f"{where}: ts goes backwards within tid {tid}")
            per_tid_ts[tid] = ts
    names = {e.get("name") for e in events}
    for expected in ("newregion", "deleteregion", "run-grab", "run-free"):
        if expected not in names:
            fail(errors, f"trace: no {expected!r} event in an armed "
                         "region workload run")
    if "newregion" in names and counters == 0:
        fail(errors, "trace: no derived counter events ('C' phase) in a "
                     "trace with region lifecycle instants")
    if "pool-release" in names and "pooled-regions" not in counter_tracks:
        fail(errors, "trace: pool lifecycle instants present but no "
                     "'pooled-regions' counter track derived from them")
    return len(events)


def validate_metrics(path, errors):
    with open(path) as f:
        doc = json.load(f)
    mgr = doc.get("manager")
    pool = doc.get("pool")
    src = doc.get("pageSource")
    hist = doc.get("histograms")
    for section, keys, name in ((mgr, MANAGER_KEYS, "manager"),
                                (pool, POOL_KEYS, "pool"),
                                (src, PAGESOURCE_KEYS, "pageSource")):
        if not isinstance(section, dict):
            fail(errors, f"metrics: missing {name!r} section")
            continue
        for k in keys:
            if not isinstance(section.get(k), int) or section[k] < 0:
                fail(errors, f"metrics: {name}.{k} missing or not a "
                             "non-negative integer")
    if not isinstance(hist, dict):
        fail(errors, "metrics: missing 'histograms' section")
        return
    buckets = hist.get("logBuckets")
    for k in HISTOGRAM_KEYS:
        h = hist.get(k)
        if not isinstance(h, list) or len(h) != buckets:
            fail(errors, f"metrics: histograms.{k} missing or wrong length")
        elif any((not isinstance(v, int)) or v < 0 for v in h):
            fail(errors, f"metrics: histograms.{k} has non-count entries")
    if not (isinstance(mgr, dict) and isinstance(hist, dict)):
        return
    # Cross-section invariants.
    if isinstance(hist.get("regionSizeClasses"), list):
        total = sum(hist["regionSizeClasses"])
        if total != mgr.get("totalRegions"):
            fail(errors, "metrics: regionSizeClasses does not sum to "
                         f"totalRegions ({total} vs {mgr.get('totalRegions')})")
        live = sum(hist.get("liveRegionSizeClasses", []))
        if live != mgr.get("liveRegions"):
            fail(errors, "metrics: liveRegionSizeClasses does not sum to "
                         f"liveRegions ({live} vs {mgr.get('liveRegions')})")
        lifetimes = sum(hist.get("regionLifetimes", []))
        if lifetimes != mgr.get("totalRegions") - mgr.get("liveRegions"):
            fail(errors, "metrics: regionLifetimes does not sum to deleted "
                         "regions")
    if isinstance(src, dict):
        if src.get("inUseBytes", 0) > src.get("osBytes", 1 << 62):
            fail(errors, "metrics: inUseBytes exceeds osBytes")
        if src.get("frontierPages", 0) > src.get("reservedPages", 1 << 62):
            fail(errors, "metrics: frontierPages exceeds reservedPages")
    if mgr.get("deleteFailures", 0) > mgr.get("deleteAttempts", 0):
        fail(errors, "metrics: deleteFailures exceeds deleteAttempts")
    if mgr.get("liveRegions", 0) > mgr.get("totalRegions", 0):
        fail(errors, "metrics: liveRegions exceeds totalRegions")
    if isinstance(pool, dict):
        # Pool counter tracks: every hit pops an entry a release once
        # parked, and every park was preceded by a successful in-place
        # reset, so the manager's resetRegions bounds releases.
        if pool.get("hits", 0) > pool.get("releases", 0):
            fail(errors, "metrics: pool.hits exceeds pool.releases")
        if pool.get("releases", 0) > mgr.get("resetRegions", 0):
            fail(errors, "metrics: pool.releases exceeds "
                         "manager.resetRegions")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace JSON")
    parser.add_argument("--metrics", help="metrics JSON")
    ns = parser.parse_args()
    if not ns.trace and not ns.metrics:
        parser.error("at least one of --trace / --metrics is required")

    errors = []
    n = validate_trace(ns.trace, errors) if ns.trace else 0
    if ns.metrics:
        validate_metrics(ns.metrics, errors)
    for e in errors:
        print(f"error: {e}")
    if errors:
        print(f"validate_trace: {len(errors)} problem(s)")
        return 1
    print(f"validate_trace: ok ({n} trace events, given artifacts valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
