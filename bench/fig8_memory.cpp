//===- bench/fig8_memory.cpp - Figure 8: memory overhead -----------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Regenerates Figure 8: for every benchmark, the memory each allocator
// requests from the OS next to the memory the programmer requested.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TableWriter.h"

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

int main() {
  printBanner("Figure 8: memory overhead (kbytes from the OS)", "Figure 8");

  WorkloadOptions Opt = defaultOptions();
  const BackendKind Allocators[] = {BackendKind::Sun, BackendKind::Bsd,
                                    BackendKind::Lea, BackendKind::Gc,
                                    BackendKind::RegionSafe};

  TableWriter T({"name", "requested", "sun", "bsd", "lea", "gc", "reg",
                 "best", "reg vs best"});
  for (WorkloadId W : kAllWorkloads) {
    std::vector<std::string> Row;
    Row.push_back(workloadName(W));
    double Os[5] = {};
    double Requested = 0;
    for (int I = 0; I != 5; ++I) {
      RunResult R = runWorkload(W, Allocators[I], Opt);
      Os[I] = static_cast<double>(R.OsBytes) / 1024.0;
      if (Allocators[I] == BackendKind::RegionSafe)
        Requested = static_cast<double>(R.MaxLiveRequestedBytes) / 1024.0;
    }
    Row.push_back(TableWriter::fmt(Requested, 1));
    double Best = Os[0];
    int BestIdx = 0;
    for (int I = 0; I != 5; ++I) {
      Row.push_back(TableWriter::fmt(Os[I], 1));
      if (Os[I] < Best && I != 4) { // best among non-region allocators
        Best = Os[I];
        BestIdx = I;
      }
    }
    Row.push_back(backendName(Allocators[BestIdx]));
    Row.push_back(TableWriter::fmtPercentOf(Os[4], Best));
    T.addRow(Row);
  }
  T.print();
  std::printf(
      "\nPaper shape: regions rank first or second everywhere (9%% less to\n"
      "19%% more than Lea); BSD and the collector use far more memory than\n"
      "the others, often several times the requested amount.\n");
  return 0;
}
