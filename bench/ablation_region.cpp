//===- bench/ablation_region.cpp - Design-choice ablations ---------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Ablations for the design choices DESIGN.md calls out:
//  - zeroing of scanned allocations (paper: required for safety),
//  - temp-region rotation granularity in cfrac ("every few iterations"),
//  - the moss two-region locality split (§5.5),
//  - GC heap headroom (§1: "garbage collection ... can be very
//    efficient if the application only uses a fraction of available
//    memory. When an application needs most of the available memory,
//    however, performance degrades").
//
//===----------------------------------------------------------------------===//

#include "alloc/BumpAllocator.h"
#include "backend/Models.h"
#include "gc/GcHeap.h"
#include "region/Regions.h"
#include "workloads/Cfrac.h"
#include "workloads/Moss.h"

#include <benchmark/benchmark.h>

using namespace regions;
using namespace regions::workloads;

namespace {

void BM_ZeroMemory(benchmark::State &State) {
  SafetyConfig Cfg = SafetyConfig::safeConfig();
  Cfg.ZeroMemory = State.range(0) != 0;
  RegionManager Mgr{Cfg, std::size_t{1} << 30};
  ScanThunk Thunk = [](void *) -> std::size_t { return 64; };
  for (auto _ : State) {
    Region *R = Mgr.newRegion();
    for (int I = 0; I != 1024; ++I)
      benchmark::DoNotOptimize(Mgr.allocScanned(R, 64, Thunk));
    Mgr.deleteRegionRaw(R);
  }
  State.SetLabel(Cfg.ZeroMemory ? "zeroing on" : "zeroing off");
}
BENCHMARK(BM_ZeroMemory)->Arg(0)->Arg(1);

void BM_CfracRotation(benchmark::State &State) {
  for (auto _ : State) {
    RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{1} << 30};
    RegionModel Mem(Mgr);
    CfracOptions Opt;
    Opt.Decimal = "10967535067";
    Opt.FactorBaseSize = 30;
    Opt.IterationsPerTempRegion = static_cast<unsigned>(State.range(0));
    CfracResult R = runCfrac(Mem, Opt);
    benchmark::DoNotOptimize(R.checksum());
  }
  State.SetLabel("iterations per temp region");
}
BENCHMARK(BM_CfracRotation)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_MossSplit(benchmark::State &State) {
  for (auto _ : State) {
    RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{1} << 30};
    RegionModel Mem(Mgr);
    MossOptions Opt;
    Opt.NumDocs = 30;
    Opt.SplitRegions = State.range(0) != 0;
    MossResult R = runMoss(Mem, Opt);
    benchmark::DoNotOptimize(R.TotalMatches);
  }
  State.SetLabel(State.range(0) ? "two regions (5.5)" : "one region (slow)");
}
BENCHMARK(BM_MossSplit)->Arg(0)->Arg(1);

/// GC cost as a function of heap headroom: growth factor 0.25 means
/// the collector runs with barely more memory than is live (the
/// paper's "needs most of the available memory" regime); 4.0 is ample.
void BM_GcHeadroom(benchmark::State &State) {
  double Factor = static_cast<double>(State.range(0)) / 4.0;
  for (auto _ : State) {
    GcHeap Heap(std::size_t{1} << 28);
    Heap.setScanMachineStack(true);
    Heap.captureStackBottom();
    Heap.setGrowthFactor(Factor);
    // List churn with a live core: the classic GC workload.
    struct Node {
      Node *Next;
      std::uint64_t Pad[6];
    };
    // A live core big enough that every mark phase costs real work:
    // this is what makes tight heaps expensive (the paper's point).
    Node *Live = nullptr;
    for (int I = 0; I != 60000; ++I) { // live core (~3.4 MB)
      auto *N = static_cast<Node *>(Heap.malloc(sizeof(Node)));
      N->Next = Live;
      Live = N;
    }
    for (int I = 0; I != 120000; ++I) { // garbage churn
      auto *N = static_cast<Node *>(Heap.malloc(sizeof(Node)));
      benchmark::DoNotOptimize(N);
    }
    benchmark::DoNotOptimize(Live);
    State.counters["collections"] =
        static_cast<double>(Heap.gcStats().Collections);
  }
  State.SetLabel("growth factor x4");
}
BENCHMARK(BM_GcHeadroom)->Arg(1)->Arg(4)->Arg(16);

/// Region-header cache offsetting is baked into newRegion (64-byte
/// steps); this measures region creation/deletion throughput, which is
/// where the offsets matter.
void BM_RegionChurn(benchmark::State &State) {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{1} << 30};
  for (auto _ : State) {
    Region *Rs[16];
    for (auto *&R : Rs) {
      R = Mgr.newRegion();
      Mgr.allocRaw(R, 100);
    }
    for (auto *&R : Rs)
      Mgr.deleteRegionRaw(R);
  }
  State.SetItemsProcessed(State.iterations() * 16);
}
BENCHMARK(BM_RegionChurn);

} // namespace

BENCHMARK_MAIN();
