//===- bench/micro_alloc.cpp - Microbenchmarks of primitive costs --------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Quantifies the paper's §1 claim: region "allocation is about twice as
// fast [as malloc] and deallocation is much faster", plus the costs of
// the individual safety primitives (write barrier paths, frame
// push/pop, regionOf).
//
//===----------------------------------------------------------------------===//

#include "alloc/BestFitAllocator.h"
#include "alloc/LeaAllocator.h"
#include "alloc/PowerOfTwoAllocator.h"
#include "region/Regions.h"

#include <benchmark/benchmark.h>

using namespace regions;

namespace {

constexpr std::size_t kObjectBytes = 32;
constexpr int kBatch = 1024;

void BM_RegionAlloc(benchmark::State &State) {
  RegionManager Mgr{SafetyConfig::unsafeConfig(), std::size_t{1} << 30};
  for (auto _ : State) {
    Region *R = Mgr.newRegion();
    for (int I = 0; I != kBatch; ++I)
      benchmark::DoNotOptimize(Mgr.allocRaw(R, kObjectBytes));
    Mgr.deleteRegionRaw(R);
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_RegionAlloc);

void BM_RegionAllocSafe(benchmark::State &State) {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{1} << 30};
  ScanThunk Thunk = [](void *) -> std::size_t { return kObjectBytes; };
  for (auto _ : State) {
    Region *R = Mgr.newRegion();
    for (int I = 0; I != kBatch; ++I)
      benchmark::DoNotOptimize(Mgr.allocScanned(R, kObjectBytes, Thunk));
    Mgr.deleteRegionRaw(R);
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_RegionAllocSafe);

/// Raw (pointer-free) allocation under the safe configuration: the str
/// side has no headers or clearing, so safety should cost nothing here.
void BM_RegionAllocSafeRaw(benchmark::State &State) {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{1} << 30};
  for (auto _ : State) {
    Region *R = Mgr.newRegion();
    for (int I = 0; I != kBatch; ++I)
      benchmark::DoNotOptimize(Mgr.allocRaw(R, kObjectBytes));
    Mgr.deleteRegionRaw(R);
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_RegionAllocSafeRaw);

/// Cleared pointer-free allocation (rnewArray's trivial path): on
/// never-recycled pages the clear is free.
void BM_RegionAllocZeroedRaw(benchmark::State &State) {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{1} << 30};
  for (auto _ : State) {
    Region *R = Mgr.newRegion();
    for (int I = 0; I != kBatch; ++I)
      benchmark::DoNotOptimize(Mgr.allocRawZeroed(R, kObjectBytes));
    Mgr.deleteRegionRaw(R);
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_RegionAllocZeroedRaw);

template <class Allocator> void BM_MallocFree(benchmark::State &State) {
  Allocator A(std::size_t{1} << 28);
  void *Ptrs[kBatch];
  for (auto _ : State) {
    for (int I = 0; I != kBatch; ++I) {
      Ptrs[I] = A.malloc(kObjectBytes);
      benchmark::DoNotOptimize(Ptrs[I]);
    }
    for (int I = 0; I != kBatch; ++I)
      A.free(Ptrs[I]);
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_MallocFree<BestFitAllocator>)->Name("BM_MallocFree_sun");
BENCHMARK(BM_MallocFree<PowerOfTwoAllocator>)->Name("BM_MallocFree_bsd");
BENCHMARK(BM_MallocFree<LeaAllocator>)->Name("BM_MallocFree_lea");

/// Deallocation comparison: deleting one region vs freeing its objects
/// one by one (the "deallocation is much faster" claim).
void BM_RegionBulkDelete(benchmark::State &State) {
  RegionManager Mgr{SafetyConfig::unsafeConfig(), std::size_t{1} << 30};
  for (auto _ : State) {
    Region *R = Mgr.newRegion();
    for (int I = 0; I != kBatch; ++I)
      Mgr.allocRaw(R, kObjectBytes);
    Mgr.deleteRegionRaw(R); // timed together; deletion is O(pages)
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_RegionBulkDelete);

void BM_WriteBarrierSameRegion(benchmark::State &State) {
  RegionManager Mgr;
  struct Node {
    RegionPtr<Node> Next;
  };
  Region *R = Mgr.newRegion();
  Node *A = rnew<Node>(R);
  Node *B = rnew<Node>(R);
  for (auto _ : State) {
    A->Next = B; // sameregion: never counted
    benchmark::DoNotOptimize(A);
  }
}
BENCHMARK(BM_WriteBarrierSameRegion);

void BM_WriteBarrierCrossRegion(benchmark::State &State) {
  RegionManager Mgr;
  struct Node {
    RegionPtr<Node> Next;
  };
  Region *R1 = Mgr.newRegion();
  Region *R2 = Mgr.newRegion();
  Region *R3 = Mgr.newRegion();
  Node *A = rnew<Node>(R1);
  Node *B = rnew<Node>(R2);
  Node *C = rnew<Node>(R3);
  bool Flip = false;
  for (auto _ : State) {
    A->Next = Flip ? B : C; // decrement + increment every time
    Flip = !Flip;
    benchmark::DoNotOptimize(A);
  }
}
BENCHMARK(BM_WriteBarrierCrossRegion);

void BM_RegionOf(benchmark::State &State) {
  RegionManager Mgr;
  Region *R = Mgr.newRegion();
  void *P = Mgr.allocRaw(R, 64);
  for (auto _ : State)
    benchmark::DoNotOptimize(regionOf(P));
}
BENCHMARK(BM_RegionOf);

/// Worst case for the hot-arena cache: pointers from two managers
/// alternate, so every lookup misses the cached arena and takes the
/// out-of-line registry scan.
void BM_RegionOfAlternatingArenas(benchmark::State &State) {
  RegionManager Mgr1{SafetyConfig::safeConfig(), std::size_t{64} << 20};
  RegionManager Mgr2{SafetyConfig::safeConfig(), std::size_t{64} << 20};
  void *P1 = Mgr1.allocRaw(Mgr1.newRegion(), 64);
  void *P2 = Mgr2.allocRaw(Mgr2.newRegion(), 64);
  for (auto _ : State) {
    benchmark::DoNotOptimize(regionOf(P1));
    benchmark::DoNotOptimize(regionOf(P2));
  }
}
BENCHMARK(BM_RegionOfAlternatingArenas);

void BM_FramePushPop(benchmark::State &State) {
  for (auto _ : State) {
    rt::Frame F;
    benchmark::DoNotOptimize(&F);
  }
}
BENCHMARK(BM_FramePushPop);

void BM_LocalRefWrite(benchmark::State &State) {
  RegionManager Mgr;
  rt::Frame F;
  Region *R = Mgr.newRegion();
  int *P = rnew<int>(R, 7);
  rt::Ref<int> Local;
  for (auto _ : State) {
    Local = P; // deferred: no count updates
    benchmark::DoNotOptimize(Local.get());
    Local = nullptr;
  }
}
BENCHMARK(BM_LocalRefWrite);

void BM_DeleteRegionWithStackScan(benchmark::State &State) {
  RegionManager Mgr;
  rt::Frame F;
  // A handful of live locals pointing at a long-lived region.
  Region *Keep = Mgr.newRegion();
  rt::Ref<int> L1 = rnew<int>(Keep, 1);
  rt::Ref<int> L2 = rnew<int>(Keep, 2);
  rt::Ref<int> L3 = rnew<int>(Keep, 3);
  for (auto _ : State) {
    rt::Frame Inner;
    rt::RegionHandle R = Mgr.newRegion();
    rnew<int>(R, 4);
    benchmark::DoNotOptimize(deleteRegion(R));
  }
  (void)L1;
  (void)L2;
  (void)L3;
}
BENCHMARK(BM_DeleteRegionWithStackScan);

} // namespace

BENCHMARK_MAIN();
