//===- bench/fig10_stalls.cpp - Figure 10: cycles lost to stalls ----------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Regenerates Figure 10: processor cycles lost to read and write
// stalls per benchmark and allocator. The paper reads the
// UltraSparc-I's internal counters; we feed each workload's data
// accesses (on the real addresses each allocator returned) through a
// two-level cache model of the same machine (see cachesim/CacheSim.h).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TableWriter.h"

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

int main() {
  printBanner("Figure 10: processor cycles lost to stalls (simulated)",
              "Figure 10");

  WorkloadOptions Opt = defaultOptions();
  Opt.TouchTracing = true;
  const BackendKind Allocators[] = {BackendKind::Sun, BackendKind::Bsd,
                                    BackendKind::Lea, BackendKind::Gc,
                                    BackendKind::RegionSafe};

  TableWriter T({"name", "allocator", "read stalls", "write stalls",
                 "total (k cycles)", "l1 misses", "l2 misses"});
  auto AddRow = [&](WorkloadId W, const char *Name, const RunResult &R) {
    T.addRow({workloadName(W), Name,
              TableWriter::fmt(R.Cache.ReadStallCycles / 1000),
              TableWriter::fmt(R.Cache.WriteStallCycles / 1000),
              TableWriter::fmt(R.Cache.totalStallCycles() / 1000),
              TableWriter::fmt(R.Cache.L1Misses),
              TableWriter::fmt(R.Cache.L2Misses)});
  };
  for (WorkloadId W : kAllWorkloads) {
    for (BackendKind B : Allocators) {
      RunResult R = runWorkload(W, B, Opt);
      AddRow(W, backendName(B), R);
    }
    if (W == WorkloadId::Moss) {
      WorkloadOptions Slow = Opt;
      Slow.MossSplitRegions = false;
      RunResult R = runWorkload(W, BackendKind::RegionSafe, Slow);
      AddRow(W, "reg-slow", R);
    }
  }
  T.print();
  std::printf(
      "\nPaper shape: the optimized moss (reg) shows roughly half the\n"
      "stalls of the unoptimized version (reg-slow); BSD's size-class\n"
      "segregation tends to stall less than the other explicit\n"
      "allocators.\n");
  return 0;
}
