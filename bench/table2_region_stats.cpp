//===- bench/table2_region_stats.cpp - Table 2: allocation w/ regions ----===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Regenerates Table 2: the allocation behaviour of the region-based
// version of every benchmark — total allocations, total and maximum
// kbytes, and the region population/size columns.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TableWriter.h"

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

int main(int argc, char **argv) {
  ObservabilityConfig Obs = parseObservabilityArgs(argc, argv);
  printBanner("Table 2: allocation behaviour with regions", "Table 2");
  Obs.armIfRequested();

  WorkloadOptions Opt = defaultOptions();
  // --metrics/--trace report on the last workload's manager (rstat is
  // per-manager; the trace spans all six runs).
  MetricsSnapshot Metrics;
  if (Obs.MetricsRequested)
    Opt.CaptureMetrics = &Metrics;
  TableWriter T({"name", "total allocs", "total kbytes", "max kbytes",
                 "total regions", "max regions", "max kbytes in region",
                 "avg kbytes per region", "avg allocs per region"});
  for (WorkloadId W : kAllWorkloads) {
    RunResult R = runWorkload(W, BackendKind::RegionSafe, Opt);
    double AvgKb = R.TotalRegions
                       ? static_cast<double>(R.TotalRequestedBytes) /
                             (1024.0 * static_cast<double>(R.TotalRegions))
                       : 0.0;
    double AvgAllocs =
        R.TotalRegions ? static_cast<double>(R.TotalAllocs) /
                             static_cast<double>(R.TotalRegions)
                       : 0.0;
    T.addRow({workloadName(W), TableWriter::fmt(R.TotalAllocs),
              TableWriter::fmtKb(R.TotalRequestedBytes),
              TableWriter::fmtKb(R.MaxLiveRequestedBytes),
              TableWriter::fmt(R.TotalRegions),
              TableWriter::fmt(R.MaxLiveRegions),
              TableWriter::fmtKb(R.MaxRegionBytes),
              TableWriter::fmt(AvgKb, 2), TableWriter::fmt(AvgAllocs, 1)});
  }
  T.print();
  std::printf(
      "\nPaper shape: cfrac allocates the most objects by far; regions are\n"
      "numerous and small for cfrac/grobner/mudlle, few and large for\n"
      "lcc/moss; max live regions stays in single digits to low tens.\n");
  Obs.report(Metrics);
  return 0;
}
