#!/bin/sh
# Regression harness for the allocation and write-barrier
# microbenchmarks.
#
# Configures and builds a Release tree (numbers from unoptimized
# binaries are meaningless and have been published by accident before:
# the build type now comes from CMakeCache.txt, not from whatever the
# benchmark library claims), runs bench/micro_alloc, bench/barrier,
# bench/parallel, bench/teardown and bench/server in JSON mode, and
# distils the results into BENCH_micro_alloc.json / BENCH_barrier.json
# / BENCH_parallel.json / BENCH_teardown.json / BENCH_server.json: one
# record per benchmark with ns/op (items-per-second inverted; ns per
# page freed for the teardown suite, ns per request for the rpool
# server suite) so successive runs can be diffed by eye or by CI.
# The safe/unsafe split mirrors the paper's Figure 11 axis.
#
# Usage: bench/run_benchmarks.sh [--check] [--suite NAME] [build-dir]
#                                [output-dir]
#   --check    after measuring, compare against the committed
#              BENCH_*.json baselines with bench/check_regression.py
#              (>15% regression on any ns/op fails).
#   --suite    run (and under --check, compare) only the named suite:
#              micro_alloc, barrier, parallel, teardown, server or
#              metrics. Default: everything.
#   build-dir  defaults to build-release (configured on demand).
#   output-dir defaults to the repository root (i.e. refresh the
#              committed baselines in place); under --check it defaults
#              to a temporary directory so the committed baselines
#              survive as the comparison reference.
#
# Publishing from a non-Release tree is refused; set ALLOW_DEBUG=1 to
# override for local experiments (the JSON is then watermarked).
set -eu

CHECK=0
SUITE=all
while :; do
  case "${1:-}" in
  --check)
    CHECK=1
    shift
    ;;
  --suite)
    SUITE=${2:?error: --suite needs a name}
    shift 2
    ;;
  *) break ;;
  esac
done

case "$SUITE" in
all | micro_alloc | barrier | parallel | teardown | server | metrics) ;;
*)
  echo "error: unknown suite '$SUITE' (micro_alloc, barrier, parallel," >&2
  echo "teardown, server or metrics)" >&2
  exit 1
  ;;
esac

# Whether a suite is selected under the current --suite filter.
wanted() {
  [ "$SUITE" = all ] || [ "$SUITE" = "$1" ]
}

REPO_DIR=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-build-release}
if [ "$CHECK" = 1 ]; then
  OUT_DIR=${2:-$(mktemp -d)}
else
  OUT_DIR=${2:-$REPO_DIR}
fi

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "configuring $BUILD_DIR (Release)" >&2
  cmake -B "$BUILD_DIR" -S "$REPO_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

# The build type the binaries were *actually* compiled with.
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
BUILD_TYPE=${BUILD_TYPE:-Debug}
case "$BUILD_TYPE" in
Release | RelWithDebInfo) ;;
*)
  if [ "${ALLOW_DEBUG:-0}" != "1" ]; then
    echo "error: $BUILD_DIR is a '$BUILD_TYPE' tree; benchmark numbers" >&2
    echo "from unoptimized builds must not be published. Use a Release" >&2
    echo "build dir (default: build-release) or set ALLOW_DEBUG=1 to" >&2
    echo "measure anyway (output will be watermarked)." >&2
    exit 1
  fi
  echo "warning: publishing numbers from a '$BUILD_TYPE' build" >&2
  ;;
esac

cmake --build "$BUILD_DIR" --target micro_alloc barrier parallel teardown \
  server table2_region_stats -j >/dev/null

run_one() {
  # $1 binary name, $2 benchmark filter, $3 output json, $4 ns key
  BIN="$BUILD_DIR/bench/$1"
  RAW=$(mktemp)
  "$BIN" --benchmark_format=json \
         --benchmark_min_time=0.2 \
         --benchmark_filter="$2" >"$RAW"
  python3 "$REPO_DIR/bench/distil_benchmarks.py" \
    "$RAW" "$OUT_DIR/$3" "$1" "$BUILD_TYPE" "$4"
  rm -f "$RAW"
}

wanted micro_alloc && run_one micro_alloc \
  'BM_Region(Alloc|AllocSafe|AllocSafeRaw|AllocZeroedRaw|BulkDelete|Of.*)$' \
  BENCH_micro_alloc.json ns_per_alloc
wanted barrier && run_one barrier 'BM_' BENCH_barrier.json ns_per_op
wanted parallel && run_one parallel 'BM_' BENCH_parallel.json ns_per_op
wanted teardown && run_one teardown 'BM_' BENCH_teardown.json ns_per_page
wanted server && run_one server 'BM_' BENCH_server.json ns_per_request

# Archive the heap shape next to the timings: a MetricsSnapshot of the
# Table 2 workload run (rstat's --metrics switch), validated so a
# broken exporter fails the run rather than silently publishing junk.
if wanted metrics; then
  "$BUILD_DIR/bench/table2_region_stats" \
    --metrics="$OUT_DIR/BENCH_metrics.json" >/dev/null
  python3 "$REPO_DIR/bench/validate_trace.py" \
    --metrics "$OUT_DIR/BENCH_metrics.json"
fi

if [ "$CHECK" = 1 ]; then
  STATUS=0
  for NAME in BENCH_micro_alloc.json BENCH_barrier.json BENCH_parallel.json \
    BENCH_teardown.json BENCH_server.json; do
    SUITE_OF=${NAME#BENCH_}
    SUITE_OF=${SUITE_OF%.json}
    wanted "$SUITE_OF" || continue
    python3 "$REPO_DIR/bench/check_regression.py" \
      "$REPO_DIR/$NAME" "$OUT_DIR/$NAME" || STATUS=1
  done
  exit $STATUS
fi
