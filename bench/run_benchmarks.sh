#!/bin/sh
# Regression harness for the allocation microbenchmarks.
#
# Runs bench/micro_alloc in JSON mode and distils the results into
# BENCH_micro_alloc.json: one record per benchmark with ns/alloc
# (items-per-second inverted) so successive runs can be diffed by eye
# or by CI. The safe/unsafe split mirrors the paper's Figure 11 axis.
#
# Usage: bench/run_benchmarks.sh [build-dir] [output.json]
set -eu

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_micro_alloc.json}
BIN="$BUILD_DIR/bench/micro_alloc"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

"$BIN" --benchmark_format=json \
       --benchmark_min_time=0.2 \
       --benchmark_filter='BM_Region(Alloc|AllocSafe|AllocSafeRaw|AllocZeroedRaw|BulkDelete|Of.*)$' \
       > "$RAW"

python3 - "$RAW" "$OUT" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)

# Which configuration each benchmark exercises (Figure 11's axis).
CONFIG = {
    "BM_RegionAlloc": "unsafe",
    "BM_RegionBulkDelete": "unsafe",
    "BM_RegionAllocSafe": "safe",
    "BM_RegionAllocSafeRaw": "safe",
    "BM_RegionAllocZeroedRaw": "safe",
    "BM_RegionOf": "safe",
    "BM_RegionOfAlternatingArenas": "safe",
}

results = []
for b in report.get("benchmarks", []):
    name = b["name"].split("/")[0]
    entry = {
        "name": name,
        "config": CONFIG.get(name, "unsafe"),
        "real_time_ns": round(b["real_time"], 3),
    }
    ips = b.get("items_per_second")
    if ips:
        entry["ns_per_alloc"] = round(1e9 / ips, 4)
    results.append(entry)

out = {
    "benchmark": "micro_alloc",
    "context": {
        k: report["context"].get(k)
        for k in ("host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
    },
    "results": results,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} benchmarks)")
PY

# Human-readable summary of the headline numbers.
python3 - "$OUT" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)
print(f"{'benchmark':<32} {'config':<7} {'ns/op':>9}")
for r in data["results"]:
    ns = r.get("ns_per_alloc", r["real_time_ns"])
    print(f"{r['name']:<32} {r['config']:<7} {ns:>9}")
PY
