//===- bench/parallel.cpp - Parallel extension microbenchmarks ------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Measures the §1 parallel extension: the atomic-exchange shared-slot
// write with per-thread local counts (the paper's claim that only
// region creation and deletion need global synchronization), thread
// slot register/unregister churn, and the synchronized create/delete
// path itself. Each benchmark reports items_per_second so ns/op can be
// read directly; bench/run_benchmarks.sh distils the results into
// BENCH_parallel.json — this file is the source of those published
// numbers, which must come from a Release build.
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "region/Regions.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>

using namespace regions;
using namespace regions::par;

namespace {

constexpr int kBatch = 1024;
constexpr int kMaxBenchThreads = 8;

/// Shared state for the multi-threaded benchmarks. Thread 0 populates
/// the manager-owned parts before the iteration barrier (the standard
/// benchmark idiom); the other threads only touch them inside the
/// timed loop.
struct ExchangeState {
  ParallelSpace Space;
  std::unique_ptr<RegionManager> Mgr;
  SharedRegion *S = nullptr;
  int *Obj[kMaxBenchThreads] = {};
  struct alignas(64) PaddedSlot {
    std::atomic<int *> Ptr{nullptr};
  };
  PaddedSlot Slots[kMaxBenchThreads];
  std::atomic<int *> ContendedSlot{nullptr};
} GState;

void setUpShared(benchmark::State &State) {
  GState.Mgr =
      std::make_unique<RegionManager>(SafetyConfig::unsafeConfig());
  GState.S = GState.Space.share(GState.Mgr->newRegion());
  for (int T = 0; T != kMaxBenchThreads; ++T) {
    GState.Obj[T] = rnew<int>(GState.S->region(), T);
    GState.Slots[T].Ptr.store(nullptr, std::memory_order_relaxed);
  }
  GState.ContendedSlot.store(nullptr, std::memory_order_relaxed);
  (void)State;
}

void tearDownShared(benchmark::State &State) {
  // Clear every slot (dropping whatever reference it still holds) from
  // this thread — only the summed count matters — then delete. The
  // resolving exchange classifies each displaced value itself.
  ThreadSlot Tid(GState.Space);
  for (auto &Slot : GState.Slots)
    GState.Space.sharedExchange<int>(Slot.Ptr, nullptr, nullptr, Tid);
  GState.Space.sharedExchange<int>(GState.ContendedSlot, nullptr, nullptr,
                                   Tid);
  if (!GState.Space.tryDelete(GState.S))
    State.SkipWithError("shared region still referenced at teardown");
  GState.S = nullptr;
  GState.Mgr.reset();
}

/// The paper's shared-slot write on an uncontended (per-thread) slot:
/// one atomic exchange plus two uncounted local-count bumps. This is
/// the parallel fast path — no locks, no cross-thread communication.
/// Hinted form: the benchmark slots are single-region by construction,
/// so the caller may legally name the displaced value's region and
/// skip the page-map resolve (BM_SharedExchangeResolved measures that
/// resolve; their difference is the cost of not trusting the caller).
void BM_SharedExchange(benchmark::State &State) {
  if (State.thread_index() == 0)
    setUpShared(State);
  ThreadSlot Tid(GState.Space);
  for (auto _ : State) {
    SharedRegion *S = GState.S;
    int *Obj = GState.Obj[State.thread_index()];
    auto &Slot = GState.Slots[State.thread_index()].Ptr;
    for (int I = 0; I != kBatch; ++I) {
      int *New = (I & 1) ? Obj : nullptr;
      GState.Space.sharedExchange(Slot, New, New ? S : nullptr, S, Tid);
    }
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
  if (State.thread_index() == 0)
    tearDownShared(State);
}
BENCHMARK(BM_SharedExchange)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

/// The resolving shared-slot write: identical traffic to
/// BM_SharedExchange, but the displaced value's region is found after
/// the exchange — page-map probe (one bounds test + map load on the
/// hot-arena hit) plus the Region → SharedRegion binding walk and its
/// generation check — instead of being named by the caller. This is
/// the form that stays correct under cross-region races; the delta
/// against BM_SharedExchange is the price of that correctness, and
/// check_regression tracks it in BENCH_parallel.json.
void BM_SharedExchangeResolved(benchmark::State &State) {
  if (State.thread_index() == 0)
    setUpShared(State);
  ThreadSlot Tid(GState.Space);
  for (auto _ : State) {
    SharedRegion *S = GState.S;
    int *Obj = GState.Obj[State.thread_index()];
    auto &Slot = GState.Slots[State.thread_index()].Ptr;
    for (int I = 0; I != kBatch; ++I) {
      int *New = (I & 1) ? Obj : nullptr;
      GState.Space.sharedExchange(Slot, New, New ? S : nullptr, Tid);
    }
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
  if (State.thread_index() == 0)
    tearDownShared(State);
}
BENCHMARK(BM_SharedExchangeResolved)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8);

/// Every thread hammers the same slot: the exchange itself serializes
/// on the cache line, but the count adjustments stay thread-local, so
/// the slowdown measures the hardware, not the bookkeeping.
void BM_SharedExchangeContended(benchmark::State &State) {
  if (State.thread_index() == 0)
    setUpShared(State);
  ThreadSlot Tid(GState.Space);
  for (auto _ : State) {
    SharedRegion *S = GState.S;
    int *Obj = GState.Obj[State.thread_index()];
    for (int I = 0; I != kBatch; ++I) {
      int *New = (I & 1) ? Obj : nullptr;
      GState.Space.sharedExchange(GState.ContendedSlot, New,
                                  New ? S : nullptr, S, Tid);
    }
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
  if (State.thread_index() == 0)
    tearDownShared(State);
}
BENCHMARK(BM_SharedExchangeContended)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8);

/// Thread slot churn: registerThread/unregisterThread pairs, which
/// take the space lock and fold balances into every live shared
/// region. Worker-pool workloads pay this on every thread lifecycle.
void BM_ThreadRegistration(benchmark::State &State) {
  constexpr int kRegBatch = 64;
  if (State.thread_index() == 0)
    setUpShared(State);
  for (auto _ : State) {
    for (int I = 0; I != kRegBatch; ++I) {
      ThreadSlot Slot(GState.Space);
      benchmark::DoNotOptimize(Slot.tid());
    }
  }
  State.SetItemsProcessed(State.iterations() * kRegBatch);
  if (State.thread_index() == 0)
    tearDownShared(State);
}
BENCHMARK(BM_ThreadRegistration)->Threads(1)->Threads(2)->Threads(4);

/// Failed deletion attempts under contention: tryDelete synchronizes,
/// flushes the caller's buffered counts, and sums every local count
/// before giving up (a detached reference keeps the sum at one). This
/// is the cost of *checking* the paper's deletion condition.
void BM_TryDeleteContended(benchmark::State &State) {
  constexpr int kTryBatch = 64;
  if (State.thread_index() == 0) {
    setUpShared(State);
    // Pin the region alive through the detached count: register a
    // slot, take a reference, and fold it by unregistering.
    ThreadSlot Tid(GState.Space);
    GState.Space.addRef(GState.S, Tid);
  }
  for (auto _ : State) {
    SharedRegion *S = GState.S;
    for (int I = 0; I != kTryBatch; ++I)
      benchmark::DoNotOptimize(GState.Space.tryDelete(S));
  }
  State.SetItemsProcessed(State.iterations() * kTryBatch);
  if (State.thread_index() == 0) {
    ThreadSlot Tid(GState.Space);
    GState.Space.dropRef(GState.S, Tid);
    tearDownShared(State);
  }
}
BENCHMARK(BM_TryDeleteContended)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

/// The synchronized slow path the paper confines to region lifetime:
/// create a region, publish it as shared, delete it again.
void BM_ShareDeleteCycle(benchmark::State &State) {
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  ParallelSpace Space;
  for (auto _ : State) {
    SharedRegion *S = Space.share(Mgr.newRegion());
    rnew<int>(S->region(), 1);
    bool Deleted = Space.tryDelete(S);
    benchmark::DoNotOptimize(Deleted);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShareDeleteCycle);

/// The sharded claim: distinct regions created by distinct threads
/// synchronize on distinct locks, so the create/delete slow path
/// itself scales. Each thread cycles regions from its own manager
/// through one shared space — under the old single space mutex this
/// serialized completely.
void BM_ShareDeleteCycleDistinct(benchmark::State &State) {
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  for (auto _ : State) {
    SharedRegion *S = GState.Space.share(Mgr.newRegion());
    rnew<int>(S->region(), 1);
    bool Deleted = GState.Space.tryDelete(S);
    benchmark::DoNotOptimize(Deleted);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShareDeleteCycleDistinct)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8);

/// Bounded SPSC ring for the pipeline benchmark: one producer, one
/// consumer, release/acquire head/tail. Runs end drained, so the
/// monotonically wrapping indices never need resetting between
/// benchmark repetitions.
struct alignas(64) SpscRing {
  static constexpr unsigned kCap = 64;
  struct Entry {
    SharedRegion *S;
    int *Payload;
  };
  Entry Buf[kCap];
  alignas(64) std::atomic<unsigned> Head{0}; ///< consumer cursor
  alignas(64) std::atomic<unsigned> Tail{0}; ///< producer cursor

  bool tryPush(Entry E) {
    unsigned T = Tail.load(std::memory_order_relaxed);
    if (T - Head.load(std::memory_order_acquire) == kCap)
      return false;
    Buf[T % kCap] = E;
    Tail.store(T + 1, std::memory_order_release);
    return true;
  }
  bool tryPop(Entry &E) {
    unsigned H = Head.load(std::memory_order_relaxed);
    if (Tail.load(std::memory_order_acquire) == H)
      return false;
    E = Buf[H % kCap];
    Head.store(H + 1, std::memory_order_release);
    return true;
  }
};

struct PipeState {
  SpscRing Msg[kMaxBenchThreads / 2]; ///< producer -> consumer
  SpscRing Ret[kMaxBenchThreads / 2]; ///< consumer -> producer
} GPipe;

/// Message-passing pipeline, the paper's intended cross-thread shape:
/// producers allocate request regions from private managers, share
/// them, pin them with a local count, and pass pointers through a
/// ring; consumers read the payload, poll tryDelete (which must
/// refuse lock-free — the producer's pin is visible in the relaxed
/// sum), and hand the region back; the producer, whose manager owns
/// the region, drops its pin and deletes. Even thread indices
/// produce, odd ones consume; regions are deleted only by the thread
/// whose manager created them, so manager quiescence holds by
/// construction.
void BM_Pipeline(benchmark::State &State) {
  constexpr int kPipeBatch = 64;
  const int Pair = State.thread_index() / 2;
  const bool Producer = (State.thread_index() % 2) == 0;
  SpscRing &Msg = GPipe.Msg[Pair];
  SpscRing &Ret = GPipe.Ret[Pair];
  ThreadSlot Tid(GState.Space);

  if (Producer) {
    RegionManager Mgr{SafetyConfig::unsafeConfig()};
    int Outstanding = 0;
    auto DrainReturns = [&] {
      SpscRing::Entry E;
      while (Ret.tryPop(E)) {
        GState.Space.dropRef(E.S, Tid); // release the pin: sum hits 0
        if (!GState.Space.tryDelete(E.S))
          std::abort(); // returned region must delete first try
        --Outstanding;
      }
    };
    for (auto _ : State) {
      for (int I = 0; I != kPipeBatch; ++I) {
        SharedRegion *S = GState.Space.share(Mgr.newRegion());
        int *Req = rnew<int>(S->region(), I);
        GState.Space.addRef(S, Tid); // pin before publishing
        while (!Msg.tryPush({S, Req})) {
          DrainReturns(); // never park on a full ring holding returns
          std::this_thread::yield();
        }
        ++Outstanding;
        DrainReturns();
      }
    }
    while (Outstanding != 0) {
      DrainReturns();
      std::this_thread::yield();
    }
  } else {
    for (auto _ : State) {
      for (int I = 0; I != kPipeBatch; ++I) {
        SpscRing::Entry E;
        while (!Msg.tryPop(E))
          std::this_thread::yield();
        GState.Space.addRef(E.S, Tid); // claim while reading
        benchmark::DoNotOptimize(*E.Payload);
        // Polling deletion from the non-owner side: the pins make
        // this a guaranteed lock-free refusal, never a free.
        if (GState.Space.tryDelete(E.S))
          std::abort();
        GState.Space.dropRef(E.S, Tid);
        while (!Ret.tryPush(E))
          std::this_thread::yield();
      }
    }
  }
  State.SetItemsProcessed(State.iterations() * kPipeBatch);
}
BENCHMARK(BM_Pipeline)->Threads(2)->Threads(4)->Threads(8);

} // namespace

BENCHMARK_MAIN();
