//===- bench/teardown.cpp - Bulk region teardown cost --------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Quantifies the paper's §4.1 economic argument that deleteregion is
// cheap because a region's pages go back on free lists in bulk.
// Create → populate → deleteregion cycles across region sizes from
// 64 KB to 64 MB, in the safe and raw (unsafe) configurations:
//
//  - BM_RegionTeardown*  times *only* the deleteregion call (the
//    population happens outside the timed section), reporting ns per
//    page freed. This is the number the run-table teardown attacks:
//    the per-page linked-list walk paid a dependent cache-miss header
//    load per 4 KB page, where the run table frees whole runs.
//  - BM_RegionCycle*     times the full create → populate → delete
//    cycle, the end-to-end cost a phase-oriented program sees.
//
// Objects are 256-byte pointer-free blobs (allocRaw), so the safe
// configuration measures teardown bookkeeping — page frees, map
// clears, stack scan — rather than cleanup-thunk execution, which
// scales with objects, not pages, and is measured by the fig11 suite.
//
//===----------------------------------------------------------------------===//

#include "region/Regions.h"

#include <benchmark/benchmark.h>

using namespace regions;

namespace {

constexpr std::size_t kObjectBytes = 256;

Region *populate(RegionManager &Mgr, std::size_t TargetBytes) {
  Region *R = Mgr.newRegion();
  for (std::size_t Done = 0; Done < TargetBytes; Done += kObjectBytes)
    Mgr.allocRaw(R, kObjectBytes);
  return R;
}

void runTeardown(benchmark::State &State, const SafetyConfig &Cfg) {
  const auto TargetBytes = static_cast<std::size_t>(State.range(0));
  RegionManager Mgr{Cfg, std::size_t{1} << 30};
  std::size_t PagesFreed = 0;
  for (auto _ : State) {
    State.PauseTiming();
    Region *R = populate(Mgr, TargetBytes);
    std::size_t InUse = Mgr.osBytes() / kPageSize;
    State.ResumeTiming();
    benchmark::DoNotOptimize(Mgr.deleteRegionRaw(R));
    PagesFreed += InUse;
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(PagesFreed));
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(TargetBytes));
}

void runCycle(benchmark::State &State, const SafetyConfig &Cfg) {
  const auto TargetBytes = static_cast<std::size_t>(State.range(0));
  RegionManager Mgr{Cfg, std::size_t{1} << 30};
  for (auto _ : State) {
    Region *R = populate(Mgr, TargetBytes);
    benchmark::DoNotOptimize(Mgr.deleteRegionRaw(R));
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(TargetBytes / kPageSize));
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(TargetBytes));
}

void BM_RegionTeardownSafe(benchmark::State &State) {
  runTeardown(State, SafetyConfig::safeConfig());
}
void BM_RegionTeardownRaw(benchmark::State &State) {
  runTeardown(State, SafetyConfig::unsafeConfig());
}
void BM_RegionCycleSafe(benchmark::State &State) {
  runCycle(State, SafetyConfig::safeConfig());
}
void BM_RegionCycleRaw(benchmark::State &State) {
  runCycle(State, SafetyConfig::unsafeConfig());
}

// 64 KB, 1 MB, 16 MB, 64 MB regions: the paper's regions top out in the
// tens of megabytes (lcc/moss); 16 MB is the acceptance size.
#define TEARDOWN_SIZES                                                         \
  ->Arg(std::size_t{64} << 10)                                                 \
      ->Arg(std::size_t{1} << 20)                                              \
      ->Arg(std::size_t{16} << 20)                                             \
      ->Arg(std::size_t{64} << 20)

BENCHMARK(BM_RegionTeardownSafe) TEARDOWN_SIZES;
BENCHMARK(BM_RegionTeardownRaw) TEARDOWN_SIZES;
BENCHMARK(BM_RegionCycleSafe) TEARDOWN_SIZES;
BENCHMARK(BM_RegionCycleRaw) TEARDOWN_SIZES;

} // namespace

BENCHMARK_MAIN();
