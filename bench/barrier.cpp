//===- bench/barrier.cpp - Write-barrier microbenchmarks ------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Isolates the cost of the safe-mode reference-count machinery on
// pointer stores — the Figure 5 write barrier and its static/deferred
// shortcuts. Each benchmark reports items_per_second so ns/op can be
// read directly; bench/run_benchmarks.sh distils the results into
// BENCH_barrier.json.
//
// The cost ladder, fastest to slowest:
//   raw pointer store                 (no safety; the floor)
//   SameRegionPtr store               (statically elided barrier)
//   sameregion RegionPtr store        (dynamic sameregion early exit)
//   cross-region RegionPtr store      (full barrier: counts adjusted)
//   local rt::Ref write               (deferred counting: no counts)
//
//===----------------------------------------------------------------------===//

#include "region/Regions.h"

#include <benchmark/benchmark.h>

using namespace regions;

namespace {

constexpr int kBatch = 1024;

struct Node {
  RegionPtr<Node> Next;
};

struct FastNode {
  SameRegionPtr<FastNode> Next;
};

struct RawNode {
  RawNode *Next;
};

/// The floor: an uncounted pointer store into region memory.
void BM_RawPointerStore(benchmark::State &State) {
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  Region *R = Mgr.newRegion();
  auto *A = rnew<RawNode>(R);
  auto *B = rnew<RawNode>(R);
  for (auto _ : State) {
    for (int I = 0; I != kBatch; ++I) {
      A->Next = (I & 1) ? B : nullptr;
      benchmark::DoNotOptimize(A);
    }
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_RawPointerStore);

/// §5.6 static sameregion recognition: no barrier at all (the assert
/// compiles away only with NDEBUG; this repo keeps asserts on, so this
/// measures the checked form).
void BM_SameRegionPtrStore(benchmark::State &State) {
  RegionManager Mgr;
  Region *R = Mgr.newRegion();
  auto *A = rnew<FastNode>(R);
  auto *B = rnew<FastNode>(R);
  for (auto _ : State) {
    for (int I = 0; I != kBatch; ++I) {
      A->Next = (I & 1) ? B : nullptr;
      benchmark::DoNotOptimize(A);
    }
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_SameRegionPtrStore);

/// Dynamic sameregion: the barrier runs but takes the early exit.
void BM_BarrierSameRegionStore(benchmark::State &State) {
  RegionManager Mgr;
  Region *R = Mgr.newRegion();
  auto *A = rnew<Node>(R);
  auto *B = rnew<Node>(R);
  auto *C = rnew<Node>(R);
  for (auto _ : State) {
    for (int I = 0; I != kBatch; ++I) {
      A->Next = (I & 1) ? B : C;
      benchmark::DoNotOptimize(A);
    }
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_BarrierSameRegionStore);

/// The headline: a safe cross-region heap-pointer store. The slot lives
/// in one region, the stored values in two others, so every store
/// performs a decrement and an increment.
void BM_BarrierCrossRegionStore(benchmark::State &State) {
  RegionManager Mgr;
  Region *R1 = Mgr.newRegion();
  Region *R2 = Mgr.newRegion();
  Region *R3 = Mgr.newRegion();
  auto *A = rnew<Node>(R1);
  auto *B = rnew<Node>(R2);
  auto *C = rnew<Node>(R3);
  for (auto _ : State) {
    for (int I = 0; I != kBatch; ++I) {
      A->Next = (I & 1) ? B : C;
      benchmark::DoNotOptimize(A);
    }
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_BarrierCrossRegionStore);

/// Cross-region store through a slot in *global* storage (the paper's
/// global-write path: the slot is outside every region).
void BM_BarrierGlobalSlotStore(benchmark::State &State) {
  RegionManager Mgr;
  Region *R2 = Mgr.newRegion();
  Region *R3 = Mgr.newRegion();
  auto *B = rnew<Node>(R2);
  auto *C = rnew<Node>(R3);
  static RegionPtr<Node> Slot;
  for (auto _ : State) {
    for (int I = 0; I != kBatch; ++I) {
      Slot = (I & 1) ? B : C;
      benchmark::DoNotOptimize(&Slot);
    }
  }
  Slot = nullptr;
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_BarrierGlobalSlotStore);

/// Null <-> value flips: half the stores adjust one count, half the
/// other; exercises the null-handling branches.
void BM_BarrierNullFlipStore(benchmark::State &State) {
  RegionManager Mgr;
  Region *R1 = Mgr.newRegion();
  Region *R2 = Mgr.newRegion();
  auto *A = rnew<Node>(R1);
  auto *B = rnew<Node>(R2);
  for (auto _ : State) {
    for (int I = 0; I != kBatch; ++I) {
      A->Next = (I & 1) ? B : nullptr;
      benchmark::DoNotOptimize(A);
    }
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_BarrierNullFlipStore);

/// Deferred counting for locals: rt::Ref writes never touch counts.
void BM_LocalRefStore(benchmark::State &State) {
  RegionManager Mgr;
  rt::Frame F;
  Region *R = Mgr.newRegion();
  int *P = rnew<int>(R, 7);
  rt::Ref<int> Local;
  for (auto _ : State) {
    for (int I = 0; I != kBatch; ++I) {
      Local = (I & 1) ? P : nullptr;
      benchmark::DoNotOptimize(Local.get());
    }
  }
  State.SetItemsProcessed(State.iterations() * kBatch);
}
BENCHMARK(BM_LocalRefStore);

/// Frame plus four registered locals: the per-call cost rt::Ref-heavy
/// code pays for shadow-stack registration.
void BM_FrameWithLocals(benchmark::State &State) {
  RegionManager Mgr;
  Region *R = Mgr.newRegion();
  int *P = rnew<int>(R, 7);
  for (auto _ : State) {
    rt::Frame F;
    rt::Ref<int> L0 = P;
    rt::Ref<int> L1 = P;
    rt::Ref<int> L2 = P;
    rt::Ref<int> L3 = P;
    benchmark::DoNotOptimize(L3.get());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FrameWithLocals);

/// Store-churn-then-delete: many cross-region stores into a young
/// region, cleared before the region dies. Exercises the count
/// adjustment path end to end, including the flush a deletion performs.
void BM_CrossRegionChurnDelete(benchmark::State &State) {
  RegionManager Mgr;
  Region *Stable = Mgr.newRegion();
  auto *Holder = rnew<Node>(Stable);
  for (auto _ : State) {
    Region *Young = Mgr.newRegion();
    auto *Target = rnew<Node>(Young);
    for (int I = 0; I != 64; ++I)
      Holder->Next = (I & 1) ? Target : nullptr;
    Holder->Next = nullptr;
    Mgr.deleteRegionRaw(Young);
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_CrossRegionChurnDelete);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
#ifdef __OPTIMIZE__
  benchmark::AddCustomContext("binary_optimized", "true");
#else
  benchmark::AddCustomContext("binary_optimized", "false");
#endif
#ifdef NDEBUG
  benchmark::AddCustomContext("binary_asserts", "off");
#else
  benchmark::AddCustomContext("binary_asserts", "on");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
