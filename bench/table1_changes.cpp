//===- bench/table1_changes.cpp - Table 1: complexity of changes ---------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Paper Table 1 counts the source lines changed to convert each C
// benchmark to regions. Our workloads are written once against a
// memory-model template, so "lines changed" has no direct analog; the
// closest measurable property is how much region-specific structure
// each program needs: the number of region API call sites in its
// source, and the dynamic region behaviour those sites produce. Both
// are printed here, next to the paper's numbers for comparison.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TableWriter.h"

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

namespace {

/// Region-specific call sites per workload source file (makeRegion /
/// dropRegion / create / createArray / allocBytes / touch / dispose),
/// counted from src/workloads/*.h. Regenerate with:
///   grep -cE 'makeRegion|dropRegion|template create|createArray|allocBytes'
struct StaticCounts {
  const char *Name;
  unsigned RegionCallSites;
  unsigned SourceLines;
  unsigned PaperLines;
  unsigned PaperChanged;
};

// SourceLines and call sites measured from this repository's workload
// headers (mudlle and lcc share MudlleWork.h, which also draws on the
// region logic inside src/mudlle/Compiler.h). The PaperLines column is
// Table 1's "Lines"; PaperChanged its "Changed lines" (the scan of the
// paper available to us shows cfrac = 4203/149 clearly; the remaining
// rows are reconstructed from the table fragments and marked approximate
// in EXPERIMENTS.md).
const StaticCounts kCounts[] = {
    {"cfrac", 13, 351, 4203, 149},
    {"grobner", 7, 205, 3219, 145},
    {"mudlle", 4, 143, 4848, 252},
    {"lcc", 4, 143, 12430, 548},
    {"tile", 11, 210, 2773, 184},
    {"moss", 9, 226, 2981, 118},
};

} // namespace

int main() {
  printBanner("Table 1: complexity of benchmark changes", "Table 1");
  std::printf(
      "The paper measures diff size against the original C sources; our\n"
      "workloads are single-source templates, so we report the amount of\n"
      "region-specific structure instead (see DESIGN.md).\n\n");

  WorkloadOptions Opt = defaultOptions();
  Opt.Scale = std::min(Opt.Scale, 0.3); // dynamic columns only need a probe

  TableWriter T({"name", "region call sites", "workload lines",
                 "regions created", "deleteregion calls",
                 "paper lines", "paper changed"});
  unsigned Idx = 0;
  for (WorkloadId W : kAllWorkloads) {
    RunResult R = runWorkload(W, BackendKind::RegionSafe, Opt);
    const StaticCounts &C = kCounts[Idx++];
    T.addRow({C.Name, TableWriter::fmt(std::uint64_t{C.RegionCallSites}),
              TableWriter::fmt(std::uint64_t{C.SourceLines}),
              TableWriter::fmt(R.TotalRegions),
              TableWriter::fmt(R.Region.DeleteAttempts),
              TableWriter::fmt(std::uint64_t{C.PaperLines}),
              TableWriter::fmt(std::uint64_t{C.PaperChanged})});
  }
  T.print();
  return 0;
}
