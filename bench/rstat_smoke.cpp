//===- bench/rstat_smoke.cpp - rstat armed-tracing smoke run --------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// CI smoke test for the rstat observability layer: arms event tracing,
// runs a real workload (cfrac on the safe region backend) plus a
// multi-threaded churn phase, then writes both rstat artifacts —
// metrics JSON and Chrome trace JSON — for bench/validate_trace.py to
// check. Exits non-zero if the snapshot disagrees with stats() or the
// trace recorded nothing.
//
// Usage: rstat_smoke [--metrics=PATH] [--trace=PATH]   (defaults below)
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "region/Pool.h"
#include "support/Trace.h"

#include <cstdio>
#include <thread>

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

int main(int argc, char **argv) {
  ObservabilityConfig Obs = parseObservabilityArgs(argc, argv);
  // The smoke run is always armed and always writes both artifacts;
  // the flags only relocate them.
  Obs.MetricsRequested = true;
  Obs.TraceRequested = true;
  if (!Obs.MetricsPath)
    Obs.MetricsPath = "rstat_metrics.json";
  Obs.armIfRequested();

  WorkloadOptions Opt = defaultOptions();
  MetricsSnapshot Metrics;
  Opt.CaptureMetrics = &Metrics;
  RunResult R = runWorkload(WorkloadId::Cfrac, BackendKind::RegionSafe, Opt);
  if (!R.Ok) {
    std::fprintf(stderr, "rstat_smoke: workload failed\n");
    return 1;
  }

  // Thread churn under tracing: worker threads attach lazily through
  // RegionManager construction and record into their own rings.
  std::thread Workers[4];
  for (auto &T : Workers)
    T = std::thread([] {
      RegionManager Mgr;
      for (int I = 0; I != 32; ++I) {
        Region *Rgn = Mgr.newRegion();
        Mgr.allocRaw(Rgn, 64);
        Mgr.deleteRegionRaw(Rgn);
      }
      // rpool churn: one in-place reset per cycle, so the trace
      // carries the pool-acquire / resetregion / pool-release
      // vocabulary and the derived pooled-regions counter track.
      RegionPool Pool{Mgr};
      for (int I = 0; I != 32; ++I) {
        Region *Rgn = Pool.acquire();
        Mgr.allocRaw(Rgn, 64);
        if (!Pool.release(Rgn)) {
          std::fprintf(stderr, "rstat_smoke: pool release refused\n");
          std::abort();
        }
      }
    });
  for (auto &T : Workers)
    T.join();

  // The snapshot's counters must be the stats() values exactly (they
  // are taken through stats(); this guards the invariant in CI).
  if (!R.HasRegionStats ||
      Metrics.Stats.TotalAllocs != R.Region.TotalAllocs ||
      Metrics.Stats.TotalRegions != R.Region.TotalRegions ||
      Metrics.Stats.BarrierStores != R.Region.BarrierStores ||
      Metrics.Stats.DeleteAttempts != R.Region.DeleteAttempts) {
    std::fprintf(stderr, "rstat_smoke: snapshot disagrees with stats()\n");
    return 1;
  }
  if (rstat::tracedEventCount() == 0) {
    std::fprintf(stderr, "rstat_smoke: tracing armed but no events\n");
    return 1;
  }

  Obs.report(Metrics);
  return 0;
}
