//===- bench/table3_malloc_stats.cpp - Table 3: allocation w/ malloc -----===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Regenerates Table 3: allocation behaviour of the malloc/free version
// of every benchmark, including the "(w/o overhead)" rows the paper
// reports for programs measured through the emulation library.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TableWriter.h"

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

int main() {
  printBanner("Table 3: allocation behaviour with malloc", "Table 3");

  WorkloadOptions Opt = defaultOptions();
  TableWriter T({"name", "total allocs", "total kbytes", "max kbytes"});
  for (WorkloadId W : kAllWorkloads) {
    RunResult R = runWorkload(W, BackendKind::Lea, Opt);
    T.addRow({workloadName(W), TableWriter::fmt(R.TotalAllocs),
              TableWriter::fmtKb(R.TotalRequestedBytes),
              TableWriter::fmtKb(R.MaxLiveRequestedBytes)});
    // The emulation library's per-object list overhead, reported the
    // way the paper reports "(w/o overhead)" rows.
    std::uint64_t Net = R.TotalRequestedBytes > R.EmuOverheadBytes
                            ? R.TotalRequestedBytes - R.EmuOverheadBytes
                            : 0;
    T.addRow({std::string("  (w/o overhead)"), "",
              TableWriter::fmtKb(Net), ""});
  }
  T.print();
  std::printf(
      "\nPaper shape: totals track Table 2 closely (the discrepancies are\n"
      "the small porting differences the paper discusses in 5.3); max\n"
      "kbytes is slightly lower than the region version because malloc\n"
      "frees objects individually rather than at region deletion.\n");
  return 0;
}
