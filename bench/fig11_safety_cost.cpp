//===- bench/fig11_safety_cost.cpp - Figure 11: cost of safety -----------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Regenerates Figure 11: the overhead of safe regions over unsafe
// regions, attributed to its three components — cleanup functions,
// stack scanning, and reference-count maintenance — by toggling each
// SafetyConfig feature independently and differencing the times.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TableWriter.h"

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

int main() {
  printBanner("Figure 11: cost of safety", "Figure 11");

  WorkloadOptions Opt = defaultOptions();
  unsigned Repeats = envRepeats();

  TableWriter T({"name", "unsafe ms", "safe ms", "total overhead",
                 "cleanup ms", "stack scan ms", "refcount ms",
                 "barrier stores", "sameregion", "scans"});
  for (WorkloadId W : kAllWorkloads) {
    double Unsafe =
        runMedian(W, BackendKind::RegionUnsafe, Opt, Repeats).Millis;
    RunResult Safe = runMedian(W, BackendKind::RegionSafe, Opt, Repeats);

    auto TimeWithout = [&](bool Cleanup, bool Scan, bool Counts) {
      WorkloadOptions Partial = Opt;
      Partial.RegionConfig = SafetyConfig::safeConfig();
      Partial.RegionConfig.CleanupScan = Cleanup;
      Partial.RegionConfig.StackScan = Scan;
      Partial.RegionConfig.RefCounts = Counts;
      return runMedian(W, BackendKind::RegionSafe, Partial, Repeats).Millis;
    };
    double NoCleanup = TimeWithout(false, true, true);
    double NoScan = TimeWithout(true, false, true);
    double NoCounts = TimeWithout(true, true, false);

    auto Delta = [&](double Without) {
      return Safe.Millis > Without ? Safe.Millis - Without : 0.0;
    };
    T.addRow({workloadName(W), TableWriter::fmt(Unsafe, 1),
              TableWriter::fmt(Safe.Millis, 1),
              TableWriter::fmtPercentOf(Safe.Millis, Unsafe),
              TableWriter::fmt(Delta(NoCleanup), 1),
              TableWriter::fmt(Delta(NoScan), 1),
              TableWriter::fmt(Delta(NoCounts), 1),
              TableWriter::fmt(Safe.Region.BarrierStores),
              TableWriter::fmt(Safe.Region.BarrierSameRegion),
              TableWriter::fmt(Safe.StackScans)});
  }
  T.print();
  std::printf(
      "\nPaper shape: the cost of safety ranges from negligible (tile) to\n"
      "~17%% (lcc), dominated by reference counting for pointer-dense\n"
      "programs; cleanup and stack scanning are small everywhere.\n");
  return 0;
}
