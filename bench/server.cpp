//===- bench/server.cpp - Region-per-request serving cost -----------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// The ROADMAP's north-star workload shape: a server opens a region per
// request, allocates the request's working set into it, and discards
// the whole thing when the response ships. The paper makes the discard
// nearly free; this suite measures the *creation* side that remains —
// and the rpool claim that recycling regions through
// RegionPool::acquire/release (in-place reset, retained page runs)
// beats the newRegion/deleteRegionRaw round trip per request.
//
//  - BM_RequestCycleNew     baseline: newRegion → populate → delete
//  - BM_RequestCyclePooled  rpool:    acquire   → populate → release
//
// Request footprints span 4 KB - 64 KB (one page to a few growth
// runs). Each request allocates the classic server mix: a handful of
// small header/metadata strings plus page-sized I/O buffers carrying
// the body (the shape Apache's bucket allocator serves with 8 KB heap
// buckets) — all pointer-free rstralloc-style blobs, so the measured
// delta is pure lifecycle cost, not cleanup-thunk execution. Each
// benchmark thread runs its own manager (and pool) — the library's
// threading model — so threads:N rows scale workers, not contention
// on one arena. ns/request is items_per_second inverted by
// distil_benchmarks.py; osBytes flatness across pooled churn is
// test-enforced in PoolTest.
//
//===----------------------------------------------------------------------===//

#include "region/Pool.h"
#include "region/Regions.h"

#include <benchmark/benchmark.h>

using namespace regions;

namespace {

constexpr std::size_t kHeaderBytes = 64;   ///< method/URI/header copies
constexpr unsigned kHeaderCount = 4;
constexpr std::size_t kBucketBytes = 8192; ///< body I/O bucket (Apache-sized)

void *serveRequest(RegionManager &Mgr, Region *R, std::size_t Footprint) {
  void *Last = nullptr;
  for (unsigned I = 0; I != kHeaderCount; ++I)
    Last = Mgr.allocRaw(R, kHeaderBytes);
  for (std::size_t Left = Footprint - kHeaderCount * kHeaderBytes;
       Left != 0;) {
    std::size_t Chunk = Left < kBucketBytes ? Left : kBucketBytes;
    Last = Mgr.allocRaw(R, Chunk);
    Left -= Chunk;
  }
  return Last;
}

void BM_RequestCycleNew(benchmark::State &State) {
  const auto Footprint = static_cast<std::size_t>(State.range(0));
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{256} << 20};
  for (auto _ : State) {
    Region *R = Mgr.newRegion();
    benchmark::DoNotOptimize(serveRequest(Mgr, R, Footprint));
    benchmark::DoNotOptimize(Mgr.deleteRegionRaw(R));
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()));
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Footprint));
}

void BM_RequestCyclePooled(benchmark::State &State) {
  const auto Footprint = static_cast<std::size_t>(State.range(0));
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{256} << 20};
  RegionPool Pool{Mgr};
  for (auto _ : State) {
    Region *R = Pool.acquire();
    benchmark::DoNotOptimize(serveRequest(Mgr, R, Footprint));
    if (!Pool.release(R))
      State.SkipWithError("release refused: request left external refs");
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()));
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Footprint));
}

// 4 KB, 16 KB, 64 KB request footprints: one page, one growth cycle,
// and enough to exercise multi-run retention.
#define REQUEST_SIZES                                                          \
  ->Arg(std::size_t{4} << 10)                                                  \
      ->Arg(std::size_t{16} << 10)                                             \
      ->Arg(std::size_t{64} << 10)                                             \
      ->ThreadRange(1, 2)

BENCHMARK(BM_RequestCycleNew) REQUEST_SIZES;
BENCHMARK(BM_RequestCyclePooled) REQUEST_SIZES;

} // namespace

BENCHMARK_MAIN();
