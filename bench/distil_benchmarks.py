#!/usr/bin/env python3
"""Distils a Google Benchmark JSON report into a committed baseline.

Usage: distil_benchmarks.py raw.json out.json <suite> <build-type> <ns-key>

One record per benchmark: real time plus ns/op (items-per-second
inverted, stored under <ns-key> to match the suite's historical field
name). The context records the *binary's* build type as passed in by
run_benchmarks.sh from CMakeCache.txt — the benchmark library's own
"library_build_type" only describes libbenchmark and is ignored.
"""

import json
import sys

# Which safety configuration each benchmark exercises (Figure 11's
# axis). Benchmarks not listed default to "safe" for barrier-suite
# names (every barrier benchmark runs a safe manager unless named
# otherwise) and "unsafe" for the allocation suite.
CONFIG = {
    "BM_RegionAlloc": "unsafe",
    "BM_RegionBulkDelete": "unsafe",
    "BM_RegionAllocSafe": "safe",
    "BM_RegionAllocSafeRaw": "safe",
    "BM_RegionAllocZeroedRaw": "safe",
    "BM_RegionOf": "safe",
    "BM_RegionOfAlternatingArenas": "safe",
    "BM_RawPointerStore": "none",
    "BM_SameRegionPtrStore": "safe",
    "BM_RegionTeardownSafe": "safe",
    "BM_RegionTeardownRaw": "unsafe",
    "BM_RegionCycleSafe": "safe",
    "BM_RegionCycleRaw": "unsafe",
    "BM_RequestCycleNew": "safe",
    "BM_RequestCyclePooled": "safe",
}


def main():
    raw_path, out_path, suite, build_type, ns_key = sys.argv[1:6]
    with open(raw_path) as f:
        report = json.load(f)

    results = []
    for b in report.get("benchmarks", []):
        # Multi-threaded benchmarks are reported as "BM_Name/threads:N";
        # keep the thread count as its own field so records stay unique
        # (splitting the name alone would collapse the whole family).
        parts = b["name"].split("/")
        name = parts[0]
        threads = None
        args = []
        for p in parts[1:]:
            if p.startswith("threads:"):
                threads = int(p.split(":", 1)[1])
            else:
                # Size/Arg suffixes (e.g. BM_RegionTeardownSafe/16777216)
                # distinguish records within a family; keep them so the
                # regression diff compares like against like.
                args.append(p)
        default = "unsafe" if suite == "micro_alloc" else "safe"
        entry = {
            "name": name,
            "config": CONFIG.get(name, default),
            "real_time_ns": round(b["real_time"], 3),
        }
        if args:
            entry["arg"] = "/".join(args)
        if threads is not None:
            entry["threads"] = threads
        ips = b.get("items_per_second")
        if ips:
            entry["ops_per_second"] = round(ips, 1)
            entry[ns_key] = round(1e9 / ips, 4)
        results.append(entry)

    out = {
        "benchmark": suite,
        "context": {
            k: report["context"].get(k)
            for k in ("host_name", "num_cpus", "mhz_per_cpu")
        },
        "results": results,
    }
    out["context"]["build_type"] = build_type
    # The binary's build type again, under the key the benchmark library
    # used to (mis)populate: consumers of the published JSON look for
    # context.library_build_type and must see the *library under test*'s
    # build, not libbenchmark's.
    out["context"]["library_build_type"] = build_type.lower()
    if build_type not in ("Release", "RelWithDebInfo"):
        out["context"]["warning"] = "unoptimized build; do not publish"
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} ({len(results)} benchmarks, {build_type})")

    print(f"{'benchmark':<40} {'config':<7} {'ns/op':>9}")
    for r in results:
        ns = r.get(ns_key, r["real_time_ns"])
        label = r["name"] + (f"/{r['arg']}" if "arg" in r else "")
        print(f"{label:<40} {r['config']:<7} {ns:>9}")


if __name__ == "__main__":
    main()
