//===- bench/fig9_time.cpp - Figure 9: execution time --------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Regenerates Figure 9: wall-clock execution time per benchmark and
// allocator, split into base and memory-management components, with
// the unsafe-region bar and moss's unoptimized "slow" bar.
//
// The paper instruments time inside the allocation libraries; we take
// base time from a run on the zero-cost Bump backend instead
// (memory = total - base), documented in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TableWriter.h"

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

int main() {
  printBanner("Figure 9: execution time and memory-management overhead",
              "Figure 9");

  WorkloadOptions Opt = defaultOptions();
  unsigned Repeats = envRepeats();
  const BackendKind Allocators[] = {
      BackendKind::Sun, BackendKind::Bsd,        BackendKind::Lea,
      BackendKind::Gc,  BackendKind::RegionSafe, BackendKind::RegionUnsafe};

  TableWriter T({"name", "allocator", "total ms", "base ms", "memory ms",
                 "instr mem ms", "vs best malloc"});
  for (WorkloadId W : kAllWorkloads) {
    double Base = runMedian(W, BackendKind::Bump, Opt, Repeats).Millis;
    double Totals[6];
    double InstrMem[6];
    for (int I = 0; I != 6; ++I) {
      Totals[I] = runMedian(W, Allocators[I], Opt, Repeats).Millis;
      // One instrumented run: direct measurement of time inside the
      // allocation library, the paper's own methodology.
      WorkloadOptions Instr = Opt;
      Instr.InstrumentMemoryTime = true;
      InstrMem[I] =
          static_cast<double>(
              runWorkload(W, Allocators[I], Instr).InstrumentedMemoryNs) /
          1e6;
    }
    double BestMalloc = Totals[0];
    for (int I = 1; I != 3; ++I)
      BestMalloc = std::min(BestMalloc, Totals[I]);
    for (int I = 0; I != 6; ++I) {
      double Memory = Totals[I] > Base ? Totals[I] - Base : 0.0;
      T.addRow({workloadName(W), backendName(Allocators[I]),
                TableWriter::fmt(Totals[I], 1), TableWriter::fmt(Base, 1),
                TableWriter::fmt(Memory, 1),
                TableWriter::fmt(InstrMem[I], 1),
                TableWriter::fmtPercentOf(Totals[I], BestMalloc)});
    }
    if (W == WorkloadId::Moss) {
      // The paper's "slow" bar: moss without the two-region split.
      WorkloadOptions Slow = Opt;
      Slow.MossSplitRegions = false;
      double SlowMs =
          runMedian(W, BackendKind::RegionSafe, Slow, Repeats).Millis;
      T.addRow({"moss", "reg-slow", TableWriter::fmt(SlowMs, 1),
                TableWriter::fmt(Base, 1),
                TableWriter::fmt(SlowMs > Base ? SlowMs - Base : 0.0, 1),
                "-", TableWriter::fmtPercentOf(SlowMs, BestMalloc)});
    }
  }
  T.print();
  std::printf(
      "\nPaper shape: unsafe regions are fastest everywhere (up to 16%%);\n"
      "safe regions are as fast or faster than every malloc on most\n"
      "programs and only slightly slower on the compiler benchmarks; the\n"
      "moss reg-slow bar shows the cost of ignoring locality (5.5).\n");
  return 0;
}
