//===- alloc/MallocInterface.h - malloc/free baseline API ------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common interface for the three malloc/free baselines of §5.2 (Sun,
/// BSD, Lea). All of them draw pages from a PageSource so the paper's
/// Figure 8 "memory requested from the OS" metric is measured the same
/// way as for regions, and none ever returns memory to the OS (matching
/// the real allocators' behaviour on the paper's platform).
///
/// Every allocator places an 8-byte header immediately before the
/// payload: {Aux, ReqSize}. Aux is allocator-private (bucket index,
/// flag bits); ReqSize lets the shared statistics layer maintain the
/// live-requested-bytes high-water mark the paper's tables report.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_MALLOCINTERFACE_H
#define ALLOC_MALLOCINTERFACE_H

#include "support/Align.h"
#include "support/PageSource.h"

#include <cassert>
#include <cstdint>

namespace regions {

/// Shared allocation statistics (Table 3 columns).
struct MallocStats {
  std::uint64_t TotalAllocs = 0;
  std::uint64_t TotalFrees = 0;
  std::uint64_t TotalRequestedBytes = 0;
  std::uint64_t LiveRequestedBytes = 0;
  std::uint64_t MaxLiveRequestedBytes = 0;
};

/// Header preceding every payload returned by a MallocInterface.
struct AllocHeader {
  std::uint32_t Aux;     ///< allocator-private (bucket index, flags)
  std::uint32_t ReqSize; ///< bytes the caller asked for
};
static_assert(sizeof(AllocHeader) == 8, "header must stay one word");

/// Abstract malloc/free allocator with uniform statistics.
class MallocInterface {
public:
  explicit MallocInterface(std::size_t ReserveBytes = std::size_t{1} << 30)
      : Source(ReserveBytes) {}
  virtual ~MallocInterface() = default;

  MallocInterface(const MallocInterface &) = delete;
  MallocInterface &operator=(const MallocInterface &) = delete;

  /// Allocates \p Size bytes (8-aligned, uninitialized). Size 0 is
  /// served as size 1, as common mallocs do.
  void *malloc(std::size_t Size) {
    if (Size == 0)
      Size = 1;
    assert(Size < (std::uint64_t{1} << 32) && "allocation too large");
    void *Payload = doMalloc(Size);
    headerOf(Payload)->ReqSize = static_cast<std::uint32_t>(Size);
    ++Stats.TotalAllocs;
    Stats.TotalRequestedBytes += Size;
    Stats.LiveRequestedBytes += Size;
    if (Stats.LiveRequestedBytes > Stats.MaxLiveRequestedBytes)
      Stats.MaxLiveRequestedBytes = Stats.LiveRequestedBytes;
    return Payload;
  }

  /// Frees a pointer obtained from malloc. Null is ignored.
  void free(void *Payload) {
    if (!Payload)
      return;
    ++Stats.TotalFrees;
    Stats.LiveRequestedBytes -= headerOf(Payload)->ReqSize;
    doFree(Payload);
  }

  /// Human-readable allocator name for the benchmark tables.
  virtual const char *name() const = 0;

  /// Bytes this allocator has requested from the OS.
  std::size_t osBytes() const { return Source.osBytes(); }

  const MallocStats &stats() const { return Stats; }

protected:
  static AllocHeader *headerOf(void *Payload) {
    return reinterpret_cast<AllocHeader *>(Payload) - 1;
  }

  /// Returns a payload pointer whose preceding AllocHeader has Aux
  /// already filled in; the base class writes ReqSize.
  virtual void *doMalloc(std::size_t Size) = 0;
  virtual void doFree(void *Payload) = 0;

  PageSource Source;

private:
  MallocStats Stats;
};

} // namespace regions

#endif // ALLOC_MALLOCINTERFACE_H
