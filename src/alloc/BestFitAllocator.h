//===- alloc/BestFitAllocator.h - Solaris-style best-fit malloc -*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "Sun" baseline (§5.2): the default Solaris 2.5.1
/// allocator, a general-purpose best-fit allocator built on a
/// self-adjusting size-ordered tree (Sleator/Tarjan style).
///
/// Design: boundary-tag chunks (shared with LeaAllocator) indexed by an
/// unbalanced binary search tree keyed on chunk size, with same-size
/// chunks chained off one tree node. Allocation is a ceiling search
/// (true best fit); free coalesces immediately. Tree nodes live inside
/// the free chunks themselves, so the minimum chunk is larger than
/// Lea's — one of the reasons the Sun allocator trails Lea on small
/// objects, as in the paper's measurements.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_BESTFITALLOCATOR_H
#define ALLOC_BESTFITALLOCATOR_H

#include "alloc/BoundaryTags.h"

namespace regions {

namespace detail {

/// Size-ordered BST free structure with duplicate chains.
class TreeFreeStructure {
public:
  /// Head + {Left,Right,Dup} + footer.
  static constexpr std::size_t kMinChunkBytes = 48;

  char *findFit(std::size_t Need);
  void insert(char *C);
  void remove(char *C);

private:
  struct Node {
    std::size_t Head;
    Node *Left;
    Node *Right;
    Node *Dup; ///< same-size chunks, singly linked
  };

  static Node *asNode(char *C) { return reinterpret_cast<Node *>(C); }
  static std::size_t nodeSize(const Node *N) {
    return N->Head & bt::kSizeMask;
  }

  /// Replaces child \p Old of \p Parent (or the root) with \p New.
  void replaceChild(Node *Parent, Node *Old, Node *New) {
    if (!Parent)
      Root = New;
    else if (Parent->Left == Old)
      Parent->Left = New;
    else
      Parent->Right = New;
  }

  /// Standard BST removal of tree node \p N whose parent is \p Parent.
  void removeTreeNode(Node *Parent, Node *N);

  Node *Root = nullptr;
};

} // namespace detail

/// Solaris-style best-fit malloc baseline.
class BestFitAllocator
    : public BoundaryTagAllocator<detail::TreeFreeStructure> {
public:
  using BoundaryTagAllocator::BoundaryTagAllocator;
  const char *name() const override { return "sun"; }
};

} // namespace regions

#endif // ALLOC_BESTFITALLOCATOR_H
