//===- alloc/LeaAllocator.h - Doug Lea-style binned malloc -----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "Lea" baseline (§5.2): Doug Lea's malloc v2.6.4, "good
/// performance overall" and the best memory usage in prior surveys.
///
/// Design (after dlmalloc 2.6.x): boundary-tag chunks with immediate
/// coalescing; exact-size doubly-linked bins every 8 bytes for small
/// chunks and size-sorted logarithmic bins for large chunks, giving
/// near-best-fit placement with O(1) small-chunk turnaround.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_LEAALLOCATOR_H
#define ALLOC_LEAALLOCATOR_H

#include "alloc/BoundaryTags.h"

namespace regions {

namespace detail {

/// Binned free-structure policy for BoundaryTagAllocator.
class BinnedFreeStructure {
public:
  /// Head + Fd + Bk + footer.
  static constexpr std::size_t kMinChunkBytes = 32;

  BinnedFreeStructure() {
    for (auto &Bin : Bins) {
      Bin.Fd = &Bin;
      Bin.Bk = &Bin;
    }
  }

  char *findFit(std::size_t Need) {
    // The bin bitmap (dlmalloc's binblocks) skips empty bins, keeping
    // allocation O(1)-ish even right after a burst of frees.
    for (unsigned I = nextNonEmpty(binIndex(Need)); I != kNumBins;
         I = nextNonEmpty(I + 1)) {
      for (FreeNode *N = Bins[I].Fd; N != &Bins[I]; N = N->Fd) {
        if (nodeSize(N) < Need)
          continue; // sorted large bins: keep walking
        unlinkIn(I, N);
        return reinterpret_cast<char *>(N);
      }
    }
    return nullptr;
  }

  void insert(char *C) {
    auto *N = reinterpret_cast<FreeNode *>(C);
    unsigned I = binIndex(nodeSize(N));
    FreeNode &Bin = Bins[I];
    FreeNode *Pos = Bin.Fd;
    if (nodeSize(N) > kSmallMax) {
      // Large bins are kept sorted ascending so the first fit found by
      // findFit is the smallest adequate chunk.
      while (Pos != &Bin && nodeSize(Pos) < nodeSize(N))
        Pos = Pos->Fd;
    }
    N->Fd = Pos;
    N->Bk = Pos->Bk;
    Pos->Bk->Fd = N;
    Pos->Bk = N;
    BinMap[I / 64] |= std::uint64_t{1} << (I % 64);
  }

  void remove(char *C) {
    auto *N = reinterpret_cast<FreeNode *>(C);
    unlinkIn(binIndex(nodeSize(N)), N);
  }

private:
  struct FreeNode {
    std::size_t Head;
    FreeNode *Fd;
    FreeNode *Bk;
  };

  static constexpr std::size_t kSmallMax = 512;
  static constexpr unsigned kNumSmallBins =
      (kSmallMax - kMinChunkBytes) / 8 + 1; // 32..512 step 8
  static constexpr unsigned kNumLargeBins = 23; // log2 spaced, 512..4G
  static constexpr unsigned kNumBins = kNumSmallBins + kNumLargeBins;

  static std::size_t nodeSize(const FreeNode *N) {
    return N->Head & bt::kSizeMask;
  }

  static unsigned binIndex(std::size_t Size) {
    if (Size <= kSmallMax)
      return static_cast<unsigned>((Size - kMinChunkBytes) / 8);
    unsigned Log = 0;
    std::size_t S = Size >> 9; // 512 -> 1
    while (S > 1 && Log + 1 < kNumLargeBins) {
      S >>= 1;
      ++Log;
    }
    return kNumSmallBins + Log;
  }

  void unlinkIn(unsigned I, FreeNode *N) {
    N->Bk->Fd = N->Fd;
    N->Fd->Bk = N->Bk;
    if (Bins[I].Fd == &Bins[I])
      BinMap[I / 64] &= ~(std::uint64_t{1} << (I % 64));
  }

  /// First bin index >= I whose bitmap bit is set, or kNumBins.
  unsigned nextNonEmpty(unsigned I) const {
    while (I < kNumBins) {
      std::uint64_t Word = BinMap[I / 64] >> (I % 64);
      if (Word)
        return I + static_cast<unsigned>(__builtin_ctzll(Word));
      I = (I / 64 + 1) * 64;
    }
    return kNumBins;
  }

  FreeNode Bins[kNumBins];
  std::uint64_t BinMap[(kNumBins + 63) / 64] = {};
};

} // namespace detail

/// Doug Lea-style malloc baseline.
class LeaAllocator : public BoundaryTagAllocator<detail::BinnedFreeStructure> {
public:
  using BoundaryTagAllocator::BoundaryTagAllocator;
  const char *name() const override { return "lea"; }
};

} // namespace regions

#endif // ALLOC_LEAALLOCATOR_H
