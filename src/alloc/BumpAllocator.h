//===- alloc/BumpAllocator.h - Infinitely-fast null allocator --*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump allocator whose free() is a no-op. Not a baseline from the
/// paper: the experiment harness uses it as the "zero-cost memory
/// management" backend to measure each workload's *base* execution time
/// (the paper instead instruments time spent inside the libraries; see
/// EXPERIMENTS.md for the substitution).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_BUMPALLOCATOR_H
#define ALLOC_BUMPALLOCATOR_H

#include "alloc/MallocInterface.h"

namespace regions {

/// Bump-pointer allocator over big slabs; never frees.
class BumpAllocator : public MallocInterface {
public:
  explicit BumpAllocator(std::size_t ReserveBytes = std::size_t{2} << 30)
      : MallocInterface(ReserveBytes) {}

  const char *name() const override { return "bump"; }

protected:
  void *doMalloc(std::size_t Size) override {
    std::size_t Need = sizeof(AllocHeader) + alignTo(Size, kDefaultAlignment);
    if (!Slab || SlabOffset + Need > SlabBytes) {
      SlabBytes = Need > kSlabBytes ? alignTo(Need, kPageSize) : kSlabBytes;
      Slab = static_cast<char *>(Source.allocPages(SlabBytes / kPageSize));
      SlabOffset = 0;
    }
    char *Base = Slab + SlabOffset;
    SlabOffset += Need;
    reinterpret_cast<AllocHeader *>(Base)->Aux = 0;
    return Base + sizeof(AllocHeader);
  }

  void doFree(void *) override {}

private:
  static constexpr std::size_t kSlabBytes = 1 << 20;
  char *Slab = nullptr;
  std::size_t SlabOffset = 0;
  std::size_t SlabBytes = 0;
};

} // namespace regions

#endif // ALLOC_BUMPALLOCATOR_H
