//===- alloc/BoundaryTags.h - Boundary-tag heap machinery ------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Knuth-style boundary-tag chunks with immediate coalescing, shared by
/// the "Lea" (dlmalloc-style binned) and "Sun" (best-fit tree) malloc
/// baselines. The free-structure policy is a template parameter; the
/// splitting, coalescing, and segment logic live here so both
/// allocators manage identical chunk layouts:
///
///   in use: [Head(8)] [AllocHeader(8)] [payload...]
///   free:   [Head(8)] [policy node...]        [Footer(8) = size]
///
/// Head = chunk size (multiple of 8) | kThisInUse | kPrevInUse. A free
/// chunk's size is replicated in its last word (the footer) so the
/// following chunk can find its start for coalescing. Segments end with
/// a zero-size fence chunk marked in-use so coalescing never crosses a
/// segment boundary.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_BOUNDARYTAGS_H
#define ALLOC_BOUNDARYTAGS_H

#include "alloc/MallocInterface.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace regions {
namespace bt {

inline constexpr std::size_t kThisInUse = 1;
inline constexpr std::size_t kPrevInUse = 2;
inline constexpr std::size_t kSizeMask = ~std::size_t{7};

/// In-use chunk overhead: head word + AllocHeader.
inline constexpr std::size_t kInUseOverhead = 16;

inline std::size_t &head(char *C) {
  return *reinterpret_cast<std::size_t *>(C);
}
inline std::size_t chunkSize(const char *C) {
  return *reinterpret_cast<const std::size_t *>(C) & kSizeMask;
}
inline bool thisInUse(const char *C) {
  return *reinterpret_cast<const std::size_t *>(C) & kThisInUse;
}
inline bool prevInUse(const char *C) {
  return *reinterpret_cast<const std::size_t *>(C) & kPrevInUse;
}
inline bool isFence(const char *C) { return chunkSize(C) == 0; }
inline char *nextChunk(char *C) { return C + chunkSize(C); }

/// Start of the preceding chunk; valid only when !prevInUse(C).
inline char *prevChunk(char *C) {
  return C - *reinterpret_cast<std::size_t *>(C - 8);
}

/// Replicates a free chunk's size into its footer word.
inline void writeFooter(char *C) {
  *reinterpret_cast<std::size_t *>(C + chunkSize(C) - 8) = chunkSize(C);
}

inline void *payloadOf(char *C) { return C + kInUseOverhead; }
inline char *chunkOfPayload(void *Payload) {
  return static_cast<char *>(Payload) - kInUseOverhead;
}

/// Chunk bytes needed to serve a request of \p Size under \p MinChunk.
inline std::size_t chunkNeedFor(std::size_t Size, std::size_t MinChunk) {
  return std::max(MinChunk, kInUseOverhead + alignTo(Size,
                                                     kDefaultAlignment));
}

} // namespace bt

/// Boundary-tag allocator parameterized over the free-structure Policy:
///   struct Policy {
///     static constexpr std::size_t kMinChunkBytes;
///     char *findFit(std::size_t Need); // unlink & return a chunk >= Need
///     void insert(char *C);            // index a free chunk
///     void remove(char *C);            // unindex a specific free chunk
///   };
template <typename Policy>
class BoundaryTagAllocator : public MallocInterface {
public:
  using MallocInterface::MallocInterface;

protected:
  void *doMalloc(std::size_t Size) override {
    std::size_t Need = bt::chunkNeedFor(Size, Policy::kMinChunkBytes);
    char *C = Free.findFit(Need);
    if (!C)
      C = newSegment(Need);
    return take(C, Need);
  }

  void doFree(void *Payload) override {
    char *C = bt::chunkOfPayload(Payload);
    assert(bt::thisInUse(C) && "double free or corrupt chunk");
    std::size_t Size = bt::chunkSize(C);
    bool PrevIn = bt::prevInUse(C);

    // Coalesce with the following chunk (the fence is in use).
    char *N = C + Size;
    if (!bt::thisInUse(N)) {
      Free.remove(N);
      Size += bt::chunkSize(N);
    }
    // Coalesce with the preceding chunk.
    if (!PrevIn) {
      char *P = bt::prevChunk(C);
      Free.remove(P);
      Size += bt::chunkSize(P);
      C = P;
      PrevIn = bt::prevInUse(C);
      assert(PrevIn && "two adjacent free chunks survived coalescing");
    }

    bt::head(C) = Size | (PrevIn ? bt::kPrevInUse : 0);
    bt::writeFooter(C);
    bt::head(C + Size) &= ~bt::kPrevInUse; // tell the neighbour we're free
    Free.insert(C);
  }

  Policy Free;

public:
  /// Result of an exhaustive boundary-tag invariant walk.
  struct HeapCheck {
    bool Ok = true;
    const char *Error = nullptr;
    std::size_t Chunks = 0;
    std::size_t FreeChunks = 0;
    std::size_t FreeBytes = 0;
  };

  /// Walks every segment checking the chunk invariants: sizes aligned
  /// and within bounds, prev-in-use flags consistent with the previous
  /// chunk, footers of free chunks replicating their size, no two
  /// adjacent free chunks, and exact termination at the fence. Used by
  /// the fuzz tests after every batch of operations.
  HeapCheck validateHeap() const {
    HeapCheck Check;
    auto Fail = [&](const char *Msg) {
      Check.Ok = false;
      if (!Check.Error)
        Check.Error = Msg;
    };
    for (const auto &[Seg, Bytes] : Segments) {
      char *C = Seg;
      char *Fence = Seg + Bytes - 8;
      bool PrevFree = false;
      if (!bt::prevInUse(C))
        Fail("first chunk must carry kPrevInUse");
      while (C < Fence && Check.Ok) {
        std::size_t Size = bt::chunkSize(C);
        if (Size < Policy::kMinChunkBytes || Size % 8 != 0) {
          Fail("chunk size out of range");
          break;
        }
        if (C + Size > Fence) {
          Fail("chunk overruns its segment");
          break;
        }
        bool InUse = bt::thisInUse(C);
        if (PrevFree && bt::prevInUse(C))
          Fail("kPrevInUse set after a free chunk");
        if (!PrevFree && !bt::prevInUse(C))
          Fail("kPrevInUse clear after an in-use chunk");
        if (!InUse) {
          if (PrevFree)
            Fail("two adjacent free chunks (missed coalescing)");
          if (*reinterpret_cast<const std::size_t *>(C + Size - 8) != Size)
            Fail("free chunk footer does not replicate its size");
          ++Check.FreeChunks;
          Check.FreeBytes += Size;
        }
        ++Check.Chunks;
        PrevFree = !InUse;
        C += Size;
      }
      if (Check.Ok && C != Fence)
        Fail("chunk walk does not land on the fence");
      if (Check.Ok && !bt::thisInUse(Fence))
        Fail("fence lost its in-use bit");
      if (Check.Ok && bt::prevInUse(Fence) == PrevFree)
        Fail("fence kPrevInUse inconsistent with last chunk");
    }
    return Check;
  }

  /// Number of segments acquired from the page source.
  std::size_t segmentCount() const { return Segments.size(); }

private:
  /// Marks \p C (already unlinked) in use, splitting off the remainder
  /// when it can stand alone as a chunk.
  void *take(char *C, std::size_t Need) {
    std::size_t Total = bt::chunkSize(C);
    std::size_t PrevBit = bt::prevInUse(C) ? bt::kPrevInUse : 0;
    assert(Total >= Need && "findFit returned a too-small chunk");

    if (Total - Need >= Policy::kMinChunkBytes) {
      char *Rest = C + Need;
      bt::head(Rest) = (Total - Need) | bt::kPrevInUse;
      bt::writeFooter(Rest);
      // The chunk after Rest already has kPrevInUse clear (C was free)
      // and its footer view now reads Rest's size via writeFooter.
      Free.insert(Rest);
      bt::head(C) = Need | bt::kThisInUse | PrevBit;
    } else {
      bt::head(C) = Total | bt::kThisInUse | PrevBit;
      bt::head(bt::nextChunk(C)) |= bt::kPrevInUse;
    }
    auto *Hdr = reinterpret_cast<AllocHeader *>(C + 8);
    Hdr->Aux = 0;
    return bt::payloadOf(C);
  }

  /// Carves a fresh segment holding at least \p Need chunk bytes and
  /// returns it as one unlinked free chunk. Segment sizes grow
  /// geometrically so small heaps stay small.
  char *newSegment(std::size_t Need) {
    std::size_t Bytes =
        std::max(Need + 8, NextSegmentPages * kPageSize);
    std::size_t Pages = alignTo(Bytes, kPageSize) / kPageSize;
    if (NextSegmentPages < kMaxSegmentPages)
      NextSegmentPages *= 2;
    char *Seg = static_cast<char *>(Source.allocPages(Pages));
    Segments.emplace_back(Seg, Pages * kPageSize);
    std::size_t ChunkBytes = Pages * kPageSize - 8;
    bt::head(Seg) = ChunkBytes | bt::kPrevInUse;
    bt::writeFooter(Seg);
    char *Fence = Seg + ChunkBytes;
    bt::head(Fence) = 0 | bt::kThisInUse; // kPrevInUse clear: Seg is free
    return Seg;
  }

  std::size_t NextSegmentPages = 16;
  static constexpr std::size_t kMaxSegmentPages = 256;
  std::vector<std::pair<char *, std::size_t>> Segments;
};

} // namespace regions

#endif // ALLOC_BOUNDARYTAGS_H
