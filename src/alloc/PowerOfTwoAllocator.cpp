//===- alloc/PowerOfTwoAllocator.cpp - BSD-style malloc ------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/PowerOfTwoAllocator.h"
#include "support/Compiler.h"

using namespace regions;

void *PowerOfTwoAllocator::doMalloc(std::size_t Size) {
  std::size_t Chunk = chunkBytesFor(Size);
  unsigned Bucket = log2OfPow2(Chunk);
  assert(Bucket >= kMinBucket && Bucket <= kMaxBucket && "size out of range");

  if (!FreeLists[Bucket]) {
    if (Chunk <= kPageSize) {
      // Carve a fresh page into equal chunks and chain them.
      char *Page = static_cast<char *>(Source.allocPages(1));
      FreeChunk *Head = nullptr;
      for (std::size_t Off = 0; Off + Chunk <= kPageSize; Off += Chunk) {
        auto *C = reinterpret_cast<FreeChunk *>(Page + Off);
        C->Next = Head;
        Head = C;
      }
      FreeLists[Bucket] = Head;
    } else {
      auto *C = static_cast<FreeChunk *>(Source.allocPages(Chunk / kPageSize));
      C->Next = nullptr;
      FreeLists[Bucket] = C;
    }
  }

  FreeChunk *C = FreeLists[Bucket];
  FreeLists[Bucket] = C->Next;
  auto *Hdr = reinterpret_cast<AllocHeader *>(C);
  Hdr->Aux = Bucket;
  return Hdr + 1;
}

void PowerOfTwoAllocator::doFree(void *Payload) {
  AllocHeader *Hdr = headerOf(Payload);
  unsigned Bucket = Hdr->Aux;
  assert(Bucket >= kMinBucket && Bucket <= kMaxBucket &&
         "corrupt chunk header");
  auto *C = reinterpret_cast<FreeChunk *>(Hdr);
  C->Next = FreeLists[Bucket];
  FreeLists[Bucket] = C;
}
