//===- alloc/PowerOfTwoAllocator.h - BSD-style malloc ----------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "BSD" baseline (§5.2): "It rounds allocations up to the
/// nearest power of two. It features fast allocation and deallocation
/// but has a very large memory overhead."
///
/// Design (after 4.2BSD malloc): segregated free lists per power-of-two
/// size class. Sub-page classes carve whole pages into equal chunks;
/// super-page classes round to a power-of-two number of pages. Chunks
/// are never split, coalesced, or returned, so both alloc and free are
/// a handful of instructions — and fragmentation is maximal.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_POWEROFTWOALLOCATOR_H
#define ALLOC_POWEROFTWOALLOCATOR_H

#include "alloc/MallocInterface.h"

namespace regions {

/// BSD-style power-of-two segregated-fit allocator.
class PowerOfTwoAllocator : public MallocInterface {
public:
  explicit PowerOfTwoAllocator(std::size_t ReserveBytes = std::size_t{1}
                                                          << 30)
      : MallocInterface(ReserveBytes) {
    for (auto &Head : FreeLists)
      Head = nullptr;
  }

  const char *name() const override { return "bsd"; }

  /// Chunk bytes used for a request of \p Size (tests/diagnostics).
  static std::size_t chunkBytesFor(std::size_t Size) {
    std::size_t Total = sizeof(AllocHeader) + Size;
    if (Total <= kMinChunk)
      return kMinChunk;
    return nextPowerOf2(Total);
  }

protected:
  void *doMalloc(std::size_t Size) override;
  void doFree(void *Payload) override;

private:
  struct FreeChunk {
    FreeChunk *Next;
  };

  // Buckets 4 (16 B) .. 30 (1 GiB); sub-page buckets end at 12 (4 KiB).
  static constexpr unsigned kMinBucket = 4;
  static constexpr unsigned kMaxBucket = 30;
  static constexpr std::size_t kMinChunk = std::size_t{1} << kMinBucket;

  FreeChunk *FreeLists[kMaxBucket + 1];
};

} // namespace regions

#endif // ALLOC_POWEROFTWOALLOCATOR_H
