//===- alloc/BestFitAllocator.cpp - Solaris-style best-fit malloc --------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/BestFitAllocator.h"

using namespace regions;
using namespace regions::detail;

char *TreeFreeStructure::findFit(std::size_t Need) {
  // Ceiling search: smallest node with size >= Need, tracking its
  // parent so removal needs no second descent.
  Node *Best = nullptr, *BestParent = nullptr;
  Node *Cur = Root, *Parent = nullptr;
  while (Cur) {
    if (nodeSize(Cur) >= Need) {
      Best = Cur;
      BestParent = Parent;
      if (nodeSize(Cur) == Need)
        break;
      Parent = Cur;
      Cur = Cur->Left;
    } else {
      Parent = Cur;
      Cur = Cur->Right;
    }
  }
  if (!Best)
    return nullptr;
  // Prefer a duplicate: unhooking it is O(1).
  if (Best->Dup) {
    Node *D = Best->Dup;
    Best->Dup = D->Dup;
    return reinterpret_cast<char *>(D);
  }
  removeTreeNode(BestParent, Best);
  return reinterpret_cast<char *>(Best);
}

void TreeFreeStructure::insert(char *C) {
  Node *N = asNode(C);
  N->Left = N->Right = N->Dup = nullptr;
  std::size_t Size = nodeSize(N);
  Node *Cur = Root, *Parent = nullptr;
  while (Cur) {
    if (nodeSize(Cur) == Size) {
      // Chain behind the tree node; order within a size is irrelevant.
      N->Dup = Cur->Dup;
      Cur->Dup = N;
      return;
    }
    Parent = Cur;
    Cur = Size < nodeSize(Cur) ? Cur->Left : Cur->Right;
  }
  if (!Parent) {
    Root = N;
    return;
  }
  if (Size < nodeSize(Parent))
    Parent->Left = N;
  else
    Parent->Right = N;
}

void TreeFreeStructure::remove(char *C) {
  Node *N = asNode(C);
  std::size_t Size = nodeSize(N);
  // Locate the tree node for this size, tracking its parent.
  Node *Cur = Root, *Parent = nullptr;
  while (Cur && nodeSize(Cur) != Size) {
    Parent = Cur;
    Cur = Size < nodeSize(Cur) ? Cur->Left : Cur->Right;
  }
  assert(Cur && "removing a chunk that was never inserted");

  if (Cur == N) {
    if (Node *D = Cur->Dup) {
      // Promote the first duplicate into the tree position; D->Dup is
      // already the rest of the chain.
      D->Left = Cur->Left;
      D->Right = Cur->Right;
      replaceChild(Parent, Cur, D);
      return;
    }
    removeTreeNode(Parent, Cur);
    return;
  }
  // N is somewhere in the duplicate chain.
  Node *Prev = Cur;
  while (Prev->Dup != N) {
    Prev = Prev->Dup;
    assert(Prev && "chunk missing from its duplicate chain");
  }
  Prev->Dup = N->Dup;
}

void TreeFreeStructure::removeTreeNode(Node *Parent, Node *N) {
  if (!N->Left) {
    replaceChild(Parent, N, N->Right);
    return;
  }
  if (!N->Right) {
    replaceChild(Parent, N, N->Left);
    return;
  }
  // Two children: splice in the in-order successor.
  Node *SuccParent = N;
  Node *Succ = N->Right;
  while (Succ->Left) {
    SuccParent = Succ;
    Succ = Succ->Left;
  }
  if (SuccParent != N) {
    SuccParent->Left = Succ->Right;
    Succ->Right = N->Right;
  }
  Succ->Left = N->Left;
  replaceChild(Parent, N, Succ);
}
