//===- gc/GcHeap.cpp - Conservative mark-sweep collector ------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/GcHeap.h"
#include "region/RuntimeStack.h"
#include "support/Compiler.h"
#include "support/Stopwatch.h"

#include <cassert>
#include <csetjmp>
#include <cstring>
#include <pthread.h>

using namespace regions;

const std::uint16_t GcHeap::ClassBytes[GcHeap::kNumClasses] = {
    16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048};

GcHeap::GcHeap(std::size_t ReserveBytes) : MallocInterface(ReserveBytes) {
  Pages.resize(Source.reservedPages());
  captureStackBottom();
}

std::uint8_t GcHeap::classFor(std::size_t TotalBytes) {
  for (std::uint8_t I = 0; I != kNumClasses; ++I)
    if (ClassBytes[I] >= TotalBytes)
      return I;
  rgn_unreachable("classFor called with a large-object size");
}

void GcHeap::captureStackBottom() {
  // Resolve the thread's true stack top (its highest address; the
  // "bottom" of a downward-growing stack) so conservative scans cover
  // every caller frame no matter how deep this call sits.
  pthread_attr_t Attr;
  if (pthread_getattr_np(pthread_self(), &Attr) != 0) {
    StackBottom = static_cast<char *>(__builtin_frame_address(0));
    return;
  }
  void *Addr = nullptr;
  std::size_t Size = 0;
  pthread_attr_getstack(&Attr, &Addr, &Size);
  pthread_attr_destroy(&Attr);
  StackBottom = static_cast<char *>(Addr) + Size;
}

void GcHeap::addRootRange(void *Begin, void *End) {
  RootRanges.emplace_back(static_cast<char *>(Begin),
                          static_cast<char *>(End));
}

void GcHeap::removeRootRange(void *Begin) {
  for (auto &Range : RootRanges) {
    if (Range.first != Begin)
      continue;
    Range = RootRanges.back();
    RootRanges.pop_back();
    return;
  }
  assert(false && "removeRootRange: range was never registered");
}

void GcHeap::carvePage(std::uint8_t ClassIdx) {
  char *Page = static_cast<char *>(Source.allocPages(1));
  PageInfo &Info = Pages[Source.pageIndex(Page)];
  Info.Kind = PageKind::Small;
  Info.ClassIdx = ClassIdx;
  if (FreeBitmapSlots.empty()) {
    Info.Extra = static_cast<std::uint32_t>(BitmapPool.size());
    BitmapPool.emplace_back();
  } else {
    Info.Extra = FreeBitmapSlots.back();
    FreeBitmapSlots.pop_back();
  }
  std::memset(&BitmapPool[Info.Extra], 0, sizeof(Bitmaps));

  std::size_t Bytes = ClassBytes[ClassIdx];
  FreeChunk *Head = FreeLists[ClassIdx];
  for (std::size_t Off = 0; Off + Bytes <= kPageSize; Off += Bytes) {
    auto *C = reinterpret_cast<FreeChunk *>(Page + Off);
    C->Next = Head;
    Head = C;
  }
  FreeLists[ClassIdx] = Head;
}

void GcHeap::maybeCollect(std::size_t UpcomingBytes) {
  std::size_t Threshold =
      std::max(MinHeapBytes,
               static_cast<std::size_t>(
                   GrowthFactor * static_cast<double>(LiveBytes)));
  if (BytesSinceGc + UpcomingBytes > Threshold)
    collect();
}

void *GcHeap::doMalloc(std::size_t Size) {
  std::size_t Total = sizeof(AllocHeader) + Size;
  assert(!InCollection && "allocation during collection");

  if (Total > ClassBytes[kNumClasses - 1]) {
    // Large object: dedicated page run.
    maybeCollect(Total);
    std::size_t NumPages = alignTo(Total, kPageSize) / kPageSize;
    char *Run = static_cast<char *>(Source.allocPages(NumPages));
    std::size_t Idx = Source.pageIndex(Run);
    Pages[Idx].Kind = PageKind::LargeStart;
    Pages[Idx].LargeMark = 0;
    Pages[Idx].Extra = static_cast<std::uint32_t>(NumPages);
    for (std::size_t I = 1; I != NumPages; ++I)
      Pages[Idx + I].Kind = PageKind::LargeCont;
    BytesSinceGc += NumPages * kPageSize;
    LiveBytes += NumPages * kPageSize;
    auto *Hdr = reinterpret_cast<AllocHeader *>(Run);
    Hdr->Aux = 0;
    // Clear: stale pointers in recycled pages would cause false
    // retention under conservative marking.
    std::memset(Run + sizeof(AllocHeader), 0, Total - sizeof(AllocHeader));
    return Hdr + 1;
  }

  std::uint8_t Cls = classFor(Total);
  if (!FreeLists[Cls]) {
    maybeCollect(ClassBytes[Cls]);
    if (!FreeLists[Cls])
      carvePage(Cls);
  }
  FreeChunk *C = FreeLists[Cls];
  FreeLists[Cls] = C->Next;

  char *Chunk = reinterpret_cast<char *>(C);
  PageInfo &Info = infoFor(Chunk);
  std::size_t ChunkIdx =
      (Chunk - pageBase(Chunk)) / ClassBytes[Info.ClassIdx];
  BitmapPool[Info.Extra].Alloc[ChunkIdx >> 6] |= std::uint64_t{1}
                                                 << (ChunkIdx & 63);
  BytesSinceGc += ClassBytes[Cls];
  LiveBytes += ClassBytes[Cls];
  std::memset(Chunk, 0, ClassBytes[Cls]);
  auto *Hdr = reinterpret_cast<AllocHeader *>(Chunk);
  Hdr->Aux = Cls;
  return Hdr + 1;
}

bool GcHeap::isLiveObject(const void *Ptr) const {
  // Handed-out bound, not the whole reservation: beyond the frontier
  // there are no objects, and the page table rows there are all Free.
  if (!Source.containsHandedOut(Ptr))
    return false;
  const PageInfo &Info = Pages[Source.pageIndex(Ptr)];
  switch (Info.Kind) {
  case PageKind::Free:
    return false;
  case PageKind::LargeStart:
  case PageKind::LargeCont:
    return true;
  case PageKind::Small: {
    auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
    std::size_t ChunkIdx = (Addr & (kPageSize - 1)) / ClassBytes[Info.ClassIdx];
    return BitmapPool[Info.Extra].Alloc[ChunkIdx >> 6] &
           (std::uint64_t{1} << (ChunkIdx & 63));
  }
  }
  return false;
}

void GcHeap::markWord(std::uintptr_t Word) {
  auto *Ptr = reinterpret_cast<char *>(Word);
  if (!Source.containsHandedOut(Ptr))
    return;
  std::size_t Idx = Source.pageIndex(Ptr);
  PageInfo *Info = &Pages[Idx];

  if (Info->Kind == PageKind::LargeCont) {
    // Interior pointer into a large run: walk back to the start page.
    while (Info->Kind == PageKind::LargeCont) {
      --Idx;
      Info = &Pages[Idx];
    }
  }
  if (Info->Kind == PageKind::LargeStart) {
    if (Info->LargeMark)
      return;
    Info->LargeMark = 1;
    char *Run = Source.base() + Idx * kPageSize;
    MarkStack.emplace_back(Run, Info->Extra * kPageSize);
    return;
  }
  if (Info->Kind != PageKind::Small)
    return;

  std::size_t Bytes = ClassBytes[Info->ClassIdx];
  char *Page = Source.base() + Idx * kPageSize;
  std::size_t ChunkIdx =
      static_cast<std::size_t>(Ptr - Page) / Bytes;
  Bitmaps &B = BitmapPool[Info->Extra];
  std::uint64_t Bit = std::uint64_t{1} << (ChunkIdx & 63);
  if (!(B.Alloc[ChunkIdx >> 6] & Bit))
    return; // free chunk: stale pointer, ignore
  if (B.Mark[ChunkIdx >> 6] & Bit)
    return; // already marked
  B.Mark[ChunkIdx >> 6] |= Bit;
  MarkStack.emplace_back(Page + ChunkIdx * Bytes, Bytes);
}

// Reads every word between two addresses; when the range is a thread
// stack this crosses ASan's inter-variable redzones by design, so the
// scan runs uninstrumented (RGN_NO_SANITIZE_ADDRESS on the declaration).
void GcHeap::markRange(const void *Begin, const void *End) {
  auto Lo = alignTo(reinterpret_cast<std::uintptr_t>(Begin), sizeof(void *));
  auto Hi = alignDown(reinterpret_cast<std::uintptr_t>(End), sizeof(void *));
  for (auto P = Lo; P < Hi; P += sizeof(void *))
    markWord(*reinterpret_cast<const std::uintptr_t *>(P));
}

void GcHeap::markFromRoots() {
  for (const auto &[Begin, End] : RootRanges)
    markRange(Begin, End);

  // The region runtime's shadow stack: locals registered through
  // rt::Ref are roots under every backend.
  auto &Stack = rt::RuntimeStack::current();
  for (const auto *N = Stack.slots(); N; N = N->Prev)
    markWord(reinterpret_cast<std::uintptr_t>(*N->Addr));

  if (ScanMachineStack && StackBottom) {
    // Spill callee-saved registers into a jmp_buf on the stack, then
    // scan from the jmp_buf itself to the captured bottom. The scan
    // must start at the jmp_buf, not __builtin_frame_address(0): the
    // frame pointer sits above this frame's locals, so starting there
    // would exclude the spilled registers — a pointer live only in a
    // callee-saved register would be missed and its object swept.
    jmp_buf Regs;
    (void)setjmp(Regs);
    char *Top = reinterpret_cast<char *>(&Regs);
    if (Top < StackBottom)
      markRange(Top, StackBottom);
    else
      markRange(StackBottom, Top);
  }

  while (!MarkStack.empty()) {
    auto [Obj, Bytes] = MarkStack.back();
    MarkStack.pop_back();
    markRange(Obj, Obj + Bytes);
  }
}

void GcHeap::sweep() {
  // Rebuild every free list from the mark bitmaps.
  for (auto &Head : FreeLists)
    Head = nullptr;
  std::size_t NewLive = 0;

  for (std::size_t Idx = 0, E = Source.osBytes() / kPageSize; Idx != E;
       ++Idx) {
    PageInfo &Info = Pages[Idx];
    char *Page = Source.base() + Idx * kPageSize;
    switch (Info.Kind) {
    case PageKind::Free:
    case PageKind::LargeCont:
      break;
    case PageKind::LargeStart: {
      std::size_t NumPages = Info.Extra;
      if (Info.LargeMark) {
        Info.LargeMark = 0;
        NewLive += NumPages * kPageSize;
        Idx += NumPages - 1;
        break;
      }
      for (std::size_t I = 0; I != NumPages; ++I)
        Pages[Idx + I].Kind = PageKind::Free;
      Source.freePages(Page, NumPages);
      ++Gc.ObjectsFreedTotal;
      Idx += NumPages - 1;
      break;
    }
    case PageKind::Small: {
      Bitmaps &B = BitmapPool[Info.Extra];
      std::size_t Bytes = ClassBytes[Info.ClassIdx];
      std::size_t NumChunks = kPageSize / Bytes;
      bool AnyLive = false;
      for (std::size_t C = 0; C != NumChunks; ++C) {
        std::uint64_t Bit = std::uint64_t{1} << (C & 63);
        bool WasAlloc = B.Alloc[C >> 6] & Bit;
        bool Marked = B.Mark[C >> 6] & Bit;
        if (WasAlloc && !Marked)
          ++Gc.ObjectsFreedTotal;
        if (Marked) {
          AnyLive = true;
          NewLive += Bytes;
        }
      }
      for (int W = 0; W != 4; ++W) {
        B.Alloc[W] &= B.Mark[W];
        B.Mark[W] = 0;
      }
      if (!AnyLive) {
        FreeBitmapSlots.push_back(Info.Extra);
        Info.Kind = PageKind::Free;
        Source.freePages(Page, 1);
        break;
      }
      // Chain every unallocated chunk back onto its class free list.
      for (std::size_t C = 0; C != NumChunks; ++C) {
        std::uint64_t Bit = std::uint64_t{1} << (C & 63);
        if (B.Alloc[C >> 6] & Bit)
          continue;
        auto *Chunk = reinterpret_cast<FreeChunk *>(Page + C * Bytes);
        Chunk->Next = FreeLists[Info.ClassIdx];
        FreeLists[Info.ClassIdx] = Chunk;
      }
      break;
    }
    }
  }
  LiveBytes = NewLive;
}

void GcHeap::collect() {
  assert(!InCollection && "re-entrant collection");
  InCollection = true;
  std::uint64_t Start = monotonicNanos();

  markFromRoots();
  sweep();

  std::uint64_t Pause = monotonicNanos() - Start;
  ++Gc.Collections;
  Gc.TotalPauseNs += Pause;
  if (Pause > Gc.MaxPauseNs)
    Gc.MaxPauseNs = Pause;
  Gc.LiveBytesAfterLastGc = LiveBytes;
  BytesSinceGc = 0;
  InCollection = false;
}
