//===- gc/GcHeap.h - Conservative mark-sweep collector ---------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "GC" baseline (§5.2): the Boehm-Weiser conservative
/// garbage collector v4.12, used with free() disabled so memory safety
/// is guaranteed.
///
/// Design (after Boehm-Weiser): a non-moving collector over 4 KB pages.
/// Small objects come from size-class pages with per-object allocation
/// and mark bitmaps; large objects occupy dedicated page runs. Marking
/// is conservative: any aligned word that could be a pointer into an
/// allocated object (interior pointers included) keeps that object
/// alive. Roots are registered ranges, the region runtime's shadow
/// stack, and (by default) the machine stack plus spilled registers.
/// Collections trigger when the bytes allocated since the last
/// collection exceed the live heap times a growth factor — the policy
/// that makes GC cheap with plentiful memory and expensive when the
/// application "needs most of the available memory" (§1).
///
//===----------------------------------------------------------------------===//

#ifndef GC_GCHEAP_H
#define GC_GCHEAP_H

#include "alloc/MallocInterface.h"
#include "support/Compiler.h"

#include <cstdint>
#include <vector>

namespace regions {

/// Conservative mark-sweep collected heap. Implements MallocInterface
/// so the benchmark harness can drive it like any malloc; free() is a
/// no-op, as in the paper's GC configuration.
class GcHeap : public MallocInterface {
public:
  struct GcStats {
    std::uint64_t Collections = 0;
    std::uint64_t TotalPauseNs = 0;
    std::uint64_t MaxPauseNs = 0;
    std::uint64_t LiveBytesAfterLastGc = 0;
    std::uint64_t ObjectsFreedTotal = 0;
  };

  explicit GcHeap(std::size_t ReserveBytes = std::size_t{1} << 30);

  const char *name() const override { return "gc"; }

  /// Registers [Begin, End) as a root range scanned at every collection.
  void addRootRange(void *Begin, void *End);

  /// Removes a range previously added with addRootRange.
  void removeRootRange(void *Begin);

  /// Runs a full stop-the-world collection now.
  void collect();

  /// Heap-growth trigger: collect when bytes allocated since the last
  /// collection exceed GrowthFactor * live bytes (at least MinHeap).
  void setGrowthFactor(double Factor) { GrowthFactor = Factor; }

  /// Disables/enables scanning of the machine stack and registers.
  /// Tests that manage roots exactly turn this off.
  void setScanMachineStack(bool Scan) { ScanMachineStack = Scan; }

  /// Captures the current frame address as the stack bottom; call from
  /// main/the harness before allocating.
  void captureStackBottom();

  const GcStats &gcStats() const { return Gc; }

  /// True if \p Ptr points into a currently allocated object.
  bool isLiveObject(const void *Ptr) const;

protected:
  void *doMalloc(std::size_t Size) override;
  void doFree(void *) override {} // free() disabled under GC (§5.2)

private:
  enum class PageKind : std::uint8_t { Free, Small, LargeStart, LargeCont };

  struct PageInfo {
    PageKind Kind = PageKind::Free;
    std::uint8_t ClassIdx = 0;
    std::uint8_t LargeMark = 0;
    std::uint8_t Pad = 0;
    std::uint32_t Extra = 0; ///< Small: bitmap index; LargeStart: run pages
  };

  /// Per-small-page allocation and mark bitmaps (up to 256 chunks).
  struct Bitmaps {
    std::uint64_t Alloc[4];
    std::uint64_t Mark[4];
  };

  struct FreeChunk {
    FreeChunk *Next;
  };

  static constexpr std::uint8_t kNumClasses = 15;
  static const std::uint16_t ClassBytes[kNumClasses];

  static std::uint8_t classFor(std::size_t TotalBytes);

  PageInfo &infoFor(const void *Ptr) {
    return Pages[Source.pageIndex(Ptr)];
  }

  char *pageBase(const void *Ptr) const {
    auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
    return reinterpret_cast<char *>(Addr & ~(kPageSize - 1));
  }

  void carvePage(std::uint8_t ClassIdx);
  void maybeCollect(std::size_t UpcomingBytes);

  // Mark phase helpers.
  void markWord(std::uintptr_t Word);
  // The raw-range scanner must stay uninstrumented under ASan: it
  // reads every word between two stack addresses, redzones included.
  RGN_NO_SANITIZE_ADDRESS
  void markRange(const void *Begin, const void *End);
  void markFromRoots();
  void sweep();

  std::vector<PageInfo> Pages;
  std::vector<Bitmaps> BitmapPool;
  std::vector<std::uint32_t> FreeBitmapSlots;
  FreeChunk *FreeLists[kNumClasses] = {};
  std::vector<std::pair<char *, char *>> RootRanges;
  std::vector<std::pair<char *, std::size_t>> MarkStack; ///< obj, bytes

  double GrowthFactor = 1.0;
  std::size_t MinHeapBytes = 256 * 1024;
  std::size_t BytesSinceGc = 0;
  std::size_t LiveBytes = 0; ///< allocated chunk bytes (estimate)
  bool ScanMachineStack = true;
  bool InCollection = false;
  char *StackBottom = nullptr;
  GcStats Gc;
};

} // namespace regions

#endif // GC_GCHEAP_H
