//===- support/Align.h - Alignment helpers ---------------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alignment arithmetic shared by the region library and the malloc
/// baselines. All allocators in this project align payloads to
/// \c kDefaultAlignment (8 bytes), matching the paper's ALIGN macro.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_ALIGN_H
#define SUPPORT_ALIGN_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace regions {

/// Payload alignment used by every allocator in the project.
inline constexpr std::size_t kDefaultAlignment = 8;

/// Page size used by the region library, the GC and the page sources.
/// The paper uses 4 KB pages; we keep that constant.
inline constexpr std::size_t kPageSize = 4096;
inline constexpr std::size_t kPageShift = 12;

/// Returns true if \p Value is a power of two (0 is not).
constexpr bool isPowerOf2(std::size_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Rounds \p Value up to the next multiple of \p Align (a power of two).
constexpr std::size_t alignTo(std::size_t Value, std::size_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// Rounds \p Value down to a multiple of \p Align (a power of two).
constexpr std::size_t alignDown(std::size_t Value, std::size_t Align) {
  return Value & ~(Align - 1);
}

/// Returns true if \p Ptr is aligned to \p Align bytes.
inline bool isAligned(const void *Ptr, std::size_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return (reinterpret_cast<std::uintptr_t>(Ptr) & (Align - 1)) == 0;
}

/// Smallest power of two >= \p Value (Value must be nonzero and
/// representable).
constexpr std::size_t nextPowerOf2(std::size_t Value) {
  std::size_t Result = 1;
  while (Result < Value)
    Result <<= 1;
  return Result;
}

/// Integer log2 of a power of two.
constexpr unsigned log2OfPow2(std::size_t Value) {
  unsigned Result = 0;
  while ((std::size_t{1} << Result) < Value)
    ++Result;
  return Result;
}

} // namespace regions

#endif // SUPPORT_ALIGN_H
