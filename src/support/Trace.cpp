//===- support/Trace.cpp - rstat event-trace ring buffer ------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"
#include "support/Align.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <vector>

using namespace regions;
using namespace regions::rstat;
using rstat::detail::TraceRing;

thread_local RGN_CONSTINIT TraceRing *regions::rstat::detail::GRing = nullptr;

namespace {

/// Registry of every ring attached during the current epoch, plus the
/// epoch bookkeeping. One mutex, touched only at arm/attach/export
/// time — recording is lock-free within a thread's own ring.
struct TraceRegistry {
  std::mutex Lock;
  TraceRing *Rings = nullptr; ///< newest first
  std::uint32_t NumRings = 0;
  std::size_t Capacity = 1 << 14;
  std::chrono::steady_clock::time_point EpochStart;
};

TraceRegistry &registry() {
  static TraceRegistry R;
  return R;
}

/// Bumped on every armTracing(); zero means disarmed. A thread whose
/// ring belongs to an older epoch re-attaches (getting a fresh ring)
/// at its next attach point.
std::atomic<std::uint64_t> GArmedEpoch{0};

/// The epoch GRing belongs to (meaningful only while GRing != null or
/// after a detach). Lets attachThread() notice stale rings cheaply.
thread_local RGN_CONSTINIT std::uint64_t GRingEpoch = 0;

void freeRingsLocked(TraceRegistry &Reg) {
  while (TraceRing *Ring = Reg.Rings) {
    Reg.Rings = Ring->Next;
    std::free(Ring->Events);
    std::free(Ring);
  }
  Reg.NumRings = 0;
}

/// Allocates a ring, chains it into the registry, and points the
/// calling thread's TLS at it. Caller holds Reg.Lock.
TraceRing *attachLocked(TraceRegistry &Reg) {
  auto *Ring = static_cast<TraceRing *>(std::malloc(sizeof(TraceRing)));
  auto *Events = static_cast<TraceEvent *>(
      std::calloc(Reg.Capacity, sizeof(TraceEvent)));
  if (!Ring || !Events)
    reportFatalError("rstat: cannot allocate trace ring");
  Ring->Events = Events;
  Ring->Capacity = Reg.Capacity;
  Ring->Head.store(0, std::memory_order_relaxed);
  Ring->Tid = Reg.NumRings;
  Ring->Next = Reg.Rings;
  Reg.Rings = Ring;
  ++Reg.NumRings;
  rstat::detail::GRing = Ring;
  return Ring;
}

} // namespace

const char *rstat::eventName(EventKind K) {
  switch (K) {
  case EventKind::NewRegion:
    return "newregion";
  case EventKind::DeleteRegionOk:
    return "deleteregion";
  case EventKind::DeleteRegionFail:
    return "deleteregion-refused";
  case EventKind::RunGrab:
    return "run-grab";
  case EventKind::RunFree:
    return "run-free";
  case EventKind::CoalesceSweep:
    return "coalesce-sweep";
  case EventKind::PendingFlush:
    return "pending-flush";
  case EventKind::QuarantineEvict:
    return "quarantine-evict";
  case EventKind::ShareRegion:
    return "share";
  case EventKind::TryDeleteOk:
    return "trydelete";
  case EventKind::TryDeleteRefused:
    return "trydelete-refused";
  case EventKind::ResolveStale:
    return "resolve-stale";
  case EventKind::ManagerQuiesced:
    return "quiesce";
  case EventKind::TryDeleteHandoff:
    return "trydelete-handoff";
  case EventKind::ResetRegion:
    return "resetregion";
  case EventKind::ResetRegionFail:
    return "resetregion-refused";
  case EventKind::PoolAcquire:
    return "pool-acquire";
  case EventKind::PoolRelease:
    return "pool-release";
  case EventKind::PoolTrim:
    return "pool-trim";
  }
  return "?";
}

void rstat::detail::recordSlow(TraceRing *Ring, EventKind K, std::uint64_t A,
                               std::uint32_t B) {
  auto Now = std::chrono::steady_clock::now();
  auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                Now - registry().EpochStart)
                .count();
  std::size_t Head = Ring->Head.load(std::memory_order_relaxed);
  TraceEvent &E = Ring->Events[Head % Ring->Capacity];
  E.TimeNs = Ns < 0 ? 0 : static_cast<std::uint64_t>(Ns);
  E.A = A;
  E.B = B;
  E.Kind = K;
  Ring->Head.store(Head + 1, std::memory_order_relaxed);
}

bool rstat::tracingArmed() {
  return GArmedEpoch.load(std::memory_order_relaxed) != 0;
}

void rstat::armTracing(std::size_t EventsPerThread) {
  TraceRegistry &Reg = registry();
  std::lock_guard<std::mutex> Guard(Reg.Lock);
  freeRingsLocked(Reg);
  Reg.Capacity = EventsPerThread ? EventsPerThread : 1;
  Reg.EpochStart = std::chrono::steady_clock::now();
  std::uint64_t Epoch = GArmedEpoch.fetch_add(1, std::memory_order_relaxed) + 1;
  attachLocked(Reg); // the caller always traces its own epoch
  GRingEpoch = Epoch;
}

void rstat::disarmTracing() {
  // Odd->even would be nicer, but any nonzero value means "armed", so
  // disarm is simply epoch = 0; rings (and their events) stay for
  // export until the next armTracing().
  GArmedEpoch.store(0, std::memory_order_relaxed);
  detail::GRing = nullptr;
  GRingEpoch = 0;
}

void rstat::attachThread() {
  std::uint64_t Epoch = GArmedEpoch.load(std::memory_order_relaxed);
  if (Epoch == 0) {
    // Disarmed: make sure a ring from a dead epoch stops recording.
    detail::GRing = nullptr;
    return;
  }
  if (detail::GRing && GRingEpoch == Epoch)
    return; // already attached to this epoch
  TraceRegistry &Reg = registry();
  std::lock_guard<std::mutex> Guard(Reg.Lock);
  // Re-check under the lock: arm may have raced ahead.
  Epoch = GArmedEpoch.load(std::memory_order_relaxed);
  if (Epoch == 0)
    return;
  attachLocked(Reg);
  GRingEpoch = Epoch;
}

std::size_t rstat::tracedEventCount() {
  TraceRegistry &Reg = registry();
  std::lock_guard<std::mutex> Guard(Reg.Lock);
  std::size_t N = 0;
  for (TraceRing *Ring = Reg.Rings; Ring; Ring = Ring->Next) {
    std::size_t Head = Ring->Head.load(std::memory_order_relaxed);
    N += Head < Ring->Capacity ? Head : Ring->Capacity;
  }
  return N;
}

std::size_t rstat::droppedEventCount() {
  TraceRegistry &Reg = registry();
  std::lock_guard<std::mutex> Guard(Reg.Lock);
  std::size_t N = 0;
  for (TraceRing *Ring = Reg.Rings; Ring; Ring = Ring->Next) {
    std::size_t Head = Ring->Head.load(std::memory_order_relaxed);
    if (Head > Ring->Capacity)
      N += Head - Ring->Capacity;
  }
  return N;
}

std::size_t rstat::writeChromeTrace(std::FILE *Out) {
  TraceRegistry &Reg = registry();
  std::lock_guard<std::mutex> Guard(Reg.Lock);
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", Out);
  std::size_t Written = 0;
  // Heap-shape counter derivation: the lifecycle events that move the
  // counters, pulled from every ring and merged into time order below.
  struct CounterDelta {
    std::uint64_t TimeNs;
    std::int64_t Regions;
    std::int64_t Bytes;
    std::int64_t Pooled;
  };
  std::vector<CounterDelta> Deltas;
  for (TraceRing *Ring = Reg.Rings; Ring; Ring = Ring->Next) {
    std::size_t Head = Ring->Head.load(std::memory_order_relaxed);
    std::size_t Count = Head < Ring->Capacity ? Head : Ring->Capacity;
    std::size_t First = Head - Count; // oldest surviving event
    for (std::size_t I = 0; I != Count; ++I) {
      const TraceEvent &E = Ring->Events[(First + I) % Ring->Capacity];
      if (Written)
        std::fputc(',', Out);
      // Instant events, thread-scoped; ts is microseconds (the trace
      // format's unit) with the sub-microsecond part kept as decimals.
      std::fprintf(Out,
                   "{\"name\":\"%s\",\"cat\":\"region\",\"ph\":\"i\","
                   "\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
                   "\"args\":{\"a\":%llu,\"b\":%u}}",
                   eventName(E.Kind),
                   static_cast<double>(E.TimeNs) / 1000.0, Ring->Tid,
                   static_cast<unsigned long long>(E.A), E.B);
      ++Written;
      std::int64_t Pages = static_cast<std::int64_t>(E.B);
      switch (E.Kind) {
      case EventKind::NewRegion:
        Deltas.push_back({E.TimeNs, +1, 0, 0});
        break;
      case EventKind::DeleteRegionOk:
        Deltas.push_back({E.TimeNs, -1, 0, 0});
        break;
      case EventKind::RunGrab:
        Deltas.push_back(
            {E.TimeNs, 0, Pages * static_cast<std::int64_t>(kPageSize), 0});
        break;
      case EventKind::RunFree:
        Deltas.push_back(
            {E.TimeNs, 0, -Pages * static_cast<std::int64_t>(kPageSize), 0});
        break;
      case EventKind::PoolAcquire:
        // B==1 marks a pool hit: a cached region left the pool. Misses
        // hit newRegion and are counted by its own NewRegion event.
        if (E.B == 1)
          Deltas.push_back({E.TimeNs, 0, 0, -1});
        break;
      case EventKind::PoolRelease:
        Deltas.push_back({E.TimeNs, 0, 0, +1});
        break;
      case EventKind::PoolTrim:
        // The trim's deleteRegion traces its own DeleteRegionOk and
        // RunFree events; this delta only shrinks the pooled track.
        Deltas.push_back({E.TimeNs, 0, 0, -1});
        break;
      default:
        break;
      }
    }
  }
  // Counter events ("C" phase): one running track per quantity, on a
  // synthetic tid one past the last ring so per-thread instant-event
  // timestamp order is undisturbed. Wrapped rings can drop grabs whose
  // frees survive; clamping at zero keeps the tracks meaningful.
  std::stable_sort(Deltas.begin(), Deltas.end(),
                   [](const CounterDelta &A, const CounterDelta &B) {
                     return A.TimeNs < B.TimeNs;
                   });
  std::int64_t LiveRegions = 0, LiveBytes = 0, Pooled = 0;
  for (const CounterDelta &D : Deltas) {
    LiveRegions += D.Regions;
    LiveBytes += D.Bytes;
    Pooled += D.Pooled;
    if (Written)
      std::fputc(',', Out);
    const char *Name = D.Regions  ? "live-regions"
                       : D.Pooled ? "pooled-regions"
                                  : "live-bytes";
    const char *Series = D.Bytes ? "bytes" : "regions";
    std::int64_t Value = D.Regions ? LiveRegions
                         : D.Pooled ? Pooled
                                    : LiveBytes;
    std::fprintf(Out,
                 "{\"name\":\"%s\",\"cat\":\"region\",\"ph\":\"C\","
                 "\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
                 "\"args\":{\"%s\":%lld}}",
                 Name, static_cast<double>(D.TimeNs) / 1000.0, Reg.NumRings,
                 Series,
                 static_cast<long long>(Value < 0 ? 0 : Value));
    ++Written;
  }
  std::fputs("]}\n", Out);
  return Written;
}

long rstat::writeChromeTrace(const char *Path) {
  std::FILE *Out = std::fopen(Path, "w");
  if (!Out)
    return -1;
  std::size_t N = writeChromeTrace(Out);
  std::fclose(Out);
  return static_cast<long>(N);
}
