//===- support/PageSource.h - Reserved-arena page provider -----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every allocator in this project (regions, the three malloc baselines
/// and the conservative GC) obtains 4 KB pages from a PageSource, so the
/// "memory requested from the OS" metric of the paper's Figure 8 is
/// measured identically for all of them.
///
/// A PageSource reserves a large contiguous virtual arena up front
/// (MAP_NORESERVE, so untouched pages cost nothing) and hands out page
/// runs by bumping a frontier; freed runs go to per-length free lists
/// and are reused before the frontier grows. The high-water mark of the
/// frontier is the Figure-8 "OS" number: like the real allocators in the
/// paper, a PageSource never returns memory to the operating system.
///
/// Zero-state: pages handed out from beyond the frontier high-water mark
/// have never been touched, so MAP_ANONYMOUS guarantees they read as
/// zero; allocPages reports this so clients (the region allocator's
/// ZeroMemory path) can skip clearing them. Recycled pages are flagged
/// dirty rather than re-zeroed. Single-page runs — the overwhelmingly
/// common case for region pages — recycle through a small inline cache
/// in front of the bins, avoiding the vector round-trip.
///
/// Coalescing: the free lists record runs at the length they were freed
/// at, which would slowly shred the arena into run sizes that can no
/// longer serve larger requests (and inflate the Figure-8 number by
/// forcing frontier growth past perfectly reusable pages). Instead of
/// paying merge bookkeeping on every free, coalescing is deferred: when
/// an allocation would otherwise grow the frontier while the free lists
/// hold enough pages in total, every free run is swept once, adjacent
/// runs are merged, and the request is retried — including best-fit
/// splitting from larger bins and, as a last resort, seeding the
/// allocation with a free run that abuts the frontier so only the
/// shortfall is new frontier growth. Free/alloc fast paths stay exactly
/// one cache/bin operation.
///
/// rsan quarantine (RGN_HARDEN builds, see support/Harden.h): when a
/// source is given a non-zero quarantine budget, freed runs are
/// byte-poisoned with 0xD5, ASan-poisoned when available, and parked in
/// a FIFO instead of entering the free lists; use-after-free of a page
/// then reads poison deterministically instead of whatever a recycled
/// page happens to hold. When the budget overflows, the *oldest* runs
/// are unpoisoned (ASan only — the 0xD5 bytes stay, the page is simply
/// dirty) and recycled through the normal bins. Quarantined runs are
/// only ever released through that eviction path or resetForTesting, so
/// a page can never be handed out still claiming the never-touched
/// zero-state: every quarantined page was handed out before, which
/// already puts it below the zero high-water mark for good. Quarantined
/// runs never coalesce — they are not free until evicted.
///
/// Huge pages (CMake option RGN_HUGEPAGES): the reservation is 2 MB-
/// aligned and madvise(MADV_HUGEPAGE)d so the kernel can back the arena
/// with transparent huge pages, shrinking the TLB footprint of the page
/// map and of large-region payload walks.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_PAGESOURCE_H
#define SUPPORT_PAGESOURCE_H

#include "support/Align.h"
#include "support/Harden.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace regions {

/// Provides 4 KB pages from a reserved virtual-memory arena.
class PageSource {
public:
  /// Free runs are binned by exact length up to kMaxBin; longer runs go
  /// to the overflow list and are carved first-fit. Clients that grab
  /// geometrically growing runs (the region allocator) cap their run
  /// length here so every freed run recycles through an exact bin.
  static constexpr std::size_t kMaxBin = 16;

  /// Reserves \p ReserveBytes of virtual address space (rounded up to a
  /// page multiple). The default of 1 GiB is plenty for every experiment
  /// in the paper while costing no physical memory until touched.
  explicit PageSource(std::size_t ReserveBytes = std::size_t{1} << 30);

  PageSource(const PageSource &) = delete;
  PageSource &operator=(const PageSource &) = delete;

  ~PageSource();

  /// Allocates a contiguous run of \p NumPages pages. Never returns
  /// null: address-space exhaustion is a fatal error (the experiments
  /// size their arenas generously). When \p Zeroed is non-null, it is
  /// set to true iff the entire run is known to read as zero (fresh,
  /// never-recycled pages); recycled pages report false.
  void *allocPages(std::size_t NumPages, bool *Zeroed = nullptr);

  /// Returns a page run previously obtained from allocPages to the free
  /// lists. The memory stays counted in osBytes(), matching how the
  /// paper's allocators retain freed memory. Runs may be freed whole or
  /// in arbitrary page-aligned pieces; deferred coalescing re-forms
  /// contiguous free space either way.
  void freePages(void *Ptr, std::size_t NumPages);

  /// Total bytes ever obtained from the OS (frontier high-water mark).
  std::size_t osBytes() const { return Frontier * kPageSize; }

  /// Bytes currently handed out to clients (allocated minus freed).
  std::size_t inUseBytes() const { return PagesInUse * kPageSize; }

  /// True if \p Ptr lies within the reserved arena (whether or not the
  /// page it points into is currently handed out). The bound is the
  /// full reservation, exactly as documented — it used to be the
  /// frontier, which silently excluded reserved-but-unissued pages and
  /// made the answer depend on allocation history.
  bool contains(const void *Ptr) const {
    auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
    auto Base = reinterpret_cast<std::uintptr_t>(ArenaBase);
    return Addr >= Base && Addr < Base + TotalPages * kPageSize;
  }

  /// True if \p Ptr lies within a page this source has ever handed out
  /// (i.e. below the frontier). Clients that probe arbitrary words —
  /// the conservative GC's root scan — want this tighter test: beyond
  /// the frontier there is no client data, only untouched reservation.
  bool containsHandedOut(const void *Ptr) const {
    auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
    auto Base = reinterpret_cast<std::uintptr_t>(ArenaBase);
    return Addr >= Base && Addr < Base + Frontier * kPageSize;
  }

  /// Index of the page containing \p Ptr, relative to the arena base.
  /// \pre contains(Ptr) or Ptr within the reserved range.
  std::size_t pageIndex(const void *Ptr) const {
    auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
    auto Base = reinterpret_cast<std::uintptr_t>(ArenaBase);
    return (Addr - Base) >> kPageShift;
  }

  /// Base address of the reserved arena.
  char *base() const { return ArenaBase; }

  /// Number of pages in the reserved arena.
  std::size_t reservedPages() const { return TotalPages; }

  /// Resets all bookkeeping and hands back the entire arena as fresh.
  /// Only for tests and between-benchmark isolation; outstanding
  /// pointers become invalid. Pages the pre-reset run already touched
  /// stay flagged dirty: the arena's contents are not rewound.
  void resetForTesting();

  /// Number of single pages currently held in the inline recycle cache
  /// (exposed for tests).
  std::size_t cachedSinglePages() const { return NumCachedPages; }

  /// Pages ever handed out (the frontier), in pages rather than the
  /// bytes of osBytes() — rstat reports both views.
  std::size_t frontierPages() const { return Frontier; }

  /// Deferred-coalescing sweeps run so far (each sweep merges every
  /// adjacent free-run pair; see coalesceFreeRuns).
  std::size_t coalesceSweeps() const { return NumCoalesceSweeps; }

  /// Quarantined runs evicted into the free lists so far (budget
  /// overflow, drainQuarantine, or a budget cut).
  std::size_t quarantineEvictions() const { return NumQuarantineEvictions; }

  /// Pages sitting in the free lists (cache, bins, large-run list) —
  /// the pool deferred coalescing can merge. Excludes quarantined runs,
  /// which are not free until evicted.
  std::size_t freeListedPages() const {
    return Frontier - PagesInUse - NumQuarantinedPages;
  }

  /// Merges every pair of adjacent free runs and rebins the result.
  /// Runs automatically before the frontier would grow past reusable
  /// free space; exposed so tests can observe the merged state.
  void coalesceFreeRuns();

  /// Sets the quarantine budget in pages and evicts down to it. A
  /// budget of zero disables the quarantine (freed runs recycle
  /// immediately, as in unhardened builds). Without RGN_HARDEN freed
  /// runs never quarantine regardless of the budget.
  void setQuarantineBudget(std::size_t Pages);

  /// Pages currently held in quarantine (always zero without
  /// RGN_HARDEN or with a zero budget).
  std::size_t quarantinedPages() const { return NumQuarantinedPages; }

  /// Evicts every quarantined run into the free lists (oldest first),
  /// without changing the budget. Tests use this to force reuse of a
  /// specific previously-freed page.
  void drainQuarantine();

  /// madvise(MADV_DONTNEED)s every quarantined run, returning its
  /// physical memory to the OS while keeping the run quarantined. The
  /// pages then read as zero rather than poison until evicted — weaker
  /// use-after-free detection in exchange for a bounded RSS, for
  /// long-running hardened processes.
  void releaseQuarantinedPages();

private:
  /// Inline recycle cache for single-page runs, tried before Bins[1].
  static constexpr std::size_t kPageCacheCap = 64;

  struct Run {
    std::uint32_t PageIdx;
    std::uint32_t NumPages;
  };

  void *pageAt(std::size_t Index) const {
    return ArenaBase + Index * kPageSize;
  }

  /// Out-of-line remainder of allocPages: bin splitting, large-run
  /// carving, deferred coalescing, frontier extension, frontier growth.
  void *allocPagesSlow(std::size_t NumPages, bool *Zeroed);

  /// Serves \p NumPages from the free lists without growing the
  /// frontier: exact bin, best-fit split of a larger bin (remainder
  /// rebinned exactly), then first-fit carve from the large-run list.
  /// Returns null when no listed run is big enough.
  void *takeFromLists(std::size_t NumPages);

  /// Removes and returns the free run ending exactly at the frontier,
  /// if any (after coalescing there is at most one). Used to seed a
  /// frontier growth so only the shortfall is newly handed-out space.
  bool takeRunEndingAtFrontier(Run &Out);

  /// The pre-quarantine free path: cache, exact bin, or large list.
  void recycleRun(std::uint32_t PageIdx, std::size_t NumPages);

  /// Poisons \p NumPages pages at \p PageIdx and appends them to the
  /// quarantine FIFO, evicting the oldest runs past the budget.
  void quarantineRun(std::uint32_t PageIdx, std::size_t NumPages);

  /// Unpoisons (ASan) and recycles the oldest quarantined run.
  void evictOldestQuarantined();

  char *MapBase = nullptr;    ///< raw mapping (ArenaBase when unaligned)
  std::size_t MapBytes = 0;   ///< raw mapping length
  char *ArenaBase = nullptr;
  std::size_t TotalPages = 0;
  std::size_t Frontier = 0;   ///< pages [0, Frontier) have been handed out
  std::size_t PagesInUse = 0; ///< currently allocated pages
  std::size_t ZeroHighWater = 0; ///< pages >= this index were never touched
  std::size_t NumCachedPages = 0;
  bool CoalesceDirty = false; ///< frees since the last coalesce sweep
  std::uint32_t PageCache[kPageCacheCap]; ///< recycled single pages (LIFO)
  std::vector<std::uint32_t> Bins[kMaxBin + 1]; ///< Bins[n]: runs of n pages
  std::vector<Run> LargeRuns; ///< runs longer than kMaxBin pages
  // rsan quarantine state. The FIFO is a vector with a consuming head
  // index, compacted when the dead prefix dominates.
  std::vector<Run> Quarantine;        ///< [QuarantineHead, end) are live
  std::size_t QuarantineHead = 0;     ///< index of the oldest live run
  std::size_t NumQuarantinedPages = 0;
  std::size_t QuarantineBudget = 0;   ///< pages; 0 disables quarantining
  // rstat counters (cold paths only).
  std::size_t NumCoalesceSweeps = 0;
  std::size_t NumQuarantineEvictions = 0;
};

} // namespace regions

#endif // SUPPORT_PAGESOURCE_H
