//===- support/PageSource.cpp - Reserved-arena page provider -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/PageSource.h"
#include "support/Compiler.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sys/mman.h>

using namespace regions;

#if defined(RGN_HUGEPAGES) && RGN_HUGEPAGES
// Transparent-huge-page granule on x86-64 and aarch64 (4K granule).
static constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;
#endif

PageSource::PageSource(std::size_t ReserveBytes) {
  TotalPages = alignTo(ReserveBytes, kPageSize) / kPageSize;
  std::size_t ArenaBytes = TotalPages * kPageSize;
  MapBytes = ArenaBytes;
#if defined(RGN_HUGEPAGES) && RGN_HUGEPAGES
  // Over-reserve by one huge page so the arena proper can start on a
  // 2 MB boundary — THP only backs regions whose virtual start is
  // huge-page aligned.
  MapBytes += kHugePageBytes;
#endif
  void *Mem = mmap(nullptr, MapBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    reportFatalError("PageSource: cannot reserve arena");
  MapBase = static_cast<char *>(Mem);
  ArenaBase = MapBase;
#if defined(RGN_HUGEPAGES) && RGN_HUGEPAGES
  ArenaBase = reinterpret_cast<char *>(
      alignTo(reinterpret_cast<std::uintptr_t>(MapBase), kHugePageBytes));
#ifdef MADV_HUGEPAGE
  madvise(ArenaBase, ArenaBytes, MADV_HUGEPAGE);
#endif
#endif
}

PageSource::~PageSource() {
  if (MapBase) {
    // ASan's shadow is not cleared by munmap: a later mmap that lands
    // on this address range would inherit the quarantine/red-zone
    // poison and trap on its first legitimate access. Clear the whole
    // arena's shadow before giving the range back to the OS.
    RGN_ASAN_UNPOISON(ArenaBase, TotalPages * kPageSize);
    munmap(MapBase, MapBytes);
  }
}

void *PageSource::allocPages(std::size_t NumPages, bool *Zeroed) {
  assert(NumPages > 0 && "cannot allocate an empty page run");
  PagesInUse += NumPages;
  if (Zeroed)
    *Zeroed = false; // recycled paths below hand out dirty pages

  // Single-page recycle cache, then the exact-size bin.
  if (NumPages == 1 && NumCachedPages != 0)
    return pageAt(PageCache[--NumCachedPages]);
  if (NumPages <= kMaxBin && !Bins[NumPages].empty()) {
    std::uint32_t Idx = Bins[NumPages].back();
    Bins[NumPages].pop_back();
    return pageAt(Idx);
  }
  return allocPagesSlow(NumPages, Zeroed);
}

void *PageSource::allocPagesSlow(std::size_t NumPages, bool *Zeroed) {
  if (void *P = takeFromLists(NumPages))
    return P;

  // The listed runs are individually too small. If they hold enough
  // pages in total, one coalescing sweep may re-form a run that fits —
  // cheaper than growing the frontier (which inflates the Figure-8
  // number for good) and the only way chunked frees reassemble.
  // PagesInUse already counts this pending request, so back it out.
  std::size_t FreeListed =
      Frontier - (PagesInUse - NumPages) - NumQuarantinedPages;
  if (CoalesceDirty && FreeListed >= NumPages) {
    coalesceFreeRuns();
    if (void *P = takeFromLists(NumPages))
      return P;
  }

  // A free run ending exactly at the frontier can seed the allocation:
  // only the shortfall is new frontier growth. The recycled prefix is
  // dirty, so the combined run cannot claim the zero-state.
  Run Tail;
  if (takeRunEndingAtFrontier(Tail) &&
      Frontier + (NumPages - Tail.NumPages) <= TotalPages) {
    Frontier += NumPages - Tail.NumPages;
    if (Frontier > ZeroHighWater)
      ZeroHighWater = Frontier;
    return pageAt(Tail.PageIdx);
  }

  // Grow the frontier. Pages past the all-time high-water mark were
  // never handed out, so MAP_ANONYMOUS still guarantees them zeroed.
  if (Frontier + NumPages > TotalPages)
    reportFatalError("PageSource: arena exhausted; raise the reserve size");
  std::size_t Idx = Frontier;
  Frontier += NumPages;
  if (Zeroed)
    *Zeroed = Idx >= ZeroHighWater;
  if (Frontier > ZeroHighWater)
    ZeroHighWater = Frontier;
  return pageAt(Idx);
}

void *PageSource::takeFromLists(std::size_t NumPages) {
  if (NumPages <= kMaxBin) {
    // Exact bin (re-checked here because the coalescing sweep rebins).
    if (!Bins[NumPages].empty()) {
      std::uint32_t Idx = Bins[NumPages].back();
      Bins[NumPages].pop_back();
      return pageAt(Idx);
    }
    // Best-fit split of the smallest larger bin; the remainder is a
    // bin-sized run again, so it rebins exactly — no fragmentation
    // accumulates in the bin range.
    for (std::size_t N = NumPages + 1; N <= kMaxBin; ++N) {
      if (Bins[N].empty())
        continue;
      std::uint32_t Idx = Bins[N].back();
      Bins[N].pop_back();
      std::size_t Rest = N - NumPages;
      Bins[Rest].push_back(Idx + static_cast<std::uint32_t>(NumPages));
      return pageAt(Idx);
    }
  }

  // First-fit in the large-run list; remainders rebin into an exact bin
  // when they fit instead of lingering as under-sized "large" runs.
  for (std::size_t I = 0, E = LargeRuns.size(); I != E; ++I) {
    Run &R = LargeRuns[I];
    if (R.NumPages < NumPages)
      continue;
    std::uint32_t Idx = R.PageIdx;
    std::uint32_t Rest = R.NumPages - static_cast<std::uint32_t>(NumPages);
    if (Rest == 0) {
      LargeRuns[I] = LargeRuns.back();
      LargeRuns.pop_back();
    } else {
      R.PageIdx += static_cast<std::uint32_t>(NumPages);
      R.NumPages = Rest;
      if (Rest <= kMaxBin) {
        Bins[Rest].push_back(R.PageIdx);
        LargeRuns[I] = LargeRuns.back();
        LargeRuns.pop_back();
      }
    }
    return pageAt(Idx);
  }
  return nullptr;
}

bool PageSource::takeRunEndingAtFrontier(Run &Out) {
  const auto End = static_cast<std::uint32_t>(Frontier);
  for (std::size_t I = 0; I != NumCachedPages; ++I) {
    if (PageCache[I] + 1 == End) {
      Out = {PageCache[I], 1};
      PageCache[I] = PageCache[--NumCachedPages];
      return true;
    }
  }
  for (std::size_t N = 1; N <= kMaxBin; ++N) {
    for (std::size_t I = 0, E = Bins[N].size(); I != E; ++I) {
      if (Bins[N][I] + N == End) {
        Out = {Bins[N][I], static_cast<std::uint32_t>(N)};
        Bins[N][I] = Bins[N].back();
        Bins[N].pop_back();
        return true;
      }
    }
  }
  for (std::size_t I = 0, E = LargeRuns.size(); I != E; ++I) {
    if (LargeRuns[I].PageIdx + LargeRuns[I].NumPages == End) {
      Out = LargeRuns[I];
      LargeRuns[I] = LargeRuns.back();
      LargeRuns.pop_back();
      return true;
    }
  }
  return false;
}

void PageSource::coalesceFreeRuns() {
  ++NumCoalesceSweeps;
  // Gather every listed run, merge adjacent ones, redistribute. O(free
  // runs · log) per sweep, and a sweep only runs when an allocation
  // would otherwise grow the frontier past reusable space — the
  // per-free fast path stays one push.
  std::vector<Run> All;
  All.reserve(NumCachedPages + LargeRuns.size() + 16);
  for (std::size_t I = 0; I != NumCachedPages; ++I)
    All.push_back({PageCache[I], 1});
  NumCachedPages = 0;
  for (std::size_t N = 1; N <= kMaxBin; ++N) {
    for (std::uint32_t Idx : Bins[N])
      All.push_back({Idx, static_cast<std::uint32_t>(N)});
    Bins[N].clear();
  }
  for (const Run &R : LargeRuns)
    All.push_back(R);
  LargeRuns.clear();

  std::sort(All.begin(), All.end(),
            [](const Run &A, const Run &B) { return A.PageIdx < B.PageIdx; });

  std::size_t RunsAfter = 0;
  for (std::size_t I = 0, E = All.size(); I != E;) {
    Run Merged = All[I++];
    while (I != E && All[I].PageIdx == Merged.PageIdx + Merged.NumPages) {
      Merged.NumPages += All[I].NumPages;
      ++I;
    }
    recycleRun(Merged.PageIdx, Merged.NumPages);
    ++RunsAfter;
  }
  CoalesceDirty = false; // recycleRun above re-set it; everything merged
  rstat::traceEvent(rstat::EventKind::CoalesceSweep, All.size(),
                    static_cast<std::uint32_t>(RunsAfter));
}

void PageSource::freePages(void *Ptr, std::size_t NumPages) {
  assert(NumPages > 0 && "cannot free an empty page run");
  assert(containsHandedOut(Ptr) &&
         "pointer was never handed out by this PageSource");
  assert(isAligned(Ptr, kPageSize) && "page run must be page-aligned");
  assert(PagesInUse >= NumPages && "freeing more pages than allocated");
  PagesInUse -= NumPages;

  auto Idx = static_cast<std::uint32_t>(pageIndex(Ptr));
  if constexpr (detail::kRsanEnabled) {
    // Region pages come back with ASan-poisoned red zones and bump
    // tails; shed that state here so the run re-enters circulation
    // uniformly poisoned (quarantine) or plainly dirty (free lists).
    RGN_ASAN_UNPOISON(Ptr, NumPages * kPageSize);
    if (QuarantineBudget != 0) {
      quarantineRun(Idx, NumPages);
      return;
    }
  }
  recycleRun(Idx, NumPages);
}

void PageSource::recycleRun(std::uint32_t PageIdx, std::size_t NumPages) {
  CoalesceDirty = true;
  if (NumPages == 1 && NumCachedPages != kPageCacheCap) {
    PageCache[NumCachedPages++] = PageIdx;
    return;
  }
  if (NumPages <= kMaxBin) {
    Bins[NumPages].push_back(PageIdx);
    return;
  }
  LargeRuns.push_back({PageIdx, static_cast<std::uint32_t>(NumPages)});
}

void PageSource::quarantineRun(std::uint32_t PageIdx, std::size_t NumPages) {
  // Poison first, then protect: every byte of a quarantined run reads
  // as 0xD5, and under ASan any touch is reported at the faulting
  // instruction. Poisoning writes to the page, but every freed page was
  // handed out before and so already sits below ZeroHighWater — the
  // never-touched zero-state can never be claimed for it again.
  assert(static_cast<std::size_t>(PageIdx) + NumPages <= ZeroHighWater &&
         "quarantining a page that was never handed out");
  std::memset(pageAt(PageIdx), detail::kRsanQuarantinePoison,
              NumPages * kPageSize);
  RGN_ASAN_POISON(pageAt(PageIdx), NumPages * kPageSize);
  Quarantine.push_back({PageIdx, static_cast<std::uint32_t>(NumPages)});
  NumQuarantinedPages += NumPages;
  while (NumQuarantinedPages > QuarantineBudget)
    evictOldestQuarantined();
}

void PageSource::evictOldestQuarantined() {
  assert(QuarantineHead < Quarantine.size() && "quarantine is empty");
  Run R = Quarantine[QuarantineHead++];
  NumQuarantinedPages -= R.NumPages;
  ++NumQuarantineEvictions;
  rstat::traceEvent(rstat::EventKind::QuarantineEvict, R.PageIdx, R.NumPages);
  // The 0xD5 bytes stay — the page is merely dirty, and every recycled
  // path reports dirty pages as non-zero — but the ASan protection must
  // lift before the next owner touches it.
  RGN_ASAN_UNPOISON(pageAt(R.PageIdx), R.NumPages * kPageSize);
  recycleRun(R.PageIdx, R.NumPages);
  // Compact once the dead prefix dominates the live tail.
  if (QuarantineHead >= 64 && QuarantineHead * 2 >= Quarantine.size()) {
    Quarantine.erase(Quarantine.begin(),
                     Quarantine.begin() +
                         static_cast<std::ptrdiff_t>(QuarantineHead));
    QuarantineHead = 0;
  }
}

void PageSource::setQuarantineBudget(std::size_t Pages) {
  QuarantineBudget = Pages;
  while (NumQuarantinedPages > QuarantineBudget)
    evictOldestQuarantined();
}

void PageSource::drainQuarantine() {
  while (NumQuarantinedPages != 0)
    evictOldestQuarantined();
}

void PageSource::releaseQuarantinedPages() {
  for (std::size_t I = QuarantineHead, E = Quarantine.size(); I != E; ++I) {
    const Run &R = Quarantine[I];
    // The pages will read as zero once re-touched; they stay below
    // ZeroHighWater, so nothing ever reports them as zeroed either way.
    madvise(pageAt(R.PageIdx), R.NumPages * kPageSize, MADV_DONTNEED);
  }
}

void PageSource::resetForTesting() {
  // ZeroHighWater deliberately survives: resetting rewinds the
  // bookkeeping, not the contents already written to the arena.
  Frontier = 0;
  PagesInUse = 0;
  NumCachedPages = 0;
  CoalesceDirty = false;
  for (auto &Bin : Bins)
    Bin.clear();
  LargeRuns.clear();
  // Quarantined runs rejoin the (reset) arena; lift their ASan
  // protection so the rewound frontier can hand them out again.
  for (std::size_t I = QuarantineHead, E = Quarantine.size(); I != E; ++I)
    RGN_ASAN_UNPOISON(pageAt(Quarantine[I].PageIdx),
                      Quarantine[I].NumPages * kPageSize);
  Quarantine.clear();
  QuarantineHead = 0;
  NumQuarantinedPages = 0;
  NumCoalesceSweeps = 0;
  NumQuarantineEvictions = 0;
}
