//===- support/PageSource.cpp - Reserved-arena page provider -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/PageSource.h"
#include "support/Compiler.h"

#include <cassert>
#include <cstring>
#include <sys/mman.h>

using namespace regions;

PageSource::PageSource(std::size_t ReserveBytes) {
  TotalPages = alignTo(ReserveBytes, kPageSize) / kPageSize;
  void *Mem = mmap(nullptr, TotalPages * kPageSize, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    reportFatalError("PageSource: cannot reserve arena");
  ArenaBase = static_cast<char *>(Mem);
}

PageSource::~PageSource() {
  if (ArenaBase) {
    // ASan's shadow is not cleared by munmap: a later mmap that lands
    // on this address range would inherit the quarantine/red-zone
    // poison and trap on its first legitimate access. Clear the whole
    // arena's shadow before giving the range back to the OS.
    RGN_ASAN_UNPOISON(ArenaBase, TotalPages * kPageSize);
    munmap(ArenaBase, TotalPages * kPageSize);
  }
}

void *PageSource::allocPages(std::size_t NumPages, bool *Zeroed) {
  assert(NumPages > 0 && "cannot allocate an empty page run");
  PagesInUse += NumPages;
  if (Zeroed)
    *Zeroed = false; // recycled paths below hand out dirty pages

  // Single-page recycle cache, then the exact-size bin.
  if (NumPages == 1 && NumCachedPages != 0)
    return pageAt(PageCache[--NumCachedPages]);
  if (NumPages <= kMaxBin && !Bins[NumPages].empty()) {
    std::uint32_t Idx = Bins[NumPages].back();
    Bins[NumPages].pop_back();
    return pageAt(Idx);
  }

  // First-fit in the large-run list; split the remainder back.
  for (std::size_t I = 0, E = LargeRuns.size(); I != E; ++I) {
    Run &R = LargeRuns[I];
    if (R.NumPages < NumPages)
      continue;
    std::uint32_t Idx = R.PageIdx;
    std::uint32_t Rest = R.NumPages - static_cast<std::uint32_t>(NumPages);
    if (Rest == 0) {
      LargeRuns[I] = LargeRuns.back();
      LargeRuns.pop_back();
    } else {
      R.PageIdx += static_cast<std::uint32_t>(NumPages);
      R.NumPages = Rest;
      if (Rest <= kMaxBin) {
        Bins[Rest].push_back(R.PageIdx);
        LargeRuns[I] = LargeRuns.back();
        LargeRuns.pop_back();
      }
    }
    return pageAt(Idx);
  }

  // Grow the frontier. Pages past the all-time high-water mark were
  // never handed out, so MAP_ANONYMOUS still guarantees them zeroed.
  if (Frontier + NumPages > TotalPages)
    reportFatalError("PageSource: arena exhausted; raise the reserve size");
  std::size_t Idx = Frontier;
  Frontier += NumPages;
  if (Zeroed)
    *Zeroed = Idx >= ZeroHighWater;
  if (Frontier > ZeroHighWater)
    ZeroHighWater = Frontier;
  return pageAt(Idx);
}

void PageSource::freePages(void *Ptr, std::size_t NumPages) {
  assert(NumPages > 0 && "cannot free an empty page run");
  assert(contains(Ptr) && "pointer does not belong to this PageSource");
  assert(isAligned(Ptr, kPageSize) && "page run must be page-aligned");
  assert(PagesInUse >= NumPages && "freeing more pages than allocated");
  PagesInUse -= NumPages;

  auto Idx = static_cast<std::uint32_t>(pageIndex(Ptr));
  if constexpr (detail::kRsanEnabled) {
    // Region pages come back with ASan-poisoned red zones and bump
    // tails; shed that state here so the run re-enters circulation
    // uniformly poisoned (quarantine) or plainly dirty (free lists).
    RGN_ASAN_UNPOISON(Ptr, NumPages * kPageSize);
    if (QuarantineBudget != 0) {
      quarantineRun(Idx, NumPages);
      return;
    }
  }
  recycleRun(Idx, NumPages);
}

void PageSource::recycleRun(std::uint32_t PageIdx, std::size_t NumPages) {
  if (NumPages == 1 && NumCachedPages != kPageCacheCap) {
    PageCache[NumCachedPages++] = PageIdx;
    return;
  }
  if (NumPages <= kMaxBin) {
    Bins[NumPages].push_back(PageIdx);
    return;
  }
  LargeRuns.push_back({PageIdx, static_cast<std::uint32_t>(NumPages)});
}

void PageSource::quarantineRun(std::uint32_t PageIdx, std::size_t NumPages) {
  // Poison first, then protect: every byte of a quarantined run reads
  // as 0xD5, and under ASan any touch is reported at the faulting
  // instruction. Poisoning writes to the page, but every freed page was
  // handed out before and so already sits below ZeroHighWater — the
  // never-touched zero-state can never be claimed for it again.
  assert(static_cast<std::size_t>(PageIdx) + NumPages <= ZeroHighWater &&
         "quarantining a page that was never handed out");
  std::memset(pageAt(PageIdx), detail::kRsanQuarantinePoison,
              NumPages * kPageSize);
  RGN_ASAN_POISON(pageAt(PageIdx), NumPages * kPageSize);
  Quarantine.push_back({PageIdx, static_cast<std::uint32_t>(NumPages)});
  NumQuarantinedPages += NumPages;
  while (NumQuarantinedPages > QuarantineBudget)
    evictOldestQuarantined();
}

void PageSource::evictOldestQuarantined() {
  assert(QuarantineHead < Quarantine.size() && "quarantine is empty");
  Run R = Quarantine[QuarantineHead++];
  NumQuarantinedPages -= R.NumPages;
  // The 0xD5 bytes stay — the page is merely dirty, and every recycled
  // path reports dirty pages as non-zero — but the ASan protection must
  // lift before the next owner touches it.
  RGN_ASAN_UNPOISON(pageAt(R.PageIdx), R.NumPages * kPageSize);
  recycleRun(R.PageIdx, R.NumPages);
  // Compact once the dead prefix dominates the live tail.
  if (QuarantineHead >= 64 && QuarantineHead * 2 >= Quarantine.size()) {
    Quarantine.erase(Quarantine.begin(),
                     Quarantine.begin() +
                         static_cast<std::ptrdiff_t>(QuarantineHead));
    QuarantineHead = 0;
  }
}

void PageSource::setQuarantineBudget(std::size_t Pages) {
  QuarantineBudget = Pages;
  while (NumQuarantinedPages > QuarantineBudget)
    evictOldestQuarantined();
}

void PageSource::drainQuarantine() {
  while (NumQuarantinedPages != 0)
    evictOldestQuarantined();
}

void PageSource::releaseQuarantinedPages() {
  for (std::size_t I = QuarantineHead, E = Quarantine.size(); I != E; ++I) {
    const Run &R = Quarantine[I];
    // The pages will read as zero once re-touched; they stay below
    // ZeroHighWater, so nothing ever reports them as zeroed either way.
    madvise(pageAt(R.PageIdx), R.NumPages * kPageSize, MADV_DONTNEED);
  }
}

void PageSource::resetForTesting() {
  // ZeroHighWater deliberately survives: resetting rewinds the
  // bookkeeping, not the contents already written to the arena.
  Frontier = 0;
  PagesInUse = 0;
  NumCachedPages = 0;
  for (auto &Bin : Bins)
    Bin.clear();
  LargeRuns.clear();
  // Quarantined runs rejoin the (reset) arena; lift their ASan
  // protection so the rewound frontier can hand them out again.
  for (std::size_t I = QuarantineHead, E = Quarantine.size(); I != E; ++I)
    RGN_ASAN_UNPOISON(pageAt(Quarantine[I].PageIdx),
                      Quarantine[I].NumPages * kPageSize);
  Quarantine.clear();
  QuarantineHead = 0;
  NumQuarantinedPages = 0;
}
