//===- support/PageSource.cpp - Reserved-arena page provider -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/PageSource.h"
#include "support/Compiler.h"

#include <cassert>
#include <sys/mman.h>

using namespace regions;

PageSource::PageSource(std::size_t ReserveBytes) {
  TotalPages = alignTo(ReserveBytes, kPageSize) / kPageSize;
  void *Mem = mmap(nullptr, TotalPages * kPageSize, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    reportFatalError("PageSource: cannot reserve arena");
  ArenaBase = static_cast<char *>(Mem);
}

PageSource::~PageSource() {
  if (ArenaBase)
    munmap(ArenaBase, TotalPages * kPageSize);
}

void *PageSource::allocPages(std::size_t NumPages, bool *Zeroed) {
  assert(NumPages > 0 && "cannot allocate an empty page run");
  PagesInUse += NumPages;
  if (Zeroed)
    *Zeroed = false; // recycled paths below hand out dirty pages

  // Single-page recycle cache, then the exact-size bin.
  if (NumPages == 1 && NumCachedPages != 0)
    return pageAt(PageCache[--NumCachedPages]);
  if (NumPages <= kMaxBin && !Bins[NumPages].empty()) {
    std::uint32_t Idx = Bins[NumPages].back();
    Bins[NumPages].pop_back();
    return pageAt(Idx);
  }

  // First-fit in the large-run list; split the remainder back.
  for (std::size_t I = 0, E = LargeRuns.size(); I != E; ++I) {
    Run &R = LargeRuns[I];
    if (R.NumPages < NumPages)
      continue;
    std::uint32_t Idx = R.PageIdx;
    std::uint32_t Rest = R.NumPages - static_cast<std::uint32_t>(NumPages);
    if (Rest == 0) {
      LargeRuns[I] = LargeRuns.back();
      LargeRuns.pop_back();
    } else {
      R.PageIdx += static_cast<std::uint32_t>(NumPages);
      R.NumPages = Rest;
      if (Rest <= kMaxBin) {
        Bins[Rest].push_back(R.PageIdx);
        LargeRuns[I] = LargeRuns.back();
        LargeRuns.pop_back();
      }
    }
    return pageAt(Idx);
  }

  // Grow the frontier. Pages past the all-time high-water mark were
  // never handed out, so MAP_ANONYMOUS still guarantees them zeroed.
  if (Frontier + NumPages > TotalPages)
    reportFatalError("PageSource: arena exhausted; raise the reserve size");
  std::size_t Idx = Frontier;
  Frontier += NumPages;
  if (Zeroed)
    *Zeroed = Idx >= ZeroHighWater;
  if (Frontier > ZeroHighWater)
    ZeroHighWater = Frontier;
  return pageAt(Idx);
}

void PageSource::freePages(void *Ptr, std::size_t NumPages) {
  assert(NumPages > 0 && "cannot free an empty page run");
  assert(contains(Ptr) && "pointer does not belong to this PageSource");
  assert(isAligned(Ptr, kPageSize) && "page run must be page-aligned");
  assert(PagesInUse >= NumPages && "freeing more pages than allocated");
  PagesInUse -= NumPages;

  auto Idx = static_cast<std::uint32_t>(pageIndex(Ptr));
  if (NumPages == 1 && NumCachedPages != kPageCacheCap) {
    PageCache[NumCachedPages++] = Idx;
    return;
  }
  if (NumPages <= kMaxBin) {
    Bins[NumPages].push_back(Idx);
    return;
  }
  LargeRuns.push_back({Idx, static_cast<std::uint32_t>(NumPages)});
}

void PageSource::resetForTesting() {
  // ZeroHighWater deliberately survives: resetting rewinds the
  // bookkeeping, not the contents already written to the arena.
  Frontier = 0;
  PagesInUse = 0;
  NumCachedPages = 0;
  for (auto &Bin : Bins)
    Bin.clear();
  LargeRuns.clear();
}
