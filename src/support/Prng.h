//===- support/Prng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64 seeding + xoshiro256**)
/// used by workload generators and property tests. Determinism matters:
/// every benchmark run must allocate the same object sequence so that
/// allocator comparisons are apples-to-apples.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_PRNG_H
#define SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>

namespace regions {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Prng {
public:
  explicit Prng(std::uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(std::uint64_t Seed) {
    for (auto &Word : State) {
      Seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const std::uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0) has no valid result");
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible
    // for the bounds used here and determinism is what we care about.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  std::uint64_t nextInRange(std::uint64_t Lo, std::uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Geometric-ish skewed size in [Lo, Hi]: small values are much more
  /// likely, mimicking typical allocation-size distributions.
  std::uint64_t nextSkewed(std::uint64_t Lo, std::uint64_t Hi) {
    double U = nextDouble();
    U = U * U * U; // cube to skew toward 0
    return Lo + static_cast<std::uint64_t>(U * static_cast<double>(Hi - Lo));
  }

private:
  static std::uint64_t rotl(std::uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  std::uint64_t State[4];
};

} // namespace regions

#endif // SUPPORT_PRNG_H
