//===- support/TableWriter.cpp - ASCII table formatting ------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TableWriter.h"

#include <cassert>
#include <cinttypes>
#include <cstdint>

using namespace regions;

TableWriter::TableWriter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TableWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Cells));
}

void TableWriter::print(std::FILE *Out) const {
  std::vector<std::size_t> Widths(Header.size(), 0);
  for (std::size_t I = 0, E = Header.size(); I != E; ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (std::size_t I = 0, E = Row.size(); I != E; ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (std::size_t I = 0, E = Row.size(); I != E; ++I)
      std::fprintf(Out, "%s%-*s", I ? "  " : "", static_cast<int>(Widths[I]),
                   Row[I].c_str());
    std::fprintf(Out, "\n");
  };

  PrintRow(Header);
  std::size_t Total = 0;
  for (std::size_t W : Widths)
    Total += W + 2;
  for (std::size_t I = 0; I + 2 < Total; ++I)
    std::fputc('-', Out);
  std::fputc('\n', Out);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string TableWriter::fmt(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string TableWriter::fmt(std::uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
  return Buf;
}

std::string TableWriter::fmtKb(std::uint64_t Bytes) {
  return fmt(static_cast<double>(Bytes) / 1024.0, 1);
}

std::string TableWriter::fmtPercentOf(double Value, double Base) {
  if (Base == 0.0)
    return "n/a";
  double Pct = (Value / Base - 1.0) * 100.0;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%+.1f%%", Pct);
  return Buf;
}
