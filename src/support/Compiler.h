//===- support/Compiler.h - Portable compiler annotations ------*- C++ -*-===//
//
// Part of the regions project, a reproduction of Gay & Aiken,
// "Memory Management with Explicit Regions" (PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used throughout the project. The project is
/// built without exceptions and RTTI, so unrecoverable conditions funnel
/// through \c rgn_unreachable / \c reportFatalError.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_COMPILER_H
#define SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

#define RGN_LIKELY(x) (__builtin_expect(!!(x), 1))
#define RGN_UNLIKELY(x) (__builtin_expect(!!(x), 0))

/// Forces inlining of hot-path functions the compiler's size heuristics
/// would otherwise outline (the allocation fast path must stay a
/// handful of instructions at every call site, per the paper's §4.1).
#define RGN_ALWAYS_INLINE inline __attribute__((always_inline))

/// Exempts a function from ASan instrumentation. Conservative stack
/// scanning must read every word between two stack addresses, which
/// necessarily crosses the redzones ASan plants between locals; the
/// reads are intentional and bounded, so the scanner opts out (the
/// same arrangement every conservative collector ships with).
///
/// noinline is part of the contract: the attribute does not survive
/// inlining into an instrumented caller (GCC instruments per function
/// *after* inlining), so an inlined copy of the scanner would be
/// sanitized again.
/// __SANITIZE_ADDRESS__ is tested first: GCC's <sanitizer/*.h> headers
/// define a __has_feature(x)=0 compatibility shim, so once any of them
/// has been included the __has_feature branch would silently evaluate
/// to "no ASan" on GCC.
#if defined(__SANITIZE_ADDRESS__)
#define RGN_NO_SANITIZE_ADDRESS                                                \
  __attribute__((noinline, no_sanitize_address))
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RGN_NO_SANITIZE_ADDRESS                                                \
  __attribute__((noinline, no_sanitize("address")))
#endif
#endif
#ifndef RGN_NO_SANITIZE_ADDRESS
#define RGN_NO_SANITIZE_ADDRESS
#endif

/// C++20 constinit where available. It only *asserts* static
/// initialization (the zero-initialized thread-locals it marks are
/// statically initialized either way), so C++17 consumers of the
/// public headers compile the same code without the check.
#if defined(__cpp_constinit) && __cpp_constinit >= 201907L
#define RGN_CONSTINIT constinit
#else
#define RGN_CONSTINIT
#endif

namespace regions {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable runtime
/// conditions (OS resource exhaustion, corrupted heap metadata) since the
/// project builds with -fno-exceptions.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "regions fatal error: %s\n", Msg);
  std::abort();
}

/// Marks a point in the program that is provably never reached.
[[noreturn]] inline void rgnUnreachableImpl(const char *Msg, const char *File,
                                            unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace regions

#define rgn_unreachable(msg)                                                   \
  ::regions::rgnUnreachableImpl(msg, __FILE__, __LINE__)

#endif // SUPPORT_COMPILER_H
