//===- support/Stopwatch.h - Monotonic wall-clock timing -------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic timing helpers used by the experiment harness to reproduce
/// the paper's base vs. memory execution-time split (Figure 9).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STOPWATCH_H
#define SUPPORT_STOPWATCH_H

#include <cstdint>
#include <ctime>

namespace regions {

/// Returns the monotonic clock in nanoseconds.
inline std::uint64_t monotonicNanos() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<std::uint64_t>(Ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(Ts.tv_nsec);
}

/// Accumulating stopwatch. start()/stop() pairs add to the total; the
/// total survives restarts so one stopwatch can time many disjoint
/// intervals (e.g. all calls into an allocator).
class Stopwatch {
public:
  void start() { StartNs = monotonicNanos(); }

  void stop() { TotalNs += monotonicNanos() - StartNs; }

  void reset() { TotalNs = 0; }

  /// Total accumulated time in nanoseconds.
  std::uint64_t nanos() const { return TotalNs; }

  /// Total accumulated time in milliseconds (floating point).
  double millis() const { return static_cast<double>(TotalNs) / 1e6; }

private:
  std::uint64_t TotalNs = 0;
  std::uint64_t StartNs = 0;
};

} // namespace regions

#endif // SUPPORT_STOPWATCH_H
