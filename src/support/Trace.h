//===- support/Trace.h - rstat event-trace ring buffer ---------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of **rstat**, the observability layer: a runtime-
/// armed, per-thread ring buffer of region lifecycle events with a
/// Chrome trace-event JSON exporter (open the file in Perfetto or
/// chrome://tracing).
///
/// Events are recorded only from the library's *cold* paths — region
/// creation/deletion, page-run grabs and frees, coalescing sweeps,
/// pending-count flushes, quarantine evictions. The allocation and
/// write-barrier fast paths carry no hooks at all, so the default
/// build's hot code is bit-identical with tracing compiled in.
///
/// Zero-cost off: every hook is a load of one constinit thread-local
/// word plus one predictable branch. The word is non-null only while
/// the calling thread holds an attached ring for the current arming
/// epoch, so a disarmed process pays exactly `load; test; jne` per
/// cold-path event site and touches no shared cache lines.
///
/// Arming model: `armTracing()` starts an epoch and attaches the
/// calling thread immediately. Other threads attach lazily at their
/// next attach point (RegionManager construction,
/// ParallelSpace::registerThread, or an explicit attachThread()) —
/// the same per-thread lazy-attach discipline production tracers use.
/// Rings are owned by a global registry, not by the threads, so events
/// recorded by a thread that has since exited survive until the next
/// arm/reset (thread churn is precisely what the traces are for).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TRACE_H
#define SUPPORT_TRACE_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace regions {
namespace rstat {

/// Region lifecycle events the cold paths record (the instrumentation
/// axis of the paper's §5 evaluation, live instead of post-hoc).
enum class EventKind : std::uint8_t {
  NewRegion,        ///< A = region id
  DeleteRegionOk,   ///< A = region id, B = pages freed
  DeleteRegionFail, ///< A = region id, B = residual reference count
  RunGrab,          ///< A = first page index, B = run length in pages
  RunFree,          ///< A = first page index, B = run length in pages
  CoalesceSweep,    ///< A = free runs before, B = free runs after
  PendingFlush,     ///< A = buffered entries applied
  QuarantineEvict,  ///< A = first page index, B = run length in pages
  ShareRegion,      ///< A = region id, B = shard index
  TryDeleteOk,      ///< A = region id, B = shard index
  TryDeleteRefused, ///< A = region id, B = 1 lock-free, 0 under lock
  ResolveStale,     ///< A = region id, B = record generation observed
  ManagerQuiesced,  ///< A = manager's live region count at quiesce
  TryDeleteHandoff, ///< A = region id, B = shard index
  ResetRegion,      ///< A = retired logical id, B = pages retained
  ResetRegionFail,  ///< A = region id, B = residual reference count
  PoolAcquire,      ///< A = new/reused region id, B = 1 hit, 0 miss
  PoolRelease,      ///< A = region id, B = pages retained in the pool
  PoolTrim,         ///< A = region id, B = pages returned to the source
};

inline constexpr unsigned kNumEventKinds = 19;

/// Stable lower-case event names (also the Chrome trace "name" field).
const char *eventName(EventKind K);

/// One recorded event: 24 bytes. TimeNs is monotonic nanoseconds since
/// the current arming epoch began.
struct TraceEvent {
  std::uint64_t TimeNs;
  std::uint64_t A;
  std::uint32_t B;
  EventKind Kind;
};

namespace detail {

/// Per-thread event ring. Owned by the global ring registry (never by
/// the recording thread): exported and reclaimed only at arm/reset
/// time, so rings of exited threads keep their events.
struct TraceRing {
  TraceEvent *Events; ///< capacity entries
  std::size_t Capacity;
  /// Total events ever recorded (mod Capacity for the slot). Written
  /// lock-free by the owning thread, read by the counters/exporter on
  /// other threads — relaxed atomic so live polls of
  /// tracedEventCount()/droppedEventCount() are race-free. (Event
  /// *payloads* are still unsynchronized: export after quiescing.)
  std::atomic<std::size_t> Head;
  std::uint32_t Tid; ///< registration order, the exported "tid"
  TraceRing *Next;   ///< registry chain
};

// The hook's entire disarmed cost: one TLS load and one branch. Null
// whenever this thread has no ring attached to the current epoch —
// constinit guarantees static zero-initialization, so cross-TU access
// is a direct TLS load with no init-on-first-use guard.
extern thread_local RGN_CONSTINIT TraceRing *GRing;

/// Out-of-line armed path: stamps the clock and appends to this
/// thread's ring (overwriting the oldest event when full).
void recordSlow(TraceRing *Ring, EventKind K, std::uint64_t A,
                std::uint32_t B);

} // namespace detail

/// The one hook cold paths call. Disarmed (the common case, and the
/// whole state of a default build at rest): one predictable branch on
/// a constinit TLS word.
RGN_ALWAYS_INLINE void traceEvent(EventKind K, std::uint64_t A = 0,
                                  std::uint32_t B = 0) {
  detail::TraceRing *Ring = detail::GRing;
  if (RGN_LIKELY(!Ring))
    return;
  detail::recordSlow(Ring, K, A, B);
}

/// True while an arming epoch is open (any thread may still attach).
bool tracingArmed();

/// Opens a tracing epoch: resets the epoch clock, discards rings from
/// any previous epoch, and attaches the calling thread. Each attached
/// thread records up to \p EventsPerThread events (oldest overwritten
/// past that; the exporter reports the overwrite count). Safe to call
/// again mid-epoch: starts a fresh epoch.
void armTracing(std::size_t EventsPerThread = 1 << 14);

/// Closes the epoch: detaches the calling thread and stops other
/// threads from attaching. Already-attached threads stop recording at
/// their next attach point; their recorded events stay exportable
/// until the next armTracing(). (Call from the controlling thread
/// after worker threads have joined for a complete cut.)
void disarmTracing();

/// Attaches the calling thread to the open epoch (no-op when disarmed
/// or already attached). RegionManager construction and
/// ParallelSpace::registerThread call this, so most threads attach
/// without explicit calls.
void attachThread();

/// Total events currently held across all rings (diagnostics/tests).
std::size_t tracedEventCount();

/// Events overwritten because some ring wrapped (coverage check).
std::size_t droppedEventCount();

/// Writes every buffered event as Chrome trace-event JSON ("trace
/// event format", the Perfetto/chrome://tracing interchange format):
/// one instant event per record, pid 1, tid = thread attach order,
/// timestamps in microseconds since the epoch began. Also derives
/// counter events ("C" phase, on a synthetic tid one past the last
/// ring) from the merged time-sorted stream — "live-regions" from
/// newregion/deleteregion and "live-bytes" from run-grab/run-free —
/// so heap shape graphs directly as counter tracks in Perfetto.
/// Returns the number of events written (instants plus counters).
/// Does not disarm.
std::size_t writeChromeTrace(std::FILE *Out);

/// writeChromeTrace to a file path; returns events written, or -1 if
/// the file cannot be created.
long writeChromeTrace(const char *Path);

} // namespace rstat
} // namespace regions

#endif // SUPPORT_TRACE_H
