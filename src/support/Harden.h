//===- support/Harden.h - rsan hardened-mode configuration -----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Build-time configuration for **rsan**, the region sanitizer: a
/// hardened debug mode (CMake option RGN_HARDEN, off by default) that
/// turns the failure modes the paper's safe mode rules out by
/// construction — and our unsafe mode merely hopes never happen — into
/// deterministic diagnostics:
///
///  - deleted regions' pages are quarantined and byte-poisoned
///    (support/PageSource.h) instead of being recycled immediately,
///  - every allocation carries a size header and a canary-filled red
///    zone validated at deleteregion and on demand (region/Region.h,
///    region/Debug.h),
///  - RegionPtr / SameRegionPtr dereferences are checked against the
///    page map (region/RegionPtr.h).
///
/// When RGN_HARDEN is off every constant below is zero and every hook
/// is an empty inline, so the hardening compiles away completely: the
/// fast paths are bit-identical to the unhardened build.
///
/// When the build also enables AddressSanitizer (CMake option
/// RGN_SANITIZE=address), the RGN_ASAN_* macros map to ASan's manual
/// poisoning interface so quarantined pages, red zones, and the free
/// bump tail of every region page are reported by ASan itself at the
/// faulting instruction, not just at the next validation walk.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_HARDEN_H
#define SUPPORT_HARDEN_H

#include "support/Align.h"

#include <cstddef>

#ifdef RGN_HARDEN
#define RGN_HARDEN_ENABLED 1
#else
#define RGN_HARDEN_ENABLED 0
#endif

// Detect AddressSanitizer under both GCC (__SANITIZE_ADDRESS__) and
// Clang (__has_feature).
#if defined(__SANITIZE_ADDRESS__)
#define RGN_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RGN_ASAN 1
#endif
#endif
#ifndef RGN_ASAN
#define RGN_ASAN 0
#endif

#if RGN_HARDEN_ENABLED && RGN_ASAN
#include <sanitizer/asan_interface.h>
#define RGN_ASAN_POISON(Addr, Size) ASAN_POISON_MEMORY_REGION(Addr, Size)
#define RGN_ASAN_UNPOISON(Addr, Size) ASAN_UNPOISON_MEMORY_REGION(Addr, Size)
#else
#define RGN_ASAN_POISON(Addr, Size) ((void)0)
#define RGN_ASAN_UNPOISON(Addr, Size) ((void)0)
#endif

namespace regions {
namespace detail {

/// Compile-time switch mirrored as a constant so hardening logic can
/// live in ordinary `if constexpr` code instead of preprocessor blocks.
inline constexpr bool kRsanEnabled = RGN_HARDEN_ENABLED != 0;

/// Byte written over every quarantined page. 0xD5 ("deleted") is
/// non-zero, non-pointer-like, and odd in its low bit, so stale reads
/// of pointers, sizes, and flags all misbehave loudly and recognizably.
inline constexpr unsigned char kRsanQuarantinePoison = 0xD5;

/// Canary byte filling every allocation's red zone.
inline constexpr unsigned char kRsanRedZoneCanary = 0xCA;

#if RGN_HARDEN_ENABLED
/// Size header prepended to each allocation: one tagged word, padded
/// to the payload alignment. The word stores (Size << 1) | 1 so a
/// valid header is never zero (a zero word is the end-of-page marker,
/// which a zero-byte allocation must not forge) and a cleared low bit
/// betrays metadata corruption.
inline constexpr std::size_t kRsanSizeHdr = kDefaultAlignment;

/// Canary-filled red zone appended after each allocation's payload.
inline constexpr std::size_t kRsanRedZone = 16;

/// Default page budget for a RegionManager's quarantine. Deleted
/// regions' pages stay poisoned and unusable until the budget forces
/// the oldest out, bounding the extra footprint to 1 MiB.
inline constexpr std::size_t kRsanDefaultQuarantinePages = 256;
#else
inline constexpr std::size_t kRsanSizeHdr = 0;
inline constexpr std::size_t kRsanRedZone = 0;
inline constexpr std::size_t kRsanDefaultQuarantinePages = 0;
#endif

/// Per-object overhead the hardened layout adds ([size hdr] before,
/// [red zone] after the payload). Zero when hardening is off, so the
/// shared allocation arithmetic constant-folds to the lean layout.
inline constexpr std::size_t kRsanObjOverhead = kRsanSizeHdr + kRsanRedZone;

/// Encodes / decodes the tagged size header word.
constexpr std::size_t rsanTagSize(std::size_t Size) {
  return (Size << 1) | 1;
}
constexpr bool rsanTagValid(std::size_t Word) { return (Word & 1) != 0; }
constexpr std::size_t rsanTaggedSize(std::size_t Word) { return Word >> 1; }

} // namespace detail
} // namespace regions

#endif // SUPPORT_HARDEN_H
