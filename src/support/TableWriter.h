//===- support/TableWriter.h - ASCII table formatting ----------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats the rows the benchmark harnesses print so every reproduced
/// table and figure in EXPERIMENTS.md has a uniform, diffable layout.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TABLEWRITER_H
#define SUPPORT_TABLEWRITER_H

#include <cstdio>
#include <string>
#include <vector>

namespace regions {

/// Collects rows of string cells and prints them as an aligned ASCII
/// table with a header separator.
class TableWriter {
public:
  explicit TableWriter(std::vector<std::string> Header);

  /// Appends one data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table to \p Out (stdout by default).
  void print(std::FILE *Out = stdout) const;

  /// Formats a double with \p Digits fractional digits.
  static std::string fmt(double Value, int Digits = 1);

  /// Formats an integer count.
  static std::string fmt(std::uint64_t Value);

  /// Formats a byte count as KB with one fractional digit (the paper
  /// reports kbytes).
  static std::string fmtKb(std::uint64_t Bytes);

  /// Formats \p Value as a percentage of \p Base ("+12.3%").
  static std::string fmtPercentOf(double Value, double Base);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace regions

#endif // SUPPORT_TABLEWRITER_H
