//===- mudlle/Compiler.h - AST to bytecode compiler ------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a parsed file to bytecode. Region organization follows the
/// paper's description of mudlle: the AST occupies one region; "one
/// region is created to hold the data structures needed to compile each
/// function" — symbol tables, growable code buffers, and back-patch
/// lists live in a per-function scope that is deleted as soon as the
/// function's code has been finalized into the output scope.
///
/// A peephole pass folds constant arithmetic in place (replacing the
/// folded prefix with Nops so jump targets stay valid).
///
//===----------------------------------------------------------------------===//

#ifndef MUDLLE_COMPILER_H
#define MUDLLE_COMPILER_H

#include "mudlle/Ast.h"
#include "mudlle/Bytecode.h"

#include <cstring>

namespace regions {
namespace mud {

template <class M> class Compiler {
public:
  Compiler(M &Mem, typename M::Token &OutScope)
      : Mem(Mem), Out(OutScope) {}

  /// Compiles \p File; returns null and sets failed() on error.
  CompiledProgram<M> *compile(const SourceFile<M> *File) {
    auto *Prog = Mem.template create<CompiledProgram<M>>(Out);

    // File-level function table, in its own compile scope (freed when
    // compilation of the file completes).
    [[maybe_unused]] typename M::Frame F;
    typename M::Token FileScope = Mem.makeRegion();
    {
      FnEntry *Fns = nullptr;
      std::uint32_t Index = 0;
      for (Function<M> *Fn = File->Functions; Fn; Fn = Fn->Next) {
        if (findFn(Fns, Fn->Name)) {
          fail("duplicate function name", Fn->Line);
          break;
        }
        auto *E = Mem.template create<FnEntry>(FileScope);
        E->Name = Fn->Name;
        E->Index = Index;
        E->NumParams = Fn->NumParams;
        E->Next = Fns;
        Fns = E;
        if (std::strcmp(Fn->Name, "main") == 0)
          Prog->MainIndex = static_cast<std::int32_t>(Index);
        ++Index;
      }
      Prog->NumFunctions = Index;

      CompiledFunction<M> *Last = nullptr;
      Index = 0;
      for (Function<M> *Fn = File->Functions; Fn && !Failed; Fn = Fn->Next) {
        CompiledFunction<M> *C = compileFunction(Fn, Fns, Index++);
        if (!C)
          break;
        if (Last)
          Last->Next = C;
        else
          Prog->Functions = C;
        Last = C;
        Prog->TotalCodeWords += C->CodeLen;
      }
    }
    bool Dropped = Mem.dropRegion(FileScope);
    (void)Dropped;
    Prog->PeepholeRewrites = Rewrites;
    return Failed ? nullptr : Prog;
  }

  bool failed() const { return Failed; }
  const char *errorMessage() const { return ErrorMsg; }
  std::uint32_t errorLine() const { return ErrorLine; }

private:
  /// File-level function table entry (lives in the file compile scope).
  struct FnEntry {
    const char *Name = nullptr;
    std::uint32_t Index = 0;
    std::uint32_t NumParams = 0;
    typename M::template Ptr<FnEntry> Next;
  };

  /// Local-variable table entry (lives in the function compile scope).
  struct LocalEntry {
    const char *Name = nullptr;
    std::uint32_t Slot = 0;
    typename M::template Ptr<LocalEntry> Next;
  };

  /// Growable code buffer in the function compile scope. Doubling
  /// leaves the old arrays as region garbage, the classic region
  /// allocation pattern.
  struct CodeBuf {
    std::uint32_t *Data = nullptr;
    std::uint32_t Len = 0;
    std::uint32_t Cap = 0;
  };

  static FnEntry *findFn(FnEntry *Fns, const char *Name) {
    for (FnEntry *E = Fns; E; E = E->Next)
      if (std::strcmp(E->Name, Name) == 0)
        return E;
    return nullptr;
  }

  void fail(const char *Msg, std::uint32_t Line) {
    if (Failed)
      return;
    Failed = true;
    ErrorMsg = Msg;
    ErrorLine = Line;
  }

  void emit(Op O, std::int32_t Operand = 0) {
    if (Buf.Len == Buf.Cap) {
      std::uint32_t NewCap = Buf.Cap ? Buf.Cap * 2 : 64;
      auto *NewData = static_cast<std::uint32_t *>(
          Mem.allocBytes(*FnScope, NewCap * 4));
      std::memcpy(NewData, Buf.Data, Buf.Len * 4);
      Buf.Data = NewData;
      Buf.Cap = NewCap;
    }
    Buf.Data[Buf.Len++] = encode(O, Operand);
  }

  std::uint32_t here() const { return Buf.Len; }

  void patch(std::uint32_t At, std::int32_t Target) {
    Buf.Data[At] = encode(opOf(Buf.Data[At]), Target);
  }

  CompiledFunction<M> *compileFunction(Function<M> *Fn, FnEntry *Fns,
                                       std::uint32_t Index) {
    // Per-function compile region (the paper's organization).
    [[maybe_unused]] typename M::Frame F;
    typename M::Token Scope = Mem.makeRegion();
    FnScope = &Scope;
    Buf = CodeBuf{};
    LocalEntry *Locals = nullptr;
    std::uint32_t NumLocals = 0;

    for (Param<M> *P = Fn->Params; P; P = P->Next) {
      auto *L = Mem.template create<LocalEntry>(Scope);
      L->Name = P->Name;
      L->Slot = NumLocals++;
      L->Next = Locals;
      Locals = L;
    }

    compileStmts(Fn->Body, Fns, Locals, NumLocals, Scope);
    // Implicit `return 0` at the end of every function.
    emit(Op::PushImm, 0);
    emit(Op::Ret);

    peephole();

    CompiledFunction<M> *C = nullptr;
    if (!Failed) {
      // Finalize into the output scope; code words are pointer-free.
      auto *Code = static_cast<std::uint32_t *>(
          Mem.allocBytes(Out, Buf.Len * 4));
      std::memcpy(Code, Buf.Data, Buf.Len * 4);
      C = Mem.template create<CompiledFunction<M>>(Out);
      C->Name = copyOut(Fn->Name);
      C->Code = Code;
      C->CodeLen = Buf.Len;
      C->NumParams = static_cast<std::uint16_t>(Fn->NumParams);
      C->NumLocals = static_cast<std::uint16_t>(NumLocals);
      C->Index = Index;
    }

    FnScope = nullptr;
    bool Dropped = Mem.dropRegion(Scope);
    (void)Dropped;
    return C;
  }

  const char *copyOut(const char *S) {
    std::size_t Len = std::strlen(S);
    auto *Copy = static_cast<char *>(Mem.allocBytes(Out, Len + 1));
    std::memcpy(Copy, S, Len + 1);
    return Copy;
  }

  static LocalEntry *findLocal(LocalEntry *Locals, const char *Name) {
    for (LocalEntry *L = Locals; L; L = L->Next)
      if (std::strcmp(L->Name, Name) == 0)
        return L;
    return nullptr;
  }

  void compileStmts(Stmt<M> *S, FnEntry *Fns, LocalEntry *&Locals,
                    std::uint32_t &NumLocals, typename M::Token &Scope) {
    for (; S && !Failed; S = S->Next)
      compileStmt(S, Fns, Locals, NumLocals, Scope);
  }

  void compileStmt(Stmt<M> *S, FnEntry *Fns, LocalEntry *&Locals,
                   std::uint32_t &NumLocals, typename M::Token &Scope) {
    Mem.touch(S, sizeof(*S), false);
    switch (S->Kind) {
    case StmtKind::VarDecl: {
      if (findLocal(Locals, S->Name)) {
        fail("redeclared variable", S->Line);
        return;
      }
      auto *L = Mem.template create<LocalEntry>(Scope);
      L->Name = S->Name;
      L->Slot = NumLocals++;
      L->Next = Locals;
      Locals = L;
      compileExpr(S->Value, Fns, Locals);
      emit(Op::Store, static_cast<std::int32_t>(L->Slot));
      return;
    }
    case StmtKind::Assign: {
      LocalEntry *L = findLocal(Locals, S->Name);
      if (!L) {
        fail("assignment to undeclared variable", S->Line);
        return;
      }
      compileExpr(S->Value, Fns, Locals);
      emit(Op::Store, static_cast<std::int32_t>(L->Slot));
      return;
    }
    case StmtKind::If: {
      compileExpr(S->Value, Fns, Locals);
      std::uint32_t JzAt = here();
      emit(Op::Jz);
      compileStmts(S->Body, Fns, Locals, NumLocals, Scope);
      if (S->ElseBody) {
        std::uint32_t JmpAt = here();
        emit(Op::Jmp);
        patch(JzAt, static_cast<std::int32_t>(here()));
        compileStmts(S->ElseBody, Fns, Locals, NumLocals, Scope);
        patch(JmpAt, static_cast<std::int32_t>(here()));
      } else {
        patch(JzAt, static_cast<std::int32_t>(here()));
      }
      return;
    }
    case StmtKind::While: {
      std::uint32_t Top = here();
      compileExpr(S->Value, Fns, Locals);
      std::uint32_t JzAt = here();
      emit(Op::Jz);
      compileStmts(S->Body, Fns, Locals, NumLocals, Scope);
      emit(Op::Jmp, static_cast<std::int32_t>(Top));
      patch(JzAt, static_cast<std::int32_t>(here()));
      return;
    }
    case StmtKind::Return:
      compileExpr(S->Value, Fns, Locals);
      emit(Op::Ret);
      return;
    case StmtKind::ExprStmt:
      compileExpr(S->Value, Fns, Locals);
      emit(Op::Pop);
      return;
    }
  }

  void compileExpr(Expr<M> *E, FnEntry *Fns, LocalEntry *Locals) {
    if (E)
      Mem.touch(E, sizeof(*E), false);
    if (!E || Failed) {
      if (!Failed)
        emit(Op::PushImm, 0);
      return;
    }
    switch (E->Kind) {
    case ExprKind::IntLit:
      emit(Op::PushImm, E->IntVal);
      return;
    case ExprKind::VarRef: {
      LocalEntry *L = findLocal(Locals, E->Name);
      if (!L) {
        fail("reference to undeclared variable", E->Line);
        return;
      }
      emit(Op::Load, static_cast<std::int32_t>(L->Slot));
      return;
    }
    case ExprKind::Unary:
      compileExpr(E->Lhs, Fns, Locals);
      emit(E->Un == UnOp::Neg ? Op::Neg : Op::Not);
      return;
    case ExprKind::Binary: {
      // && and || short-circuit via jumps.
      if (E->Bin == BinOp::And) {
        compileExpr(E->Lhs, Fns, Locals);
        emit(Op::Not);
        std::uint32_t JAt = here();
        emit(Op::Jnz); // LHS false: result 0
        compileExpr(E->Rhs, Fns, Locals);
        emit(Op::Not);
        emit(Op::Not); // normalize to 0/1
        std::uint32_t EndAt = here();
        emit(Op::Jmp);
        patch(JAt, static_cast<std::int32_t>(here()));
        emit(Op::PushImm, 0);
        patch(EndAt, static_cast<std::int32_t>(here()));
        return;
      }
      if (E->Bin == BinOp::Or) {
        compileExpr(E->Lhs, Fns, Locals);
        std::uint32_t JAt = here();
        emit(Op::Jnz); // LHS true: result 1
        compileExpr(E->Rhs, Fns, Locals);
        emit(Op::Not);
        emit(Op::Not);
        std::uint32_t EndAt = here();
        emit(Op::Jmp);
        patch(JAt, static_cast<std::int32_t>(here()));
        emit(Op::PushImm, 1);
        patch(EndAt, static_cast<std::int32_t>(here()));
        return;
      }
      compileExpr(E->Lhs, Fns, Locals);
      compileExpr(E->Rhs, Fns, Locals);
      switch (E->Bin) {
      case BinOp::Add:
        emit(Op::Add);
        return;
      case BinOp::Sub:
        emit(Op::Sub);
        return;
      case BinOp::Mul:
        emit(Op::Mul);
        return;
      case BinOp::Div:
        emit(Op::Div);
        return;
      case BinOp::Mod:
        emit(Op::Mod);
        return;
      case BinOp::Lt:
        emit(Op::Lt);
        return;
      case BinOp::Le:
        emit(Op::Le);
        return;
      case BinOp::Gt:
        emit(Op::Gt);
        return;
      case BinOp::Ge:
        emit(Op::Ge);
        return;
      case BinOp::Eq:
        emit(Op::Eq);
        return;
      case BinOp::Ne:
        emit(Op::Ne);
        return;
      case BinOp::And:
      case BinOp::Or:
        return; // handled above
      }
      return;
    }
    case ExprKind::Call: {
      FnEntry *Callee = findFn(Fns, E->Name);
      if (!Callee) {
        fail("call to undefined function", E->Line);
        return;
      }
      std::uint32_t NumArgs = 0;
      for (Expr<M> *Arg = E->Args; Arg; Arg = Arg->Next) {
        compileExpr(Arg, Fns, Locals);
        ++NumArgs;
      }
      if (NumArgs != Callee->NumParams) {
        fail("wrong number of arguments", E->Line);
        return;
      }
      emit(Op::Call, static_cast<std::int32_t>(Callee->Index));
      return;
    }
    }
  }

  /// In-place constant folding: (PushImm a, PushImm b, binop) becomes
  /// (Nop, Nop, PushImm fold(a, b)) when the result fits the immediate
  /// field. Lengths are preserved so jump targets stay valid.
  /// Index of the nearest non-Nop instruction strictly before \p I,
  /// or UINT32_MAX if there is none.
  std::uint32_t prevRealInsn(std::uint32_t I) const {
    while (I-- > 0)
      if (opOf(Buf.Data[I]) != Op::Nop)
        return I;
    return UINT32_MAX;
  }

  void peephole() {
    // Walks left to right looking at each foldable binary op; the two
    // producing instructions are found by skipping the Nops earlier
    // folds left behind, so chains like 2 + 3 * 4 cascade in one pass.
    // Rewrites are length-preserving (Nops), keeping jump targets valid.
    for (std::uint32_t I = 2; I < Buf.Len; ++I) {
      std::int64_t R;
      std::uint32_t J2 = prevRealInsn(I);
      if (J2 == UINT32_MAX || opOf(Buf.Data[J2]) != Op::PushImm)
        continue;
      std::uint32_t J1 = prevRealInsn(J2);
      if (J1 == UINT32_MAX || opOf(Buf.Data[J1]) != Op::PushImm)
        continue;
      std::int64_t A = operandOf(Buf.Data[J1]);
      std::int64_t B = operandOf(Buf.Data[J2]);
      switch (opOf(Buf.Data[I])) {
      case Op::Add:
        R = A + B;
        break;
      case Op::Sub:
        R = A - B;
        break;
      case Op::Mul:
        R = A * B;
        break;
      case Op::Lt:
        R = A < B;
        break;
      case Op::Le:
        R = A <= B;
        break;
      case Op::Gt:
        R = A > B;
        break;
      case Op::Ge:
        R = A >= B;
        break;
      case Op::Eq:
        R = A == B;
        break;
      case Op::Ne:
        R = A != B;
        break;
      default:
        continue;
      }
      if (R < kMinImm || R > kMaxImm)
        continue;
      Buf.Data[J1] = encode(Op::Nop);
      Buf.Data[J2] = encode(Op::Nop);
      Buf.Data[I] = encode(Op::PushImm, static_cast<std::int32_t>(R));
      ++Rewrites;
    }
  }

  M &Mem;
  typename M::Token &Out;
  typename M::Token *FnScope = nullptr;
  CodeBuf Buf;
  bool Failed = false;
  const char *ErrorMsg = "";
  std::uint32_t ErrorLine = 0;
  std::uint32_t Rewrites = 0;
};

} // namespace mud
} // namespace regions

#endif // MUDLLE_COMPILER_H
