//===- mudlle/Lexer.h - Tokenizer for the mud language ---------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for "mud", our stand-in for the paper's mudlle benchmark
/// (a byte-code compiler for a scheme-like language that keeps each
/// file's AST in one region and per-function compile state in another).
/// The language is a small expression language over integers:
///
///   fn add(a, b) { return a + b; }
///   fn main()    { var s = 0; var i = 0;
///                  while (i < 10) { s = s + add(i, i); i = i + 1; }
///                  return s; }
///
/// The lexer itself allocates nothing; identifiers are copied into the
/// AST region by the parser.
///
//===----------------------------------------------------------------------===//

#ifndef MUDLLE_LEXER_H
#define MUDLLE_LEXER_H

#include <cstdint>
#include <cstring>

namespace regions {
namespace mud {

enum class TokKind : std::uint8_t {
  Eof,
  Error,
  Ident,
  Number,
  // Keywords.
  KwFn,
  KwVar,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Assign, // =
  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  Ne,
  AndAnd,
  OrOr,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  const char *Text = nullptr; ///< start of the lexeme in the source
  std::uint32_t Len = 0;
  std::int32_t Value = 0; ///< for Number
  std::uint32_t Line = 1;

  bool is(TokKind K) const { return Kind == K; }

  bool textEquals(const char *S) const {
    return std::strlen(S) == Len && std::memcmp(Text, S, Len) == 0;
  }
};

/// Streaming tokenizer; no allocation, no lookahead state beyond one
/// token (the parser keeps the current token).
class Lexer {
public:
  explicit Lexer(const char *Source) : Cur(Source) {}

  Token next() {
    skipWhitespaceAndComments();
    Token T;
    T.Line = Line;
    T.Text = Cur;
    char C = *Cur;
    if (C == '\0') {
      T.Kind = TokKind::Eof;
      return T;
    }
    if (isDigit(C))
      return lexNumber(T);
    if (isIdentStart(C))
      return lexIdent(T);
    ++Cur;
    T.Len = 1;
    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      return T;
    case ')':
      T.Kind = TokKind::RParen;
      return T;
    case '{':
      T.Kind = TokKind::LBrace;
      return T;
    case '}':
      T.Kind = TokKind::RBrace;
      return T;
    case ',':
      T.Kind = TokKind::Comma;
      return T;
    case ';':
      T.Kind = TokKind::Semi;
      return T;
    case '+':
      T.Kind = TokKind::Plus;
      return T;
    case '-':
      T.Kind = TokKind::Minus;
      return T;
    case '*':
      T.Kind = TokKind::Star;
      return T;
    case '/':
      T.Kind = TokKind::Slash;
      return T;
    case '%':
      T.Kind = TokKind::Percent;
      return T;
    case '=':
      return twoChar(T, '=', TokKind::EqEq, TokKind::Assign);
    case '<':
      return twoChar(T, '=', TokKind::Le, TokKind::Lt);
    case '>':
      return twoChar(T, '=', TokKind::Ge, TokKind::Gt);
    case '!':
      return twoChar(T, '=', TokKind::Ne, TokKind::Bang);
    case '&':
      return pair(T, '&', TokKind::AndAnd);
    case '|':
      return pair(T, '|', TokKind::OrOr);
    default:
      T.Kind = TokKind::Error;
      return T;
    }
  }

private:
  static bool isDigit(char C) { return C >= '0' && C <= '9'; }
  static bool isIdentStart(char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
  }
  static bool isIdentChar(char C) { return isIdentStart(C) || isDigit(C); }

  void skipWhitespaceAndComments() {
    for (;;) {
      while (*Cur == ' ' || *Cur == '\t' || *Cur == '\r' || *Cur == '\n') {
        if (*Cur == '\n')
          ++Line;
        ++Cur;
      }
      if (Cur[0] == '/' && Cur[1] == '/') {
        while (*Cur && *Cur != '\n')
          ++Cur;
        continue;
      }
      return;
    }
  }

  Token lexNumber(Token T) {
    std::int64_t V = 0;
    while (isDigit(*Cur)) {
      V = V * 10 + (*Cur - '0');
      if (V > 0x7fffff)
        V = 0x7fffff; // clamp to the 24-bit immediate range
      ++Cur;
    }
    T.Kind = TokKind::Number;
    T.Len = static_cast<std::uint32_t>(Cur - T.Text);
    T.Value = static_cast<std::int32_t>(V);
    return T;
  }

  Token lexIdent(Token T) {
    while (isIdentChar(*Cur))
      ++Cur;
    T.Len = static_cast<std::uint32_t>(Cur - T.Text);
    T.Kind = TokKind::Ident;
    if (T.textEquals("fn"))
      T.Kind = TokKind::KwFn;
    else if (T.textEquals("var"))
      T.Kind = TokKind::KwVar;
    else if (T.textEquals("if"))
      T.Kind = TokKind::KwIf;
    else if (T.textEquals("else"))
      T.Kind = TokKind::KwElse;
    else if (T.textEquals("while"))
      T.Kind = TokKind::KwWhile;
    else if (T.textEquals("return"))
      T.Kind = TokKind::KwReturn;
    return T;
  }

  Token twoChar(Token T, char Second, TokKind IfPair, TokKind IfSingle) {
    if (*Cur == Second) {
      ++Cur;
      T.Len = 2;
      T.Kind = IfPair;
    } else {
      T.Kind = IfSingle;
    }
    return T;
  }

  Token pair(Token T, char Second, TokKind Kind) {
    if (*Cur == Second) {
      ++Cur;
      T.Len = 2;
      T.Kind = Kind;
      return T;
    }
    T.Kind = TokKind::Error;
    return T;
  }

  const char *Cur;
  std::uint32_t Line = 1;
};

} // namespace mud
} // namespace regions

#endif // MUDLLE_LEXER_H
