//===- mudlle/Parser.h - Recursive-descent parser for mud ------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing an AST in the caller's scope
/// (region). Errors are reported through a flag + message, not
/// exceptions (the project builds with -fno-exceptions); the first
/// error wins and parsing bails out promptly.
///
//===----------------------------------------------------------------------===//

#ifndef MUDLLE_PARSER_H
#define MUDLLE_PARSER_H

#include "mudlle/Ast.h"
#include "mudlle/Lexer.h"

namespace regions {
namespace mud {

template <class M> class Parser {
public:
  Parser(M &Mem, typename M::Token &AstScope, const char *Source)
      : Mem(Mem), Scope(AstScope), Lex(Source) {
    advance();
  }

  /// Parses a whole file into the AST scope. The SourceFile record
  /// itself lives in the same region (sameregion links, as in the
  /// paper's mudlle). On error, failed() is set and the file is
  /// partial.
  SourceFile<M> *parseFile() {
    auto *File = node<SourceFile<M>>();
    Function<M> *Last = nullptr;
    while (!Tok.is(TokKind::Eof) && !Failed) {
      Function<M> *F = parseFunction();
      if (!F)
        break;
      if (Last)
        Last->Next = F;
      else
        File->Functions = F;
      Last = F;
      ++File->NumFunctions;
    }
    File->NumNodes = NodeCount;
    return File;
  }

  bool failed() const { return Failed; }
  const char *errorMessage() const { return ErrorMsg; }
  std::uint32_t errorLine() const { return ErrorLine; }
  std::uint32_t nodeCount() const { return NodeCount; }

private:
  template <class T, class... Args> T *node(Args &&...A) {
    ++NodeCount;
    return Mem.template create<T>(Scope, std::forward<Args>(A)...);
  }

  void advance() { Tok = Lex.next(); }

  void fail(const char *Msg) {
    if (Failed)
      return;
    Failed = true;
    ErrorMsg = Msg;
    ErrorLine = Tok.Line;
  }

  bool expect(TokKind K, const char *Msg) {
    if (!Tok.is(K)) {
      fail(Msg);
      return false;
    }
    advance();
    return true;
  }

  /// Copies the current identifier into the AST region.
  const char *identName() {
    return rcopy(Tok.Text, Tok.Len);
  }

  const char *rcopy(const char *S, std::uint32_t Len) {
    auto *Copy = static_cast<char *>(Mem.allocBytes(Scope, Len + 1));
    for (std::uint32_t I = 0; I != Len; ++I)
      Copy[I] = S[I];
    Copy[Len] = '\0';
    return Copy;
  }

  Function<M> *parseFunction() {
    if (!Tok.is(TokKind::KwFn)) {
      fail("expected 'fn'");
      return nullptr;
    }
    auto *F = node<Function<M>>();
    F->Line = Tok.Line;
    advance();
    if (!Tok.is(TokKind::Ident)) {
      fail("expected function name");
      return nullptr;
    }
    F->Name = identName();
    advance();
    if (!expect(TokKind::LParen, "expected '(' after function name"))
      return nullptr;
    Param<M> *LastParam = nullptr;
    while (Tok.is(TokKind::Ident)) {
      auto *P = node<Param<M>>();
      P->Name = identName();
      advance();
      if (LastParam)
        LastParam->Next = P;
      else
        F->Params = P;
      LastParam = P;
      ++F->NumParams;
      if (Tok.is(TokKind::Comma))
        advance();
      else
        break;
    }
    if (!expect(TokKind::RParen, "expected ')' after parameters"))
      return nullptr;
    F->Body = parseBlock();
    return Failed ? nullptr : F;
  }

  /// block := "{" stmt* "}"; returns the first statement of the chain.
  Stmt<M> *parseBlock() {
    if (!expect(TokKind::LBrace, "expected '{'"))
      return nullptr;
    Stmt<M> *First = nullptr, *Last = nullptr;
    while (!Tok.is(TokKind::RBrace) && !Tok.is(TokKind::Eof) && !Failed) {
      Stmt<M> *S = parseStmt();
      if (!S)
        break;
      if (Last)
        Last->Next = S;
      else
        First = S;
      Last = S;
    }
    expect(TokKind::RBrace, "expected '}'");
    return First;
  }

  Stmt<M> *parseStmt() {
    std::uint32_t Line = Tok.Line;
    if (Tok.is(TokKind::KwVar)) {
      advance();
      if (!Tok.is(TokKind::Ident)) {
        fail("expected variable name after 'var'");
        return nullptr;
      }
      auto *S = node<Stmt<M>>();
      S->Kind = StmtKind::VarDecl;
      S->Line = Line;
      S->Name = identName();
      advance();
      if (!expect(TokKind::Assign, "expected '=' in var declaration"))
        return nullptr;
      S->Value = parseExpr();
      expect(TokKind::Semi, "expected ';'");
      return S;
    }
    if (Tok.is(TokKind::KwIf)) {
      advance();
      auto *S = node<Stmt<M>>();
      S->Kind = StmtKind::If;
      S->Line = Line;
      expect(TokKind::LParen, "expected '(' after 'if'");
      S->Value = parseExpr();
      expect(TokKind::RParen, "expected ')' after condition");
      S->Body = parseBlock();
      if (Tok.is(TokKind::KwElse)) {
        advance();
        S->ElseBody = parseBlock();
      }
      return S;
    }
    if (Tok.is(TokKind::KwWhile)) {
      advance();
      auto *S = node<Stmt<M>>();
      S->Kind = StmtKind::While;
      S->Line = Line;
      expect(TokKind::LParen, "expected '(' after 'while'");
      S->Value = parseExpr();
      expect(TokKind::RParen, "expected ')' after condition");
      S->Body = parseBlock();
      return S;
    }
    if (Tok.is(TokKind::KwReturn)) {
      advance();
      auto *S = node<Stmt<M>>();
      S->Kind = StmtKind::Return;
      S->Line = Line;
      S->Value = parseExpr();
      expect(TokKind::Semi, "expected ';'");
      return S;
    }
    if (Tok.is(TokKind::Ident)) {
      // Assignment needs two-token lookahead: remember the identifier,
      // then check for '='.
      Token Ident = Tok;
      advance();
      if (Tok.is(TokKind::Assign)) {
        advance();
        auto *S = node<Stmt<M>>();
        S->Kind = StmtKind::Assign;
        S->Line = Line;
        S->Name = rcopy(Ident.Text, Ident.Len);
        S->Value = parseExpr();
        expect(TokKind::Semi, "expected ';'");
        return S;
      }
      // Otherwise it begins an expression statement.
      auto *S = node<Stmt<M>>();
      S->Kind = StmtKind::ExprStmt;
      S->Line = Line;
      S->Value = continueExprFromIdent(Ident);
      expect(TokKind::Semi, "expected ';'");
      return S;
    }
    auto *S = node<Stmt<M>>();
    S->Kind = StmtKind::ExprStmt;
    S->Line = Line;
    S->Value = parseExpr();
    expect(TokKind::Semi, "expected ';'");
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//

  Expr<M> *parseExpr() { return parseOr(); }

  Expr<M> *parseOr() {
    Expr<M> *L = parseAnd();
    while (Tok.is(TokKind::OrOr) && !Failed) {
      advance();
      L = binary(BinOp::Or, L, parseAnd());
    }
    return L;
  }

  Expr<M> *parseAnd() {
    Expr<M> *L = parseCmp();
    while (Tok.is(TokKind::AndAnd) && !Failed) {
      advance();
      L = binary(BinOp::And, L, parseCmp());
    }
    return L;
  }

  Expr<M> *parseCmp() {
    Expr<M> *L = parseAddSub();
    BinOp Op;
    if (Tok.is(TokKind::Lt))
      Op = BinOp::Lt;
    else if (Tok.is(TokKind::Le))
      Op = BinOp::Le;
    else if (Tok.is(TokKind::Gt))
      Op = BinOp::Gt;
    else if (Tok.is(TokKind::Ge))
      Op = BinOp::Ge;
    else if (Tok.is(TokKind::EqEq))
      Op = BinOp::Eq;
    else if (Tok.is(TokKind::Ne))
      Op = BinOp::Ne;
    else
      return L;
    advance();
    return binary(Op, L, parseAddSub());
  }

  Expr<M> *parseAddSub() {
    Expr<M> *L = parseMulDiv();
    for (;;) {
      BinOp Op;
      if (Tok.is(TokKind::Plus))
        Op = BinOp::Add;
      else if (Tok.is(TokKind::Minus))
        Op = BinOp::Sub;
      else
        return L;
      advance();
      L = binary(Op, L, parseMulDiv());
      if (Failed)
        return L;
    }
  }

  Expr<M> *parseMulDiv() {
    Expr<M> *L = parseUnary();
    for (;;) {
      BinOp Op;
      if (Tok.is(TokKind::Star))
        Op = BinOp::Mul;
      else if (Tok.is(TokKind::Slash))
        Op = BinOp::Div;
      else if (Tok.is(TokKind::Percent))
        Op = BinOp::Mod;
      else
        return L;
      advance();
      L = binary(Op, L, parseUnary());
      if (Failed)
        return L;
    }
  }

  Expr<M> *parseUnary() {
    if (Tok.is(TokKind::Minus) || Tok.is(TokKind::Bang)) {
      UnOp Op = Tok.is(TokKind::Minus) ? UnOp::Neg : UnOp::Not;
      std::uint32_t Line = Tok.Line;
      advance();
      auto *E = node<Expr<M>>();
      E->Kind = ExprKind::Unary;
      E->Un = Op;
      E->Line = Line;
      E->Lhs = parseUnary();
      return E;
    }
    return parsePrimary();
  }

  Expr<M> *parsePrimary() {
    if (Tok.is(TokKind::Number)) {
      auto *E = node<Expr<M>>();
      E->Kind = ExprKind::IntLit;
      E->IntVal = Tok.Value;
      E->Line = Tok.Line;
      advance();
      return E;
    }
    if (Tok.is(TokKind::LParen)) {
      advance();
      Expr<M> *E = parseExpr();
      expect(TokKind::RParen, "expected ')'");
      return E;
    }
    if (Tok.is(TokKind::Ident)) {
      Token Ident = Tok;
      advance();
      return continueExprFromIdent(Ident);
    }
    fail("expected expression");
    // Produce a dummy node so callers never dereference null.
    auto *E = node<Expr<M>>();
    E->Kind = ExprKind::IntLit;
    return E;
  }

  /// Identifier already consumed: variable reference or call.
  Expr<M> *continueExprFromIdent(const Token &Ident) {
    auto *E = node<Expr<M>>();
    E->Line = Ident.Line;
    E->Name = rcopy(Ident.Text, Ident.Len);
    if (!Tok.is(TokKind::LParen)) {
      E->Kind = ExprKind::VarRef;
      return E;
    }
    E->Kind = ExprKind::Call;
    advance();
    Expr<M> *LastArg = nullptr;
    while (!Tok.is(TokKind::RParen) && !Failed) {
      Expr<M> *Arg = parseExpr();
      if (LastArg)
        LastArg->Next = Arg;
      else
        E->Args = Arg;
      LastArg = Arg;
      if (Tok.is(TokKind::Comma))
        advance();
      else
        break;
    }
    expect(TokKind::RParen, "expected ')' after arguments");
    return E;
  }

  Expr<M> *binary(BinOp Op, Expr<M> *L, Expr<M> *R) {
    auto *E = node<Expr<M>>();
    E->Kind = ExprKind::Binary;
    E->Bin = Op;
    E->Lhs = L;
    E->Rhs = R;
    E->Line = L ? L->Line : 0;
    return E;
  }

  M &Mem;
  typename M::Token &Scope;
  Lexer Lex;
  Token Tok;
  bool Failed = false;
  const char *ErrorMsg = "";
  std::uint32_t ErrorLine = 0;
  std::uint32_t NodeCount = 0;
};

} // namespace mud
} // namespace regions

#endif // MUDLLE_PARSER_H
