//===- mudlle/Ast.h - AST for the mud language -----------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax trees, templated over the memory model so child
/// links are barriered RegionPtrs on region backends and plain pointers
/// on malloc backends — the two compiled versions of the paper's
/// benchmarks. All node links within one file's AST are sameregion in
/// the paper's organization ("one region holds the abstract syntax tree
/// of the file being compiled").
///
//===----------------------------------------------------------------------===//

#ifndef MUDLLE_AST_H
#define MUDLLE_AST_H

#include "mudlle/Lexer.h"

#include <cstdint>

namespace regions {
namespace mud {

enum class ExprKind : std::uint8_t {
  IntLit,
  VarRef,
  Unary,  ///< Op applied to Lhs
  Binary, ///< Lhs Op Rhs
  Call,   ///< Callee name, Args chained via Next
};

enum class BinOp : std::uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
};

enum class UnOp : std::uint8_t { Neg, Not };

template <class M> struct Expr {
  template <class T> using Ptr = typename M::template Ptr<T>;

  ExprKind Kind = ExprKind::IntLit;
  BinOp Bin = BinOp::Add;
  UnOp Un = UnOp::Neg;
  std::int32_t IntVal = 0;
  const char *Name = nullptr; ///< VarRef/Call: region-copied identifier
  Ptr<Expr> Lhs;
  Ptr<Expr> Rhs;
  Ptr<Expr> Args; ///< Call: first argument
  Ptr<Expr> Next; ///< argument chaining
  std::uint32_t Line = 0;
};

enum class StmtKind : std::uint8_t {
  VarDecl, ///< var Name = Value;
  Assign,  ///< Name = Value;
  If,      ///< if (Cond) Body else ElseBody
  While,   ///< while (Cond) Body
  Return,  ///< return Value;
  ExprStmt,
};

template <class M> struct Stmt {
  template <class T> using Ptr = typename M::template Ptr<T>;

  StmtKind Kind = StmtKind::ExprStmt;
  const char *Name = nullptr;
  Ptr<Expr<M>> Value;
  Ptr<Stmt> Body;
  Ptr<Stmt> ElseBody;
  Ptr<Stmt> Next; ///< statement sequencing
  std::uint32_t Line = 0;
};

/// One parameter name in a function's parameter list.
template <class M> struct Param {
  const char *Name = nullptr;
  typename M::template Ptr<Param> Next;
};

template <class M> struct Function {
  template <class T> using Ptr = typename M::template Ptr<T>;

  const char *Name = nullptr;
  Ptr<Param<M>> Params;
  Ptr<Stmt<M>> Body;
  Ptr<Function> Next; ///< next function in the file
  std::uint32_t NumParams = 0;
  std::uint32_t Line = 0;
};

/// A parsed source file: list of functions, all in one region.
template <class M> struct SourceFile {
  typename M::template Ptr<Function<M>> Functions;
  std::uint32_t NumFunctions = 0;
  std::uint32_t NumNodes = 0; ///< AST nodes allocated (statistics)
};

} // namespace mud
} // namespace regions

#endif // MUDLLE_AST_H
