//===- mudlle/Disasm.h - Bytecode disassembler ------------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable disassembly of compiled mud functions, for compiler
/// debugging and the compiler_pipeline example.
///
//===----------------------------------------------------------------------===//

#ifndef MUDLLE_DISASM_H
#define MUDLLE_DISASM_H

#include "mudlle/Bytecode.h"

#include <string>

namespace regions {
namespace mud {

inline const char *opName(Op O) {
  switch (O) {
  case Op::Nop:
    return "nop";
  case Op::PushImm:
    return "push";
  case Op::Load:
    return "load";
  case Op::Store:
    return "store";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::Mod:
    return "mod";
  case Op::Neg:
    return "neg";
  case Op::Not:
    return "not";
  case Op::Lt:
    return "lt";
  case Op::Le:
    return "le";
  case Op::Gt:
    return "gt";
  case Op::Ge:
    return "ge";
  case Op::Eq:
    return "eq";
  case Op::Ne:
    return "ne";
  case Op::Jmp:
    return "jmp";
  case Op::Jz:
    return "jz";
  case Op::Jnz:
    return "jnz";
  case Op::Call:
    return "call";
  case Op::Ret:
    return "ret";
  case Op::Pop:
    return "pop";
  }
  return "?";
}

/// True if the opcode's operand field is meaningful.
inline bool opHasOperand(Op O) {
  switch (O) {
  case Op::PushImm:
  case Op::Load:
  case Op::Store:
  case Op::Jmp:
  case Op::Jz:
  case Op::Jnz:
  case Op::Call:
    return true;
  default:
    return false;
  }
}

/// Disassembles one instruction word.
inline std::string disassembleWord(std::uint32_t Word) {
  Op O = opOf(Word);
  std::string S = opName(O);
  if (opHasOperand(O))
    S += " " + std::to_string(operandOf(Word));
  return S;
}

/// Disassembles a whole function into "index: insn" lines.
template <class M>
std::string disassemble(const CompiledFunction<M> &F) {
  std::string Out;
  Out += "fn ";
  Out += F.Name ? F.Name : "?";
  Out += " (params=" + std::to_string(F.NumParams) +
         ", locals=" + std::to_string(F.NumLocals) + ")\n";
  for (std::uint32_t I = 0; I != F.CodeLen; ++I) {
    Out += "  " + std::to_string(I) + ": " + disassembleWord(F.Code[I]) +
           "\n";
  }
  return Out;
}

/// Disassembles every function of a program.
template <class M>
std::string disassemble(const CompiledProgram<M> &Prog) {
  std::string Out;
  for (const CompiledFunction<M> *F = Prog.Functions; F;
       F = F->Next)
    Out += disassemble(*F);
  return Out;
}

} // namespace mud
} // namespace regions

#endif // MUDLLE_DISASM_H
