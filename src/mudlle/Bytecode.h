//===- mudlle/Bytecode.h - Bytecode for the mud VM -------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stack-machine bytecode: one 32-bit word per instruction, opcode in
/// the low 8 bits and a signed 24-bit operand above it.
///
//===----------------------------------------------------------------------===//

#ifndef MUDLLE_BYTECODE_H
#define MUDLLE_BYTECODE_H

#include <cassert>
#include <cstdint>

namespace regions {
namespace mud {

enum class Op : std::uint8_t {
  Nop,     ///< placeholder left by the peephole pass
  PushImm, ///< push signed 24-bit operand
  Load,    ///< push local slot [operand]
  Store,   ///< pop into local slot [operand]
  Add,
  Sub,
  Mul,
  Div, ///< division by zero yields 0 (defined language semantics)
  Mod, ///< modulo by zero yields 0
  Neg,
  Not,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  Jmp,  ///< absolute code index
  Jz,   ///< pop; jump if zero
  Jnz,  ///< pop; jump if nonzero
  Call, ///< operand = function index; arguments on the stack
  Ret,  ///< pop return value, pop frame
  Pop,  ///< discard top of stack
};

inline constexpr std::int32_t kMaxImm = (1 << 23) - 1;
inline constexpr std::int32_t kMinImm = -(1 << 23);

inline std::uint32_t encode(Op O, std::int32_t Operand = 0) {
  assert(Operand >= kMinImm && Operand <= kMaxImm && "operand overflow");
  return static_cast<std::uint32_t>(O) |
         (static_cast<std::uint32_t>(Operand) << 8);
}

inline Op opOf(std::uint32_t Word) {
  return static_cast<Op>(Word & 0xff);
}

inline std::int32_t operandOf(std::uint32_t Word) {
  return static_cast<std::int32_t>(Word) >> 8; // arithmetic shift
}

/// A compiled function; the code array lives in the output region's
/// pointer-free storage.
template <class M> struct CompiledFunction {
  const char *Name = nullptr;
  const std::uint32_t *Code = nullptr;
  std::uint32_t CodeLen = 0;
  std::uint16_t NumParams = 0;
  std::uint16_t NumLocals = 0; ///< params + vars
  std::uint32_t Index = 0;
  typename M::template Ptr<CompiledFunction> Next;
};

/// A compiled file.
template <class M> struct CompiledProgram {
  typename M::template Ptr<CompiledFunction<M>> Functions;
  std::uint32_t NumFunctions = 0;
  std::int32_t MainIndex = -1;
  std::uint32_t TotalCodeWords = 0;
  std::uint32_t PeepholeRewrites = 0;
};

} // namespace mud
} // namespace regions

#endif // MUDLLE_BYTECODE_H
