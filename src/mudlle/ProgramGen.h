//===- mudlle/ProgramGen.h - Deterministic mud program generator -*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates deterministic, terminating mud programs. The mudlle
/// workload compiles "the same 500-line file 100 times" (paper §5.1);
/// this generator produces that file. Programs always terminate: calls
/// form a DAG (functions only call lower-numbered functions) and every
/// while loop is a bounded counting loop.
///
//===----------------------------------------------------------------------===//

#ifndef MUDLLE_PROGRAMGEN_H
#define MUDLLE_PROGRAMGEN_H

#include "support/Prng.h"

#include <string>

namespace regions {
namespace mud {

struct GenOptions {
  unsigned NumFunctions = 25;
  unsigned StmtsPerFunction = 5;
  std::uint64_t Seed = 1;
};

/// Generates a self-contained program with a zero-argument main().
class ProgramGenerator {
public:
  explicit ProgramGenerator(const GenOptions &Opt) : Opt(Opt), Rng(Opt.Seed) {
    assert(Opt.NumFunctions <= 1024 && "raise the ParamCounts bound");
  }

  std::string generate() {
    std::string Out;
    for (unsigned F = 0; F < Opt.NumFunctions; ++F)
      emitFunction(Out, F);
    emitMain(Out);
    return Out;
  }

private:
  void emitFunction(std::string &Out, unsigned Index) {
    FnIndex = Index;
    NumParams = 1 + static_cast<unsigned>(Rng.nextBelow(3));
    ParamCounts[Index] = NumParams;
    NumVars = 0;
    Out += "fn f" + std::to_string(Index) + "(";
    for (unsigned P = 0; P != NumParams; ++P) {
      if (P)
        Out += ", ";
      Out += "p" + std::to_string(P);
    }
    Out += ") {\n";
    // Accumulator so every statement contributes to the result.
    Out += "  var acc = p0;\n";
    ++NumVars;
    unsigned Stmts = Opt.StmtsPerFunction / 2 +
                     static_cast<unsigned>(
                         Rng.nextBelow(Opt.StmtsPerFunction));
    for (unsigned S = 0; S != Stmts; ++S)
      emitStmt(Out, 1);
    Out += "  return acc;\n}\n\n";
  }

  void emitMain(std::string &Out) {
    Out += "fn main() {\n  var total = 0;\n";
    for (unsigned F = 0; F < Opt.NumFunctions; ++F) {
      Out += "  total = total + f" + std::to_string(F) + "(";
      unsigned Params = ParamCounts[F];
      for (unsigned P = 0; P != Params; ++P) {
        if (P)
          Out += ", ";
        Out += std::to_string(Rng.nextBelow(100));
      }
      Out += ");\n";
    }
    Out += "  return total;\n}\n";
  }

  void emitStmt(std::string &Out, unsigned Depth) {
    std::string Indent(2 * Depth, ' ');
    switch (Rng.nextBelow(Depth >= 3 ? 3 : 5)) {
    case 0: { // new variable
      Out += Indent + "var v" + std::to_string(NumVars) + " = " +
             expr(2) + ";\n";
      ++NumVars;
      return;
    }
    case 1: // accumulate
      Out += Indent + "acc = acc + (" + expr(2) + ");\n";
      return;
    case 2: // assignment to an existing variable
      Out += Indent + lvalue() + " = " + expr(2) + ";\n";
      return;
    case 3: { // bounded counting loop
      std::string I = "i" + std::to_string(NumVars);
      ++NumVars; // reserve the name (loop counters are ordinary vars)
      std::uint64_t Bound = 2 + Rng.nextBelow(9);
      Out += Indent + "var " + I + " = 0;\n";
      Out += Indent + "while (" + I + " < " + std::to_string(Bound) +
             ") {\n";
      emitStmt(Out, Depth + 1);
      Out += Indent + "  " + I + " = " + I + " + 1;\n";
      Out += Indent + "}\n";
      return;
    }
    case 4: // conditional
      Out += Indent + "if (" + expr(1) + " % 2 == 0) {\n";
      emitStmt(Out, Depth + 1);
      Out += Indent + "} else {\n";
      emitStmt(Out, Depth + 1);
      Out += Indent + "}\n";
      return;
    }
  }

  std::string lvalue() {
    if (NumVars == 0 || Rng.nextBool(0.3))
      return "acc";
    // Either a vN or an iN name; both were reserved in NumVars order.
    // To stay simple (and always valid), assign to acc or p0.
    return Rng.nextBool(0.5) ? std::string("acc") : std::string("p0");
  }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || Rng.nextBool(0.35))
      return atom();
    switch (Rng.nextBelow(6)) {
    case 0:
      return "(" + expr(Depth - 1) + " + " + expr(Depth - 1) + ")";
    case 1:
      return "(" + expr(Depth - 1) + " - " + expr(Depth - 1) + ")";
    case 2:
      return "(" + expr(Depth - 1) + " * " + atom() + ")";
    case 3:
      return "(" + expr(Depth - 1) + " / " + std::to_string(
                 1 + Rng.nextBelow(9)) + ")";
    case 4:
      return "(" + expr(Depth - 1) + " % " + std::to_string(
                 2 + Rng.nextBelow(97)) + ")";
    default: {
      // Call a previously defined function (keeps the call graph a DAG).
      if (FnIndex == 0)
        return atom();
      unsigned Callee = static_cast<unsigned>(Rng.nextBelow(FnIndex));
      std::string S = "f" + std::to_string(Callee) + "(";
      for (unsigned P = 0; P != ParamCounts[Callee]; ++P) {
        if (P)
          S += ", ";
        S += atom();
      }
      return S + ")";
    }
    }
  }

  std::string atom() {
    switch (Rng.nextBelow(3)) {
    case 0:
      return std::to_string(Rng.nextBelow(1000));
    case 1:
      return "acc";
    default:
      return "p" + std::to_string(Rng.nextBelow(NumParams));
    }
  }

  GenOptions Opt;
  Prng Rng;
  unsigned FnIndex = 0;
  unsigned NumParams = 1;
  unsigned NumVars = 0;
  unsigned ParamCounts[1024] = {};

public:
  /// Generation also records each function's arity for call sites; this
  /// must run before any call is emitted, so generate() fills it as it
  /// goes. Exposed for tests.
  const unsigned *paramCounts() const { return ParamCounts; }
};

} // namespace mud
} // namespace regions

#endif // MUDLLE_PROGRAMGEN_H
