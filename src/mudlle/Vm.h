//===- mudlle/Vm.h - Stack-machine interpreter for mud ---------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A straightforward stack-machine interpreter used to validate
/// compiled programs (every backend must compute the same results) and
/// by the compiler_pipeline example. The interpreter's own stacks are
/// ordinary application memory; mud programs compute over integers and
/// allocate nothing at run time.
///
//===----------------------------------------------------------------------===//

#ifndef MUDLLE_VM_H
#define MUDLLE_VM_H

#include "mudlle/Bytecode.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace regions {
namespace mud {

struct VmResult {
  std::int64_t Value = 0;
  bool Ok = false;
  const char *Error = nullptr;
  std::uint64_t Steps = 0;
};

/// Executes a compiled program.
template <class M> class Vm {
public:
  explicit Vm(const CompiledProgram<M> &Prog) {
    Functions.resize(Prog.NumFunctions);
    for (const CompiledFunction<M> *F = Prog.Functions; F;
         F = rawNext(F))
      Functions[F->Index] = F;
    MainIndex = Prog.MainIndex;
  }

  /// Runs function \p Index with \p Args. \p MaxSteps bounds execution.
  VmResult call(std::uint32_t Index, const std::int64_t *Args,
                std::uint32_t NumArgs, std::uint64_t MaxSteps = 100000000) {
    VmResult R;
    if (Index >= Functions.size() || !Functions[Index]) {
      R.Error = "no such function";
      return R;
    }
    const CompiledFunction<M> *F = Functions[Index];
    if (NumArgs != F->NumParams) {
      R.Error = "wrong number of arguments";
      return R;
    }

    Stack.clear();
    Frames.clear();
    for (std::uint32_t I = 0; I != NumArgs; ++I)
      Stack.push_back(Args[I]);
    pushFrame(F);

    std::uint64_t Steps = 0;
    while (!Frames.empty()) {
      if (++Steps > MaxSteps) {
        R.Error = "step limit exceeded";
        R.Steps = Steps;
        return R;
      }
      Frame &Fr = Frames.back();
      const CompiledFunction<M> *Cur = Fr.Fn;
      if (Fr.Pc >= Cur->CodeLen) {
        R.Error = "fell off the end of a function";
        return R;
      }
      std::uint32_t Word = Cur->Code[Fr.Pc++];
      std::int32_t Opnd = operandOf(Word);
      switch (opOf(Word)) {
      case Op::Nop:
        break;
      case Op::PushImm:
        Stack.push_back(Opnd);
        break;
      case Op::Load:
        Stack.push_back(Stack[Fr.Base + static_cast<std::uint32_t>(Opnd)]);
        break;
      case Op::Store:
        Stack[Fr.Base + static_cast<std::uint32_t>(Opnd)] = Stack.back();
        Stack.pop_back();
        break;
      case Op::Add:
        // Wrapping arithmetic (via unsigned) keeps generated programs
        // deterministic without signed-overflow UB.
        binop([](std::int64_t A, std::int64_t B) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(A) +
                                           static_cast<std::uint64_t>(B));
        });
        break;
      case Op::Sub:
        binop([](std::int64_t A, std::int64_t B) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(A) -
                                           static_cast<std::uint64_t>(B));
        });
        break;
      case Op::Mul:
        binop([](std::int64_t A, std::int64_t B) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(A) *
                                           static_cast<std::uint64_t>(B));
        });
        break;
      case Op::Div:
        binop([](std::int64_t A, std::int64_t B) {
          if (B == 0 || (A == INT64_MIN && B == -1))
            return std::int64_t{0};
          return A / B;
        });
        break;
      case Op::Mod:
        binop([](std::int64_t A, std::int64_t B) {
          if (B == 0 || (A == INT64_MIN && B == -1))
            return std::int64_t{0};
          return A % B;
        });
        break;
      case Op::Neg:
        Stack.back() = -Stack.back();
        break;
      case Op::Not:
        Stack.back() = Stack.back() == 0;
        break;
      case Op::Lt:
        binop([](std::int64_t A, std::int64_t B) {
          return static_cast<std::int64_t>(A < B);
        });
        break;
      case Op::Le:
        binop([](std::int64_t A, std::int64_t B) {
          return static_cast<std::int64_t>(A <= B);
        });
        break;
      case Op::Gt:
        binop([](std::int64_t A, std::int64_t B) {
          return static_cast<std::int64_t>(A > B);
        });
        break;
      case Op::Ge:
        binop([](std::int64_t A, std::int64_t B) {
          return static_cast<std::int64_t>(A >= B);
        });
        break;
      case Op::Eq:
        binop([](std::int64_t A, std::int64_t B) {
          return static_cast<std::int64_t>(A == B);
        });
        break;
      case Op::Ne:
        binop([](std::int64_t A, std::int64_t B) {
          return static_cast<std::int64_t>(A != B);
        });
        break;
      case Op::Jmp:
        Fr.Pc = static_cast<std::uint32_t>(Opnd);
        break;
      case Op::Jz: {
        std::int64_t V = Stack.back();
        Stack.pop_back();
        if (V == 0)
          Fr.Pc = static_cast<std::uint32_t>(Opnd);
        break;
      }
      case Op::Jnz: {
        std::int64_t V = Stack.back();
        Stack.pop_back();
        if (V != 0)
          Fr.Pc = static_cast<std::uint32_t>(Opnd);
        break;
      }
      case Op::Call: {
        const CompiledFunction<M> *Callee =
            Functions[static_cast<std::uint32_t>(Opnd)];
        pushFrame(Callee);
        break;
      }
      case Op::Ret: {
        std::int64_t V = Stack.back();
        Stack.resize(Frames.back().Base);
        Frames.pop_back();
        Stack.push_back(V);
        break;
      }
      case Op::Pop:
        Stack.pop_back();
        break;
      }
    }
    R.Ok = true;
    R.Value = Stack.back();
    R.Steps = Steps;
    return R;
  }

  /// Runs main() with no arguments.
  VmResult runMain(std::uint64_t MaxSteps = 100000000) {
    VmResult R;
    if (MainIndex < 0) {
      R.Error = "program has no main()";
      return R;
    }
    return call(static_cast<std::uint32_t>(MainIndex), nullptr, 0, MaxSteps);
  }

private:
  struct Frame {
    const CompiledFunction<M> *Fn;
    std::uint32_t Pc;
    std::uint32_t Base; ///< stack index of local slot 0
  };

  static const CompiledFunction<M> *rawNext(const CompiledFunction<M> *F) {
    return F->Next;
  }

  /// Arguments are on the stack already; extends them with zeroed
  /// non-parameter locals.
  void pushFrame(const CompiledFunction<M> *F) {
    std::uint32_t Base =
        static_cast<std::uint32_t>(Stack.size()) - F->NumParams;
    for (std::uint32_t I = F->NumParams; I < F->NumLocals; ++I)
      Stack.push_back(0);
    Frames.push_back(Frame{F, 0, Base});
  }

  template <class Fn> void binop(Fn Apply) {
    std::int64_t B = Stack.back();
    Stack.pop_back();
    std::int64_t A = Stack.back();
    Stack.back() = Apply(A, B);
  }

  std::vector<const CompiledFunction<M> *> Functions;
  std::vector<std::int64_t> Stack;
  std::vector<Frame> Frames;
  std::int32_t MainIndex = -1;
};

} // namespace mud
} // namespace regions

#endif // MUDLLE_VM_H
