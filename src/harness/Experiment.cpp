//===- harness/Experiment.cpp - Benchmark harness utilities ---------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

double harness::envScale() {
  if (const char *S = std::getenv("REGIONS_BENCH_SCALE")) {
    double V = std::atof(S);
    if (V > 0)
      return V;
  }
  return 1.0;
}

unsigned harness::envRepeats() {
  if (const char *S = std::getenv("REGIONS_BENCH_REPEATS")) {
    int V = std::atoi(S);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  return 3;
}

WorkloadOptions harness::defaultOptions() {
  WorkloadOptions Opt;
  Opt.Scale = envScale();
  return Opt;
}

RunResult harness::runMedian(WorkloadId W, BackendKind B,
                             const WorkloadOptions &Opt, unsigned Repeats) {
  std::vector<RunResult> Runs;
  for (unsigned I = 0; I != Repeats; ++I)
    Runs.push_back(runWorkload(W, B, Opt));
  std::sort(Runs.begin(), Runs.end(),
            [](const RunResult &A, const RunResult &Bb) {
              return A.Millis < Bb.Millis;
            });
  return Runs[Runs.size() / 2];
}

TimeSplit harness::timeSplit(WorkloadId W, BackendKind B,
                             const WorkloadOptions &Opt, unsigned Repeats) {
  TimeSplit S;
  S.TotalMs = runMedian(W, B, Opt, Repeats).Millis;
  S.BaseMs = runMedian(W, BackendKind::Bump, Opt, Repeats).Millis;
  S.MemoryMs = S.TotalMs > S.BaseMs ? S.TotalMs - S.BaseMs : 0.0;
  return S;
}

void ObservabilityConfig::armIfRequested() const {
  if (TraceRequested)
    rstat::armTracing();
}

void ObservabilityConfig::report(const MetricsSnapshot &M) const {
  if (MetricsRequested) {
    if (MetricsPath) {
      if (writeMetricsJson(M, MetricsPath))
        std::printf("metrics: wrote %s\n", MetricsPath);
      else
        std::fprintf(stderr, "metrics: cannot write %s\n", MetricsPath);
    } else {
      printMetrics(M);
    }
  }
  if (TraceRequested) {
    long N = rstat::writeChromeTrace(TracePath);
    if (N < 0)
      std::fprintf(stderr, "trace: cannot write %s\n", TracePath);
    else
      std::printf("trace: wrote %ld event(s) to %s (%zu dropped)\n", N,
                  TracePath, rstat::droppedEventCount());
  }
}

ObservabilityConfig harness::parseObservabilityArgs(int &Argc, char **Argv) {
  ObservabilityConfig C;
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    char *A = Argv[I];
    if (std::strcmp(A, "--metrics") == 0) {
      C.MetricsRequested = true;
    } else if (std::strncmp(A, "--metrics=", 10) == 0) {
      C.MetricsRequested = true;
      C.MetricsPath = A + 10;
    } else if (std::strcmp(A, "--trace") == 0) {
      C.TraceRequested = true;
    } else if (std::strncmp(A, "--trace=", 8) == 0) {
      C.TraceRequested = true;
      C.TracePath = A + 8;
    } else {
      Argv[Out++] = A;
    }
  }
  Argc = Out;
  Argv[Out] = nullptr;
  return C;
}

void harness::printBanner(const char *Title, const char *PaperRef) {
  std::printf("== %s ==\n", Title);
  std::printf("Reproduces %s of Gay & Aiken, \"Memory Management with "
              "Explicit Regions\" (PLDI 1998).\n",
              PaperRef);
  std::printf("scale=%.2f repeats=%u (see EXPERIMENTS.md for expected "
              "shapes)\n\n",
              envScale(), envRepeats());
}
