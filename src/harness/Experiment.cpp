//===- harness/Experiment.cpp - Benchmark harness utilities ---------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

double harness::envScale() {
  if (const char *S = std::getenv("REGIONS_BENCH_SCALE")) {
    double V = std::atof(S);
    if (V > 0)
      return V;
  }
  return 1.0;
}

unsigned harness::envRepeats() {
  if (const char *S = std::getenv("REGIONS_BENCH_REPEATS")) {
    int V = std::atoi(S);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  return 3;
}

WorkloadOptions harness::defaultOptions() {
  WorkloadOptions Opt;
  Opt.Scale = envScale();
  return Opt;
}

RunResult harness::runMedian(WorkloadId W, BackendKind B,
                             const WorkloadOptions &Opt, unsigned Repeats) {
  std::vector<RunResult> Runs;
  for (unsigned I = 0; I != Repeats; ++I)
    Runs.push_back(runWorkload(W, B, Opt));
  std::sort(Runs.begin(), Runs.end(),
            [](const RunResult &A, const RunResult &Bb) {
              return A.Millis < Bb.Millis;
            });
  return Runs[Runs.size() / 2];
}

TimeSplit harness::timeSplit(WorkloadId W, BackendKind B,
                             const WorkloadOptions &Opt, unsigned Repeats) {
  TimeSplit S;
  S.TotalMs = runMedian(W, B, Opt, Repeats).Millis;
  S.BaseMs = runMedian(W, BackendKind::Bump, Opt, Repeats).Millis;
  S.MemoryMs = S.TotalMs > S.BaseMs ? S.TotalMs - S.BaseMs : 0.0;
  return S;
}

void harness::printBanner(const char *Title, const char *PaperRef) {
  std::printf("== %s ==\n", Title);
  std::printf("Reproduces %s of Gay & Aiken, \"Memory Management with "
              "Explicit Regions\" (PLDI 1998).\n",
              PaperRef);
  std::printf("scale=%.2f repeats=%u (see EXPERIMENTS.md for expected "
              "shapes)\n\n",
              envScale(), envRepeats());
}
