//===- harness/Experiment.h - Benchmark harness utilities ------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the bench/ binaries that regenerate the paper's
/// tables and figures: median-of-N timing, environment knobs, and the
/// base/memory execution-time split of Figure 9.
///
/// Environment variables:
///   REGIONS_BENCH_SCALE    problem-size multiplier (default 1.0)
///   REGIONS_BENCH_REPEATS  timing repetitions, median taken (default 3)
///
//===----------------------------------------------------------------------===//

#ifndef HARNESS_EXPERIMENT_H
#define HARNESS_EXPERIMENT_H

#include "workloads/Workloads.h"

namespace regions {
namespace harness {

/// REGIONS_BENCH_SCALE or 1.0.
double envScale();

/// REGIONS_BENCH_REPEATS or 3.
unsigned envRepeats();

/// Default workload options honouring the environment knobs.
workloads::WorkloadOptions defaultOptions();

/// Runs the workload Repeats times and returns the run whose wall time
/// is the median (statistics are identical across runs by determinism).
workloads::RunResult runMedian(workloads::WorkloadId W, BackendKind B,
                               const workloads::WorkloadOptions &Opt,
                               unsigned Repeats);

/// Figure 9's split: total time on \p B, base time measured on the
/// zero-cost Bump backend, memory time = max(0, total - base).
struct TimeSplit {
  double TotalMs = 0;
  double BaseMs = 0;
  double MemoryMs = 0;
};
TimeSplit timeSplit(workloads::WorkloadId W, BackendKind B,
                    const workloads::WorkloadOptions &Opt, unsigned Repeats);

/// Prints the standard experiment banner (what is being reproduced and
/// with what knobs).
void printBanner(const char *Title, const char *PaperRef);

//===----------------------------------------------------------------------===//
// rstat observability switches (--metrics / --trace)
//===----------------------------------------------------------------------===//

/// Harness-level rstat switches, parsed out of argv by
/// parseObservabilityArgs so every bench binary accepts them uniformly:
///   --metrics         print the MetricsSnapshot as human tables
///   --metrics=PATH    write it as JSON to PATH instead
///   --trace[=PATH]    arm event tracing; write Chrome trace JSON to
///                     PATH (default trace.json) at report time
struct ObservabilityConfig {
  bool MetricsRequested = false;
  bool TraceRequested = false;
  const char *MetricsPath = nullptr; ///< null: human tables on stdout
  const char *TracePath = "trace.json";

  /// Opens a tracing epoch if --trace was given. Call before the runs
  /// being observed; threads attach lazily from there.
  void armIfRequested() const;

  /// Emits whatever was requested: metrics from \p M (tables or JSON)
  /// and the trace file (with a one-line summary including events
  /// written and dropped). Safe to call with neither flag set.
  void report(const MetricsSnapshot &M) const;
};

/// Strips the switches above from (Argc, Argv), leaving every other
/// argument in place and in order. Unrecognized "--metrics-foo"-style
/// arguments are untouched.
ObservabilityConfig parseObservabilityArgs(int &Argc, char **Argv);

} // namespace harness
} // namespace regions

#endif // HARNESS_EXPERIMENT_H
