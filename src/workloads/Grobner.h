//===- workloads/Grobner.h - Gröbner basis workload ------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's grobner benchmark: "find the Gröbner basis of a set of
/// polynomials" (input: nine nine-variable polynomials). This is a real
/// Buchberger implementation over GF(32003) with grevlex order and the
/// coprime-lead-monomials criterion.
///
/// Region organization mirrors the paper's port: basis polynomials are
/// copied "to a result region", while each S-polynomial reduction runs
/// in a short-lived scratch region that is deleted when the reduction
/// completes — reduction is where the allocation churn happens.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_GROBNER_H
#define WORKLOADS_GROBNER_H

#include "backend/Models.h"
#include "poly/Poly.h"
#include "support/Prng.h"

#include <cstdint>
#include <vector>

namespace regions {
namespace workloads {

struct GrobnerOptions {
  unsigned NumVars = 6;      ///< variables in the generated system
  unsigned NumPolys = 9;     ///< generators (paper: nine)
  unsigned TermsPerPoly = 4;
  unsigned MaxDegree = 2;
  std::uint64_t Seed = 5;
  unsigned MaxBasis = 256;   ///< safety bound on basis growth
  unsigned MaxPairs = 20000; ///< safety bound on pair processing
};

struct GrobnerResult {
  std::uint32_t BasisSize = 0;
  std::uint64_t ReductionSteps = 0;
  std::uint64_t PairsProcessed = 0;
  std::uint64_t BasisHash = 0;

  std::uint64_t checksum() const {
    return BasisHash ^ (static_cast<std::uint64_t>(BasisSize) << 48) ^
           ReductionSteps;
  }
};

namespace grobner_detail {

/// Deterministic generator system: sparse random polynomials plus
/// structured "cyclic-like" relations so the basis is nontrivial.
template <class Builder>
std::vector<Poly> generateSystem(Builder &B, const GrobnerOptions &Opt) {
  Prng Rng(Opt.Seed);
  std::vector<Poly> Gens;
  for (unsigned P = 0; P != Opt.NumPolys; ++P) {
    std::vector<Term> Terms;
    // A structured term chain keeps systems solvable: x_i - x_{i+1}^d
    // style relations mixed with random noise terms.
    unsigned V = P % Opt.NumVars;
    unsigned W = (P + 1) % Opt.NumVars;
    Term Lead;
    Lead.Coeff = 1;
    Lead.Mono = Monomial::var(V, static_cast<std::uint8_t>(
                                     1 + P % Opt.MaxDegree));
    Terms.push_back(Lead);
    Term Second;
    Second.Coeff = kFieldPrime - 1;
    Second.Mono = Monomial::var(W, 1);
    Terms.push_back(Second);
    for (unsigned T = 2; T < Opt.TermsPerPoly; ++T) {
      Term X;
      X.Coeff =
          1 + static_cast<std::uint32_t>(Rng.nextBelow(kFieldPrime - 1));
      unsigned Total = 0;
      for (unsigned I = 0; I != Opt.NumVars && Total < Opt.MaxDegree; ++I) {
        auto E = static_cast<std::uint8_t>(
            Rng.nextBelow(Opt.MaxDegree - Total + 1));
        X.Mono.Exp[I] = E;
        Total += E;
      }
      X.Mono.Total = static_cast<std::uint8_t>(Total);
      Terms.push_back(X);
    }
    Gens.push_back(
        B.normalize(Terms.data(), static_cast<std::uint32_t>(Terms.size())));
  }
  return Gens;
}

} // namespace grobner_detail

/// Buchberger's algorithm with the region discipline described above.
template <class M>
GrobnerResult runGrobner(M &Mem, const GrobnerOptions &Opt) {
  using Arena = ScopedArena<M>;
  GrobnerResult Result;

  [[maybe_unused]] typename M::Frame Frame;
  // Result region: generators and accepted basis elements.
  typename M::Token BasisScope = Mem.makeRegion();
  Arena BasisArena{Mem, BasisScope};
  PolyBuilder<Arena> BasisB(BasisArena);

  // The basis polynomials live in the result region, chained through a
  // model-visible list (under the GC backend this list is what keeps
  // them reachable; under safe regions the links add the sameregion
  // barrier traffic the original program had). Deliberately kept as a
  // barriered Ptr — unlike cfrac/moss/tile, which use the static
  // SamePtr elision — so the dynamic sameregion fast path stays
  // exercised by a workload. The plain vector is an index into the
  // same objects for fast reduce() access, like the original's static
  // array.
  struct BasisNode {
    Poly P;
    typename M::template Ptr<BasisNode> Next;
  };
  BasisNode *BasisHead = nullptr;
  std::vector<Poly> Basis;
  auto AppendBasis = [&](Poly Copied) {
    auto *Node = Mem.template create<BasisNode>(BasisScope);
    Node->P = Copied;
    Node->Next = BasisHead;
    BasisHead = Node;
    Basis.push_back(Copied);
    Mem.touch(Copied.Terms, Copied.NumTerms * sizeof(Term), false);
  };
  {
    // Generate in a scratch region, normal-form each generator against
    // the ones accepted so far, and copy survivors to the result region
    // (the paper's "add copies of the polynomials that form the basis
    // to a result region").
    typename M::Token Gen = Mem.makeRegion();
    Arena GenArena{Mem, Gen};
    PolyBuilder<Arena> GenB(GenArena);
    std::vector<Poly> Raw = grobner_detail::generateSystem(GenB, Opt);
    for (Poly P : Raw) {
      Poly R = GenB.reduce(P, Basis.data(),
                           static_cast<std::uint32_t>(Basis.size()),
                           &Result.ReductionSteps);
      if (!R.isZero())
        AppendBasis(BasisB.copy(R));
    }
    bool Dropped = Mem.dropRegion(Gen);
    (void)Dropped;
  }

  // Pair queue (application bookkeeping, like the original's work list).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> Pairs;
  auto AddPairsFor = [&](std::uint32_t NewIdx) {
    for (std::uint32_t I = 0; I != NewIdx; ++I)
      Pairs.emplace_back(I, NewIdx);
  };
  for (std::uint32_t I = 0; I != Basis.size(); ++I)
    AddPairsFor(I);

  while (!Pairs.empty() && Result.PairsProcessed < Opt.MaxPairs &&
         Basis.size() < Opt.MaxBasis) {
    auto [I, J] = Pairs.back();
    Pairs.pop_back();
    ++Result.PairsProcessed;

    const Poly &F = Basis[I];
    const Poly &G = Basis[J];
    // Buchberger's first criterion: coprime leads reduce to zero.
    if (F.lead().Mono.coprimeWith(G.lead().Mono))
      continue;

    // Reduce the S-polynomial in a scratch region.
    typename M::Token Scratch = Mem.makeRegion();
    Arena ScratchArena{Mem, Scratch};
    PolyBuilder<Arena> SB(ScratchArena);
    Poly S = SB.sPoly(F, G);
    Poly R = SB.reduce(S, Basis.data(),
                       static_cast<std::uint32_t>(Basis.size()),
                       &Result.ReductionSteps);
    Mem.touch(R.Terms, R.NumTerms * sizeof(Term), true);
    if (!R.isZero()) {
      // Survivor: copy into the result region and queue new pairs.
      AppendBasis(BasisB.copy(R));
      AddPairsFor(static_cast<std::uint32_t>(Basis.size() - 1));
    }
    bool Dropped = Mem.dropRegion(Scratch);
    (void)Dropped;
  }

  Result.BasisSize = static_cast<std::uint32_t>(Basis.size());
  std::uint64_t Hash = 0;
  for (const Poly &P : Basis)
    Hash ^= P.hash() * 0x9e3779b97f4a7c15ULL;
  Result.BasisHash = Hash;

  bool Dropped = Mem.dropRegion(BasisScope);
  (void)Dropped;
  return Result;
}

} // namespace workloads
} // namespace regions

#endif // WORKLOADS_GROBNER_H
