//===- workloads/Moss.h - Winnowing plagiarism-detection workload -*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's moss benchmark: "a software plagiarism detection system"
/// run on 180 student projects. The detection algorithm is winnowing
/// over k-gram fingerprints (the published MOSS algorithm): hash every
/// k-gram, keep the minimum hash of each window, index the selected
/// fingerprints, and score document pairs by shared fingerprints.
///
/// The paper's §5.5 locality experiment lives here: "the memory
/// allocation pattern of moss is to alternately allocate a small,
/// frequently accessed object and a large, infrequently accessed
/// object... The 24% improvement is obtained by using two regions: one
/// for the small objects and one for the large objects." With
/// SplitRegions=false the small postings interleave with the big
/// document buffers in one region (the paper's "slow" configuration);
/// with true they are segregated.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_MOSS_H
#define WORKLOADS_MOSS_H

#include "backend/Models.h"
#include "text/TextGen.h"
#include "text/Tokenizer.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace regions {
namespace workloads {

struct MossOptions {
  unsigned NumDocs = 60;
  text::SubmissionOptions Sub;
  unsigned K = 15;           ///< k-gram length (characters)
  /// Winnowing window. The default keeps the volume of fingerprint
  /// records roughly equal to the fragment text volume, reproducing
  /// the paper's one-to-one small/large alternation.
  unsigned Window = 48;
  bool SplitRegions = true;  ///< the §5.5 two-region optimization
  unsigned MatchPasses = 12; ///< refinement sweeps over the doc chains
};

struct MossResult {
  std::uint64_t Fingerprints = 0;
  std::uint64_t MatchingPairs = 0; ///< pairs sharing >= threshold prints
  std::uint64_t TopPairHash = 0;
  std::uint64_t TotalMatches = 0;

  std::uint64_t checksum() const {
    return TopPairHash ^ (Fingerprints << 24) ^ MatchingPairs ^
           (TotalMatches << 8);
  }
};

namespace moss_detail {
/// Keeps the refinement sweep from being optimized away.
inline void benchmarkConsume(std::uint64_t V) {
  volatile std::uint64_t Sink = V;
  (void)Sink;
}
} // namespace moss_detail

template <class M>
MossResult runMoss(M &Mem, const MossOptions &Opt) {
  using moss_detail::benchmarkConsume;
  MossResult Result;
  text::SubmissionCorpus Corpus =
      text::generateSubmissions(Opt.NumDocs, Opt.Sub);

  [[maybe_unused]] typename M::Frame Frame;
  // Two regions when split; everything lands in Index otherwise.
  typename M::Token TextScope = Mem.makeRegion();
  typename M::Token IndexScope = Mem.makeRegion();
  auto &DocScope = Opt.SplitRegions ? TextScope : IndexScope;

  struct Posting {
    std::uint64_t Fp = 0;
    std::uint32_t Doc = 0;
    std::uint32_t Pos = 0;
    // Postings only ever chain to postings in the index scope:
    // statically sameregion, so the links skip the barrier entirely
    // (debug-asserted). The bucket/head arrays keep barriered slots.
    typename M::template SamePtr<Posting> Next;    ///< bucket chain
    typename M::template SamePtr<Posting> DocNext; ///< per-document chain
  };
  constexpr unsigned kBuckets = 4096;
  auto *Buckets = Mem.template createArray<
      typename M::template Ptr<Posting>>(IndexScope, kBuckets);
  auto *DocHeads = Mem.template createArray<
      typename M::template Ptr<Posting>>(IndexScope, Opt.NumDocs);

  // --- Build phase ----------------------------------------------------
  // Documents are ingested fragment by fragment (one source line at a
  // time, the way moss processes files): each fragment is copied into
  // the text scope and its winnowed fingerprints are inserted into the
  // index immediately — the paper's "alternately allocate a small,
  // frequently accessed object and a large, infrequently accessed
  // object" pattern. With SplitRegions=false the fragment copies land
  // between the postings and dilute their locality (the "slow" run).
  for (unsigned Doc = 0; Doc != Corpus.Documents.size(); ++Doc) {
    const std::string &Source = Corpus.Documents[Doc];
    std::size_t LineStart = 0;
    std::uint32_t DocOffset = 0;
    while (LineStart < Source.size()) {
      std::size_t LineEnd = Source.find('\n', LineStart);
      if (LineEnd == std::string::npos)
        LineEnd = Source.size();
      std::size_t Len = LineEnd - LineStart;
      if (Len >= Opt.K) {
        // Fragment text goes on the scanned side (paper: ralloc'd
        // buffers), so in the one-region configuration it interleaves
        // with the postings.
        auto *Buf = static_cast<char *>(Mem.allocBlob(DocScope, Len));
        std::memcpy(Buf, Source.data() + LineStart, Len);
        Mem.touch(Buf, Len, true);

        // Robust winnowing within the fragment: keep the minimum hash
        // of each window, recorded when the minimum's position moves.
        text::RollingHash RH(Buf, Len, Opt.K);
        std::uint64_t WindowHashes[64];
        std::uint32_t WindowPos[64];
        unsigned Filled = 0;
        std::uint32_t LastRecorded = UINT32_MAX;
        unsigned Window = Opt.Window < 64 ? Opt.Window : 64;
        while (RH.valid()) {
          unsigned Slot = Filled % Window;
          WindowHashes[Slot] = RH.hash();
          WindowPos[Slot] = static_cast<std::uint32_t>(RH.position());
          ++Filled;
          if (Filled >= Window) {
            unsigned MinIdx = 0;
            for (unsigned I = 1; I != Window; ++I) {
              if (WindowHashes[I] < WindowHashes[MinIdx] ||
                  (WindowHashes[I] == WindowHashes[MinIdx] &&
                   WindowPos[I] > WindowPos[MinIdx]))
                MinIdx = I;
            }
            if (WindowPos[MinIdx] != LastRecorded) {
              LastRecorded = WindowPos[MinIdx];
              std::uint64_t Fp = WindowHashes[MinIdx];
              unsigned B = Fp % kBuckets;
              auto *P = Mem.template create<Posting>(IndexScope);
              P->Fp = Fp;
              P->Doc = Doc;
              P->Pos = DocOffset + WindowPos[MinIdx];
              P->Next = Buckets[B];
              // Head slots, old heads, and the new posting all live in
              // the index scope: the per-store sameregion elision.
              Mem.assignSame(Buckets[B], P, IndexScope);
              P->DocNext = DocHeads[Doc];
              Mem.assignSame(DocHeads[Doc], P, IndexScope);
              ++Result.Fingerprints;
            }
          }
          if (!RH.advance())
            break;
        }
      }
      DocOffset += static_cast<std::uint32_t>(Len) + 1;
      LineStart = LineEnd + 1;
    }
  }

  // --- Match phase -----------------------------------------------------
  // One counting sweep over the bucket chains, then MatchPasses
  // refinement sweeps that walk every document's posting chain (moss
  // walks per-document passage lists when scoring and reporting). The
  // per-document chains are allocation-ordered, so their locality is
  // exactly what the 5.5 two-region split improves: packed postings
  // sweep sequentially; postings interleaved with fragment text drag
  // the cold text through the cache line by line.
  unsigned N = static_cast<unsigned>(Corpus.Documents.size());
  auto *Counts = Mem.template createArray<std::uint32_t>(
      IndexScope, static_cast<std::size_t>(N) * N);
  for (unsigned B = 0; B != kBuckets; ++B) {
    for (Posting *P = Buckets[B]; P; P = P->Next) {
      Mem.touch(P, sizeof(Posting), false);
      for (Posting *Q = P->Next; Q; Q = Q->Next) {
        if (Q->Fp != P->Fp || Q->Doc == P->Doc)
          continue;
        Mem.touch(Q, sizeof(Posting), false);
        unsigned Lo = std::min(P->Doc, Q->Doc);
        unsigned Hi = std::max(P->Doc, Q->Doc);
        ++Counts[Lo * N + Hi];
      }
    }
  }
  std::uint64_t RefineChecksum = 0;
  for (unsigned Pass = 0; Pass != Opt.MatchPasses; ++Pass) {
    for (unsigned D = 0; D != N; ++D) {
      for (Posting *P = DocHeads[D]; P; P = P->DocNext) {
        Mem.touch(P, sizeof(Posting), false);
        RefineChecksum += P->Fp & 0xff;
      }
    }
  }
  benchmarkConsume(RefineChecksum);

  // --- Report: rank pairs by shared fingerprints ----------------------
  std::vector<std::pair<std::uint32_t, std::uint32_t>> Ranked;
  for (unsigned Lo = 0; Lo != N; ++Lo)
    for (unsigned Hi = Lo + 1; Hi != N; ++Hi)
      if (Counts[Lo * N + Hi] >= 4) {
        Ranked.emplace_back(Counts[Lo * N + Hi], Lo * N + Hi);
        Result.TotalMatches += Counts[Lo * N + Hi];
      }
  Result.MatchingPairs = Ranked.size();
  std::sort(Ranked.rbegin(), Ranked.rend());
  for (std::size_t I = 0; I != Ranked.size() && I < 10; ++I)
    Result.TopPairHash =
        Result.TopPairHash * 1000003 + Ranked[I].second;

  bool DroppedIndex = Mem.dropRegion(IndexScope);
  bool DroppedText = Mem.dropRegion(TextScope);
  (void)DroppedIndex;
  (void)DroppedText;
  return Result;
}

} // namespace workloads
} // namespace regions

#endif // WORKLOADS_MOSS_H
