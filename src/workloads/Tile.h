//===- workloads/Tile.h - TextTiling partitioning workload -----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's tile benchmark: "automatically partitions a set of text
/// files into subsections based on frequency and grouping of words in
/// the text. ... Twenty copies of a 14K text are given as input."
///
/// This is a TextTiling-style implementation (Hearst): tokenize, group
/// words into pseudosentences, score the lexical-cohesion gap between
/// adjacent blocks with cosine similarity, compute depth scores, and
/// report boundaries. Each document is processed inside its own region
/// (the vocabulary table, token stream, and per-gap count vectors churn
/// there); chosen boundaries are copied to a result region.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_TILE_H
#define WORKLOADS_TILE_H

#include "backend/Models.h"
#include "text/TextGen.h"
#include "text/Tokenizer.h"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

namespace regions {
namespace workloads {

struct TileOptions {
  unsigned NumDocs = 20; ///< "twenty copies"
  text::TopicalTextOptions Text;
  unsigned WordsPerPseudoSentence = 12;
  unsigned BlockSize = 6; ///< pseudosentences per comparison block
};

struct TileResult {
  std::uint64_t BoundaryHash = 0;
  std::uint64_t TotalBoundaries = 0;
  std::uint64_t TotalTokens = 0;
  std::uint64_t VocabSize = 0;

  std::uint64_t checksum() const {
    return BoundaryHash ^ (TotalBoundaries << 40) ^ TotalTokens ^
           (VocabSize << 20);
  }
};

template <class M>
TileResult runTile(M &Mem, const TileOptions &Opt) {
  TileResult Result;
  text::TopicalText Input = text::generateTopicalText(Opt.Text);
  const std::string &Text = Input.Text;

  [[maybe_unused]] typename M::Frame Frame;
  typename M::Token Results = Mem.makeRegion();

  for (unsigned Doc = 0; Doc != Opt.NumDocs; ++Doc) {
    typename M::Token Scope = Mem.makeRegion();

    // Copy the document into the region (a large, infrequently
    // accessed object) and work from that copy, like the original.
    auto *Buf = static_cast<char *>(Mem.allocBytes(Scope, Text.size()));
    std::memcpy(Buf, Text.data(), Text.size());
    Mem.touch(Buf, Text.size(), true);

    // --- Vocabulary and token stream ----------------------------------
    struct VocabEntry {
      std::uint64_t Hash = 0;
      std::uint32_t Id = 0;
      // Vocabulary chains never leave the document scope: statically
      // sameregion, no barrier (debug-asserted).
      typename M::template SamePtr<VocabEntry> Next;
    };
    constexpr unsigned kBuckets = 512;
    auto *Buckets = Mem.template createArray<
        typename M::template Ptr<VocabEntry>>(Scope, kBuckets);
    std::uint32_t NumWords = 0;

    // Growable token-id array (doubling leaves region garbage).
    std::uint32_t *Tokens = nullptr;
    std::uint32_t NumTokens = 0, CapTokens = 0;

    text::Tokenizer Tok(Buf, Buf + Text.size());
    text::WordSpan W;
    while (Tok.next(W)) {
      Mem.touch(W.Start, W.Len, false);
      std::uint64_t H = text::hashWord(W.Start, W.Len);
      unsigned B = H % kBuckets;
      VocabEntry *E = Buckets[B];
      Mem.touch(&Buckets[B], sizeof(void *), false);
      while (E && E->Hash != H)
        E = E->Next;
      if (!E) {
        E = Mem.template create<VocabEntry>(Scope);
        E->Hash = H;
        E->Id = NumWords++;
        E->Next = Buckets[B];
        // Bucket slot, old head, and new entry all live in Scope.
        Mem.assignSame(Buckets[B], E, Scope);
      }
      Mem.touch(E, sizeof(VocabEntry), false);
      if (NumTokens == CapTokens) {
        std::uint32_t NewCap = CapTokens ? CapTokens * 2 : 256;
        auto *NewTokens = static_cast<std::uint32_t *>(
            Mem.allocBytes(Scope, NewCap * 4));
        std::memcpy(NewTokens, Tokens, NumTokens * 4);
        Tokens = NewTokens;
        CapTokens = NewCap;
      }
      Tokens[NumTokens++] = E->Id;
    }
    Result.TotalTokens += NumTokens;
    Result.VocabSize = NumWords;

    // --- Gap scoring ---------------------------------------------------
    unsigned PsLen = Opt.WordsPerPseudoSentence;
    unsigned NumPs = NumTokens / PsLen;
    unsigned K = Opt.BlockSize;
    std::vector<double> GapScore;
    if (NumPs > 2 * K) {
      for (unsigned Gap = K; Gap + K <= NumPs; ++Gap) {
        // Fresh count vectors per gap: the benchmark's churn.
        auto *Left = static_cast<std::uint32_t *>(
            Mem.allocBytes(Scope, NumWords * 4));
        auto *Right = static_cast<std::uint32_t *>(
            Mem.allocBytes(Scope, NumWords * 4));
        std::memset(Left, 0, NumWords * 4);
        std::memset(Right, 0, NumWords * 4);
        for (unsigned P = Gap - K; P != Gap; ++P)
          for (unsigned T = P * PsLen; T != (P + 1) * PsLen; ++T)
            ++Left[Tokens[T]];
        for (unsigned P = Gap; P != Gap + K; ++P)
          for (unsigned T = P * PsLen; T != (P + 1) * PsLen; ++T)
            ++Right[Tokens[T]];
        Mem.touch(Left, NumWords * 4, true);
        Mem.touch(Right, NumWords * 4, true);
        double Dot = 0, NormL = 0, NormR = 0;
        for (std::uint32_t V = 0; V != NumWords; ++V) {
          Dot += static_cast<double>(Left[V]) * Right[V];
          NormL += static_cast<double>(Left[V]) * Left[V];
          NormR += static_cast<double>(Right[V]) * Right[V];
        }
        GapScore.push_back(
            NormL > 0 && NormR > 0 ? Dot / std::sqrt(NormL * NormR) : 0.0);
      }
    }

    // --- Depth scores and boundary selection ---------------------------
    std::vector<unsigned> Boundaries;
    if (GapScore.size() > 2) {
      // Smooth the gap scores (window 3, as in Hearst's TextTiling) so
      // single-pseudosentence noise does not masquerade as a valley.
      {
        std::vector<double> Smoothed(GapScore.size());
        for (std::size_t G = 0; G != GapScore.size(); ++G) {
          double Sum = GapScore[G];
          int Count = 1;
          if (G > 0) {
            Sum += GapScore[G - 1];
            ++Count;
          }
          if (G + 1 < GapScore.size()) {
            Sum += GapScore[G + 1];
            ++Count;
          }
          Smoothed[G] = Sum / Count;
        }
        GapScore = Smoothed;
      }
      std::vector<double> Depth(GapScore.size(), 0.0);
      for (std::size_t G = 0; G != GapScore.size(); ++G) {
        double PeakL = GapScore[G];
        for (std::size_t L = G; L-- > 0 && GapScore[L] >= PeakL;)
          PeakL = GapScore[L];
        double PeakR = GapScore[G];
        for (std::size_t R = G + 1;
             R < GapScore.size() && GapScore[R] >= PeakR; ++R)
          PeakR = GapScore[R];
        Depth[G] = (PeakL - GapScore[G]) + (PeakR - GapScore[G]);
      }
      double Mean = 0;
      for (double D : Depth)
        Mean += D;
      Mean /= static_cast<double>(Depth.size());
      double Var = 0;
      for (double D : Depth)
        Var += (D - Mean) * (D - Mean);
      double Sd = std::sqrt(Var / static_cast<double>(Depth.size()));
      // Relative cutoff (Hearst) plus a small absolute floor: texts
      // with no real topic shifts have uniformly tiny depths whose
      // noise would otherwise clear a purely relative bar.
      double Cutoff = Mean + Sd / 2.0;
      if (Cutoff < 0.08)
        Cutoff = 0.08;
      for (std::size_t G = 0; G != Depth.size(); ++G) {
        if (Depth[G] <= Cutoff)
          continue;
        // Local maximum only.
        if (G > 0 && Depth[G - 1] > Depth[G])
          continue;
        if (G + 1 < Depth.size() && Depth[G + 1] > Depth[G])
          continue;
        Boundaries.push_back(static_cast<unsigned>(G) + Opt.BlockSize);
      }
    }

    // Copy boundaries into the result region; free the document scope.
    auto *Saved = static_cast<std::uint32_t *>(
        Mem.allocBytes(Results, Boundaries.size() * 4 + 4));
    Saved[0] = static_cast<std::uint32_t>(Boundaries.size());
    for (std::size_t I = 0; I != Boundaries.size(); ++I)
      Saved[I + 1] = Boundaries[I];
    Result.TotalBoundaries += Boundaries.size();
    for (std::size_t I = 0; I != Boundaries.size(); ++I)
      Result.BoundaryHash =
          Result.BoundaryHash * 1000003 + Boundaries[I] + Doc;

    bool Dropped = Mem.dropRegion(Scope);
    (void)Dropped;
  }

  bool Dropped = Mem.dropRegion(Results);
  (void)Dropped;
  return Result;
}

} // namespace workloads
} // namespace regions

#endif // WORKLOADS_TILE_H
