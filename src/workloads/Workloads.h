//===- workloads/Workloads.h - Benchmark workload registry -----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type-erased entry point for running any of the paper's six
/// benchmarks on any backend, with uniform statistics for the tables
/// and figures of §5. See the per-workload headers for the algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_WORKLOADS_H
#define WORKLOADS_WORKLOADS_H

#include "backend/Backend.h"
#include "cachesim/CacheSim.h"
#include "gc/GcHeap.h"
#include "region/Metrics.h"
#include "region/Region.h"

#include <cstdint>

namespace regions {
namespace workloads {

enum class WorkloadId { Cfrac, Grobner, Mudlle, Lcc, Tile, Moss };

inline constexpr WorkloadId kAllWorkloads[] = {
    WorkloadId::Cfrac, WorkloadId::Grobner, WorkloadId::Mudlle,
    WorkloadId::Lcc,   WorkloadId::Tile,    WorkloadId::Moss};

inline const char *workloadName(WorkloadId W) {
  switch (W) {
  case WorkloadId::Cfrac:
    return "cfrac";
  case WorkloadId::Grobner:
    return "grobner";
  case WorkloadId::Mudlle:
    return "mudlle";
  case WorkloadId::Lcc:
    return "lcc";
  case WorkloadId::Tile:
    return "tile";
  case WorkloadId::Moss:
    return "moss";
  }
  return "?";
}

/// Knobs shared by the harness; workload-specific options use their
/// defaults scaled by Scale.
struct WorkloadOptions {
  double Scale = 1.0;          ///< problem-size multiplier
  bool MossSplitRegions = true;///< §5.5 locality optimization
  bool TouchTracing = false;   ///< feed accesses to the cache simulator
  /// Time every call into the memory model (the paper's library
  /// instrumentation); adds per-call clock overhead.
  bool InstrumentMemoryTime = false;
  std::uint64_t Seed = 1;
  /// Safety configuration for BackendKind::RegionSafe (Figure 11 togg-
  /// les individual components); RegionUnsafe always disables all.
  SafetyConfig RegionConfig = SafetyConfig::safeConfig();
  /// When non-null and the backend is region-based, receives the
  /// manager's rstat MetricsSnapshot captured just before teardown
  /// (harness --metrics plumbing; ignored by other backends).
  MetricsSnapshot *CaptureMetrics = nullptr;
};

/// Uniform result record for the §5 tables.
struct RunResult {
  double Millis = 0;
  std::uint64_t Checksum = 0;
  bool Ok = false;
  /// Nanoseconds measured inside the memory model when
  /// InstrumentMemoryTime was set (0 otherwise).
  std::uint64_t InstrumentedMemoryNs = 0;

  // Allocation behaviour (Tables 2 and 3).
  std::uint64_t TotalAllocs = 0;
  std::uint64_t TotalRequestedBytes = 0;
  std::uint64_t MaxLiveRequestedBytes = 0;
  std::uint64_t OsBytes = 0; ///< Figure 8's "OS" bar
  std::uint64_t TotalRegions = 0;
  std::uint64_t MaxLiveRegions = 0;
  std::uint64_t MaxRegionBytes = 0;
  std::uint64_t EmuOverheadBytes = 0; ///< Figure 8 "w/o overhead" variant

  // Region safety details (Figure 11 and diagnostics).
  bool HasRegionStats = false;
  RegionStats Region;
  std::uint64_t StackScans = 0;
  std::uint64_t FramesScanned = 0;
  std::uint64_t FramesUnscanned = 0;

  // Collector details.
  bool HasGcStats = false;
  GcHeap::GcStats Gc;

  // Cache simulation (Figure 10).
  bool HasCacheStats = false;
  CacheSim::Stats Cache;
};

/// Runs workload \p W on backend \p Backend. Every workload validates
/// by checksum: for a given (workload, Scale, Seed) the checksum is
/// identical across all backends.
RunResult runWorkload(WorkloadId W, BackendKind Backend,
                      const WorkloadOptions &Opt);

} // namespace workloads
} // namespace regions

#endif // WORKLOADS_WORKLOADS_H
