//===- workloads/Workloads.cpp - Benchmark workload registry --------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "alloc/BestFitAllocator.h"
#include "alloc/BumpAllocator.h"
#include "alloc/LeaAllocator.h"
#include "alloc/PowerOfTwoAllocator.h"
#include "backend/Models.h"
#include "backend/TimedModel.h"
#include "support/Stopwatch.h"
#include "workloads/Cfrac.h"
#include "workloads/Grobner.h"
#include "workloads/Moss.h"
#include "workloads/MudlleWork.h"
#include "workloads/Tile.h"

using namespace regions;
using namespace regions::workloads;

namespace {

/// Problem sizes per Scale. The defaults (Scale = 1) are tuned so the
/// full six-benchmark grid finishes in minutes on one core while
/// keeping each workload's allocation profile shaped like the paper's.
CfracOptions cfracOptions(const WorkloadOptions &Opt) {
  CfracOptions C;
  if (Opt.Scale >= 1.0) {
    C.Decimal = "590314026497494106699"; // 70-bit semiprime
    C.FactorBaseSize = 60;
  } else if (Opt.Scale >= 0.3) {
    C.Decimal = "1041483498857"; // 40-bit semiprime
    C.FactorBaseSize = 40;
  } else {
    C.Decimal = "10967535067"; // 34-bit semiprime
    C.FactorBaseSize = 30;
  }
  return C;
}

GrobnerOptions grobnerOptions(const WorkloadOptions &Opt) {
  GrobnerOptions G;
  G.Seed = Opt.Seed + 4;
  if (Opt.Scale < 1.0) {
    G.NumPolys = 6;
    G.NumVars = 5;
  }
  if (Opt.Scale > 1.0)
    G.MaxPairs = static_cast<unsigned>(20000 * Opt.Scale);
  return G;
}

MudlleOptions mudlleOptions(const WorkloadOptions &Opt) {
  MudlleOptions M;
  M.Iterations = static_cast<unsigned>(100 * Opt.Scale);
  if (M.Iterations == 0)
    M.Iterations = 1;
  M.Gen.Seed = Opt.Seed;
  return M;
}

LccOptions lccOptions(const WorkloadOptions &Opt) {
  LccOptions L;
  L.Seed = Opt.Seed + 10;
  L.Repeats = Opt.Scale >= 1.0 ? 2 : 1;
  if (Opt.Scale < 0.3)
    L.NumChunks = 4;
  return L;
}

TileOptions tileOptions(const WorkloadOptions &Opt) {
  TileOptions T;
  T.NumDocs = static_cast<unsigned>(20 * Opt.Scale);
  if (T.NumDocs == 0)
    T.NumDocs = 1;
  T.Text.Seed = Opt.Seed + 2;
  return T;
}

MossOptions mossOptions(const WorkloadOptions &Opt) {
  MossOptions Mo;
  Mo.NumDocs = static_cast<unsigned>(60 * Opt.Scale);
  if (Mo.NumDocs < 4)
    Mo.NumDocs = 4;
  Mo.Sub.Seed = Opt.Seed + 3;
  Mo.SplitRegions = Opt.MossSplitRegions;
  return Mo;
}

/// Runs the selected workload on a constructed model and collects the
/// timing, checksum, and shadow-stack counters.
template <class M>
RunResult dispatch(WorkloadId W, M &Mem, const WorkloadOptions &Opt) {
  RunResult R;
  const auto Before = rt::RuntimeStack::current().counters();
  Stopwatch Timer;
  Timer.start();
  switch (W) {
  case WorkloadId::Cfrac: {
    CfracResult X = runCfrac(Mem, cfracOptions(Opt));
    R.Checksum = X.checksum();
    R.Ok = X.Factored;
    break;
  }
  case WorkloadId::Grobner: {
    GrobnerResult X = runGrobner(Mem, grobnerOptions(Opt));
    R.Checksum = X.checksum();
    R.Ok = X.BasisSize > 0;
    break;
  }
  case WorkloadId::Mudlle: {
    MudlleResult X = runMudlle(Mem, mudlleOptions(Opt));
    R.Checksum = X.checksum();
    R.Ok = X.Ok;
    break;
  }
  case WorkloadId::Lcc: {
    MudlleResult X = runLcc(Mem, lccOptions(Opt));
    R.Checksum = X.checksum();
    R.Ok = X.Ok;
    break;
  }
  case WorkloadId::Tile: {
    TileResult X = runTile(Mem, tileOptions(Opt));
    R.Checksum = X.checksum();
    R.Ok = X.TotalBoundaries > 0;
    break;
  }
  case WorkloadId::Moss: {
    MossResult X = runMoss(Mem, mossOptions(Opt));
    R.Checksum = X.checksum();
    R.Ok = X.MatchingPairs > 0;
    break;
  }
  }
  Timer.stop();
  R.Millis = Timer.millis();
  const auto After = rt::RuntimeStack::current().counters();
  R.StackScans = After.Scans - Before.Scans;
  R.FramesScanned = After.FramesScanned - Before.FramesScanned;
  R.FramesUnscanned = After.FramesUnscanned - Before.FramesUnscanned;
  return R;
}

/// Runs the workload, optionally through the timing decorator.
template <class M>
RunResult dispatchMaybeTimed(WorkloadId W, M &Mem,
                             const WorkloadOptions &Opt) {
  if (!Opt.InstrumentMemoryTime)
    return dispatch(W, Mem, Opt);
  TimedModel<M> Timed(Mem);
  RunResult R = dispatch(W, Timed, Opt);
  R.InstrumentedMemoryNs = Timed.memoryNanos();
  return R;
}

void fillFromMalloc(RunResult &R, const MallocInterface &A) {
  const MallocStats &S = A.stats();
  R.TotalAllocs = S.TotalAllocs;
  R.TotalRequestedBytes = S.TotalRequestedBytes;
  R.MaxLiveRequestedBytes = S.MaxLiveRequestedBytes;
  R.OsBytes = A.osBytes();
}

void fillFromEmu(RunResult &R, const EmulationRegionLib &Lib) {
  R.TotalRegions = Lib.stats().TotalRegions;
  R.MaxLiveRegions = Lib.stats().MaxLiveRegions;
  R.MaxRegionBytes = Lib.stats().MaxRegionBytes;
  R.EmuOverheadBytes = Lib.stats().ListOverheadBytes;
}

void fillFromRegions(RunResult &R, const RegionManager &Mgr) {
  const RegionStats &S = Mgr.stats();
  R.TotalAllocs = S.TotalAllocs;
  R.TotalRequestedBytes = S.TotalRequestedBytes;
  R.MaxLiveRequestedBytes = S.MaxLiveRequestedBytes;
  R.OsBytes = Mgr.osBytes();
  R.TotalRegions = S.TotalRegions;
  R.MaxLiveRegions = S.MaxLiveRegions;
  R.MaxRegionBytes = S.MaxRegionBytes;
  R.HasRegionStats = true;
  R.Region = S;
}

} // namespace

RunResult workloads::runWorkload(WorkloadId W, BackendKind Backend,
                                 const WorkloadOptions &Opt) {
  constexpr std::size_t kReserve = std::size_t{2} << 30;
  CacheSim Cache;
  CacheSim *CachePtr = Opt.TouchTracing ? &Cache : nullptr;
  RunResult R;

  switch (Backend) {
  case BackendKind::RegionSafe:
  case BackendKind::RegionUnsafe: {
    SafetyConfig Cfg = Backend == BackendKind::RegionUnsafe
                           ? SafetyConfig::unsafeConfig()
                           : Opt.RegionConfig;
    RegionManager Mgr(Cfg, kReserve);
    RegionModel Mem(Mgr, CachePtr);
    R = dispatchMaybeTimed(W, Mem, Opt);
    fillFromRegions(R, Mgr);
    if (Opt.CaptureMetrics)
      *Opt.CaptureMetrics = Mgr.metrics();
    break;
  }
  // The malloc/free rows run the region-structured program on the
  // emulation library (objects freed individually when their scope
  // dies), the same methodology the paper applies to its region-based
  // programs; Figure 8 separates out the emulation list overhead.
  case BackendKind::Sun:
  case BackendKind::EmuSun: {
    BestFitAllocator A(kReserve);
    EmulationRegionLib Lib(A);
    EmuModel Mem(Lib, CachePtr);
    R = dispatchMaybeTimed(W, Mem, Opt);
    fillFromMalloc(R, A);
    fillFromEmu(R, Lib);
    break;
  }
  case BackendKind::Bsd:
  case BackendKind::EmuBsd: {
    PowerOfTwoAllocator A(kReserve);
    EmulationRegionLib Lib(A);
    EmuModel Mem(Lib, CachePtr);
    R = dispatchMaybeTimed(W, Mem, Opt);
    fillFromMalloc(R, A);
    fillFromEmu(R, Lib);
    break;
  }
  case BackendKind::Lea:
  case BackendKind::EmuLea: {
    LeaAllocator A(kReserve);
    EmulationRegionLib Lib(A);
    EmuModel Mem(Lib, CachePtr);
    R = dispatchMaybeTimed(W, Mem, Opt);
    fillFromMalloc(R, A);
    fillFromEmu(R, Lib);
    break;
  }
  case BackendKind::Gc: {
    GcHeap Heap(kReserve);
    Heap.captureStackBottom();
    DirectModel Mem(Heap, CachePtr, /*CallFree=*/false);
    R = dispatchMaybeTimed(W, Mem, Opt);
    fillFromMalloc(R, Heap);
    R.HasGcStats = true;
    R.Gc = Heap.gcStats();
    break;
  }
  case BackendKind::Bump: {
    BumpAllocator A(std::size_t{4} << 30);
    DirectModel Mem(A, CachePtr, /*CallFree=*/false);
    R = dispatchMaybeTimed(W, Mem, Opt);
    fillFromMalloc(R, A);
    break;
  }
  }

  if (CachePtr) {
    R.HasCacheStats = true;
    R.Cache = Cache.stats();
  }
  return R;
}
