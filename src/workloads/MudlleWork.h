//===- workloads/MudlleWork.h - mudlle and lcc compile workloads -*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two compiler benchmarks:
///
///  - mudlle: "a byte-code compiler for a scheme-like language... The
///    same 500-line file is compiled 100 times." One region holds each
///    compile's AST; per-function compile regions come from the
///    Compiler itself.
///
///  - lcc: the paper uses its own modified C compiler on a 6000-line
///    file, creating "a region for every hundred statements compiled".
///    We approximate with the mud compiler on a much larger program,
///    compiled in chunks so code regions turn over during the run (see
///    DESIGN.md substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_MUDLLEWORK_H
#define WORKLOADS_MUDLLEWORK_H

#include "backend/Models.h"
#include "mudlle/Compiler.h"
#include "mudlle/Parser.h"
#include "mudlle/ProgramGen.h"
#include "mudlle/Vm.h"

#include <string>
#include <vector>

namespace regions {
namespace workloads {

struct MudlleOptions {
  unsigned Iterations = 100; ///< compile the file this many times
  mud::GenOptions Gen;       ///< defaults produce the ~500-line file
  bool RunProgram = true;    ///< execute main() after each compile
};

struct MudlleResult {
  bool Ok = false;
  std::int64_t ProgramValue = 0;
  std::uint64_t AstNodes = 0;
  std::uint64_t CodeWords = 0;
  std::uint64_t Compiles = 0;

  std::uint64_t checksum() const {
    return static_cast<std::uint64_t>(ProgramValue) ^ (AstNodes * 31) ^
           (CodeWords * 7) ^ Compiles ^ (Ok ? 1 : 0);
  }
};

/// Compiles (and optionally runs) one source string in fresh regions.
template <class M>
bool compileOnce(M &Mem, const char *Source, MudlleResult &Result,
                 bool Run) {
  [[maybe_unused]] typename M::Frame Frame;
  typename M::Token AstScope = Mem.makeRegion();
  typename M::Token CodeScope = Mem.makeRegion();
  bool Ok = false;
  {
    mud::Parser<M> P(Mem, AstScope, Source);
    mud::SourceFile<M> *File = P.parseFile();
    if (!P.failed()) {
      mud::Compiler<M> C(Mem, CodeScope);
      mud::CompiledProgram<M> *Prog = C.compile(File);
      if (Prog) {
        Result.AstNodes += File->NumNodes;
        Result.CodeWords += Prog->TotalCodeWords;
        if (Run) {
          mud::Vm<M> Machine(*Prog);
          mud::VmResult R = Machine.runMain();
          if (R.Ok) {
            Result.ProgramValue = R.Value;
            Ok = true;
          }
        } else {
          Ok = Prog->MainIndex >= 0 || true;
        }
      }
    }
  }
  bool DroppedAst = Mem.dropRegion(AstScope);
  bool DroppedCode = Mem.dropRegion(CodeScope);
  return Ok && DroppedAst && DroppedCode;
}

/// The mudlle benchmark: same file, many compiles.
template <class M>
MudlleResult runMudlle(M &Mem, const MudlleOptions &Opt) {
  MudlleResult Result;
  std::string Source = mud::ProgramGenerator(Opt.Gen).generate();
  Result.Ok = true;
  for (unsigned I = 0; I != Opt.Iterations; ++I) {
    if (!compileOnce(Mem, Source.c_str(), Result, Opt.RunProgram))
      Result.Ok = false;
    ++Result.Compiles;
  }
  return Result;
}

struct LccOptions {
  unsigned NumChunks = 12;          ///< the big file, compiled in chunks
  unsigned FunctionsPerChunk = 24;  ///< ~"region per hundred statements"
  unsigned Repeats = 2;
  std::uint64_t Seed = 11;
};

/// The lcc-like benchmark: one large file in per-chunk regions.
template <class M>
MudlleResult runLcc(M &Mem, const LccOptions &Opt) {
  MudlleResult Result;
  // Generate the chunk sources once (the input file).
  std::vector<std::string> Chunks;
  for (unsigned C = 0; C != Opt.NumChunks; ++C) {
    mud::GenOptions G;
    G.NumFunctions = Opt.FunctionsPerChunk;
    G.StmtsPerFunction = 7;
    G.Seed = Opt.Seed + C;
    Chunks.push_back(mud::ProgramGenerator(G).generate());
  }
  Result.Ok = true;
  for (unsigned R = 0; R != Opt.Repeats; ++R) {
    std::int64_t Sum = 0;
    for (const std::string &Chunk : Chunks) {
      if (!compileOnce(Mem, Chunk.c_str(), Result, /*Run=*/true))
        Result.Ok = false;
      Sum += Result.ProgramValue;
      ++Result.Compiles;
    }
    Result.ProgramValue = Sum;
  }
  return Result;
}

} // namespace workloads
} // namespace regions

#endif // WORKLOADS_MUDLLEWORK_H
