//===- workloads/Cfrac.h - Continued-fraction factoring workload -*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's cfrac benchmark: "a program to factor large integers
/// using the continued fraction method" — the most allocation-intensive
/// program in the suite (3.8M allocations averaging a few words).
///
/// This is a real CFRAC implementation (Morrison-Brillhart): expand the
/// continued fraction of sqrt(N), trial-divide the Q_i over a factor
/// base of primes where N is a quadratic residue, collect smooth
/// relations A^2 = (-1)^s * prod p^e  (mod N), eliminate mod 2, and
/// extract a factor from X^2 = Y^2 (mod N).
///
/// Region organization follows the paper's port: "our region-based
/// cfrac creates a region for temporary computations for every few
/// iterations of the main algorithm. Partial solutions are copied from
/// this region to a solution region so that old temporary regions can
/// be deleted."
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_CFRAC_H
#define WORKLOADS_CFRAC_H

#include "backend/Models.h"
#include "bignum/Nat.h"

#include <cstdint>
#include <vector>

namespace regions {
namespace workloads {

struct CfracOptions {
  const char *Decimal = "2428095424619"; ///< number to factor
  unsigned FactorBaseSize = 60;
  unsigned MaxIterations = 2000000;
  unsigned IterationsPerTempRegion = 8; ///< "every few iterations"
};

struct CfracResult {
  bool Factored = false;
  std::uint64_t FactorLow64 = 0; ///< a nontrivial factor (low bits)
  std::uint64_t Relations = 0;
  std::uint64_t Iterations = 0;

  std::uint64_t checksum() const {
    return FactorLow64 * 1000003 + Relations * 31 + Iterations +
           (Factored ? 1 : 0);
  }
};

namespace cfrac_detail {

/// u64 modular exponentiation (moduli < 2^32 here).
inline std::uint64_t powMod(std::uint64_t B, std::uint64_t E,
                            std::uint64_t M) {
  std::uint64_t R = 1 % M;
  B %= M;
  while (E) {
    if (E & 1)
      R = R * B % M;
    B = B * B % M;
    E >>= 1;
  }
  return R;
}

/// Builds the factor base: 2 plus odd primes p < limit with (N|p) = 1.
inline std::vector<std::uint32_t> buildFactorBase(const Nat &N,
                                                  unsigned Size) {
  std::vector<std::uint32_t> Base;
  Base.push_back(2);
  for (std::uint32_t P = 3; Base.size() < Size && P < 100000; P += 2) {
    bool Prime = true;
    for (std::uint32_t D = 3; D * D <= P; D += 2)
      if (P % D == 0) {
        Prime = false;
        break;
      }
    if (!Prime)
      continue;
    // N mod P via limb reduction.
    std::uint64_t R = 0;
    for (std::uint32_t I = N.Len; I-- > 0;)
      R = ((R << 32) | N.Limbs[I]) % P;
    if (R == 0)
      return {P}; // P divides N: trivial factor, signal via size-1 base
    if (powMod(R, (P - 1) / 2, P) == 1)
      Base.push_back(P);
  }
  return Base;
}

} // namespace cfrac_detail

template <class M, class RelVec>
std::uint64_t tryDependency(M &Mem, typename M::Token &Solution, Nat N,
                            const std::vector<std::uint32_t> &Base,
                            const RelVec &Rel,
                            const std::vector<std::uint64_t> &Subset,
                            unsigned Rows);

/// Runs cfrac on one number. The factor-base vector and the mod-2
/// elimination bookkeeping use ordinary application memory, like the
/// original program's statically allocated tables; all bignum and
/// relation data live in regions.
template <class M>
CfracResult runCfrac(M &Mem, const CfracOptions &Opt) {
  using Arena = ScopedArena<M>;
  CfracResult Result;

  [[maybe_unused]] typename M::Frame Frame;
  // The solution region: relations accumulate here (paper's wording).
  typename M::Token Solution = Mem.makeRegion();
  Arena SolArena{Mem, Solution};
  NatBuilder<Arena> SolNat(SolArena);

  // Parse N in the solution region.
  Nat N = SolNat.fromDecimal(Opt.Decimal);

  std::vector<std::uint32_t> Base =
      cfrac_detail::buildFactorBase(N, Opt.FactorBaseSize);
  if (Base.size() == 1 && Base[0] != 2) {
    // A base prime divides N.
    Result.Factored = true;
    Result.FactorLow64 = Base[0];
    Mem.dropRegion(Solution);
    return Result;
  }
  const unsigned B = static_cast<unsigned>(Base.size());

  /// One smooth relation, stored in the solution region. The next-link
  /// always targets the previous relation in the same region, so it is
  /// a statically recognized sameregion pointer: no barrier at all
  /// under safe regions (asserted in debug builds).
  struct Relation {
    Nat A;                ///< convergent (mod N)
    std::uint8_t *Exps;   ///< exponent of each base prime
    std::uint8_t Sign;    ///< parity of i (the (-1)^i term)
    typename M::template SamePtr<Relation> Next;
  };
  Relation *Relations = nullptr;
  unsigned NumRelations = 0;
  const unsigned Wanted = B + 12;

  // Continued-fraction state. P, Q fit in u64 (Q <= 2*sqrt(N)); the
  // convergents A_i are big and live in a rotating temporary region.
  typename M::Token Temp = Mem.makeRegion();
  {
    Arena TempArena{Mem, Temp};
    NatBuilder<Arena> T(TempArena);

    Nat SqrtN = T.sqrtFloor(N);
    if (natCompare(T.mul(SqrtN, SqrtN), N) == 0) {
      Result.Factored = true;
      Result.FactorLow64 = SqrtN.low64();
      Mem.dropRegion(Temp);
      Mem.dropRegion(Solution);
      return Result;
    }
    std::uint64_t A0 = SqrtN.toU64();

    std::uint64_t Pi = 0, Qi = 1;
    Nat APrev = T.fromU64(1);              // A_{-1}
    Nat ACur = T.mod(T.fromU64(A0), N);    // A_0 = a_0

    std::uint64_t Ai = A0;
    std::uint8_t SignParity = 0; // becomes (-1)^i's parity per iteration
    unsigned SinceRotate = 0;

    std::vector<std::uint8_t> ExpScratch(B);

    for (std::uint64_t Iter = 1; Iter <= Opt.MaxIterations; ++Iter) {
      // CF recurrence on small numbers.
      Pi = Ai * Qi - Pi;
      // d_{i+1} = (N - m^2) / d_i: N is big, so compute with Nat
      // arithmetic (the quotient always fits u64: it is < 2*sqrt(N)).
      std::uint64_t Qnext;
      {
        Nat PiN = T.fromU64(Pi);
        Nat Diff = T.sub(N, T.mul(PiN, PiN));
        Qnext = T.divMod(Diff, T.fromU64(Qi)).Quot.toU64();
      }
      if (Qnext == 0)
        break; // N is a perfect square of the expansion; bail
      Ai = (A0 + Pi) / Qnext;

      // New convergent: A_i = (a_i * A_{i-1} + A_{i-2}) mod N.
      Nat ANext = T.mod(T.add(T.mul(T.fromU64(Ai), ACur), APrev), N);
      Mem.touch(ANext.Limbs, ANext.Len * 4, true);
      APrev = ACur;
      ACur = ANext;
      Qi = Qnext;
      SignParity ^= 1;
      ++Result.Iterations;

      // Try to factor Q_i over the base (machine arithmetic: Q < 2^63).
      std::uint64_t Q = Qi;
      for (unsigned I = 0; I != B; ++I) {
        ExpScratch[I] = 0;
        while (Q % Base[I] == 0) {
          Q /= Base[I];
          ++ExpScratch[I];
        }
      }
      if (Q == 1) {
        // Smooth: copy the relation into the solution region. The
        // convergent used is A_{i-1} (now APrev).
        auto *R = Mem.template create<Relation>(Solution);
        R->A = SolNat.copy(APrev);
        R->Exps = static_cast<std::uint8_t *>(Mem.allocBytes(Solution, B));
        for (unsigned I = 0; I != B; ++I)
          R->Exps[I] = ExpScratch[I];
        R->Sign = SignParity;
        R->Next = Relations;
        Relations = R;
        Mem.touch(R, sizeof(Relation), true);
        ++NumRelations;
        if (NumRelations >= Wanted)
          break;
      }

      // Rotate the temporary region "every few iterations": copy the
      // live convergents out, delete, recreate.
      if (++SinceRotate >= Opt.IterationsPerTempRegion) {
        SinceRotate = 0;
        typename M::Token Fresh = Mem.makeRegion();
        Arena FreshArena{Mem, Fresh};
        NatBuilder<Arena> FB(FreshArena);
        Nat NewPrev = FB.copy(APrev);
        Nat NewCur = FB.copy(ACur);
        bool Dropped = Mem.dropRegion(Temp);
        (void)Dropped;
        Temp = Fresh;
        // TempArena references Temp, so the builder now allocates from
        // the fresh region; only the live convergents carried over.
        APrev = NewPrev;
        ACur = NewCur;
      }
    }
  }
  Mem.dropRegion(Temp);
  Result.Relations = NumRelations;

  // Linear algebra mod 2 over (sign, exponents): find dependencies.
  if (NumRelations >= 2) {
    // Flatten relations into a vector for indexed access.
    std::vector<Relation *> Rel;
    for (Relation *R = Relations; R; R = R->Next)
      Rel.push_back(R);
    unsigned Rows = static_cast<unsigned>(Rel.size());
    unsigned Cols = B + 1;
    unsigned RowWords = (Rows + 63) / 64;
    // Bit matrix: row per relation; companion tracks combinations.
    std::vector<std::vector<std::uint64_t>> Mat(Rows);
    std::vector<std::vector<std::uint64_t>> Comp(Rows);
    for (unsigned R = 0; R != Rows; ++R) {
      Mat[R].assign((Cols + 63) / 64, 0);
      Comp[R].assign(RowWords, 0);
      Comp[R][R / 64] |= std::uint64_t{1} << (R % 64);
      if (Rel[R]->Sign & 1)
        Mat[R][0] |= 1;
      for (unsigned C = 0; C != B; ++C)
        if (Rel[R]->Exps[C] & 1)
          Mat[R][(C + 1) / 64] |= std::uint64_t{1} << ((C + 1) % 64);
    }
    // Gaussian elimination; rows that become zero give dependencies.
    std::vector<int> PivotOfCol(Cols, -1);
    for (unsigned R = 0; R != Rows && !Result.Factored; ++R) {
      for (;;) {
        int Lead = -1;
        for (unsigned C = 0; C != Cols; ++C)
          if (Mat[R][C / 64] & (std::uint64_t{1} << (C % 64))) {
            Lead = static_cast<int>(C);
            break;
          }
        if (Lead < 0) {
          // Dependency: try to extract a factor.
          Result.FactorLow64 = tryDependency(Mem, Solution, N, Base, Rel,
                                             Comp[R], Rows);
          if (Result.FactorLow64 > 1) {
            Result.Factored = true;
          }
          break;
        }
        int P = PivotOfCol[static_cast<unsigned>(Lead)];
        if (P < 0) {
          PivotOfCol[static_cast<unsigned>(Lead)] = static_cast<int>(R);
          break;
        }
        for (std::size_t W = 0; W != Mat[R].size(); ++W)
          Mat[R][W] ^= Mat[static_cast<unsigned>(P)][W];
        for (std::size_t W = 0; W != RowWords; ++W)
          Comp[R][W] ^= Comp[static_cast<unsigned>(P)][W];
      }
    }
  }

  bool Dropped = Mem.dropRegion(Solution);
  (void)Dropped;
  return Result;
}

/// Combines the dependent relations into X^2 = Y^2 (mod N) and returns
/// gcd(X - Y, N) if nontrivial (0 otherwise). Uses a scratch region.
template <class M, class RelVec>
std::uint64_t tryDependency(M &Mem, typename M::Token &Solution, Nat N,
                            const std::vector<std::uint32_t> &Base,
                            const RelVec &Rel,
                            const std::vector<std::uint64_t> &Subset,
                            unsigned Rows) {
  (void)Solution;
  typename M::Token Scratch = Mem.makeRegion();
  ScopedArena<M> Arena{Mem, Scratch};
  NatBuilder<ScopedArena<M>> T(Arena);

  Nat X = T.fromU64(1);
  std::vector<std::uint32_t> ExpSum(Base.size(), 0);
  for (unsigned R = 0; R != Rows; ++R) {
    if (!(Subset[R / 64] & (std::uint64_t{1} << (R % 64))))
      continue;
    X = T.mod(T.mul(X, Rel[R]->A), N);
    for (std::size_t C = 0; C != Base.size(); ++C)
      ExpSum[C] += Rel[R]->Exps[C];
  }
  Nat Y = T.fromU64(1);
  for (std::size_t C = 0; C != Base.size(); ++C) {
    std::uint32_t Half = ExpSum[C] / 2;
    for (std::uint32_t E = 0; E != Half; ++E)
      Y = T.mod(T.mulSmall(Y, Base[C]), N);
  }
  // gcd(X - Y mod N, N)
  Nat Diff = natCompare(X, Y) >= 0 ? T.sub(X, Y) : T.sub(Y, X);
  std::uint64_t Factor = 0;
  if (!Diff.isZero()) {
    Nat G = T.gcd(Diff, N);
    if (!(G.Len == 1 && G.Limbs[0] == 1) && natCompare(G, N) != 0)
      Factor = G.low64();
  }
  bool Dropped = Mem.dropRegion(Scratch);
  (void)Dropped;
  return Factor;
}

} // namespace workloads
} // namespace regions

#endif // WORKLOADS_CFRAC_H
