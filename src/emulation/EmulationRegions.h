//===- emulation/EmulationRegions.h - Regions over malloc ------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "emulation" library (§5.2): "a region library that uses
/// malloc and free to allocate and free each individual object. This
/// library approximates the performance a region-based application
/// would have if it were written with malloc/free." Each region keeps
/// its objects on a linked list — the paper's noted space overhead —
/// so deleteRegion can free them one by one. The paper uses it for the
/// malloc/free measurements of the originally region-based programs
/// (mudlle, lcc); so do we.
///
//===----------------------------------------------------------------------===//

#ifndef EMULATION_EMULATIONREGIONS_H
#define EMULATION_EMULATIONREGIONS_H

#include "alloc/MallocInterface.h"

#include <cstdint>

namespace regions {

/// A region emulated as a list of individually malloc'd objects.
struct EmuRegion {
  struct ObjHeader {
    ObjHeader *Next;
  };
  ObjHeader *Objects = nullptr;
  std::uint64_t NumObjects = 0;
  std::uint64_t RequestedBytes = 0;
};

/// Region API over any malloc/free implementation.
class EmulationRegionLib {
public:
  /// Statistics mirroring RegionStats' region columns; byte-level stats
  /// come from the underlying allocator.
  struct EmuStats {
    std::uint64_t TotalRegions = 0;
    std::uint64_t LiveRegions = 0;
    std::uint64_t MaxLiveRegions = 0;
    std::uint64_t MaxRegionBytes = 0;
    std::uint64_t ListOverheadBytes = 0; ///< 8 bytes per object + regions
  };

  explicit EmulationRegionLib(MallocInterface &Malloc) : Malloc(Malloc) {}

  /// Creates an emulated region (malloc'd itself).
  EmuRegion *newRegion() {
    auto *R = static_cast<EmuRegion *>(Malloc.malloc(sizeof(EmuRegion)));
    R->Objects = nullptr;
    R->NumObjects = 0;
    R->RequestedBytes = 0;
    ++Stats.TotalRegions;
    ++Stats.LiveRegions;
    if (Stats.LiveRegions > Stats.MaxLiveRegions)
      Stats.MaxLiveRegions = Stats.LiveRegions;
    Stats.ListOverheadBytes += sizeof(EmuRegion);
    return R;
  }

  /// Allocates \p Size bytes in \p R (uninitialized).
  void *alloc(EmuRegion *R, std::size_t Size) {
    auto *Hdr = static_cast<EmuRegion::ObjHeader *>(
        Malloc.malloc(sizeof(EmuRegion::ObjHeader) + Size));
    Hdr->Next = R->Objects;
    R->Objects = Hdr;
    ++R->NumObjects;
    R->RequestedBytes += Size;
    if (R->RequestedBytes > Stats.MaxRegionBytes)
      Stats.MaxRegionBytes = R->RequestedBytes;
    Stats.ListOverheadBytes += sizeof(EmuRegion::ObjHeader);
    return Hdr + 1;
  }

  /// Frees every object in \p R, then \p R itself; nulls the handle.
  /// Always succeeds: the emulation is as unsafe as plain malloc/free.
  void deleteRegion(EmuRegion *&R) {
    EmuRegion::ObjHeader *Obj = R->Objects;
    while (Obj) {
      EmuRegion::ObjHeader *Next = Obj->Next;
      Malloc.free(Obj);
      Obj = Next;
    }
    Malloc.free(R);
    --Stats.LiveRegions;
    R = nullptr;
  }

  MallocInterface &allocator() { return Malloc; }
  const EmuStats &stats() const { return Stats; }

private:
  MallocInterface &Malloc;
  EmuStats Stats;
};

} // namespace regions

#endif // EMULATION_EMULATIONREGIONS_H
