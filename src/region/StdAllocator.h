//===- region/StdAllocator.h - std::allocator over a region ----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A standard-library allocator adapter that draws memory from a
/// region. Lets ordinary containers participate in region lifetimes:
///
/// \code
///   Region *R = Mgr.newRegion();
///   std::vector<int, RegionStdAllocator<int>> V{
///       RegionStdAllocator<int>(R)};
///   V.resize(1000);             // storage comes from R
///   // ... deleteRegion reclaims V's storage with everything else.
/// \endcode
///
/// Rules of use:
///  - deallocate() is a no-op (region memory dies with the region), so
///    containers that grow leave their old buffers as region garbage —
///    the normal region idiom.
///  - The region must outlive the container *or* the container's
///    element type must not require destruction (region deletion never
///    runs container-element destructors; destroy the container first
///    if its elements own resources).
///  - Elements may not hold counted RegionPtr fields: container memory
///    is pointer-free storage (the paper's rstralloc side).
///
//===----------------------------------------------------------------------===//

#ifndef REGION_STDALLOCATOR_H
#define REGION_STDALLOCATOR_H

#include "region/Region.h"

#include <cstddef>

namespace regions {

template <typename T> class RegionStdAllocator {
public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  static_assert(alignof(T) <= kDefaultAlignment,
                "regions serve 8-byte-aligned storage");

  explicit RegionStdAllocator(Region *R) : R(R) {}

  template <typename U>
  RegionStdAllocator(const RegionStdAllocator<U> &Other)
      : R(Other.region()) {}

  T *allocate(std::size_t N) {
    if (N > SIZE_MAX / sizeof(T))
      reportFatalError("RegionStdAllocator: allocation size overflows");
    return static_cast<T *>(R->manager().allocRaw(R, N * sizeof(T)));
  }

  /// Region memory is reclaimed wholesale; individual deallocation is
  /// deliberately a no-op.
  void deallocate(T *, std::size_t) {}

  Region *region() const { return R; }

  template <typename U>
  bool operator==(const RegionStdAllocator<U> &Other) const {
    return R == Other.region();
  }
  template <typename U>
  bool operator!=(const RegionStdAllocator<U> &Other) const {
    return R != Other.region();
  }

private:
  Region *R;
};

} // namespace regions

#endif // REGION_STDALLOCATOR_H
