//===- region/PageMap.cpp - Address-to-region mapping --------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/PageMap.h"
#include "support/Compiler.h"

#include <cassert>
#include <mutex>

namespace regions {
namespace detail {

ArenaInfo GArenas[kMaxArenas];
std::atomic<unsigned> GNumArenas{0};
std::atomic<const ArenaInfo *> GHotArena{GArenas};
std::atomic<std::uint64_t> GArenaSeq{0};

namespace {
/// Guards registry mutation; lookups read without the lock. The
/// allocator/barrier paths (regionOf) rely on the quiescence contract —
/// an arena they probe outlives the probe — while the cross-thread
/// resolve path (regionOfStable) may race an unrelated manager's death
/// and revalidates against GArenaSeq instead.
std::mutex GArenaLock;

/// Marks a registry mutation window for seqlock readers: odd while the
/// table is inconsistent. Caller holds GArenaLock.
struct MutationScope {
  MutationScope() { GArenaSeq.fetch_add(1, std::memory_order_acq_rel); }
  ~MutationScope() { GArenaSeq.fetch_add(1, std::memory_order_release); }
};
} // namespace

void registerArena(const void *Base, std::size_t NumPages,
                   Region *const *Map) {
  std::lock_guard<std::mutex> Guard(GArenaLock);
  unsigned N = GNumArenas.load(std::memory_order_relaxed);
  if (N == kMaxArenas)
    reportFatalError("too many live RegionManagers (arena registry full)");
  MutationScope Mutating;
  auto Addr = reinterpret_cast<std::uintptr_t>(Base);
  GArenas[N].Base.store(Addr, std::memory_order_relaxed);
  GArenas[N].Size.store(NumPages * kPageSize, std::memory_order_relaxed);
  GArenas[N].Map.store(Map, std::memory_order_relaxed);
  GNumArenas.store(N + 1, std::memory_order_relaxed);
}

void unregisterArena(const void *Base) {
  std::lock_guard<std::mutex> Guard(GArenaLock);
  auto Addr = reinterpret_cast<std::uintptr_t>(Base);
  unsigned N = GNumArenas.load(std::memory_order_relaxed);
  for (unsigned I = 0; I != N; ++I) {
    if (GArenas[I].Base.load(std::memory_order_relaxed) != Addr)
      continue;
    MutationScope Mutating;
    ArenaInfo &Last = GArenas[N - 1];
    GArenas[I].Base.store(Last.Base.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    GArenas[I].Size.store(Last.Size.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    GArenas[I].Map.store(Last.Map.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    // Clear the vacated slot so a stale hot-arena pointer can never
    // match an address against the dead (possibly unmapped) arena.
    Last.Base.store(0, std::memory_order_relaxed);
    Last.Size.store(0, std::memory_order_relaxed);
    Last.Map.store(nullptr, std::memory_order_relaxed);
    GNumArenas.store(N - 1, std::memory_order_relaxed);
    GHotArena.store(GArenas, std::memory_order_relaxed);
    return;
  }
  assert(false && "unregisterArena: arena was never registered");
}

Region *regionOfSlow(std::uintptr_t Addr) {
  unsigned E = GNumArenas.load(std::memory_order_relaxed);
  for (unsigned I = 0; I != E; ++I) {
    const ArenaInfo &A = GArenas[I];
    std::uintptr_t Base = A.Base.load(std::memory_order_relaxed);
    if (Addr - Base < A.Size.load(std::memory_order_relaxed)) {
      GHotArena.store(&A, std::memory_order_relaxed);
      return A.Map.load(std::memory_order_relaxed)[(Addr - Base) >>
                                                   kPageShift];
    }
  }
  return nullptr;
}

Region *regionOfSlowNoCache(std::uintptr_t Addr) {
  unsigned E = GNumArenas.load(std::memory_order_relaxed);
  for (unsigned I = 0; I != E; ++I) {
    const ArenaInfo &A = GArenas[I];
    std::uintptr_t Base = A.Base.load(std::memory_order_relaxed);
    if (Addr - Base < A.Size.load(std::memory_order_relaxed))
      return A.Map.load(std::memory_order_relaxed)[(Addr - Base) >>
                                                   kPageShift];
  }
  return nullptr;
}

void rsanCheckDeref(const void *Ptr, const Region *Expected) {
  if (!Ptr || !Expected)
    return;
  if (RGN_LIKELY(regionOf(Ptr) == Expected))
    return;
  reportFatalError("rsan: region pointer dereferenced after its region "
                   "was deleted (or the pointee's page changed hands)");
}

} // namespace detail
} // namespace regions
