//===- region/PageMap.cpp - Address-to-region mapping --------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/PageMap.h"
#include "support/Compiler.h"

#include <cassert>
#include <mutex>

namespace regions {
namespace detail {

ArenaInfo GArenas[kMaxArenas];
unsigned GNumArenas = 0;
std::atomic<const ArenaInfo *> GHotArena{GArenas};

namespace {
/// Guards registry mutation; regionOf reads without the lock, which is
/// safe because managers are created/destroyed at thread quiescence
/// points (construction happens-before any allocation they serve).
std::mutex GArenaLock;
} // namespace

void registerArena(const void *Base, std::size_t NumPages,
                   Region *const *Map) {
  std::lock_guard<std::mutex> Guard(GArenaLock);
  if (GNumArenas == kMaxArenas)
    reportFatalError("too many live RegionManagers (arena registry full)");
  auto Addr = reinterpret_cast<std::uintptr_t>(Base);
  GArenas[GNumArenas++] = {Addr, NumPages * kPageSize, Map};
}

void unregisterArena(const void *Base) {
  std::lock_guard<std::mutex> Guard(GArenaLock);
  auto Addr = reinterpret_cast<std::uintptr_t>(Base);
  for (unsigned I = 0; I != GNumArenas; ++I) {
    if (GArenas[I].Base != Addr)
      continue;
    GArenas[I] = GArenas[--GNumArenas];
    // Clear the vacated slot so a stale hot-arena pointer can never
    // match an address against the dead (possibly unmapped) arena.
    GArenas[GNumArenas] = {0, 0, nullptr};
    GHotArena.store(GArenas, std::memory_order_relaxed);
    return;
  }
  assert(false && "unregisterArena: arena was never registered");
}

Region *regionOfSlow(std::uintptr_t Addr) {
  for (unsigned I = 0, E = GNumArenas; I != E; ++I) {
    const ArenaInfo &A = GArenas[I];
    if (Addr - A.Base < A.Size) {
      GHotArena.store(&A, std::memory_order_relaxed);
      return A.Map[(Addr - A.Base) >> kPageShift];
    }
  }
  return nullptr;
}

void rsanCheckDeref(const void *Ptr, const Region *Expected) {
  if (!Ptr || !Expected)
    return;
  if (RGN_LIKELY(regionOf(Ptr) == Expected))
    return;
  reportFatalError("rsan: region pointer dereferenced after its region "
                   "was deleted (or the pointee's page changed hands)");
}

} // namespace detail
} // namespace regions
