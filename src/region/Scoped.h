//===- region/Scoped.h - Lexically scoped regions --------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII sugar over the explicit API: a region deleted automatically at
/// scope exit. This is the lexically-scoped discipline of the
/// Tofte/Talpin system the paper compares against (§2) — strictly less
/// expressive than first-class explicit regions (no early deletion, no
/// region escaping its scope) but impossible to leak.
///
/// \code
///   {
///     ScopedRegion Tmp(Mgr);
///     auto *N = rnew<Node>(Tmp, ...);
///     ...
///   } // deleted here; aborts in debug builds if references remain
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef REGION_SCOPED_H
#define REGION_SCOPED_H

#include "region/Region.h"
#include "region/RegionPtr.h"

namespace regions {

/// A region bound to a lexical scope. Non-movable: the region's
/// lifetime *is* the scope.
class ScopedRegion {
public:
  explicit ScopedRegion(RegionManager &Mgr)
      : Handle(Mgr.newRegion()) {}

  ScopedRegion(const ScopedRegion &) = delete;
  ScopedRegion &operator=(const ScopedRegion &) = delete;

  /// Deletes the region. If external references remain this is a
  /// program bug (the scoped discipline promises none escape); debug
  /// builds assert, release builds leak the region rather than free
  /// live memory.
  ~ScopedRegion() {
    if (!Handle.get())
      return;
    bool Freed = deleteRegion(Handle);
    assert(Freed && "references escaped a ScopedRegion");
    (void)Freed;
  }

  /// Early deletion (like an explicit deleteregion); returns false if
  /// references remain, in which case the destructor will retry.
  bool reset() { return Handle.get() ? deleteRegion(Handle) : true; }

  Region *get() const { return Handle.get(); }
  Region &operator*() const { return *Handle.get(); }
  Region *operator->() const { return Handle.get(); }
  operator Region *() const { return Handle.get(); }

private:
  // The shadow-stack frame scopes the handle itself; ScopedRegion can
  // therefore be used in functions that declare no rt::Frame.
  rt::Frame Frame;
  rt::RegionHandle Handle;
};

} // namespace regions

#endif // REGION_SCOPED_H
