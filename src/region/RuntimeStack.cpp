//===- region/RuntimeStack.cpp - Shadow stack for local refs -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/RuntimeStack.h"
#include "region/PageMap.h"
#include "region/Region.h"

#include <cassert>

using namespace regions;
using namespace regions::rt;

namespace {

/// Adjusts a region's count for a stack-attributed reference, honouring
/// the manager's StackScan feature flag so safe and unsafe regions can
/// coexist on one shadow stack.
void stackAdjust(void *Value, long long Delta) {
  Region *R = regionOf(Value);
  if (R && R->manager().config().StackScan)
    R->rcAdd(Delta);
}

} // namespace

thread_local RGN_CONSTINIT RuntimeStack regions::rt::GThreadStack;

FrameLink *RuntimeStack::pushBaseFrame() {
  assert(!Top && !SlotsHead && "base frame only underlies an empty stack");
  pushFrame(&BaseFrame);
  return &BaseFrame;
}

void RuntimeStack::unscanTopFrame() {
  // Called right after a pop: the popped frame's slots are gone, so the
  // slots down to Top->SlotsAtPush are exactly the new top frame's.
  ++Stats.FramesUnscanned;
  for (SlotNode *N = SlotsHead; N != Top->SlotsAtPush; N = N->Prev) {
    ++Stats.SlotsVisited;
    stackAdjust(*N->Addr, -1);
    --NumScannedSlots;
  }
  Top->Scanned = false;
  --NumScannedFrames;
}

void RuntimeStack::scannedFrameWrite(SlotNode *N, void *NewVal) {
  // Slot lives in a scanned frame: keep the counts exact.
  ++current().Stats.ScannedFrameWrites;
  stackAdjust(*N->Addr, -1);
  stackAdjust(NewVal, +1);
  *N->Addr = NewVal;
}

void RuntimeStack::scanForDelete() {
  ++Stats.Scans;
  if (!Top)
    return;
  // Slots below the top frame, newest first, stopping at the already-
  // scanned prefix (scanned frames are always a bottom prefix, so their
  // slots sit contiguously at the old end of the list).
  for (SlotNode *N = Top->SlotsAtPush; N && !N->Owner->Scanned;
       N = N->Prev) {
    ++Stats.SlotsVisited;
    stackAdjust(*N->Addr, +1);
    ++NumScannedSlots;
  }
  for (FrameLink *F = Top->Parent; F && !F->Scanned; F = F->Parent) {
    F->Scanned = true;
    ++NumScannedFrames;
    ++Stats.FramesScanned;
  }
}

RuntimeStack::SlotLocation RuntimeStack::locate(void *const *Addr) const {
  for (const SlotNode *N = SlotsHead; N; N = N->Prev)
    if (N->Addr == Addr)
      return N->Owner->Scanned ? SlotLocation::Scanned
                               : SlotLocation::Unscanned;
  return SlotLocation::NotRegistered;
}

std::size_t
RuntimeStack::countTopFrameRefsTo(const Region *R,
                                  void *const *ExcludeSlot) const {
  if (!Top)
    return 0;
  std::size_t Count = 0;
  for (const SlotNode *N = SlotsHead; N != Top->SlotsAtPush; N = N->Prev) {
    if (N->Addr == ExcludeSlot)
      continue;
    if (regionOf(*N->Addr) == R)
      ++Count;
  }
  return Count;
}

void RuntimeStack::resetForTesting() {
  Top = nullptr;
  SlotsHead = nullptr;
  NumFrames = 0;
  NumScannedFrames = 0;
  NumSlots = 0;
  NumScannedSlots = 0;
  BaseFrame = FrameLink{};
  Stats = Counters{};
}
