//===- region/RuntimeStack.cpp - Shadow stack for local refs -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/RuntimeStack.h"
#include "region/PageMap.h"
#include "region/Region.h"

#include <cassert>

using namespace regions;
using namespace regions::rt;

namespace {

/// Adjusts a region's count for a stack-attributed reference, honouring
/// the manager's StackScan feature flag so safe and unsafe regions can
/// coexist on one shadow stack.
void stackAdjust(void *Value, long long Delta) {
  Region *R = regionOf(Value);
  if (R && R->manager().config().StackScan)
    R->rcAdd(Delta);
}

} // namespace

RuntimeStack &RuntimeStack::current() {
  thread_local RuntimeStack Instance;
  return Instance;
}

std::size_t RuntimeStack::pushFrame() {
  Frames.push_back({Slots.size()});
  return Frames.size() - 1;
}

void RuntimeStack::popFrame() {
  assert(!Frames.empty() && "popFrame with no frames");
  assert(Slots.size() == Frames.back().SlotBegin &&
         "locals must be unregistered before their frame pops");
  Frames.pop_back();
  if (Frames.empty()) {
    HwmIdx = 0;
    return;
  }
  // Invariant (*): at least one unscanned frame. If the pop left every
  // remaining frame scanned, unscan the new top frame — this is the
  // paper's unscan-on-return, triggered for exactly one frame.
  if (HwmIdx == Frames.size()) {
    unscanFrame(Frames.size() - 1);
    HwmIdx = Frames.size() - 1;
  }
}

std::size_t RuntimeStack::registerSlot(void **Addr) {
  if (Frames.empty())
    pushFrame(); // implicit base frame for frameless clients
  Slots.push_back(Addr);
  return Slots.size() - 1;
}

void RuntimeStack::unregisterSlot(std::size_t Idx, void **Addr) {
  (void)Idx;
  (void)Addr;
  assert(Idx == Slots.size() - 1 && Slots[Idx] == Addr &&
         "local region pointers must unregister in LIFO order");
  Slots.pop_back();
}

void RuntimeStack::localWrite(std::size_t Idx, void **Addr, void *NewVal) {
  assert(Idx < Slots.size() && Slots[Idx] == Addr && "stale slot index");
  if (Idx < scannedSlotEnd()) {
    // Slot lives in a scanned frame: keep the counts exact.
    ++Stats.ScannedFrameWrites;
    stackAdjust(*Addr, -1);
    stackAdjust(NewVal, +1);
  }
  *Addr = NewVal;
}

void RuntimeStack::scanForDelete() {
  ++Stats.Scans;
  if (Frames.empty())
    return;
  std::size_t Target = Frames.size() - 1; // top frame stays unscanned
  if (HwmIdx >= Target)
    return;
  std::size_t Begin = Frames[HwmIdx].SlotBegin;
  std::size_t End = Frames[Target].SlotBegin;
  for (std::size_t I = Begin; I != End; ++I) {
    ++Stats.SlotsVisited;
    stackAdjust(*Slots[I], +1);
  }
  Stats.FramesScanned += Target - HwmIdx;
  HwmIdx = Target;
}

void RuntimeStack::unscanFrame(std::size_t FrameIdx) {
  ++Stats.FramesUnscanned;
  std::size_t Begin = Frames[FrameIdx].SlotBegin;
  std::size_t End = frameSlotEnd(FrameIdx);
  for (std::size_t I = Begin; I != End; ++I) {
    ++Stats.SlotsVisited;
    stackAdjust(*Slots[I], -1);
  }
}

RuntimeStack::SlotLocation RuntimeStack::locate(void *const *Addr) const {
  std::size_t ScanEnd = scannedSlotEnd();
  for (std::size_t I = 0, E = Slots.size(); I != E; ++I)
    if (Slots[I] == Addr)
      return I < ScanEnd ? SlotLocation::Scanned : SlotLocation::Unscanned;
  return SlotLocation::NotRegistered;
}

std::size_t
RuntimeStack::countTopFrameRefsTo(const Region *R,
                                  void *const *ExcludeSlot) const {
  if (Frames.empty())
    return 0;
  std::size_t Count = 0;
  for (std::size_t I = Frames.back().SlotBegin, E = Slots.size(); I != E; ++I) {
    if (Slots[I] == ExcludeSlot)
      continue;
    if (regionOf(*Slots[I]) == R)
      ++Count;
  }
  return Count;
}

void RuntimeStack::resetForTesting() {
  Frames.clear();
  Slots.clear();
  HwmIdx = 0;
  Stats = Counters{};
}
