//===- region/Parallel.h - Regions for explicit parallelism ----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's parallel extension (§1): "region-based memory management
/// can be used nearly unchanged in an explicitly-parallel programming
/// language. The only operations that require synchronization amongst
/// all processes are region creation and deletion. Each process keeps a
/// local reference count for each region which counts the references
/// created or deleted by that process. A region can be deleted if the
/// sum of all its local reference counts is zero. Writes of references
/// to regions must be done with an atomic exchange ... however the
/// local reference counts can be adjusted without synchronization or
/// communication."
///
/// Model: each thread owns a RegionManager (allocation never races);
/// regions shared between threads are registered with a ParallelSpace,
/// which keeps one cache-line-padded local count per thread. Shared
/// pointer slots are std::atomic; sharedExchange() performs the atomic
/// exchange and adjusts only the calling thread's local counts — a
/// thread's count may go negative (it dropped references another
/// thread created); only the sum matters.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_PARALLEL_H
#define REGION_PARALLEL_H

#include "region/PageMap.h"
#include "region/Region.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace regions {
namespace par {

inline constexpr unsigned kMaxThreads = 32;

/// A region shared between threads, with per-thread local counts.
class SharedRegion {
public:
  Region *region() const { return R; }

  /// Sum of all local counts: the region's true external reference
  /// count. Only meaningful under the space's deletion lock (counts
  /// keep moving otherwise).
  std::int64_t totalCount() const {
    std::int64_t Sum = 0;
    for (unsigned I = 0; I != kMaxThreads; ++I)
      Sum += Local[I].Count.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  friend class ParallelSpace;

  struct alignas(64) PaddedCount {
    // Relaxed atomics: each slot is written by one thread only; other
    // threads read it only under the deletion protocol.
    std::atomic<std::int64_t> Count{0};
  };

  Region *R = nullptr;
  PaddedCount Local[kMaxThreads];
  bool Deleted = false;
};

/// Coordinates shared regions between threads (the paper's global
/// synchronization point for creation and deletion).
class ParallelSpace {
public:
  ParallelSpace() = default;
  ParallelSpace(const ParallelSpace &) = delete;
  ParallelSpace &operator=(const ParallelSpace &) = delete;
  ~ParallelSpace();

  /// Assigns the calling context a thread slot [0, kMaxThreads).
  unsigned registerThread();

  /// Wraps a region created by the calling thread's manager as shared.
  /// Creation synchronizes on the space lock (paper's requirement).
  /// The creating handle is not counted: like deleteregion's *x, the
  /// creator transfers its reference into the space.
  SharedRegion *share(Region *R);

  /// Adjusts the calling thread's local count for \p S — no
  /// synchronization, no communication (paper's fast path).
  void addRef(SharedRegion *S, unsigned Tid) {
    S->Local[Tid].Count.fetch_add(1, std::memory_order_relaxed);
  }
  void dropRef(SharedRegion *S, unsigned Tid) {
    S->Local[Tid].Count.fetch_sub(1, std::memory_order_relaxed);
  }

  /// The paper's shared-slot write: atomically exchanges \p Slot to
  /// \p NewVal and adjusts only the calling thread's local counts for
  /// the regions the old and new values point into. \p NewShared /
  /// \p OldOf map a pointer to its SharedRegion (null for non-shared
  /// memory). Returns the previous value.
  template <class T>
  T *sharedExchange(std::atomic<T *> &Slot, T *NewVal,
                    SharedRegion *NewShared, SharedRegion *OldShared,
                    unsigned Tid) {
    if (NewShared)
      addRef(NewShared, Tid);
    T *Old = Slot.exchange(NewVal, std::memory_order_acq_rel);
    // The exchange makes the count adjustment safe under races: the
    // value we displaced is exactly the reference we drop.
    if (OldShared && Old)
      dropRef(OldShared, Tid);
    return Old;
  }

  /// Attempts to delete the shared region: synchronizes, sums the
  /// local counts, and destroys the region iff the sum is zero.
  /// The caller must guarantee the owning manager is quiescent.
  bool tryDelete(SharedRegion *S);

  /// Number of shared regions not yet deleted (diagnostics).
  std::size_t liveSharedRegions() const;

private:
  mutable std::mutex Lock;
  std::vector<SharedRegion *> Regions;
  unsigned NextThread = 0;
};

} // namespace par
} // namespace regions

#endif // REGION_PARALLEL_H
