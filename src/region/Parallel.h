//===- region/Parallel.h - Regions for explicit parallelism ----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's parallel extension (§1): "region-based memory management
/// can be used nearly unchanged in an explicitly-parallel programming
/// language. The only operations that require synchronization amongst
/// all processes are region creation and deletion. Each process keeps a
/// local reference count for each region which counts the references
/// created or deleted by that process. A region can be deleted if the
/// sum of all its local reference counts is zero. Writes of references
/// to regions must be done with an atomic exchange ... however the
/// local reference counts can be adjusted without synchronization or
/// communication."
///
/// Model: each thread owns a RegionManager (allocation never races);
/// regions shared between threads are registered with a ParallelSpace,
/// which keeps one cache-line-padded local count per thread. Shared
/// pointer slots are std::atomic; sharedExchange() performs the atomic
/// exchange and adjusts only the calling thread's local counts — a
/// thread's count may go negative (it dropped references another
/// thread created); only the sum matters.
///
/// The synchronization the paper confines to creation and deletion is
/// *sharded*: every SharedRegion hashes (by the creating region's
/// address) onto one of kNumShards cache-line-padded shards, each with
/// its own lock, live-region table, and pooled-record free list.
/// share()/tryDelete() on regions in distinct shards never touch the
/// same lock or lines, so a server workload cycling one region per
/// request scales with threads instead of convoying on one mutex.
/// Only thread-slot issuance (registerThread/unregisterThread) remains
/// a small global critical section, and the slot high-water mark is
/// published through an atomic so per-shard share() calls size their
/// local-count arrays coherently without it.
///
/// tryDelete() is optimistic: it flushes the caller's buffered count
/// adjustments, takes a lock-free relaxed sum first, and refuses
/// without any lock when the sum is visibly non-zero — polling "is it
/// dead yet" costs reads only. Concurrent deleters of the same region
/// are arbitrated by a per-record Deleting CAS flag, so losers refuse
/// lock-free instead of stampeding the shard lock; only a zero-looking
/// sum takes the shard lock for the authoritative recheck, where the
/// owning manager still has the last word. The accept/refuse semantics
/// are unchanged: refusing is always conservative-safe, and a zero sum
/// is rechecked under the lock before anything is freed.
///
/// Local-count storage is sized per SharedRegion when share() runs (at
/// least kMinCountSlots, at most the slot high-water mark), instead of
/// a fixed kMaxThreads-wide array; threads whose slot index exceeds a
/// region's array fold into one shared Detached counter, which is also
/// where unregisterThread() banks an exiting thread's balances so its
/// slot index can be reissued — the banking walk locks one shard at a
/// time instead of freezing the whole space. SharedRegion records are
/// pooled per shard: tryDelete returns the record to its shard's free
/// list and the shard's next share() reuses it.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_PARALLEL_H
#define REGION_PARALLEL_H

#include "region/PageMap.h"
#include "region/Region.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace regions {
namespace par {

/// Cap on simultaneously registered threads (slot indices in flight);
/// unregisterThread() recycles indices, so total thread count over a
/// space's lifetime is unbounded.
inline constexpr unsigned kMaxThreads = 32;

/// Floor on a SharedRegion's local-count array. Regions shared before
/// any thread registers (a common pattern: main shares, workers join)
/// still get uncontended per-thread slots for the first
/// kMinCountSlots thread indices.
inline constexpr unsigned kMinCountSlots = 8;

/// Shard count for create/delete synchronization. Power of two; eight
/// shards already out-number the arenas most workloads run (one per
/// thread manager), so distinct regions land on distinct locks with
/// high probability while the per-space footprint stays at eight
/// cache-line-padded entries.
inline constexpr unsigned kNumShards = 8;

/// A region shared between threads, with per-thread local counts.
class SharedRegion {
public:
  Region *region() const { return R; }

  /// Sum of all local counts: the region's true external reference
  /// count. Relaxed reads — exact once the counting threads' writes
  /// happen-before the call (after a join, or through the message
  /// channel that handed this record over); a mid-flight racy sum is
  /// a mere snapshot, which is why tryDelete's lock-free use of it
  /// can only *refuse*, never free.
  std::int64_t totalCount() const {
    std::int64_t Sum = Detached.load(std::memory_order_relaxed);
    for (unsigned I = 0; I != NumSlots; ++I)
      Sum += Local[I].Count.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  friend class ParallelSpace;

  struct alignas(64) PaddedCount {
    // Relaxed atomics: each slot is written by one thread only; other
    // threads read it only under the deletion protocol.
    std::atomic<std::int64_t> Count{0};
  };

  SharedRegion() = default;
  ~SharedRegion() { delete[] Local; }

  Region *R = nullptr;
  PaddedCount *Local = nullptr; ///< owned array of NumSlots entries
  unsigned NumSlots = 0;
  unsigned RegionId = 0;  ///< cached R->id(): traceable after R dies
  std::size_t Index = 0;  ///< position in the owning shard's live list
  SharedRegion *NextFree = nullptr; ///< free-list link while pooled
  /// Catch-all count: threads whose slot index is outside Local, plus
  /// the banked balances of unregistered threads. Contended in theory,
  /// but only ever touched by late-joining threads beyond the array.
  std::atomic<std::int64_t> Detached{0};
  /// Set once the region is gone; checked first (acquire) so stale
  /// tryDelete calls are cheap no-ops. Reset when the record is reused.
  std::atomic<bool> Deleted{false};
  /// Deletion arbitration: the CAS winner owns the authoritative
  /// locked recheck; losers refuse lock-free instead of queueing on
  /// the shard lock. Left set by a successful delete (the record is
  /// pooled with it) and cleared on refusal or reuse.
  std::atomic<bool> Deleting{false};
};

/// Coordinates shared regions between threads (the paper's global
/// synchronization point for creation and deletion, sharded so
/// distinct regions never contend).
class ParallelSpace {
public:
  ParallelSpace() = default;
  ParallelSpace(const ParallelSpace &) = delete;
  ParallelSpace &operator=(const ParallelSpace &) = delete;
  ~ParallelSpace();

  /// Assigns the calling context a thread slot [0, kMaxThreads),
  /// reusing indices released by unregisterThread. Registration is the
  /// one remaining global critical section (slot issuance must be
  /// unique across shards); it is short and off every per-region path.
  unsigned registerThread();

  /// Releases thread slot \p Tid: its balance in every live shared
  /// region is folded into that region's detached count (the sums are
  /// unchanged), and the index becomes reusable by a later
  /// registerThread. The banking walk locks one shard at a time — the
  /// space keeps serving share/tryDelete on other shards throughout.
  /// The thread must make no further adjustments under this index;
  /// releasing an index twice is a debug-checked error (it would let
  /// two live threads share one slot). Prefer the ThreadSlot RAII
  /// wrapper.
  void unregisterThread(unsigned Tid);

  /// Wraps a region created by the calling thread's manager as shared.
  /// Creation synchronizes on the region's shard lock only (paper's
  /// requirement, narrowed). The creating handle is not counted: like
  /// deleteregion's *x, the creator transfers its reference into the
  /// space. The returned record is owned by the space and may be
  /// pooled for reuse after a successful tryDelete — holding a
  /// SharedRegion* past that point is a use-after-free in spirit even
  /// though the storage stays valid.
  SharedRegion *share(Region *R);

  /// Adjusts the calling thread's local count for \p S — no
  /// synchronization, no communication (paper's fast path).
  void addRef(SharedRegion *S, unsigned Tid) {
    countSlot(S, Tid).fetch_add(1, std::memory_order_relaxed);
  }
  void dropRef(SharedRegion *S, unsigned Tid) {
    countSlot(S, Tid).fetch_sub(1, std::memory_order_relaxed);
  }

  /// The paper's shared-slot write: atomically exchanges \p Slot to
  /// \p NewVal and adjusts only the calling thread's local counts for
  /// the regions the old and new values point into. \p NewShared /
  /// \p OldOf map a pointer to its SharedRegion (null for non-shared
  /// memory). Returns the previous value.
  template <class T>
  T *sharedExchange(std::atomic<T *> &Slot, T *NewVal,
                    SharedRegion *NewShared, SharedRegion *OldShared,
                    unsigned Tid) {
    if (NewShared)
      addRef(NewShared, Tid);
    T *Old = Slot.exchange(NewVal, std::memory_order_acq_rel);
    // The exchange makes the count adjustment safe under races: the
    // value we displaced is exactly the reference we drop.
    if (OldShared && Old)
      dropRef(OldShared, Tid);
    return Old;
  }

  /// Attempts to delete the shared region: flushes the calling
  /// thread's buffered count adjustments (deletion is a count
  /// inspection), then runs the optimistic protocol — a lock-free
  /// relaxed sum that refuses immediately when visibly non-zero, a
  /// Deleting CAS that turns concurrent same-region deleters away
  /// lock-free, and only then the shard lock for the authoritative
  /// recheck, where the owning manager agrees no other counted or
  /// stack reference survives before the region is destroyed. On
  /// failure nothing changes and a later attempt may succeed. The
  /// caller must guarantee the owning manager is quiescent.
  bool tryDelete(SharedRegion *S);

  /// Number of shared regions not yet deleted (diagnostics). Lock-free:
  /// a relaxed sum of the per-shard size counters — exact whenever the
  /// space is quiescent, a snapshot otherwise.
  std::size_t liveSharedRegions() const {
    std::size_t N = 0;
    for (const Shard &Sh : Shards)
      N += Sh.LiveCount.load(std::memory_order_relaxed);
    return N;
  }

  /// tryDelete refusals that never touched a shard lock (the visibly
  /// non-zero sum and lost-CAS paths). Diagnostics/tests: proves the
  /// polling path stays lock-free.
  std::uint64_t lockFreeRefusals() const {
    std::uint64_t N = 0;
    for (const Shard &Sh : Shards)
      N += Sh.FastRefusals.load(std::memory_order_relaxed);
    return N;
  }

  /// Which shard \p R's SharedRegion record lives in (diagnostics).
  static unsigned shardOf(const Region *R) {
    // Regions sit in their own first page, so the page number is the
    // identity; a Fibonacci multiply spreads consecutive pages (one
    // manager's back-to-back regions) across shards.
    auto Page =
        reinterpret_cast<std::uintptr_t>(R) >> kPageShift;
    return static_cast<unsigned>((Page * 0x9E3779B97F4A7C15ull) >> 32) &
           (kNumShards - 1);
  }

private:
  /// One synchronization domain: lock, live table, pooled records,
  /// and the lock-free mirrors readers poll. Padded so neighbouring
  /// shards' locks never false-share.
  struct alignas(64) Shard {
    std::mutex Lock;
    std::vector<SharedRegion *> Regions; ///< live shared regions only
    SharedRegion *FreePool = nullptr;    ///< deleted records for reuse
    /// Regions.size(), mirrored relaxed for liveSharedRegions().
    std::atomic<std::size_t> LiveCount{0};
    /// Lock-free tryDelete refusals served from this shard's regions.
    std::atomic<std::uint64_t> FastRefusals{0};
  };

  /// Where thread \p Tid's adjustments to \p S accumulate: a private
  /// padded slot when the index fits S's array, the shared detached
  /// counter otherwise.
  static std::atomic<std::int64_t> &countSlot(SharedRegion *S,
                                              unsigned Tid) {
    return Tid < S->NumSlots ? S->Local[Tid].Count : S->Detached;
  }

  Shard Shards[kNumShards];

  // Thread-slot issuance: the one global critical section left.
  std::mutex RegLock;
  std::vector<unsigned> FreeTids; ///< recycled thread slots
  /// Slot high-water mark. Written under RegLock, read relaxed by
  /// share() on any shard to size local-count arrays: a stale (small)
  /// read only means a just-registered thread folds into Detached for
  /// that region, which the counting protocol already handles.
  std::atomic<unsigned> NextThread{0};
};

/// RAII thread registration: registers on construction, folds the
/// thread's balances and releases its slot on destruction.
class ThreadSlot {
public:
  explicit ThreadSlot(ParallelSpace &S) : Space(S), Id(S.registerThread()) {}
  ThreadSlot(const ThreadSlot &) = delete;
  ThreadSlot &operator=(const ThreadSlot &) = delete;
  ~ThreadSlot() { Space.unregisterThread(Id); }

  unsigned tid() const { return Id; }
  operator unsigned() const { return Id; }

private:
  ParallelSpace &Space;
  unsigned Id;
};

} // namespace par
} // namespace regions

#endif // REGION_PARALLEL_H
