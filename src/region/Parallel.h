//===- region/Parallel.h - Regions for explicit parallelism ----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's parallel extension (§1): "region-based memory management
/// can be used nearly unchanged in an explicitly-parallel programming
/// language. The only operations that require synchronization amongst
/// all processes are region creation and deletion. Each process keeps a
/// local reference count for each region which counts the references
/// created or deleted by that process. A region can be deleted if the
/// sum of all its local reference counts is zero. Writes of references
/// to regions must be done with an atomic exchange ... however the
/// local reference counts can be adjusted without synchronization or
/// communication."
///
/// Model: each thread owns a RegionManager (allocation never races);
/// regions shared between threads are registered with a ParallelSpace,
/// which keeps one cache-line-padded local count per thread. Shared
/// pointer slots are std::atomic; sharedExchange() performs the atomic
/// exchange and adjusts only the calling thread's local counts — a
/// thread's count may go negative (it dropped references another
/// thread created); only the sum matters.
///
/// The synchronization the paper confines to creation and deletion is
/// *sharded*: every SharedRegion hashes (by the creating region's
/// address) onto one of kNumShards cache-line-padded shards, each with
/// its own lock, live-region table, and pooled-record free list.
/// share()/tryDelete() on regions in distinct shards never touch the
/// same lock or lines, so a server workload cycling one region per
/// request scales with threads instead of convoying on one mutex.
/// Only thread-slot issuance (registerThread/unregisterThread) remains
/// a small global critical section, and the slot high-water mark is
/// published through an atomic so per-shard share() calls size their
/// local-count arrays coherently without it.
///
/// tryDelete() is optimistic: it flushes the caller's buffered count
/// adjustments, takes a lock-free relaxed sum first, and refuses
/// without any lock when the sum is visibly non-zero — polling "is it
/// dead yet" costs reads only. Concurrent deleters of the same region
/// are arbitrated by a per-record Deleting CAS flag, so losers refuse
/// lock-free instead of stampeding the shard lock; only a zero-looking
/// sum takes the shard lock for the authoritative recheck, where the
/// owning manager still has the last word. The accept/refuse semantics
/// are unchanged: refusing is always conservative-safe, and a zero sum
/// is rechecked under the lock before anything is freed.
///
/// Local-count storage is sized per SharedRegion when share() runs (at
/// least kMinCountSlots, at most the slot high-water mark), instead of
/// a fixed kMaxThreads-wide array; threads whose slot index exceeds a
/// region's array fold into one shared Detached counter, which is also
/// where unregisterThread() banks an exiting thread's balances so its
/// slot index can be reissued — the banking walk locks one shard at a
/// time instead of freezing the whole space. SharedRegion records are
/// pooled per shard: tryDelete returns the record to its shard's free
/// list and the shard's next share() reuses it.
///
/// The shared-slot write is *self-resolving*: the paper requires the
/// atomic exchange precisely so the process knows which reference was
/// overwritten, and under cross-region races only the exchange's
/// return value knows — any region the caller guessed *before* the
/// exchange can be wrong the moment another thread stores a pointer
/// into a different region through the same slot. sharedExchange()
/// therefore maps the displaced pointer back to its record after the
/// exchange: page map first (regionOf names the region), then the
/// Region → SharedRegion binding share() published (names the record),
/// generation-checked so a record retired and rebound mid-resolve is
/// never mistaken for the old occupant. A hinted overload keeps the
/// resolve off the fast path for slots the caller genuinely knows
/// (single-region mailboxes); RGN_HARDEN verifies the hint against the
/// resolution and aborts on a mismatch.
///
/// Deletion normally ends on the owning thread — managers are not
/// thread-safe, so the authoritative recheck's deleteRegionRaw must
/// not race the owner. quiesce(manager) relaxes that: an owner that is
/// permanently done with its manager registers it with the space, and
/// from then on tryDelete may retire that manager's regions from any
/// thread, serializing deleters through a per-manager hand-off lock.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_PARALLEL_H
#define REGION_PARALLEL_H

#include "region/PageMap.h"
#include "region/Region.h"
#include "support/Compiler.h"
#include "support/Harden.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace regions {
namespace par {

/// Cap on simultaneously registered threads (slot indices in flight);
/// unregisterThread() recycles indices, so total thread count over a
/// space's lifetime is unbounded.
inline constexpr unsigned kMaxThreads = 32;

/// Floor on a SharedRegion's local-count array. Regions shared before
/// any thread registers (a common pattern: main shares, workers join)
/// still get uncontended per-thread slots for the first
/// kMinCountSlots thread indices.
inline constexpr unsigned kMinCountSlots = 8;

/// Shard count for create/delete synchronization. Power of two; eight
/// shards already out-number the arenas most workloads run (one per
/// thread manager), so distinct regions land on distinct locks with
/// high probability while the per-space footprint stays at eight
/// cache-line-padded entries.
inline constexpr unsigned kNumShards = 8;

/// A region shared between threads, with per-thread local counts.
class SharedRegion {
public:
  Region *region() const { return R; }

  /// Sum of all local counts: the region's true external reference
  /// count. Relaxed reads — exact once the counting threads' writes
  /// happen-before the call (after a join, or through the message
  /// channel that handed this record over); a mid-flight racy sum is
  /// a mere snapshot, which is why tryDelete's lock-free use of it
  /// can only *refuse*, never free.
  std::int64_t totalCount() const {
    std::int64_t Sum = Detached.load(std::memory_order_relaxed);
    for (unsigned I = 0; I != NumSlots; ++I)
      Sum += Local[I].Count.load(std::memory_order_relaxed);
    return Sum;
  }

  /// Occupancy stamp: odd while the record serves a region, even while
  /// retired/pooled. share() bumps it when (re)binding the record to a
  /// region and copies the new value into the region's binding;
  /// tryDelete bumps it again at retirement. A resolver that read a
  /// region's (record, generation) pair compares against this — equal
  /// means the record still serves that region, unequal means the pair
  /// was torn by a concurrent retire/rebind and must not be used.
  std::uint64_t generation() const {
    return Gen.load(std::memory_order_relaxed);
  }

private:
  friend class ParallelSpace;

  struct alignas(64) PaddedCount {
    // Relaxed atomics: each slot is written by one thread only; other
    // threads read it only under the deletion protocol.
    std::atomic<std::int64_t> Count{0};
  };

  SharedRegion() = default;
  ~SharedRegion() { delete[] Local; }

  Region *R = nullptr;
  PaddedCount *Local = nullptr; ///< owned array of NumSlots entries
  unsigned NumSlots = 0;
  unsigned RegionId = 0;  ///< cached R->id(): traceable after R dies
  std::size_t Index = 0;  ///< position in the owning shard's live list
  SharedRegion *NextFree = nullptr; ///< free-list link while pooled
  /// Catch-all count: threads whose slot index is outside Local, plus
  /// the banked balances of unregistered threads. Contended in theory,
  /// but only ever touched by late-joining threads beyond the array.
  std::atomic<std::int64_t> Detached{0};
  /// Set once the region is gone; checked first (acquire) so stale
  /// tryDelete calls are cheap no-ops. Reset when the record is reused.
  std::atomic<bool> Deleted{false};
  /// Deletion arbitration: the CAS winner owns the authoritative
  /// locked recheck; losers refuse lock-free instead of queueing on
  /// the shard lock. Left set by a successful delete (the record is
  /// pooled with it) and cleared on refusal or reuse.
  std::atomic<bool> Deleting{false};
  /// Occupancy stamp; see generation().
  std::atomic<std::uint64_t> Gen{0};
};

/// Out-of-line cold tail of resolveSharedRegion(): the (record,
/// generation) pair read through \p R's binding was torn by a
/// concurrent retire/rebind. Traces a resolve-stale event and treats
/// the pointer as not-shared (drops no count — conservative: can delay
/// a deletion, never corrupts another region's sum). Under RGN_HARDEN
/// a torn pair is impossible in a correct program (the displaced
/// reference itself keeps the sum non-zero, which blocks retirement),
/// so it is diagnosed fatally instead.
SharedRegion *resolveSharedStale(const Region *R, const SharedRegion *S,
                                 std::uint64_t Gen);

/// Maps a pointer displaced from a shared slot to the SharedRegion
/// record holding its counts, or nullptr when the pointer is not in a
/// currently-shared region (null, stack/global/malloc memory, a
/// private region, or a region this space never saw). Page-map first:
/// regionOfStable() names the region without disturbing the caller's
/// hot-arena cache, the region's binding — published by share(),
/// retired by tryDelete() — names the record, and the generation stamp
/// proves the record still serves *this* region rather than having
/// been pooled and rebound between the two loads.
///
/// Liveness: while the displaced reference is still undropped, the sum
/// of the region's local counts is at least one (whoever installed the
/// reference added it), so tryDelete refuses and both the Region
/// metadata and the binding stay readable for the resolve window. This
/// is the same argument that makes the counting protocol sound; a
/// program that reaches a resolve with a reference the counts never
/// saw was already broken before the resolve.
inline SharedRegion *resolveSharedRegion(const void *Ptr) {
  if (!Ptr)
    return nullptr;
  Region *R = regionOfStable(Ptr);
  if (!R)
    return nullptr;
  SharedRegion *S = R->sharedBinding();
  if (!S)
    return nullptr;
  std::uint64_t Gen = R->sharedBindingGen();
  if (RGN_UNLIKELY(S->generation() != Gen))
    return resolveSharedStale(R, S, Gen);
  return S;
}

/// Coordinates shared regions between threads (the paper's global
/// synchronization point for creation and deletion, sharded so
/// distinct regions never contend).
class ParallelSpace {
public:
  ParallelSpace() = default;
  ParallelSpace(const ParallelSpace &) = delete;
  ParallelSpace &operator=(const ParallelSpace &) = delete;
  ~ParallelSpace();

  /// Assigns the calling context a thread slot [0, kMaxThreads),
  /// reusing indices released by unregisterThread. Registration is the
  /// one remaining global critical section (slot issuance must be
  /// unique across shards); it is short and off every per-region path.
  unsigned registerThread();

  /// Releases thread slot \p Tid: its balance in every live shared
  /// region is folded into that region's detached count (the sums are
  /// unchanged), and the index becomes reusable by a later
  /// registerThread. The banking walk locks one shard at a time — the
  /// space keeps serving share/tryDelete on other shards throughout.
  /// The thread must make no further adjustments under this index;
  /// releasing an index twice is a debug-checked error (it would let
  /// two live threads share one slot). Prefer the ThreadSlot RAII
  /// wrapper.
  void unregisterThread(unsigned Tid);

  /// Wraps a region created by the calling thread's manager as shared.
  /// Creation synchronizes on the region's shard lock only (paper's
  /// requirement, narrowed). The creating handle is not counted: like
  /// deleteregion's *x, the creator transfers its reference into the
  /// space. Publishes the Region → record binding (with a fresh
  /// generation stamp) that resolveSharedRegion() walks, so from the
  /// moment share() returns, resolving exchanges classify pointers
  /// into \p R without the caller's help. The returned record is owned
  /// by the space and may be pooled for reuse after a successful
  /// tryDelete (under RGN_HARDEN it is instead retired for good, so
  /// stale handles stay detectable) — holding a SharedRegion* past
  /// that point is a use-after-free in spirit even though the storage
  /// stays valid.
  SharedRegion *share(Region *R);

  /// Adjusts the calling thread's local count for \p S — no
  /// synchronization, no communication (paper's fast path).
  void addRef(SharedRegion *S, unsigned Tid) {
    rsanCheckLive(S);
    countSlot(S, Tid).fetch_add(1, std::memory_order_relaxed);
  }
  void dropRef(SharedRegion *S, unsigned Tid) {
    rsanCheckLive(S);
    countSlot(S, Tid).fetch_sub(1, std::memory_order_relaxed);
  }

  /// The paper's shared-slot write, resolving form: atomically
  /// exchanges \p Slot to \p NewVal and adjusts only the calling
  /// thread's local counts — an addRef on \p NewShared (the record of
  /// the region \p NewVal points into; null installs an uncounted /
  /// non-region value), and a dropRef on whichever record the
  /// *displaced* value resolves to through the page map and the
  /// share()-published binding (resolveSharedRegion()). The caller
  /// names the region of the value it installs — it owns that value,
  /// no race can change where it points — but never the region of the
  /// value it displaces: under cross-region races only the exchange's
  /// return value knows that, which is exactly why the paper demands
  /// the write be an atomic exchange. Returns the previous value.
  template <class T>
  T *sharedExchange(std::atomic<T *> &Slot, T *NewVal,
                    SharedRegion *NewShared, unsigned Tid) {
    if (NewShared)
      addRef(NewShared, Tid);
    T *Old = Slot.exchange(NewVal, std::memory_order_acq_rel);
    if (SharedRegion *OldShared = resolveSharedRegion(Old))
      dropRef(OldShared, Tid);
    return Old;
  }

  /// Hinted fast path: as above, but the caller asserts that any value
  /// this exchange can displace belongs to \p OldShared's region (or
  /// is null / non-shared when \p OldShared is null), so the drop
  /// skips the page-map resolve. Only sound when every writer of
  /// \p Slot installs values from that one region — a single-region
  /// mailbox drained and refilled from the same shared region. When
  /// several regions' values can race through the slot, the hint is a
  /// pre-exchange guess about a post-exchange fact: use the resolving
  /// overload. RGN_HARDEN re-resolves the displaced value and aborts
  /// when the hint disagrees.
  template <class T>
  T *sharedExchange(std::atomic<T *> &Slot, T *NewVal,
                    SharedRegion *NewShared, SharedRegion *OldShared,
                    unsigned Tid) {
    if (NewShared)
      addRef(NewShared, Tid);
    T *Old = Slot.exchange(NewVal, std::memory_order_acq_rel);
    if constexpr (detail::kRsanEnabled) {
      if (Old && resolveSharedRegion(Old) != OldShared)
        reportFatalError(
            "rsan: sharedExchange hint names the wrong region for the "
            "displaced value (cross-region race through a hinted slot — "
            "use the resolving overload)");
    }
    if (OldShared && Old)
      dropRef(OldShared, Tid);
    return Old;
  }

  /// Attempts to delete the shared region: flushes the calling
  /// thread's buffered count adjustments (deletion is a count
  /// inspection), then runs the optimistic protocol — a lock-free
  /// relaxed sum that refuses immediately when visibly non-zero, a
  /// Deleting CAS that turns concurrent same-region deleters away
  /// lock-free, and only then the shard lock for the authoritative
  /// recheck, where the owning manager agrees no other counted or
  /// stack reference survives before the region is destroyed. On
  /// failure nothing changes and a later attempt may succeed. The
  /// caller must guarantee the owning manager is quiescent: either the
  /// calling thread owns it, or it was handed off via quiesce() — in
  /// which case the destructive step runs under that manager's
  /// hand-off lock so concurrent non-owner deleters never race inside
  /// the (thread-unsafe) manager.
  bool tryDelete(SharedRegion *S);

  /// Declares \p Mgr permanently quiescent: the owning thread promises
  /// to make no further use of it — no allocation, no region creation,
  /// no direct deletion — for the rest of the space's lifetime. Must
  /// be called by the owning thread (it is the promise); it flushes
  /// the caller's buffered count adjustments so everything the owner
  /// did is visible to whichever thread later deletes. From then on
  /// any thread's tryDelete may retire \p Mgr's shared regions: the
  /// ROADMAP cross-thread deletion hand-off. The manager must outlive
  /// the space or its last shared region, whichever dies first.
  void quiesce(RegionManager &Mgr);

  /// Whether \p Mgr has been quiesced into this space (diagnostics).
  bool managerQuiesced(const RegionManager &Mgr) const;

  /// Number of shared regions not yet deleted (diagnostics). Lock-free:
  /// a relaxed sum of the per-shard size counters — exact whenever the
  /// space is quiescent, a snapshot otherwise.
  std::size_t liveSharedRegions() const {
    std::size_t N = 0;
    for (const Shard &Sh : Shards)
      N += Sh.LiveCount.load(std::memory_order_relaxed);
    return N;
  }

  /// tryDelete refusals that never touched a shard lock (the visibly
  /// non-zero sum and lost-CAS paths). Diagnostics/tests: proves the
  /// polling path stays lock-free.
  std::uint64_t lockFreeRefusals() const {
    std::uint64_t N = 0;
    for (const Shard &Sh : Shards)
      N += Sh.FastRefusals.load(std::memory_order_relaxed);
    return N;
  }

  /// Which shard \p R's SharedRegion record lives in (diagnostics).
  static unsigned shardOf(const Region *R) {
    // Regions sit in their own first page, so the page number is the
    // identity; a Fibonacci multiply spreads consecutive pages (one
    // manager's back-to-back regions) across shards.
    auto Page =
        reinterpret_cast<std::uintptr_t>(R) >> kPageShift;
    return static_cast<unsigned>((Page * 0x9E3779B97F4A7C15ull) >> 32) &
           (kNumShards - 1);
  }

private:
  /// One synchronization domain: lock, live table, pooled records,
  /// and the lock-free mirrors readers poll. Padded so neighbouring
  /// shards' locks never false-share.
  struct alignas(64) Shard {
    std::mutex Lock;
    std::vector<SharedRegion *> Regions; ///< live shared regions only
    SharedRegion *FreePool = nullptr;    ///< deleted records for reuse
    /// RGN_HARDEN only: retired records are parked here instead of
    /// FreePool and never reused, so a stale SharedRegion* always
    /// points at a record whose Deleted flag stays set — addRef /
    /// dropRef / the resolve generation check then diagnose the stale
    /// handle deterministically instead of silently operating on the
    /// record's next occupant. Freed with the space.
    SharedRegion *Retired = nullptr;
    /// Regions.size(), mirrored relaxed for liveSharedRegions().
    std::atomic<std::size_t> LiveCount{0};
    /// Lock-free tryDelete refusals served from this shard's regions.
    std::atomic<std::uint64_t> FastRefusals{0};
  };

  /// One permanently-quiesced manager (see quiesce()). Non-owner
  /// deleters serialize the destructive deleteRegionRaw through Lock.
  /// Entries are appended under QuiesceLock and never removed — the
  /// list is searched by pointer identity only, so a dead manager's
  /// entry is inert — and freed with the space.
  struct QuiescedManager {
    RegionManager *Mgr;
    QuiescedManager *Next;
    std::mutex Lock;
  };

  /// The hand-off entry for \p Mgr, or null when it never quiesced.
  /// Spaces that never quiesce answer from a lock-free head probe;
  /// otherwise takes QuiesceLock. The returned entry is stable for
  /// the space's lifetime. Called on tryDelete's destruction path.
  QuiescedManager *findQuiesced(const RegionManager *Mgr) const;

  /// RGN_HARDEN: fatal when a count adjustment reaches a record whose
  /// region was already deleted — a stale handle that, with pooling,
  /// would silently adjust the record's next occupant (pooling is
  /// disabled under harden precisely so this stays detectable).
  static void rsanCheckLive(const SharedRegion *S) {
    if constexpr (detail::kRsanEnabled) {
      if (S->Deleted.load(std::memory_order_acquire))
        reportFatalError(
            "rsan: count adjustment on a retired SharedRegion record "
            "(stale shared-region handle)");
    }
  }

  /// Readies a pooled record for its next share: counts zeroed (or the
  /// slot array regrown), Detached/Deleting cleared, Deleted cleared
  /// last with release. Runs outside the shard lock on the magazine
  /// reuse path (Parallel.cpp), under it on the FreePool path.
  static void prepareRecord(SharedRegion *S, unsigned Want);

  /// Where thread \p Tid's adjustments to \p S accumulate: a private
  /// padded slot when the index fits S's array, the shared detached
  /// counter otherwise.
  static std::atomic<std::int64_t> &countSlot(SharedRegion *S,
                                              unsigned Tid) {
    return Tid < S->NumSlots ? S->Local[Tid].Count : S->Detached;
  }

  Shard Shards[kNumShards];

  // Quiesced-manager registry (cross-thread deletion hand-off). The
  // head is atomic so tryDelete can skip the lock entirely in spaces
  // where nothing ever quiesced; mutations still serialize on
  // QuiesceLock.
  mutable std::mutex QuiesceLock;
  std::atomic<QuiescedManager *> QuiescedHead{nullptr};

  // Thread-slot issuance: the one global critical section left.
  std::mutex RegLock;
  std::vector<unsigned> FreeTids; ///< recycled thread slots
  /// Slot high-water mark. Written under RegLock, read relaxed by
  /// share() on any shard to size local-count arrays: a stale (small)
  /// read only means a just-registered thread folds into Detached for
  /// that region, which the counting protocol already handles.
  std::atomic<unsigned> NextThread{0};
};

/// RAII thread registration: registers on construction, folds the
/// thread's balances and releases its slot on destruction.
class ThreadSlot {
public:
  explicit ThreadSlot(ParallelSpace &S) : Space(S), Id(S.registerThread()) {}
  ThreadSlot(const ThreadSlot &) = delete;
  ThreadSlot &operator=(const ThreadSlot &) = delete;
  ~ThreadSlot() { Space.unregisterThread(Id); }

  unsigned tid() const { return Id; }
  operator unsigned() const { return Id; }

private:
  ParallelSpace &Space;
  unsigned Id;
};

} // namespace par
} // namespace regions

#endif // REGION_PARALLEL_H
