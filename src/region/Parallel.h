//===- region/Parallel.h - Regions for explicit parallelism ----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's parallel extension (§1): "region-based memory management
/// can be used nearly unchanged in an explicitly-parallel programming
/// language. The only operations that require synchronization amongst
/// all processes are region creation and deletion. Each process keeps a
/// local reference count for each region which counts the references
/// created or deleted by that process. A region can be deleted if the
/// sum of all its local reference counts is zero. Writes of references
/// to regions must be done with an atomic exchange ... however the
/// local reference counts can be adjusted without synchronization or
/// communication."
///
/// Model: each thread owns a RegionManager (allocation never races);
/// regions shared between threads are registered with a ParallelSpace,
/// which keeps one cache-line-padded local count per thread. Shared
/// pointer slots are std::atomic; sharedExchange() performs the atomic
/// exchange and adjusts only the calling thread's local counts — a
/// thread's count may go negative (it dropped references another
/// thread created); only the sum matters.
///
/// Local-count storage is sized per SharedRegion when share() runs (at
/// least kMinCountSlots, at most the slot high-water mark), instead of
/// a fixed kMaxThreads-wide array; threads whose slot index exceeds a
/// region's array fold into one shared Detached counter, which is also
/// where unregisterThread() banks an exiting thread's balances so its
/// slot index can be reissued. SharedRegion records themselves are
/// pooled: tryDelete returns the record to a free list that the next
/// share() reuses.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_PARALLEL_H
#define REGION_PARALLEL_H

#include "region/PageMap.h"
#include "region/Region.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace regions {
namespace par {

/// Cap on simultaneously registered threads (slot indices in flight);
/// unregisterThread() recycles indices, so total thread count over a
/// space's lifetime is unbounded.
inline constexpr unsigned kMaxThreads = 32;

/// Floor on a SharedRegion's local-count array. Regions shared before
/// any thread registers (a common pattern: main shares, workers join)
/// still get uncontended per-thread slots for the first
/// kMinCountSlots thread indices.
inline constexpr unsigned kMinCountSlots = 8;

/// A region shared between threads, with per-thread local counts.
class SharedRegion {
public:
  Region *region() const { return R; }

  /// Sum of all local counts: the region's true external reference
  /// count. Only meaningful under the space's deletion lock (counts
  /// keep moving otherwise).
  std::int64_t totalCount() const {
    std::int64_t Sum = Detached.load(std::memory_order_relaxed);
    for (unsigned I = 0; I != NumSlots; ++I)
      Sum += Local[I].Count.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  friend class ParallelSpace;

  struct alignas(64) PaddedCount {
    // Relaxed atomics: each slot is written by one thread only; other
    // threads read it only under the deletion protocol.
    std::atomic<std::int64_t> Count{0};
  };

  SharedRegion() = default;
  ~SharedRegion() { delete[] Local; }

  Region *R = nullptr;
  PaddedCount *Local = nullptr; ///< owned array of NumSlots entries
  unsigned NumSlots = 0;
  std::size_t Index = 0;           ///< position in the space's live list
  SharedRegion *NextFree = nullptr; ///< free-list link while pooled
  /// Catch-all count: threads whose slot index is outside Local, plus
  /// the banked balances of unregistered threads. Contended in theory,
  /// but only ever touched by late-joining threads beyond the array.
  std::atomic<std::int64_t> Detached{0};
  bool Deleted = false;
};

/// Coordinates shared regions between threads (the paper's global
/// synchronization point for creation and deletion).
class ParallelSpace {
public:
  ParallelSpace() = default;
  ParallelSpace(const ParallelSpace &) = delete;
  ParallelSpace &operator=(const ParallelSpace &) = delete;
  ~ParallelSpace();

  /// Assigns the calling context a thread slot [0, kMaxThreads),
  /// reusing indices released by unregisterThread.
  unsigned registerThread();

  /// Releases thread slot \p Tid: its balance in every live shared
  /// region is folded into that region's detached count (the sums are
  /// unchanged), and the index becomes reusable by a later
  /// registerThread. The thread must make no further adjustments under
  /// this index. Prefer the ThreadSlot RAII wrapper.
  void unregisterThread(unsigned Tid);

  /// Wraps a region created by the calling thread's manager as shared.
  /// Creation synchronizes on the space lock (paper's requirement).
  /// The creating handle is not counted: like deleteregion's *x, the
  /// creator transfers its reference into the space. The returned
  /// record is owned by the space and may be pooled for reuse after a
  /// successful tryDelete — holding a SharedRegion* past that point is
  /// a use-after-free in spirit even though the storage stays valid.
  SharedRegion *share(Region *R);

  /// Adjusts the calling thread's local count for \p S — no
  /// synchronization, no communication (paper's fast path).
  void addRef(SharedRegion *S, unsigned Tid) {
    countSlot(S, Tid).fetch_add(1, std::memory_order_relaxed);
  }
  void dropRef(SharedRegion *S, unsigned Tid) {
    countSlot(S, Tid).fetch_sub(1, std::memory_order_relaxed);
  }

  /// The paper's shared-slot write: atomically exchanges \p Slot to
  /// \p NewVal and adjusts only the calling thread's local counts for
  /// the regions the old and new values point into. \p NewShared /
  /// \p OldOf map a pointer to its SharedRegion (null for non-shared
  /// memory). Returns the previous value.
  template <class T>
  T *sharedExchange(std::atomic<T *> &Slot, T *NewVal,
                    SharedRegion *NewShared, SharedRegion *OldShared,
                    unsigned Tid) {
    if (NewShared)
      addRef(NewShared, Tid);
    T *Old = Slot.exchange(NewVal, std::memory_order_acq_rel);
    // The exchange makes the count adjustment safe under races: the
    // value we displaced is exactly the reference we drop.
    if (OldShared && Old)
      dropRef(OldShared, Tid);
    return Old;
  }

  /// Attempts to delete the shared region: synchronizes, flushes the
  /// calling thread's buffered count adjustments (deletion is a count
  /// inspection), sums the local counts, and destroys the region iff
  /// the sum is zero and the owning manager agrees no other counted or
  /// stack reference survives. On failure nothing changes and a later
  /// attempt may succeed. The caller must guarantee the owning manager
  /// is quiescent.
  bool tryDelete(SharedRegion *S);

  /// Number of shared regions not yet deleted (diagnostics).
  std::size_t liveSharedRegions() const;

private:
  /// Where thread \p Tid's adjustments to \p S accumulate: a private
  /// padded slot when the index fits S's array, the shared detached
  /// counter otherwise.
  static std::atomic<std::int64_t> &countSlot(SharedRegion *S,
                                              unsigned Tid) {
    return Tid < S->NumSlots ? S->Local[Tid].Count : S->Detached;
  }

  mutable std::mutex Lock;
  std::vector<SharedRegion *> Regions; ///< live shared regions only
  std::vector<unsigned> FreeTids;      ///< recycled thread slots
  SharedRegion *FreePool = nullptr;    ///< deleted records for reuse
  unsigned NextThread = 0;             ///< slot high-water mark
};

/// RAII thread registration: registers on construction, folds the
/// thread's balances and releases its slot on destruction.
class ThreadSlot {
public:
  explicit ThreadSlot(ParallelSpace &S) : Space(S), Id(S.registerThread()) {}
  ThreadSlot(const ThreadSlot &) = delete;
  ThreadSlot &operator=(const ThreadSlot &) = delete;
  ~ThreadSlot() { Space.unregisterThread(Id); }

  unsigned tid() const { return Id; }
  operator unsigned() const { return Id; }

private:
  ParallelSpace &Space;
  unsigned Id;
};

} // namespace par
} // namespace regions

#endif // REGION_PARALLEL_H
