//===- region/Parallel.cpp - Regions for explicit parallelism -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "support/Compiler.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace regions;
using namespace regions::par;

namespace {

/// Per-thread magazine of retired SharedRegion records (lean builds
/// only): tryDelete stashes the record it just retired here, and the
/// same thread's next share() takes it back without touching the shard
/// lock for the pop-and-prep half of record reuse. The share/delete
/// cycle of a request-serving thread then recycles one record
/// thread-locally instead of bouncing it through the shard FreePool.
///
/// The magazine binds to one ParallelSpace at a time (records are not
/// interchangeable across spaces), binds only in registerThread — the
/// one point whose contract guarantees the matching unregisterThread
/// flush — and rebinds only when empty. Like
/// PendingCountBuffer it is constinit, aggregate, and trivially
/// destructible, so the probe is one guard-free TLS load;
/// unregisterThread flushes it back to a shard FreePool (ThreadSlot's
/// RAII covers worker threads) and ~ParallelSpace flushes the
/// destroying thread's own magazine. Hardened builds never pool
/// records at all (stale handles must keep finding Deleted set), so
/// the magazine is compiled out with the same kRsanEnabled switch.
struct RecordMagazine {
  static constexpr unsigned kCap = 4;
  ParallelSpace *Space;
  SharedRegion *Head; ///< chained through NextFree
  unsigned Count;
};

thread_local RGN_CONSTINIT RecordMagazine GMagazine;

} // namespace

void ParallelSpace::prepareRecord(SharedRegion *S, unsigned Want) {
  if (S->NumSlots < Want) {
    delete[] S->Local;
    S->Local = new SharedRegion::PaddedCount[Want];
    S->NumSlots = Want;
  } else {
    for (unsigned I = 0; I != S->NumSlots; ++I)
      S->Local[I].Count.store(0, std::memory_order_relaxed);
  }
  S->Detached.store(0, std::memory_order_relaxed);
  S->Deleting.store(false, std::memory_order_relaxed);
  S->Deleted.store(false, std::memory_order_release);
}

ParallelSpace::~ParallelSpace() {
  // Reclaim the destroying thread's own magazine before the shard
  // pools: its records belong to this space and are reachable nowhere
  // else. (Other threads must have unregistered already — ThreadSlot
  // guarantees it — which flushed their magazines into the pools.)
  if constexpr (!detail::kRsanEnabled) {
    RecordMagazine &M = GMagazine;
    if (M.Space == this) {
      while (SharedRegion *S = M.Head) {
        M.Head = S->NextFree;
        delete S;
      }
      M.Count = 0;
      M.Space = nullptr;
    }
  }
  for (Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh.Lock);
    for (SharedRegion *S : Sh.Regions) {
      // The region outlives its record here; drop the binding so no
      // later (buggy) resolve walks into freed record storage.
      if (S->R)
        S->R->clearSharedBinding();
      delete S;
    }
    while (SharedRegion *S = Sh.FreePool) {
      Sh.FreePool = S->NextFree;
      delete S;
    }
    while (SharedRegion *S = Sh.Retired) {
      Sh.Retired = S->NextFree;
      delete S;
    }
  }
  QuiescedManager *Q = QuiescedHead.load(std::memory_order_relaxed);
  while (Q) {
    QuiescedManager *Next = Q->Next;
    delete Q;
    Q = Next;
  }
}

SharedRegion *par::resolveSharedStale(const Region *R, const SharedRegion *S,
                                      std::uint64_t Gen) {
  (void)S;
  rstat::traceEvent(rstat::EventKind::ResolveStale, R->id(),
                    static_cast<std::uint32_t>(Gen));
  if constexpr (detail::kRsanEnabled)
    reportFatalError(
        "rsan: stale shared-region resolve: the displaced value's region "
        "binding was torn by a concurrent retire/rebind (a reference was "
        "still in flight when its region's record was retired)");
  // Conservative: treat the value as not-shared and drop no count. That
  // can at worst leave a sum high (a deletion delayed), never adjust a
  // record that no longer serves this region.
  return nullptr;
}

unsigned ParallelSpace::registerThread() {
  // rstat lazy attach: worker threads usually reach the library first
  // through here. No-op (one relaxed load) when tracing is disarmed.
  rstat::attachThread();
  // Bind this thread's record magazine: registration is the one point
  // where the flush is guaranteed (unregisterThread, via ThreadSlot's
  // RAII for workers), so only registered threads may stash retired
  // records thread-locally. An empty magazine may rebind; one holding
  // another space's records keeps its binding (and that space's
  // records stay out of ours).
  if constexpr (!detail::kRsanEnabled) {
    RecordMagazine &M = GMagazine;
    if (M.Count == 0)
      M.Space = this;
  }
  std::lock_guard<std::mutex> Guard(RegLock);
  if (!FreeTids.empty()) {
    unsigned Tid = FreeTids.back();
    FreeTids.pop_back();
    return Tid;
  }
  unsigned Next = NextThread.load(std::memory_order_relaxed);
  if (Next == kMaxThreads)
    reportFatalError("ParallelSpace: too many threads registered");
  // Relaxed is enough: a share() that misses this publication sizes
  // its array short and the new thread folds into Detached — counted
  // correctly either way.
  NextThread.store(Next + 1, std::memory_order_relaxed);
  return Next;
}

void ParallelSpace::unregisterThread(unsigned Tid) {
  assert(Tid < NextThread.load(std::memory_order_relaxed) &&
         "unregistering a slot that was never issued");
  // Bank this thread's balances so the sums are unchanged when the
  // index is reissued to a thread starting from zero. One shard at a
  // time: regions shared on other shards meanwhile have a zero count
  // under this index (the exiting thread makes no more adjustments),
  // so there is nothing to miss. Pooled regions are already deleted;
  // their counts are dead.
  for (Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh.Lock);
    for (SharedRegion *S : Sh.Regions) {
      if (Tid >= S->NumSlots)
        continue; // already accumulating in Detached
      std::int64_t Balance =
          S->Local[Tid].Count.exchange(0, std::memory_order_relaxed);
      if (Balance)
        S->Detached.fetch_add(Balance, std::memory_order_relaxed);
    }
  }
  // Flush this thread's record magazine back to a shard pool: the
  // records must outlive the thread (the space owns them), and a
  // dangling space binding must not survive into whatever this thread
  // does next. Records are shard-agnostic — Index is reassigned at
  // share — so any pool can absorb them.
  if constexpr (!detail::kRsanEnabled) {
    RecordMagazine &M = GMagazine;
    if (M.Space == this) {
      if (M.Head) {
        Shard &Sh = Shards[0];
        std::lock_guard<std::mutex> Guard(Sh.Lock);
        while (SharedRegion *S = M.Head) {
          M.Head = S->NextFree;
          S->NextFree = Sh.FreePool;
          Sh.FreePool = S;
        }
      }
      M.Count = 0;
      M.Space = nullptr;
    }
  }
  // Only after the banking walk may the index be reissued: a new
  // thread starting on this slot must never race the exchange above.
  std::lock_guard<std::mutex> Guard(RegLock);
  assert(std::find(FreeTids.begin(), FreeTids.end(), Tid) ==
             FreeTids.end() &&
         "double unregisterThread: slot is already free, a reissued "
         "thread would silently share it");
  FreeTids.push_back(Tid);
}

SharedRegion *ParallelSpace::share(Region *R) {
  assert(R && "sharing a null region");
  // Size the local-count array to the slot high-water mark (with a
  // floor for shares that precede registration); indices issued later
  // than that fold into Detached.
  unsigned Registered = NextThread.load(std::memory_order_relaxed);
  unsigned Want = Registered > kMinCountSlots ? Registered : kMinCountSlots;
  // Record reuse, fastest source first: this thread's magazine (no
  // lock at all — the pop *and* the reset run outside the shard lock),
  // then the shard FreePool, then a fresh allocation.
  SharedRegion *S = nullptr;
  if constexpr (!detail::kRsanEnabled) {
    RecordMagazine &M = GMagazine;
    if (M.Space == this && M.Head) {
      S = M.Head;
      M.Head = S->NextFree;
      --M.Count;
      S->NextFree = nullptr;
      prepareRecord(S, Want);
    }
  }
  unsigned ShardIdx = shardOf(R);
  Shard &Sh = Shards[ShardIdx];
  std::lock_guard<std::mutex> Guard(Sh.Lock);
  if (!S) {
    S = Sh.FreePool;
    if (S) {
      Sh.FreePool = S->NextFree;
      S->NextFree = nullptr;
      prepareRecord(S, Want);
    } else {
      S = new SharedRegion();
      S->Local = new SharedRegion::PaddedCount[Want];
      S->NumSlots = Want;
    }
  }
  S->R = R;
  S->RegionId = R->id();
  // Publish the Region → record binding resolving exchanges walk. The
  // generation moves odd (bound); a resolver that reads this binding
  // together with this stamp knows the record still serves R. The
  // release store in bindShared orders the whole record setup above
  // before the binding becomes visible.
  assert(!R->sharedBinding() && "share: region is already shared");
  std::uint64_t Gen = S->Gen.fetch_add(1, std::memory_order_relaxed) + 1;
  assert(Gen % 2 == 1 && "bound records carry odd generations");
  R->bindShared(S, Gen);
  S->Index = Sh.Regions.size();
  Sh.Regions.push_back(S);
  Sh.LiveCount.store(Sh.Regions.size(), std::memory_order_relaxed);
  rstat::traceEvent(rstat::EventKind::ShareRegion, S->RegionId, ShardIdx);
  return S;
}

bool ParallelSpace::tryDelete(SharedRegion *S) {
  // Deletion is a count inspection: the calling thread's buffered
  // barrier adjustments must be visible in the region counts first —
  // before even the optimistic sum, or a zero-looking region could be
  // refused on this thread's own stale +1.
  detail::flushPendingCounts();
  if (S->Deleted.load(std::memory_order_acquire))
    return false;
  Shard &Sh = Shards[shardOf(S->R)];
  // Optimistic refusal: a visibly non-zero relaxed sum means this call
  // could only refuse, so refuse without a lock. Polling threads
  // ("is the request region dead yet?") pay reads only and never
  // convoy behind each other. Spurious non-zero is impossible for the
  // caller's own contribution (flushed above, and its slot is its own
  // writes); cross-thread counts in flight can at worst turn an
  // accept into a refuse, which the contract allows at any time.
  if (S->totalCount() != 0) {
    Sh.FastRefusals.fetch_add(1, std::memory_order_relaxed);
    rstat::traceEvent(rstat::EventKind::TryDeleteRefused, S->RegionId,
                      /*LockFree=*/1);
    return false;
  }
  // The sum looks zero: arbitrate. Exactly one concurrent deleter wins
  // the flag and runs the authoritative locked recheck; losers refuse
  // lock-free instead of stampeding the shard lock. A successful
  // delete keeps the flag set (the record is pooled with it), so stale
  // retries keep failing here or at the Deleted check above.
  bool Expected = false;
  if (!S->Deleting.compare_exchange_strong(Expected, true,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
    Sh.FastRefusals.fetch_add(1, std::memory_order_relaxed);
    rstat::traceEvent(rstat::EventKind::TryDeleteRefused, S->RegionId,
                      /*LockFree=*/1);
    return false;
  }
  std::lock_guard<std::mutex> Guard(Sh.Lock);
  // Authoritative recheck under the shard lock, same condition the
  // single-mutex design enforced: the summed local counts must agree,
  // and the owning manager has the last word (counted references from
  // its own heap, live stack locals). A refusal leaves the record live
  // so a later attempt can succeed.
  if (S->totalCount() != 0) {
    S->Deleting.store(false, std::memory_order_release);
    rstat::traceEvent(rstat::EventKind::TryDeleteRefused, S->RegionId,
                      /*LockFree=*/0);
    return false;
  }
  // The sum is authoritatively zero: no displaced-but-undropped
  // reference exists (it would carry a +1 somewhere), so no resolver
  // can legitimately be mid-walk through R's binding. Retire the
  // binding *before* the destructive step — deleteRegionRaw recycles
  // R's pages, and the binding must never be readable from recycled
  // memory — and restore it on a manager veto, under this same shard
  // lock, so the region's shared identity survives a refusal.
  Region *R = S->R;
  RegionManager &Mgr = R->manager();
  std::uint64_t BindGen = R->sharedBindingGen();
  R->clearSharedBinding();
  bool Destroyed;
  if (QuiescedManager *Q = findQuiesced(&Mgr)) {
    // Cross-thread hand-off: the owner declared the manager
    // permanently quiescent, so any thread may run the destructive
    // step — but managers are not thread-safe, so concurrent deleters
    // of this manager's regions (possibly on other shards) serialize
    // on its hand-off lock.
    std::lock_guard<std::mutex> Handoff(Q->Lock);
    Destroyed = Mgr.deleteRegionRaw(S->R);
    if (Destroyed)
      rstat::traceEvent(rstat::EventKind::TryDeleteHandoff, S->RegionId,
                        static_cast<std::uint32_t>(&Sh - Shards));
  } else {
    Destroyed = Mgr.deleteRegionRaw(S->R);
  }
  if (!Destroyed) {
    R->bindShared(S, BindGen);
    S->Deleting.store(false, std::memory_order_release);
    rstat::traceEvent(rstat::EventKind::TryDeleteRefused, S->RegionId,
                      /*LockFree=*/0);
    return false;
  }
  // Retire the record: the generation moves even, so any (record,
  // generation) pair a racing resolver tore off a stale region binding
  // fails its check instead of naming this record.
  S->Gen.fetch_add(1, std::memory_order_relaxed);
  S->Deleted.store(true, std::memory_order_release);
  // Swap-pop out of the shard's live list and pool the record. Under
  // RGN_HARDEN the record is parked on the retired list instead and
  // never reused: a stale handle then always finds Deleted set (see
  // rsanCheckLive) rather than the record's next occupant.
  SharedRegion *Back = Sh.Regions.back();
  Sh.Regions[S->Index] = Back;
  Back->Index = S->Index;
  Sh.Regions.pop_back();
  Sh.LiveCount.store(Sh.Regions.size(), std::memory_order_relaxed);
  if constexpr (detail::kRsanEnabled) {
    S->NextFree = Sh.Retired;
    Sh.Retired = S;
  } else {
    // Stash into the deleting thread's magazine when it has room: the
    // common share→work→tryDelete loop then recycles the record with
    // no shard-pool traffic at all. Only registered threads carry a
    // bound magazine (registerThread binds, unregisterThread flushes —
    // a raw deleter thread that exits without unregistering would
    // strand stashed records forever), and one holding another
    // space's records must not mix.
    RecordMagazine &M = GMagazine;
    if (M.Space == this && M.Count < RecordMagazine::kCap) {
      S->NextFree = M.Head;
      M.Head = S;
      ++M.Count;
    } else {
      S->NextFree = Sh.FreePool;
      Sh.FreePool = S;
    }
  }
  rstat::traceEvent(rstat::EventKind::TryDeleteOk, S->RegionId,
                    static_cast<std::uint32_t>(&Sh - Shards));
  return true;
}

void ParallelSpace::quiesce(RegionManager &Mgr) {
  // The owner's buffered barrier adjustments are part of what it hands
  // off: land them while this is still unambiguously the owning thread.
  detail::flushPendingCounts();
  auto *Entry = new QuiescedManager;
  Entry->Mgr = &Mgr;
  std::lock_guard<std::mutex> Guard(QuiesceLock);
  QuiescedManager *Head = QuiescedHead.load(std::memory_order_relaxed);
  for (QuiescedManager *Q = Head; Q; Q = Q->Next)
    assert(Q->Mgr != &Mgr && "quiesce: manager already quiesced");
  (void)Head;
  Entry->Next = Head;
  // Release so a deleter whose lock-free head probe sees the entry
  // also sees its fields (list traversal does not retake the lock's
  // ordering on the probe-only path).
  QuiescedHead.store(Entry, std::memory_order_release);
  // Releasing QuiesceLock publishes everything the owner did with Mgr
  // to any deleter that later finds the entry under the same lock.
  rstat::traceEvent(rstat::EventKind::ManagerQuiesced,
                    Mgr.liveRegionCount());
}

bool ParallelSpace::managerQuiesced(const RegionManager &Mgr) const {
  return findQuiesced(&Mgr) != nullptr;
}

ParallelSpace::QuiescedManager *
ParallelSpace::findQuiesced(const RegionManager *Mgr) const {
  // Fast path: a space where nothing ever quiesced pays one relaxed
  // load here, not a mutex round-trip per successful tryDelete. A
  // deleter entitled to find Mgr's entry synchronized with the owner's
  // quiesce() by other means (thread join, message), so its probe
  // cannot miss the entry.
  if (!QuiescedHead.load(std::memory_order_acquire))
    return nullptr;
  std::lock_guard<std::mutex> Guard(QuiesceLock);
  for (QuiescedManager *Q = QuiescedHead.load(std::memory_order_relaxed);
       Q; Q = Q->Next)
    if (Q->Mgr == Mgr)
      return Q;
  return nullptr;
}
