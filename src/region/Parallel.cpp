//===- region/Parallel.cpp - Regions for explicit parallelism -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "support/Compiler.h"

#include <cassert>

using namespace regions;
using namespace regions::par;

ParallelSpace::~ParallelSpace() {
  std::lock_guard<std::mutex> Guard(Lock);
  for (SharedRegion *S : Regions)
    delete S;
}

unsigned ParallelSpace::registerThread() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (NextThread == kMaxThreads)
    reportFatalError("ParallelSpace: too many threads registered");
  return NextThread++;
}

SharedRegion *ParallelSpace::share(Region *R) {
  assert(R && "sharing a null region");
  auto *S = new SharedRegion();
  S->R = R;
  std::lock_guard<std::mutex> Guard(Lock);
  Regions.push_back(S);
  return S;
}

bool ParallelSpace::tryDelete(SharedRegion *S) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (S->Deleted)
    return false;
  if (S->totalCount() != 0)
    return false;
  Region *R = S->R;
  bool Ok = R->manager().deleteRegionRaw(R);
  assert(Ok && "shared deletion uses the unchecked single-thread path");
  (void)Ok;
  S->R = nullptr;
  S->Deleted = true;
  return true;
}

std::size_t ParallelSpace::liveSharedRegions() const {
  std::lock_guard<std::mutex> Guard(Lock);
  std::size_t Live = 0;
  for (const SharedRegion *S : Regions)
    Live += !S->Deleted;
  return Live;
}
