//===- region/Parallel.cpp - Regions for explicit parallelism -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "support/Compiler.h"
#include "support/Trace.h"

#include <cassert>

using namespace regions;
using namespace regions::par;

ParallelSpace::~ParallelSpace() {
  std::lock_guard<std::mutex> Guard(Lock);
  for (SharedRegion *S : Regions)
    delete S;
  while (SharedRegion *S = FreePool) {
    FreePool = S->NextFree;
    delete S;
  }
}

unsigned ParallelSpace::registerThread() {
  // rstat lazy attach: worker threads usually reach the library first
  // through here. No-op (one relaxed load) when tracing is disarmed.
  rstat::attachThread();
  std::lock_guard<std::mutex> Guard(Lock);
  if (!FreeTids.empty()) {
    unsigned Tid = FreeTids.back();
    FreeTids.pop_back();
    return Tid;
  }
  if (NextThread == kMaxThreads)
    reportFatalError("ParallelSpace: too many threads registered");
  return NextThread++;
}

void ParallelSpace::unregisterThread(unsigned Tid) {
  std::lock_guard<std::mutex> Guard(Lock);
  assert(Tid < NextThread && "unregistering a slot that was never issued");
  // Bank this thread's balances so the sums are unchanged when the
  // index is reissued to a thread starting from zero. Regions in the
  // free pool are already deleted; their counts are dead.
  for (SharedRegion *S : Regions) {
    if (Tid >= S->NumSlots)
      continue; // already accumulating in Detached
    std::int64_t Balance =
        S->Local[Tid].Count.exchange(0, std::memory_order_relaxed);
    if (Balance)
      S->Detached.fetch_add(Balance, std::memory_order_relaxed);
  }
  FreeTids.push_back(Tid);
}

SharedRegion *ParallelSpace::share(Region *R) {
  assert(R && "sharing a null region");
  std::lock_guard<std::mutex> Guard(Lock);
  // Size the local-count array to the slot high-water mark (with a
  // floor for shares that precede registration); indices issued later
  // than that fold into Detached.
  unsigned Want = NextThread > kMinCountSlots ? NextThread : kMinCountSlots;
  SharedRegion *S = FreePool;
  if (S) {
    FreePool = S->NextFree;
    S->NextFree = nullptr;
    if (S->NumSlots < Want) {
      delete[] S->Local;
      S->Local = new SharedRegion::PaddedCount[Want];
      S->NumSlots = Want;
    } else {
      for (unsigned I = 0; I != S->NumSlots; ++I)
        S->Local[I].Count.store(0, std::memory_order_relaxed);
    }
    S->Detached.store(0, std::memory_order_relaxed);
    S->Deleted = false;
  } else {
    S = new SharedRegion();
    S->Local = new SharedRegion::PaddedCount[Want];
    S->NumSlots = Want;
  }
  S->R = R;
  S->Index = Regions.size();
  Regions.push_back(S);
  return S;
}

bool ParallelSpace::tryDelete(SharedRegion *S) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (S->Deleted)
    return false;
  // Deletion is a count inspection: the calling thread's buffered
  // barrier adjustments must be visible in the region counts first.
  detail::flushPendingCounts();
  if (S->totalCount() != 0)
    return false;
  // The summed local counts agree, but the owning manager has the last
  // word (counted references from its own heap, live stack locals). A
  // refusal leaves the record live so a later attempt can succeed.
  RegionManager &Mgr = S->R->manager();
  if (!Mgr.deleteRegionRaw(S->R))
    return false;
  S->Deleted = true;
  // Swap-pop out of the live list and pool the record for reuse.
  SharedRegion *Back = Regions.back();
  Regions[S->Index] = Back;
  Back->Index = S->Index;
  Regions.pop_back();
  S->NextFree = FreePool;
  FreePool = S;
  return true;
}

std::size_t ParallelSpace::liveSharedRegions() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Regions.size();
}
