//===- region/Parallel.cpp - Regions for explicit parallelism -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "support/Compiler.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace regions;
using namespace regions::par;

ParallelSpace::~ParallelSpace() {
  for (Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh.Lock);
    for (SharedRegion *S : Sh.Regions)
      delete S;
    while (SharedRegion *S = Sh.FreePool) {
      Sh.FreePool = S->NextFree;
      delete S;
    }
  }
}

unsigned ParallelSpace::registerThread() {
  // rstat lazy attach: worker threads usually reach the library first
  // through here. No-op (one relaxed load) when tracing is disarmed.
  rstat::attachThread();
  std::lock_guard<std::mutex> Guard(RegLock);
  if (!FreeTids.empty()) {
    unsigned Tid = FreeTids.back();
    FreeTids.pop_back();
    return Tid;
  }
  unsigned Next = NextThread.load(std::memory_order_relaxed);
  if (Next == kMaxThreads)
    reportFatalError("ParallelSpace: too many threads registered");
  // Relaxed is enough: a share() that misses this publication sizes
  // its array short and the new thread folds into Detached — counted
  // correctly either way.
  NextThread.store(Next + 1, std::memory_order_relaxed);
  return Next;
}

void ParallelSpace::unregisterThread(unsigned Tid) {
  assert(Tid < NextThread.load(std::memory_order_relaxed) &&
         "unregistering a slot that was never issued");
  // Bank this thread's balances so the sums are unchanged when the
  // index is reissued to a thread starting from zero. One shard at a
  // time: regions shared on other shards meanwhile have a zero count
  // under this index (the exiting thread makes no more adjustments),
  // so there is nothing to miss. Pooled regions are already deleted;
  // their counts are dead.
  for (Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh.Lock);
    for (SharedRegion *S : Sh.Regions) {
      if (Tid >= S->NumSlots)
        continue; // already accumulating in Detached
      std::int64_t Balance =
          S->Local[Tid].Count.exchange(0, std::memory_order_relaxed);
      if (Balance)
        S->Detached.fetch_add(Balance, std::memory_order_relaxed);
    }
  }
  // Only after the banking walk may the index be reissued: a new
  // thread starting on this slot must never race the exchange above.
  std::lock_guard<std::mutex> Guard(RegLock);
  assert(std::find(FreeTids.begin(), FreeTids.end(), Tid) ==
             FreeTids.end() &&
         "double unregisterThread: slot is already free, a reissued "
         "thread would silently share it");
  FreeTids.push_back(Tid);
}

SharedRegion *ParallelSpace::share(Region *R) {
  assert(R && "sharing a null region");
  // Size the local-count array to the slot high-water mark (with a
  // floor for shares that precede registration); indices issued later
  // than that fold into Detached.
  unsigned Registered = NextThread.load(std::memory_order_relaxed);
  unsigned Want = Registered > kMinCountSlots ? Registered : kMinCountSlots;
  unsigned ShardIdx = shardOf(R);
  Shard &Sh = Shards[ShardIdx];
  std::lock_guard<std::mutex> Guard(Sh.Lock);
  SharedRegion *S = Sh.FreePool;
  if (S) {
    Sh.FreePool = S->NextFree;
    S->NextFree = nullptr;
    if (S->NumSlots < Want) {
      delete[] S->Local;
      S->Local = new SharedRegion::PaddedCount[Want];
      S->NumSlots = Want;
    } else {
      for (unsigned I = 0; I != S->NumSlots; ++I)
        S->Local[I].Count.store(0, std::memory_order_relaxed);
    }
    S->Detached.store(0, std::memory_order_relaxed);
    S->Deleting.store(false, std::memory_order_relaxed);
    S->Deleted.store(false, std::memory_order_release);
  } else {
    S = new SharedRegion();
    S->Local = new SharedRegion::PaddedCount[Want];
    S->NumSlots = Want;
  }
  S->R = R;
  S->RegionId = R->id();
  S->Index = Sh.Regions.size();
  Sh.Regions.push_back(S);
  Sh.LiveCount.store(Sh.Regions.size(), std::memory_order_relaxed);
  rstat::traceEvent(rstat::EventKind::ShareRegion, S->RegionId, ShardIdx);
  return S;
}

bool ParallelSpace::tryDelete(SharedRegion *S) {
  // Deletion is a count inspection: the calling thread's buffered
  // barrier adjustments must be visible in the region counts first —
  // before even the optimistic sum, or a zero-looking region could be
  // refused on this thread's own stale +1.
  detail::flushPendingCounts();
  if (S->Deleted.load(std::memory_order_acquire))
    return false;
  Shard &Sh = Shards[shardOf(S->R)];
  // Optimistic refusal: a visibly non-zero relaxed sum means this call
  // could only refuse, so refuse without a lock. Polling threads
  // ("is the request region dead yet?") pay reads only and never
  // convoy behind each other. Spurious non-zero is impossible for the
  // caller's own contribution (flushed above, and its slot is its own
  // writes); cross-thread counts in flight can at worst turn an
  // accept into a refuse, which the contract allows at any time.
  if (S->totalCount() != 0) {
    Sh.FastRefusals.fetch_add(1, std::memory_order_relaxed);
    rstat::traceEvent(rstat::EventKind::TryDeleteRefused, S->RegionId,
                      /*LockFree=*/1);
    return false;
  }
  // The sum looks zero: arbitrate. Exactly one concurrent deleter wins
  // the flag and runs the authoritative locked recheck; losers refuse
  // lock-free instead of stampeding the shard lock. A successful
  // delete keeps the flag set (the record is pooled with it), so stale
  // retries keep failing here or at the Deleted check above.
  bool Expected = false;
  if (!S->Deleting.compare_exchange_strong(Expected, true,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
    Sh.FastRefusals.fetch_add(1, std::memory_order_relaxed);
    rstat::traceEvent(rstat::EventKind::TryDeleteRefused, S->RegionId,
                      /*LockFree=*/1);
    return false;
  }
  std::lock_guard<std::mutex> Guard(Sh.Lock);
  // Authoritative recheck under the shard lock, same condition the
  // single-mutex design enforced: the summed local counts must agree,
  // and the owning manager has the last word (counted references from
  // its own heap, live stack locals). A refusal leaves the record live
  // so a later attempt can succeed.
  if (S->totalCount() != 0 || !S->R->manager().deleteRegionRaw(S->R)) {
    S->Deleting.store(false, std::memory_order_release);
    rstat::traceEvent(rstat::EventKind::TryDeleteRefused, S->RegionId,
                      /*LockFree=*/0);
    return false;
  }
  S->Deleted.store(true, std::memory_order_release);
  // Swap-pop out of the shard's live list and pool the record.
  SharedRegion *Back = Sh.Regions.back();
  Sh.Regions[S->Index] = Back;
  Back->Index = S->Index;
  Sh.Regions.pop_back();
  Sh.LiveCount.store(Sh.Regions.size(), std::memory_order_relaxed);
  S->NextFree = Sh.FreePool;
  Sh.FreePool = S;
  rstat::traceEvent(rstat::EventKind::TryDeleteOk, S->RegionId,
                    static_cast<std::uint32_t>(&Sh - Shards));
  return true;
}
