//===- region/Debug.h - Region debugging aids ------------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's porting experience (§5.1): "The other difficulty is
/// finding stale pointers that prevent a region from being deleted; an
/// environment for debugging regions would be helpful here." This is
/// that environment: a non-mutating diagnosis of why deleteRegion
/// would refuse, naming every registered stack slot that still points
/// into the region and the residual counted (heap/global) references.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_DEBUG_H
#define REGION_DEBUG_H

#include "region/Region.h"

#include <cstdio>
#include <vector>

namespace regions {

/// Why a deleteRegion call would fail right now.
struct DeletionDiagnosis {
  /// Deletion would succeed (given the excluded handle, if any).
  bool WouldSucceed = false;

  /// Counted references (from other regions, globals, and already-
  /// scanned frames), excluding the handle when it is counted.
  long long CountedRefs = 0;

  /// Addresses of registered local slots (rt::Ref storage) in
  /// *unscanned* frames whose current value points into the region,
  /// excluding the handle's slot. These are the "stale pointers" the
  /// paper's porters hunted by hand.
  std::vector<void *const *> BlockingStackSlots;

  /// Values those slots currently hold (parallel array).
  std::vector<const void *> BlockingStackValues;
};

/// Diagnoses deletion of \p R as if calling deleteRegion through
/// \p HandleSlot (may be null for anonymous deletion; \p HandleCounted
/// as in RegionManager::deleteRegionImpl). Unlike deleteRegion, this
/// performs no stack scan and changes no state.
DeletionDiagnosis diagnoseDeletion(Region *R, void *const *HandleSlot,
                                   bool HandleCounted);

/// Diagnoses deletion through a registered local handle (rt::Ref) —
/// usable with any slot address.
inline DeletionDiagnosis diagnoseDeletion(Region *R,
                                          void *const *HandleSlot) {
  return diagnoseDeletion(R, HandleSlot, /*HandleCounted=*/false);
}

/// Diagnoses anonymous deletion (no excluded handle).
inline DeletionDiagnosis diagnoseDeletion(Region *R) {
  return diagnoseDeletion(R, nullptr, false);
}

/// Prints a human-readable diagnosis to \p Out (stderr-style report).
void printDiagnosis(const DeletionDiagnosis &D, Region *R,
                    std::FILE *Out = stderr);

/// Prints a one-page summary of a manager's statistics.
void printManagerReport(const RegionManager &Mgr, std::FILE *Out = stdout);

/// On-demand rsan validation of one live region (RGN_HARDEN builds;
/// see support/Harden.h): walks every allocation's size header and
/// red-zone canary without mutating the region. Without RGN_HARDEN
/// there is no hardened metadata and the report comes back with
/// Checked == false. Violations are reported, not fatal — pair with
/// printRsanReport, or test clean() directly.
inline RsanReport rsanCheckRegion(const Region *R) {
  return R->manager().rsanValidate(R, /*FatalOnViolation=*/false);
}

/// Prints a human-readable rsan validation report (stderr-style).
void printRsanReport(const RsanReport &Rep, const Region *R,
                     std::FILE *Out = stderr);

} // namespace regions

#endif // REGION_DEBUG_H
