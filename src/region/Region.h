//===- region/Region.h - Explicit region memory management -----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core of the paper: page-based regions with cheap allocation and
/// whole-region deallocation, plus the *safe* variant in which
/// deleteRegion succeeds only when no external references remain.
///
/// Paper interface (Figure 2)   → this library
///   Region newregion()          → RegionManager::newRegion()
///   ralloc(r, size, cleanup)    → rnew<T>(R, args...) (cleanup = ~T())
///   rarrayalloc(r, n, sz, cl)   → rnewArray<T>(R, n)
///   rstralloc(r, size)          → allocRaw / rnew<T> for trivial T
///   regionof(x)                 → regionOf(Ptr)  (see PageMap.h)
///   deleteregion(&r)            → deleteRegion(Handle) (see RegionPtr.h)
///
/// Layout follows §4.1: regions allocate from 4 KB pages with bump
/// allocation on the newest page; each region has two sub-allocators,
/// one for objects that may contain region pointers ("normal", with a
/// per-object cleanup header and a NULL end marker per page) and one for
/// pointer-free data ("str", headerless). The region structure itself
/// lives in the region's first page, offset by successive multiples of
/// 64 bytes to reduce cache conflicts between region structures.
///
/// Extension beyond the paper's prototype (§4.1 footnote): allocations
/// larger than a page are supported via dedicated page runs, without
/// affecting the cost of small allocations.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_REGION_H
#define REGION_REGION_H

#include "region/PageMap.h"
#include "support/Align.h"
#include "support/Compiler.h"
#include "support/Harden.h"
#include "support/PageSource.h"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace regions {

class RegionManager;
struct MetricsSnapshot;

namespace rt {
struct SlotNode;
} // namespace rt

namespace par {
class SharedRegion;
} // namespace par

namespace detail {

/// One contiguous run of pages owned by a region, as an (index, length)
/// pair relative to the manager's arena base. Regions grow by grabbing
/// geometrically growing runs and record each one here, so deletion
/// frees O(runs) instead of walking O(pages) of chained headers.
struct PageRun {
  std::uint32_t PageIdx;
  std::uint32_t NumPages;
};

/// Buckets in the rstat region histograms (region/Metrics.h): log2
/// buckets over 64-bit counts — bucket 0 for zero, bucket n for values
/// in (2^(n-2), 2^(n-1)].
inline constexpr unsigned kMetricsLogBuckets = 33;

/// Histogram bucket for \p Value under the scheme above.
inline unsigned metricsBucket(std::uint64_t Value) {
  if (Value == 0)
    return 0;
  unsigned Log = 64u - static_cast<unsigned>(__builtin_clzll(Value));
  return Log < kMetricsLogBuckets ? Log : kMetricsLogBuckets - 1;
}

} // namespace detail

/// Cleanup header stored before every object in a normal page (the
/// paper's \c cleanup_t). The thunk finalizes one object (running
/// destructors, which decrement cross-region reference counts via
/// RegionPtr) and returns the payload size so the region scan can
/// advance (§4.2.4, Figure 7). For arrays the payload begins with the
/// element count.
using ScanThunk = std::size_t (*)(void *Payload);

/// Which safety mechanisms are active (§4.2 / Figure 11). The paper's
/// "safe" library enables all four; its "unsafe" library disables all
/// reference-count support. Individual toggles exist so the Figure 11
/// harness can attribute the cost of each component.
struct SafetyConfig {
  /// Maintain exact reference counts on heap/global pointer writes
  /// (the Figure 5 write barriers).
  bool RefCounts = true;
  /// Maintain the high-water-mark protocol: deleteRegion scans the
  /// shadow stack, frame pops unscan, and deletion honours live locals.
  bool StackScan = true;
  /// Run cleanup thunks (finalizers / cross-region decrements) when a
  /// region is deleted.
  bool CleanupScan = true;
  /// Clear memory returned by the normal allocator, as the paper's
  /// ralloc does (required in C@ so region pointers start NULL).
  bool ZeroMemory = true;

  static constexpr SafetyConfig safeConfig() { return SafetyConfig{}; }
  static constexpr SafetyConfig unsafeConfig() {
    return SafetyConfig{false, false, false, false};
  }
};

/// Counters for the paper's tables and cost breakdowns. All sizes are
/// programmer-requested bytes (headers and page slack excluded); the
/// OS-level number is RegionManager::osBytes().
///
/// Per-allocation counters (TotalAllocs, TotalRequestedBytes, the live/
/// max byte watermarks and MaxRegionBytes) are maintained *deferred*:
/// the allocation fast path touches only region-local fields, and the
/// global view is folded together when a region is deleted and on
/// demand in RegionManager::stats(). The values stats() reports are
/// identical to eager per-allocation accounting — live bytes only ever
/// drop at region deletion, so sampling the watermarks there and at
/// stats() time observes every peak.
struct RegionStats {
  std::uint64_t TotalAllocs = 0;
  std::uint64_t TotalRequestedBytes = 0;
  std::uint64_t LiveRequestedBytes = 0;
  std::uint64_t MaxLiveRequestedBytes = 0;
  std::uint64_t TotalRegions = 0;
  std::uint64_t LiveRegions = 0;
  std::uint64_t MaxLiveRegions = 0;
  std::uint64_t MaxRegionBytes = 0; ///< largest single region, requested bytes
  std::uint64_t DeleteAttempts = 0;
  std::uint64_t DeleteFailures = 0;
  // In-place recycling (rpool; region/Pool.h). A successful reset ends
  // one logical region and starts another in the same storage, so it
  // bumps TotalRegions like newRegion while LiveRegions stays put.
  std::uint64_t ResetRegions = 0;  ///< successful in-place resets
  std::uint64_t ResetRefusals = 0; ///< resets refused on live references
  std::uint64_t CleanupThunksRun = 0;
  // Write-barrier behaviour (Figure 5 paths).
  std::uint64_t BarrierStores = 0;        ///< barriered pointer stores
  std::uint64_t BarrierSameRegion = 0;    ///< stores skipped as sameregion
  std::uint64_t BarrierAdjustments = 0;   ///< actual count increments+decrements
};

/// Counters for the rpool region-recycling layer (region/Pool.h),
/// aggregated per manager across every RegionPool built over it and
/// surfaced through MetricsSnapshot. Cold: bumped only on the pool's
/// acquire/release/trim paths, never on allocation.
struct PoolStats {
  std::uint64_t Hits = 0;     ///< acquire() served from the cache
  std::uint64_t Misses = 0;   ///< acquire() fell through to newRegion
  std::uint64_t Releases = 0; ///< release() parked a reset region
  std::uint64_t Trims = 0;    ///< regions deleted to honour the budget
};

/// Result of an rsan validation walk over one region (RGN_HARDEN
/// builds; see RegionManager::rsanValidate and rsanCheckRegion in
/// region/Debug.h).
struct RsanReport {
  /// False when the build has no hardened metadata to check
  /// (RGN_HARDEN off): the walk was skipped, the counters mean nothing.
  bool Checked = false;
  std::uint64_t ObjectsChecked = 0;
  /// Objects whose red-zone canary was overwritten (heap overflow past
  /// the payload).
  std::uint64_t RedZoneViolations = 0;
  /// Corrupted size headers (an overflow that reached the *next*
  /// object's metadata, or a wild write).
  std::uint64_t MetadataViolations = 0;

  bool clean() const {
    return RedZoneViolations == 0 && MetadataViolations == 0;
  }
};

/// A region: a set of pages freed all at once. Instances live inside
/// their own first page and are created/destroyed exclusively through
/// RegionManager; the type is standard-layout and trivially destructible
/// because region deletion reclaims it as raw pages.
class Region {
public:
  /// Current reference count: the number of counted external references
  /// (from other regions, global storage, and scanned stack frames).
  /// Flushes the calling thread's buffered count adjustments first, so
  /// the value observed is always the exact count.
  long long referenceCount() const;

  /// The manager that owns this region.
  RegionManager &manager() const { return *Mgr; }

  /// Number of objects allocated in this region so far.
  std::size_t allocCount() const { return NumAllocs; }

  /// Programmer-requested bytes allocated in this region so far.
  std::size_t requestedBytes() const { return ReqBytes; }

  /// Creation sequence number within the manager. resetRegion() stamps
  /// a fresh id, so a recycled region is a new logical region even
  /// though its storage (and address) survive.
  unsigned id() const { return Id; }

  /// Pages currently owned by this region across every recorded run
  /// (growth and large-object runs alike). O(runs) — cold; feeds the
  /// pool's retention-budget accounting and teardown tests.
  std::size_t ownedPages() const {
    std::size_t N = 0;
    for (std::uint32_t I = 0; I != NumRuns; ++I)
      N += runAt(I).NumPages;
    return N;
  }

  /// Adjusts the reference count. Internal: used by the write barrier
  /// and the shadow-stack scan; exposed for tests and advanced clients.
  void rcAdd(long long Delta) { RC += Delta; }

  /// Whether this region's manager maintains exact reference counts
  /// (a creation-time copy of SafetyConfig::RefCounts, so the write
  /// barrier never needs the manager's cache lines).
  bool countsRefs() const { return CountRefs; }

  /// \name Region → SharedRegion binding (parallel extension)
  /// The inverse of SharedRegion::region(): par::ParallelSpace::share()
  /// publishes the record here (under the region's shard lock) so a
  /// displaced pointer can be resolved page-map-first — regionOf(ptr)
  /// then sharedBinding() — to the record whose count it holds, instead
  /// of trusting a caller's pre-exchange guess. tryDelete() retires the
  /// binding before the region's pages are freed. The paired generation
  /// is a creation stamp copied from the record at bind time: a reader
  /// that raced record retirement detects the mismatch instead of
  /// adjusting a pooled-and-reused record's count (see Parallel.h,
  /// resolveSharedRegion()).
  /// @{
  par::SharedRegion *sharedBinding() const {
    return SharedRec.load(std::memory_order_acquire);
  }
  /// The generation the current binding was published with. Relaxed:
  /// ordered by the acquire load of the record pointer (the writer
  /// stores the generation first, then the pointer with release).
  std::uint64_t sharedBindingGen() const {
    return SharedRecGen.load(std::memory_order_relaxed);
  }
  void bindShared(par::SharedRegion *S, std::uint64_t Gen) {
    SharedRecGen.store(Gen, std::memory_order_relaxed);
    SharedRec.store(S, std::memory_order_release);
  }
  void clearSharedBinding() {
    SharedRec.store(nullptr, std::memory_order_release);
  }
  /// @}

  /// The three barrier counters ride in one packed word so a store's
  /// bookkeeping is a single read-modify-write: stores in bits [0,21),
  /// count adjustments in [21,42), sameregion stores in [42,63). The
  /// word spills into the wide Barrier*Delta fields every 2^19 stores —
  /// before any field can saturate (adjustments grow at most twice per
  /// store, so they stay under 2^20 between spills).
  static constexpr unsigned kBarrierAdjShift = 21;
  static constexpr unsigned kBarrierSameShift = 42;
  static constexpr std::uint64_t kBarrierFieldMask = (1ull << 21) - 1;
  static constexpr std::uint64_t kBarrierSpillMask = (1ull << 19) - 1;

  /// Records one barrier event, pre-packed by the caller: 1 for the
  /// store itself, plus (adjustments << kBarrierAdjShift) and
  /// (sameregion << kBarrierSameShift). Deferred: lands on this
  /// region's own counter and is folded into the manager's view at
  /// stats()/deletion time.
  void noteBarrierEvent(std::uint64_t Event) {
    BarrierPacked += Event;
    if (RGN_UNLIKELY((BarrierPacked & kBarrierSpillMask) == 0))
      spillBarrierPacked();
  }

  /// Barrier bookkeeping for a store resolved as sameregion.
  void noteSameRegionStore() {
    noteBarrierEvent(1 + (1ull << kBarrierSameShift));
  }

  /// Barrier stores attributed to this region, spilled plus live.
  std::uint64_t barrierStores() const {
    return BarrierStoresDelta + (BarrierPacked & kBarrierFieldMask);
  }
  std::uint64_t barrierSameRegion() const {
    return BarrierSameRegionDelta +
           ((BarrierPacked >> kBarrierSameShift) & kBarrierFieldMask);
  }
  std::uint64_t barrierAdjustments() const {
    return BarrierAdjustmentsDelta +
           ((BarrierPacked >> kBarrierAdjShift) & kBarrierFieldMask);
  }

private:
  friend class RegionManager;

  /// Page runs grow geometrically (1, 1, 2, 2, 4, 4, 8, 8, then
  /// kMaxRunPages pages — see carvePage) and are capped at
  /// PageSource::kMaxBin so every freed run recycles through an
  /// exact-size bin.
  static constexpr std::uint32_t kMaxRunPages =
      static_cast<std::uint32_t>(PageSource::kMaxBin);

  /// Runs held inline in the region structure; a region only spills to
  /// the malloc'd overflow array past kInlineRuns runs (> 30 pages with
  /// the growth schedule above, i.e. regions past ~120 KB).
  static constexpr std::uint32_t kInlineRuns = 8;

  /// One bump allocator (§4.1 Figure 4's struct allocator): newest page
  /// plus the offset at which to allocate within it. Pages are chained
  /// through their PageHeader. ZeroTail mirrors the head page's
  /// kPageZeroTail flag so the allocation fast path never touches the
  /// page header's cache line.
  struct BumpList {
    char *Head = nullptr;
    std::uint32_t Offset = 0;
    std::uint32_t ZeroTail = 0;
  };

  long long RC = 0;
  RegionManager *Mgr = nullptr;
  BumpList Normal; ///< objects that may contain region pointers
  BumpList Str;    ///< pointer-free data (paper's rstralloc)
  char *LargeHead = nullptr; ///< chain of large-object page runs
  std::size_t NumAllocs = 0;
  std::size_t ReqBytes = 0;
  // Run table: every page run this region owns (growth runs and large-
  // object runs alike), in grab order. InlineRuns[0] is always the
  // region's own first page. The overflow array is raw malloc storage —
  // Region must stay trivially destructible, and region pages cannot
  // hold it because deletion frees (and in hardened builds poisons)
  // those pages while iterating the table.
  detail::PageRun InlineRuns[kInlineRuns] = {};
  detail::PageRun *OverflowRuns = nullptr;
  std::uint32_t NumRuns = 0;
  std::uint32_t OverflowCap = 0;

  /// The run table as one indexable sequence: inline then overflow.
  detail::PageRun &runAt(std::uint32_t I) {
    return I < kInlineRuns ? InlineRuns[I] : OverflowRuns[I - kInlineRuns];
  }
  const detail::PageRun &runAt(std::uint32_t I) const {
    return I < kInlineRuns ? InlineRuns[I] : OverflowRuns[I - kInlineRuns];
  }

  // Carve cursor into the current (newest) growth run, as absolute page
  // indices: pages [RunCursor, RunEnd) are grabbed but not yet handed
  // to a bump list. RunZeroed carries the run's PageSource zero-state
  // to each carved page so the zero-tail fast path survives chunking.
  std::uint32_t RunCursor = 0;
  std::uint32_t RunEnd = 0;
  std::uint32_t RunZeroed = 0;
  // Reserve window into the run table (rpool): runs [NextReserve,
  // ReserveEnd) were retained by resetRegion and are re-carved before
  // any fresh grab. ReserveEnd is frozen at reset time so runs recorded
  // later (large objects, new growth runs) can never be mistaken for
  // reservoir runs. Never-reset regions keep both at zero and pay one
  // always-false compare in carvePage.
  std::uint32_t NextReserve = 0;
  std::uint32_t ReserveEnd = 0;
  // Deferred write-barrier stats: the packed hot word (same cache line
  // as CountRefs, the other field every barrier touches) plus the wide
  // spill targets, folded like NumAllocs/ReqBytes.
  std::uint64_t BarrierPacked = 0;
  std::uint64_t BarrierStoresDelta = 0;
  std::uint64_t BarrierSameRegionDelta = 0;
  std::uint64_t BarrierAdjustmentsDelta = 0;
  Region *PrevLive = nullptr;
  Region *NextLive = nullptr;
  // The shared-record binding (see sharedBinding() above). Cold: only
  // share/tryDelete write it and only resolving exchanges read it, so
  // it sits here with the other deletion-time fields, off the bump and
  // barrier cache lines. Atomics keep Region trivially destructible.
  std::atomic<par::SharedRegion *> SharedRec{nullptr};
  std::atomic<std::uint64_t> SharedRecGen{0};
  unsigned Id = 0;
  bool CountRefs = false;

  /// Moves the packed word's fields into the wide deltas. Out of line:
  /// runs once per 2^19 stores.
  void spillBarrierPacked();
};

namespace detail {

enum class PageKind : std::uint16_t { Normal, Str, Large };

/// Page flag: every byte from the current bump offset to the end of the
/// page reads as zero. Set when the page arrived zeroed from the OS (or
/// was bulk-cleared on refill); lets the allocation fast path skip both
/// the per-object memset and the explicit end marker — the next header
/// slot is already the NULL the Figure-7 scan stops at.
inline constexpr std::uint16_t kPageZeroTail = 1;

/// Prefix of every page handed to a region. 16 bytes, covering the
/// paper's "eight bytes per page for the map of pages to regions and
/// the list of allocated pages" bookkeeping role.
struct PageHeader {
  char *Next;              ///< older page in the same list
  std::uint32_t ScanStart; ///< offset of the first object header
  PageKind Kind;
  std::uint16_t Flags;     ///< kPageZeroTail
};
static_assert(sizeof(PageHeader) == 16, "page header layout");

inline PageHeader *headerOf(char *Page) {
  return reinterpret_cast<PageHeader *>(Page);
}

/// Writes the NULL end marker the region scan stops at (Figure 7), if
/// there is room for another object header on the page. Hardened
/// builds reuse the same zero word as the str-page walk terminator (a
/// zero size-header word), and must lift the ASan bump-tail protection
/// covering the marker slot before storing into it.
inline void writeEndMarker(char *Page, std::uint32_t Offset) {
  if (Offset + sizeof(ScanThunk) <= kPageSize) {
    RGN_ASAN_UNPOISON(Page + Offset, sizeof(ScanThunk));
    *reinterpret_cast<ScanThunk *>(Page + Offset) = nullptr;
  }
}

/// Large-object block:
///   [PageHeader][NumPages][ScanThunk][payload...]            (lean)
///   [PageHeader][NumPages][ScanThunk][size hdr][payload][red zone]
///                                                           (hardened)
inline constexpr std::size_t kLargeNumPagesOff = sizeof(PageHeader);
inline constexpr std::size_t kLargeThunkOff = kLargeNumPagesOff + 8;
inline constexpr std::size_t kLargeSizeOff = kLargeThunkOff + 8;
inline constexpr std::size_t kLargePayloadOff = kLargeSizeOff + kRsanSizeHdr;

//===----------------------------------------------------------------------===//
// rsan object layout (RGN_HARDEN; all of it folds away when off)
//===----------------------------------------------------------------------===//

/// Stamps the hardened per-object metadata around a payload: the
/// tagged size header at \p Hdr and the canary-filled red zone right
/// after the \p Payload aligned bytes. The red zone is additionally
/// ASan-poisoned so an overflowing *read or write* traps immediately
/// under RGN_SANITIZE=address; without ASan the overwrite is caught by
/// the validation walk at deleteregion / rsanCheckRegion time.
RGN_ALWAYS_INLINE void rsanStampObject(char *Hdr, std::size_t Size,
                                       std::size_t Payload) {
#if RGN_HARDEN_ENABLED
  *reinterpret_cast<std::size_t *>(Hdr) = rsanTagSize(Size);
  char *RedZone = Hdr + kRsanSizeHdr + Payload;
  std::memset(RedZone, kRsanRedZoneCanary, kRsanRedZone);
  RGN_ASAN_POISON(RedZone, kRsanRedZone);
#else
  (void)Hdr;
  (void)Size;
  (void)Payload;
#endif
}

//===----------------------------------------------------------------------===//
// Buffered exact counting
//===----------------------------------------------------------------------===//

/// A small per-thread buffer of pending ±1 reference-count adjustments.
/// The write barrier deposits adjustments here instead of touching the
/// region structures; repeated stores into the same few regions coalesce
/// into one entry each. Counts only matter when a deletion inspects
/// them, so the buffer is drained before *every* count inspection:
/// deleteRegionImpl, ParallelSpace::tryDelete, Region::referenceCount(),
/// and RegionManager teardown (which keeps the buffered Region pointers
/// from dangling — regions die only through those paths).
///
/// Intentionally aggregate-initialized (no NSDMIs): the thread_local
/// instance is zero-initialized statically, so access pays no TLS guard.
///
/// Thread exit: the buffer itself is trivially destructible (that is
/// what keeps the hot path guard-free), so a *companion* thread_local
/// with a destructor (PendingCountFlusher, in Region.cpp) drains it
/// when the thread dies — a thread that exits holding buffered ±1
/// deltas would otherwise lose them forever, letting a later
/// deleteregion wrongly succeed with a live external reference or
/// wrongly refuse one. The companion is touched only in installSlow
/// (the only place a buffered entry is ever created), so the hot path
/// keeps loading the constinit buffer directly, with no init guard.
struct PendingCountBuffer {
  static constexpr unsigned kEntries = 8; ///< power of two: direct-mapped
  Region *Rgn[kEntries];
  long long Delta[kEntries];
  unsigned Occupied; ///< bitmask of live entries
  /// Set by the companion flusher's destructor: the thread is exiting
  /// and the buffer has been drained. Later deposits on this thread
  /// (from other thread_local destructors running cross-region stores)
  /// apply directly instead of re-buffering, so nothing can be lost
  /// after the drain. Never set on a live thread — the hot paths
  /// never read it.
  unsigned AtExit;

  /// Applies every buffered adjustment and empties the buffer (entries
  /// are cleared so a dead region's address can never tag-match a
  /// later region reusing the same pages).
  void flushSlow();

  /// Evicts the colliding entry (applying its delta directly) and
  /// installs \p R in slot \p I; arms the calling thread's exit
  /// flusher. Applies \p D directly when the thread is past its drain.
  void installSlow(unsigned I, Region *R, long long D);
};

// constinit: guarantees static (zero) initialization, so cross-TU
// accesses compile to direct TLS loads instead of calls through the
// thread_local init-on-first-use wrapper.
extern thread_local RGN_CONSTINIT PendingCountBuffer GPendingCounts;

/// Deposits a ±1 adjustment for \p R into the calling thread's buffer.
/// Direct-mapped on the region's page number (each region structure
/// sits in its own first page): the hot repeated-store case is one tag
/// compare and one add, with no scan. A collision evicts the previous
/// entry by applying its delta directly — still correct, just
/// uncoalesced for that region.
RGN_ALWAYS_INLINE void pendingAddTo(PendingCountBuffer &B, Region *R,
                                    long long D) {
  unsigned I = static_cast<unsigned>(reinterpret_cast<std::uintptr_t>(R) >>
                                     kPageShift) &
               (PendingCountBuffer::kEntries - 1);
  if (RGN_LIKELY(B.Rgn[I] == R)) {
    B.Delta[I] += D;
    return;
  }
  B.installSlow(I, R, D);
}

RGN_ALWAYS_INLINE void pendingCountAdd(Region *R, long long D) {
  pendingAddTo(GPendingCounts, R, D);
}

/// Drains the calling thread's pending adjustments, making every
/// region's RC exact. Cheap when the buffer is empty (one TLS load).
/// Every count inspection must flush first — deleteRegion does, and
/// so does ParallelSpace::tryDelete *before* its lock-free relaxed
/// sum, so even the optimistic refusal path never reads a count the
/// caller's own buffered deltas would change.
RGN_ALWAYS_INLINE void flushPendingCounts() {
  if (RGN_UNLIKELY(GPendingCounts.Occupied != 0))
    GPendingCounts.flushSlow();
}

/// The write barrier's remainder for stores that cross regions:
/// classifies the slot through the same snapshot the caller used for
/// the old and new values, buffers the ±1 count adjustments, and parks
/// the statistics on the store's region (see barrierAssign in
/// RegionPtr.h). Kept inline: an out-of-line call forces the probe
/// snapshot through the stack, which costs more than the body.
RGN_ALWAYS_INLINE void barrierCrossRegion(void **Slot, Region *OldR,
                                          Region *NewR,
                                          const ArenaProbe &Probe) {
  Region *SlotR = Probe.lookup(Slot);
  PendingCountBuffer &B = GPendingCounts;
  // The event word is built with add-immediates inside branches the
  // counting logic takes anyway — no separate flag materialization.
  std::uint64_t Event = 1;
  if (RGN_LIKELY(OldR != SlotR && NewR != SlotR)) {
    // Neither endpoint shares the slot's region, so the store is not
    // sameregion: the endpoint inequality tests double as the
    // adjustment guards, leaving only null and counting checks.
    if (OldR && OldR->countsRefs()) {
      pendingAddTo(B, OldR, -1);
      Event += 1ull << Region::kBarrierAdjShift;
    }
    if (NewR && NewR->countsRefs()) {
      pendingAddTo(B, NewR, +1);
      Event += 1ull << Region::kBarrierAdjShift;
    }
  } else {
    // The slot lives in one endpoint's region; that side is an internal
    // reference while the other may still adjust.
    if ((OldR && OldR == SlotR) || (NewR && NewR == SlotR))
      Event += 1ull << Region::kBarrierSameShift;
    if (OldR && OldR != SlotR && OldR->countsRefs()) {
      pendingAddTo(B, OldR, -1);
      Event += 1ull << Region::kBarrierAdjShift;
    }
    if (NewR && NewR != SlotR && NewR->countsRefs()) {
      pendingAddTo(B, NewR, +1);
      Event += 1ull << Region::kBarrierAdjShift;
    }
  }
  // Stats park on the store's region — the new value's region when
  // there is one, the old value's otherwise — matching the manager the
  // eager scheme attributed to.
  (NewR ? NewR : OldR)->noteBarrierEvent(Event);
}

} // namespace detail

inline long long Region::referenceCount() const {
  detail::flushPendingCounts();
  return RC;
}

/// Owns an arena of pages and the regions carved from it. Distinct
/// managers are fully independent (each experiment backend gets its
/// own), but regionOf() resolves pointers across all live managers.
class RegionManager {
public:
  /// Creates a manager. \p ReserveBytes bounds the total memory all of
  /// this manager's regions can ever hold (virtual reservation only).
  explicit RegionManager(SafetyConfig Config = SafetyConfig::safeConfig(),
                         std::size_t ReserveBytes = std::size_t{1} << 30);

  RegionManager(const RegionManager &) = delete;
  RegionManager &operator=(const RegionManager &) = delete;

  /// Destroys the manager and reclaims every live region without
  /// running cleanups (the arena disappears wholesale).
  ~RegionManager();

  /// Creates a new, empty region (paper: newregion()).
  Region *newRegion();

  /// Allocates \p Size bytes of pointer-free storage in \p R (paper:
  /// rstralloc). The memory is uninitialized, has no per-object header,
  /// and is never scanned on deletion. Inline fast path: the common
  /// small allocation is a bounds test plus a bump of the region's
  /// str list, with no global state touched.
  void *allocRaw(Region *R, std::size_t Size);

  /// allocRaw, but the returned memory is guaranteed cleared. Cheaper
  /// than allocRaw + memset: pages that arrive zeroed from the OS skip
  /// the clear entirely.
  void *allocRawZeroed(Region *R, std::size_t Size);

  /// Allocates \p Size bytes in \p R with cleanup \p Thunk (paper:
  /// ralloc/rarrayalloc). The memory is cleared when ZeroMemory is
  /// configured. \p Thunk must be non-null; it runs when the region is
  /// deleted with CleanupScan enabled and must return the payload size.
  /// Inline fast path: on zero-tail pages the bump writes exactly one
  /// word (the object's thunk) — payload clearing and the scan's end
  /// marker are both implicit in the page's zero state.
  void *allocScanned(Region *R, std::size_t Size, ScanThunk Thunk);

  /// Attempts to delete \p R (paper: deleteregion(&r)).
  ///
  /// \p HandleSlot is the storage holding the caller's reference being
  /// deleted (the paper's \c *x, which is excepted from the external-
  /// reference check); may be null for anonymous deletion. On success
  /// \c *HandleSlot is cleared without barrier bookkeeping.
  /// \p HandleCounted says the slot's reference is included in R's
  /// reference count (true for barriered global/heap handles).
  ///
  /// Deletion succeeds iff no other counted reference and no live local
  /// in the shadow stack refers to any object in R. Returns false and
  /// leaves the region (and \c *HandleSlot) untouched on failure.
  /// Prefer the typed wrappers deleteRegion() in RegionPtr.h.
  ///
  /// \p HandleNode, when the handle is a registered local (rt::Ref),
  /// is its shadow-stack node: the scanned/unscanned classification is
  /// then O(1) instead of a walk over every registered slot.
  bool deleteRegionImpl(Region *R, void **HandleSlot, bool HandleCounted,
                        const rt::SlotNode *HandleNode = nullptr);

  /// Deletes through an unregistered raw handle: no stack registration,
  /// no count contribution. Clears \p R on success.
  bool deleteRegionRaw(Region *&R) {
    return deleteRegionImpl(R, reinterpret_cast<void **>(&R), false);
  }

  /// Resets \p R to the freshly-created empty state **in place** (rpool
  /// layer 1; see region/Pool.h for the pooling layer built on it).
  ///
  /// Applies exactly deleteRegion's safety protocol — pending-count
  /// flush, stack scan, external-reference refusal, rsan validation,
  /// cleanup thunks — but instead of returning pages to the PageSource
  /// it keeps every page run (growth and large-object runs alike, with
  /// their page-map entries) as a re-carve reservoir: carvePage and
  /// exact-fit allocLarge requests drain it before touching the source.
  /// The first page's Figure-7 end-marker state is reinstalled and
  /// retained pages are re-poisoned under RGN_HARDEN. The region keeps
  /// its address but becomes a new logical region: a fresh id is
  /// stamped and the retired incarnation is folded into stats and the
  /// rstat lifetime histograms exactly as a deletion would. Retention
  /// is bounded by the caller, not here — RegionPool's page budget
  /// deletes regions whose reservoir outgrows it.
  ///
  /// Returns false (region untouched) when counted external references
  /// or live scanned locals remain, like deleteregion. Shared regions
  /// must go through ParallelSpace::tryDelete instead — resetting a
  /// region with a live SharedRegion binding is a fatal error.
  bool resetRegion(Region *R);

  const SafetyConfig &config() const { return Cfg; }

  /// Reconfigures safety features. Only valid while no regions are
  /// live: toggling mid-flight would desynchronize reference counts.
  void setConfig(const SafetyConfig &NewCfg) {
    assert(Stats.LiveRegions == 0 && "cannot reconfigure with live regions");
    Cfg = NewCfg;
  }

  /// Returns the aggregated statistics. Per-allocation counters are
  /// kept region-local by the fast path and folded in here (and at
  /// region deletion); the returned reference is a snapshot that stays
  /// valid until the next stats() call but is not updated in place.
  const RegionStats &stats() const;

  /// Mutable access to the folded counters (used by the write barrier
  /// and the deletion bookkeeping; per-allocation counters are deferred
  /// and must not be adjusted here).
  RegionStats &statsMutable() { return Stats; }

  /// Aggregated rpool counters for every RegionPool over this manager.
  const PoolStats &poolStats() const { return PoolCounters; }
  PoolStats &poolStatsMutable() { return PoolCounters; }

  /// Bytes this manager has requested from the OS (Figure 8's metric).
  std::size_t osBytes() const { return Source.osBytes(); }

  /// Number of regions currently live.
  std::size_t liveRegionCount() const { return Stats.LiveRegions; }

  //===--------------------------------------------------------------------===//
  // rstat observability (region/Metrics.h, support/Trace.h)
  //===--------------------------------------------------------------------===//

  /// Captures a MetricsSnapshot of this manager: stats() exactly, the
  /// PageSource frontier/free-list/quarantine state, and the region
  /// size-class and lifetime histograms. Cold: walks the live-region
  /// list once. Defined in Metrics.cpp.
  MetricsSnapshot metrics() const;

  /// Heap introspection: prints every live region — reference count,
  /// allocation/byte totals, page runs, and the per-page chains with
  /// kind/flags/bytes-used — for debugging refused deletions at scale.
  /// Flushes the calling thread's pending counts first so the printed
  /// counts are exact. Defined in Metrics.cpp.
  void dumpHeap(std::FILE *Out = stdout) const;

  /// Largest size allocScanned serves from a normal page; bigger
  /// requests take the large-object path transparently. Hardened
  /// builds shave off the per-object size header and red zone.
  static constexpr std::size_t maxSmallAlloc() {
    return kPageSize - sizeof(detail::PageHeader) - sizeof(ScanThunk) -
           detail::kRsanObjOverhead;
  }

  /// Largest size allocRaw serves from a str page.
  static constexpr std::size_t maxRawAlloc() {
    return kPageSize - sizeof(detail::PageHeader) - detail::kRsanObjOverhead;
  }

  //===--------------------------------------------------------------------===//
  // rsan (RGN_HARDEN builds; every entry point is a cheap no-op when off)
  //===--------------------------------------------------------------------===//

  /// Walks \p R's hardened per-object metadata (size headers, red-zone
  /// canaries) across normal, str, and large pages without running any
  /// cleanup. With \p FatalOnViolation the first corruption aborts via
  /// reportFatalError; otherwise violations are tallied in the report.
  /// Without RGN_HARDEN there is no metadata: returns Checked = false.
  RsanReport rsanValidate(const Region *R, bool FatalOnViolation = false) const;

  /// Re-budgets this manager's page quarantine (0 disables; deleted
  /// regions' pages then recycle immediately as in unhardened builds).
  void setQuarantineBudget(std::size_t Pages) {
    Source.setQuarantineBudget(Pages);
  }

  /// Pages of deleted regions currently held poisoned in quarantine.
  std::size_t quarantinedPages() const { return Source.quarantinedPages(); }

  /// Force-evicts the whole quarantine into the free lists (tests use
  /// this to provoke reuse of a specific deleted region's pages).
  void drainQuarantine() { Source.drainQuarantine(); }

private:
  char *newPage(Region *R, detail::PageKind Kind);
  char *carvePage(Region *R, bool &Zeroed);
  void recordRun(Region *R, std::uint32_t PageIdx, std::uint32_t NumPages);
  void *allocRawSlow(Region *R, std::size_t Size, bool Zeroed);
  void *allocScannedSlow(Region *R, std::size_t Size, ScanThunk Thunk);
  void *allocLarge(Region *R, std::size_t Size, ScanThunk Thunk, bool Zeroed);
  void runCleanups(Region *R);
  std::size_t freeRegionMemory(Region *R); ///< returns pages released
  void setMapRange(const void *Page, std::size_t NumPages, Region *R);

  PageSource Source;
  Region **Map = nullptr; ///< page index -> owning region
  SafetyConfig Cfg;
  /// Folded counters: region-lifecycle and barrier stats are eager;
  /// per-allocation stats cover *deleted* regions only (live regions'
  /// shares are summed on demand). Mutable so the const stats() can
  /// persist watermark samples.
  mutable RegionStats Stats;
  mutable RegionStats StatsSnapshot; ///< storage for stats()'s result
  PoolStats PoolCounters;            ///< rpool activity (region/Pool.h)
  Region *LiveHead = nullptr;
  unsigned NextRegionId = 0;
  /// rstat histograms over *deleted* regions, bumped in
  /// freeRegionMemory (a cold path — the histograms are region-
  /// granularity precisely so the allocation fast path stays
  /// untouched). Live regions' size classes are summed on demand by
  /// metrics(). Buckets are metricsBucket() of final requested bytes
  /// and of lifetime on the region-creation logical clock.
  std::uint64_t DeadSizeClasses[detail::kMetricsLogBuckets] = {};
  std::uint64_t DeadLifetimes[detail::kMetricsLogBuckets] = {};
};

//===----------------------------------------------------------------------===//
// Allocation fast paths (paper §4.1: "about 16 instructions")
//===----------------------------------------------------------------------===//

// Hardened builds widen each object to [size hdr][payload][red zone]
// (str) or [thunk][size hdr][payload][red zone] (normal); the kRsan*
// constants are zero otherwise, so the shared arithmetic below
// constant-folds back to the lean layout and these paths compile to
// exactly the unhardened instructions.

RGN_ALWAYS_INLINE void *RegionManager::allocRaw(Region *R, std::size_t Size) {
  assert(R && R->Mgr == this && "region belongs to another manager");
  Region::BumpList &B = R->Str;
  std::size_t Payload = alignTo(Size, kDefaultAlignment);
  std::size_t Need = detail::kRsanObjOverhead + Payload;
  if (RGN_LIKELY(B.Head && Size <= maxRawAlloc() &&
                 B.Offset + Need <= kPageSize)) {
    char *Base = B.Head + B.Offset;
    B.Offset += static_cast<std::uint32_t>(Need);
    ++R->NumAllocs;
    R->ReqBytes += Size;
    if constexpr (detail::kRsanEnabled) {
      RGN_ASAN_UNPOISON(Base, Need);
      detail::rsanStampObject(Base, Size, Payload);
      if (!B.ZeroTail) // terminate the str-page metadata walk
        detail::writeEndMarker(B.Head, B.Offset);
    }
    return Base + detail::kRsanSizeHdr;
  }
  return allocRawSlow(R, Size, /*Zeroed=*/false);
}

RGN_ALWAYS_INLINE void *RegionManager::allocRawZeroed(Region *R, std::size_t Size) {
  assert(R && R->Mgr == this && "region belongs to another manager");
  Region::BumpList &B = R->Str;
  std::size_t Payload = alignTo(Size, kDefaultAlignment);
  std::size_t Need = detail::kRsanObjOverhead + Payload;
  if (RGN_LIKELY(B.Head && Size <= maxRawAlloc() &&
                 B.Offset + Need <= kPageSize)) {
    char *Base = B.Head + B.Offset;
    B.Offset += static_cast<std::uint32_t>(Need);
    if constexpr (detail::kRsanEnabled) {
      RGN_ASAN_UNPOISON(Base, Need);
      detail::rsanStampObject(Base, Size, Payload);
      if (!B.ZeroTail)
        detail::writeEndMarker(B.Head, B.Offset);
    }
    char *Result = Base + detail::kRsanSizeHdr;
    if (!B.ZeroTail)
      std::memset(Result, 0, Payload);
    ++R->NumAllocs;
    R->ReqBytes += Size;
    return Result;
  }
  return allocRawSlow(R, Size, /*Zeroed=*/true);
}

RGN_ALWAYS_INLINE void *RegionManager::allocScanned(Region *R, std::size_t Size,
                                         ScanThunk Thunk) {
  assert(R && R->Mgr == this && "region belongs to another manager");
  assert(Thunk && "scanned allocations need a cleanup thunk");
  Region::BumpList &B = R->Normal;
  std::size_t Payload = alignTo(Size, kDefaultAlignment);
  std::size_t Need = sizeof(ScanThunk) + detail::kRsanObjOverhead + Payload;
  if (RGN_LIKELY(B.Head && Size <= maxSmallAlloc() &&
                 B.Offset + Need <= kPageSize)) {
    char *Base = B.Head + B.Offset;
    RGN_ASAN_UNPOISON(Base, Need);
    *reinterpret_cast<ScanThunk *>(Base) = Thunk;
    detail::rsanStampObject(Base + sizeof(ScanThunk), Size, Payload);
    B.Offset += static_cast<std::uint32_t>(Need);
    char *Result = Base + sizeof(ScanThunk) + detail::kRsanSizeHdr;
    if (!B.ZeroTail) {
      detail::writeEndMarker(B.Head, B.Offset);
      if (Cfg.ZeroMemory)
        std::memset(Result, 0, Payload);
    }
    ++R->NumAllocs;
    R->ReqBytes += Size;
    return Result;
  }
  return allocScannedSlow(R, Size, Thunk);
}

//===----------------------------------------------------------------------===//
// Typed allocation interface (the C@-compiler role)
//===----------------------------------------------------------------------===//

namespace detail {

/// Cleanup thunk for a single object: finalize and report size. The
/// destructor of any RegionPtr member performs the paper's destroy()
/// (cross-region reference-count decrement).
template <typename T> std::size_t scanThunk(void *Payload) {
  static_cast<T *>(Payload)->~T();
  return sizeof(T);
}

/// Cleanup thunk for arrays: payload is [count][elements...].
template <typename T> std::size_t scanArrayThunk(void *Payload) {
  auto *Count = static_cast<std::size_t *>(Payload);
  T *Elems = reinterpret_cast<T *>(Count + 1);
  for (std::size_t I = 0, E = *Count; I != E; ++I)
    Elems[I].~T();
  return sizeof(std::size_t) + *Count * sizeof(T);
}

template <typename T>
inline constexpr bool regionAllocatable =
    alignof(T) <= kDefaultAlignment && !std::is_reference_v<T>;

} // namespace detail

/// Allocates and constructs a T in region \p R (paper: ralloc).
///
/// Trivially destructible types carry no region pointers (region
/// pointers are RegionPtr, whose destructor is non-trivial) and are
/// routed to the headerless pointer-free allocator, exactly the
/// ralloc/rstralloc split the paper asks programmers to make.
template <typename T, typename... Args> T *rnew(Region *R, Args &&...A) {
  static_assert(detail::regionAllocatable<T>, "over-aligned type in region");
  RegionManager &M = R->manager();
  if constexpr (std::is_trivially_destructible_v<T>)
    return ::new (M.allocRaw(R, sizeof(T))) T(std::forward<Args>(A)...);
  else
    return ::new (M.allocScanned(R, sizeof(T), &detail::scanThunk<T>))
        T(std::forward<Args>(A)...);
}

/// Allocates and default-constructs \p N objects of type T in \p R
/// (paper: rarrayalloc). Trivial element types are value-initialized
/// (cleared), matching the paper's cleared rarrayalloc memory. A count
/// whose byte size would overflow std::size_t is a fatal error rather
/// than a silent under-allocation.
template <typename T> T *rnewArray(Region *R, std::size_t N) {
  static_assert(detail::regionAllocatable<T>, "over-aligned type in region");
  RegionManager &M = R->manager();
  if constexpr (std::is_trivially_destructible_v<T>) {
    if (RGN_UNLIKELY(N > SIZE_MAX / sizeof(T)))
      reportFatalError("rnewArray: array byte size overflows");
    return static_cast<T *>(M.allocRawZeroed(R, N * sizeof(T)));
  } else {
    if (RGN_UNLIKELY(N > (SIZE_MAX - sizeof(std::size_t)) / sizeof(T)))
      reportFatalError("rnewArray: array byte size overflows");
    void *Mem = M.allocScanned(R, sizeof(std::size_t) + N * sizeof(T),
                               &detail::scanArrayThunk<T>);
    *static_cast<std::size_t *>(Mem) = N;
    T *Elems = reinterpret_cast<T *>(static_cast<std::size_t *>(Mem) + 1);
    for (std::size_t I = 0; I != N; ++I)
      ::new (Elems + I) T();
    return Elems;
  }
}

/// Copies the NUL-terminated string \p S into \p R's pointer-free
/// storage and returns the copy.
char *rstrdup(Region *R, const char *S);

/// Copies \p Len bytes of \p Data into \p R's pointer-free storage,
/// appending a NUL.
char *rstrndup(Region *R, const char *Data, std::size_t Len);

} // namespace regions

#endif // REGION_REGION_H
