//===- region/Debug.cpp - Region debugging aids ---------------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/Debug.h"
#include "region/PageMap.h"
#include "region/RuntimeStack.h"

#include <cinttypes>

using namespace regions;

DeletionDiagnosis regions::diagnoseDeletion(Region *R,
                                            void *const *HandleSlot,
                                            bool HandleCounted) {
  DeletionDiagnosis D;
  const SafetyConfig &Cfg = R->manager().config();
  if (!Cfg.RefCounts && !Cfg.StackScan) {
    D.WouldSucceed = true; // unsafe regions delete unconditionally
    return D;
  }

  auto &Stack = rt::RuntimeStack::current();

  // How much of the count belongs to the excluded handle right now.
  long long HandleInCount = 0;
  if (HandleCounted) {
    HandleInCount = Cfg.RefCounts ? 1 : 0;
  } else if (HandleSlot && Cfg.StackScan &&
             Stack.locate(HandleSlot) ==
                 rt::RuntimeStack::SlotLocation::Scanned) {
    HandleInCount = 1;
  }
  D.CountedRefs = R->referenceCount() - HandleInCount;

  // Unscanned-frame locals pointing into R (they would be found by the
  // deletion-time scan or the transient top-frame count). Unscanned
  // slots are exactly the newest suffix of the intrusive list: scanned
  // frames are always a bottom prefix of the stack.
  if (Cfg.StackScan) {
    for (const auto *N = Stack.slots(); N && !N->Owner->Scanned;
         N = N->Prev) {
      if (N->Addr == HandleSlot)
        continue;
      void *Value = *N->Addr;
      if (regionOf(Value) != R)
        continue;
      D.BlockingStackSlots.push_back(N->Addr);
      D.BlockingStackValues.push_back(Value);
    }
  }

  D.WouldSucceed =
      D.CountedRefs == 0 && D.BlockingStackSlots.empty();
  return D;
}

void regions::printDiagnosis(const DeletionDiagnosis &D, Region *R,
                             std::FILE *Out) {
  std::fprintf(Out, "region %u (%" PRIu64 " objects, %" PRIu64
                    " bytes): deletion would %s\n",
               R->id(), static_cast<std::uint64_t>(R->allocCount()),
               static_cast<std::uint64_t>(R->requestedBytes()),
               D.WouldSucceed ? "succeed" : "FAIL");
  if (D.WouldSucceed)
    return;
  if (D.CountedRefs != 0)
    std::fprintf(Out,
                 "  %lld counted reference(s) from other regions, global "
                 "storage, or scanned frames\n",
                 D.CountedRefs);
  for (std::size_t I = 0; I != D.BlockingStackSlots.size(); ++I)
    std::fprintf(Out, "  live local at %p still points to %p\n",
                 static_cast<const void *>(D.BlockingStackSlots[I]),
                 D.BlockingStackValues[I]);
}

void regions::printManagerReport(const RegionManager &Mgr, std::FILE *Out) {
  const RegionStats &S = Mgr.stats();
  std::fprintf(Out, "RegionManager report\n");
  std::fprintf(Out, "  config: refcounts=%d stackscan=%d cleanup=%d "
                    "zero=%d\n",
               Mgr.config().RefCounts, Mgr.config().StackScan,
               Mgr.config().CleanupScan, Mgr.config().ZeroMemory);
  std::fprintf(Out, "  regions: %" PRIu64 " total, %" PRIu64
                    " live (max %" PRIu64 ")\n",
               S.TotalRegions, S.LiveRegions, S.MaxLiveRegions);
  std::fprintf(Out, "  allocations: %" PRIu64 " (%" PRIu64
                    " bytes requested, max live %" PRIu64 ")\n",
               S.TotalAllocs, S.TotalRequestedBytes,
               S.MaxLiveRequestedBytes);
  std::fprintf(Out, "  os memory: %zu bytes\n", Mgr.osBytes());
  std::fprintf(Out, "  deletions: %" PRIu64 " attempts, %" PRIu64
                    " refused\n",
               S.DeleteAttempts, S.DeleteFailures);
  std::fprintf(Out, "  barriers: %" PRIu64 " stores, %" PRIu64
                    " sameregion, %" PRIu64 " count adjustments\n",
               S.BarrierStores, S.BarrierSameRegion, S.BarrierAdjustments);
  std::fprintf(Out, "  cleanups run: %" PRIu64 "\n", S.CleanupThunksRun);
}

void regions::printRsanReport(const RsanReport &Rep, const Region *R,
                              std::FILE *Out) {
  if (!Rep.Checked) {
    std::fprintf(Out,
                 "region %u: rsan validation skipped (build has no "
                 "hardened metadata; configure with -DRGN_HARDEN=ON)\n",
                 R->id());
    return;
  }
  std::fprintf(Out, "region %u: rsan checked %" PRIu64 " object(s): %s\n",
               R->id(), Rep.ObjectsChecked,
               Rep.clean() ? "clean" : "VIOLATIONS");
  if (Rep.RedZoneViolations != 0)
    std::fprintf(Out,
                 "  %" PRIu64 " red-zone canary overwrite(s) — a write "
                 "ran past the end of an allocation\n",
                 Rep.RedZoneViolations);
  if (Rep.MetadataViolations != 0)
    std::fprintf(Out,
                 "  %" PRIu64 " corrupted size header(s) — wild writes "
                 "or overflow into object metadata\n",
                 Rep.MetadataViolations);
}
