//===- region/Metrics.cpp - rstat metrics snapshots & heap dumps ---------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/Metrics.h"
#include "support/TableWriter.h"

#include <cinttypes>

using namespace regions;
using detail::headerOf;
using detail::PageHeader;
using detail::PageKind;

MetricsSnapshot RegionManager::metrics() const {
  MetricsSnapshot M;
  // Through stats(), never reimplemented: the snapshot's counters are
  // the exact values every existing report prints, by construction.
  M.Stats = stats();
  M.Pool = PoolCounters;

  M.OsBytes = Source.osBytes();
  M.InUseBytes = Source.inUseBytes();
  M.ReservedPages = Source.reservedPages();
  M.FrontierPages = Source.frontierPages();
  M.FreeListedPages = Source.freeListedPages();
  M.CachedSinglePages = Source.cachedSinglePages();
  M.QuarantinedPages = Source.quarantinedPages();
  M.CoalesceSweeps = Source.coalesceSweeps();
  M.QuarantineEvictions = Source.quarantineEvictions();

  for (unsigned I = 0; I != MetricsSnapshot::kLogBuckets; ++I) {
    M.RegionSizeClasses[I] = DeadSizeClasses[I];
    M.RegionLifetimes[I] = DeadLifetimes[I];
  }
  // Live regions contribute their current size on demand — keeping
  // them out of the stored histogram is what lets the alloc fast path
  // stay untouched (a region's size class is only final at death).
  for (const Region *R = LiveHead; R; R = R->NextLive) {
    unsigned B = detail::metricsBucket(R->ReqBytes);
    ++M.LiveRegionSizeClasses[B];
    ++M.RegionSizeClasses[B];
  }
  return M;
}

namespace {

void writeHistogram(std::FILE *Out, const char *Key,
                    const std::uint64_t (&H)[MetricsSnapshot::kLogBuckets],
                    bool TrailingComma) {
  std::fprintf(Out, "    \"%s\": [", Key);
  for (unsigned I = 0; I != MetricsSnapshot::kLogBuckets; ++I)
    std::fprintf(Out, "%s%" PRIu64, I ? "," : "", H[I]);
  std::fprintf(Out, "]%s\n", TrailingComma ? "," : "");
}

/// Human-readable upper bound of a metricsBucket() bucket: bucket 0 is
/// the value 0, bucket n≥1 covers [2^(n-1), 2^n).
std::uint64_t bucketUpperBound(unsigned B) {
  return B == 0 ? 0 : (std::uint64_t{1} << B) - 1;
}

} // namespace

void regions::writeMetricsJson(const MetricsSnapshot &M, std::FILE *Out) {
  const RegionStats &S = M.Stats;
  std::fprintf(Out, "{\n  \"manager\": {\n");
  std::fprintf(Out, "    \"totalAllocs\": %" PRIu64 ",\n", S.TotalAllocs);
  std::fprintf(Out, "    \"totalRequestedBytes\": %" PRIu64 ",\n",
               S.TotalRequestedBytes);
  std::fprintf(Out, "    \"liveRequestedBytes\": %" PRIu64 ",\n",
               S.LiveRequestedBytes);
  std::fprintf(Out, "    \"maxLiveRequestedBytes\": %" PRIu64 ",\n",
               S.MaxLiveRequestedBytes);
  std::fprintf(Out, "    \"totalRegions\": %" PRIu64 ",\n", S.TotalRegions);
  std::fprintf(Out, "    \"liveRegions\": %" PRIu64 ",\n", S.LiveRegions);
  std::fprintf(Out, "    \"maxLiveRegions\": %" PRIu64 ",\n",
               S.MaxLiveRegions);
  std::fprintf(Out, "    \"maxRegionBytes\": %" PRIu64 ",\n",
               S.MaxRegionBytes);
  std::fprintf(Out, "    \"deleteAttempts\": %" PRIu64 ",\n",
               S.DeleteAttempts);
  std::fprintf(Out, "    \"deleteFailures\": %" PRIu64 ",\n",
               S.DeleteFailures);
  std::fprintf(Out, "    \"resetRegions\": %" PRIu64 ",\n", S.ResetRegions);
  std::fprintf(Out, "    \"resetRefusals\": %" PRIu64 ",\n", S.ResetRefusals);
  std::fprintf(Out, "    \"cleanupThunksRun\": %" PRIu64 ",\n",
               S.CleanupThunksRun);
  std::fprintf(Out, "    \"barrierStores\": %" PRIu64 ",\n", S.BarrierStores);
  std::fprintf(Out, "    \"barrierSameRegion\": %" PRIu64 ",\n",
               S.BarrierSameRegion);
  std::fprintf(Out, "    \"barrierAdjustments\": %" PRIu64 "\n",
               S.BarrierAdjustments);
  std::fprintf(Out, "  },\n  \"pool\": {\n");
  std::fprintf(Out, "    \"hits\": %" PRIu64 ",\n", M.Pool.Hits);
  std::fprintf(Out, "    \"misses\": %" PRIu64 ",\n", M.Pool.Misses);
  std::fprintf(Out, "    \"releases\": %" PRIu64 ",\n", M.Pool.Releases);
  std::fprintf(Out, "    \"trims\": %" PRIu64 "\n", M.Pool.Trims);
  std::fprintf(Out, "  },\n  \"pageSource\": {\n");
  std::fprintf(Out, "    \"osBytes\": %" PRIu64 ",\n", M.OsBytes);
  std::fprintf(Out, "    \"inUseBytes\": %" PRIu64 ",\n", M.InUseBytes);
  std::fprintf(Out, "    \"reservedPages\": %" PRIu64 ",\n", M.ReservedPages);
  std::fprintf(Out, "    \"frontierPages\": %" PRIu64 ",\n", M.FrontierPages);
  std::fprintf(Out, "    \"freeListedPages\": %" PRIu64 ",\n",
               M.FreeListedPages);
  std::fprintf(Out, "    \"cachedSinglePages\": %" PRIu64 ",\n",
               M.CachedSinglePages);
  std::fprintf(Out, "    \"quarantinedPages\": %" PRIu64 ",\n",
               M.QuarantinedPages);
  std::fprintf(Out, "    \"coalesceSweeps\": %" PRIu64 ",\n",
               M.CoalesceSweeps);
  std::fprintf(Out, "    \"quarantineEvictions\": %" PRIu64 "\n",
               M.QuarantineEvictions);
  std::fprintf(Out, "  },\n  \"histograms\": {\n");
  std::fprintf(Out, "    \"logBuckets\": %u,\n", MetricsSnapshot::kLogBuckets);
  writeHistogram(Out, "regionSizeClasses", M.RegionSizeClasses, true);
  writeHistogram(Out, "liveRegionSizeClasses", M.LiveRegionSizeClasses, true);
  writeHistogram(Out, "regionLifetimes", M.RegionLifetimes, false);
  std::fprintf(Out, "  }\n}\n");
}

bool regions::writeMetricsJson(const MetricsSnapshot &M, const char *Path) {
  std::FILE *Out = std::fopen(Path, "w");
  if (!Out)
    return false;
  writeMetricsJson(M, Out);
  std::fclose(Out);
  return true;
}

void regions::printMetrics(const MetricsSnapshot &M, std::FILE *Out) {
  const RegionStats &S = M.Stats;
  using TW = TableWriter;
  TableWriter Counters({"metric", "value"});
  Counters.addRow({"total allocs", TW::fmt(S.TotalAllocs)});
  Counters.addRow({"total requested kb", TW::fmtKb(S.TotalRequestedBytes)});
  Counters.addRow({"live requested kb", TW::fmtKb(S.LiveRequestedBytes)});
  Counters.addRow({"max live requested kb",
                   TW::fmtKb(S.MaxLiveRequestedBytes)});
  Counters.addRow({"total regions", TW::fmt(S.TotalRegions)});
  Counters.addRow({"live regions", TW::fmt(S.LiveRegions)});
  Counters.addRow({"max live regions", TW::fmt(S.MaxLiveRegions)});
  Counters.addRow({"max region kb", TW::fmtKb(S.MaxRegionBytes)});
  Counters.addRow({"delete attempts", TW::fmt(S.DeleteAttempts)});
  Counters.addRow({"delete failures", TW::fmt(S.DeleteFailures)});
  Counters.addRow({"region resets", TW::fmt(S.ResetRegions)});
  Counters.addRow({"reset refusals", TW::fmt(S.ResetRefusals)});
  Counters.addRow({"pool hits", TW::fmt(M.Pool.Hits)});
  Counters.addRow({"pool misses", TW::fmt(M.Pool.Misses)});
  Counters.addRow({"pool releases", TW::fmt(M.Pool.Releases)});
  Counters.addRow({"pool trims", TW::fmt(M.Pool.Trims)});
  Counters.addRow({"cleanup thunks run", TW::fmt(S.CleanupThunksRun)});
  Counters.addRow({"barrier stores", TW::fmt(S.BarrierStores)});
  Counters.addRow({"barrier sameregion", TW::fmt(S.BarrierSameRegion)});
  Counters.addRow({"barrier adjustments", TW::fmt(S.BarrierAdjustments)});
  Counters.addRow({"os kb", TW::fmtKb(M.OsBytes)});
  Counters.addRow({"in-use kb", TW::fmtKb(M.InUseBytes)});
  Counters.addRow({"reserved pages", TW::fmt(M.ReservedPages)});
  Counters.addRow({"frontier pages", TW::fmt(M.FrontierPages)});
  Counters.addRow({"free-listed pages", TW::fmt(M.FreeListedPages)});
  Counters.addRow({"cached single pages", TW::fmt(M.CachedSinglePages)});
  Counters.addRow({"quarantined pages", TW::fmt(M.QuarantinedPages)});
  Counters.addRow({"coalesce sweeps", TW::fmt(M.CoalesceSweeps)});
  Counters.addRow({"quarantine evictions", TW::fmt(M.QuarantineEvictions)});
  Counters.print(Out);

  // Histograms: print only the occupied range, one row per bucket.
  unsigned Top = 0;
  for (unsigned I = 0; I != MetricsSnapshot::kLogBuckets; ++I)
    if (M.RegionSizeClasses[I] || M.RegionLifetimes[I])
      Top = I + 1;
  if (Top == 0)
    return;
  std::fputc('\n', Out);
  TableWriter Hist({"bucket<=", "regions", "live", "lifetimes"});
  for (unsigned I = 0; I != Top; ++I)
    Hist.addRow({TW::fmt(bucketUpperBound(I)), TW::fmt(M.RegionSizeClasses[I]),
                 TW::fmt(M.LiveRegionSizeClasses[I]),
                 TW::fmt(M.RegionLifetimes[I])});
  Hist.print(Out);
}

void RegionManager::dumpHeap(std::FILE *Out) const {
  // Exact counts: land this thread's buffered ±1 deltas first.
  detail::flushPendingCounts();

  std::fprintf(Out, "== heap dump: %" PRIu64 " live region(s), %zu/%zu pages"
                    " in use ==\n",
               static_cast<std::uint64_t>(Stats.LiveRegions),
               Source.inUseBytes() / kPageSize, Source.reservedPages());
  for (const Region *R = LiveHead; R; R = R->NextLive) {
    std::fprintf(Out,
                 "region #%u: rc=%lld allocs=%zu bytes=%zu runs=%u%s\n",
                 R->Id, R->RC, R->NumAllocs, R->ReqBytes, R->NumRuns,
                 R->CountRefs ? "" : " (uncounted)");
    for (std::uint32_t I = 0; I != R->NumRuns; ++I) {
      detail::PageRun Run = I < Region::kInlineRuns
                                ? R->InlineRuns[I]
                                : R->OverflowRuns[I - Region::kInlineRuns];
      std::fprintf(Out, "  run %u: pages [%u, %u)\n", I, Run.PageIdx,
                   Run.PageIdx + Run.NumPages);
    }
    // Page chains, newest first (the head page is the one being bump-
    // allocated into; older pages are retired ~full). Reading only the
    // PageHeader is safe under RGN_HARDEN: ASan poison starts at the
    // bump offset, past the header.
    auto DumpChain = [&](const char *Name, const Region::BumpList &B) {
      for (const char *Page = B.Head; Page;
           Page = headerOf(const_cast<char *>(Page))->Next) {
        const PageHeader *H = headerOf(const_cast<char *>(Page));
        std::fprintf(Out, "  %s page %zu:%s%s", Name, Source.pageIndex(Page),
                     (H->Flags & detail::kPageZeroTail) ? " zerotail" : "",
                     Page == B.Head ? "" : " retired");
        if (Page == B.Head)
          std::fprintf(Out, " bump=%u/%zu", B.Offset, kPageSize);
        std::fputc('\n', Out);
      }
    };
    DumpChain("normal", R->Normal);
    DumpChain("str", R->Str);
    for (const char *Block = R->LargeHead; Block;
         Block = headerOf(const_cast<char *>(Block))->Next) {
      std::size_t NumPages = *reinterpret_cast<const std::size_t *>(
          Block + detail::kLargeNumPagesOff);
      std::fprintf(Out, "  large block: pages [%zu, %zu)\n",
                   Source.pageIndex(Block),
                   Source.pageIndex(Block) + NumPages);
    }
  }
}
