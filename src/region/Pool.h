//===- region/Pool.h - rpool: recycled-region caches -----------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pooling half of **rpool**, the region-recycling subsystem. The
/// paper makes deallocation nearly free by amortizing it over a whole
/// region; region-per-request servers then pay the *creation* side —
/// page-map updates, run carving, first-page zeroing — millions of
/// times over. RegionPool closes that loop: released regions are reset
/// in place (RegionManager::resetRegion keeps their page runs as a
/// re-carve reservoir) and parked, so the next acquire() hands back a
/// warm, empty region without touching the PageSource at all.
///
/// Threading model: a RegionPool is thread-affine, exactly like the
/// RegionManager it wraps — hold one per worker thread (stack-local or
/// thread_local) over that thread's manager. Steady-state acquire()
/// is then one TLS load (the pool) plus one vector pop; release() is a
/// resetRegion plus one push. Shared regions (par::ParallelSpace) must
/// never pass through a pool: retire them with tryDelete, which proves
/// the cross-thread counts are zero first — resetRegion aborts on a
/// live SharedRegion binding.
///
/// Retention policy: the cache is LIFO (the most recently released
/// region is the warmest) and doubly bounded — by region count and by
/// total retained pages. A release that would overflow either bound
/// evicts the *oldest* cached regions back to the PageSource as whole
/// runs (coalescer-friendly), keeping the newcomer. Trimmed and
/// destructed pools return every page; an idle process keeps nothing.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_POOL_H
#define REGION_POOL_H

#include "region/Region.h"
#include "support/Trace.h"

#include <cstdint>
#include <vector>

namespace regions {

/// Bounds for one pool's cache. The defaults suit a request-serving
/// worker: up to 64 warm regions, capped at 4 MiB of retained pages.
struct RegionPoolConfig {
  std::size_t MaxRegions = 64;
  std::size_t MaxRetainedPages = 1024;
};

/// A per-thread cache of reset-ready regions over one RegionManager.
/// Activity is aggregated into the manager's PoolStats (surfaced via
/// MetricsSnapshot) and traced as pool-acquire / pool-release /
/// pool-trim rstat events.
class RegionPool {
public:
  explicit RegionPool(RegionManager &Manager, RegionPoolConfig Config = {})
      : Mgr(Manager), Cfg(Config) {}

  RegionPool(const RegionPool &) = delete;
  RegionPool &operator=(const RegionPool &) = delete;

  /// Returns every cached region's pages to the PageSource.
  ~RegionPool() { trimAll(); }

  /// Hands out an empty region: the most recently released one when the
  /// cache is warm (one pop, no PageSource traffic), a fresh
  /// newRegion() otherwise.
  Region *acquire() {
    if (RGN_LIKELY(!Cache.empty())) {
      Entry E = Cache.back();
      Cache.pop_back();
      RetainedPages -= E.Pages;
      ++Mgr.poolStatsMutable().Hits;
      rstat::traceEvent(rstat::EventKind::PoolAcquire, E.R->id(), 1);
      return E.R;
    }
    return acquireSlow();
  }

  /// Resets \p R in place and parks it for reuse, evicting the oldest
  /// cached regions if the count or page budget would overflow.
  /// Returns false — region untouched, caller keeps it — when the
  /// reset refuses (live external references). \p R must be a private
  /// region of this pool's manager.
  bool release(Region *R) {
    if (RGN_UNLIKELY(!Mgr.resetRegion(R)))
      return false;
    park(R);
    return true;
  }

  /// Deletes every cached region, returning its pages (whole runs) to
  /// the PageSource.
  void trimAll();

  std::size_t cachedRegions() const { return Cache.size(); }
  std::size_t retainedPages() const { return RetainedPages; }
  RegionManager &manager() const { return Mgr; }
  const RegionPoolConfig &config() const { return Cfg; }

private:
  struct Entry {
    Region *R;
    std::uint32_t Pages; ///< ownedPages() at park time
  };

  Region *acquireSlow();
  void park(Region *R);
  void trimFront();

  RegionManager &Mgr;
  RegionPoolConfig Cfg;
  std::vector<Entry> Cache; ///< LIFO: back is the warmest
  std::size_t RetainedPages = 0;
};

} // namespace regions

#endif // REGION_POOL_H
