//===- region/PageMap.h - Address-to-region mapping ------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's allocators "maintain an array mapping page addresses
/// (i.e., memory addresses / 4K) to regions" (§4.1); \c regionOf is the
/// primitive every reference-count operation is built on. Each
/// RegionManager reserves one contiguous arena, so the map is a flat
/// array indexed by page number within the arena. A small global arena
/// registry lets \c regionOf classify *any* pointer: addresses outside
/// every arena (stack, globals, malloc memory) yield nullptr, which is
/// exactly the "not in a region" answer the write barrier needs.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_PAGEMAP_H
#define REGION_PAGEMAP_H

#include "support/Align.h"

#include <cstdint>

namespace regions {

class Region;

namespace detail {

/// One registered arena: [Base, End) plus its page-to-region map.
struct ArenaInfo {
  std::uintptr_t Base;
  std::uintptr_t End;
  Region *const *Map;
};

inline constexpr unsigned kMaxArenas = 32;

extern ArenaInfo GArenas[kMaxArenas];
extern unsigned GNumArenas;

/// Registers \p Map for [Base, Base + NumPages*kPageSize). Fatal if the
/// registry is full. Called by RegionManager construction.
void registerArena(const void *Base, std::size_t NumPages,
                   Region *const *Map);

/// Removes a previously registered arena.
void unregisterArena(const void *Base);

} // namespace detail

/// Returns the region containing \p Ptr, or nullptr if \p Ptr does not
/// point into any live region's pages (stack, global, malloc or freed
/// memory). Interior pointers resolve to their region, as in the paper.
inline Region *regionOf(const void *Ptr) {
  auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
  for (unsigned I = 0, E = detail::GNumArenas; I != E; ++I) {
    const detail::ArenaInfo &A = detail::GArenas[I];
    if (Addr - A.Base < A.End - A.Base)
      return A.Map[(Addr - A.Base) >> kPageShift];
  }
  return nullptr;
}

} // namespace regions

#endif // REGION_PAGEMAP_H
