//===- region/PageMap.h - Address-to-region mapping ------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's allocators "maintain an array mapping page addresses
/// (i.e., memory addresses / 4K) to regions" (§4.1); \c regionOf is the
/// primitive every reference-count operation is built on. Each
/// RegionManager reserves one contiguous arena, so the map is a flat
/// array indexed by page number within the arena. A small global arena
/// registry lets \c regionOf classify *any* pointer: addresses outside
/// every arena (stack, globals, malloc memory) yield nullptr, which is
/// exactly the "not in a region" answer the write barrier needs.
///
/// Nearly every workload runs a single manager, and even multi-manager
/// programs hit the same arena repeatedly, so regionOf checks a cached
/// most-recently-hit arena first: the common case is one bounds test
/// and one map load. Misses (other arenas, or a non-arena address) take
/// the out-of-line registry scan, which refreshes the cache.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_PAGEMAP_H
#define REGION_PAGEMAP_H

#include "support/Align.h"

#include <atomic>
#include <cstdint>

namespace regions {

class Region;

namespace detail {

/// One registered arena: [Base, End) plus its page-to-region map.
struct ArenaInfo {
  std::uintptr_t Base;
  std::uintptr_t End;
  Region *const *Map;
};

inline constexpr unsigned kMaxArenas = 32;

extern ArenaInfo GArenas[kMaxArenas];
extern unsigned GNumArenas;

/// Index of the most recently hit arena; regionOf's fast path probes it
/// before falling back to the full registry scan. Relaxed atomic: a
/// stale value only costs a slow-path trip, never a wrong answer.
extern std::atomic<unsigned> GHotArena;

/// Registers \p Map for [Base, Base + NumPages*kPageSize). Fatal if the
/// registry is full. Called by RegionManager construction.
void registerArena(const void *Base, std::size_t NumPages,
                   Region *const *Map);

/// Removes a previously registered arena.
void unregisterArena(const void *Base);

/// Full registry scan for addresses missing the hot-arena cache;
/// refreshes the cache on a hit.
Region *regionOfSlow(std::uintptr_t Addr);

} // namespace detail

/// Returns the region containing \p Ptr, or nullptr if \p Ptr does not
/// point into any live region's pages (stack, global, malloc or freed
/// memory). Interior pointers resolve to their region, as in the paper.
inline Region *regionOf(const void *Ptr) {
  auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
  const detail::ArenaInfo &Hot =
      detail::GArenas[detail::GHotArena.load(std::memory_order_relaxed)];
  if (Addr - Hot.Base < Hot.End - Hot.Base)
    return Hot.Map[(Addr - Hot.Base) >> kPageShift];
  return detail::regionOfSlow(Addr);
}

} // namespace regions

#endif // REGION_PAGEMAP_H
