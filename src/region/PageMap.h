//===- region/PageMap.h - Address-to-region mapping ------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's allocators "maintain an array mapping page addresses
/// (i.e., memory addresses / 4K) to regions" (§4.1); \c regionOf is the
/// primitive every reference-count operation is built on. Each
/// RegionManager reserves one contiguous arena, so the map is a flat
/// array indexed by page number within the arena. A small global arena
/// registry lets \c regionOf classify *any* pointer: addresses outside
/// every arena (stack, globals, malloc memory) yield nullptr, which is
/// exactly the "not in a region" answer the write barrier needs.
///
/// Nearly every workload runs a single manager, and even multi-manager
/// programs hit the same arena repeatedly, so regionOf checks a cached
/// most-recently-hit arena first: the common case is one bounds test
/// and one map load. Misses (other arenas, or a non-arena address) take
/// the out-of-line registry scan, which refreshes the cache.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_PAGEMAP_H
#define REGION_PAGEMAP_H

#include "support/Align.h"
#include "support/Compiler.h"

#include <atomic>
#include <cstdint>

namespace regions {

class Region;

namespace detail {

/// One registered arena: [Base, Base + Size) plus its page-to-region
/// map. Size is stored precomputed so the lookup fast path is a single
/// subtraction and compare per address. The fields are relaxed atomics
/// — identical codegen to plain words on the lookup paths — because
/// unregisterArena compacts the registry in place while lock-free
/// readers may be scanning it; logical consistency across the three
/// words comes from GArenaSeq below, not from the per-field atomicity.
struct ArenaInfo {
  std::atomic<std::uintptr_t> Base;
  std::atomic<std::uintptr_t> Size;
  std::atomic<Region *const *> Map;
};

inline constexpr unsigned kMaxArenas = 32;

extern ArenaInfo GArenas[kMaxArenas];
extern std::atomic<unsigned> GNumArenas;

/// Registry generation, seqlock style: odd while registerArena /
/// unregisterArena mutate the table, even when it is stable, bumped on
/// both sides of every mutation. Readers that may legitimately race a
/// manager's death (the parallel resolving exchange — see
/// regionOfStable) snapshot it, scan, and retry if it moved; the
/// allocator and write-barrier paths skip the validation entirely
/// because their probed arenas outlive the probe by contract.
extern std::atomic<std::uint64_t> GArenaSeq;

/// The most recently hit arena entry; regionOf's fast path probes it
/// before falling back to the full registry scan. Points at GArenas[0]
/// (all-zero while empty, so every probe misses) until a lookup hits.
/// A pointer rather than an index: the probe setup is then a load of
/// three adjacent words with no indexing arithmetic. Relaxed atomic: a
/// stale value only costs a slow-path trip, never a wrong answer.
extern std::atomic<const ArenaInfo *> GHotArena;

/// Registers \p Map for [Base, Base + NumPages*kPageSize). Fatal if the
/// registry is full. Called by RegionManager construction.
void registerArena(const void *Base, std::size_t NumPages,
                   Region *const *Map);

/// Removes a previously registered arena.
void unregisterArena(const void *Base);

/// Full registry scan for addresses missing the hot-arena cache;
/// refreshes the cache on a hit.
Region *regionOfSlow(std::uintptr_t Addr);

/// Registry scan that does NOT refresh the hot-arena cache. Backs
/// regionOfStable() below.
Region *regionOfSlowNoCache(std::uintptr_t Addr);

/// rsan checked dereference (RGN_HARDEN; see support/Harden.h): fatal
/// unless \p Ptr still resolves to \p Expected in the page map, i.e.
/// the region a RegionPtr was last assigned under is still live and
/// still owns the pointee's page. Out of line so the (cold, diagnostic)
/// check never bloats dereference sites.
void rsanCheckDeref(const void *Ptr, const Region *Expected);

} // namespace detail

namespace detail {

/// A snapshot of the hot arena, for resolving several addresses with a
/// single load of the registry state. The write barrier classifies up
/// to three addresses (old value, new value, slot) per store; probing
/// them through one snapshot replaces three independent hot-arena reads
/// with one, and each lookup is then a subtraction, a bounds test, and
/// a map load. A miss falls back to the registry scan, which refreshes
/// the global hot-arena cache (but not this snapshot — a stale snapshot
/// only costs slow-path trips, never a wrong answer).
class ArenaProbe {
public:
  ArenaProbe() {
    const ArenaInfo *Hot = GHotArena.load(std::memory_order_relaxed);
    Base = Hot->Base.load(std::memory_order_relaxed);
    Size = Hot->Size.load(std::memory_order_relaxed);
    Map = Hot->Map.load(std::memory_order_relaxed);
  }

  Region *lookup(const void *Ptr) const {
    auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
    if (Addr - Base < Size)
      return Map[(Addr - Base) >> kPageShift];
    if (!Addr)
      return nullptr; // null is never in a region; skip the registry
    return regionOfSlow(Addr);
  }

  /// Resolves two addresses with a single OR-combined bounds test. For
  /// power-of-two arena sizes (the default reservation) the combined
  /// test is exact; otherwise it can conservatively fail even when both
  /// addresses are in range. Returns false on a miss without touching
  /// the outputs — the caller falls back to per-address lookups, so a
  /// conservative failure costs only speed, never correctness.
  bool lookupBoth(const void *P1, const void *P2, Region *&R1,
                  Region *&R2) const {
    auto O1 = reinterpret_cast<std::uintptr_t>(P1) - Base;
    auto O2 = reinterpret_cast<std::uintptr_t>(P2) - Base;
    if ((O1 | O2) >= Size)
      return false;
    R1 = Map[O1 >> kPageShift];
    R2 = Map[O2 >> kPageShift];
    return true;
  }

private:
  std::uintptr_t Base;
  std::uintptr_t Size;
  Region *const *Map;
};

} // namespace detail

/// Returns the region containing \p Ptr, or nullptr if \p Ptr does not
/// point into any live region's pages (stack, global, malloc or freed
/// memory). Interior pointers resolve to their region, as in the paper.
inline Region *regionOf(const void *Ptr) {
  auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
  const detail::ArenaInfo *Hot =
      detail::GHotArena.load(std::memory_order_relaxed);
  std::uintptr_t Base = Hot->Base.load(std::memory_order_relaxed);
  if (Addr - Base < Hot->Size.load(std::memory_order_relaxed))
    return Hot->Map.load(std::memory_order_relaxed)[(Addr - Base) >>
                                                    kPageShift];
  return detail::regionOfSlow(Addr);
}

/// regionOf for cross-arena probes: same answer, but a miss of the
/// hot-arena cache scans the registry *without* refreshing the cache.
/// The parallel resolving exchange (Parallel.h) classifies pointers it
/// displaced from a shared slot, which in pipeline workloads belong to
/// *other* threads' arenas; letting those probes steal the hot-arena
/// entry would evict the arena the calling thread's own allocator and
/// write-barrier fast paths are working from, trading one thread's
/// resolve miss for many barrier misses. Use regionOf() everywhere the
/// probed address correlates with the caller's next ones.
///
/// Unlike regionOf(), this path is seqlock-validated against GArenaSeq:
/// a resolve probe classifies a pointer another thread displaced, and
/// may run exactly while an unrelated manager dies and unregisterArena
/// compacts the registry under it. (The displaced reference's own
/// arena cannot die — the undropped count keeps its region's sum
/// positive — but the registry slot it sits in can move.) The barrier
/// and allocator paths keep the unvalidated fast path: their probed
/// arenas outlive the probe by the quiescence contract, and the
/// validation would tax every store.
inline Region *regionOfStable(const void *Ptr) {
  auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
  for (;;) {
    std::uint64_t Seq = detail::GArenaSeq.load(std::memory_order_acquire);
    if (RGN_UNLIKELY(Seq & 1))
      continue; // mutation in flight; reread
    const detail::ArenaInfo *Hot =
        detail::GHotArena.load(std::memory_order_relaxed);
    Region *R;
    std::uintptr_t Base = Hot->Base.load(std::memory_order_relaxed);
    if (Addr - Base < Hot->Size.load(std::memory_order_relaxed))
      R = Hot->Map.load(std::memory_order_relaxed)[(Addr - Base) >>
                                                   kPageShift];
    else
      R = detail::regionOfSlowNoCache(Addr);
    // Order the scan's loads before the revalidation load.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (RGN_LIKELY(detail::GArenaSeq.load(std::memory_order_relaxed) ==
                   Seq))
      return R;
  }
}

} // namespace regions

#endif // REGION_PAGEMAP_H
