//===- region/Pool.cpp - rpool: recycled-region caches --------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/Pool.h"

#include <cassert>

using namespace regions;

Region *RegionPool::acquireSlow() {
  ++Mgr.poolStatsMutable().Misses;
  Region *R = Mgr.newRegion();
  rstat::traceEvent(rstat::EventKind::PoolAcquire, R->id(), 0);
  return R;
}

void RegionPool::park(Region *R) {
  // The reset already ran: R is empty, unreferenced, and still owns its
  // reservoir runs.
  std::size_t Pages = R->ownedPages();
  if (RGN_UNLIKELY(Cfg.MaxRegions == 0 || Pages > Cfg.MaxRetainedPages)) {
    // Can never fit, even into an empty cache: return it to the source
    // outright — before evicting anything, so an oversized release
    // cannot flush warm entries it was never going to displace. No
    // pool-trim trace — the region was never parked, so the
    // pooled-regions counter track must not tick down.
    ++Mgr.poolStatsMutable().Trims;
    bool Deleted = Mgr.deleteRegionRaw(R);
    assert(Deleted && "an empty, unreferenced region must delete");
    (void)Deleted;
    return;
  }
  // Make room under both bounds by evicting the oldest (coldest)
  // entries; the newcomer's pages are the warmest in cache.
  while (!Cache.empty() && (Cache.size() >= Cfg.MaxRegions ||
                            RetainedPages + Pages > Cfg.MaxRetainedPages))
    trimFront();
  Cache.push_back({R, static_cast<std::uint32_t>(Pages)});
  RetainedPages += Pages;
  ++Mgr.poolStatsMutable().Releases;
  rstat::traceEvent(rstat::EventKind::PoolRelease, R->id(),
                    static_cast<std::uint32_t>(Pages));
}

void RegionPool::trimFront() {
  Entry E = Cache.front();
  Cache.erase(Cache.begin());
  RetainedPages -= E.Pages;
  ++Mgr.poolStatsMutable().Trims;
  rstat::traceEvent(rstat::EventKind::PoolTrim, E.R->id(), E.Pages);
  // Whole-run return: freeRegionMemory walks the run table, so the
  // PageSource sees each retained run intact and coalescer-friendly.
  bool Deleted = Mgr.deleteRegionRaw(E.R);
  assert(Deleted && "a pooled region must delete cleanly");
  (void)Deleted;
}

void RegionPool::trimAll() {
  while (!Cache.empty())
    trimFront();
}
