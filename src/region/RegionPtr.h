//===- region/RegionPtr.h - Region pointers with write barriers -*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C@ language distinguishes region pointers (T@) from normal
/// pointers; its compiler emits reference-count updates on region-
/// pointer writes (§3.1, §4.2.2). This header is that compiler's role
/// in library form:
///
///  - RegionPtr<T>: a region pointer stored in the heap or in global
///    storage. Assignment runs the Figure 5 write barrier, with the
///    sameregion optimization (stores within the pointer's own region
///    are never counted). Destruction performs the paper's destroy().
///
///  - rt::Ref<T>: a region pointer in a local variable. Writes are
///    free (deferred counting); the local registers itself with the
///    shadow stack so deleteRegion's stack scan can find it.
///
///  - deleteRegion(...): typed wrappers over deleteRegionImpl that
///    implement the paper's "no references excepting *x" rule for
///    each flavour of handle.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_REGIONPTR_H
#define REGION_REGIONPTR_H

#include "region/PageMap.h"
#include "region/Region.h"
#include "region/RuntimeStack.h"

#include <cassert>
#include <cstddef>
#include <type_traits>

namespace regions {

namespace detail {

/// The Figure 5 write barrier for `*Slot = NewVal`. One inline branch:
/// the old and new values are classified through a single hot-arena
/// probe, and the dominant sameregion outcome bumps only the region's
/// own deferred counters — no manager state, no count adjustments. The
/// cross-region remainder (slot classification, buffered ±1 count
/// adjustments) is out of line in barrierCrossRegion.
RGN_ALWAYS_INLINE void barrierAssign(void **Slot, void *NewVal) {
  void *OldVal = *Slot;
  // Null over null — the default-construct / destroy-empty pattern —
  // involves no region and, as in the seed's both-null early exit,
  // records nothing; skip the region lookups entirely.
  if ((reinterpret_cast<std::uintptr_t>(OldVal) |
       reinterpret_cast<std::uintptr_t>(NewVal)) == 0) {
    *Slot = NewVal;
    return;
  }
  ArenaProbe Probe;
  Region *OldR;
  Region *NewR;
  if (!Probe.lookupBoth(OldVal, NewVal, OldR, NewR)) {
    // One of the values is null or outside the hot arena; classify each
    // address on its own (lookup handles null and registry misses).
    OldR = Probe.lookup(OldVal);
    NewR = Probe.lookup(NewVal);
  }
  *Slot = NewVal;
  if (RGN_LIKELY(OldR == NewR)) {
    // Rebinding within one region (or two non-region values); the
    // paper's barriers take the same early exit.
    if (OldR)
      OldR->noteSameRegionStore();
    return;
  }
  barrierCrossRegion(Slot, OldR, NewR, Probe);
}

} // namespace detail

/// A counted region pointer for heap and global storage (C@'s T@ in a
/// structure field or global variable). Fields of this type make their
/// enclosing struct non-trivially destructible, which routes it to the
/// scanned allocator — the same discipline C@ enforces with types.
template <typename T> class RegionPtr {
public:
  RegionPtr() = default;
  RegionPtr(std::nullptr_t) {}
  RegionPtr(T *Ptr) { assign(Ptr); }
  RegionPtr(const RegionPtr &Other) { assign(Other.Raw); }
  RegionPtr &operator=(const RegionPtr &Other) {
    assign(Other.Raw);
    return *this;
  }
  RegionPtr &operator=(T *Ptr) {
    assign(Ptr);
    return *this;
  }
  RegionPtr &operator=(std::nullptr_t) {
    assign(nullptr);
    return *this;
  }

  /// The paper's destroy(): releases this reference's count.
  ~RegionPtr() { assign(nullptr); }

  T *get() const { return Raw; }
  T &operator*() const {
    rsanCheck();
    return *Raw;
  }
  T *operator->() const {
    rsanCheck();
    return Raw;
  }
  explicit operator bool() const { return Raw != nullptr; }
  operator T *() const { return Raw; }

  /// Address of the underlying storage; used by deleteRegion.
  void **slotAddress() { return reinterpret_cast<void **>(&Raw); }

private:
  void assign(T *Ptr) {
    detail::barrierAssign(reinterpret_cast<void **>(&Raw),
                          const_cast<void *>(static_cast<const void *>(Ptr)));
#if RGN_HARDEN_ENABLED
    RsanR = regionOf(static_cast<const void *>(Ptr));
#endif
  }

  /// rsan checked dereference: only `*` and `->` are checked — `get()`
  /// and the implicit conversion stay free so comparisons and hashing
  /// of stale pointers (legal, common) raise no false alarms.
  void rsanCheck() const {
#if RGN_HARDEN_ENABLED
    detail::rsanCheckDeref(Raw, RsanR);
#endif
  }

  T *Raw = nullptr; // first member: slotAddress() aliases the object
#if RGN_HARDEN_ENABLED
  /// The pointee's region as of the last assignment; a dereference
  /// re-resolves Raw through the page map and must find it again.
  Region *RsanR = nullptr;
#endif
};

namespace rt {

/// A region pointer held in a local variable (automatic storage only).
/// Writes never touch reference counts — the deferred scheme of §4.2.1
/// — because the slot registers with the shadow stack and is counted
/// only when its frame is scanned.
template <typename T> class Ref {
public:
  Ref() { RuntimeStack::current().registerSlot(&Node, slotAddress()); }
  Ref(T *Ptr) : Ref() { set(Ptr); }
  Ref(const Ref &Other) : Ref() { set(Other.get()); }
  Ref(const RegionPtr<T> &Other) : Ref() { set(Other.get()); }

  Ref &operator=(const Ref &Other) {
    set(Other.get());
    return *this;
  }
  Ref &operator=(T *Ptr) {
    set(Ptr);
    return *this;
  }
  Ref &operator=(std::nullptr_t) {
    set(nullptr);
    return *this;
  }

  ~Ref() {
    // If this frame was scanned (possible only for the quirky
    // write-through-reference cases localWrite handles), keep counts
    // exact by clearing through the runtime before unregistering.
    RuntimeStack::localWrite(&Node, nullptr);
    RuntimeStack::current().unregisterSlot(&Node);
  }

  T *get() const { return Raw; }
  T &operator*() const { return *Raw; }
  T *operator->() const { return Raw; }
  explicit operator bool() const { return Raw != nullptr; }
  operator T *() const { return Raw; }

  void **slotAddress() { return reinterpret_cast<void **>(&Raw); }

  /// This local's shadow-stack record; deleteRegion classifies its
  /// handle through it in O(1).
  const SlotNode *node() const { return &Node; }

  /// Stores through the shadow stack (free unless the frame has been
  /// scanned; see RuntimeStack::localWrite).
  void set(T *Ptr) {
    RuntimeStack::localWrite(
        &Node, const_cast<void *>(static_cast<const void *>(Ptr)));
  }

private:
  T *Raw = nullptr;
  SlotNode Node;
};

/// A local handle to a region, the moral equivalent of the paper's
/// `Region r = newregion()` local. The handle points at the Region
/// structure, which lives in the region's own first page, so the stack
/// scan naturally counts it as a reference into the region.
using RegionHandle = Ref<Region>;

} // namespace rt

/// A region pointer statically known to stay within its own region —
/// the compile-time sameregion recognition the paper lists as planned
/// future work (§5.6): "We have considered various methods of reducing
/// the cost of safety, such as recognizing sameregion pointers at
/// compile-time". Assignment performs no barrier at all; debug builds
/// assert the sameregion property actually holds.
///
/// Use for intra-region links of data structures that never point
/// outside their region (list nexts, tree children built in one
/// region). The cleanup thunk cost also disappears: SameRegionPtr is
/// trivially destructible, so objects whose only pointers are
/// SameRegionPtr fields take the headerless allocation path.
template <typename T> class SameRegionPtr {
public:
  SameRegionPtr() = default;
  SameRegionPtr(std::nullptr_t) {}
  SameRegionPtr(T *Ptr) { assign(Ptr); }
  SameRegionPtr &operator=(T *Ptr) {
    assign(Ptr);
    return *this;
  }
  SameRegionPtr &operator=(std::nullptr_t) {
    Raw = nullptr;
#if RGN_HARDEN_ENABLED
    RsanR = nullptr;
#endif
    return *this;
  }

  T *get() const { return Raw; }
  T &operator*() const {
    rsanCheck();
    return *Raw;
  }
  T *operator->() const {
    rsanCheck();
    return Raw;
  }
  explicit operator bool() const { return Raw != nullptr; }
  operator T *() const { return Raw; }

private:
  void assign(T *Ptr) {
#if RGN_HARDEN_ENABLED
    // Hardened builds turn a violated containment claim from UB (a
    // skipped count that later manifests as a use-after-delete) into an
    // immediate diagnosed error, in release configurations too.
    Region *Home = regionOf(static_cast<void *>(this));
    if (Ptr && Home && regionOf(static_cast<const void *>(Ptr)) != Home)
      reportFatalError("rsan: SameRegionPtr assigned a pointer from "
                       "outside its own region (escaping sameregion "
                       "claim; the store needed a counted barrier)");
    RsanR = Ptr ? regionOf(static_cast<const void *>(Ptr)) : nullptr;
#endif
    assert((!Ptr || regionOf(static_cast<void *>(this)) == nullptr ||
            regionOf(static_cast<const void *>(Ptr)) ==
                regionOf(static_cast<void *>(this))) &&
           "SameRegionPtr must not escape its region");
    Raw = Ptr;
  }

  void rsanCheck() const {
#if RGN_HARDEN_ENABLED
    detail::rsanCheckDeref(Raw, RsanR);
#endif
  }

  T *Raw = nullptr;
#if RGN_HARDEN_ENABLED
  Region *RsanR = nullptr;
#endif
};

static_assert(std::is_trivially_destructible_v<SameRegionPtr<int>>,
              "sameregion pointers need no cleanup");

/// Stores \p New into the counted slot \p Slot when the caller can
/// prove statically that slot, old value, and new value all live in
/// region \p R — the per-store form of the sameregion elision that
/// SameRegionPtr expresses per-field. The store skips the barrier
/// entirely (no stats, no counts: a sameregion store adjusts no counts
/// anyway, so observable reference counts are unchanged); debug builds
/// assert the containment claim.
template <typename T>
inline void assignKnownRegion(RegionPtr<T> &Slot, T *New, Region *R) {
  assert(R && "assignKnownRegion needs the witnessing region");
  assert(regionOf(static_cast<void *>(&Slot)) == R &&
         "slot must live in the claimed region");
  assert((!New || regionOf(static_cast<const void *>(New)) == R) &&
         "new value must live in the claimed region");
  assert((!Slot.get() ||
          regionOf(static_cast<const void *>(Slot.get())) == R) &&
         "old value must live in the claimed region");
  *Slot.slotAddress() = const_cast<void *>(static_cast<const void *>(New));
}

/// Deletes the region referred to by local handle \p Handle (paper:
/// deleteregion(&r) with r a local). On success the handle is nulled
/// and true is returned; on failure (external references remain) the
/// handle and region are untouched and false is returned. A null
/// handle returns false.
inline bool deleteRegion(rt::Ref<Region> &Handle) {
  Region *R = Handle.get();
  if (!R)
    return false;
  return R->manager().deleteRegionImpl(R, Handle.slotAddress(), false,
                                       Handle.node());
}

/// Deletes through a counted (global or heap) handle. The handle's own
/// count is excepted per the paper's rule, unless the handle is stored
/// inside the region itself (sameregion handles were never counted).
inline bool deleteRegion(RegionPtr<Region> &Handle) {
  Region *R = Handle.get();
  if (!R)
    return false;
  bool Counted = regionOf(Handle.slotAddress()) != R;
  return R->manager().deleteRegionImpl(R, Handle.slotAddress(), Counted);
}

} // namespace regions

#endif // REGION_REGIONPTR_H
