//===- region/Region.cpp - Explicit region memory management -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/Region.h"
#include "region/RuntimeStack.h"
#include "support/Compiler.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace regions;
using detail::headerOf;
using detail::kPageZeroTail;
using detail::PageHeader;
using detail::PageKind;
using detail::writeEndMarker;

static_assert(std::is_standard_layout_v<Region>, "Region lives in raw pages");
static_assert(std::is_trivially_destructible_v<Region>,
              "Region is reclaimed as raw pages, never destroyed");

RegionManager::RegionManager(SafetyConfig Config, std::size_t ReserveBytes)
    : Source(ReserveBytes), Cfg(Config) {
  Map = static_cast<Region **>(
      std::calloc(Source.reservedPages(), sizeof(Region *)));
  if (!Map)
    reportFatalError("RegionManager: cannot allocate page map");
  detail::registerArena(Source.base(), Source.reservedPages(), Map);
  // Hardened builds quarantine deleted regions' pages by default;
  // kRsanDefaultQuarantinePages is zero otherwise, so this is a no-op.
  if (detail::kRsanDefaultQuarantinePages != 0)
    Source.setQuarantineBudget(detail::kRsanDefaultQuarantinePages);
  // rstat lazy attach: if a tracing epoch is open, this thread records
  // into it from here on. No-op (one relaxed load) when disarmed.
  rstat::attachThread();
}

RegionManager::~RegionManager() {
  // Buffered adjustments may hold pointers into this manager's regions;
  // apply them while the arena is still mapped.
  detail::flushPendingCounts();
  // Live regions die with the arena without passing through
  // freeRegionMemory; release their spilled run tables here.
  for (Region *R = LiveHead; R; R = R->NextLive)
    std::free(R->OverflowRuns);
  detail::unregisterArena(Source.base());
  std::free(Map);
}

thread_local RGN_CONSTINIT regions::detail::PendingCountBuffer
    regions::detail::GPendingCounts;

namespace {

/// The thread-exit half of the pending-count buffer. GPendingCounts
/// itself must stay trivially destructible — that triviality is what
/// lets the barrier fast path load it with no TLS init guard — so the
/// buffer cannot drain itself when its thread dies. Before this
/// companion existed, a thread that exited holding buffered ±1 deltas
/// simply lost them: a later deleteregion could then succeed with a
/// live external reference (use-after-free) or refuse a legal delete
/// forever (leak).
///
/// The companion is an ordinary thread_local with a destructor, so the
/// C++ runtime (__cxa_thread_atexit) runs it at thread exit. It is
/// constructed — i.e. its one-time TLS guard is paid — only inside
/// installSlow, the sole place a buffered entry is ever created, so
/// the tag-match hot path still compiles to guard-free TLS loads.
///
/// Destruction order: thread_locals destroy in reverse construction
/// order, so TLS objects built *after* the first buffered deposit die
/// before the flusher and their cross-region stores are drained here
/// normally. TLS objects built *before* it die after the drain; their
/// deposits find AtExit set and apply directly in installSlow (the
/// tag-match path cannot resurrect a drained entry because flushSlow
/// nulls the tags).
struct PendingCountFlusher {
  bool Armed = false;
  ~PendingCountFlusher() {
    if (!Armed)
      return;
    regions::detail::flushPendingCounts();
    regions::detail::GPendingCounts.AtExit = 1;
  }
};

thread_local PendingCountFlusher GPendingFlusher;

} // namespace

void regions::detail::PendingCountBuffer::flushSlow() {
  // Tags must be nulled, not just the bitmask cleared: a deleted
  // region's pages can be reissued to a new region at the same
  // address, and a stale tag would then match it. Every deletion path
  // flushes before freeing, so nulling here closes that ABA window.
  unsigned Live = Occupied;
  Occupied = 0;
  rstat::traceEvent(rstat::EventKind::PendingFlush,
                    static_cast<std::uint64_t>(__builtin_popcount(Live)));
  while (Live) {
    unsigned I = static_cast<unsigned>(__builtin_ctz(Live));
    Live &= Live - 1;
    Region *R = Rgn[I];
    Rgn[I] = nullptr;
    if (Delta[I] != 0)
      R->rcAdd(Delta[I]);
    Delta[I] = 0;
  }
}

void regions::Region::spillBarrierPacked() {
  std::uint64_t P = BarrierPacked;
  BarrierPacked = 0;
  BarrierStoresDelta += P & kBarrierFieldMask;
  BarrierAdjustmentsDelta += (P >> kBarrierAdjShift) & kBarrierFieldMask;
  BarrierSameRegionDelta += (P >> kBarrierSameShift) & kBarrierFieldMask;
}

void regions::detail::PendingCountBuffer::installSlow(unsigned I, Region *R,
                                                      long long D) {
  // Past the exit drain (another TLS destructor is doing cross-region
  // stores): re-buffering would lose the delta for good, so apply it
  // directly. The region is necessarily still live — something on this
  // thread holds a reference it is in the middle of retargeting.
  if (RGN_UNLIKELY(AtExit != 0)) {
    R->rcAdd(D);
    return;
  }
  // First buffered entry on this thread constructs the companion
  // flusher, registering the exit drain; later calls just set a TLS
  // bool it already owns.
  GPendingFlusher.Armed = true;
  // Collision: the slot's current occupant loses its buffering — apply
  // its delta directly and hand the slot to the newcomer. Distinct
  // regions never share a page, so the tag compare in the caller is
  // exact.
  if (Region *Old = Rgn[I]) {
    if (Delta[I] != 0)
      Old->rcAdd(Delta[I]);
  }
  Rgn[I] = R;
  Delta[I] = D;
  Occupied |= 1u << I;
}

void RegionManager::setMapRange(const void *Page, std::size_t NumPages,
                                Region *R) {
  std::size_t Idx = Source.pageIndex(Page);
  std::fill(Map + Idx, Map + Idx + NumPages, R);
}

void RegionManager::recordRun(Region *R, std::uint32_t PageIdx,
                              std::uint32_t NumPages) {
  std::uint32_t I = R->NumRuns++;
  if (I < Region::kInlineRuns) {
    R->InlineRuns[I] = {PageIdx, NumPages};
    return;
  }
  std::uint32_t OvIdx = I - Region::kInlineRuns;
  if (OvIdx == R->OverflowCap) {
    std::uint32_t NewCap = R->OverflowCap ? R->OverflowCap * 2 : 16;
    auto *Grown = static_cast<detail::PageRun *>(std::realloc(
        R->OverflowRuns, std::size_t{NewCap} * sizeof(detail::PageRun)));
    if (!Grown)
      reportFatalError("region run table: out of memory");
    R->OverflowRuns = Grown;
    R->OverflowCap = NewCap;
  }
  R->OverflowRuns[OvIdx] = {PageIdx, NumPages};
}

char *RegionManager::carvePage(Region *R, bool &Zeroed) {
  if (R->RunCursor == R->RunEnd) {
    // rpool reservoir first: runs retained by resetRegion re-carve with
    // no PageSource traffic, no page-map writes, and no RunGrab trace —
    // the pages never left the region. Never-reset regions keep the
    // window empty, so this is one always-false compare for them.
    if (RGN_UNLIKELY(R->NextReserve < R->ReserveEnd)) {
      detail::PageRun Run =
          R->NextReserve < Region::kInlineRuns
              ? R->InlineRuns[R->NextReserve]
              : R->OverflowRuns[R->NextReserve - Region::kInlineRuns];
      ++R->NextReserve;
      R->RunCursor = Run.PageIdx;
      R->RunEnd = Run.PageIdx + Run.NumPages;
      R->RunZeroed = 0; // dirty: written by the previous incarnation
    } else {
      // Geometric growth, doubling every other run: 1, 1, 2, 2, 4, 4,
      // 8, 8, then kMaxRunPages forever. Two leading single-page runs
      // keep the common tiny region (its own page plus one str page)
      // waste-free, the half-rate doubling keeps mid-size regions'
      // uncarved slack (which Figure 8's osBytes high-water mark sees)
      // low, and the cap keeps every freed run exact-bin recyclable.
      static_assert(Region::kMaxRunPages == 16, "growth schedule assumes 16");
      std::uint32_t N = R->NumRuns >= 8 ? Region::kMaxRunPages
                                        : 1u << (R->NumRuns >> 1);
      bool RunZeroed = false;
      char *Base = static_cast<char *>(Source.allocPages(N, &RunZeroed));
      auto Idx = static_cast<std::uint32_t>(Source.pageIndex(Base));
      recordRun(R, Idx, N);
      rstat::traceEvent(rstat::EventKind::RunGrab, Idx, N);
      // The whole run maps to R immediately: regionOf on an uncarved
      // page answers R, which is correct — the pages are owned by (and
      // die with) this region.
      setMapRange(Base, N, R);
      if constexpr (detail::kRsanEnabled) {
        // Uncarved pages are out of bounds until handed to a bump list;
        // freePages lifts this protection run-wise at teardown.
        if (N > 1)
          RGN_ASAN_POISON(Base + kPageSize, (std::size_t{N} - 1) * kPageSize);
      }
      R->RunCursor = Idx;
      R->RunEnd = Idx + N;
      R->RunZeroed = RunZeroed ? 1 : 0;
    }
  }
  char *Page = Source.base() + std::size_t{R->RunCursor} * kPageSize;
  ++R->RunCursor;
  if constexpr (detail::kRsanEnabled)
    RGN_ASAN_UNPOISON(Page, kPageSize);
  Zeroed = R->RunZeroed != 0;
  return Page;
}

char *RegionManager::newPage(Region *R, PageKind Kind) {
  bool Zeroed = false;
  char *Page = carvePage(R, Zeroed);
  std::uint16_t Flags = Zeroed ? kPageZeroTail : 0;
  // A dirty normal page under ZeroMemory is cleared wholesale on
  // refill: one page-sized memset replaces the per-object memsets and
  // end-marker stores the fast path would otherwise issue.
  if (!Zeroed && Kind == PageKind::Normal && Cfg.ZeroMemory) {
    std::memset(Page + sizeof(PageHeader), 0, kPageSize - sizeof(PageHeader));
    Flags = kPageZeroTail;
  }
  Region::BumpList &List = Kind == PageKind::Str ? R->Str : R->Normal;
  *headerOf(Page) = {List.Head, sizeof(PageHeader), Kind, Flags};
  List.Head = Page;
  List.Offset = sizeof(PageHeader);
  List.ZeroTail = (Flags & kPageZeroTail) ? 1 : 0;
  if constexpr (detail::kRsanEnabled) {
    // The whole bump tail is out of bounds until allocated from; each
    // allocation unpoisons exactly its own extent. Str pages also need
    // the metadata-walk terminator that only normal pages kept before.
    RGN_ASAN_POISON(Page + List.Offset, kPageSize - List.Offset);
    if (!(Flags & kPageZeroTail))
      writeEndMarker(Page, List.Offset);
  } else if (Kind == PageKind::Normal && !(Flags & kPageZeroTail)) {
    writeEndMarker(Page, List.Offset);
  }
  return Page;
}

Region *RegionManager::newRegion() {
  bool Zeroed = false;
  char *Page = static_cast<char *>(Source.allocPages(1, &Zeroed));
  std::uint16_t Flags = Zeroed ? kPageZeroTail : 0;
  if (!Zeroed && Cfg.ZeroMemory) {
    std::memset(Page + sizeof(PageHeader), 0, kPageSize - sizeof(PageHeader));
    Flags = kPageZeroTail;
  }
  *headerOf(Page) = {nullptr, 0, PageKind::Normal, Flags};

  // The region structure lives in its own first page, offset by
  // successive multiples of 64 bytes (up to 512) to spread region
  // structures across cache lines (§4.1).
  std::uint32_t CacheOffset = 64 * (NextRegionId % 9);
  auto *R = ::new (Page + sizeof(PageHeader) + CacheOffset) Region();
  R->Mgr = this;
  R->Id = NextRegionId++;
  R->CountRefs = Cfg.RefCounts;
  R->Normal.Head = Page;
  R->Normal.Offset = static_cast<std::uint32_t>(
      sizeof(PageHeader) + CacheOffset + alignTo(sizeof(Region),
                                                 kDefaultAlignment));
  R->Normal.ZeroTail = (Flags & kPageZeroTail) ? 1 : 0;
  headerOf(Page)->ScanStart = R->Normal.Offset;
  if constexpr (detail::kRsanEnabled)
    RGN_ASAN_POISON(Page + R->Normal.Offset, kPageSize - R->Normal.Offset);
  if (!(Flags & kPageZeroTail))
    writeEndMarker(Page, R->Normal.Offset);
  setMapRange(Page, 1, R);
  // The region's own page is its first (single-page) run; the carve
  // cursor starts exhausted, so the next page grabs a fresh run.
  R->InlineRuns[0] = {static_cast<std::uint32_t>(Source.pageIndex(Page)), 1};
  R->NumRuns = 1;
  rstat::traceEvent(rstat::EventKind::NewRegion, R->Id);
  rstat::traceEvent(rstat::EventKind::RunGrab, R->InlineRuns[0].PageIdx, 1);

  R->NextLive = LiveHead;
  if (LiveHead)
    LiveHead->PrevLive = R;
  LiveHead = R;

  ++Stats.TotalRegions;
  ++Stats.LiveRegions;
  if (Stats.LiveRegions > Stats.MaxLiveRegions)
    Stats.MaxLiveRegions = Stats.LiveRegions;
  return R;
}

void *RegionManager::allocRawSlow(Region *R, std::size_t Size, bool Zeroed) {
  std::size_t Payload = alignTo(Size, kDefaultAlignment);
  std::size_t Need = detail::kRsanObjOverhead + Payload;
  if (Payload < Size || Need > kPageSize - sizeof(PageHeader))
    return allocLarge(R, Size, nullptr, Zeroed);

  newPage(R, PageKind::Str);
  Region::BumpList &B = R->Str;
  char *Base = B.Head + B.Offset;
  B.Offset += static_cast<std::uint32_t>(Need);
  if constexpr (detail::kRsanEnabled) {
    RGN_ASAN_UNPOISON(Base, Need);
    detail::rsanStampObject(Base, Size, Payload);
    if (!B.ZeroTail)
      writeEndMarker(B.Head, B.Offset);
  }
  char *Result = Base + detail::kRsanSizeHdr;
  if (Zeroed && !B.ZeroTail)
    std::memset(Result, 0, Payload);
  ++R->NumAllocs;
  R->ReqBytes += Size;
  return Result;
}

void *RegionManager::allocScannedSlow(Region *R, std::size_t Size,
                                      ScanThunk Thunk) {
  std::size_t Payload = alignTo(Size, kDefaultAlignment);
  std::size_t Need = sizeof(ScanThunk) + detail::kRsanObjOverhead + Payload;
  if (Payload < Size || Need > kPageSize - sizeof(PageHeader))
    return allocLarge(R, Size, Thunk, false);

  newPage(R, PageKind::Normal);
  Region::BumpList &B = R->Normal;
  char *Base = B.Head + B.Offset;
  RGN_ASAN_UNPOISON(Base, Need);
  *reinterpret_cast<ScanThunk *>(Base) = Thunk;
  detail::rsanStampObject(Base + sizeof(ScanThunk), Size, Payload);
  B.Offset += static_cast<std::uint32_t>(Need);
  char *Result = Base + sizeof(ScanThunk) + detail::kRsanSizeHdr;
  if (!B.ZeroTail) {
    writeEndMarker(B.Head, B.Offset);
    if (Cfg.ZeroMemory)
      std::memset(Result, 0, Payload);
  }
  ++R->NumAllocs;
  R->ReqBytes += Size;
  return Result;
}

void *RegionManager::allocLarge(Region *R, std::size_t Size, ScanThunk Thunk,
                                bool Zeroed) {
  std::size_t Aligned = alignTo(Size, kDefaultAlignment);
  if (Aligned < Size ||
      Aligned > SIZE_MAX - detail::kLargePayloadOff - detail::kRsanRedZone -
                    kPageSize)
    reportFatalError("region allocation size overflows");
  std::size_t Total = detail::kLargePayloadOff + Aligned + detail::kRsanRedZone;
  std::size_t NumPages = alignTo(Total, kPageSize) / kPageSize;
  bool PagesZeroed = false;
  char *Block = nullptr;
  // rpool reservoir first: a region-per-request steady state re-
  // allocates the same large buffer every incarnation, so after a
  // reset an exact-fit retained run is the common case. Reuse skips
  // the source grab, the RunGrab trace, and the per-page map writes —
  // the run is already recorded and mapped; only the object headers
  // are rewritten. The hit run is swapped to the window's front so the
  // reserve window stays contiguous for carvePage.
  if (RGN_UNLIKELY(R->NextReserve < R->ReserveEnd)) {
    for (std::uint32_t I = R->NextReserve; I != R->ReserveEnd; ++I) {
      if (R->runAt(I).NumPages != NumPages)
        continue;
      detail::PageRun &Front = R->runAt(R->NextReserve);
      detail::PageRun Hit = R->runAt(I);
      R->runAt(I) = Front;
      Front = Hit;
      ++R->NextReserve;
      Block = Source.base() + std::size_t{Hit.PageIdx} * kPageSize;
      if constexpr (detail::kRsanEnabled)
        RGN_ASAN_UNPOISON(Block, NumPages * kPageSize);
      break;
    }
  }
  if (Block == nullptr) {
    Block = static_cast<char *>(Source.allocPages(NumPages, &PagesZeroed));
    recordRun(R, static_cast<std::uint32_t>(Source.pageIndex(Block)),
              static_cast<std::uint32_t>(NumPages));
    rstat::traceEvent(rstat::EventKind::RunGrab, Source.pageIndex(Block),
                      static_cast<std::uint32_t>(NumPages));
    setMapRange(Block, NumPages, R);
  }
  *headerOf(Block) = {R->LargeHead,
                      static_cast<std::uint32_t>(detail::kLargeThunkOff),
                      PageKind::Large, 0};
  R->LargeHead = Block;
  *reinterpret_cast<std::size_t *>(Block + detail::kLargeNumPagesOff) =
      NumPages;
  *reinterpret_cast<ScanThunk *>(Block + detail::kLargeThunkOff) = Thunk;
  detail::rsanStampObject(Block + detail::kLargeSizeOff, Size, Aligned);
  if ((Zeroed || (Thunk && Cfg.ZeroMemory)) && !PagesZeroed)
    std::memset(Block + detail::kLargePayloadOff, 0, Aligned);

  ++R->NumAllocs;
  R->ReqBytes += Size;
  return Block + detail::kLargePayloadOff;
}

const RegionStats &RegionManager::stats() const {
  RegionStats Agg = Stats;
  std::uint64_t LiveBytes = 0;
  for (const Region *R = LiveHead; R; R = R->NextLive) {
    Agg.TotalAllocs += R->NumAllocs;
    Agg.TotalRequestedBytes += R->ReqBytes;
    Agg.BarrierStores += R->barrierStores();
    Agg.BarrierSameRegion += R->barrierSameRegion();
    Agg.BarrierAdjustments += R->barrierAdjustments();
    LiveBytes += R->ReqBytes;
    if (R->ReqBytes > Agg.MaxRegionBytes)
      Agg.MaxRegionBytes = R->ReqBytes;
  }
  Agg.LiveRequestedBytes = LiveBytes;
  if (LiveBytes > Agg.MaxLiveRequestedBytes)
    Agg.MaxLiveRequestedBytes = LiveBytes;
  // Persist the sampled watermarks so later folds build on them.
  Stats.MaxLiveRequestedBytes = Agg.MaxLiveRequestedBytes;
  Stats.MaxRegionBytes = Agg.MaxRegionBytes;
  StatsSnapshot = Agg;
  return StatsSnapshot;
}

void RegionManager::runCleanups(Region *R) {
  std::uint64_t ThunksRun = 0;
  // Normal pages: walk object headers until the NULL marker (Figure 7).
  // Hardened objects interleave a size header and a red zone with the
  // thunk/payload pair; both constants are zero when hardening is off.
  for (char *Page = R->Normal.Head; Page; Page = headerOf(Page)->Next) {
    // The region is dying: lift the page's ASan protection wholesale so
    // the walk can read the terminator in a never-allocated tail.
    RGN_ASAN_UNPOISON(Page, kPageSize);
    std::uint32_t Off = headerOf(Page)->ScanStart;
    while (Off + sizeof(ScanThunk) <= kPageSize) {
      ScanThunk Thunk = *reinterpret_cast<ScanThunk *>(Page + Off);
      if (!Thunk)
        break;
      Off += static_cast<std::uint32_t>(sizeof(ScanThunk) +
                                        detail::kRsanSizeHdr);
      std::size_t Used = Thunk(Page + Off);
      ++ThunksRun;
      Off += static_cast<std::uint32_t>(alignTo(Used, kDefaultAlignment) +
                                        detail::kRsanRedZone);
    }
  }
  // Large objects carry a single optional thunk each.
  for (char *Block = R->LargeHead; Block; Block = headerOf(Block)->Next) {
    ScanThunk Thunk =
        *reinterpret_cast<ScanThunk *>(Block + detail::kLargeThunkOff);
    if (!Thunk)
      continue;
    Thunk(Block + detail::kLargePayloadOff);
    ++ThunksRun;
  }
  Stats.CleanupThunksRun += ThunksRun;
}

std::size_t RegionManager::freeRegionMemory(Region *R) {
  // Fold the dying region's deferred per-allocation counters into the
  // global view. Live bytes only ever decrease here, so sampling the
  // watermark just before the drop observes every peak exactly as
  // eager per-allocation accounting would.
  std::uint64_t LiveBytes = 0;
  for (const Region *L = LiveHead; L; L = L->NextLive)
    LiveBytes += L->ReqBytes;
  if (LiveBytes > Stats.MaxLiveRequestedBytes)
    Stats.MaxLiveRequestedBytes = LiveBytes;
  Stats.TotalAllocs += R->NumAllocs;
  Stats.TotalRequestedBytes += R->ReqBytes;
  Stats.BarrierStores += R->barrierStores();
  Stats.BarrierSameRegion += R->barrierSameRegion();
  Stats.BarrierAdjustments += R->barrierAdjustments();
  if (R->ReqBytes > Stats.MaxRegionBytes)
    Stats.MaxRegionBytes = R->ReqBytes;
  --Stats.LiveRegions;
  // rstat histograms: the region's final size class, and its lifetime
  // on the region-creation logical clock (siblings created since its
  // birth; ≥1 because its own creation ticked the clock).
  ++DeadSizeClasses[detail::metricsBucket(R->ReqBytes)];
  ++DeadLifetimes[detail::metricsBucket(NextRegionId - R->Id)];
  if (R->PrevLive)
    R->PrevLive->NextLive = R->NextLive;
  else
    LiveHead = R->NextLive;
  if (R->NextLive)
    R->NextLive->PrevLive = R->PrevLive;

  // O(runs) teardown: no page chain is walked — the run table already
  // names every page this region owns (growth runs and large-object
  // runs alike). Copy it out first: R itself lives in the first run's
  // first page, which the loop frees (and hardened builds poison).
  detail::PageRun Runs[Region::kInlineRuns];
  std::memcpy(Runs, R->InlineRuns, sizeof(Runs));
  detail::PageRun *Overflow = R->OverflowRuns;
  std::uint32_t NumRuns = R->NumRuns;

  char *Base = Source.base();
  std::size_t PagesFreed = 0;
  for (std::uint32_t I = 0; I != NumRuns; ++I) {
    detail::PageRun Run =
        I < Region::kInlineRuns ? Runs[I] : Overflow[I - Region::kInlineRuns];
    std::fill(Map + Run.PageIdx, Map + Run.PageIdx + Run.NumPages,
              static_cast<Region *>(nullptr));
    rstat::traceEvent(rstat::EventKind::RunFree, Run.PageIdx, Run.NumPages);
    Source.freePages(Base + std::size_t{Run.PageIdx} * kPageSize,
                     Run.NumPages);
    PagesFreed += Run.NumPages;
  }
  std::free(Overflow);
  return PagesFreed;
}

bool RegionManager::deleteRegionImpl(Region *R, void **HandleSlot,
                                     bool HandleCounted,
                                     const rt::SlotNode *HandleNode) {
  if constexpr (detail::kRsanEnabled) {
    // Diagnose a double deleteregion *before* any member access: R's
    // storage is quarantined poison by now, and the page map no longer
    // (or no longer exclusively) maps its address back to R.
    if (!R || regionOf(static_cast<const void *>(R)) != R)
      reportFatalError("rsan: deleteregion on a region that is not live "
                       "(double delete, or a stale/corrupted handle)");
  }
  assert(R && R->Mgr == this && "deleting a foreign or null region");
  // A region that is currently bound to a par::SharedRegion record must
  // be retired through ParallelSpace::tryDelete, which clears the
  // binding (after proving the summed per-thread counts are zero)
  // before it calls back in here. Deleting it directly would leave the
  // record's R pointer and the binding dangling into recycled pages.
  assert(!R->sharedBinding() &&
         "deleteregion on a shared region: use ParallelSpace::tryDelete");
  ++Stats.DeleteAttempts;

  // Deletion is a count inspection: buffered barrier adjustments must
  // land before RC is compared against the handle's contribution.
  detail::flushPendingCounts();

  if (Cfg.StackScan)
    rt::RuntimeStack::current().scanForDelete();

  if (Cfg.RefCounts || Cfg.StackScan) {
    // The handle being deleted (the paper's *x) is excepted from the
    // external-reference rule. Work out whether it contributed to RC.
    long long HandleContribution = 0;
    if (HandleCounted) {
      HandleContribution = Cfg.RefCounts ? 1 : 0;
    } else if (HandleNode && Cfg.StackScan) {
      // A registered local handle: counted iff its frame is scanned.
      if (rt::RuntimeStack::nodeScanned(HandleNode))
        HandleContribution = 1;
    }
    std::size_t TopRefs =
        Cfg.StackScan
            ? rt::RuntimeStack::current().countTopFrameRefsTo(R, HandleSlot)
            : 0;
    if (R->RC != HandleContribution || TopRefs != 0) {
      ++Stats.DeleteFailures;
      rstat::traceEvent(rstat::EventKind::DeleteRegionFail, R->Id,
                        static_cast<std::uint32_t>(
                            R->RC < 0 ? 0 : R->RC + TopRefs));
      return false;
    }
  }

  // The deletion will go ahead: check every allocation's red zone and
  // size header while the metadata is still reachable. Violations are
  // fatal — freeing the region would destroy the evidence.
  if constexpr (detail::kRsanEnabled)
    rsanValidate(R, /*FatalOnViolation=*/true);

  if (Cfg.CleanupScan)
    runCleanups(R);
  if (HandleSlot)
    *HandleSlot = nullptr; // cleared without barrier: the count dies with R
  std::uint64_t Id = R->Id; // R's storage is gone after the free
  std::size_t PagesFreed = freeRegionMemory(R);
  rstat::traceEvent(rstat::EventKind::DeleteRegionOk, Id,
                    static_cast<std::uint32_t>(PagesFreed));
  return true;
}

bool RegionManager::resetRegion(Region *R) {
  if constexpr (detail::kRsanEnabled) {
    // Same stale-handle diagnosis as deleteregion, before any member
    // access: a reset of a deleted (or trimmed) region's handle lands
    // on quarantined poison.
    if (!R || regionOf(static_cast<const void *>(R)) != R)
      reportFatalError("rsan: resetregion on a region that is not live "
                       "(double delete, or a stale/corrupted handle)");
  }
  assert(R && R->Mgr == this && "resetting a foreign or null region");
  // A shared region's record holds counted references owned by other
  // threads; recycling the storage under them is a use-after-free by
  // construction. Fatal in every build: the pool must never see one.
  if (RGN_UNLIKELY(R->sharedBinding() != nullptr))
    reportFatalError("resetregion on a shared region: retire it through "
                     "ParallelSpace::tryDelete, never a pool");

  // Reset is a count inspection exactly like deletion: flush buffered
  // adjustments, scan the shadow stack, and refuse while any counted
  // external reference or live scanned local remains. There is no
  // handle exception — the caller's own handle survives the reset.
  detail::flushPendingCounts();
  if (Cfg.StackScan)
    rt::RuntimeStack::current().scanForDelete();
  if (Cfg.RefCounts || Cfg.StackScan) {
    std::size_t TopRefs =
        Cfg.StackScan
            ? rt::RuntimeStack::current().countTopFrameRefsTo(R, nullptr)
            : 0;
    if (R->RC != 0 || TopRefs != 0) {
      ++Stats.ResetRefusals;
      rstat::traceEvent(rstat::EventKind::ResetRegionFail, R->Id,
                        static_cast<std::uint32_t>(
                            R->RC < 0 ? 0 : R->RC + TopRefs));
      return false;
    }
  }

  // The reset will go ahead: validate hardened metadata while it is
  // still reachable, then finalize the incarnation's objects.
  if constexpr (detail::kRsanEnabled)
    rsanValidate(R, /*FatalOnViolation=*/true);
  if (Cfg.CleanupScan)
    runCleanups(R);

  // Fold the retiring incarnation into the global view exactly as
  // freeRegionMemory would — watermark sample, per-allocation counters,
  // histograms — except the region stays live and listed: one logical
  // region ends and another begins in the same storage, so TotalRegions
  // ticks while LiveRegions holds.
  std::uint64_t LiveBytes = 0;
  for (const Region *L = LiveHead; L; L = L->NextLive)
    LiveBytes += L->ReqBytes;
  if (LiveBytes > Stats.MaxLiveRequestedBytes)
    Stats.MaxLiveRequestedBytes = LiveBytes;
  Stats.TotalAllocs += R->NumAllocs;
  Stats.TotalRequestedBytes += R->ReqBytes;
  Stats.BarrierStores += R->barrierStores();
  Stats.BarrierSameRegion += R->barrierSameRegion();
  Stats.BarrierAdjustments += R->barrierAdjustments();
  if (R->ReqBytes > Stats.MaxRegionBytes)
    Stats.MaxRegionBytes = R->ReqBytes;
  ++DeadSizeClasses[detail::metricsBucket(R->ReqBytes)];
  ++DeadLifetimes[detail::metricsBucket(NextRegionId - R->Id)];

  // Every run is retained — growth runs and large-object runs alike;
  // nothing goes back to the source and every page-map entry stays.
  // Large runs are kept deliberately: a region-per-request steady state
  // reallocates the same large buffer next incarnation, and allocLarge
  // serves it from the reservoir on exact fit (odd-sized leftovers are
  // still consumed page-wise by carvePage). Retention is bounded by the
  // pool's page budget, not here.
  char *Base = Source.base();
  std::size_t PagesRetained = R->ownedPages();

  // The retained runs become the re-carve reservoir: carvePage (and
  // exact-fit allocLarge) hand their pages back out before touching the
  // PageSource. Run 0 is the region's own page, re-consumed right here.
  R->RunCursor = 0;
  R->RunEnd = 0;
  R->NextReserve = 1;
  R->ReserveEnd = R->NumRuns;
  if constexpr (detail::kRsanEnabled) {
    // Poison every reservoir page wholesale: a stale pointer into the
    // previous incarnation now reads 0xD5 (and traps under ASan) until
    // carvePage or allocLarge legitimately reissues the page.
    for (std::uint32_t I = 1; I != R->NumRuns; ++I) {
      detail::PageRun Run = R->runAt(I);
      char *RunBase = Base + std::size_t{Run.PageIdx} * kPageSize;
      std::size_t RunBytes = std::size_t{Run.NumPages} * kPageSize;
      RGN_ASAN_UNPOISON(RunBase, RunBytes);
      std::memset(RunBase, detail::kRsanQuarantinePoison, RunBytes);
      RGN_ASAN_POISON(RunBase, RunBytes);
    }
  }

  // Re-initialize the first page around the surviving region structure
  // (same address: every raw Region* handle stays valid). The page is
  // deliberately left dirty — per-object zeroing covers ZeroMemory
  // semantics, and skipping the page memset newRegion would pay on a
  // recycled page is most of reset's speedup.
  char *Page = Base + std::size_t{R->InlineRuns[0].PageIdx} * kPageSize;
  auto Offset = static_cast<std::uint32_t>(
      (reinterpret_cast<char *>(R) - Page) +
      alignTo(sizeof(Region), kDefaultAlignment));
  if constexpr (detail::kRsanEnabled) {
    RGN_ASAN_UNPOISON(Page, kPageSize);
    std::memset(Page + Offset, detail::kRsanQuarantinePoison,
                kPageSize - Offset);
    RGN_ASAN_POISON(Page + Offset, kPageSize - Offset);
  }
  *headerOf(Page) = {nullptr, Offset, PageKind::Normal, 0};
  writeEndMarker(Page, Offset);

  R->RC = 0; // proven zero when counting; restores fresh state otherwise
  R->Normal = {Page, Offset, 0};
  R->Str = {};
  R->LargeHead = nullptr;
  R->NumAllocs = 0;
  R->ReqBytes = 0;
  R->BarrierPacked = 0;
  R->BarrierStoresDelta = 0;
  R->BarrierSameRegionDelta = 0;
  R->BarrierAdjustmentsDelta = 0;

  // The logical-id bump: rstat lifetime histograms and id()-keyed
  // consumers see a brand-new region from here on.
  std::uint64_t OldId = R->Id;
  R->Id = NextRegionId++;
  ++Stats.TotalRegions;
  ++Stats.ResetRegions;
  rstat::traceEvent(rstat::EventKind::ResetRegion, OldId,
                    static_cast<std::uint32_t>(PagesRetained));
  return true;
}

RsanReport RegionManager::rsanValidate(const Region *R,
                                       bool FatalOnViolation) const {
  RsanReport Rep;
#if !RGN_HARDEN_ENABLED
  (void)R;
  (void)FatalOnViolation;
#else
  Rep.Checked = true;
  // Probing a live region (non-fatal mode) must leave the ASan poison
  // state as it found it; in fatal mode the caller is deleteregion and
  // the pages are about to be freed, which unpoisons them anyway.
  const bool Restore = !FatalOnViolation;

  // Validates one object's tagged size header and red-zone canary.
  // \p Hdr points at the size header, \p Limit is the space left in the
  // enclosing page run. Returns the bytes to advance past \p Hdr, or 0
  // when the metadata is too corrupt to continue the walk.
  auto CheckObject = [&](const char *Hdr, std::size_t Limit) -> std::size_t {
    std::size_t Word = *reinterpret_cast<const std::size_t *>(Hdr);
    std::size_t Size = detail::rsanTaggedSize(Word);
    std::size_t Payload = alignTo(Size, kDefaultAlignment);
    std::size_t Need = detail::kRsanSizeHdr + Payload + detail::kRsanRedZone;
    if (!detail::rsanTagValid(Word) || Payload < Size || Need > Limit) {
      ++Rep.MetadataViolations;
      if (FatalOnViolation)
        reportFatalError("rsan: allocation size header corrupted "
                         "(wild write, or overflow into object metadata)");
      return 0;
    }
    const char *RedZone = Hdr + detail::kRsanSizeHdr + Payload;
    RGN_ASAN_UNPOISON(RedZone, detail::kRsanRedZone);
    bool Intact = true;
    for (std::size_t I = 0; I != detail::kRsanRedZone; ++I)
      Intact &= static_cast<unsigned char>(RedZone[I]) ==
                detail::kRsanRedZoneCanary;
    if (Restore)
      RGN_ASAN_POISON(RedZone, detail::kRsanRedZone);
    if (!Intact) {
      ++Rep.RedZoneViolations;
      if (FatalOnViolation)
        reportFatalError("rsan: red-zone canary overwritten "
                         "(buffer overflow past the end of an allocation)");
    }
    ++Rep.ObjectsChecked;
    return Need;
  };

  // Normal pages: [thunk][size hdr][payload][red zone] repeating until
  // the NULL thunk marker (or the zero tail standing in for it).
  for (char *Page = R->Normal.Head; Page; Page = headerOf(Page)->Next) {
    RGN_ASAN_UNPOISON(Page, kPageSize);
    std::uint32_t Off = headerOf(Page)->ScanStart;
    while (Off + sizeof(ScanThunk) <= kPageSize) {
      ScanThunk Thunk = *reinterpret_cast<ScanThunk *>(Page + Off);
      if (!Thunk)
        break;
      Off += static_cast<std::uint32_t>(sizeof(ScanThunk));
      std::size_t Adv = CheckObject(Page + Off, kPageSize - Off);
      if (!Adv)
        break;
      Off += static_cast<std::uint32_t>(Adv);
    }
    if (Restore)
      RGN_ASAN_POISON(Page + Off, kPageSize - Off);
  }

  // Str pages: headerless in the lean build, but hardened objects still
  // carry [size hdr][payload][red zone]; a zero word terminates (a
  // valid header is never zero thanks to the tag bit).
  for (char *Page = R->Str.Head; Page; Page = headerOf(Page)->Next) {
    RGN_ASAN_UNPOISON(Page, kPageSize);
    std::uint32_t Off = headerOf(Page)->ScanStart;
    while (Off + detail::kRsanSizeHdr <= kPageSize) {
      if (*reinterpret_cast<const std::size_t *>(Page + Off) == 0)
        break;
      std::size_t Adv = CheckObject(Page + Off, kPageSize - Off);
      if (!Adv)
        break;
      Off += static_cast<std::uint32_t>(Adv);
    }
    if (Restore)
      RGN_ASAN_POISON(Page + Off, kPageSize - Off);
  }

  // Large blocks: exactly one hardened object each.
  for (char *Block = R->LargeHead; Block; Block = headerOf(Block)->Next) {
    std::size_t NumPages =
        *reinterpret_cast<const std::size_t *>(Block + detail::kLargeNumPagesOff);
    CheckObject(Block + detail::kLargeSizeOff,
                NumPages * kPageSize - detail::kLargeSizeOff);
  }
#endif
  return Rep;
}

char *regions::rstrdup(Region *R, const char *S) {
  return rstrndup(R, S, std::strlen(S));
}

char *regions::rstrndup(Region *R, const char *Data, std::size_t Len) {
  char *Copy = static_cast<char *>(R->manager().allocRaw(R, Len + 1));
  std::memcpy(Copy, Data, Len);
  Copy[Len] = '\0';
  return Copy;
}
