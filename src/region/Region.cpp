//===- region/Region.cpp - Explicit region memory management -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "region/Region.h"
#include "region/RuntimeStack.h"
#include "support/Compiler.h"

#include <cstring>

using namespace regions;
using detail::PageHeader;
using detail::PageKind;

static_assert(std::is_standard_layout_v<Region>, "Region lives in raw pages");
static_assert(std::is_trivially_destructible_v<Region>,
              "Region is reclaimed as raw pages, never destroyed");

namespace {

PageHeader *headerOf(char *Page) { return reinterpret_cast<PageHeader *>(Page); }

/// Writes the NULL end marker the region scan stops at (Figure 7), if
/// there is room for another object header on the page.
void writeEndMarker(char *Page, std::uint32_t Offset) {
  if (Offset + sizeof(ScanThunk) <= kPageSize)
    *reinterpret_cast<ScanThunk *>(Page + Offset) = nullptr;
}

} // namespace

RegionManager::RegionManager(SafetyConfig Config, std::size_t ReserveBytes)
    : Source(ReserveBytes), Cfg(Config) {
  Map = static_cast<Region **>(
      std::calloc(Source.reservedPages(), sizeof(Region *)));
  if (!Map)
    reportFatalError("RegionManager: cannot allocate page map");
  detail::registerArena(Source.base(), Source.reservedPages(), Map);
}

RegionManager::~RegionManager() {
  detail::unregisterArena(Source.base());
  std::free(Map);
}

void RegionManager::setMapRange(const void *Page, std::size_t NumPages,
                                Region *R) {
  std::size_t Idx = Source.pageIndex(Page);
  for (std::size_t I = 0; I != NumPages; ++I)
    Map[Idx + I] = R;
}

char *RegionManager::newPage(Region *R, PageKind Kind) {
  char *Page = static_cast<char *>(Source.allocPages(1));
  Region::BumpList &List = Kind == PageKind::Str ? R->Str : R->Normal;
  *headerOf(Page) = {List.Head, sizeof(PageHeader), Kind, 0};
  List.Head = Page;
  List.Offset = sizeof(PageHeader);
  setMapRange(Page, 1, R);
  if (Kind == PageKind::Normal)
    writeEndMarker(Page, List.Offset);
  return Page;
}

Region *RegionManager::newRegion() {
  char *Page = static_cast<char *>(Source.allocPages(1));
  *headerOf(Page) = {nullptr, 0, PageKind::Normal, 0};

  // The region structure lives in its own first page, offset by
  // successive multiples of 64 bytes (up to 512) to spread region
  // structures across cache lines (§4.1).
  std::uint32_t CacheOffset = 64 * (NextRegionId % 9);
  auto *R = ::new (Page + sizeof(PageHeader) + CacheOffset) Region();
  R->Mgr = this;
  R->Id = NextRegionId++;
  R->Normal.Head = Page;
  R->Normal.Offset = static_cast<std::uint32_t>(
      sizeof(PageHeader) + CacheOffset + alignTo(sizeof(Region),
                                                 kDefaultAlignment));
  headerOf(Page)->ScanStart = R->Normal.Offset;
  writeEndMarker(Page, R->Normal.Offset);
  setMapRange(Page, 1, R);

  R->NextLive = LiveHead;
  if (LiveHead)
    LiveHead->PrevLive = R;
  LiveHead = R;

  ++Stats.TotalRegions;
  ++Stats.LiveRegions;
  if (Stats.LiveRegions > Stats.MaxLiveRegions)
    Stats.MaxLiveRegions = Stats.LiveRegions;
  return R;
}

void *RegionManager::allocRaw(Region *R, std::size_t Size) {
  assert(R && R->Mgr == this && "region belongs to another manager");
  std::size_t Need = alignTo(Size, kDefaultAlignment);
  if (Need > kPageSize - sizeof(PageHeader))
    return allocLarge(R, Size, nullptr);

  Region::BumpList &B = R->Str;
  if (!B.Head || B.Offset + Need > kPageSize)
    newPage(R, PageKind::Str);
  char *Result = B.Head + B.Offset;
  B.Offset += static_cast<std::uint32_t>(Need);

  ++R->NumAllocs;
  R->ReqBytes += Size;
  ++Stats.TotalAllocs;
  Stats.TotalRequestedBytes += Size;
  Stats.LiveRequestedBytes += Size;
  if (Stats.LiveRequestedBytes > Stats.MaxLiveRequestedBytes)
    Stats.MaxLiveRequestedBytes = Stats.LiveRequestedBytes;
  if (R->ReqBytes > Stats.MaxRegionBytes)
    Stats.MaxRegionBytes = R->ReqBytes;
  return Result;
}

void *RegionManager::allocScanned(Region *R, std::size_t Size,
                                  ScanThunk Thunk) {
  assert(R && R->Mgr == this && "region belongs to another manager");
  assert(Thunk && "scanned allocations need a cleanup thunk");
  std::size_t Payload = alignTo(Size, kDefaultAlignment);
  std::size_t Need = sizeof(ScanThunk) + Payload;
  if (Need > kPageSize - sizeof(PageHeader))
    return allocLarge(R, Size, Thunk);

  Region::BumpList &B = R->Normal;
  if (!B.Head || B.Offset + Need > kPageSize)
    newPage(R, PageKind::Normal);
  char *Base = B.Head + B.Offset;
  *reinterpret_cast<ScanThunk *>(Base) = Thunk;
  B.Offset += static_cast<std::uint32_t>(Need);
  writeEndMarker(B.Head, B.Offset);
  if (Cfg.ZeroMemory)
    std::memset(Base + sizeof(ScanThunk), 0, Payload);

  ++R->NumAllocs;
  R->ReqBytes += Size;
  ++Stats.TotalAllocs;
  Stats.TotalRequestedBytes += Size;
  Stats.LiveRequestedBytes += Size;
  if (Stats.LiveRequestedBytes > Stats.MaxLiveRequestedBytes)
    Stats.MaxLiveRequestedBytes = Stats.LiveRequestedBytes;
  if (R->ReqBytes > Stats.MaxRegionBytes)
    Stats.MaxRegionBytes = R->ReqBytes;
  return Base + sizeof(ScanThunk);
}

void *RegionManager::allocLarge(Region *R, std::size_t Size, ScanThunk Thunk) {
  std::size_t Total = detail::kLargePayloadOff + alignTo(Size,
                                                         kDefaultAlignment);
  std::size_t NumPages = alignTo(Total, kPageSize) / kPageSize;
  char *Block = static_cast<char *>(Source.allocPages(NumPages));
  *headerOf(Block) = {R->LargeHead,
                      static_cast<std::uint32_t>(detail::kLargeThunkOff),
                      PageKind::Large, 0};
  R->LargeHead = Block;
  *reinterpret_cast<std::size_t *>(Block + detail::kLargeNumPagesOff) =
      NumPages;
  *reinterpret_cast<ScanThunk *>(Block + detail::kLargeThunkOff) = Thunk;
  setMapRange(Block, NumPages, R);
  if (Thunk && Cfg.ZeroMemory)
    std::memset(Block + detail::kLargePayloadOff, 0,
                alignTo(Size, kDefaultAlignment));

  ++R->NumAllocs;
  R->ReqBytes += Size;
  ++Stats.TotalAllocs;
  Stats.TotalRequestedBytes += Size;
  Stats.LiveRequestedBytes += Size;
  if (Stats.LiveRequestedBytes > Stats.MaxLiveRequestedBytes)
    Stats.MaxLiveRequestedBytes = Stats.LiveRequestedBytes;
  if (R->ReqBytes > Stats.MaxRegionBytes)
    Stats.MaxRegionBytes = R->ReqBytes;
  return Block + detail::kLargePayloadOff;
}

void RegionManager::runCleanups(Region *R) {
  // Normal pages: walk object headers until the NULL marker (Figure 7).
  for (char *Page = R->Normal.Head; Page; Page = headerOf(Page)->Next) {
    std::uint32_t Off = headerOf(Page)->ScanStart;
    while (Off + sizeof(ScanThunk) <= kPageSize) {
      ScanThunk Thunk = *reinterpret_cast<ScanThunk *>(Page + Off);
      if (!Thunk)
        break;
      Off += sizeof(ScanThunk);
      std::size_t Used = Thunk(Page + Off);
      ++Stats.CleanupThunksRun;
      Off += static_cast<std::uint32_t>(alignTo(Used, kDefaultAlignment));
    }
  }
  // Large objects carry a single optional thunk each.
  for (char *Block = R->LargeHead; Block; Block = headerOf(Block)->Next) {
    ScanThunk Thunk =
        *reinterpret_cast<ScanThunk *>(Block + detail::kLargeThunkOff);
    if (!Thunk)
      continue;
    Thunk(Block + detail::kLargePayloadOff);
    ++Stats.CleanupThunksRun;
  }
}

void RegionManager::freeRegionMemory(Region *R) {
  Stats.LiveRequestedBytes -= R->ReqBytes;
  --Stats.LiveRegions;
  if (R->PrevLive)
    R->PrevLive->NextLive = R->NextLive;
  else
    LiveHead = R->NextLive;
  if (R->NextLive)
    R->NextLive->PrevLive = R->PrevLive;

  // Copy the page lists out: R itself lives in the first normal page.
  char *Normal = R->Normal.Head;
  char *Str = R->Str.Head;
  char *Large = R->LargeHead;

  while (Normal) {
    char *Next = headerOf(Normal)->Next;
    setMapRange(Normal, 1, nullptr);
    Source.freePages(Normal, 1);
    Normal = Next;
  }
  while (Str) {
    char *Next = headerOf(Str)->Next;
    setMapRange(Str, 1, nullptr);
    Source.freePages(Str, 1);
    Str = Next;
  }
  while (Large) {
    char *Next = headerOf(Large)->Next;
    std::size_t NumPages =
        *reinterpret_cast<std::size_t *>(Large + detail::kLargeNumPagesOff);
    setMapRange(Large, NumPages, nullptr);
    Source.freePages(Large, NumPages);
    Large = Next;
  }
}

bool RegionManager::deleteRegionImpl(Region *R, void **HandleSlot,
                                     bool HandleCounted) {
  assert(R && R->Mgr == this && "deleting a foreign or null region");
  ++Stats.DeleteAttempts;

  if (Cfg.StackScan)
    rt::RuntimeStack::current().scanForDelete();

  if (Cfg.RefCounts || Cfg.StackScan) {
    // The handle being deleted (the paper's *x) is excepted from the
    // external-reference rule. Work out whether it contributed to RC.
    long long HandleContribution = 0;
    if (HandleCounted) {
      HandleContribution = Cfg.RefCounts ? 1 : 0;
    } else if (HandleSlot && Cfg.StackScan) {
      auto &Stack = rt::RuntimeStack::current();
      if (Stack.locate(HandleSlot) == rt::RuntimeStack::SlotLocation::Scanned)
        HandleContribution = 1;
    }
    std::size_t TopRefs =
        Cfg.StackScan
            ? rt::RuntimeStack::current().countTopFrameRefsTo(R, HandleSlot)
            : 0;
    if (R->RC != HandleContribution || TopRefs != 0) {
      ++Stats.DeleteFailures;
      return false;
    }
  }

  if (Cfg.CleanupScan)
    runCleanups(R);
  if (HandleSlot)
    *HandleSlot = nullptr; // cleared without barrier: the count dies with R
  freeRegionMemory(R);
  return true;
}

char *regions::rstrdup(Region *R, const char *S) {
  return rstrndup(R, S, std::strlen(S));
}

char *regions::rstrndup(Region *R, const char *Data, std::size_t Len) {
  char *Copy = static_cast<char *>(R->manager().allocRaw(R, Len + 1));
  std::memcpy(Copy, Data, Len);
  Copy[Len] = '\0';
  return Copy;
}
