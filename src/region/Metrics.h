//===- region/Metrics.h - rstat metrics snapshots & heap dumps -*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of **rstat**: a point-in-time snapshot of one
/// RegionManager's observable state — the paper's Table 2/3 counters,
/// the PageSource's frontier/free-list/quarantine bookkeeping, and
/// region-granularity size-class and lifetime histograms — exported as
/// JSON or as a human table, plus a heap introspection dump that walks
/// live regions → page runs → pages for debugging refused deletions.
///
/// Zero-cost off by construction: everything here is computed from
/// state the library already maintains, or maintained on region
/// creation/deletion (cold paths). The allocation and write-barrier
/// fast paths contribute nothing and are bit-identical whether or not
/// any snapshot is ever taken — the histograms are *over regions*, not
/// over allocations, precisely so no per-allocation counter is needed.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_METRICS_H
#define REGION_METRICS_H

#include "region/Region.h"

#include <cstdio>

namespace regions {

/// Everything rstat knows about one manager at one instant. The
/// RegionStats member carries exactly the values stats() reports (the
/// snapshot is taken through stats(), so the two can never drift).
struct MetricsSnapshot {
  static constexpr unsigned kLogBuckets = detail::kMetricsLogBuckets;

  /// Aggregated manager counters — identical to RegionManager::stats().
  RegionStats Stats;

  /// rpool activity — identical to RegionManager::poolStats(): every
  /// RegionPool over this manager, summed (region/Pool.h).
  PoolStats Pool;

  // PageSource state (Figure 8's OS-level view plus the free-list and
  // quarantine internals PR 4/6 added).
  std::uint64_t OsBytes = 0;        ///< frontier high-water mark, bytes
  std::uint64_t InUseBytes = 0;     ///< currently handed out, bytes
  std::uint64_t ReservedPages = 0;  ///< arena size
  std::uint64_t FrontierPages = 0;  ///< pages ever handed out
  std::uint64_t FreeListedPages = 0;///< recyclable without frontier growth
  std::uint64_t CachedSinglePages = 0;
  std::uint64_t QuarantinedPages = 0;
  std::uint64_t CoalesceSweeps = 0; ///< deferred-coalescing sweeps run
  std::uint64_t QuarantineEvictions = 0;

  /// Regions by size class: bucket 0 holds empty regions, bucket n≥1
  /// regions whose requested bytes lie in [2^(n-1), 2^n). Covers every
  /// region ever observed: deleted regions at their final size, live
  /// regions at their current size.
  std::uint64_t RegionSizeClasses[kLogBuckets] = {};

  /// Live regions only, same bucketing (the "max live" shape of
  /// Table 2, resolved per size class).
  std::uint64_t LiveRegionSizeClasses[kLogBuckets] = {};

  /// Deleted regions by lifetime, measured on the region-creation
  /// logical clock: a region's lifetime is the number of regions the
  /// manager created between its birth and its deletion (1 = deleted
  /// before any sibling appeared). Log2 bucketing as above. A logical
  /// clock keeps region creation free of timer syscalls — the same
  /// trade Phan et al.'s Mercury profiler makes for region decisions.
  std::uint64_t RegionLifetimes[kLogBuckets] = {};
};

/// Writes \p M as a single JSON object ({"manager": {...},
/// "pageSource": {...}, "histograms": {...}}).
void writeMetricsJson(const MetricsSnapshot &M, std::FILE *Out);

/// writeMetricsJson to a file path; false if the file cannot be made.
bool writeMetricsJson(const MetricsSnapshot &M, const char *Path);

/// Prints \p M as human tables (TableWriter layout, the same format
/// the reproduced paper tables use).
void printMetrics(const MetricsSnapshot &M, std::FILE *Out = stdout);

} // namespace regions

/// The issue-facing spelling: `rgn::MetricsSnapshot`,
/// `rgn::RegionManager::metrics()`. The project namespace predates the
/// alias; both name the same entities.
namespace rgn = regions;

#endif // REGION_METRICS_H
