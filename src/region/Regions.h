//===- region/Regions.h - Umbrella header ----------------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella for library users: the full safe-region API.
///
/// \code
///   regions::RegionManager Mgr;
///   regions::rt::Frame F;
///   regions::rt::RegionHandle R = Mgr.newRegion();
///   auto *Node = regions::rnew<MyNode>(R, args...);
///   bool Freed = regions::deleteRegion(R);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef REGION_REGIONS_H
#define REGION_REGIONS_H

#include "region/Debug.h"
#include "region/PageMap.h"
#include "region/Region.h"
#include "region/RegionPtr.h"
#include "region/RuntimeStack.h"
#include "region/Scoped.h"
#include "region/StdAllocator.h"

#endif // REGION_REGIONS_H
