//===- region/RuntimeStack.h - Shadow stack for local refs -----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's deferred reference counting for local variables (§4.2.1,
/// §4.2.3): writes to locals never touch reference counts; instead the
/// stack carries a *high-water mark*. Frames above the mark ("scanned")
/// have had their live region pointers counted; the invariant (*) keeps
/// at least one frame — the executing one — unscanned, so ordinary local
/// writes are free. deleteRegion scans the unscanned suffix (except the
/// top frame, which it counts transiently, mirroring the paper's
/// scan-then-unscan-on-return of deleteregion's caller), and returning
/// into a scanned frame unscans exactly that frame (the paper patches
/// return addresses; we use RAII frame pops).
///
/// The paper's compiler records live region-pointer locals at each call
/// site; our stand-in is explicit registration: each function holding
/// region-pointer locals declares an rt::Frame, and the locals are
/// rt::Ref<T> values (defined in RegionPtr.h) that register their
/// storage address in the current frame.
///
/// Storage is fully intrusive: the frame record lives inside rt::Frame
/// and the slot record inside rt::Ref, linked into per-thread LIFO
/// lists. Push/pop/register/unregister are a few pointer writes — no
/// vector growth, no allocation — and a slot's scanned/unscanned
/// classification is one load through its owning frame (the frames at
/// or below the high-water mark carry a Scanned flag), so the paths
/// rt::Ref-heavy code hits are all O(1).
///
//===----------------------------------------------------------------------===//

#ifndef REGION_RUNTIMESTACK_H
#define REGION_RUNTIMESTACK_H

#include "support/Compiler.h"

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace regions {

class Region;

namespace rt {

/// Shadow-stack record of one frame, embedded in rt::Frame (and, for
/// the implicit base frame, in the RuntimeStack itself).
struct FrameLink {
  FrameLink *Parent = nullptr;       ///< next older frame
  struct SlotNode *SlotsAtPush = nullptr; ///< newest slot when pushed
  bool Scanned = false;              ///< at or below the high-water mark
  std::uint32_t Depth = 0;           ///< index from the stack bottom
};

/// Shadow-stack record of one registered local slot, embedded in
/// rt::Ref. Registration is strictly LIFO (C++ scoping guarantees this
/// for automatic locals), so slots form one intrusive stack.
struct SlotNode {
  void **Addr = nullptr;    ///< address of the local's pointer storage
  SlotNode *Prev = nullptr; ///< next older slot
  FrameLink *Owner = nullptr; ///< frame this slot registered under
};

/// Per-thread shadow stack of frames holding registered local
/// region-pointer slots, plus the high-water mark.
class RuntimeStack {
public:
  /// The calling thread's stack. Inline: resolves to one thread-local
  /// address computation, so Frame push/pop and slot registration pay
  /// no call or lazy-init guard.
  static RuntimeStack &current();

  /// Pushes \p F as the newest frame. Called by rt::Frame.
  RGN_ALWAYS_INLINE void pushFrame(FrameLink *F) {
    F->Parent = Top;
    F->SlotsAtPush = SlotsHead;
    F->Scanned = false;
    F->Depth = static_cast<std::uint32_t>(NumFrames);
    Top = F;
    ++NumFrames;
  }

  /// Pops the newest frame. If the pop leaves the new top frame
  /// scanned, that frame is unscanned (counts decremented, mark
  /// lowered), restoring invariant (*). Called by rt::Frame.
  RGN_ALWAYS_INLINE void popFrame(FrameLink *F) {
    assert(Top == F && "frames must pop in LIFO order");
    assert(SlotsHead == F->SlotsAtPush &&
           "locals must be unregistered before their frame pops");
    assert(!F->Scanned && "invariant (*): the top frame is never scanned");
    Top = F->Parent;
    --NumFrames;
    if (RGN_UNLIKELY(Top && Top->Scanned))
      unscanTopFrame();
  }

  /// Registers a local pointer slot in the current frame (creating a
  /// bottom "base" frame if none exists). Called by rt::Ref.
  RGN_ALWAYS_INLINE void registerSlot(SlotNode *N, void **Addr) {
    FrameLink *F = Top;
    if (RGN_UNLIKELY(!F))
      F = pushBaseFrame();
    N->Addr = Addr;
    N->Prev = SlotsHead;
    N->Owner = F;
    SlotsHead = N;
    ++NumSlots;
  }

  /// Unregisters the most recently registered slot. Registration is
  /// strictly LIFO, which C++ scoping guarantees for automatic Refs.
  RGN_ALWAYS_INLINE void unregisterSlot(SlotNode *N) {
    assert(SlotsHead == N &&
           "local region pointers must unregister in LIFO order");
    SlotsHead = N->Prev;
    --NumSlots;
    if (RGN_UNLIKELY(N->Owner->Scanned))
      --NumScannedSlots;
  }

  /// Stores \p NewVal into the registered slot \p N. Free for slots in
  /// unscanned frames (the common case, by invariant (*)); for a slot
  /// in a scanned frame — reachable only by writing a caller's local
  /// through a reference — the counts are adjusted, the paper's "more
  /// expensive runtime routine" for statically ambiguous writes.
  /// Static: the fast path needs no thread-local state at all.
  RGN_ALWAYS_INLINE static void localWrite(SlotNode *N, void *NewVal) {
    if (RGN_UNLIKELY(N->Owner->Scanned))
      return scannedFrameWrite(N, NewVal);
    *N->Addr = NewVal;
  }

  /// Whether a registered slot's frame has been scanned (its reference
  /// is reflected in region counts). O(1); used by deleteRegion to
  /// classify the handle being deleted.
  static bool nodeScanned(const SlotNode *N) { return N->Owner->Scanned; }

  /// Scans all unscanned frames except the newest one, incrementing the
  /// reference count of every region referenced by a registered local,
  /// and raises the high-water mark. Called by deleteRegion.
  void scanForDelete();

  /// Where a slot currently sits relative to the mark.
  enum class SlotLocation { NotRegistered, Scanned, Unscanned };

  /// Classifies \p Addr. Linear in the number of registered slots;
  /// diagnostics only (deleteRegion classifies via nodeScanned).
  SlotLocation locate(void *const *Addr) const;

  /// Counts references to \p R from the *top* frame's slots, excluding
  /// \p ExcludeSlot (the handle being deleted). This is the transient
  /// contribution of the frame the paper scans and immediately unscans
  /// on return from deleteregion.
  std::size_t countTopFrameRefsTo(const Region *R,
                                  void *const *ExcludeSlot) const;

  std::size_t frameCount() const { return NumFrames; }
  std::size_t scannedFrameCount() const { return NumScannedFrames; }
  std::size_t slotCount() const { return NumSlots; }

  /// Number of slots belonging to scanned frames (their references are
  /// already reflected in region counts).
  std::size_t scannedSlotCount() const { return NumScannedSlots; }

  /// Newest registered slot, start of the intrusive slot list (older
  /// slots via SlotNode::Prev). Used by the conservative collector,
  /// which treats every registered local as a root, and by diagnostics.
  const SlotNode *slots() const { return SlotsHead; }

  /// Instrumentation for the Figure 11 harness.
  struct Counters {
    std::uint64_t Scans = 0;
    std::uint64_t FramesScanned = 0;
    std::uint64_t FramesUnscanned = 0;
    std::uint64_t SlotsVisited = 0;
    std::uint64_t ScannedFrameWrites = 0;
  };
  const Counters &counters() const { return Stats; }

  /// Drops all frames and slots; tests only.
  void resetForTesting();

private:
  /// Out-of-line: activates the implicit base frame for frameless
  /// clients; returns it.
  FrameLink *pushBaseFrame();

  /// Out-of-line: unscans the (new) top frame after a pop left every
  /// remaining frame scanned — the paper's unscan-on-return, triggered
  /// for exactly one frame.
  void unscanTopFrame();

  /// Out-of-line: a write to a slot in a scanned frame keeps counts
  /// exact.
  static void scannedFrameWrite(SlotNode *N, void *NewVal);

  FrameLink *Top = nullptr;
  SlotNode *SlotsHead = nullptr;
  std::size_t NumFrames = 0;
  std::size_t NumScannedFrames = 0;
  std::size_t NumSlots = 0;
  std::size_t NumScannedSlots = 0;
  FrameLink BaseFrame; ///< storage for the implicit base frame
  Counters Stats;
};

/// The calling thread's shadow stack. constinit (all-zero) so access
/// needs no thread-safe initialization guard.
extern thread_local RGN_CONSTINIT RuntimeStack GThreadStack;

inline RuntimeStack &RuntimeStack::current() { return GThreadStack; }

/// RAII shadow-stack frame. Declare one at the top of any function that
/// keeps region pointers in locals (before any rt::Ref local).
class Frame {
public:
  Frame() { RuntimeStack::current().pushFrame(&Link); }
  Frame(const Frame &) = delete;
  Frame &operator=(const Frame &) = delete;
  ~Frame() { RuntimeStack::current().popFrame(&Link); }

  std::size_t index() const { return Link.Depth; }

private:
  FrameLink Link;
};

} // namespace rt
} // namespace regions

#endif // REGION_RUNTIMESTACK_H
