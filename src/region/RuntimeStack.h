//===- region/RuntimeStack.h - Shadow stack for local refs -----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's deferred reference counting for local variables (§4.2.1,
/// §4.2.3): writes to locals never touch reference counts; instead the
/// stack carries a *high-water mark*. Frames above the mark ("scanned")
/// have had their live region pointers counted; the invariant (*) keeps
/// at least one frame — the executing one — unscanned, so ordinary local
/// writes are free. deleteRegion scans the unscanned suffix (except the
/// top frame, which it counts transiently, mirroring the paper's
/// scan-then-unscan-on-return of deleteregion's caller), and returning
/// into a scanned frame unscans exactly that frame (the paper patches
/// return addresses; we use RAII frame pops).
///
/// The paper's compiler records live region-pointer locals at each call
/// site; our stand-in is explicit registration: each function holding
/// region-pointer locals declares an rt::Frame, and the locals are
/// rt::Ref<T> values (defined in RegionPtr.h) that register their
/// storage address in the current frame.
///
//===----------------------------------------------------------------------===//

#ifndef REGION_RUNTIMESTACK_H
#define REGION_RUNTIMESTACK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace regions {

class Region;

namespace rt {

/// Per-thread shadow stack of frames holding registered local
/// region-pointer slots, plus the high-water mark.
class RuntimeStack {
public:
  /// The calling thread's stack.
  static RuntimeStack &current();

  /// Pushes a frame; returns its index. Called by rt::Frame.
  std::size_t pushFrame();

  /// Pops the newest frame. If the pop leaves the new top frame
  /// scanned, that frame is unscanned (counts decremented, mark
  /// lowered), restoring invariant (*). Called by rt::Frame.
  void popFrame();

  /// Registers a local pointer slot in the current frame (creating a
  /// bottom "base" frame if none exists). Returns the slot index.
  std::size_t registerSlot(void **Addr);

  /// Unregisters the most recently registered slot. Registration is
  /// strictly LIFO, which C++ scoping guarantees for automatic Refs.
  void unregisterSlot(std::size_t Idx, void **Addr);

  /// Stores \p NewVal into the registered slot \p Idx. Free for slots
  /// in unscanned frames (the common case, by invariant (*)); for a
  /// slot in a scanned frame — reachable only by writing a caller's
  /// local through a reference — the counts are adjusted, the paper's
  /// "more expensive runtime routine" for statically ambiguous writes.
  void localWrite(std::size_t Idx, void **Addr, void *NewVal);

  /// Scans all unscanned frames except the newest one, incrementing the
  /// reference count of every region referenced by a registered local,
  /// and raises the high-water mark. Called by deleteRegion.
  void scanForDelete();

  /// Where a slot currently sits relative to the mark.
  enum class SlotLocation { NotRegistered, Scanned, Unscanned };

  /// Classifies \p Addr. Linear in the number of registered slots;
  /// used only inside deleteRegion.
  SlotLocation locate(void *const *Addr) const;

  /// Counts references to \p R from the *top* frame's slots, excluding
  /// \p ExcludeSlot (the handle being deleted). This is the transient
  /// contribution of the frame the paper scans and immediately unscans
  /// on return from deleteregion.
  std::size_t countTopFrameRefsTo(const Region *R,
                                  void *const *ExcludeSlot) const;

  std::size_t frameCount() const { return Frames.size(); }
  std::size_t scannedFrameCount() const { return HwmIdx; }
  std::size_t slotCount() const { return Slots.size(); }

  /// Current value of registered slot \p Idx. Used by the conservative
  /// collector, which treats every registered local as a root.
  void *slotValue(std::size_t Idx) const { return *Slots[Idx]; }

  /// Storage address of registered slot \p Idx (diagnostics).
  void *const *slotAddress(std::size_t Idx) const { return Slots[Idx]; }

  /// Number of slots belonging to scanned frames (their references are
  /// already reflected in region counts).
  std::size_t scannedSlotCount() const { return scannedSlotEnd(); }

  /// Instrumentation for the Figure 11 harness.
  struct Counters {
    std::uint64_t Scans = 0;
    std::uint64_t FramesScanned = 0;
    std::uint64_t FramesUnscanned = 0;
    std::uint64_t SlotsVisited = 0;
    std::uint64_t ScannedFrameWrites = 0;
  };
  const Counters &counters() const { return Stats; }

  /// Drops all frames and slots; tests only.
  void resetForTesting();

private:
  struct FrameRec {
    std::size_t SlotBegin;
  };

  std::size_t frameSlotEnd(std::size_t FrameIdx) const {
    return FrameIdx + 1 < Frames.size() ? Frames[FrameIdx + 1].SlotBegin
                                        : Slots.size();
  }

  /// First slot index beyond the scanned prefix.
  std::size_t scannedSlotEnd() const {
    return HwmIdx < Frames.size() ? Frames[HwmIdx].SlotBegin : Slots.size();
  }

  void unscanFrame(std::size_t FrameIdx);

  std::vector<FrameRec> Frames;
  std::vector<void **> Slots;
  std::size_t HwmIdx = 0; ///< frames [0, HwmIdx) are scanned
  Counters Stats;
};

/// RAII shadow-stack frame. Declare one at the top of any function that
/// keeps region pointers in locals (before any rt::Ref local).
class Frame {
public:
  Frame() { Idx = RuntimeStack::current().pushFrame(); }
  Frame(const Frame &) = delete;
  Frame &operator=(const Frame &) = delete;
  ~Frame() { RuntimeStack::current().popFrame(); }

  std::size_t index() const { return Idx; }

private:
  std::size_t Idx;
};

} // namespace rt
} // namespace regions

#endif // REGION_RUNTIMESTACK_H
