//===- text/Tokenizer.h - Word tokenizer and rolling hashes ----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared text primitives: a streaming word tokenizer (used by the tile
/// workload) and the polynomial rolling hash over character k-grams
/// (used by the moss workload's winnowing fingerprints, after
/// Schleimer, Wilkerson & Aiken's MOSS algorithm — Aiken is an author
/// of both papers).
///
//===----------------------------------------------------------------------===//

#ifndef TEXT_TOKENIZER_H
#define TEXT_TOKENIZER_H

#include <cstddef>
#include <cstdint>

namespace regions {
namespace text {

/// A word occurrence within a text buffer.
struct WordSpan {
  const char *Start = nullptr;
  std::uint32_t Len = 0;
  bool EndsSentence = false; ///< followed by '.' before the next word
};

/// Streaming tokenizer over [Begin, End): yields lowercase word spans.
class Tokenizer {
public:
  Tokenizer(const char *Begin, const char *End) : Cur(Begin), End(End) {}

  /// Returns false at end of input.
  bool next(WordSpan &Out) {
    while (Cur != End && !isWordChar(*Cur))
      ++Cur;
    if (Cur == End)
      return false;
    Out.Start = Cur;
    while (Cur != End && isWordChar(*Cur))
      ++Cur;
    Out.Len = static_cast<std::uint32_t>(Cur - Out.Start);
    const char *Peek = Cur;
    Out.EndsSentence = false;
    while (Peek != End && !isWordChar(*Peek)) {
      if (*Peek == '.') {
        Out.EndsSentence = true;
        break;
      }
      ++Peek;
    }
    return true;
  }

private:
  static bool isWordChar(char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
           (C >= '0' && C <= '9') || C == '_';
  }

  const char *Cur;
  const char *End;
};

/// FNV-1a hash of a word span (case-sensitive; our generator emits
/// lowercase only).
inline std::uint64_t hashWord(const char *S, std::uint32_t Len) {
  std::uint64_t H = 0xcbf29ce484222325ULL;
  for (std::uint32_t I = 0; I != Len; ++I) {
    H ^= static_cast<unsigned char>(S[I]);
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Rolling polynomial hash over character k-grams:
///   H(i) = c[i]*B^(k-1) + c[i+1]*B^(k-2) + ... + c[i+k-1]
/// advanced in O(1) per position.
class RollingHash {
public:
  RollingHash(const char *Text, std::size_t Len, unsigned K)
      : Text(Text), Len(Len), K(K) {
    if (Len < K)
      return;
    TopPow = 1;
    for (unsigned I = 1; I != K; ++I)
      TopPow *= kBase;
    for (unsigned I = 0; I != K; ++I)
      H = H * kBase + static_cast<unsigned char>(Text[I]);
    Valid = true;
  }

  bool valid() const { return Valid; }

  /// Hash of the k-gram starting at position().
  std::uint64_t hash() const { return H; }

  std::size_t position() const { return Pos; }

  /// Advances one character; returns false when no k-gram remains.
  bool advance() {
    if (Pos + K >= Len) {
      Valid = false;
      return false;
    }
    H -= TopPow * static_cast<unsigned char>(Text[Pos]);
    H = H * kBase + static_cast<unsigned char>(Text[Pos + K]);
    ++Pos;
    return true;
  }

private:
  static constexpr std::uint64_t kBase = 1099511628211ULL;

  const char *Text;
  std::size_t Len;
  unsigned K;
  std::uint64_t H = 0;
  std::uint64_t TopPow = 0;
  std::size_t Pos = 0;
  bool Valid = false;
};

} // namespace text
} // namespace regions

#endif // TEXT_TOKENIZER_H
