//===- text/TextGen.h - Deterministic text corpus generator ----*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic text for the tile and moss workloads. The
/// paper feeds tile twenty copies of a 14 KB text and moss 180 student
/// compiler projects (~10 MB); we cannot redistribute those, so this
/// generator produces:
///
///  - topic-structured prose (generateTopicalText): contiguous segments
///    draw words from distinct topic vocabularies, giving TextTiling
///    real boundaries to find;
///  - "student submissions" (generateSubmission): documents sharing
///    plagiarized fragments drawn from a common pool, giving the
///    winnowing index real matches to find.
///
//===----------------------------------------------------------------------===//

#ifndef TEXT_TEXTGEN_H
#define TEXT_TEXTGEN_H

#include "support/Prng.h"

#include <string>
#include <vector>

namespace regions {
namespace text {

/// Deterministic pseudo-word: lowercase letters derived from the id.
inline std::string makeWord(std::uint64_t Id) {
  std::string W;
  Id += 7;
  while (Id) {
    W.push_back(static_cast<char>('a' + Id % 26));
    Id /= 26;
  }
  return W;
}

struct TopicalTextOptions {
  unsigned NumTopics = 8;
  unsigned WordsPerTopic = 60;    ///< topic-specific vocabulary size
  unsigned SharedWords = 40;      ///< vocabulary common to all topics
  unsigned NumSegments = 12;      ///< true topic segments
  unsigned SentencesPerSegment = 14;
  unsigned WordsPerSentence = 12;
  double SharedWordProb = 0.35;
  std::uint64_t Seed = 1;
};

/// Topic-structured text plus the true segment boundaries measured in
/// sentences (for validating TextTiling's output).
struct TopicalText {
  std::string Text;
  std::vector<unsigned> TrueBoundaries; ///< sentence index of each switch
};

inline TopicalText generateTopicalText(const TopicalTextOptions &Opt) {
  Prng Rng(Opt.Seed);
  TopicalText Out;
  unsigned Sentence = 0;
  unsigned Topic = 0;
  for (unsigned Seg = 0; Seg != Opt.NumSegments; ++Seg) {
    Topic = (Topic + 1 + static_cast<unsigned>(
                             Rng.nextBelow(Opt.NumTopics - 1))) %
            Opt.NumTopics;
    if (Seg)
      Out.TrueBoundaries.push_back(Sentence);
    for (unsigned S = 0; S != Opt.SentencesPerSegment; ++S, ++Sentence) {
      for (unsigned W = 0; W != Opt.WordsPerSentence; ++W) {
        std::uint64_t WordId;
        if (Rng.nextBool(Opt.SharedWordProb))
          WordId = Rng.nextBelow(Opt.SharedWords);
        else
          WordId = 1000 + Topic * Opt.WordsPerTopic +
                   Rng.nextBelow(Opt.WordsPerTopic);
        if (W)
          Out.Text.push_back(' ');
        Out.Text += makeWord(WordId);
      }
      Out.Text += ". ";
    }
  }
  return Out;
}

struct SubmissionOptions {
  unsigned NumFragments = 400;  ///< size of the shared fragment pool
  unsigned FragmentWords = 30;
  unsigned FragmentsPerDoc = 25;
  double PlagiarismRate = 0.3;  ///< probability a fragment is from the pool
  std::uint64_t Seed = 1;
};

/// A corpus of documents; PoolUse[d] records how many pool fragments
/// document d contains (ground truth for match validation).
struct SubmissionCorpus {
  std::vector<std::string> Documents;
  std::vector<unsigned> PoolFragmentsUsed;
};

inline SubmissionCorpus generateSubmissions(unsigned NumDocs,
                                            const SubmissionOptions &Opt) {
  Prng Rng(Opt.Seed);
  // Build the shared fragment pool.
  std::vector<std::string> Pool;
  for (unsigned F = 0; F != Opt.NumFragments; ++F) {
    std::string Frag;
    for (unsigned W = 0; W != Opt.FragmentWords; ++W) {
      if (W)
        Frag.push_back(' ');
      Frag += makeWord(Rng.nextBelow(5000));
    }
    Pool.push_back(std::move(Frag));
  }

  SubmissionCorpus Corpus;
  for (unsigned D = 0; D != NumDocs; ++D) {
    std::string Doc;
    unsigned Plagiarized = 0;
    for (unsigned F = 0; F != Opt.FragmentsPerDoc; ++F) {
      if (Rng.nextBool(Opt.PlagiarismRate)) {
        Doc += Pool[Rng.nextBelow(Pool.size())];
        ++Plagiarized;
      } else {
        for (unsigned W = 0; W != Opt.FragmentWords; ++W) {
          if (W)
            Doc.push_back(' ');
          // Document-private vocabulary: no cross-document matches.
          Doc += makeWord(1000000 + static_cast<std::uint64_t>(D) * 10000 +
                          Rng.nextBelow(3000));
        }
      }
      Doc.push_back('\n');
    }
    Corpus.Documents.push_back(std::move(Doc));
    Corpus.PoolFragmentsUsed.push_back(Plagiarized);
  }
  return Corpus;
}

} // namespace text
} // namespace regions

#endif // TEXT_TEXTGEN_H
