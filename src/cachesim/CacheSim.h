//===- cachesim/CacheSim.h - Two-level cache model -------------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 10 of the paper reports processor cycles lost to read and
/// write stalls, measured with the UltraSparc-I's internal counters.
/// We cannot read 1996 hardware counters, so the harness feeds each
/// workload's data accesses (on the real addresses each allocator
/// returns) through this two-level cache model instead: stall counts
/// are then a deterministic function of the address stream, preserving
/// exactly the allocator-induced locality differences the figure
/// demonstrates (see DESIGN.md's substitution table).
///
/// The default geometry mirrors the UltraSparc-I: 16 KB direct-mapped
/// L1 data cache with 32-byte lines, and a 512 KB direct-mapped unified
/// L2 with 64-byte lines.
///
//===----------------------------------------------------------------------===//

#ifndef CACHESIM_CACHESIM_H
#define CACHESIM_CACHESIM_H

#include "support/Align.h"

#include <cstdint>
#include <vector>

namespace regions {

/// Geometry of one cache level.
struct CacheConfig {
  std::size_t TotalBytes;
  std::size_t LineBytes;
  unsigned Associativity;
};

/// One set-associative cache level with LRU replacement.
class CacheLevel {
public:
  explicit CacheLevel(const CacheConfig &Config);

  /// Returns true on hit; on miss the line is filled (evicting LRU).
  bool access(std::uintptr_t Address);

  /// First line-aligned address of the line containing Address.
  std::uintptr_t lineOf(std::uintptr_t Address) const {
    return Address & ~(LineBytes - 1);
  }

  std::size_t lineBytes() const { return LineBytes; }

  void reset();

private:
  std::size_t LineBytes;
  std::size_t NumSets;
  unsigned Assoc;
  std::vector<std::uintptr_t> Tags;      ///< NumSets x Assoc, 0 = empty
  std::vector<std::uint8_t> LruStamp;    ///< per-way recency (small counter)
  std::uint8_t Clock = 0;
};

/// Two-level cache simulator with stall-cycle accounting.
class CacheSim {
public:
  /// Stall model: an L1 miss that hits in L2 costs L2HitCycles; an L2
  /// miss costs MemoryCycles. Reads and writes are accounted
  /// separately, as in the paper's figure.
  struct Params {
    CacheConfig L1{16 * 1024, 32, 1};
    CacheConfig L2{512 * 1024, 64, 1};
    std::uint32_t L2HitCycles = 6;
    std::uint32_t MemoryCycles = 42;
  };

  struct Stats {
    std::uint64_t Reads = 0;
    std::uint64_t Writes = 0;
    std::uint64_t L1Misses = 0;
    std::uint64_t L2Misses = 0;
    std::uint64_t ReadStallCycles = 0;
    std::uint64_t WriteStallCycles = 0;

    std::uint64_t totalStallCycles() const {
      return ReadStallCycles + WriteStallCycles;
    }
  };

  CacheSim() : CacheSim(Params{}) {}
  explicit CacheSim(const Params &P);

  /// Simulates an access of \p Bytes at \p Ptr (split across lines).
  void access(const void *Ptr, std::size_t Bytes, bool IsWrite);

  const Stats &stats() const { return S; }
  void resetStats() { S = Stats{}; }
  void resetAll();

private:
  CacheLevel L1;
  CacheLevel L2;
  Params P;
  Stats S;
};

} // namespace regions

#endif // CACHESIM_CACHESIM_H
