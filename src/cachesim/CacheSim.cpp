//===- cachesim/CacheSim.cpp - Two-level cache model ----------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cachesim/CacheSim.h"

#include <cassert>

using namespace regions;

CacheLevel::CacheLevel(const CacheConfig &Config)
    : LineBytes(Config.LineBytes),
      NumSets(Config.TotalBytes / (Config.LineBytes * Config.Associativity)),
      Assoc(Config.Associativity) {
  assert(isPowerOf2(LineBytes) && isPowerOf2(NumSets) &&
         "cache geometry must be power-of-two");
  Tags.assign(NumSets * Assoc, 0);
  LruStamp.assign(NumSets * Assoc, 0);
}

bool CacheLevel::access(std::uintptr_t Address) {
  std::uintptr_t Line = Address / LineBytes;
  std::size_t Set = Line & (NumSets - 1);
  std::uintptr_t Tag = Line + 1; // +1 so a valid tag is never 0
  std::uintptr_t *SetTags = &Tags[Set * Assoc];
  std::uint8_t *SetLru = &LruStamp[Set * Assoc];
  ++Clock;

  unsigned VictimWay = 0;
  std::uint8_t OldestStamp = 255;
  for (unsigned Way = 0; Way != Assoc; ++Way) {
    if (SetTags[Way] == Tag) {
      SetLru[Way] = Clock;
      return true;
    }
    // Age relative to the current clock (wraps safely for small Assoc).
    std::uint8_t Age = static_cast<std::uint8_t>(Clock - SetLru[Way]);
    if (SetTags[Way] == 0) {
      VictimWay = Way;
      OldestStamp = 0; // empty way always wins
    } else if (OldestStamp != 0 && Age >= OldestStamp) {
      OldestStamp = Age;
      VictimWay = Way;
    }
  }
  SetTags[VictimWay] = Tag;
  SetLru[VictimWay] = Clock;
  return false;
}

void CacheLevel::reset() {
  Tags.assign(Tags.size(), 0);
  LruStamp.assign(LruStamp.size(), 0);
  Clock = 0;
}

CacheSim::CacheSim(const Params &Params) : L1(Params.L1), L2(Params.L2),
                                           P(Params) {}

void CacheSim::access(const void *Ptr, std::size_t Bytes, bool IsWrite) {
  if (Bytes == 0)
    return;
  auto Addr = reinterpret_cast<std::uintptr_t>(Ptr);
  std::uintptr_t First = L1.lineOf(Addr);
  std::uintptr_t Last = L1.lineOf(Addr + Bytes - 1);
  for (std::uintptr_t Line = First; Line <= Last; Line += L1.lineBytes()) {
    if (IsWrite)
      ++S.Writes;
    else
      ++S.Reads;
    if (L1.access(Line))
      continue;
    ++S.L1Misses;
    std::uint64_t Cost;
    if (L2.access(Line)) {
      Cost = P.L2HitCycles;
    } else {
      ++S.L2Misses;
      Cost = P.MemoryCycles;
    }
    if (IsWrite)
      S.WriteStallCycles += Cost;
    else
      S.ReadStallCycles += Cost;
  }
}

void CacheSim::resetAll() {
  L1.reset();
  L2.reset();
  resetStats();
}
