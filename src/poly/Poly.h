//===- poly/Poly.h - Multivariate polynomials over GF(p) -------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse multivariate polynomials over a small prime field, the
/// substrate of the paper's "grobner" benchmark (Gröbner bases of
/// nine-variable polynomial systems). Term arrays are immutable and
/// arena-allocated: every arithmetic result is a fresh allocation, so
/// reduction sequences generate the benchmark's characteristic churn of
/// short-lived medium-size objects.
///
/// Monomial order: graded reverse lexicographic (grevlex).
/// Coefficients: GF(32003), the classic computer-algebra test prime.
///
//===----------------------------------------------------------------------===//

#ifndef POLY_POLY_H
#define POLY_POLY_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>

namespace regions {

inline constexpr unsigned kMaxVars = 9;
inline constexpr std::uint32_t kFieldPrime = 32003;

/// Field helpers over GF(kFieldPrime).
inline std::uint32_t fieldAdd(std::uint32_t A, std::uint32_t B) {
  std::uint32_t S = A + B;
  return S >= kFieldPrime ? S - kFieldPrime : S;
}
inline std::uint32_t fieldSub(std::uint32_t A, std::uint32_t B) {
  return A >= B ? A - B : A + kFieldPrime - B;
}
inline std::uint32_t fieldMul(std::uint32_t A, std::uint32_t B) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(A) * B) % kFieldPrime);
}
inline std::uint32_t fieldPow(std::uint32_t A, std::uint32_t E) {
  std::uint32_t R = 1;
  while (E) {
    if (E & 1)
      R = fieldMul(R, A);
    A = fieldMul(A, A);
    E >>= 1;
  }
  return R;
}
inline std::uint32_t fieldInv(std::uint32_t A) {
  assert(A % kFieldPrime != 0 && "inverting zero");
  return fieldPow(A, kFieldPrime - 2);
}

/// A power product x0^e0 ... x8^e8 with cached total degree.
struct Monomial {
  std::uint8_t Exp[kMaxVars] = {};
  std::uint8_t Total = 0;

  static Monomial one() { return Monomial{}; }

  static Monomial var(unsigned I, std::uint8_t E = 1) {
    Monomial M;
    M.Exp[I] = E;
    M.Total = E;
    return M;
  }

  Monomial times(const Monomial &O) const {
    Monomial R;
    unsigned Total = 0;
    for (unsigned I = 0; I != kMaxVars; ++I) {
      unsigned E = Exp[I] + O.Exp[I];
      assert(E < 256 && "exponent overflow");
      R.Exp[I] = static_cast<std::uint8_t>(E);
      Total += E;
    }
    R.Total = static_cast<std::uint8_t>(Total);
    return R;
  }

  bool divides(const Monomial &O) const {
    for (unsigned I = 0; I != kMaxVars; ++I)
      if (Exp[I] > O.Exp[I])
        return false;
    return true;
  }

  /// This / O; requires O.divides(*this) == false... requires O | this.
  Monomial dividedBy(const Monomial &O) const {
    assert(O.divides(*this) && "non-exact monomial division");
    Monomial R;
    unsigned Total = 0;
    for (unsigned I = 0; I != kMaxVars; ++I) {
      R.Exp[I] = static_cast<std::uint8_t>(Exp[I] - O.Exp[I]);
      Total += R.Exp[I];
    }
    R.Total = static_cast<std::uint8_t>(Total);
    return R;
  }

  Monomial lcmWith(const Monomial &O) const {
    Monomial R;
    unsigned Total = 0;
    for (unsigned I = 0; I != kMaxVars; ++I) {
      R.Exp[I] = Exp[I] > O.Exp[I] ? Exp[I] : O.Exp[I];
      Total += R.Exp[I];
    }
    R.Total = static_cast<std::uint8_t>(Total);
    return R;
  }

  bool isOne() const { return Total == 0; }

  bool coprimeWith(const Monomial &O) const {
    for (unsigned I = 0; I != kMaxVars; ++I)
      if (Exp[I] && O.Exp[I])
        return false;
    return true;
  }

  bool equals(const Monomial &O) const {
    return std::memcmp(Exp, O.Exp, kMaxVars) == 0;
  }
};

/// Grevlex comparison: -1 if A < B, 0 if equal, +1 if A > B.
inline int monomialCompare(const Monomial &A, const Monomial &B) {
  if (A.Total != B.Total)
    return A.Total < B.Total ? -1 : 1;
  // Reverse lex on the reversed exponent vector: the monomial with the
  // *smaller* exponent in the last differing variable is larger.
  for (unsigned I = kMaxVars; I-- > 0;) {
    if (A.Exp[I] != B.Exp[I])
      return A.Exp[I] > B.Exp[I] ? -1 : 1;
  }
  return 0;
}

/// One coefficient-monomial pair.
struct Term {
  std::uint32_t Coeff = 0;
  Monomial Mono;
};

/// An immutable polynomial: terms sorted in strictly decreasing
/// monomial order, no zero coefficients. Terms live in an arena.
struct Poly {
  const Term *Terms = nullptr;
  std::uint32_t NumTerms = 0;

  bool isZero() const { return NumTerms == 0; }
  const Term &lead() const {
    assert(NumTerms && "lead of zero polynomial");
    return Terms[0];
  }
  unsigned degree() const { return NumTerms ? Terms[0].Mono.Total : 0; }

  /// Order-insensitive content hash (for checksums).
  std::uint64_t hash() const {
    std::uint64_t H = 0x9e3779b97f4a7c15ULL;
    for (std::uint32_t I = 0; I != NumTerms; ++I) {
      std::uint64_t T = Terms[I].Coeff;
      for (unsigned V = 0; V != kMaxVars; ++V)
        T = T * 131 + Terms[I].Mono.Exp[V];
      H ^= T + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
    }
    return H ^ NumTerms;
  }
};

/// Builds polynomials in an Arena (see bignum/Nat.h for the concept).
template <class Arena> class PolyBuilder {
public:
  explicit PolyBuilder(Arena &A) : A(A) {}

  /// Builds a polynomial from unsorted, possibly-duplicated terms.
  Poly normalize(const Term *Raw, std::uint32_t N) {
    // Insertion sort into a scratch buffer (N is small in practice).
    Term *Buf = allocTerms(N);
    std::uint32_t Len = 0;
    for (std::uint32_t I = 0; I != N; ++I) {
      if (Raw[I].Coeff % kFieldPrime == 0)
        continue;
      Term T{Raw[I].Coeff % kFieldPrime, Raw[I].Mono};
      // Find position (descending order).
      std::uint32_t Pos = 0;
      while (Pos < Len && monomialCompare(Buf[Pos].Mono, T.Mono) > 0)
        ++Pos;
      if (Pos < Len && Buf[Pos].Mono.equals(T.Mono)) {
        Buf[Pos].Coeff = fieldAdd(Buf[Pos].Coeff, T.Coeff);
        continue;
      }
      for (std::uint32_t J = Len; J > Pos; --J)
        Buf[J] = Buf[J - 1];
      Buf[Pos] = T;
      ++Len;
    }
    // Drop cancelled terms.
    std::uint32_t Out = 0;
    for (std::uint32_t I = 0; I != Len; ++I)
      if (Buf[I].Coeff != 0)
        Buf[Out++] = Buf[I];
    return Poly{Buf, Out};
  }

  Poly zero() { return Poly{}; }

  Poly constant(std::uint32_t C) {
    if (C % kFieldPrime == 0)
      return Poly{};
    Term *T = allocTerms(1);
    T[0] = {C % kFieldPrime, Monomial::one()};
    return Poly{T, 1};
  }

  Poly monomial(std::uint32_t C, const Monomial &M) {
    if (C % kFieldPrime == 0)
      return Poly{};
    Term *T = allocTerms(1);
    T[0] = {C % kFieldPrime, M};
    return Poly{T, 1};
  }

  /// Merge-adds two polynomials.
  Poly add(Poly X, Poly Y) {
    Term *Buf = allocTerms(X.NumTerms + Y.NumTerms);
    std::uint32_t I = 0, J = 0, Out = 0;
    while (I < X.NumTerms && J < Y.NumTerms) {
      int C = monomialCompare(X.Terms[I].Mono, Y.Terms[J].Mono);
      if (C > 0) {
        Buf[Out++] = X.Terms[I++];
      } else if (C < 0) {
        Buf[Out++] = Y.Terms[J++];
      } else {
        std::uint32_t S = fieldAdd(X.Terms[I].Coeff, Y.Terms[J].Coeff);
        if (S)
          Buf[Out++] = Term{S, X.Terms[I].Mono};
        ++I;
        ++J;
      }
    }
    while (I < X.NumTerms)
      Buf[Out++] = X.Terms[I++];
    while (J < Y.NumTerms)
      Buf[Out++] = Y.Terms[J++];
    return Poly{Buf, Out};
  }

  Poly negate(Poly X) {
    Term *Buf = allocTerms(X.NumTerms);
    for (std::uint32_t I = 0; I != X.NumTerms; ++I)
      Buf[I] = Term{fieldSub(0, X.Terms[I].Coeff), X.Terms[I].Mono};
    return Poly{Buf, X.NumTerms};
  }

  Poly sub(Poly X, Poly Y) { return add(X, negate(Y)); }

  /// X * (C * M) — the workhorse of reduction.
  Poly mulTerm(Poly X, std::uint32_t C, const Monomial &M) {
    if (C % kFieldPrime == 0 || X.isZero())
      return Poly{};
    Term *Buf = allocTerms(X.NumTerms);
    for (std::uint32_t I = 0; I != X.NumTerms; ++I)
      Buf[I] = Term{fieldMul(X.Terms[I].Coeff, C), X.Terms[I].Mono.times(M)};
    return Poly{Buf, X.NumTerms};
  }

  Poly mul(Poly X, Poly Y) {
    Poly Acc = zero();
    for (std::uint32_t I = 0; I != Y.NumTerms; ++I)
      Acc = add(Acc, mulTerm(X, Y.Terms[I].Coeff, Y.Terms[I].Mono));
    return Acc;
  }

  /// Scales so the leading coefficient is 1.
  Poly makeMonic(Poly X) {
    if (X.isZero() || X.lead().Coeff == 1)
      return X;
    return mulTerm(X, fieldInv(X.lead().Coeff), Monomial::one());
  }

  /// The S-polynomial of F and G.
  Poly sPoly(Poly F, Poly G) {
    assert(!F.isZero() && !G.isZero() && "sPoly of zero");
    Monomial L = F.lead().Mono.lcmWith(G.lead().Mono);
    Poly A = mulTerm(F, fieldInv(F.lead().Coeff),
                     L.dividedBy(F.lead().Mono));
    Poly B = mulTerm(G, fieldInv(G.lead().Coeff),
                     L.dividedBy(G.lead().Mono));
    return sub(A, B);
  }

  /// Fully reduces F modulo the polynomials Basis[0..N). Returns the
  /// normal form (monic when nonzero). ReductionSteps, if given, counts
  /// elementary reductions (workload statistics).
  Poly reduce(Poly F, const Poly *Basis, std::uint32_t N,
              std::uint64_t *ReductionSteps = nullptr) {
    Poly Rem = zero();
    Poly Cur = F;
    while (!Cur.isZero()) {
      bool Reduced = false;
      for (std::uint32_t I = 0; I != N; ++I) {
        const Poly &G = Basis[I];
        if (G.isZero() || !G.lead().Mono.divides(Cur.lead().Mono))
          continue;
        std::uint32_t C =
            fieldMul(Cur.lead().Coeff, fieldInv(G.lead().Coeff));
        Monomial M = Cur.lead().Mono.dividedBy(G.lead().Mono);
        Cur = sub(Cur, mulTerm(G, C, M));
        if (ReductionSteps)
          ++*ReductionSteps;
        Reduced = true;
        break;
      }
      if (!Reduced) {
        // Move the irreducible lead term to the remainder.
        Rem = add(Rem, monomial(Cur.lead().Coeff, Cur.lead().Mono));
        Term *Tail = allocTerms(Cur.NumTerms - 1);
        std::memcpy(Tail, Cur.Terms + 1, (Cur.NumTerms - 1) * sizeof(Term));
        Cur = Poly{Tail, Cur.NumTerms - 1};
      }
    }
    return makeMonic(Rem);
  }

  /// Deep-copies a polynomial into this builder's arena (used to move
  /// basis elements into a result region, like the paper's grobner
  /// change that copies basis polynomials to a result region).
  Poly copy(Poly X) {
    Term *Buf = allocTerms(X.NumTerms);
    std::memcpy(Buf, X.Terms, X.NumTerms * sizeof(Term));
    return Poly{Buf, X.NumTerms};
  }

  /// Human-readable rendering (tests/diagnostics; C++ heap).
  std::string render(Poly X) {
    if (X.isZero())
      return "0";
    std::string S;
    for (std::uint32_t I = 0; I != X.NumTerms; ++I) {
      if (I)
        S += " + ";
      S += std::to_string(X.Terms[I].Coeff);
      for (unsigned V = 0; V != kMaxVars; ++V) {
        if (!X.Terms[I].Mono.Exp[V])
          continue;
        S += "*x" + std::to_string(V);
        if (X.Terms[I].Mono.Exp[V] > 1)
          S += "^" + std::to_string(X.Terms[I].Mono.Exp[V]);
      }
    }
    return S;
  }

private:
  Term *allocTerms(std::uint32_t N) {
    return static_cast<Term *>(A.alloc(N * sizeof(Term)));
  }

  Arena &A;
};

} // namespace regions

#endif // POLY_POLY_H
