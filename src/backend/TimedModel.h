//===- backend/TimedModel.h - Instrumented memory-time wrapper -*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decorator that times every call into the underlying memory model,
/// approximating the paper's Figure 9 instrumentation ("the portion of
/// time spent in these libraries is the memory part of the execution
/// time"). Two caveats relative to the paper, documented in
/// EXPERIMENTS.md: the per-call clock reads add overhead of their own,
/// and write-barrier time (inside RegionPtr stores) is not captured.
///
//===----------------------------------------------------------------------===//

#ifndef BACKEND_TIMEDMODEL_H
#define BACKEND_TIMEDMODEL_H

#include "support/Stopwatch.h"

#include <cstdint>
#include <utility>

namespace regions {

/// Wraps a memory model, accumulating nanoseconds spent in allocation,
/// region management, and disposal. touch() is passed through untimed
/// (it is tracing, not memory management).
template <class M> class TimedModel {
public:
  static constexpr bool kStructuredFree = M::kStructuredFree;
  static constexpr bool kIndividualFree = M::kIndividualFree;

  template <class T> using Ptr = typename M::template Ptr<T>;
  template <class T> using SamePtr = typename M::template SamePtr<T>;
  template <class T> using Local = typename M::template Local<T>;
  using Frame = typename M::Frame;
  using Token = typename M::Token;

  explicit TimedModel(M &Inner) : Inner(Inner) {}

  auto makeRegion() {
    Timer T(Ns);
    return Inner.makeRegion();
  }
  bool dropRegion(Token &Handle) {
    Timer T(Ns);
    return Inner.dropRegion(Handle);
  }

  template <class T, class... Args> T *create(Token &Scope, Args &&...A) {
    Timer Ti(Ns);
    return Inner.template create<T>(Scope, std::forward<Args>(A)...);
  }
  template <class T> T *createArray(Token &Scope, std::size_t N) {
    Timer Ti(Ns);
    return Inner.template createArray<T>(Scope, N);
  }
  char *strdup(Token &Scope, const char *S) {
    Timer T(Ns);
    return Inner.strdup(Scope, S);
  }
  void *allocBytes(Token &Scope, std::size_t N) {
    Timer T(Ns);
    return Inner.allocBytes(Scope, N);
  }
  void *allocBlob(Token &Scope, std::size_t N) {
    Timer T(Ns);
    return Inner.allocBlob(Scope, N);
  }

  template <class T> void dispose(T *P) {
    Timer Ti(Ns);
    Inner.dispose(P);
  }
  template <class T> void disposeArray(T *P, std::size_t N) {
    Timer Ti(Ns);
    Inner.disposeArray(P, N);
  }

  // Untimed like touch(): it replaces a plain pointer store, which the
  // instrumentation never timed either.
  template <class T> void assignSame(Ptr<T> &Slot, T *New, Token &Scope) {
    Inner.assignSame(Slot, New, Scope);
  }

  void touch(const void *P, std::size_t N, bool IsWrite = false) {
    Inner.touch(P, N, IsWrite);
  }

  /// Nanoseconds spent inside the wrapped model.
  std::uint64_t memoryNanos() const { return Ns; }

private:
  struct Timer {
    explicit Timer(std::uint64_t &Acc)
        : Acc(Acc), Start(monotonicNanos()) {}
    ~Timer() { Acc += monotonicNanos() - Start; }
    std::uint64_t &Acc;
    std::uint64_t Start;
  };

  M &Inner;
  std::uint64_t Ns = 0;
};

} // namespace regions

#endif // BACKEND_TIMEDMODEL_H
