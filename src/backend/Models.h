//===- backend/Models.h - Memory models for the workloads ------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper compiles each benchmark twice: a region version (in C@)
/// and a malloc/free version. We write each workload *once* as a
/// template over a memory model and instantiate it per backend:
///
///  - RegionModel:  scopes are real regions (safe or unsafe per the
///    manager's SafetyConfig); pointer fields are RegionPtr (barriered),
///    locals are rt::Ref; dispose() is a no-op — memory dies with its
///    region.
///  - DirectModel:  malloc/free (Sun/BSD/Lea) or GC; pointer fields and
///    locals are raw pointers (no barrier cost, as in the paper's C
///    versions); dispose() frees individual objects (a no-op under GC,
///    whose free is disabled); scopes are no-ops.
///  - EmuModel:     the paper's emulation library — the region program
///    shape running on malloc/free, freeing object-by-object at
///    deleteRegion. Used for the malloc rows of the originally
///    region-based programs (mudlle, lcc).
///
/// Workloads therefore contain both lifetime disciplines: they bracket
/// phases in scopes (regions) *and* announce individual object death
/// with dispose() (malloc). Each model implements the half that applies
/// to it, which is exactly how the paper's two program versions differ.
///
//===----------------------------------------------------------------------===//

#ifndef BACKEND_MODELS_H
#define BACKEND_MODELS_H

#include "alloc/MallocInterface.h"
#include "cachesim/CacheSim.h"
#include "emulation/EmulationRegions.h"
#include "region/Regions.h"

#include <cstring>
#include <new>
#include <utility>

namespace regions {

/// Workloads run on real regions (paper: the C@ versions).
class RegionModel {
public:
  static constexpr bool kStructuredFree = true;
  static constexpr bool kIndividualFree = false;

  template <class T> using Ptr = RegionPtr<T>;
  /// For pointer fields the workload can prove never leave their
  /// region (intra-region list links, tree children): the statically
  /// recognized sameregion pointers of §5.6. No barrier, no cleanup
  /// thunk; debug builds assert containment on every store.
  template <class T> using SamePtr = SameRegionPtr<T>;
  template <class T> using Local = rt::Ref<T>;
  using Frame = rt::Frame;
  using Token = rt::RegionHandle;

  explicit RegionModel(RegionManager &Manager, CacheSim *Cache = nullptr)
      : Mgr(Manager), Cache(Cache) {}

  Region *makeRegion() { return Mgr.newRegion(); }

  /// Deletes the region; fails (returning false) if external references
  /// remain and the manager is safe.
  bool dropRegion(Token &Handle) { return deleteRegion(Handle); }

  template <class T, class... Args> T *create(Region *R, Args &&...A) {
    return rnew<T>(R, std::forward<Args>(A)...);
  }

  template <class T> T *createArray(Region *R, std::size_t N) {
    return rnewArray<T>(R, N);
  }

  char *strdup(Region *R, const char *S) { return rstrdup(R, S); }

  /// Pointer-free bulk data (paper: rstralloc). Uninitialized.
  void *allocBytes(Region *R, std::size_t N) { return Mgr.allocRaw(R, N); }

  /// Byte blob on the *normal* (scanned) allocator side: for data that
  /// lives interleaved with pointer-bearing objects, as ralloc'd
  /// buffers do in the paper's programs. Layout: [size][bytes].
  void *allocBlob(Region *R, std::size_t N) {
    void *Mem = Mgr.allocScanned(R, N + sizeof(std::size_t), &blobThunk);
    *static_cast<std::size_t *>(Mem) = N;
    return static_cast<std::size_t *>(Mem) + 1;
  }

  /// Individual-object death notice: regions reclaim wholesale.
  template <class T> void dispose(T *) {}
  template <class T> void disposeArray(T *, std::size_t) {}

  /// Barrier-free store into a counted slot the workload proves lives
  /// in \p Scope's region along with the old and new values (the
  /// per-store sameregion elision; containment debug-asserted).
  template <class T> void assignSame(Ptr<T> &Slot, T *New, Token &Scope) {
    assignKnownRegion(Slot, New, Scope.get());
  }

  /// Cache-trace hook for the Figure 10 harness.
  void touch(const void *P, std::size_t N, bool IsWrite = false) {
    if (Cache)
      Cache->access(P, N, IsWrite);
  }

  RegionManager &manager() { return Mgr; }

private:
  static std::size_t blobThunk(void *Payload) {
    return sizeof(std::size_t) + *static_cast<std::size_t *>(Payload);
  }

  RegionManager &Mgr;
  CacheSim *Cache;
};

/// Workloads run on plain malloc/free or the collector (paper: the C
/// versions of cfrac, grobner, tile, moss; the GC rows of every
/// program).
class DirectModel {
public:
  static constexpr bool kStructuredFree = false;
  static constexpr bool kIndividualFree = true;

  template <class T> using Ptr = T *;
  template <class T> using SamePtr = T *;
  template <class T> using Local = T *;
  struct Frame {}; ///< no shadow-stack bookkeeping
  struct Token {}; ///< scopes are no-ops

  /// \p CallFree false disables individual frees (the GC configuration,
  /// and the Bump base-time configuration).
  DirectModel(MallocInterface &Malloc, CacheSim *Cache = nullptr,
              bool CallFree = true)
      : Malloc(Malloc), Cache(Cache), CallFree(CallFree) {}

  Token makeRegion() { return {}; }
  bool dropRegion(Token &) { return true; }

  template <class T, class... Args> T *create(Token &, Args &&...A) {
    return ::new (Malloc.malloc(sizeof(T))) T(std::forward<Args>(A)...);
  }

  template <class T> T *createArray(Token &, std::size_t N) {
    void *Mem = Malloc.malloc(N * sizeof(T));
    std::memset(Mem, 0, N * sizeof(T));
    auto *Elems = static_cast<T *>(Mem);
    for (std::size_t I = 0; I != N; ++I)
      ::new (Elems + I) T();
    return Elems;
  }

  char *strdup(Token &, const char *S) {
    std::size_t Len = std::strlen(S);
    auto *Copy = static_cast<char *>(Malloc.malloc(Len + 1));
    std::memcpy(Copy, S, Len + 1);
    return Copy;
  }

  void *allocBytes(Token &, std::size_t N) { return Malloc.malloc(N); }
  void *allocBlob(Token &T, std::size_t N) { return allocBytes(T, N); }

  template <class T> void dispose(T *P) {
    if (P && CallFree)
      Malloc.free(P);
  }
  template <class T> void disposeArray(T *P, std::size_t) {
    if (P && CallFree)
      Malloc.free(P);
  }

  template <class T> void assignSame(T *&Slot, T *New, Token &) {
    Slot = New;
  }

  void touch(const void *P, std::size_t N, bool IsWrite = false) {
    if (Cache)
      Cache->access(P, N, IsWrite);
  }

  MallocInterface &allocator() { return Malloc; }

private:
  MallocInterface &Malloc;
  CacheSim *Cache;
  bool CallFree;
};

/// Workloads run on the emulation library (paper: malloc/free rows of
/// mudlle and lcc).
class EmuModel {
public:
  static constexpr bool kStructuredFree = true;
  static constexpr bool kIndividualFree = false;

  template <class T> using Ptr = T *;
  template <class T> using SamePtr = T *;
  template <class T> using Local = T *;
  struct Frame {};
  using Token = EmuRegion *;

  explicit EmuModel(EmulationRegionLib &Lib, CacheSim *Cache = nullptr)
      : Lib(Lib), Cache(Cache) {}

  EmuRegion *makeRegion() { return Lib.newRegion(); }
  bool dropRegion(Token &R) {
    Lib.deleteRegion(R);
    return true;
  }

  template <class T, class... Args> T *create(Token R, Args &&...A) {
    return ::new (Lib.alloc(R, sizeof(T))) T(std::forward<Args>(A)...);
  }

  template <class T> T *createArray(Token R, std::size_t N) {
    void *Mem = Lib.alloc(R, N * sizeof(T));
    std::memset(Mem, 0, N * sizeof(T));
    auto *Elems = static_cast<T *>(Mem);
    for (std::size_t I = 0; I != N; ++I)
      ::new (Elems + I) T();
    return Elems;
  }

  char *strdup(Token R, const char *S) {
    std::size_t Len = std::strlen(S);
    auto *Copy = static_cast<char *>(Lib.alloc(R, Len + 1));
    std::memcpy(Copy, S, Len + 1);
    return Copy;
  }

  void *allocBytes(Token R, std::size_t N) { return Lib.alloc(R, N); }
  void *allocBlob(Token R, std::size_t N) { return allocBytes(R, N); }

  template <class T> void dispose(T *) {}
  template <class T> void disposeArray(T *, std::size_t) {}

  template <class T> void assignSame(T *&Slot, T *New, Token &) {
    Slot = New;
  }

  void touch(const void *P, std::size_t N, bool IsWrite = false) {
    if (Cache)
      Cache->access(P, N, IsWrite);
  }

  EmulationRegionLib &lib() { return Lib; }

private:
  EmulationRegionLib &Lib;
  CacheSim *Cache;
};

/// Arena adapter: substrates that only need raw byte allocation
/// (bignums, polynomial term arrays) take any type with an
/// alloc(size_t) member; this binds a model + scope pair to that shape.
template <class M> struct ScopedArena {
  M &Mem;
  typename M::Token &Scope;
  void *alloc(std::size_t N) { return Mem.allocBytes(Scope, N); }
};

} // namespace regions

#endif // BACKEND_MODELS_H
