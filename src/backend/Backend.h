//===- backend/Backend.h - Benchmark backend identities --------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Names for the allocator configurations of §5.2: three malloc/free
/// implementations, the conservative collector, safe and unsafe
/// regions, the emulation library over each malloc, and the Bump
/// pseudo-backend used to calibrate base execution time.
///
//===----------------------------------------------------------------------===//

#ifndef BACKEND_BACKEND_H
#define BACKEND_BACKEND_H

namespace regions {

enum class BackendKind {
  RegionSafe,   ///< paper "Reg": safe regions
  RegionUnsafe, ///< paper "unsafe": reference counting disabled
  Sun,          ///< default Solaris allocator (best-fit tree)
  Bsd,          ///< BSD power-of-two allocator
  Lea,          ///< Doug Lea's allocator
  Gc,           ///< Boehm-Weiser conservative collector
  EmuSun,       ///< region API emulated over Sun malloc
  EmuBsd,       ///< region API emulated over BSD malloc
  EmuLea,       ///< region API emulated over Lea malloc
  Bump,         ///< zero-cost pseudo-allocator (base-time calibration)
};

inline const char *backendName(BackendKind Kind) {
  switch (Kind) {
  case BackendKind::RegionSafe:
    return "reg";
  case BackendKind::RegionUnsafe:
    return "unsafe";
  case BackendKind::Sun:
    return "sun";
  case BackendKind::Bsd:
    return "bsd";
  case BackendKind::Lea:
    return "lea";
  case BackendKind::Gc:
    return "gc";
  case BackendKind::EmuSun:
    return "emu-sun";
  case BackendKind::EmuBsd:
    return "emu-bsd";
  case BackendKind::EmuLea:
    return "emu-lea";
  case BackendKind::Bump:
    return "bump";
  }
  return "?";
}

inline bool isRegionBackend(BackendKind Kind) {
  return Kind == BackendKind::RegionSafe || Kind == BackendKind::RegionUnsafe;
}

inline bool isEmulationBackend(BackendKind Kind) {
  return Kind == BackendKind::EmuSun || Kind == BackendKind::EmuBsd ||
         Kind == BackendKind::EmuLea;
}

} // namespace regions

#endif // BACKEND_BACKEND_H
