//===- bignum/Nat.h - Arena-allocated natural numbers ----------*- C++ -*-===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision natural numbers for the cfrac workload (the
/// paper's benchmark factors a 31-digit integer with the continued
/// fraction method). Values are immutable limb arrays allocated from an
/// Arena — every arithmetic result is a fresh small allocation, which
/// is precisely the allocation behaviour that makes cfrac the paper's
/// most allocation-intensive benchmark (3.8M allocations averaging a
/// few words).
///
/// The Arena concept is a single member: void *alloc(std::size_t).
/// Region backends bind it to a region's pointer-free allocator;
/// malloc backends to malloc (see backend/Models.h ScopedArena).
///
//===----------------------------------------------------------------------===//

#ifndef BIGNUM_NAT_H
#define BIGNUM_NAT_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>

namespace regions {

/// A natural number: little-endian base-2^32 limbs, no leading zero
/// limb; Len == 0 encodes zero. Values are immutable once built; the
/// limbs live in whatever arena produced them.
struct Nat {
  const std::uint32_t *Limbs = nullptr;
  std::uint32_t Len = 0;

  bool isZero() const { return Len == 0; }

  /// Number of significant bits.
  std::uint32_t bitLength() const {
    if (Len == 0)
      return 0;
    std::uint32_t Top = Limbs[Len - 1];
    std::uint32_t Bits = 32 * Len;
    for (std::uint32_t Probe = 1u << 31; !(Top & Probe); Probe >>= 1)
      --Bits;
    return Bits;
  }

  /// Bit \p I (0 = least significant).
  bool bit(std::uint32_t I) const {
    if (I >= 32 * Len)
      return false;
    return (Limbs[I / 32] >> (I % 32)) & 1;
  }

  /// Value as uint64_t; asserts it fits.
  std::uint64_t toU64() const {
    assert(Len <= 2 && "value does not fit in 64 bits");
    std::uint64_t V = 0;
    for (std::uint32_t I = Len; I-- > 0;)
      V = (V << 32) | Limbs[I];
    return V;
  }

  /// Low 64 bits (for hashing / checksums).
  std::uint64_t low64() const {
    std::uint64_t V = 0;
    for (std::uint32_t I = Len < 2 ? Len : 2; I-- > 0;)
      V = (V << 32) | Limbs[I];
    return V;
  }
};

/// Three-way comparison, -1/0/+1.
inline int natCompare(Nat A, Nat B) {
  if (A.Len != B.Len)
    return A.Len < B.Len ? -1 : 1;
  for (std::uint32_t I = A.Len; I-- > 0;) {
    if (A.Limbs[I] != B.Limbs[I])
      return A.Limbs[I] < B.Limbs[I] ? -1 : 1;
  }
  return 0;
}

/// Builds Nat values in an Arena. All results are freshly allocated;
/// nothing is ever freed individually (regions or GC reclaim).
template <class Arena> class NatBuilder {
public:
  explicit NatBuilder(Arena &A) : A(A) {}

  Nat fromU64(std::uint64_t V) {
    if (V == 0)
      return Nat{};
    std::uint32_t Len = V >> 32 ? 2 : 1;
    std::uint32_t *L = allocLimbs(Len);
    L[0] = static_cast<std::uint32_t>(V);
    if (Len == 2)
      L[1] = static_cast<std::uint32_t>(V >> 32);
    return Nat{L, Len};
  }

  Nat fromDecimal(const char *S) {
    Nat V{};
    for (; *S; ++S) {
      assert(*S >= '0' && *S <= '9' && "bad decimal digit");
      V = addSmall(mulSmall(V, 10), static_cast<std::uint32_t>(*S - '0'));
    }
    return V;
  }

  Nat copy(Nat V) {
    if (V.Len == 0)
      return Nat{};
    std::uint32_t *L = allocLimbs(V.Len);
    std::memcpy(L, V.Limbs, V.Len * 4);
    return Nat{L, V.Len};
  }

  Nat add(Nat X, Nat Y) {
    if (X.Len < Y.Len)
      std::swap(X, Y);
    std::uint32_t *L = allocLimbs(X.Len + 1);
    std::uint64_t Carry = 0;
    for (std::uint32_t I = 0; I != X.Len; ++I) {
      Carry += X.Limbs[I];
      if (I < Y.Len)
        Carry += Y.Limbs[I];
      L[I] = static_cast<std::uint32_t>(Carry);
      Carry >>= 32;
    }
    L[X.Len] = static_cast<std::uint32_t>(Carry);
    return trim(L, X.Len + 1);
  }

  Nat addSmall(Nat X, std::uint32_t V) {
    std::uint32_t *L = allocLimbs(X.Len + 1);
    std::uint64_t Carry = V;
    for (std::uint32_t I = 0; I != X.Len; ++I) {
      Carry += X.Limbs[I];
      L[I] = static_cast<std::uint32_t>(Carry);
      Carry >>= 32;
    }
    L[X.Len] = static_cast<std::uint32_t>(Carry);
    return trim(L, X.Len + 1);
  }

  /// X - Y; requires X >= Y.
  Nat sub(Nat X, Nat Y) {
    assert(natCompare(X, Y) >= 0 && "sub would go negative");
    if (X.Len == 0)
      return Nat{};
    std::uint32_t *L = allocLimbs(X.Len);
    std::int64_t Borrow = 0;
    for (std::uint32_t I = 0; I != X.Len; ++I) {
      std::int64_t D = static_cast<std::int64_t>(X.Limbs[I]) - Borrow -
                       (I < Y.Len ? Y.Limbs[I] : 0);
      Borrow = D < 0;
      L[I] = static_cast<std::uint32_t>(D + (Borrow << 32));
    }
    assert(Borrow == 0 && "underflow despite precondition");
    return trim(L, X.Len);
  }

  Nat mulSmall(Nat X, std::uint32_t V) {
    if (X.Len == 0 || V == 0)
      return Nat{};
    std::uint32_t *L = allocLimbs(X.Len + 1);
    std::uint64_t Carry = 0;
    for (std::uint32_t I = 0; I != X.Len; ++I) {
      Carry += static_cast<std::uint64_t>(X.Limbs[I]) * V;
      L[I] = static_cast<std::uint32_t>(Carry);
      Carry >>= 32;
    }
    L[X.Len] = static_cast<std::uint32_t>(Carry);
    return trim(L, X.Len + 1);
  }

  Nat mul(Nat X, Nat Y) {
    if (X.Len == 0 || Y.Len == 0)
      return Nat{};
    std::uint32_t *L = allocLimbs(X.Len + Y.Len);
    std::memset(L, 0, (X.Len + Y.Len) * 4);
    for (std::uint32_t I = 0; I != X.Len; ++I) {
      std::uint64_t Carry = 0;
      for (std::uint32_t J = 0; J != Y.Len; ++J) {
        Carry += static_cast<std::uint64_t>(X.Limbs[I]) * Y.Limbs[J] +
                 L[I + J];
        L[I + J] = static_cast<std::uint32_t>(Carry);
        Carry >>= 32;
      }
      L[I + Y.Len] = static_cast<std::uint32_t>(Carry);
    }
    return trim(L, X.Len + Y.Len);
  }

  struct DivMod {
    Nat Quot;
    Nat Rem;
  };

  /// Schoolbook binary long division.
  DivMod divMod(Nat X, Nat Y) {
    assert(!Y.isZero() && "division by zero");
    if (natCompare(X, Y) < 0)
      return {Nat{}, copy(X)};
    std::uint32_t Bits = X.bitLength();
    // Mutable remainder and quotient accumulators.
    std::uint32_t RemLen = Y.Len + 1;
    auto *R = allocLimbs(RemLen);
    std::memset(R, 0, RemLen * 4);
    auto *Q = allocLimbs(X.Len);
    std::memset(Q, 0, X.Len * 4);
    for (std::uint32_t I = Bits; I-- > 0;) {
      // R = (R << 1) | bit_I(X)
      std::uint32_t Carry = X.bit(I) ? 1u : 0u;
      for (std::uint32_t J = 0; J != RemLen; ++J) {
        std::uint32_t Next = R[J] >> 31;
        R[J] = (R[J] << 1) | Carry;
        Carry = Next;
      }
      // If R >= Y: R -= Y; Q.bit(I) = 1.
      if (rawCompare(R, RemLen, Y.Limbs, Y.Len) >= 0) {
        rawSubInPlace(R, RemLen, Y.Limbs, Y.Len);
        Q[I / 32] |= 1u << (I % 32);
      }
    }
    return {trim(Q, X.Len), trim(R, RemLen)};
  }

  Nat mod(Nat X, Nat Y) { return divMod(X, Y).Rem; }

  /// Floor of the square root (Newton's method).
  Nat sqrtFloor(Nat X) {
    if (X.Len == 0)
      return Nat{};
    if (X.Len <= 1) {
      std::uint64_t V = X.toU64();
      auto R = static_cast<std::uint64_t>(
          __builtin_sqrt(static_cast<double>(V)));
      while (R * R > V)
        --R;
      while ((R + 1) * (R + 1) <= V)
        ++R;
      return fromU64(R);
    }
    // Initial guess: 2^ceil(bits/2).
    std::uint32_t Bits = (X.bitLength() + 1) / 2;
    Nat Guess = shiftLeft(fromU64(1), Bits);
    for (;;) {
      // Next = (Guess + X/Guess) / 2
      Nat Next = half(add(Guess, divMod(X, Guess).Quot));
      if (natCompare(Next, Guess) >= 0)
        break;
      Guess = Next;
    }
    // Guess may overshoot by one.
    while (natCompare(mul(Guess, Guess), X) > 0)
      Guess = sub(Guess, fromU64(1));
    return Guess;
  }

  /// Euclid's algorithm. Allocation-heavy by design, like the original
  /// cfrac's gcd.
  Nat gcd(Nat X, Nat Y) {
    Nat A = copy(X), B = copy(Y);
    while (!B.isZero()) {
      Nat R = mod(A, B);
      A = B;
      B = R;
    }
    return A;
  }

  Nat shiftLeft(Nat X, std::uint32_t Bits) {
    if (X.Len == 0)
      return Nat{};
    std::uint32_t LimbShift = Bits / 32, BitShift = Bits % 32;
    std::uint32_t Len = X.Len + LimbShift + 1;
    std::uint32_t *L = allocLimbs(Len);
    std::memset(L, 0, Len * 4);
    for (std::uint32_t I = 0; I != X.Len; ++I) {
      std::uint64_t V = static_cast<std::uint64_t>(X.Limbs[I]) << BitShift;
      L[I + LimbShift] |= static_cast<std::uint32_t>(V);
      L[I + LimbShift + 1] |= static_cast<std::uint32_t>(V >> 32);
    }
    return trim(L, Len);
  }

  /// X / 2.
  Nat half(Nat X) {
    if (X.Len == 0)
      return Nat{};
    std::uint32_t *L = allocLimbs(X.Len);
    for (std::uint32_t I = 0; I != X.Len; ++I) {
      L[I] = X.Limbs[I] >> 1;
      if (I + 1 < X.Len)
        L[I] |= X.Limbs[I + 1] << 31;
    }
    return trim(L, X.Len);
  }

  /// Decimal rendering; uses the normal C++ heap (diagnostics only).
  std::string toDecimal(Nat X) {
    if (X.Len == 0)
      return "0";
    std::string Digits;
    Nat Cur = copy(X);
    Nat Ten = fromU64(10);
    while (!Cur.isZero()) {
      DivMod DM = divMod(Cur, Ten);
      Digits.push_back(static_cast<char>(
          '0' + (DM.Rem.Len ? DM.Rem.Limbs[0] : 0)));
      Cur = DM.Quot;
    }
    return std::string(Digits.rbegin(), Digits.rend());
  }

private:
  std::uint32_t *allocLimbs(std::uint32_t N) {
    return static_cast<std::uint32_t *>(A.alloc(N * 4));
  }

  Nat trim(std::uint32_t *L, std::uint32_t Len) {
    while (Len && L[Len - 1] == 0)
      --Len;
    return Nat{L, Len};
  }

  static int rawCompare(const std::uint32_t *X, std::uint32_t XLen,
                        const std::uint32_t *Y, std::uint32_t YLen) {
    while (XLen && X[XLen - 1] == 0)
      --XLen;
    while (YLen && Y[YLen - 1] == 0)
      --YLen;
    if (XLen != YLen)
      return XLen < YLen ? -1 : 1;
    for (std::uint32_t I = XLen; I-- > 0;)
      if (X[I] != Y[I])
        return X[I] < Y[I] ? -1 : 1;
    return 0;
  }

  static void rawSubInPlace(std::uint32_t *X, std::uint32_t XLen,
                            const std::uint32_t *Y, std::uint32_t YLen) {
    std::int64_t Borrow = 0;
    for (std::uint32_t I = 0; I != XLen; ++I) {
      std::int64_t D = static_cast<std::int64_t>(X[I]) - Borrow -
                       (I < YLen ? Y[I] : 0);
      Borrow = D < 0;
      X[I] = static_cast<std::uint32_t>(D + (Borrow << 32));
    }
    assert(Borrow == 0 && "rawSubInPlace underflow");
  }

  Arena &A;
};

} // namespace regions

#endif // BIGNUM_NAT_H
