//===- examples/compiler_pipeline.cpp - Regions in a compiler ------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// The paper's flagship use case: a byte-code compiler whose memory is
// organized exactly as its mudlle benchmark describes — "one region
// holds the abstract syntax tree of the file being compiled and one
// region is created to hold the data structures needed to compile each
// function". This example compiles and runs a small program, printing
// the region lifecycle as it goes.
//
//===----------------------------------------------------------------------===//

#include "backend/Models.h"
#include "mudlle/Compiler.h"
#include "mudlle/Parser.h"
#include "mudlle/Vm.h"

#include <cstdio>

using namespace regions;
using namespace regions::mud;

namespace {

const char *kProgram = R"(
// Greatest common divisor, iteratively.
fn gcd(a, b) {
  while (b != 0) {
    var t = b;
    b = a % b;
    a = t;
  }
  return a;
}

// Sum of gcd(i, 36) for i in [1, 60].
fn main() {
  var total = 0;
  var i = 1;
  while (i <= 60) {
    total = total + gcd(i, 36);
    i = i + 1;
  }
  return total;
}
)";

} // namespace

int main() {
  std::printf("mud compiler pipeline with explicit regions\n\n");
  RegionManager Mgr; // safe regions
  RegionModel Mem(Mgr);

  rt::Frame Frame;
  RegionModel::Token AstScope = Mem.makeRegion();
  RegionModel::Token CodeScope = Mem.makeRegion();

  std::printf("[1] parse: AST into its own region\n");
  Parser<RegionModel> P(Mem, AstScope, kProgram);
  SourceFile<RegionModel> *File = P.parseFile();
  if (P.failed()) {
    std::printf("parse error at line %u: %s\n", P.errorLine(),
                P.errorMessage());
    return 1;
  }
  std::printf("    %u functions, %u AST nodes, %zu bytes in the AST "
              "region\n",
              File->NumFunctions, File->NumNodes,
              AstScope->requestedBytes());

  std::printf("[2] compile: per-function scratch regions, code into the "
              "output region\n");
  Compiler<RegionModel> C(Mem, CodeScope);
  CompiledProgram<RegionModel> *Prog = C.compile(File);
  if (!Prog) {
    std::printf("compile error at line %u: %s\n", C.errorLine(),
                C.errorMessage());
    return 1;
  }
  std::printf("    %u functions, %u code words, %u constants folded\n",
              Prog->NumFunctions, Prog->TotalCodeWords,
              Prog->PeepholeRewrites);
  std::printf("    regions created so far: %llu (AST + code + file table "
              "+ one per function)\n",
              static_cast<unsigned long long>(Mgr.stats().TotalRegions));
  std::printf("    regions still live:     %zu (scratch regions already "
              "deleted)\n",
              Mgr.liveRegionCount());

  std::printf("[3] the AST region can go as soon as code is final\n");
  bool AstFreed = Mem.dropRegion(AstScope);
  std::printf("    deleteregion(ast): %s\n", AstFreed ? "ok" : "REFUSED");

  std::printf("[4] run the byte code\n");
  Vm<RegionModel> Machine(*Prog);
  VmResult R = Machine.runMain();
  if (!R.Ok) {
    std::printf("vm error: %s\n", R.Error);
    return 1;
  }
  std::printf("    main() = %lld in %llu vm steps\n",
              static_cast<long long>(R.Value),
              static_cast<unsigned long long>(R.Steps));

  std::printf("[5] drop the code region\n");
  bool CodeFreed = Mem.dropRegion(CodeScope);
  std::printf("    deleteregion(code): %s\n", CodeFreed ? "ok" : "REFUSED");
  std::printf("\nlive regions at exit: %zu; peak OS memory: %zu KB\n",
              Mgr.liveRegionCount(), Mgr.osBytes() / 1024);
  return R.Value == 266 && Mgr.liveRegionCount() == 0 ? 0 : 1;
}
