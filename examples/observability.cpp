//===- examples/observability.cpp - Watching regions with rstat ----------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Demonstrates the rstat observability layer on a small compiler-like
// workload:
//  * metrics snapshots (rgn::RegionManager::metrics()) — the paper's
//    Table 2/3 counters plus size-class and lifetime histograms,
//    printable as tables or JSON;
//  * runtime-armed event tracing — newregion/deleteregion, page-run
//    traffic, pending-count flushes — exported as Chrome trace JSON
//    (open rstat_example_trace.json in Perfetto or chrome://tracing);
//  * heap introspection (dumpHeap) — live regions, their page runs and
//    bump state, for debugging a refused deleteregion.
//
//===----------------------------------------------------------------------===//

#include "region/Metrics.h"
#include "region/Regions.h"
#include "support/Trace.h"

#include <cstdio>

using namespace regions;

namespace {

/// A phase-structured workload: per-"function" scratch regions die
/// young, the "AST" region lives through the run (lcc's shape in §5).
void compileLike(RegionManager &Mgr) {
  rt::Frame Frame;
  rt::RegionHandle Ast = Mgr.newRegion();
  for (int Fn = 0; Fn != 24; ++Fn) {
    rt::Frame Inner;
    rt::RegionHandle Scratch = Mgr.newRegion();
    for (int I = 0; I != 400; ++I)
      rnewArray<int>(Scratch, 16);
    rnewArray<int>(Ast, 256); // something survives into the AST
    deleteRegion(Scratch);
  }
  deleteRegion(Ast);
}

} // namespace

int main() {
  std::printf("== rstat: metrics, tracing, heap introspection ==\n\n");

  // Arm tracing before the work; this thread attaches immediately,
  // any worker threads would attach lazily.
  rstat::armTracing();

  RegionManager Mgr;
  compileLike(Mgr);

  // 1. Metrics snapshot: exactly stats(), plus the PageSource view and
  //    the region histograms.
  rgn::MetricsSnapshot M = Mgr.metrics();
  printMetrics(M);

  // 2. Chrome trace: one instant event per region lifecycle action.
  long N = rstat::writeChromeTrace("rstat_example_trace.json");
  std::printf("\nwrote %ld trace event(s) to rstat_example_trace.json\n", N);
  rstat::disarmTracing();

  // 3. Heap introspection: leave a region live (with a reference held)
  //    and dump what deleteregion would be up against.
  rt::Frame Frame;
  rt::RegionHandle Leaky = Mgr.newRegion();
  rnewArray<char>(Leaky, 10000);
  std::printf("\nheap after leaving a region live:\n");
  Mgr.dumpHeap();
  deleteRegion(Leaky);
  return 0;
}
