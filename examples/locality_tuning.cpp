//===- examples/locality_tuning.cpp - Regions as a locality tool ---------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Reproduces the paper's §5.5 observation on moss: "The 24% improvement
// in execution time ... is obtained by using two regions: one for the
// small objects and one for the large objects." Neither malloc/free nor
// GC gives the programmer any way to express this; regions do.
//
// Runs the moss workload both ways and reports wall time and simulated
// cache stalls.
//
//===----------------------------------------------------------------------===//

#include "support/Stopwatch.h"
#include "workloads/Moss.h"

#include <cstdio>

using namespace regions;
using namespace regions::workloads;

namespace {

struct Outcome {
  double Millis;
  CacheSim::Stats Cache;
  std::uint64_t Checksum;
};

Outcome run(bool Split) {
  RegionManager Mgr;
  CacheSim Cache;
  RegionModel Mem(Mgr, &Cache);
  MossOptions Opt;
  Opt.NumDocs = 60;
  Opt.SplitRegions = Split;

  Stopwatch Timer;
  Timer.start();
  MossResult R = runMoss(Mem, Opt);
  Timer.stop();
  return {Timer.millis(), Cache.stats(), R.checksum()};
}

} // namespace

int main() {
  std::printf("Tuning data locality with regions (paper 5.5, moss)\n\n");
  std::printf("moss alternately allocates small hot objects (fingerprint\n"
              "postings) and larger cold ones (document text). Putting\n"
              "them in one region interleaves them in memory; two regions\n"
              "pack the hot objects densely.\n\n");

  Outcome Slow = run(/*Split=*/false);
  Outcome Fast = run(/*Split=*/true);

  std::printf("%-22s %12s %12s\n", "", "one region", "two regions");
  std::printf("%-22s %10.1fms %10.1fms\n", "wall time", Slow.Millis,
              Fast.Millis);
  std::printf("%-22s %12llu %12llu\n", "simulated L1 misses",
              static_cast<unsigned long long>(Slow.Cache.L1Misses),
              static_cast<unsigned long long>(Fast.Cache.L1Misses));
  std::printf("%-22s %12llu %12llu\n", "simulated L2 misses",
              static_cast<unsigned long long>(Slow.Cache.L2Misses),
              static_cast<unsigned long long>(Fast.Cache.L2Misses));
  std::printf("%-22s %12llu %12llu\n", "simulated stall cycles",
              static_cast<unsigned long long>(
                  Slow.Cache.totalStallCycles()),
              static_cast<unsigned long long>(
                  Fast.Cache.totalStallCycles()));

  double Gain = (1.0 - Fast.Millis / Slow.Millis) * 100.0;
  std::printf("\nresults identical: %s; time improvement: %.1f%%\n",
              Slow.Checksum == Fast.Checksum ? "yes" : "NO (bug!)", Gain);
  return Slow.Checksum == Fast.Checksum ? 0 : 1;
}
