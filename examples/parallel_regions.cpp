//===- examples/parallel_regions.cpp - Regions across threads ------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Demonstrates the paper's §1 parallel extension: threads allocate in
// private regions without synchronization, publish references through
// atomic-exchange writes, and keep per-thread local reference counts.
// A shared region is deletable exactly when the counts sum to zero.
//
// The scenario: a producer/consumer pipeline. Producers build result
// records in their own regions and publish them to a shared mailbox
// array; the consumer drains mailboxes and retires each producer's
// region once its results are consumed.
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "region/Regions.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

using namespace regions;
using namespace regions::par;

namespace {

struct Result {
  int Producer = 0;
  int Sequence = 0;
  long Payload = 0;
};

constexpr int kProducers = 3;
constexpr int kResultsPerProducer = 5;

} // namespace

int main() {
  std::printf("Parallel regions (paper 1): local counts + atomic "
              "exchange\n\n");

  ParallelSpace Space;
  std::vector<std::unique_ptr<RegionManager>> Managers;
  for (int P = 0; P != kProducers; ++P)
    Managers.push_back(std::make_unique<RegionManager>(
        SafetyConfig::unsafeConfig(), std::size_t{64} << 20));

  std::atomic<Result *> Mailbox[kProducers * kResultsPerProducer] = {};
  SharedRegion *Shared[kProducers] = {};
  std::atomic<int> Published{0};

  std::vector<std::thread> Producers;
  for (int P = 0; P != kProducers; ++P) {
    Producers.emplace_back([&, P] {
      unsigned Tid = Space.registerThread();
      RegionManager &Mgr = *Managers[static_cast<std::size_t>(P)];
      // Private region: allocation needs no locks at all.
      Region *R = Mgr.newRegion();
      SharedRegion *S = Space.share(R);
      Shared[P] = S;
      for (int I = 0; I != kResultsPerProducer; ++I) {
        auto *Rec = rnew<Result>(R);
        Rec->Producer = P;
        Rec->Sequence = I;
        Rec->Payload = static_cast<long>(P) * 1000 + I * I;
        // Publish with an atomic exchange; the local count adjustment
        // needs no synchronization (paper's key point).
        Space.sharedExchange(Mailbox[P * kResultsPerProducer + I], Rec, S,
                             S, Tid);
        ++Published;
      }
    });
  }
  for (auto &T : Producers)
    T.join();

  std::printf("producers published %d results into shared mailboxes\n",
              Published.load());
  for (int P = 0; P != kProducers; ++P)
    std::printf("  producer %d shared-region count: %lld\n", P,
                static_cast<long long>(Shared[P]->totalCount()));

  // Consumer: drain the mailboxes, then retire each producer's region.
  unsigned ConsumerTid = Space.registerThread();
  long Checksum = 0;
  for (int P = 0; P != kProducers; ++P) {
    std::printf("consumer draining producer %d: deletable now? %s\n", P,
                Space.tryDelete(Shared[P]) ? "yes (bug!)" : "no");
    for (int I = 0; I != kResultsPerProducer; ++I) {
      Result *Rec = Space.sharedExchange<Result>(
          Mailbox[P * kResultsPerProducer + I], nullptr, nullptr,
          Shared[P], ConsumerTid);
      Checksum += Rec->Payload;
    }
    // The consumer's local count went negative by kResultsPerProducer;
    // the producer's is positive by the same amount: the sum is zero.
    bool Deleted = Space.tryDelete(Shared[P]);
    std::printf("  after draining: sum=%lld, delete: %s\n",
                static_cast<long long>(
                    Deleted ? 0 : Shared[P]->totalCount()),
                Deleted ? "ok" : "REFUSED (bug!)");
  }

  std::printf("\nchecksum of consumed payloads: %ld\n", Checksum);
  std::printf("live shared regions at exit: %zu\n",
              Space.liveSharedRegions());
  return Space.liveSharedRegions() == 0 ? 0 : 1;
}
