//===- examples/parallel_regions.cpp - Regions across threads ------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Demonstrates the paper's §1 parallel extension: threads allocate in
// private regions without synchronization, publish references through
// atomic-exchange writes, and keep per-thread local reference counts.
// A shared region is deletable exactly when the counts sum to zero.
//
// The scenario: a producer/consumer pipeline. Producers build result
// records in their own regions, publish them to a shared mailbox
// array, and quiesce their managers into the space when done; the
// consumer — which never touched those managers — drains mailboxes
// with resolving exchanges (each displaced pointer finds its own
// region's count through the page map) and retires each producer's
// region itself via the cross-thread deletion hand-off.
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "region/Regions.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

using namespace regions;
using namespace regions::par;

namespace {

struct Result {
  int Producer = 0;
  int Sequence = 0;
  long Payload = 0;
};

constexpr int kProducers = 3;
constexpr int kResultsPerProducer = 5;

} // namespace

int main() {
  std::printf("Parallel regions (paper 1): local counts + atomic "
              "exchange\n\n");

  ParallelSpace Space;
  std::vector<std::unique_ptr<RegionManager>> Managers;
  for (int P = 0; P != kProducers; ++P)
    Managers.push_back(std::make_unique<RegionManager>(
        SafetyConfig::unsafeConfig(), std::size_t{64} << 20));

  std::atomic<Result *> Mailbox[kProducers * kResultsPerProducer] = {};
  SharedRegion *Shared[kProducers] = {};
  std::atomic<int> Published{0};

  std::vector<std::thread> Producers;
  for (int P = 0; P != kProducers; ++P) {
    Producers.emplace_back([&, P] {
      unsigned Tid = Space.registerThread();
      RegionManager &Mgr = *Managers[static_cast<std::size_t>(P)];
      // Private region: allocation needs no locks at all.
      Region *R = Mgr.newRegion();
      SharedRegion *S = Space.share(R);
      Shared[P] = S;
      for (int I = 0; I != kResultsPerProducer; ++I) {
        auto *Rec = rnew<Result>(R);
        Rec->Producer = P;
        Rec->Sequence = I;
        Rec->Payload = static_cast<long>(P) * 1000 + I * I;
        // Publish with an atomic exchange; the local count adjustment
        // needs no synchronization (paper's key point). The producer
        // names only the region of the value it installs — whatever a
        // racing writer left in the mailbox resolves itself.
        Space.sharedExchange(Mailbox[P * kResultsPerProducer + I], Rec, S,
                             Tid);
        ++Published;
      }
      // Done for good with this manager: hand deletion rights to the
      // space, so ANY thread's tryDelete may retire R once the counts
      // drain — the consumer need not hand the record back.
      Space.quiesce(Mgr);
    });
  }
  for (auto &T : Producers)
    T.join();

  std::printf("producers published %d results into shared mailboxes\n",
              Published.load());
  for (int P = 0; P != kProducers; ++P)
    std::printf("  producer %d shared-region count: %lld\n", P,
                static_cast<long long>(Shared[P]->totalCount()));

  std::printf("all producer managers quiesced into the space: %s\n",
              [&] {
                for (int P = 0; P != kProducers; ++P)
                  if (!Space.managerQuiesced(*Managers[P]))
                    return "no (bug!)";
                return "yes";
              }());

  // Consumer: drain the mailboxes, then retire each producer's region
  // itself — legitimate because the owners quiesced their managers.
  unsigned ConsumerTid = Space.registerThread();
  long Checksum = 0;
  for (int P = 0; P != kProducers; ++P) {
    std::printf("consumer draining producer %d: deletable now? %s\n", P,
                Space.tryDelete(Shared[P]) ? "yes (bug!)" : "no");
    for (int I = 0; I != kResultsPerProducer; ++I) {
      // Resolving exchange: the drained record is mapped back to its
      // producer's region by the page map + share()'s binding, not by
      // anything the consumer claims to know about the mailbox.
      Result *Rec = Space.sharedExchange<Result>(
          Mailbox[P * kResultsPerProducer + I], nullptr, nullptr,
          ConsumerTid);
      Checksum += Rec->Payload;
    }
    // The consumer's local count went negative by kResultsPerProducer;
    // the producer's is positive by the same amount: the sum is zero.
    bool Deleted = Space.tryDelete(Shared[P]);
    std::printf("  after draining: sum=%lld, delete: %s\n",
                static_cast<long long>(
                    Deleted ? 0 : Shared[P]->totalCount()),
                Deleted ? "ok (cross-thread hand-off)" : "REFUSED (bug!)");
  }

  std::printf("\nchecksum of consumed payloads: %ld\n", Checksum);
  std::printf("live shared regions at exit: %zu\n",
              Space.liveSharedRegions());
  return Space.liveSharedRegions() == 0 ? 0 : 1;
}
