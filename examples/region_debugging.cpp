//===- examples/region_debugging.cpp - Hunting stale pointers ------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// The paper's porting experience (§5.1): "The other difficulty is
// finding stale pointers that prevent a region from being deleted; an
// environment for debugging regions would be helpful here." This
// example is that environment in action: a refused deletion is
// diagnosed down to the exact stale local, plus the manager report and
// the mud disassembler for compiler debugging.
//
//===----------------------------------------------------------------------===//

#include "backend/Models.h"
#include "mudlle/Compiler.h"
#include "mudlle/Disasm.h"
#include "mudlle/Parser.h"
#include "region/Regions.h"

#include <cstdio>

using namespace regions;

namespace {

struct Session {
  int Id = 0;
  RegionPtr<Session> Parent;
};

void huntStalePointer(RegionManager &Mgr) {
  std::printf("-- diagnosing a refused deleteregion --\n");
  rt::Frame Frame;
  rt::RegionHandle R = Mgr.newRegion();
  rt::Ref<Session> Current = rnew<Session>(R);
  Current->Id = 7;
  rt::Ref<Session> Sneaky = Current.get(); // ...the future stale pointer

  Current = nullptr; // we think we cleaned up...
  if (!deleteRegion(R)) {
    std::printf("deleteregion refused; asking the debugger why:\n");
    DeletionDiagnosis D = diagnoseDeletion(R.get(), R.slotAddress());
    printDiagnosis(D, R.get(), stdout);
    std::printf("-> the slot at %p is our forgotten 'Sneaky' local "
                "(%p)\n",
                static_cast<void *>(Sneaky.slotAddress()),
                static_cast<void *>(Sneaky.get()));
    Sneaky = nullptr;
    std::printf("cleared it; deleteregion now: %s\n\n",
                deleteRegion(R) ? "ok" : "STILL refused");
  }
}

void inspectCompilerOutput() {
  std::printf("-- disassembling compiled mud code --\n");
  RegionManager Mgr;
  RegionModel Mem(Mgr);
  rt::Frame Frame;
  RegionModel::Token Ast = Mem.makeRegion();
  RegionModel::Token Code = Mem.makeRegion();
  mud::Parser<RegionModel> P(
      Mem, Ast, "fn abs(x) { if (x < 0) { return -x; } return x; }");
  auto *File = P.parseFile();
  mud::Compiler<RegionModel> C(Mem, Code);
  auto *Prog = C.compile(File);
  if (Prog)
    std::printf("%s", mud::disassemble(*Prog).c_str());
  Mem.dropRegion(Ast);
  Mem.dropRegion(Code);
}

} // namespace

int main() {
  std::printf("Region debugging tools (paper 5.1's wished-for "
              "environment)\n\n");
  RegionManager Mgr;
  huntStalePointer(Mgr);
  inspectCompilerOutput();

  std::printf("\n-- manager report --\n");
  printManagerReport(Mgr);
  return Mgr.liveRegionCount() == 0 ? 0 : 1;
}
