//===- examples/safe_regions.cpp - What safety buys you ------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Walks through the paper's safety rule: deleteregion(&r) succeeds only
// when there are no external references to objects in r (excepting the
// handle itself) — references in other regions, global storage, or
// live stack variables all block deletion, while sameregion cycles
// never do.
//
//===----------------------------------------------------------------------===//

#include "region/Regions.h"

#include <cstdio>

using namespace regions;

namespace {

struct Node {
  explicit Node(int V = 0) : Value(V) {}
  int Value;
  RegionPtr<Node> Next;
};

RegionPtr<Node> GlobalHook; // global storage: counted exactly

void show(const char *What, bool Deleted) {
  std::printf("  %-52s %s\n", What, Deleted ? "deleted" : "REFUSED");
}

} // namespace

int main() {
  std::printf("Safe region deletion (paper 3, 4.2)\n\n");
  RegionManager Mgr;
  rt::Frame Frame;

  std::printf("[stack references are found by the stack scan]\n");
  {
    rt::RegionHandle R = Mgr.newRegion();
    rt::Ref<Node> Keep = rnew<Node>(R, 1);
    show("delete with a live local pointing in", deleteRegion(R));
    Keep = nullptr;
    show("delete after clearing the local", deleteRegion(R));
  }

  std::printf("\n[global storage is counted by the write barrier]\n");
  {
    rt::RegionHandle R = Mgr.newRegion();
    GlobalHook = rnew<Node>(R, 2);
    std::printf("  region reference count: %lld\n", R->referenceCount());
    show("delete with a global pointing in", deleteRegion(R));
    GlobalHook = nullptr;
    show("delete after clearing the global", deleteRegion(R));
  }

  std::printf("\n[cross-region pointers are counted; sameregion ones are "
              "free]\n");
  {
    rt::RegionHandle A = Mgr.newRegion();
    rt::RegionHandle B = Mgr.newRegion();
    Node *InA = rnew<Node>(A, 3);
    Node *InB = rnew<Node>(B, 4);
    InA->Next = InB; // A -> B, counted on B
    InB->Next = InA; // B -> A, counted on A: a cross-region cycle
    show("delete A while B points in", deleteRegion(A));
    show("delete B while A points in", deleteRegion(B));
    InA->Next = nullptr; // break the cycle
    show("delete B after breaking A->B", deleteRegion(B));
    // B's cleanup released B->A automatically.
    show("delete A (B's cleanup dropped its reference)", deleteRegion(A));
  }

  std::printf("\n[cycles inside one region cost nothing]\n");
  {
    rt::RegionHandle R = Mgr.newRegion();
    Node *X = rnew<Node>(R, 5);
    Node *Y = rnew<Node>(R, 6);
    X->Next = Y;
    Y->Next = X;
    std::printf("  reference count with an internal cycle: %lld\n",
                R->referenceCount());
    show("delete a region containing a cycle", deleteRegion(R));
  }

  std::printf("\n[finalization: cleanups run exactly once at deletion]\n");
  {
    struct Noisy {
      ~Noisy() { std::printf("  ~Noisy(%d) ran\n", Id); }
      int Id = 0;
    };
    rt::RegionHandle R = Mgr.newRegion();
    rnew<Noisy>(R)->Id = 1;
    rnew<Noisy>(R)->Id = 2;
    std::printf("  deleting region with two finalizable objects:\n");
    deleteRegion(R);
  }

  std::printf("\nstatistics: %llu regions created, %llu delete attempts, "
              "%llu refused\n",
              static_cast<unsigned long long>(Mgr.stats().TotalRegions),
              static_cast<unsigned long long>(Mgr.stats().DeleteAttempts),
              static_cast<unsigned long long>(Mgr.stats().DeleteFailures));
  std::printf("live regions at exit: %zu\n", Mgr.liveRegionCount());
  return Mgr.liveRegionCount() == 0 ? 0 : 1;
}
