//===- examples/quickstart.cpp - First steps with explicit regions -------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Reproduces the paper's two introductory examples:
//  * Figure 1: a loop allocating arrays in a region, reclaimed with one
//    deleteregion call;
//  * Figure 3: copying a list into a temporary region, using it, and
//    deleting the region — safely.
//
//===----------------------------------------------------------------------===//

#include "region/Regions.h"

#include <cstdio>

using namespace regions;

namespace {

/// Paper Figure 1: per-iteration arrays, one bulk free.
void figure1(RegionManager &Mgr) {
  std::printf("-- Figure 1: arrays in a region --\n");
  rt::Frame Frame;
  rt::RegionHandle R = Mgr.newRegion();
  long Sum = 0;
  for (int I = 0; I < 10; ++I) {
    // int *x = ralloc(r, (i + 1) * sizeof(int));
    int *X = rnewArray<int>(R, static_cast<std::size_t>(I) + 1);
    for (int J = 0; J <= I; ++J)
      X[J] = I * J; // work(i, x)
    Sum += X[I];
  }
  std::printf("allocated %zu objects, %zu bytes; work checksum %ld\n",
              R->allocCount(), R->requestedBytes(), Sum);
  bool Freed = deleteRegion(R); // deleteregion(&r): frees all arrays
  std::printf("deleteregion succeeded: %s\n\n", Freed ? "yes" : "no");
}

/// The list type of paper Figure 3. The Next field is a region pointer
/// (C@'s `struct list @next`); its writes maintain reference counts.
struct List {
  explicit List(int I) : Value(I) {}
  int Value;
  RegionPtr<List> Next;
};

/// copy_list(r, l) from Figure 3 (cons-style recursion).
List *copyList(Region *R, List *L) {
  if (!L)
    return nullptr;
  List *Copy = rnew<List>(R, L->Value);
  Copy->Next = copyList(R, L->Next);
  return Copy;
}

void figure3(RegionManager &Mgr) {
  std::printf("-- Figure 3: list copy into a temporary region --\n");
  rt::Frame Frame;
  rt::RegionHandle Perm = Mgr.newRegion();

  // Build 1 -> 2 -> ... -> 5 in the permanent region.
  rt::Ref<List> Head;
  for (int I = 5; I >= 1; --I) {
    List *N = rnew<List>(Perm, I);
    N->Next = Head.get();
    Head = N;
  }

  {
    rt::Frame Inner;
    rt::RegionHandle Tmp = Mgr.newRegion(); // Region tmp = newregion();
    rt::Ref<List> Copy = copyList(Tmp, Head);

    std::printf("copy:");
    for (List *N = Copy; N; N = N->Next)
      std::printf(" %d", N->Value);
    std::printf("\n");

    // While Copy is live, the region cannot be deleted (safety!).
    rt::RegionHandle Alias = Tmp.get();
    std::printf("delete while list is referenced: %s (refused)\n",
                deleteRegion(Alias) ? "yes" : "no");

    // Every stale pointer blocks deletion — including the alias handle
    // itself (the paper notes hunting such stale pointers is the main
    // debugging chore when adopting regions).
    Copy = nullptr;
    Alias = nullptr;
    std::printf("delete after clearing the stale pointers: %s\n",
                deleteRegion(Tmp) ? "yes" : "no");
  }

  // The original list is untouched.
  std::printf("original:");
  for (List *N = Head; N; N = N->Next)
    std::printf(" %d", N->Value);
  std::printf("\n");
  Head = nullptr;
  deleteRegion(Perm);
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Explicit regions quickstart (Gay & Aiken, PLDI 1998)\n\n");
  RegionManager Mgr; // safe regions by default
  figure1(Mgr);
  figure3(Mgr);
  std::printf("live regions at exit: %zu (all reclaimed)\n",
              Mgr.liveRegionCount());
  return Mgr.liveRegionCount() == 0 ? 0 : 1;
}
