//===- examples/region_pool.cpp - rpool region-per-request serving -------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Region-per-request serving with rpool: each simulated request gets a
// private region, allocates its parse scratch into it, and retires the
// whole footprint in one call. Instead of deleteRegion + newRegion per
// request, the worker releases the region into a RegionPool — an
// in-place reset that keeps the region's pages as a re-carve reservoir
// — and the next acquire() hands the same warm region back without any
// PageSource traffic. The pool counters printed at the end show the
// steady state: one miss (the first request), hits for every request
// after it.
//
//===----------------------------------------------------------------------===//

#include "region/Metrics.h"
#include "region/Pool.h"
#include "region/Regions.h"

#include <cstdio>

using namespace regions;

namespace {

/// One simulated request: a handful of header-sized strings plus an
/// 8 KiB body buffer, all region-allocated, nothing freed piecemeal.
void serveRequest(RegionManager &Mgr, Region *R, unsigned Id) {
  char *Line = static_cast<char *>(Mgr.allocRaw(R, 64));
  std::snprintf(Line, 64, "GET /item/%u HTTP/1.1", Id);
  for (int Header = 0; Header != 4; ++Header)
    Mgr.allocRaw(R, 64);
  Mgr.allocRaw(R, 8192); // body I/O bucket
}

} // namespace

int main() {
  std::printf("region-per-request serving with rpool\n\n");
  RegionManager Mgr; // safe regions
  RegionPool Pool{Mgr};

  constexpr unsigned kRequests = 10000;
  std::size_t OsBytesAfterWarmup = 0;
  for (unsigned Id = 0; Id != kRequests; ++Id) {
    Region *R = Pool.acquire();
    serveRequest(Mgr, R, Id);
    if (!Pool.release(R)) {
      // Only possible with live external references into R — a bug in
      // a request handler; fall back to keeping the region alive.
      std::fprintf(stderr, "request %u leaked references\n", Id);
      return 1;
    }
    if (Id == 0)
      OsBytesAfterWarmup = Mgr.osBytes();
  }

  RegionStats S = Mgr.stats();
  PoolStats P = Mgr.poolStats();
  std::printf("requests served      %u\n", kRequests);
  std::printf("pool hits / misses   %llu / %llu\n",
              static_cast<unsigned long long>(P.Hits),
              static_cast<unsigned long long>(P.Misses));
  std::printf("in-place resets      %llu\n",
              static_cast<unsigned long long>(S.ResetRegions));
  std::printf("os bytes, warm vs end  %zu vs %zu (%s)\n",
              OsBytesAfterWarmup, Mgr.osBytes(),
              Mgr.osBytes() == OsBytesAfterWarmup ? "flat" : "grew");
  return 0;
}
