# Empty dependencies file for safe_regions.
# This may be replaced when dependencies are built.
