file(REMOVE_RECURSE
  "CMakeFiles/safe_regions.dir/safe_regions.cpp.o"
  "CMakeFiles/safe_regions.dir/safe_regions.cpp.o.d"
  "safe_regions"
  "safe_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
