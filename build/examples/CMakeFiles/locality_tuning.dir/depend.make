# Empty dependencies file for locality_tuning.
# This may be replaced when dependencies are built.
