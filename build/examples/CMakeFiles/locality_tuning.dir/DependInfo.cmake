
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/locality_tuning.cpp" "examples/CMakeFiles/locality_tuning.dir/locality_tuning.cpp.o" "gcc" "examples/CMakeFiles/locality_tuning.dir/locality_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/regions_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/regions_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/regions_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/regions_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/regions_region.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/regions_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
