file(REMOVE_RECURSE
  "CMakeFiles/locality_tuning.dir/locality_tuning.cpp.o"
  "CMakeFiles/locality_tuning.dir/locality_tuning.cpp.o.d"
  "locality_tuning"
  "locality_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
