# Empty dependencies file for parallel_regions.
# This may be replaced when dependencies are built.
