file(REMOVE_RECURSE
  "CMakeFiles/parallel_regions.dir/parallel_regions.cpp.o"
  "CMakeFiles/parallel_regions.dir/parallel_regions.cpp.o.d"
  "parallel_regions"
  "parallel_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
