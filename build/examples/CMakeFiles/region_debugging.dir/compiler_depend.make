# Empty compiler generated dependencies file for region_debugging.
# This may be replaced when dependencies are built.
