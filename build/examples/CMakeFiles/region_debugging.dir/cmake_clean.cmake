file(REMOVE_RECURSE
  "CMakeFiles/region_debugging.dir/region_debugging.cpp.o"
  "CMakeFiles/region_debugging.dir/region_debugging.cpp.o.d"
  "region_debugging"
  "region_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
