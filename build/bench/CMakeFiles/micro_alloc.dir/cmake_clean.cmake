file(REMOVE_RECURSE
  "CMakeFiles/micro_alloc.dir/micro_alloc.cpp.o"
  "CMakeFiles/micro_alloc.dir/micro_alloc.cpp.o.d"
  "micro_alloc"
  "micro_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
