# Empty compiler generated dependencies file for fig11_safety_cost.
# This may be replaced when dependencies are built.
