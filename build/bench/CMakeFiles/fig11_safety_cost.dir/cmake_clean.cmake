file(REMOVE_RECURSE
  "CMakeFiles/fig11_safety_cost.dir/fig11_safety_cost.cpp.o"
  "CMakeFiles/fig11_safety_cost.dir/fig11_safety_cost.cpp.o.d"
  "fig11_safety_cost"
  "fig11_safety_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_safety_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
