# Empty dependencies file for table3_malloc_stats.
# This may be replaced when dependencies are built.
