file(REMOVE_RECURSE
  "CMakeFiles/table3_malloc_stats.dir/table3_malloc_stats.cpp.o"
  "CMakeFiles/table3_malloc_stats.dir/table3_malloc_stats.cpp.o.d"
  "table3_malloc_stats"
  "table3_malloc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_malloc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
