file(REMOVE_RECURSE
  "CMakeFiles/fig10_stalls.dir/fig10_stalls.cpp.o"
  "CMakeFiles/fig10_stalls.dir/fig10_stalls.cpp.o.d"
  "fig10_stalls"
  "fig10_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
