# Empty dependencies file for fig10_stalls.
# This may be replaced when dependencies are built.
