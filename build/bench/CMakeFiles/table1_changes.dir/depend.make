# Empty dependencies file for table1_changes.
# This may be replaced when dependencies are built.
