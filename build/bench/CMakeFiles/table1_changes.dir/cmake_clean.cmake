file(REMOVE_RECURSE
  "CMakeFiles/table1_changes.dir/table1_changes.cpp.o"
  "CMakeFiles/table1_changes.dir/table1_changes.cpp.o.d"
  "table1_changes"
  "table1_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
