file(REMOVE_RECURSE
  "CMakeFiles/ablation_region.dir/ablation_region.cpp.o"
  "CMakeFiles/ablation_region.dir/ablation_region.cpp.o.d"
  "ablation_region"
  "ablation_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
