# Empty dependencies file for table2_region_stats.
# This may be replaced when dependencies are built.
