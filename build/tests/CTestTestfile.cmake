# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_stack_test[1]_include.cmake")
include("/root/repo/build/tests/region_safety_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/gc_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/nat_test[1]_include.cmake")
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/mudlle_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/region_property_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_validation_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/debug_tools_test[1]_include.cmake")
include("/root/repo/build/tests/emulation_test[1]_include.cmake")
include("/root/repo/build/tests/mudlle_vm_test[1]_include.cmake")
include("/root/repo/build/tests/gc_stress_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/workload_quality_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
