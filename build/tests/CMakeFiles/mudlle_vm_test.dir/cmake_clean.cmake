file(REMOVE_RECURSE
  "CMakeFiles/mudlle_vm_test.dir/MudlleVmTest.cpp.o"
  "CMakeFiles/mudlle_vm_test.dir/MudlleVmTest.cpp.o.d"
  "mudlle_vm_test"
  "mudlle_vm_test.pdb"
  "mudlle_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudlle_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
