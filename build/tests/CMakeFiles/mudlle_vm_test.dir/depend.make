# Empty dependencies file for mudlle_vm_test.
# This may be replaced when dependencies are built.
