# Empty dependencies file for workload_quality_test.
# This may be replaced when dependencies are built.
