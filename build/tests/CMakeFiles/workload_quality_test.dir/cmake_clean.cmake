file(REMOVE_RECURSE
  "CMakeFiles/workload_quality_test.dir/WorkloadQualityTest.cpp.o"
  "CMakeFiles/workload_quality_test.dir/WorkloadQualityTest.cpp.o.d"
  "workload_quality_test"
  "workload_quality_test.pdb"
  "workload_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
