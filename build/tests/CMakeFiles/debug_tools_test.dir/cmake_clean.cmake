file(REMOVE_RECURSE
  "CMakeFiles/debug_tools_test.dir/DebugToolsTest.cpp.o"
  "CMakeFiles/debug_tools_test.dir/DebugToolsTest.cpp.o.d"
  "debug_tools_test"
  "debug_tools_test.pdb"
  "debug_tools_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
