# Empty compiler generated dependencies file for debug_tools_test.
# This may be replaced when dependencies are built.
