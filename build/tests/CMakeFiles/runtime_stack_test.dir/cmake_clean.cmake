file(REMOVE_RECURSE
  "CMakeFiles/runtime_stack_test.dir/RuntimeStackTest.cpp.o"
  "CMakeFiles/runtime_stack_test.dir/RuntimeStackTest.cpp.o.d"
  "runtime_stack_test"
  "runtime_stack_test.pdb"
  "runtime_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
