# Empty dependencies file for region_property_test.
# This may be replaced when dependencies are built.
