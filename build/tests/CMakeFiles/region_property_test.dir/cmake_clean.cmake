file(REMOVE_RECURSE
  "CMakeFiles/region_property_test.dir/RegionPropertyTest.cpp.o"
  "CMakeFiles/region_property_test.dir/RegionPropertyTest.cpp.o.d"
  "region_property_test"
  "region_property_test.pdb"
  "region_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
