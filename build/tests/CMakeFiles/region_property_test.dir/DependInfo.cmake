
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/RegionPropertyTest.cpp" "tests/CMakeFiles/region_property_test.dir/RegionPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/region_property_test.dir/RegionPropertyTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/region/CMakeFiles/regions_region.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/regions_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
