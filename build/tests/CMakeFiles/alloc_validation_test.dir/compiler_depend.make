# Empty compiler generated dependencies file for alloc_validation_test.
# This may be replaced when dependencies are built.
