file(REMOVE_RECURSE
  "CMakeFiles/alloc_validation_test.dir/AllocValidationTest.cpp.o"
  "CMakeFiles/alloc_validation_test.dir/AllocValidationTest.cpp.o.d"
  "alloc_validation_test"
  "alloc_validation_test.pdb"
  "alloc_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
