# Empty compiler generated dependencies file for region_safety_test.
# This may be replaced when dependencies are built.
