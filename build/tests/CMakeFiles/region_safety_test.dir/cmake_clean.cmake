file(REMOVE_RECURSE
  "CMakeFiles/region_safety_test.dir/RegionSafetyTest.cpp.o"
  "CMakeFiles/region_safety_test.dir/RegionSafetyTest.cpp.o.d"
  "region_safety_test"
  "region_safety_test.pdb"
  "region_safety_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
