file(REMOVE_RECURSE
  "CMakeFiles/gc_stress_test.dir/GcStressTest.cpp.o"
  "CMakeFiles/gc_stress_test.dir/GcStressTest.cpp.o.d"
  "gc_stress_test"
  "gc_stress_test.pdb"
  "gc_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
