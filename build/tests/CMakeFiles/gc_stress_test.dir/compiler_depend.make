# Empty compiler generated dependencies file for gc_stress_test.
# This may be replaced when dependencies are built.
