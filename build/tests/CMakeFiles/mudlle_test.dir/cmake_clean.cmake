file(REMOVE_RECURSE
  "CMakeFiles/mudlle_test.dir/MudlleTest.cpp.o"
  "CMakeFiles/mudlle_test.dir/MudlleTest.cpp.o.d"
  "mudlle_test"
  "mudlle_test.pdb"
  "mudlle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudlle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
