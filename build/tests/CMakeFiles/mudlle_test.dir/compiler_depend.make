# Empty compiler generated dependencies file for mudlle_test.
# This may be replaced when dependencies are built.
