file(REMOVE_RECURSE
  "CMakeFiles/regions_cachesim.dir/CacheSim.cpp.o"
  "CMakeFiles/regions_cachesim.dir/CacheSim.cpp.o.d"
  "libregions_cachesim.a"
  "libregions_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
