# Empty dependencies file for regions_cachesim.
# This may be replaced when dependencies are built.
