file(REMOVE_RECURSE
  "libregions_cachesim.a"
)
