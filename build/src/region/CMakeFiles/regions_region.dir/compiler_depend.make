# Empty compiler generated dependencies file for regions_region.
# This may be replaced when dependencies are built.
