
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/region/Debug.cpp" "src/region/CMakeFiles/regions_region.dir/Debug.cpp.o" "gcc" "src/region/CMakeFiles/regions_region.dir/Debug.cpp.o.d"
  "/root/repo/src/region/PageMap.cpp" "src/region/CMakeFiles/regions_region.dir/PageMap.cpp.o" "gcc" "src/region/CMakeFiles/regions_region.dir/PageMap.cpp.o.d"
  "/root/repo/src/region/Parallel.cpp" "src/region/CMakeFiles/regions_region.dir/Parallel.cpp.o" "gcc" "src/region/CMakeFiles/regions_region.dir/Parallel.cpp.o.d"
  "/root/repo/src/region/Region.cpp" "src/region/CMakeFiles/regions_region.dir/Region.cpp.o" "gcc" "src/region/CMakeFiles/regions_region.dir/Region.cpp.o.d"
  "/root/repo/src/region/RuntimeStack.cpp" "src/region/CMakeFiles/regions_region.dir/RuntimeStack.cpp.o" "gcc" "src/region/CMakeFiles/regions_region.dir/RuntimeStack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/regions_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
