file(REMOVE_RECURSE
  "CMakeFiles/regions_region.dir/Debug.cpp.o"
  "CMakeFiles/regions_region.dir/Debug.cpp.o.d"
  "CMakeFiles/regions_region.dir/PageMap.cpp.o"
  "CMakeFiles/regions_region.dir/PageMap.cpp.o.d"
  "CMakeFiles/regions_region.dir/Parallel.cpp.o"
  "CMakeFiles/regions_region.dir/Parallel.cpp.o.d"
  "CMakeFiles/regions_region.dir/Region.cpp.o"
  "CMakeFiles/regions_region.dir/Region.cpp.o.d"
  "CMakeFiles/regions_region.dir/RuntimeStack.cpp.o"
  "CMakeFiles/regions_region.dir/RuntimeStack.cpp.o.d"
  "libregions_region.a"
  "libregions_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
