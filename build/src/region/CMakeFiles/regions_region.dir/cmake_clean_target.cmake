file(REMOVE_RECURSE
  "libregions_region.a"
)
