file(REMOVE_RECURSE
  "CMakeFiles/regions_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/regions_workloads.dir/Workloads.cpp.o.d"
  "libregions_workloads.a"
  "libregions_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
