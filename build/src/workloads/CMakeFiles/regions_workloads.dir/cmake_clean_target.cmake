file(REMOVE_RECURSE
  "libregions_workloads.a"
)
