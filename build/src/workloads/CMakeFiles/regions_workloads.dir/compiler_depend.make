# Empty compiler generated dependencies file for regions_workloads.
# This may be replaced when dependencies are built.
