file(REMOVE_RECURSE
  "CMakeFiles/regions_support.dir/PageSource.cpp.o"
  "CMakeFiles/regions_support.dir/PageSource.cpp.o.d"
  "CMakeFiles/regions_support.dir/TableWriter.cpp.o"
  "CMakeFiles/regions_support.dir/TableWriter.cpp.o.d"
  "libregions_support.a"
  "libregions_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
