file(REMOVE_RECURSE
  "libregions_support.a"
)
