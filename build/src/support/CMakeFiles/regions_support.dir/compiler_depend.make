# Empty compiler generated dependencies file for regions_support.
# This may be replaced when dependencies are built.
