file(REMOVE_RECURSE
  "libregions_alloc.a"
)
