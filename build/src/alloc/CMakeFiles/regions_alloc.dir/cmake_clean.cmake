file(REMOVE_RECURSE
  "CMakeFiles/regions_alloc.dir/BestFitAllocator.cpp.o"
  "CMakeFiles/regions_alloc.dir/BestFitAllocator.cpp.o.d"
  "CMakeFiles/regions_alloc.dir/PowerOfTwoAllocator.cpp.o"
  "CMakeFiles/regions_alloc.dir/PowerOfTwoAllocator.cpp.o.d"
  "libregions_alloc.a"
  "libregions_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
