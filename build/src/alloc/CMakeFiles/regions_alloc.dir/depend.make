# Empty dependencies file for regions_alloc.
# This may be replaced when dependencies are built.
