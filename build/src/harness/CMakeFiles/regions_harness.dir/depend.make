# Empty dependencies file for regions_harness.
# This may be replaced when dependencies are built.
