file(REMOVE_RECURSE
  "CMakeFiles/regions_harness.dir/Experiment.cpp.o"
  "CMakeFiles/regions_harness.dir/Experiment.cpp.o.d"
  "libregions_harness.a"
  "libregions_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
