file(REMOVE_RECURSE
  "libregions_harness.a"
)
