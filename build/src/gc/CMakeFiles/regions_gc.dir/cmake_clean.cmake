file(REMOVE_RECURSE
  "CMakeFiles/regions_gc.dir/GcHeap.cpp.o"
  "CMakeFiles/regions_gc.dir/GcHeap.cpp.o.d"
  "libregions_gc.a"
  "libregions_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
