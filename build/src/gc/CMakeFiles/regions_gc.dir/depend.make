# Empty dependencies file for regions_gc.
# This may be replaced when dependencies are built.
