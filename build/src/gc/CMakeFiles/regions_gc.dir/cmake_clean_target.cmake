file(REMOVE_RECURSE
  "libregions_gc.a"
)
