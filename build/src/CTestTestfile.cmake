# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("region")
subdirs("alloc")
subdirs("gc")
subdirs("emulation")
subdirs("cachesim")
subdirs("backend")
subdirs("bignum")
subdirs("poly")
subdirs("mudlle")
subdirs("text")
subdirs("workloads")
subdirs("harness")
