//===- tests/TextTest.cpp - Text substrate tests --------------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "text/TextGen.h"
#include "text/Tokenizer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

using namespace regions;
using namespace regions::text;

namespace {

//===----------------------------------------------------------------------===//
// makeWord / generators
//===----------------------------------------------------------------------===//

TEST(TextGenTest, MakeWordIsDeterministicAndDistinct) {
  EXPECT_EQ(makeWord(0), makeWord(0));
  std::set<std::string> Words;
  for (std::uint64_t I = 0; I != 2000; ++I)
    Words.insert(makeWord(I));
  EXPECT_EQ(Words.size(), 2000u) << "word ids must map to distinct words";
  for (char C : makeWord(123456))
    EXPECT_TRUE(C >= 'a' && C <= 'z');
}

TEST(TextGenTest, TopicalTextHasStructure) {
  TopicalTextOptions Opt;
  Opt.Seed = 42;
  TopicalText T = generateTopicalText(Opt);
  EXPECT_FALSE(T.Text.empty());
  EXPECT_EQ(T.TrueBoundaries.size(), Opt.NumSegments - 1);
  // Boundaries are increasing sentence indices.
  for (std::size_t I = 1; I < T.TrueBoundaries.size(); ++I)
    EXPECT_LT(T.TrueBoundaries[I - 1], T.TrueBoundaries[I]);
  // Deterministic per seed.
  EXPECT_EQ(generateTopicalText(Opt).Text, T.Text);
  Opt.Seed = 43;
  EXPECT_NE(generateTopicalText(Opt).Text, T.Text);
}

TEST(TextGenTest, SubmissionsShareOnlyPoolFragments) {
  SubmissionOptions Opt;
  Opt.Seed = 9;
  Opt.PlagiarismRate = 0.0; // no pool fragments at all
  SubmissionCorpus C = generateSubmissions(4, Opt);
  ASSERT_EQ(C.Documents.size(), 4u);
  for (unsigned Used : C.PoolFragmentsUsed)
    EXPECT_EQ(Used, 0u);
  // With rate 1.0 every fragment comes from the pool.
  Opt.PlagiarismRate = 1.0;
  SubmissionCorpus C2 = generateSubmissions(4, Opt);
  for (unsigned Used : C2.PoolFragmentsUsed)
    EXPECT_EQ(Used, Opt.FragmentsPerDoc);
}

//===----------------------------------------------------------------------===//
// Tokenizer
//===----------------------------------------------------------------------===//

TEST(TokenizerTest, SplitsWordsAndSentences) {
  const char *Text = "hello world. foo bar baz. qux";
  Tokenizer Tok(Text, Text + strlen(Text));
  WordSpan W;
  std::vector<std::string> Words;
  std::vector<bool> Ends;
  while (Tok.next(W)) {
    Words.emplace_back(W.Start, W.Len);
    Ends.push_back(W.EndsSentence);
  }
  ASSERT_EQ(Words.size(), 6u);
  EXPECT_EQ(Words[0], "hello");
  EXPECT_EQ(Words[1], "world");
  EXPECT_EQ(Words[5], "qux");
  EXPECT_FALSE(Ends[0]);
  EXPECT_TRUE(Ends[1]) << "\"world\" ends the first sentence";
  EXPECT_TRUE(Ends[4]);
  EXPECT_FALSE(Ends[5]);
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  const char *Empty = "";
  Tokenizer T1(Empty, Empty);
  WordSpan W;
  EXPECT_FALSE(T1.next(W));
  const char *Punct = " .,.; ";
  Tokenizer T2(Punct, Punct + strlen(Punct));
  EXPECT_FALSE(T2.next(W));
}

TEST(TokenizerTest, HashWordConsistent) {
  EXPECT_EQ(hashWord("abc", 3), hashWord("abc", 3));
  EXPECT_NE(hashWord("abc", 3), hashWord("abd", 3));
  EXPECT_NE(hashWord("abc", 3), hashWord("abc", 2));
}

//===----------------------------------------------------------------------===//
// RollingHash (winnowing substrate)
//===----------------------------------------------------------------------===//

TEST(RollingHashTest, MatchesDirectComputation) {
  const char *Text = "the quick brown fox jumps over the lazy dog";
  std::size_t Len = strlen(Text);
  constexpr unsigned K = 5;
  RollingHash RH(Text, Len, K);
  ASSERT_TRUE(RH.valid());
  for (std::size_t Pos = 0; Pos + K <= Len; ++Pos) {
    // Direct polynomial evaluation of the same k-gram.
    std::uint64_t Direct = 0;
    for (unsigned I = 0; I != K; ++I)
      Direct = Direct * 1099511628211ULL +
               static_cast<unsigned char>(Text[Pos + I]);
    ASSERT_EQ(RH.hash(), Direct) << "position " << Pos;
    ASSERT_EQ(RH.position(), Pos);
    if (Pos + K < Len) {
      ASSERT_TRUE(RH.advance());
    }
  }
  EXPECT_FALSE(RH.advance()) << "no k-gram past the end";
}

TEST(RollingHashTest, IdenticalSubstringsHashEqually) {
  const char *Text = "abcdefgh--abcdefgh";
  RollingHash A(Text, 8, 8);
  RollingHash B(Text + 10, 8, 8);
  ASSERT_TRUE(A.valid());
  ASSERT_TRUE(B.valid());
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(RollingHashTest, TooShortTextIsInvalid) {
  RollingHash RH("ab", 2, 5);
  EXPECT_FALSE(RH.valid());
}

TEST(RollingHashTest, SingleGramText) {
  RollingHash RH("abcde", 5, 5);
  ASSERT_TRUE(RH.valid());
  EXPECT_EQ(RH.position(), 0u);
  EXPECT_FALSE(RH.advance());
}

} // namespace
