//===- tests/ModelsTest.cpp - Memory model and cachesim tests -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// A small list-building program template runs identically on every
// model; the tests verify each model's lifetime semantics and that the
// cache simulator responds to locality the way Figure 10 relies on.
//
//===----------------------------------------------------------------------===//

#include "alloc/BestFitAllocator.h"
#include "alloc/LeaAllocator.h"
#include "backend/Backend.h"
#include "backend/Models.h"
#include "gc/GcHeap.h"

#include <gtest/gtest.h>

using namespace regions;

namespace {

template <class M> struct Cell {
  int Value = 0;
  typename M::template Ptr<Cell<M>> Next;
};

/// Builds an N-cell list in a scope, sums it, and tears the scope down.
template <class M> long buildSumAndDrop(M &Mem, int N) {
  [[maybe_unused]] typename M::Frame F;
  typename M::Token Scope = Mem.makeRegion();
  typename M::template Local<Cell<M>> Head = nullptr;
  for (int I = 0; I < N; ++I) {
    Cell<M> *C = Mem.template create<Cell<M>>(Scope);
    C->Value = I;
    C->Next = Head;
    Head = C;
  }
  long Sum = 0;
  for (Cell<M> *C = Head; C; C = C->Next)
    Sum += C->Value;
  // Individual-free discipline for malloc-style models.
  Cell<M> *C = Head;
  Head = nullptr;
  while (C) {
    Cell<M> *Next = C->Next;
    Mem.dispose(C);
    C = Next;
  }
  EXPECT_TRUE(Mem.dropRegion(Scope));
  return Sum;
}

TEST(ModelsTest, RegionModelRunsProgram) {
  RegionManager Mgr;
  RegionModel M(Mgr);
  EXPECT_EQ(buildSumAndDrop(M, 1000), 499500);
  EXPECT_EQ(Mgr.liveRegionCount(), 0u);
  EXPECT_EQ(Mgr.stats().TotalRegions, 1u);
}

TEST(ModelsTest, UnsafeRegionModelRunsProgram) {
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  RegionModel M(Mgr);
  EXPECT_EQ(buildSumAndDrop(M, 1000), 499500);
  EXPECT_EQ(Mgr.stats().BarrierAdjustments, 0u)
      << "unsafe regions never adjust counts";
}

TEST(ModelsTest, DirectModelFreesEverything) {
  LeaAllocator A;
  DirectModel M(A);
  EXPECT_EQ(buildSumAndDrop(M, 1000), 499500);
  EXPECT_EQ(A.stats().TotalFrees, A.stats().TotalAllocs)
      << "every object individually freed";
  EXPECT_EQ(A.stats().LiveRequestedBytes, 0u);
}

TEST(ModelsTest, GcModelNeverFrees) {
  GcHeap Heap;
  Heap.captureStackBottom();
  DirectModel M(Heap, nullptr, /*CallFree=*/false);
  EXPECT_EQ(buildSumAndDrop(M, 1000), 499500);
  EXPECT_EQ(Heap.stats().TotalFrees, 0u);
}

TEST(ModelsTest, EmuModelFreesAtScopeExit) {
  LeaAllocator A;
  EmulationRegionLib Lib(A);
  EmuModel M(Lib);
  EXPECT_EQ(buildSumAndDrop(M, 1000), 499500);
  // All list cells plus the region record freed at dropRegion.
  EXPECT_EQ(A.stats().TotalFrees, A.stats().TotalAllocs);
  EXPECT_EQ(Lib.stats().LiveRegions, 0u);
  EXPECT_EQ(Lib.stats().TotalRegions, 1u);
}

TEST(ModelsTest, EmuOverheadTracked) {
  LeaAllocator A;
  EmulationRegionLib Lib(A);
  EmuModel M(Lib);
  typename EmuModel::Token R = M.makeRegion();
  for (int I = 0; I < 10; ++I)
    M.create<Cell<EmuModel>>(R);
  EXPECT_EQ(Lib.stats().ListOverheadBytes,
            sizeof(EmuRegion) + 10 * sizeof(EmuRegion::ObjHeader));
  M.dropRegion(R);
}

TEST(ModelsTest, ScopedArenaAllocates) {
  RegionManager Mgr;
  RegionModel M(Mgr);
  rt::Frame F;
  RegionModel::Token Scope = M.makeRegion();
  ScopedArena<RegionModel> Arena{M, Scope};
  auto *P = static_cast<char *>(Arena.alloc(100));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(regionOf(P), Scope.get());
  EXPECT_TRUE(M.dropRegion(Scope));
}

TEST(ModelsTest, ChecksumsAgreeAcrossModels) {
  long Expected = 499500;
  {
    RegionManager Mgr;
    RegionModel M(Mgr);
    EXPECT_EQ(buildSumAndDrop(M, 1000), Expected);
  }
  {
    BestFitAllocator A;
    DirectModel M(A);
    EXPECT_EQ(buildSumAndDrop(M, 1000), Expected);
  }
  {
    LeaAllocator A;
    EmulationRegionLib Lib(A);
    EmuModel M(Lib);
    EXPECT_EQ(buildSumAndDrop(M, 1000), Expected);
  }
}

//===----------------------------------------------------------------------===//
// Cache simulator
//===----------------------------------------------------------------------===//

TEST(CacheSimTest, RepeatedAccessHitsAfterFirstMiss) {
  CacheSim C;
  int X = 0;
  C.access(&X, 4, false);
  EXPECT_EQ(C.stats().L1Misses, 1u);
  for (int I = 0; I < 10; ++I)
    C.access(&X, 4, false);
  EXPECT_EQ(C.stats().L1Misses, 1u) << "subsequent accesses hit";
  EXPECT_EQ(C.stats().Reads, 11u);
}

TEST(CacheSimTest, WideAccessTouchesMultipleLines) {
  CacheSim C;
  alignas(64) char Buf[256];
  C.access(Buf, 256, true);
  EXPECT_EQ(C.stats().Writes, 256u / 32);
  EXPECT_EQ(C.stats().L1Misses, 256u / 32);
  EXPECT_GT(C.stats().WriteStallCycles, 0u);
}

TEST(CacheSimTest, SequentialBeatsScattered) {
  // The Figure 10 premise: a compact region layout (sequential sweep)
  // must incur fewer stalls than the same bytes scattered widely.
  CacheSim Seq, Scat;
  constexpr std::size_t N = 4096;
  static char Dense[N * 16];
  for (int Pass = 0; Pass < 4; ++Pass)
    for (std::size_t I = 0; I < N; ++I)
      Seq.access(Dense + I * 16, 16, false);
  static char Sparse[N * 512];
  for (int Pass = 0; Pass < 4; ++Pass)
    for (std::size_t I = 0; I < N; ++I)
      Scat.access(Sparse + I * 512, 16, false);
  EXPECT_LT(Seq.stats().totalStallCycles() * 4,
            Scat.stats().totalStallCycles());
}

TEST(CacheSimTest, L2CatchesL1Misses) {
  // Working set bigger than L1 (16K) but smaller than L2 (512K):
  // repeated sweeps miss L1 but hit L2.
  CacheSim C;
  constexpr std::size_t Bytes = 64 * 1024;
  static char Buf[Bytes];
  for (int Pass = 0; Pass < 4; ++Pass)
    for (std::size_t I = 0; I < Bytes; I += 32)
      C.access(Buf + I, 1, false);
  EXPECT_GT(C.stats().L1Misses, 3 * Bytes / 32);
  // After the first cold pass, L2 serves everything.
  EXPECT_LT(C.stats().L2Misses, 2 * Bytes / 64);
}

TEST(CacheSimTest, ResetClearsState) {
  CacheSim C;
  int X = 0;
  C.access(&X, 4, false);
  C.resetAll();
  EXPECT_EQ(C.stats().Reads, 0u);
  C.access(&X, 4, false);
  EXPECT_EQ(C.stats().L1Misses, 1u) << "cache content cleared too";
}

TEST(CacheSimTest, AssociativityReducesConflicts) {
  // Two lines mapping to the same set thrash a direct-mapped cache but
  // coexist in a 2-way cache.
  CacheSim::Params Direct;
  CacheSim::Params TwoWay;
  TwoWay.L1.Associativity = 2;
  CacheSim D(Direct), W(TwoWay);
  // Addresses 16K apart share the set in a 16K direct-mapped cache.
  static char Buf[64 * 1024];
  for (int I = 0; I < 100; ++I) {
    D.access(Buf, 4, false);
    D.access(Buf + 16 * 1024, 4, false);
    W.access(Buf, 4, false);
    W.access(Buf + 16 * 1024, 4, false);
  }
  EXPECT_GT(D.stats().L1Misses, 100u) << "direct-mapped thrashes";
  EXPECT_LE(W.stats().L1Misses, 4u) << "2-way holds both lines";
}

TEST(CacheSimTest, BackendNamesAreStable) {
  EXPECT_STREQ(backendName(BackendKind::RegionSafe), "reg");
  EXPECT_STREQ(backendName(BackendKind::RegionUnsafe), "unsafe");
  EXPECT_STREQ(backendName(BackendKind::Gc), "gc");
  EXPECT_TRUE(isRegionBackend(BackendKind::RegionUnsafe));
  EXPECT_FALSE(isRegionBackend(BackendKind::Lea));
  EXPECT_TRUE(isEmulationBackend(BackendKind::EmuLea));
}

} // namespace
