//===- tests/RuntimeStackTest.cpp - Shadow stack tests --------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Exercises the §4.2.1/§4.2.3 deferred-counting machinery in isolation:
// the high-water mark, frame scan on deleteRegion, unscan on return,
// invariant (*), and the scanned-frame write path.
//
//===----------------------------------------------------------------------===//

#include "region/Regions.h"

#include <gtest/gtest.h>

using namespace regions;
using rt::Frame;
using rt::Ref;
using rt::RuntimeStack;

namespace {

struct RuntimeStackTest : ::testing::Test {
  void SetUp() override {
    ASSERT_EQ(RuntimeStack::current().frameCount(), 0u)
        << "leaked frames from a previous test";
    ASSERT_EQ(RuntimeStack::current().slotCount(), 0u);
  }
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
};

TEST_F(RuntimeStackTest, FramePushPop) {
  auto &S = RuntimeStack::current();
  {
    Frame F1;
    EXPECT_EQ(S.frameCount(), 1u);
    {
      Frame F2;
      EXPECT_EQ(S.frameCount(), 2u);
    }
    EXPECT_EQ(S.frameCount(), 1u);
  }
  EXPECT_EQ(S.frameCount(), 0u);
}

TEST_F(RuntimeStackTest, RefRegistersAndUnregisters) {
  auto &S = RuntimeStack::current();
  Frame F;
  {
    Ref<int> A;
    Ref<int> B;
    EXPECT_EQ(S.slotCount(), 2u);
  }
  EXPECT_EQ(S.slotCount(), 0u);
}

TEST_F(RuntimeStackTest, RefWithoutFrameCreatesBaseFrame) {
  auto &S = RuntimeStack::current();
  {
    Ref<int> A;
    EXPECT_EQ(S.frameCount(), 1u) << "implicit base frame";
    EXPECT_EQ(S.slotCount(), 1u);
  }
  // The base frame stays; it is harmless and never scanned while top.
  EXPECT_EQ(S.slotCount(), 0u);
  S.resetForTesting();
}

TEST_F(RuntimeStackTest, LocalWritesDoNotTouchCounts) {
  Frame F;
  Region *R = Mgr.newRegion();
  Ref<int> A;
  A = rnew<int>(R, 1);
  A = rnew<int>(R, 2);
  A = nullptr;
  A = rnew<int>(R, 3);
  EXPECT_EQ(R->referenceCount(), 0)
      << "writes to locals are deferred (invariant (*))";
}

TEST_F(RuntimeStackTest, ScanCountsFramesBelowTop) {
  Frame Outer;
  Region *R = Mgr.newRegion();
  Ref<int> A = rnew<int>(R, 1);
  Ref<int> B = rnew<int>(R, 2);
  {
    Frame Inner; // takes the role of deleteRegion's caller
    Ref<int> C = rnew<int>(R, 3);
    RuntimeStack::current().scanForDelete();
    // Outer frame scanned (A, B counted); Inner is top, not counted.
    EXPECT_EQ(R->referenceCount(), 2);
    EXPECT_EQ(RuntimeStack::current().scannedFrameCount(), 1u);
    // Returning from Inner unscans nothing (Outer..? Outer is index 0,
    // Hwm is 1; pop leaves Hwm == frameCount == 1 -> unscan Outer).
  }
  EXPECT_EQ(R->referenceCount(), 0) << "unscan on return restored counts";
  EXPECT_EQ(RuntimeStack::current().scannedFrameCount(), 0u);
}

TEST_F(RuntimeStackTest, UnscanHappensOneFrameAtATime) {
  Frame F0;
  Region *R = Mgr.newRegion();
  Ref<int> A = rnew<int>(R, 0);
  {
    Frame F1;
    Ref<int> B = rnew<int>(R, 1);
    {
      Frame F2;
      Ref<int> C = rnew<int>(R, 2);
      {
        Frame F3; // top; stays unscanned
        RuntimeStack::current().scanForDelete();
        EXPECT_EQ(R->referenceCount(), 3) << "A, B, C counted";
        EXPECT_EQ(RuntimeStack::current().scannedFrameCount(), 3u);
      }
      // F3 popped; F2 was scanned -> unscan F2 only.
      EXPECT_EQ(R->referenceCount(), 2);
      EXPECT_EQ(RuntimeStack::current().scannedFrameCount(), 2u);
    }
    EXPECT_EQ(R->referenceCount(), 1);
  }
  EXPECT_EQ(R->referenceCount(), 0);
}

TEST_F(RuntimeStackTest, RepeatedScansDoNotDoubleCount) {
  Frame Outer;
  Region *R = Mgr.newRegion();
  Ref<int> A = rnew<int>(R, 1);
  {
    Frame Inner;
    RuntimeStack::current().scanForDelete();
    EXPECT_EQ(R->referenceCount(), 1);
    RuntimeStack::current().scanForDelete();
    EXPECT_EQ(R->referenceCount(), 1) << "already-scanned frames skipped";
  }
  EXPECT_EQ(R->referenceCount(), 0);
}

TEST_F(RuntimeStackTest, InvariantTopFrameNeverScanned) {
  Frame Only;
  Region *R = Mgr.newRegion();
  Ref<int> A = rnew<int>(R, 1);
  RuntimeStack::current().scanForDelete();
  // With a single frame there is nothing to scan: the executing frame
  // must stay unscanned (invariant (*)).
  EXPECT_EQ(RuntimeStack::current().scannedFrameCount(), 0u);
  EXPECT_EQ(R->referenceCount(), 0);
}

TEST_F(RuntimeStackTest, ScannedFrameWriteAdjustsCounts) {
  // Writing a caller's local through a reference while the caller's
  // frame is scanned must keep counts exact (§4.2.2's runtime check for
  // statically ambiguous writes).
  Frame Outer;
  Region *R1 = Mgr.newRegion();
  Region *R2 = Mgr.newRegion();
  Ref<int> A = rnew<int>(R1, 1);
  {
    Frame Inner;
    RuntimeStack::current().scanForDelete(); // Outer now scanned
    EXPECT_EQ(R1->referenceCount(), 1);
    A = rnew<int>(R2, 2); // write to scanned-frame local
    EXPECT_EQ(R1->referenceCount(), 0);
    EXPECT_EQ(R2->referenceCount(), 1);
  }
  EXPECT_EQ(R2->referenceCount(), 0);
  EXPECT_GE(RuntimeStack::current().counters().ScannedFrameWrites, 1u);
}

TEST_F(RuntimeStackTest, NullAndForeignPointersIgnoredByScan) {
  Frame Outer;
  int StackInt = 5;
  Ref<int> A; // null
  Ref<int> B = &StackInt; // not in any region
  {
    Frame Inner;
    RuntimeStack::current().scanForDelete();
  }
  SUCCEED() << "scanning nulls and non-region pointers is a no-op";
}

TEST_F(RuntimeStackTest, LocateClassifiesSlots) {
  auto &S = RuntimeStack::current();
  Frame Outer;
  Ref<int> A;
  {
    Frame Inner;
    Ref<int> B;
    S.scanForDelete();
    EXPECT_EQ(S.locate(reinterpret_cast<void *const *>(A.slotAddress())),
              RuntimeStack::SlotLocation::Scanned);
    EXPECT_EQ(S.locate(reinterpret_cast<void *const *>(B.slotAddress())),
              RuntimeStack::SlotLocation::Unscanned);
    void *NotASlot = nullptr;
    EXPECT_EQ(S.locate(&NotASlot), RuntimeStack::SlotLocation::NotRegistered);
  }
}

TEST_F(RuntimeStackTest, CountTopFrameRefs) {
  auto &S = RuntimeStack::current();
  Frame Outer;
  Region *R = Mgr.newRegion();
  Region *Other = Mgr.newRegion();
  Ref<int> A = rnew<int>(R, 1);
  Ref<int> B = rnew<int>(R, 2);
  Ref<int> C = rnew<int>(Other, 3);
  EXPECT_EQ(S.countTopFrameRefsTo(R, nullptr), 2u);
  EXPECT_EQ(S.countTopFrameRefsTo(R,
                                  reinterpret_cast<void *const *>(
                                      A.slotAddress())),
            1u)
      << "excluded slot not counted";
  EXPECT_EQ(S.countTopFrameRefsTo(Other, nullptr), 1u);
}

TEST_F(RuntimeStackTest, RefCopySemantics) {
  Frame F;
  Region *R = Mgr.newRegion();
  Ref<int> A = rnew<int>(R, 42);
  Ref<int> B = A;
  EXPECT_EQ(*B, 42);
  EXPECT_EQ(A.get(), B.get());
  B = nullptr;
  EXPECT_NE(A.get(), nullptr);
}

TEST_F(RuntimeStackTest, UnsafeManagerRegionsNotCounted) {
  RegionManager Unsafe{SafetyConfig::unsafeConfig(), std::size_t{16} << 20};
  Frame Outer;
  Region *R = Unsafe.newRegion();
  Ref<int> A = rnew<int>(R, 1);
  {
    Frame Inner;
    RuntimeStack::current().scanForDelete();
    EXPECT_EQ(R->referenceCount(), 0)
        << "StackScan disabled: scan skips this manager's regions";
  }
}

TEST_F(RuntimeStackTest, MixedManagersOnOneStack) {
  RegionManager Unsafe{SafetyConfig::unsafeConfig(), std::size_t{16} << 20};
  Frame Outer;
  Region *SafeR = Mgr.newRegion();
  Region *UnsafeR = Unsafe.newRegion();
  Ref<int> A = rnew<int>(SafeR, 1);
  Ref<int> B = rnew<int>(UnsafeR, 2);
  {
    Frame Inner;
    RuntimeStack::current().scanForDelete();
    EXPECT_EQ(SafeR->referenceCount(), 1);
    EXPECT_EQ(UnsafeR->referenceCount(), 0);
  }
  EXPECT_EQ(SafeR->referenceCount(), 0);
}

TEST_F(RuntimeStackTest, CountersAdvance) {
  auto &S = RuntimeStack::current();
  auto Before = S.counters();
  Frame Outer;
  Ref<int> A;
  {
    Frame Inner;
    S.scanForDelete();
  }
  auto After = S.counters();
  EXPECT_GT(After.Scans, Before.Scans);
  EXPECT_GT(After.FramesScanned, Before.FramesScanned);
  EXPECT_GT(After.FramesUnscanned, Before.FramesUnscanned);
}

} // namespace
