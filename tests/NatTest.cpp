//===- tests/NatTest.cpp - Bignum substrate tests -------------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Unit tests plus randomized property tests (cross-checked against
// native 64-bit arithmetic and algebraic identities).
//
//===----------------------------------------------------------------------===//

#include "bignum/Nat.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

using namespace regions;

namespace {

/// Test arena over the C++ heap.
struct HeapArena {
  ~HeapArena() {
    for (void *P : Blocks)
      std::free(P);
  }
  void *alloc(std::size_t N) {
    void *P = std::malloc(N ? N : 1);
    Blocks.push_back(P);
    return P;
  }
  std::vector<void *> Blocks;
};

struct NatTest : ::testing::Test {
  HeapArena A;
  NatBuilder<HeapArena> B{A};

  /// Random value of roughly \p Limbs 32-bit limbs.
  Nat randomNat(Prng &Rng, unsigned Limbs) {
    Nat V = B.fromU64(0);
    for (unsigned I = 0; I < Limbs; ++I)
      V = B.addSmall(B.shiftLeft(V, 32),
                     static_cast<std::uint32_t>(Rng.next()));
    return V;
  }
};

TEST_F(NatTest, ZeroProperties) {
  Nat Z = B.fromU64(0);
  EXPECT_TRUE(Z.isZero());
  EXPECT_EQ(Z.bitLength(), 0u);
  EXPECT_EQ(Z.toU64(), 0u);
  EXPECT_EQ(B.toDecimal(Z), "0");
}

TEST_F(NatTest, FromToU64RoundTrips) {
  for (std::uint64_t V : {1ull, 255ull, 4294967295ull, 4294967296ull,
                          0xdeadbeefcafef00dull, ~0ull}) {
    EXPECT_EQ(B.fromU64(V).toU64(), V);
  }
}

TEST_F(NatTest, FromDecimal) {
  EXPECT_EQ(B.fromDecimal("0").toU64(), 0u);
  EXPECT_EQ(B.fromDecimal("12345678901234567890").low64(),
            B.fromU64(12345678901234567890ull).low64());
  Nat Paper = B.fromDecimal("4175764634412486014593803028771");
  EXPECT_EQ(B.toDecimal(Paper), "4175764634412486014593803028771");
  EXPECT_EQ(Paper.bitLength(), 102u);
}

TEST_F(NatTest, CompareOrdersValues) {
  EXPECT_EQ(natCompare(B.fromU64(5), B.fromU64(5)), 0);
  EXPECT_LT(natCompare(B.fromU64(4), B.fromU64(5)), 0);
  EXPECT_GT(natCompare(B.fromU64(1ull << 40), B.fromU64(5)), 0);
}

TEST_F(NatTest, AddSubSmallValues) {
  EXPECT_EQ(B.add(B.fromU64(2), B.fromU64(3)).toU64(), 5u);
  EXPECT_EQ(B.sub(B.fromU64(5), B.fromU64(3)).toU64(), 2u);
  EXPECT_EQ(B.sub(B.fromU64(5), B.fromU64(5)).toU64(), 0u);
}

TEST_F(NatTest, CarriesPropagate) {
  Nat Max32 = B.fromU64(0xffffffffull);
  EXPECT_EQ(B.addSmall(Max32, 1).toU64(), 0x100000000ull);
  Nat Max64 = B.fromU64(~0ull);
  EXPECT_EQ(B.toDecimal(B.addSmall(Max64, 1)), "18446744073709551616");
}

TEST_F(NatTest, MulMatchesKnownValues) {
  EXPECT_EQ(B.mul(B.fromU64(0), B.fromU64(9)).toU64(), 0u);
  EXPECT_EQ(B.mul(B.fromU64(123456789), B.fromU64(987654321)).toU64(),
            121932631112635269ull);
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  Nat Sq = B.mul(B.fromU64(~0ull), B.fromU64(~0ull));
  EXPECT_EQ(B.toDecimal(Sq), "340282366920938463426481119284349108225");
}

TEST_F(NatTest, DivModKnownValues) {
  auto DM = B.divMod(B.fromU64(100), B.fromU64(7));
  EXPECT_EQ(DM.Quot.toU64(), 14u);
  EXPECT_EQ(DM.Rem.toU64(), 2u);
  auto DM2 = B.divMod(B.fromU64(5), B.fromU64(10));
  EXPECT_EQ(DM2.Quot.toU64(), 0u);
  EXPECT_EQ(DM2.Rem.toU64(), 5u);
  auto DM3 = B.divMod(B.fromDecimal("340282366920938463426481119284349108225"),
                      B.fromU64(~0ull));
  EXPECT_EQ(DM3.Quot.toU64(), ~0ull);
  EXPECT_TRUE(DM3.Rem.isZero());
}

TEST_F(NatTest, SqrtKnownValues) {
  EXPECT_EQ(B.sqrtFloor(B.fromU64(0)).toU64(), 0u);
  EXPECT_EQ(B.sqrtFloor(B.fromU64(1)).toU64(), 1u);
  EXPECT_EQ(B.sqrtFloor(B.fromU64(24)).toU64(), 4u);
  EXPECT_EQ(B.sqrtFloor(B.fromU64(25)).toU64(), 5u);
  EXPECT_EQ(B.sqrtFloor(B.fromU64(26)).toU64(), 5u);
  Nat Big = B.fromDecimal("340282366920938463426481119284349108225");
  EXPECT_EQ(B.sqrtFloor(Big).toU64(), ~0ull);
}

TEST_F(NatTest, GcdKnownValues) {
  EXPECT_EQ(B.gcd(B.fromU64(12), B.fromU64(18)).toU64(), 6u);
  EXPECT_EQ(B.gcd(B.fromU64(17), B.fromU64(5)).toU64(), 1u);
  EXPECT_EQ(B.gcd(B.fromU64(0), B.fromU64(5)).toU64(), 5u);
  EXPECT_EQ(B.gcd(B.fromU64(5), B.fromU64(0)).toU64(), 5u);
}

TEST_F(NatTest, ShiftLeftAndHalf) {
  EXPECT_EQ(B.shiftLeft(B.fromU64(1), 40).toU64(), 1ull << 40);
  EXPECT_EQ(B.half(B.fromU64(7)).toU64(), 3u);
  EXPECT_EQ(B.half(B.shiftLeft(B.fromU64(1), 64)).toU64(), 1ull << 63);
}

TEST_F(NatTest, BitAccess) {
  Nat V = B.fromU64(0b1010);
  EXPECT_FALSE(V.bit(0));
  EXPECT_TRUE(V.bit(1));
  EXPECT_FALSE(V.bit(2));
  EXPECT_TRUE(V.bit(3));
  EXPECT_FALSE(V.bit(64));
}

//===----------------------------------------------------------------------===//
// Randomized property tests against native 64-bit arithmetic
//===----------------------------------------------------------------------===//

struct NatPropertyTest : NatTest {};

TEST_F(NatPropertyTest, AddMatchesU64) {
  Prng Rng(1);
  for (int I = 0; I < 2000; ++I) {
    std::uint64_t X = Rng.next() >> 1, Y = Rng.next() >> 1;
    EXPECT_EQ(B.add(B.fromU64(X), B.fromU64(Y)).toU64(), X + Y);
  }
}

TEST_F(NatPropertyTest, SubMatchesU64) {
  Prng Rng(2);
  for (int I = 0; I < 2000; ++I) {
    std::uint64_t X = Rng.next(), Y = Rng.next();
    if (X < Y)
      std::swap(X, Y);
    EXPECT_EQ(B.sub(B.fromU64(X), B.fromU64(Y)).toU64(), X - Y);
  }
}

TEST_F(NatPropertyTest, MulMatchesU64) {
  Prng Rng(3);
  for (int I = 0; I < 2000; ++I) {
    std::uint64_t X = Rng.next() >> 32, Y = Rng.next() >> 32;
    EXPECT_EQ(B.mul(B.fromU64(X), B.fromU64(Y)).toU64(), X * Y);
  }
}

TEST_F(NatPropertyTest, DivModMatchesU64) {
  Prng Rng(4);
  for (int I = 0; I < 2000; ++I) {
    std::uint64_t X = Rng.next(), Y = 1 + (Rng.next() >> (Rng.nextBelow(63)));
    auto DM = B.divMod(B.fromU64(X), B.fromU64(Y));
    EXPECT_EQ(DM.Quot.toU64(), X / Y);
    EXPECT_EQ(DM.Rem.toU64(), X % Y);
  }
}

TEST_F(NatPropertyTest, DivModReconstructs) {
  // For big random values: X == Q*Y + R and R < Y.
  Prng Rng(5);
  for (int I = 0; I < 300; ++I) {
    Nat X = randomNat(Rng, 1 + Rng.nextBelow(6));
    Nat Y = randomNat(Rng, 1 + Rng.nextBelow(4));
    if (Y.isZero())
      continue;
    auto DM = B.divMod(X, Y);
    EXPECT_LT(natCompare(DM.Rem, Y), 0);
    EXPECT_EQ(natCompare(B.add(B.mul(DM.Quot, Y), DM.Rem), X), 0);
  }
}

TEST_F(NatPropertyTest, MulDivRoundTrip) {
  Prng Rng(6);
  for (int I = 0; I < 300; ++I) {
    Nat X = randomNat(Rng, 1 + Rng.nextBelow(5));
    Nat Y = randomNat(Rng, 1 + Rng.nextBelow(5));
    if (Y.isZero())
      continue;
    auto DM = B.divMod(B.mul(X, Y), Y);
    EXPECT_EQ(natCompare(DM.Quot, X), 0);
    EXPECT_TRUE(DM.Rem.isZero());
  }
}

TEST_F(NatPropertyTest, SqrtBrackets) {
  Prng Rng(7);
  for (int I = 0; I < 200; ++I) {
    Nat X = randomNat(Rng, 1 + Rng.nextBelow(5));
    Nat R = B.sqrtFloor(X);
    EXPECT_LE(natCompare(B.mul(R, R), X), 0);
    Nat R1 = B.addSmall(R, 1);
    EXPECT_GT(natCompare(B.mul(R1, R1), X), 0);
  }
}

TEST_F(NatPropertyTest, GcdDividesBoth) {
  Prng Rng(8);
  for (int I = 0; I < 200; ++I) {
    Nat X = randomNat(Rng, 1 + Rng.nextBelow(4));
    Nat Y = randomNat(Rng, 1 + Rng.nextBelow(4));
    if (X.isZero() || Y.isZero())
      continue;
    Nat G = B.gcd(X, Y);
    EXPECT_TRUE(B.mod(X, G).isZero());
    EXPECT_TRUE(B.mod(Y, G).isZero());
  }
}

TEST_F(NatPropertyTest, DecimalRoundTrip) {
  Prng Rng(9);
  for (int I = 0; I < 100; ++I) {
    Nat X = randomNat(Rng, 1 + Rng.nextBelow(5));
    std::string S = B.toDecimal(X);
    EXPECT_EQ(natCompare(B.fromDecimal(S.c_str()), X), 0);
  }
}

} // namespace
