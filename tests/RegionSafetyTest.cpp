//===- tests/RegionSafetyTest.cpp - Safe deletion semantics ---------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// The paper's central safety property: deleteregion(&r) succeeds iff
// there are no external references to objects in r (excepting *x), where
// external references live in other regions, global storage, or live
// stack variables. Cycles within one region must still collect.
//
//===----------------------------------------------------------------------===//

#include "region/Regions.h"

#include <gtest/gtest.h>

using namespace regions;
using rt::Frame;
using rt::Ref;
using rt::RegionHandle;

namespace {

struct Node {
  explicit Node(int V = 0) : Value(V) {}
  int Value;
  RegionPtr<Node> Next;
};

/// A global region pointer (the paper's "global storage" case).
RegionPtr<Node> GlobalNode;

struct RegionSafetyTest : ::testing::Test {
  void SetUp() override {
    ASSERT_EQ(rt::RuntimeStack::current().frameCount(), 0u);
    GlobalNode = nullptr;
  }
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
};

//===----------------------------------------------------------------------===//
// Basic delete success and failure
//===----------------------------------------------------------------------===//

TEST_F(RegionSafetyTest, DeleteSucceedsWithNoExternalRefs) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  rnew<Node>(R, 1);
  EXPECT_TRUE(deleteRegion(R));
  EXPECT_EQ(R.get(), nullptr) << "*x set to NULL on success";
}

TEST_F(RegionSafetyTest, DeleteFailsWhileLocalRefLives) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  Ref<Node> Keep = rnew<Node>(R, 1);
  EXPECT_FALSE(deleteRegion(R)) << "live local blocks deletion";
  EXPECT_NE(R.get(), nullptr) << "*x unchanged on failure";
  EXPECT_EQ(Keep->Value, 1) << "object still intact";
  Keep = nullptr;
  EXPECT_TRUE(deleteRegion(R)) << "clearing the stale local unblocks";
}

TEST_F(RegionSafetyTest, DeleteFailsWhileGlobalRefLives) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  GlobalNode = rnew<Node>(R, 7);
  EXPECT_FALSE(deleteRegion(R));
  GlobalNode = nullptr;
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(RegionSafetyTest, DeleteFailsWhileOtherRegionPointsIn) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  RegionHandle Other = Mgr.newRegion();
  Node *Inner = rnew<Node>(R, 1);
  Node *Holder = rnew<Node>(Other, 2);
  Holder->Next = Inner; // cross-region reference, counted
  EXPECT_EQ(R->referenceCount(), 1);
  EXPECT_FALSE(deleteRegion(R));
  Holder->Next = nullptr;
  EXPECT_EQ(R->referenceCount(), 0);
  EXPECT_TRUE(deleteRegion(R));
  EXPECT_TRUE(deleteRegion(Other));
}

TEST_F(RegionSafetyTest, DeletingOtherRegionReleasesItsRefs) {
  // Destroying a region that holds pointers into R must decrement R's
  // count via the cleanup scan (§4.2.4).
  Frame F;
  RegionHandle R = Mgr.newRegion();
  RegionHandle Other = Mgr.newRegion();
  Node *Inner = rnew<Node>(R, 1);
  rnew<Node>(Other, 2)->Next = Inner;
  rnew<Node>(Other, 3)->Next = Inner;
  EXPECT_EQ(R->referenceCount(), 2);
  EXPECT_FALSE(deleteRegion(R));
  EXPECT_TRUE(deleteRegion(Other));
  EXPECT_EQ(R->referenceCount(), 0)
      << "cleanup of Other released its references into R";
  EXPECT_TRUE(deleteRegion(R));
}

//===----------------------------------------------------------------------===//
// Sameregion pointers and cycles
//===----------------------------------------------------------------------===//

TEST_F(RegionSafetyTest, SameRegionPointersNotCounted) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  Node *A = rnew<Node>(R, 1);
  Node *B = rnew<Node>(R, 2);
  A->Next = B;
  B->Next = A; // a cycle, entirely within R
  EXPECT_EQ(R->referenceCount(), 0)
      << "sameregion pointers are never counted (§4.2.2)";
  EXPECT_TRUE(deleteRegion(R)) << "cycles within a region collect";
}

TEST_F(RegionSafetyTest, LongCycleWithinRegionCollects) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  Node *First = rnew<Node>(R, 0);
  Node *Prev = First;
  for (int I = 1; I < 1000; ++I) {
    Node *N = rnew<Node>(R, I);
    Prev->Next = N;
    Prev = N;
  }
  Prev->Next = First; // close the cycle
  EXPECT_EQ(R->referenceCount(), 0);
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(RegionSafetyTest, CrossRegionCycleNeedsBothDeletes) {
  // A cycle spanning two regions: neither deletes first, matching the
  // paper's caveat that only cycles within a single region are free.
  Frame F;
  RegionHandle R1 = Mgr.newRegion();
  RegionHandle R2 = Mgr.newRegion();
  Node *A = rnew<Node>(R1, 1);
  Node *B = rnew<Node>(R2, 2);
  A->Next = B;
  B->Next = A;
  EXPECT_FALSE(deleteRegion(R1));
  EXPECT_FALSE(deleteRegion(R2));
  // Breaking one edge lets deletion proceed in order.
  A->Next = nullptr;
  EXPECT_FALSE(deleteRegion(R1)) << "B still points to A";
  EXPECT_TRUE(deleteRegion(R2))  << "nothing points into R2 anymore";
  EXPECT_TRUE(deleteRegion(R1)) << "R2's cleanup released B->Next";
}

TEST_F(RegionSafetyTest, RebindingWithinRegionKeepsCountsExact) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  RegionHandle Other = Mgr.newRegion();
  Node *X = rnew<Node>(R, 1);
  Node *Y = rnew<Node>(R, 2);
  Node *H = rnew<Node>(Other, 3);
  H->Next = X;
  EXPECT_EQ(R->referenceCount(), 1);
  H->Next = Y; // same target region: count unchanged
  EXPECT_EQ(R->referenceCount(), 1);
  H->Next = nullptr;
  EXPECT_EQ(R->referenceCount(), 0);
  EXPECT_TRUE(deleteRegion(R));
  EXPECT_TRUE(deleteRegion(Other));
}

//===----------------------------------------------------------------------===//
// The "excepting *x" rule for the deleted handle
//===----------------------------------------------------------------------===//

TEST_F(RegionSafetyTest, HandleItselfDoesNotBlockDeletion) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  // R is a live local pointing into the region (the Region struct lives
  // in its first page) yet deletion must succeed: it is the *x handle.
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(RegionSafetyTest, SecondHandleBlocksDeletion) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  RegionHandle Alias = R.get();
  EXPECT_FALSE(deleteRegion(R)) << "a second live handle is a reference";
  Alias = nullptr;
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(RegionSafetyTest, HandleInCallerFrameBlocksUntilCallerClears) {
  Frame Outer;
  RegionHandle R = Mgr.newRegion();
  Ref<Node> OuterRef = rnew<Node>(R, 5);
  bool Deleted = false;
  {
    Frame Inner;
    RegionHandle InnerAlias = R.get();
    // Deleting through the inner alias: OuterRef (in a scanned frame)
    // blocks it.
    Deleted = deleteRegion(InnerAlias);
    EXPECT_FALSE(Deleted);
    EXPECT_EQ(R->referenceCount(), 2)
        << "outer frame scanned: OuterRef and R's handle counted";
  }
  EXPECT_EQ(R->referenceCount(), 0) << "unscan restored";
  OuterRef = nullptr;
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(RegionSafetyTest, GlobalHandleDeletion) {
  static RegionPtr<Region> GlobalHandle;
  GlobalHandle = Mgr.newRegion();
  EXPECT_EQ(GlobalHandle->referenceCount(), 1) << "global handle counted";
  EXPECT_TRUE(deleteRegion(GlobalHandle))
      << "the counted handle is excepted from the check";
  EXPECT_EQ(GlobalHandle.get(), nullptr);
}

TEST_F(RegionSafetyTest, GlobalHandleBlockedByOtherGlobal) {
  static RegionPtr<Region> GlobalHandle;
  GlobalHandle = Mgr.newRegion();
  GlobalNode = rnew<Node>(GlobalHandle.get(), 1);
  EXPECT_FALSE(deleteRegion(GlobalHandle));
  GlobalNode = nullptr;
  EXPECT_TRUE(deleteRegion(GlobalHandle));
}

//===----------------------------------------------------------------------===//
// Reference-count bookkeeping details
//===----------------------------------------------------------------------===//

TEST_F(RegionSafetyTest, GlobalWriteBarrierCounts) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  Node *N = rnew<Node>(R, 1);
  EXPECT_EQ(R->referenceCount(), 0);
  GlobalNode = N;
  EXPECT_EQ(R->referenceCount(), 1);
  GlobalNode = N; // idempotent rebinding
  EXPECT_EQ(R->referenceCount(), 1);
  GlobalNode = nullptr;
  EXPECT_EQ(R->referenceCount(), 0);
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(RegionSafetyTest, DestructorOfHeapPtrReleases) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  Node *N = rnew<Node>(R, 1);
  {
    RegionPtr<Node> Holder(N); // e.g. a member of a malloc'd object
    EXPECT_EQ(R->referenceCount(), 1);
  }
  EXPECT_EQ(R->referenceCount(), 0);
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(RegionSafetyTest, BarrierStatsRecorded) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  Node *A = rnew<Node>(R, 1);
  Node *B = rnew<Node>(R, 2);
  A->Next = B;           // sameregion store
  GlobalNode = A;        // global store, counted
  GlobalNode = nullptr;
  const RegionStats &S = Mgr.stats();
  EXPECT_GE(S.BarrierStores, 3u);
  EXPECT_GE(S.BarrierSameRegion, 1u);
  EXPECT_GE(S.BarrierAdjustments, 2u);
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(RegionSafetyTest, DeleteFailureStatsRecorded) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  Ref<Node> Keep = rnew<Node>(R, 1);
  EXPECT_FALSE(deleteRegion(R));
  EXPECT_EQ(Mgr.stats().DeleteFailures, 1u);
  EXPECT_EQ(Mgr.stats().DeleteAttempts, 1u);
  Keep = nullptr;
  EXPECT_TRUE(deleteRegion(R));
  EXPECT_EQ(Mgr.stats().DeleteAttempts, 2u);
  EXPECT_EQ(Mgr.stats().DeleteFailures, 1u);
}

//===----------------------------------------------------------------------===//
// Interaction of deletion with the high-water mark
//===----------------------------------------------------------------------===//

TEST_F(RegionSafetyTest, FailedDeleteLeavesConsistentCounts) {
  Frame Outer;
  RegionHandle R = Mgr.newRegion();
  Ref<Node> Keep = rnew<Node>(R, 1);
  {
    Frame Inner;
    RegionHandle Alias = R.get();
    EXPECT_FALSE(deleteRegion(Alias));
    EXPECT_FALSE(deleteRegion(Alias)) << "repeat failure is stable";
  }
  Keep = nullptr;
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(RegionSafetyTest, DeleteFromDeepCallChain) {
  Frame F0;
  RegionHandle R = Mgr.newRegion();
  rnew<Node>(R, 1);
  // Simulate a deep call chain with intermediate frames holding refs to
  // *other* regions only.
  RegionHandle Other = Mgr.newRegion();
  {
    Frame F1;
    Ref<Node> L1 = rnew<Node>(Other, 2);
    {
      Frame F2;
      Ref<Node> L2 = rnew<Node>(Other, 3);
      RegionHandle Alias = R.get();
      EXPECT_FALSE(deleteRegion(Alias))
          << "R's own handle in scanned outer frame blocks the alias delete";
    }
  }
  EXPECT_TRUE(deleteRegion(R)) << "deleting through the real handle works";
  EXPECT_TRUE(deleteRegion(Other));
}

TEST_F(RegionSafetyTest, ManyRegionsIndependentCounts) {
  Frame F;
  constexpr int N = 50;
  Region *Rs[N];
  for (int I = 0; I < N; ++I)
    Rs[I] = Mgr.newRegion();
  // Chain: region I holds a pointer into region I+1.
  for (int I = 0; I + 1 < N; ++I)
    rnew<Node>(Rs[I], I)->Next = rnew<Node>(Rs[I + 1], I + 1);
  for (int I = 1; I < N; ++I)
    EXPECT_EQ(Rs[I]->referenceCount(), 1);
  EXPECT_EQ(Rs[0]->referenceCount(), 0);
  // Deleting head-first cascades legality down the chain.
  for (int I = 0; I < N; ++I) {
    EXPECT_TRUE(Mgr.deleteRegionRaw(Rs[I])) << "region " << I;
    if (I + 1 < N) {
      EXPECT_EQ(Rs[I + 1]->referenceCount(), 0);
    }
  }
  EXPECT_EQ(Mgr.liveRegionCount(), 0u);
}

TEST_F(RegionSafetyTest, TailFirstDeletionBlockedUntilHeadDies) {
  Frame F;
  RegionHandle Head = Mgr.newRegion();
  RegionHandle Tail = Mgr.newRegion();
  rnew<Node>(Head, 1)->Next = rnew<Node>(Tail, 2);
  EXPECT_FALSE(deleteRegion(Tail));
  EXPECT_TRUE(deleteRegion(Head));
  EXPECT_TRUE(deleteRegion(Tail));
}

//===----------------------------------------------------------------------===//
// Unsafe mode: deleteregion is unconditional
//===----------------------------------------------------------------------===//

TEST_F(RegionSafetyTest, UnsafeDeleteIgnoresReferences) {
  RegionManager Unsafe{SafetyConfig::unsafeConfig(), std::size_t{16} << 20};
  Frame F;
  Region *R = Unsafe.newRegion();
  Ref<Node> Dangling = rnew<Node>(R, 1);
  EXPECT_TRUE(Unsafe.deleteRegionRaw(R))
      << "unsafe regions delete regardless of live references";
  // Dangling now points to freed pages; regionOf sees nothing.
  EXPECT_EQ(regionOf(Dangling.get()), nullptr);
  Dangling = nullptr;
}

TEST_F(RegionSafetyTest, PaperListCopyExample) {
  // Figure 3 of the paper: copy a list into a temporary region, use it,
  // delete the region.
  Frame F;
  RegionHandle Perm = Mgr.newRegion();
  // Build a 100-element list in Perm.
  Ref<Node> Head;
  for (int I = 99; I >= 0; --I) {
    Node *N = rnew<Node>(Perm, I);
    N->Next = Head.get();
    Head = N;
  }
  {
    Frame CopyScope;
    RegionHandle Tmp = Mgr.newRegion();
    // copy_list(tmp, l)
    Ref<Node> CopyHead;
    Ref<Node> CopyTail;
    for (Node *N = Head.get(); N; N = N->Next.get()) {
      Node *C = rnew<Node>(Tmp, N->Value);
      if (!CopyHead)
        CopyHead = C;
      else
        CopyTail->Next = C;
      CopyTail = C;
    }
    // Check the copy.
    int Expect = 0;
    for (Node *N = CopyHead.get(); N; N = N->Next.get())
      EXPECT_EQ(N->Value, Expect++);
    EXPECT_EQ(Expect, 100);
    CopyHead = nullptr;
    CopyTail = nullptr;
    EXPECT_TRUE(deleteRegion(Tmp));
  }
  // Original intact.
  int Expect = 0;
  for (Node *N = Head.get(); N; N = N->Next.get())
    EXPECT_EQ(N->Value, Expect++);
  Head = nullptr;
  EXPECT_TRUE(deleteRegion(Perm));
}

} // namespace
