//===- tests/GcTest.cpp - Conservative collector tests --------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/GcHeap.h"
#include "region/RegionPtr.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace regions;

namespace {

/// Fixture with machine-stack scanning disabled so liveness is fully
/// controlled by explicit roots (deterministic tests).
struct GcTest : ::testing::Test {
  GcTest() : Heap(std::size_t{1} << 28) {
    Heap.setScanMachineStack(false);
  }
  GcHeap Heap;
};

struct GcNode {
  GcNode *Next;
  std::uint64_t Payload[3];
};

TEST_F(GcTest, AllocReturnsZeroedAlignedMemory) {
  auto *P = static_cast<unsigned char *>(Heap.malloc(64));
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(isAligned(P, kDefaultAlignment));
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(P[I], 0u);
}

TEST_F(GcTest, UnreachableObjectsAreCollected) {
  for (int I = 0; I < 1000; ++I)
    Heap.malloc(48);
  std::uint64_t Before = Heap.gcStats().ObjectsFreedTotal;
  Heap.collect();
  EXPECT_GE(Heap.gcStats().ObjectsFreedTotal, Before + 1000);
}

TEST_F(GcTest, RootedObjectsSurvive) {
  static GcNode *Root; // static: outside the (disabled) stack scan
  Root = static_cast<GcNode *>(Heap.malloc(sizeof(GcNode)));
  Root->Payload[0] = 0xdeadbeef;
  Heap.addRootRange(&Root, &Root + 1);
  Heap.collect();
  EXPECT_TRUE(Heap.isLiveObject(Root));
  EXPECT_EQ(Root->Payload[0], 0xdeadbeefu);
  Heap.removeRootRange(&Root);
  Heap.collect();
  EXPECT_FALSE(Heap.isLiveObject(Root));
}

TEST_F(GcTest, ReachabilityIsTransitive) {
  static GcNode *Head;
  Head = nullptr;
  Heap.addRootRange(&Head, &Head + 1);
  for (int I = 0; I < 500; ++I) {
    auto *N = static_cast<GcNode *>(Heap.malloc(sizeof(GcNode)));
    N->Next = Head;
    N->Payload[0] = static_cast<std::uint64_t>(I);
    Head = N;
  }
  Heap.collect();
  int Count = 0;
  for (GcNode *N = Head; N; N = N->Next) {
    EXPECT_TRUE(Heap.isLiveObject(N));
    ++Count;
  }
  EXPECT_EQ(Count, 500);
  // Drop the list: everything should go.
  Head = nullptr;
  std::uint64_t Before = Heap.gcStats().ObjectsFreedTotal;
  Heap.collect();
  EXPECT_GE(Heap.gcStats().ObjectsFreedTotal, Before + 500);
  Heap.removeRootRange(&Head);
}

TEST_F(GcTest, CyclesAreCollected) {
  static GcNode *Root;
  Root = static_cast<GcNode *>(Heap.malloc(sizeof(GcNode)));
  auto *B = static_cast<GcNode *>(Heap.malloc(sizeof(GcNode)));
  Root->Next = B;
  B->Next = Root; // cycle
  Heap.addRootRange(&Root, &Root + 1);
  Heap.collect();
  EXPECT_TRUE(Heap.isLiveObject(Root));
  EXPECT_TRUE(Heap.isLiveObject(B));
  Heap.removeRootRange(&Root);
  std::uint64_t Before = Heap.gcStats().ObjectsFreedTotal;
  Heap.collect();
  EXPECT_GE(Heap.gcStats().ObjectsFreedTotal, Before + 2)
      << "unreferenced cycle must be collected";
  Root = nullptr;
}

TEST_F(GcTest, InteriorPointersKeepObjectsAlive) {
  static char *Interior;
  auto *Obj = static_cast<char *>(Heap.malloc(200));
  Interior = Obj + 100;
  Heap.addRootRange(&Interior, &Interior + 1);
  Heap.collect();
  EXPECT_TRUE(Heap.isLiveObject(Obj));
  Heap.removeRootRange(&Interior);
  Interior = nullptr;
}

TEST_F(GcTest, LargeObjectsCollectAndSurvive) {
  static char *Big;
  Big = static_cast<char *>(Heap.malloc(5 * kPageSize));
  std::memset(Big, 0x42, 5 * kPageSize);
  Heap.addRootRange(&Big, &Big + 1);
  Heap.collect();
  EXPECT_TRUE(Heap.isLiveObject(Big));
  EXPECT_EQ(Big[5 * kPageSize - 1], 0x42);
  Heap.removeRootRange(&Big);
  Heap.collect();
  EXPECT_FALSE(Heap.isLiveObject(Big));
  Big = nullptr;
}

TEST_F(GcTest, InteriorPointerIntoLargeRun) {
  static char *Interior;
  auto *Big = static_cast<char *>(Heap.malloc(8 * kPageSize));
  Interior = Big + 6 * kPageSize + 17; // points into a continuation page
  Heap.addRootRange(&Interior, &Interior + 1);
  Heap.collect();
  EXPECT_TRUE(Heap.isLiveObject(Big));
  Heap.removeRootRange(&Interior);
  Interior = nullptr;
}

TEST_F(GcTest, FreedMemoryIsReused) {
  for (int I = 0; I < 5000; ++I)
    Heap.malloc(100);
  Heap.collect();
  std::size_t Os = Heap.osBytes();
  for (int I = 0; I < 5000; ++I)
    Heap.malloc(100);
  Heap.collect();
  for (int I = 0; I < 5000; ++I)
    Heap.malloc(100);
  EXPECT_LE(Heap.osBytes(), Os + 64 * kPageSize)
      << "collected memory must be reused, not regrown";
}

TEST_F(GcTest, AutomaticCollectionTriggers) {
  Heap.setGrowthFactor(1.0);
  for (int I = 0; I < 200000; ++I)
    Heap.malloc(64);
  EXPECT_GT(Heap.gcStats().Collections, 0u)
      << "allocation pressure must trigger collections";
  // 200k * 64B unreachable allocations must not retain 12.8 MB.
  EXPECT_LT(Heap.osBytes(), std::size_t{8} << 20);
}

TEST_F(GcTest, ShadowStackSlotsAreRoots) {
  ASSERT_EQ(rt::RuntimeStack::current().frameCount(), 0u);
  {
    rt::Frame F;
    rt::Ref<GcNode> Local;
    Local = static_cast<GcNode *>(Heap.malloc(sizeof(GcNode)));
    Heap.collect();
    EXPECT_TRUE(Heap.isLiveObject(Local.get()))
        << "registered locals are GC roots";
    GcNode *Raw = Local.get();
    Local = nullptr;
    Heap.collect();
    EXPECT_FALSE(Heap.isLiveObject(Raw));
  }
}

TEST_F(GcTest, MachineStackScanKeepsLocalsAlive) {
  Heap.setScanMachineStack(true);
  Heap.captureStackBottom();
  // A pointer held only in a volatile local must survive collection.
  GcNode *volatile Local =
      static_cast<GcNode *>(Heap.malloc(sizeof(GcNode)));
  Heap.collect();
  EXPECT_TRUE(Heap.isLiveObject(Local));
  Local = nullptr;
}

TEST_F(GcTest, FreeIsDisabled) {
  void *P = Heap.malloc(64);
  Heap.free(P); // must be a harmless no-op
  EXPECT_TRUE(Heap.isLiveObject(P));
}

TEST_F(GcTest, PauseStatsRecorded) {
  static GcNode *Head;
  Head = nullptr;
  Heap.addRootRange(&Head, &Head + 1);
  for (int I = 0; I < 2000; ++I) {
    auto *N = static_cast<GcNode *>(Heap.malloc(sizeof(GcNode)));
    N->Next = Head;
    Head = N;
  }
  Heap.collect();
  EXPECT_GT(Heap.gcStats().TotalPauseNs, 0u);
  EXPECT_GE(Heap.gcStats().MaxPauseNs, Heap.gcStats().TotalPauseNs /
                                           (Heap.gcStats().Collections + 1));
  EXPECT_GT(Heap.gcStats().LiveBytesAfterLastGc, 0u);
  Head = nullptr;
  Heap.removeRootRange(&Head);
}

TEST_F(GcTest, StressRandomGraphStaysConsistent) {
  // Build a random graph under a root array, collect repeatedly, and
  // verify payload integrity of everything reachable.
  static GcNode *Roots[32];
  std::memset(Roots, 0, sizeof(Roots));
  Heap.addRootRange(Roots, Roots + 32);
  Prng Rng(99);
  for (int Step = 0; Step < 20000; ++Step) {
    std::size_t Slot = Rng.nextBelow(32);
    auto *N = static_cast<GcNode *>(Heap.malloc(sizeof(GcNode)));
    N->Next = Roots[Rng.nextBelow(32)];
    N->Payload[0] = reinterpret_cast<std::uintptr_t>(N) ^ 0xabcdef;
    Roots[Slot] = N;
    if (Step % 4096 == 0)
      Heap.collect();
  }
  Heap.collect();
  for (GcNode *N : Roots) {
    int Depth = 0;
    for (GcNode *Cur = N; Cur && Depth < 100000; Cur = Cur->Next, ++Depth) {
      ASSERT_TRUE(Heap.isLiveObject(Cur));
      ASSERT_EQ(Cur->Payload[0],
                reinterpret_cast<std::uintptr_t>(Cur) ^ 0xabcdef);
    }
  }
  Heap.removeRootRange(Roots);
}

#if defined(__x86_64__)

/// Overlays (and zeroes) the stack area where a popped callee's frame —
/// and any spilled copy of its return value — may linger.
__attribute__((noinline)) void scrubStackResidue() {
  volatile char Junk[8192];
  for (std::size_t I = 0; I != sizeof(Junk); ++I)
    Junk[I] = 0;
}

__attribute__((noinline)) void *allocOffStack(GcHeap &Heap) {
  return Heap.malloc(48);
}

/// A pointer whose only live copy sits in a callee-saved register must
/// survive collection. The stack scan spills registers into a jmp_buf
/// local; the scanned range has to include that jmp_buf (it lies below
/// __builtin_frame_address(0), so scanning from the frame pointer
/// silently drops every register root).
///
/// The register must be one that neither collect() nor markFromRoots()
/// saves in its prologue — a prologue push of r12/r13 lands above the
/// collector's frame pointer and rescues the root even with the broken
/// scan range. r15 is spilled by neither at -O2, so only the jmp_buf
/// holds it during the scan.
TEST(GcStackScanTest, CalleeSavedRegisterIsARoot) {
  GcHeap Heap(std::size_t{1} << 26);
  Heap.captureStackBottom();
  register void *Keep asm("r15") = allocOffStack(Heap);
  asm volatile("" : "+r"(Keep)); // pin the pointer into r15
  scrubStackResidue();           // erase any stale stack copies
  Heap.collect();
  asm volatile("" : "+r"(Keep)); // r15 stays live across collect()
  EXPECT_TRUE(Heap.isLiveObject(Keep))
      << "object referenced only from a callee-saved register was swept";
}

#endif // __x86_64__

} // namespace
