//===- tests/HarnessTest.cpp - Experiment harness tests -------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace regions;
using namespace regions::harness;
using namespace regions::workloads;

namespace {

struct HarnessTest : ::testing::Test {
  void TearDown() override {
    unsetenv("REGIONS_BENCH_SCALE");
    unsetenv("REGIONS_BENCH_REPEATS");
  }
};

TEST_F(HarnessTest, EnvScaleDefaultsToOne) {
  unsetenv("REGIONS_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(envScale(), 1.0);
}

TEST_F(HarnessTest, EnvScaleParses) {
  setenv("REGIONS_BENCH_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(envScale(), 0.25);
  setenv("REGIONS_BENCH_SCALE", "bogus", 1);
  EXPECT_DOUBLE_EQ(envScale(), 1.0) << "garbage falls back to default";
  setenv("REGIONS_BENCH_SCALE", "-2", 1);
  EXPECT_DOUBLE_EQ(envScale(), 1.0) << "negative scale rejected";
}

TEST_F(HarnessTest, EnvRepeatsParses) {
  unsetenv("REGIONS_BENCH_REPEATS");
  EXPECT_EQ(envRepeats(), 3u);
  setenv("REGIONS_BENCH_REPEATS", "7", 1);
  EXPECT_EQ(envRepeats(), 7u);
  setenv("REGIONS_BENCH_REPEATS", "0", 1);
  EXPECT_EQ(envRepeats(), 3u) << "zero repeats rejected";
}

TEST_F(HarnessTest, DefaultOptionsHonourScale) {
  setenv("REGIONS_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(defaultOptions().Scale, 0.5);
}

TEST_F(HarnessTest, RunMedianReturnsValidResult) {
  WorkloadOptions Opt;
  Opt.Scale = 0.1;
  RunResult R = runMedian(WorkloadId::Tile, BackendKind::Lea, Opt, 3);
  EXPECT_TRUE(R.Ok);
  EXPECT_GT(R.Millis, 0.0);
  EXPECT_GT(R.TotalAllocs, 0u);
}

TEST_F(HarnessTest, RunMedianIsDeterministicInStats) {
  WorkloadOptions Opt;
  Opt.Scale = 0.1;
  RunResult A = runMedian(WorkloadId::Grobner, BackendKind::Bsd, Opt, 1);
  RunResult B = runMedian(WorkloadId::Grobner, BackendKind::Bsd, Opt, 3);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.TotalAllocs, B.TotalAllocs);
  EXPECT_EQ(A.OsBytes, B.OsBytes);
}

TEST_F(HarnessTest, TimeSplitComponentsAreConsistent) {
  WorkloadOptions Opt;
  Opt.Scale = 0.1;
  TimeSplit S = timeSplit(WorkloadId::Mudlle, BackendKind::Lea, Opt, 1);
  EXPECT_GT(S.TotalMs, 0.0);
  EXPECT_GT(S.BaseMs, 0.0);
  EXPECT_GE(S.MemoryMs, 0.0);
  EXPECT_LE(S.MemoryMs, S.TotalMs);
}

TEST_F(HarnessTest, WorkloadNamesAreStable) {
  EXPECT_STREQ(workloadName(WorkloadId::Cfrac), "cfrac");
  EXPECT_STREQ(workloadName(WorkloadId::Grobner), "grobner");
  EXPECT_STREQ(workloadName(WorkloadId::Mudlle), "mudlle");
  EXPECT_STREQ(workloadName(WorkloadId::Lcc), "lcc");
  EXPECT_STREQ(workloadName(WorkloadId::Tile), "tile");
  EXPECT_STREQ(workloadName(WorkloadId::Moss), "moss");
}

} // namespace
