//===- tests/RsanTest.cpp - rsan hardened-mode behaviour ------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Covers the rsan hardened debug mode (support/Harden.h): page
// quarantine, red-zone and size-header validation, checked region-
// pointer dereferences, and the interactions with the zero-tail page
// optimization and the buffered reference-count tags. The file compiles
// in every configuration; checks that need hardened metadata are gated
// on RGN_HARDEN_ENABLED, and checks that read poisoned bytes directly
// are additionally gated on !RGN_ASAN (ASan traps the read itself,
// which is the point of the integration but not of these assertions).
//
//===----------------------------------------------------------------------===//

#include "region/Debug.h"
#include "region/Parallel.h"
#include "region/Regions.h"
#include "support/PageSource.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

using namespace regions;

namespace {

struct Plain {
  explicit Plain(int V = 0) : Value(V) {}
  int Value;
};

struct Counted {
  explicit Counted(int V = 0) : Value(V) {}
  int Value;
  RegionPtr<Counted> Next;
};

struct Linked {
  SameRegionPtr<Linked> Next;
  int Value = 0;
};

[[maybe_unused]] std::uintptr_t pageOf(const void *P) {
  return reinterpret_cast<std::uintptr_t>(P) >> kPageShift;
}

//===----------------------------------------------------------------------===//
// Behaviour shared by every build: the zeroed-reuse regression
//===----------------------------------------------------------------------===//

// A page that went through deletion (and, under RGN_HARDEN, through the
// 0xD5-poisoned quarantine) must never satisfy a zeroed allocation with
// its stale contents: recycled pages always report dirty, so the zeroed
// paths must clear them. This is the regression the quarantine audit
// guards — a poisoned page handed out still flagged "zero to high
// water" would leak 0xD5 into rnewArray memory.
TEST(RsanReuse, ReusedDeletedPagesStillZeroForZeroedAllocs) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  for (int Round = 0; Round != 8; ++Round) {
    Region *R = Mgr.newRegion();
    // Dirty several str and normal pages thoroughly.
    for (int I = 0; I != 4; ++I) {
      char *Raw = static_cast<char *>(
          Mgr.allocRaw(R, RegionManager::maxRawAlloc()));
      std::memset(Raw, 0xAB, RegionManager::maxRawAlloc());
      rnew<Counted>(R, 0x7EADBEEF)->Next = nullptr;
    }
    ASSERT_TRUE(Mgr.deleteRegionRaw(R));
    // Force the quarantined pages (if any) back into circulation so the
    // next round reuses them instead of fresh frontier pages.
    Mgr.drainQuarantine();

    Region *Fresh = Mgr.newRegion();
    constexpr std::size_t N = 3000;
    auto *Ints = rnewArray<unsigned>(Fresh, N / sizeof(unsigned));
    for (std::size_t I = 0; I != N / sizeof(unsigned); ++I)
      ASSERT_EQ(Ints[I], 0u) << "round " << Round << " index " << I;
    auto *Bytes =
        static_cast<unsigned char *>(Mgr.allocRawZeroed(Fresh, N));
    for (std::size_t I = 0; I != N; ++I)
      ASSERT_EQ(Bytes[I], 0u) << "round " << Round << " byte " << I;
    ASSERT_TRUE(Mgr.deleteRegionRaw(Fresh));
    Mgr.drainQuarantine();
  }
}

#if !RGN_HARDEN_ENABLED

//===----------------------------------------------------------------------===//
// Unhardened builds: rsan must be completely inert
//===----------------------------------------------------------------------===//

TEST(RsanDisabled, NoQuarantineAndNoMetadata) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Mgr.setQuarantineBudget(256); // accepted, but freePages never uses it
  Region *R = Mgr.newRegion();
  rnew<Plain>(R, 1);
  RsanReport Rep = rsanCheckRegion(R);
  EXPECT_FALSE(Rep.Checked) << "no hardened metadata to check";
  EXPECT_TRUE(Rep.clean());
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Mgr.quarantinedPages(), 0u)
      << "unhardened freePages recycles immediately";
}

#else // RGN_HARDEN_ENABLED

//===----------------------------------------------------------------------===//
// PageSource quarantine mechanics
//===----------------------------------------------------------------------===//

TEST(RsanQuarantine, FreedRunsArePoisonedAndHeld) {
  PageSource Src(std::size_t{4} << 20);
  Src.setQuarantineBudget(8);
  void *P = Src.allocPages(1);
  std::memset(P, 0xAB, kPageSize);
  Src.freePages(P, 1);
  EXPECT_EQ(Src.quarantinedPages(), 1u);
#if !RGN_ASAN
  auto *Bytes = static_cast<const unsigned char *>(P);
  EXPECT_EQ(Bytes[0], 0xD5u);
  EXPECT_EQ(Bytes[kPageSize / 2], 0xD5u);
  EXPECT_EQ(Bytes[kPageSize - 1], 0xD5u);
#endif
  Src.drainQuarantine();
  EXPECT_EQ(Src.quarantinedPages(), 0u);
}

TEST(RsanQuarantine, BudgetEvictsOldestFirst) {
  PageSource Src(std::size_t{4} << 20);
  Src.setQuarantineBudget(2);
  void *A = Src.allocPages(1);
  void *B = Src.allocPages(1);
  void *C = Src.allocPages(1);
  Src.freePages(A, 1);
  Src.freePages(B, 1);
  EXPECT_EQ(Src.quarantinedPages(), 2u);
  Src.freePages(C, 1); // budget forces A — the oldest — out
  EXPECT_EQ(Src.quarantinedPages(), 2u);
  void *Reused = Src.allocPages(1);
  EXPECT_EQ(Reused, A) << "the evicted (oldest) run is the one recycled";
  // The evicted page must be writable again (ASan poison lifted) and
  // must report dirty, never zeroed.
  bool Zeroed = true;
  std::memset(Reused, 0, kPageSize);
  Src.freePages(Reused, 1);
  Src.setQuarantineBudget(0); // drains, then recycles directly
  void *Again = Src.allocPages(1, &Zeroed);
  EXPECT_FALSE(Zeroed) << "recycled pages never claim the zero state";
  std::memset(Again, 0x5A, kPageSize);
  Src.freePages(Again, 1);
}

TEST(RsanQuarantine, ShrinkingBudgetEvictsDown) {
  PageSource Src(std::size_t{4} << 20);
  Src.setQuarantineBudget(16);
  void *Runs[6];
  for (auto &R : Runs)
    R = Src.allocPages(1);
  for (auto *R : Runs)
    Src.freePages(R, 1);
  EXPECT_EQ(Src.quarantinedPages(), 6u);
  Src.setQuarantineBudget(3);
  EXPECT_EQ(Src.quarantinedPages(), 3u);
  // Oldest three went first: the next three singles come from the
  // recycle cache (LIFO), so the very next allocation is Runs[2].
  EXPECT_EQ(Src.allocPages(1), Runs[2]);
}

TEST(RsanQuarantine, EvictionCounterCountsEveryPath) {
  PageSource Src(std::size_t{4} << 20);
  Src.setQuarantineBudget(2);
  EXPECT_EQ(Src.quarantineEvictions(), 0u);
  void *Runs[4];
  for (auto &R : Runs)
    R = Src.allocPages(1);
  for (auto *R : Runs)
    Src.freePages(R, 1);
  // Four quarantined singles against a budget of two: two forced out.
  EXPECT_EQ(Src.quarantineEvictions(), 2u);
  Src.drainQuarantine();
  EXPECT_EQ(Src.quarantineEvictions(), 4u) << "drain evicts the rest";
  Src.resetForTesting();
  EXPECT_EQ(Src.quarantineEvictions(), 0u);
}

//===----------------------------------------------------------------------===//
// RegionManager-level quarantine
//===----------------------------------------------------------------------===//

TEST(RsanQuarantine, DeleteRegionQuarantinesItsPages) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *R = Mgr.newRegion();
  rnewArray<char>(R, 3 * kPageSize); // large object: a multi-page run
  rnew<Counted>(R, 1);
  EXPECT_EQ(Mgr.quarantinedPages(), 0u);
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_GE(Mgr.quarantinedPages(), 5u)
      << "region page + large run + str/normal pages all quarantined";
}

TEST(RsanQuarantine, DeletedRegionAddressNotReusedWhileQuarantined) {
  // The PendingCountBuffer tags deferred count adjustments with Region*
  // values and relies on deletion flushing before the pages recycle.
  // The quarantine widens that guarantee: while a dead region's page
  // sits quarantined, no new region can be carved from it, so a stale
  // tag can never alias a live region across the quarantine boundary.
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *Dead = Mgr.newRegion();
  const std::uintptr_t DeadPage = pageOf(Dead);
  ASSERT_TRUE(Mgr.deleteRegionRaw(Dead));
  ASSERT_GE(Mgr.quarantinedPages(), 1u);
  for (int I = 0; I != 16; ++I) {
    Region *N = Mgr.newRegion();
    EXPECT_NE(pageOf(N), DeadPage)
        << "quarantined page re-carved into a region while still poisoned";
    ASSERT_TRUE(Mgr.deleteRegionRaw(N));
    ASSERT_LE(Mgr.quarantinedPages(), detail::kRsanDefaultQuarantinePages)
        << "budget must bound the quarantine";
  }
}

TEST(RsanQuarantine, EvictedPagesServeNewRegionsCleanly) {
  // A tiny budget forces constant eviction; evicted pages must come
  // back fully usable (ASan poison lifted, contents simply dirty).
  RegionManager Mgr(SafetyConfig::safeConfig(), std::size_t{64} << 20);
  Mgr.setQuarantineBudget(4);
  for (int I = 0; I != 50; ++I) {
    rt::Frame F;
    rt::RegionHandle R = Mgr.newRegion();
    auto *Obj = rnew<Counted>(R.get(), I);
    Obj->Next = rnew<Counted>(R.get(), I + 1);
    char *S = rstrdup(R.get(), "quarantine churn");
    EXPECT_EQ(std::strcmp(S, "quarantine churn"), 0);
    EXPECT_TRUE(deleteRegion(R));
  }
  EXPECT_LE(Mgr.quarantinedPages(), 4u);
}

//===----------------------------------------------------------------------===//
// Red zones and metadata validation
//===----------------------------------------------------------------------===//

TEST(RsanValidate, CleanRegionReportsClean) {
  RegionManager Mgr(SafetyConfig::safeConfig(), std::size_t{64} << 20);
  rt::Frame F;
  rt::RegionHandle R = Mgr.newRegion();
  rnew<Plain>(R.get(), 1);                   // str object
  rnew<Counted>(R.get(), 2);                 // scanned object
  rnewArray<char>(R.get(), 2 * kPageSize);   // large object
  rnewArray<char>(R.get(), 0);               // zero-size: must not forge
                                             // the end-of-page marker
  rstrdup(R.get(), "canary");
  RsanReport Rep = rsanCheckRegion(R.get());
  EXPECT_TRUE(Rep.Checked);
  EXPECT_TRUE(Rep.clean());
  EXPECT_GE(Rep.ObjectsChecked, 5u);
  // Validation is non-destructive: everything still deletes cleanly.
  EXPECT_TRUE(deleteRegion(R));
}

#if !RGN_ASAN
// Under ASan the corrupting stores below are themselves trapped at the
// faulting instruction (the red zones are ASan-poisoned), which is the
// stronger diagnostic; these tests cover the plain-hardened build where
// the canary walk is what catches the damage.

TEST(RsanValidate, CheckRegionCountsRedZoneOverwrite) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *R = Mgr.newRegion();
  char *P = rnewArray<char>(R, 16);
  rnew<Plain>(R, 2);
  P[16] = 'X'; // one byte past the payload: first canary byte
  RsanReport Rep = rsanCheckRegion(R);
  EXPECT_TRUE(Rep.Checked);
  EXPECT_FALSE(Rep.clean());
  EXPECT_EQ(Rep.RedZoneViolations, 1u);
  EXPECT_EQ(Rep.MetadataViolations, 0u);
  // Repair the canary so teardown's fatal validation stays quiet.
  P[16] = static_cast<char>(detail::kRsanRedZoneCanary);
  EXPECT_TRUE(rsanCheckRegion(R).clean());
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
}

using RsanDeathTest = ::testing::Test;

TEST(RsanDeathTest, RedZoneOverflowFatalAtDelete) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *R = Mgr.newRegion();
  char *P = rnewArray<char>(R, 16); // str path
  P[16] = 'X';
  EXPECT_DEATH(Mgr.deleteRegionRaw(R), "red-zone canary overwritten");
}

TEST(RsanDeathTest, ScannedRedZoneOverflowFatalAtDelete) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *R = Mgr.newRegion();
  auto *Obj = rnew<Counted>(R, 7); // normal (scanned) path
  auto *Bytes = reinterpret_cast<char *>(Obj);
  Bytes[alignTo(sizeof(Counted), kDefaultAlignment)] = 'X';
  EXPECT_DEATH(Mgr.deleteRegionRaw(R), "red-zone canary overwritten");
}

TEST(RsanDeathTest, SizeHeaderCorruptionFatalAtDelete) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *R = Mgr.newRegion();
  char *P = rnewArray<char>(R, 16);
  // Clobber the tagged size word just before the payload.
  std::memset(P - detail::kRsanSizeHdr, 0xFE, sizeof(std::size_t));
  EXPECT_DEATH(Mgr.deleteRegionRaw(R), "size header corrupted");
}

#else // RGN_ASAN

TEST(RsanDeathTest, RedZoneOverflowTrappedByAsanAtTheStore) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *R = Mgr.newRegion();
  char *P = rnewArray<char>(R, 16);
  EXPECT_DEATH(P[16] = 'X', "AddressSanitizer");
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
}

#endif // RGN_ASAN

//===----------------------------------------------------------------------===//
// Checked dereferences and deletion diagnostics
//===----------------------------------------------------------------------===//

TEST(RsanDeathTest, StaleRegionPtrDereferenceFatal) {
  // Unsafe mode deletes unconditionally, exactly the configuration
  // where a stale pointer would otherwise be silent use-after-free.
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *R = Mgr.newRegion();
  RegionPtr<Plain> Stale = rnew<Plain>(R, 42);
  EXPECT_EQ(Stale->Value, 42) << "checked deref passes while live";
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_NE(Stale.get(), nullptr) << "unsafe deletion leaves the pointer";
  EXPECT_DEATH({ int V = Stale->Value; (void)V; },
               "dereferenced after its region was deleted");
}

TEST(RsanDeathTest, DoubleDeleteRegionFatal) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *R = Mgr.newRegion();
  Region *Saved = R;
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(R, nullptr);
  EXPECT_DEATH(Mgr.deleteRegionRaw(Saved), "not live");
}

TEST(RsanDeathTest, SameRegionPtrEscapeFatal) {
  RegionManager Mgr(SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
  Region *A = Mgr.newRegion();
  Region *B = Mgr.newRegion();
  Linked *InA = rnew<Linked>(A);
  Linked *InB = rnew<Linked>(B);
  InA->Next = InA; // intra-region: fine
  EXPECT_DEATH(InA->Next = InB, "SameRegionPtr");
  ASSERT_TRUE(Mgr.deleteRegionRaw(A));
  ASSERT_TRUE(Mgr.deleteRegionRaw(B));
}

//===----------------------------------------------------------------------===//
// Parallel extension: stale shared-region handles, hint mismatches
//===----------------------------------------------------------------------===//

TEST(RsanParallel, RetiredSharedRecordsAreNeverPooled) {
  // Under harden a successful tryDelete parks the record for good
  // instead of pooling it, so a stale SharedRegion* always finds a
  // record whose Deleted flag is still set — never the record's next
  // occupant. Without this, a pooled-and-reused record makes stale
  // addRef/tryDelete silently operate on an unrelated region.
  par::ParallelSpace Space;
  RegionManager Mgr(SafetyConfig::unsafeConfig());
  par::SharedRegion *S1 = Space.share(Mgr.newRegion());
  ASSERT_TRUE(Space.tryDelete(S1));
  par::SharedRegion *S2 = Space.share(Mgr.newRegion());
  EXPECT_NE(S1, S2) << "harden must not reuse retired records";
  ASSERT_TRUE(Space.tryDelete(S2));
  // Stale tryDelete on the retired record stays a silent no-op "false"
  // (losers of a legitimate delete race take this path); only count
  // adjustments are diagnosed fatally.
  EXPECT_FALSE(Space.tryDelete(S1));
}

TEST(RsanDeathTest, StaleSharedRegionHandleFatal) {
  // A count adjustment through a handle whose region was already
  // retired is the "pooled-and-reused record" bug in the making; with
  // pooling disabled the generation/Deleted state makes it detectable
  // deterministically.
  par::ParallelSpace Space;
  RegionManager Mgr(SafetyConfig::unsafeConfig());
  unsigned Tid = Space.registerThread();
  par::SharedRegion *S = Space.share(Mgr.newRegion());
  ASSERT_TRUE(Space.tryDelete(S));
  EXPECT_DEATH(Space.addRef(S, Tid), "retired SharedRegion");
  EXPECT_DEATH(Space.dropRef(S, Tid), "retired SharedRegion");
}

TEST(RsanDeathTest, SharedExchangeHintMismatchFatal) {
  // The hinted fast path asserts that whatever it displaces belongs to
  // the named region. A slot that actually carried another region's
  // value is exactly the cross-region race the resolving overload
  // exists for — harden re-resolves the displaced value and aborts.
  par::ParallelSpace Space;
  RegionManager Mgr(SafetyConfig::unsafeConfig());
  unsigned Tid = Space.registerThread();
  par::SharedRegion *SA = Space.share(Mgr.newRegion());
  par::SharedRegion *SB = Space.share(Mgr.newRegion());
  int *InA = rnew<int>(SA->region(), 1);
  std::atomic<int *> Slot{nullptr};
  Space.sharedExchange(Slot, InA, SA, Tid);
  EXPECT_DEATH(Space.sharedExchange<int>(Slot, nullptr, nullptr, SB, Tid),
               "hint names the wrong region");
  Space.sharedExchange<int>(Slot, nullptr, nullptr, Tid);
  ASSERT_TRUE(Space.tryDelete(SA));
  ASSERT_TRUE(Space.tryDelete(SB));
}

#endif // RGN_HARDEN_ENABLED

} // namespace
