//===- tests/AllocTest.cpp - malloc baseline tests ------------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Unit tests for each malloc baseline plus parameterized property tests
// that run a randomized alloc/free workload against every allocator and
// verify payload integrity, alignment, and statistics invariants.
//
//===----------------------------------------------------------------------===//

#include "alloc/BestFitAllocator.h"
#include "alloc/BumpAllocator.h"
#include "alloc/LeaAllocator.h"
#include "alloc/PowerOfTwoAllocator.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

using namespace regions;

namespace {

//===----------------------------------------------------------------------===//
// Allocator-specific unit tests
//===----------------------------------------------------------------------===//

TEST(PowerOfTwoTest, ChunkSizesRoundToPowers) {
  EXPECT_EQ(PowerOfTwoAllocator::chunkBytesFor(1), 16u);
  EXPECT_EQ(PowerOfTwoAllocator::chunkBytesFor(8), 16u);
  EXPECT_EQ(PowerOfTwoAllocator::chunkBytesFor(9), 32u);
  EXPECT_EQ(PowerOfTwoAllocator::chunkBytesFor(24), 32u);
  EXPECT_EQ(PowerOfTwoAllocator::chunkBytesFor(25), 64u);
  EXPECT_EQ(PowerOfTwoAllocator::chunkBytesFor(100), 128u);
  EXPECT_EQ(PowerOfTwoAllocator::chunkBytesFor(5000), 8192u);
}

TEST(PowerOfTwoTest, FreeThenAllocReusesChunk) {
  PowerOfTwoAllocator A(1 << 24);
  void *P = A.malloc(100);
  A.free(P);
  void *Q = A.malloc(100);
  EXPECT_EQ(P, Q) << "LIFO freelist reuse";
}

TEST(PowerOfTwoTest, DifferentBucketsDifferentChunks) {
  PowerOfTwoAllocator A(1 << 24);
  void *P = A.malloc(10);
  A.free(P);
  void *Q = A.malloc(2000); // different bucket: no reuse
  EXPECT_NE(P, Q);
}

TEST(PowerOfTwoTest, HighInternalFragmentation) {
  // 65-byte requests burn 128-byte chunks: OS use should be roughly 2x
  // the requested bytes, the paper's "very large memory overhead".
  PowerOfTwoAllocator A(1 << 26);
  constexpr int N = 10000;
  for (int I = 0; I < N; ++I)
    A.malloc(120); // +8 header -> 128 exactly? 120+8=128, pick 121
  PowerOfTwoAllocator B(1 << 26);
  for (int I = 0; I < N; ++I)
    B.malloc(121); // 121+8 = 129 -> 256-byte chunks
  EXPECT_GT(B.osBytes(), A.osBytes() * 3 / 2);
}

TEST(LeaTest, SplitsLargeChunks) {
  LeaAllocator A(1 << 24);
  void *P = A.malloc(10000);
  A.free(P);
  // A small allocation should carve from the freed chunk, not grow.
  std::size_t Os = A.osBytes();
  void *Q = A.malloc(100);
  EXPECT_EQ(A.osBytes(), Os);
  EXPECT_NE(Q, nullptr);
}

TEST(LeaTest, CoalescesNeighbours) {
  LeaAllocator A(1 << 24);
  // Allocate three adjacent blocks, free them all, then ask for their
  // combined size: coalescing must make that possible without growth.
  void *P1 = A.malloc(1000);
  void *P2 = A.malloc(1000);
  void *P3 = A.malloc(1000);
  // Plug the tail so the segment's wilderness doesn't serve the big
  // request by itself.
  void *Plug = A.malloc(32);
  (void)Plug;
  std::size_t Os = A.osBytes();
  A.free(P2);
  A.free(P1);
  A.free(P3);
  void *Big = A.malloc(2900);
  EXPECT_EQ(A.osBytes(), Os) << "coalesced neighbours must serve this";
  EXPECT_NE(Big, nullptr);
}

TEST(LeaTest, TightPackingOfSmallObjects) {
  // Lea should pack 24-byte objects at ~32 bytes per object, far
  // tighter than BSD's 32-byte chunks + page carving... comparable; the
  // interesting check: OS bytes stay within 2x of requested.
  LeaAllocator A(1 << 26);
  constexpr int N = 20000;
  for (int I = 0; I < N; ++I)
    A.malloc(24);
  // 24-byte requests occupy 40-byte chunks; allow one segment of slack.
  EXPECT_LT(A.osBytes(), std::size_t{40} * N + (1 << 20));
}

TEST(BestFitTest, BestFitPicksSmallestAdequate) {
  BestFitAllocator A(1 << 24);
  // Create free chunks of several sizes.
  void *Big = A.malloc(8000);
  void *G1 = A.malloc(32);
  void *Mid = A.malloc(2000);
  void *G2 = A.malloc(32);
  void *Small = A.malloc(500);
  void *G3 = A.malloc(32);
  A.free(Big);
  A.free(Mid);
  A.free(Small);
  // A 400-byte request best-fits the 500-byte hole.
  void *P = A.malloc(400);
  EXPECT_EQ(P, Small) << "best fit must choose the 500-byte hole";
  (void)G1;
  (void)G2;
  (void)G3;
}

TEST(BestFitTest, DuplicateSizesHandled) {
  BestFitAllocator A(1 << 24);
  std::vector<void *> Ps;
  for (int I = 0; I < 100; ++I)
    Ps.push_back(A.malloc(256));
  std::vector<void *> Guards;
  // Interleave guards so frees do not coalesce.
  for (int I = 0; I < 100; I += 2)
    std::swap(Ps[I], Ps[I]);
  for (int I = 0; I < 100; I += 2)
    A.free(Ps[I]);
  for (int I = 0; I < 100; I += 2)
    Ps[I] = A.malloc(256);
  for (int I = 1; I < 100; I += 2)
    A.free(Ps[I]);
  SUCCEED();
}

TEST(BumpTest, FreeIsNoOp) {
  BumpAllocator A(1 << 24);
  void *P = A.malloc(100);
  A.free(P);
  void *Q = A.malloc(100);
  EXPECT_NE(P, Q) << "bump never reuses";
}

//===----------------------------------------------------------------------===//
// Parameterized property tests over all baselines
//===----------------------------------------------------------------------===//

struct AllocatorFactory {
  const char *Name;
  std::function<std::unique_ptr<MallocInterface>()> Make;
};

class AllAllocatorsTest : public ::testing::TestWithParam<AllocatorFactory> {};

TEST_P(AllAllocatorsTest, BasicRoundTrip) {
  auto A = GetParam().Make();
  void *P = A->malloc(64);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x7f, 64);
  A->free(P);
}

TEST_P(AllAllocatorsTest, AlignmentAlwaysEightBytes) {
  auto A = GetParam().Make();
  Prng Rng(1);
  for (int I = 0; I < 500; ++I) {
    void *P = A->malloc(1 + Rng.nextBelow(300));
    EXPECT_TRUE(isAligned(P, kDefaultAlignment));
  }
}

TEST_P(AllAllocatorsTest, ZeroSizeAllocationIsValid) {
  auto A = GetParam().Make();
  void *P = A->malloc(0);
  EXPECT_NE(P, nullptr);
  A->free(P);
}

TEST_P(AllAllocatorsTest, FreeNullIsNoOp) {
  auto A = GetParam().Make();
  A->free(nullptr);
  EXPECT_EQ(A->stats().TotalFrees, 0u);
}

TEST_P(AllAllocatorsTest, StatsTrackRequests) {
  auto A = GetParam().Make();
  void *P = A->malloc(100);
  void *Q = A->malloc(200);
  EXPECT_EQ(A->stats().TotalAllocs, 2u);
  EXPECT_EQ(A->stats().TotalRequestedBytes, 300u);
  EXPECT_EQ(A->stats().LiveRequestedBytes, 300u);
  A->free(P);
  EXPECT_EQ(A->stats().LiveRequestedBytes, 200u);
  EXPECT_EQ(A->stats().MaxLiveRequestedBytes, 300u);
  A->free(Q);
  EXPECT_EQ(A->stats().LiveRequestedBytes, 0u);
}

TEST_P(AllAllocatorsTest, PayloadsDoNotOverlap) {
  auto A = GetParam().Make();
  Prng Rng(42);
  struct Block {
    unsigned char *Ptr;
    std::size_t Size;
    unsigned char Tag;
  };
  std::vector<Block> Live;
  for (int Step = 0; Step < 4000; ++Step) {
    if (Live.size() > 64 || (Rng.nextBool(0.4) && !Live.empty())) {
      std::size_t Victim = Rng.nextBelow(Live.size());
      Block B = Live[Victim];
      // Verify the whole payload still carries its tag.
      for (std::size_t I = 0; I < B.Size; ++I)
        ASSERT_EQ(B.Ptr[I], B.Tag) << "payload corrupted (overlap?)";
      A->free(B.Ptr);
      Live[Victim] = Live.back();
      Live.pop_back();
    } else {
      std::size_t Size = 1 + Rng.nextSkewed(0, 600);
      auto *P = static_cast<unsigned char *>(A->malloc(Size));
      ASSERT_NE(P, nullptr);
      auto Tag = static_cast<unsigned char>(1 + (Step % 251));
      std::memset(P, Tag, Size);
      Live.push_back({P, Size, Tag});
    }
  }
  for (const Block &B : Live) {
    for (std::size_t I = 0; I < B.Size; ++I)
      ASSERT_EQ(B.Ptr[I], B.Tag);
    A->free(B.Ptr);
  }
}

TEST_P(AllAllocatorsTest, LargeAllocations) {
  auto A = GetParam().Make();
  for (std::size_t Size : {std::size_t{5000}, std::size_t{70000},
                           std::size_t{1} << 20}) {
    auto *P = static_cast<char *>(A->malloc(Size));
    ASSERT_NE(P, nullptr);
    P[0] = 'a';
    P[Size - 1] = 'z';
    EXPECT_EQ(P[0], 'a');
    EXPECT_EQ(P[Size - 1], 'z');
    A->free(P);
  }
}

TEST_P(AllAllocatorsTest, ChurnDoesNotLeakOsMemory) {
  // Steady-state churn must reach a fixed point in OS usage.
  auto A = GetParam().Make();
  Prng Rng(7);
  std::vector<void *> Live;
  for (int Warm = 0; Warm < 20000; ++Warm) {
    if (Live.size() >= 128) {
      A->free(Live[Warm % Live.size()]);
      Live[Warm % Live.size()] = A->malloc(16 + Rng.nextBelow(200));
    } else {
      Live.push_back(A->malloc(16 + Rng.nextBelow(200)));
    }
  }
  std::size_t Os = A->osBytes();
  for (int Step = 0; Step < 20000; ++Step) {
    std::size_t I = Rng.nextBelow(Live.size());
    A->free(Live[I]);
    Live[I] = A->malloc(16 + Rng.nextBelow(200));
  }
  EXPECT_LE(A->osBytes(), Os + 64 * kPageSize)
      << "steady-state churn must not grow the heap unboundedly";
  for (void *P : Live)
    A->free(P);
}

TEST_P(AllAllocatorsTest, ManySizesStressWithVerification) {
  auto A = GetParam().Make();
  Prng Rng(1234);
  struct Block {
    std::uint64_t *Ptr;
    std::size_t Words;
    std::uint64_t Seed;
  };
  std::vector<Block> Live;
  auto Fill = [](Block &B) {
    for (std::size_t I = 0; I < B.Words; ++I)
      B.Ptr[I] = B.Seed ^ (I * 0x9e3779b97f4a7c15ULL);
  };
  auto Check = [](const Block &B) {
    for (std::size_t I = 0; I < B.Words; ++I)
      ASSERT_EQ(B.Ptr[I], B.Seed ^ (I * 0x9e3779b97f4a7c15ULL));
  };
  for (int Step = 0; Step < 3000; ++Step) {
    if (!Live.empty() && Rng.nextBool(0.45)) {
      std::size_t I = Rng.nextBelow(Live.size());
      Check(Live[I]);
      A->free(Live[I].Ptr);
      Live[I] = Live.back();
      Live.pop_back();
    } else {
      std::size_t Words = 1 + Rng.nextSkewed(0, 2000);
      Block B{static_cast<std::uint64_t *>(A->malloc(Words * 8)), Words,
              Rng.next()};
      ASSERT_NE(B.Ptr, nullptr);
      Fill(B);
      Live.push_back(B);
    }
  }
  for (Block &B : Live) {
    Check(B);
    A->free(B.Ptr);
  }
  EXPECT_EQ(A->stats().LiveRequestedBytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Baselines, AllAllocatorsTest,
    ::testing::Values(
        AllocatorFactory{"sun",
                         [] {
                           return std::make_unique<BestFitAllocator>(
                               std::size_t{1} << 28);
                         }},
        AllocatorFactory{"bsd",
                         [] {
                           return std::make_unique<PowerOfTwoAllocator>(
                               std::size_t{1} << 28);
                         }},
        AllocatorFactory{"lea",
                         [] {
                           return std::make_unique<LeaAllocator>(
                               std::size_t{1} << 28);
                         }}),
    [](const ::testing::TestParamInfo<AllocatorFactory> &Info) {
      return std::string(Info.param.Name);
    });

} // namespace
