//===- tests/PolyTest.cpp - Polynomial substrate tests --------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "poly/Poly.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

using namespace regions;

namespace {

struct HeapArena {
  ~HeapArena() {
    for (void *P : Blocks)
      std::free(P);
  }
  void *alloc(std::size_t N) {
    void *P = std::malloc(N ? N : 1);
    Blocks.push_back(P);
    return P;
  }
  std::vector<void *> Blocks;
};

struct PolyTest : ::testing::Test {
  HeapArena A;
  PolyBuilder<HeapArena> B{A};

  /// x_I as a polynomial.
  Poly var(unsigned I) { return B.monomial(1, Monomial::var(I)); }

  Poly randomPoly(Prng &Rng, unsigned Terms, unsigned Vars, unsigned MaxExp) {
    std::vector<Term> Raw;
    for (unsigned T = 0; T != Terms; ++T) {
      Term X;
      X.Coeff = 1 + static_cast<std::uint32_t>(
                        Rng.nextBelow(kFieldPrime - 1));
      unsigned Total = 0;
      for (unsigned V = 0; V != Vars; ++V) {
        X.Mono.Exp[V] = static_cast<std::uint8_t>(Rng.nextBelow(MaxExp + 1));
        Total += X.Mono.Exp[V];
      }
      X.Mono.Total = static_cast<std::uint8_t>(Total);
      Raw.push_back(X);
    }
    return B.normalize(Raw.data(), static_cast<std::uint32_t>(Raw.size()));
  }
};

//===----------------------------------------------------------------------===//
// Field arithmetic
//===----------------------------------------------------------------------===//

TEST(FieldTest, BasicOps) {
  EXPECT_EQ(fieldAdd(kFieldPrime - 1, 1), 0u);
  EXPECT_EQ(fieldSub(0, 1), kFieldPrime - 1);
  EXPECT_EQ(fieldMul(2, 3), 6u);
  EXPECT_EQ(fieldPow(2, 10), 1024u);
}

TEST(FieldTest, InverseIsInverse) {
  Prng Rng(1);
  for (int I = 0; I < 500; ++I) {
    auto V = 1 + static_cast<std::uint32_t>(Rng.nextBelow(kFieldPrime - 1));
    EXPECT_EQ(fieldMul(V, fieldInv(V)), 1u);
  }
}

//===----------------------------------------------------------------------===//
// Monomials
//===----------------------------------------------------------------------===//

TEST(MonomialTest, TimesAndDivides) {
  Monomial X = Monomial::var(0, 2);
  Monomial Y = Monomial::var(1, 3);
  Monomial P = X.times(Y);
  EXPECT_EQ(P.Total, 5);
  EXPECT_TRUE(X.divides(P));
  EXPECT_TRUE(Y.divides(P));
  EXPECT_FALSE(P.divides(X));
  EXPECT_TRUE(P.dividedBy(X).equals(Y));
}

TEST(MonomialTest, LcmAndCoprime) {
  Monomial X = Monomial::var(0, 2);
  Monomial Y = Monomial::var(0, 1).times(Monomial::var(1, 1));
  Monomial L = X.lcmWith(Y);
  EXPECT_EQ(L.Exp[0], 2);
  EXPECT_EQ(L.Exp[1], 1);
  EXPECT_FALSE(X.coprimeWith(Y));
  EXPECT_TRUE(X.coprimeWith(Monomial::var(2)));
}

TEST(MonomialTest, GrevlexOrder) {
  // Total degree dominates.
  EXPECT_LT(monomialCompare(Monomial::var(0, 1), Monomial::var(1, 2)), 0);
  // Same degree: x0^2 > x0*x1 > x1^2 under grevlex.
  Monomial X2 = Monomial::var(0, 2);
  Monomial XY = Monomial::var(0).times(Monomial::var(1));
  Monomial Y2 = Monomial::var(1, 2);
  EXPECT_GT(monomialCompare(X2, XY), 0);
  EXPECT_GT(monomialCompare(XY, Y2), 0);
  EXPECT_EQ(monomialCompare(XY, XY), 0);
}

//===----------------------------------------------------------------------===//
// Polynomial arithmetic
//===----------------------------------------------------------------------===//

TEST_F(PolyTest, NormalizeSortsAndCombines) {
  Term Raw[3];
  Raw[0] = {5, Monomial::var(1)};
  Raw[1] = {7, Monomial::var(0)};
  Raw[2] = {kFieldPrime - 5, Monomial::var(1)}; // cancels Raw[0]
  Poly P = B.normalize(Raw, 3);
  ASSERT_EQ(P.NumTerms, 1u);
  EXPECT_EQ(P.lead().Coeff, 7u);
  EXPECT_TRUE(P.lead().Mono.equals(Monomial::var(0)));
}

TEST_F(PolyTest, AddSubRoundTrip) {
  Prng Rng(2);
  for (int I = 0; I < 100; ++I) {
    Poly X = randomPoly(Rng, 8, 4, 3);
    Poly Y = randomPoly(Rng, 8, 4, 3);
    Poly Z = B.sub(B.add(X, Y), Y);
    EXPECT_EQ(Z.hash(), X.hash());
  }
}

TEST_F(PolyTest, AddIsCommutative) {
  Prng Rng(3);
  for (int I = 0; I < 100; ++I) {
    Poly X = randomPoly(Rng, 6, 5, 2);
    Poly Y = randomPoly(Rng, 6, 5, 2);
    EXPECT_EQ(B.add(X, Y).hash(), B.add(Y, X).hash());
  }
}

TEST_F(PolyTest, MulDistributesOverAdd) {
  Prng Rng(4);
  for (int I = 0; I < 50; ++I) {
    Poly X = randomPoly(Rng, 4, 3, 2);
    Poly Y = randomPoly(Rng, 4, 3, 2);
    Poly Z = randomPoly(Rng, 4, 3, 2);
    Poly L = B.mul(X, B.add(Y, Z));
    Poly R = B.add(B.mul(X, Y), B.mul(X, Z));
    EXPECT_EQ(L.hash(), R.hash());
  }
}

TEST_F(PolyTest, MulTermMatchesMul) {
  Prng Rng(5);
  for (int I = 0; I < 50; ++I) {
    Poly X = randomPoly(Rng, 5, 4, 2);
    Monomial M = Monomial::var(1, 2);
    Poly L = B.mulTerm(X, 7, M);
    Poly R = B.mul(X, B.monomial(7, M));
    EXPECT_EQ(L.hash(), R.hash());
  }
}

TEST_F(PolyTest, MakeMonicNormalizesLead) {
  Prng Rng(6);
  Poly X = randomPoly(Rng, 6, 4, 3);
  Poly M = B.makeMonic(X);
  EXPECT_EQ(M.lead().Coeff, 1u);
  // Scaling back gives the original.
  Poly Back = B.mulTerm(M, X.lead().Coeff, Monomial::one());
  EXPECT_EQ(Back.hash(), X.hash());
}

TEST_F(PolyTest, SPolyCancelsLeads) {
  Prng Rng(7);
  for (int I = 0; I < 50; ++I) {
    Poly X = randomPoly(Rng, 5, 4, 2);
    Poly Y = randomPoly(Rng, 5, 4, 2);
    if (X.isZero() || Y.isZero())
      continue;
    Poly S = B.sPoly(X, Y);
    if (S.isZero())
      continue;
    Monomial L = X.lead().Mono.lcmWith(Y.lead().Mono);
    EXPECT_LT(monomialCompare(S.lead().Mono, L), 0)
        << "S-polynomial lead must cancel the lcm";
  }
}

TEST_F(PolyTest, ReduceByDivisorGivesZero) {
  Prng Rng(8);
  for (int I = 0; I < 50; ++I) {
    Poly G = B.makeMonic(randomPoly(Rng, 4, 3, 2));
    if (G.isZero())
      continue;
    Poly Q = randomPoly(Rng, 3, 3, 2);
    Poly F = B.mul(G, Q);
    Poly Basis[1] = {G};
    Poly R = B.reduce(F, Basis, 1);
    EXPECT_TRUE(R.isZero()) << "multiple of G must reduce to zero mod {G}";
  }
}

TEST_F(PolyTest, ReduceLeavesIrreducible) {
  // x0 is irreducible modulo {x1}.
  Poly F = var(0);
  Poly Basis[1] = {var(1)};
  Poly R = B.reduce(F, Basis, 1);
  EXPECT_EQ(R.hash(), F.hash());
}

TEST_F(PolyTest, ReduceCountsSteps) {
  Poly G = var(0);
  Poly F = B.add(B.mul(var(0), var(0)), var(0)); // x0^2 + x0
  Poly Basis[1] = {G};
  std::uint64_t Steps = 0;
  Poly R = B.reduce(F, Basis, 1, &Steps);
  EXPECT_TRUE(R.isZero());
  EXPECT_EQ(Steps, 2u);
}

TEST_F(PolyTest, RenderReadable) {
  Poly P = B.add(B.monomial(3, Monomial::var(0, 2)), B.constant(7));
  EXPECT_EQ(B.render(P), "3*x0^2 + 7");
  EXPECT_EQ(B.render(B.zero()), "0");
}

TEST_F(PolyTest, HashDetectsDifferences) {
  Prng Rng(9);
  Poly X = randomPoly(Rng, 6, 4, 3);
  Poly Y = B.add(X, B.constant(1));
  EXPECT_NE(X.hash(), Y.hash());
  EXPECT_EQ(X.hash(), B.copy(X).hash());
}

} // namespace
