//===- tests/MetricsTest.cpp - rstat metrics, tracing, heap dumps ---------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Covers the rstat observability layer: MetricsSnapshot agreement with
// stats(), the size-class and lifetime histograms, JSON export, the
// event-trace ring buffer (arming, lazy attach, wrap-around drops,
// Chrome-trace export), and the heap introspection dump.
//
//===----------------------------------------------------------------------===//

#include "region/Metrics.h"
#include "region/Regions.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

using namespace regions;
using rt::Frame;
using rt::RegionHandle;

namespace {

struct MetricsTest : ::testing::Test {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
  void TearDown() override { rstat::disarmTracing(); }
};

//===----------------------------------------------------------------------===//
// Snapshot fidelity
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, SnapshotMatchesStatsExactly) {
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  for (int I = 0; I != 100; ++I)
    rnewArray<char>(A, 100);
  rnewArray<char>(B, 5000);
  EXPECT_TRUE(deleteRegion(B));

  const RegionStats &S = Mgr.stats();
  rgn::MetricsSnapshot M = Mgr.metrics();
  EXPECT_EQ(M.Stats.TotalAllocs, S.TotalAllocs);
  EXPECT_EQ(M.Stats.TotalRequestedBytes, S.TotalRequestedBytes);
  EXPECT_EQ(M.Stats.LiveRequestedBytes, S.LiveRequestedBytes);
  EXPECT_EQ(M.Stats.MaxLiveRequestedBytes, S.MaxLiveRequestedBytes);
  EXPECT_EQ(M.Stats.TotalRegions, S.TotalRegions);
  EXPECT_EQ(M.Stats.LiveRegions, S.LiveRegions);
  EXPECT_EQ(M.Stats.MaxLiveRegions, S.MaxLiveRegions);
  EXPECT_EQ(M.Stats.MaxRegionBytes, S.MaxRegionBytes);
  EXPECT_EQ(M.Stats.DeleteAttempts, S.DeleteAttempts);
  EXPECT_EQ(M.Stats.DeleteFailures, S.DeleteFailures);
  EXPECT_EQ(M.Stats.BarrierStores, S.BarrierStores);
  EXPECT_EQ(M.Stats.BarrierSameRegion, S.BarrierSameRegion);
  EXPECT_EQ(M.Stats.BarrierAdjustments, S.BarrierAdjustments);

  EXPECT_EQ(M.OsBytes, Mgr.osBytes());
  EXPECT_GE(M.FrontierPages * kPageSize, M.InUseBytes);
  EXPECT_TRUE(deleteRegion(A));
}

TEST_F(MetricsTest, HistogramsCoverEveryRegionOnce) {
  Frame F;
  RegionHandle Live = Mgr.newRegion();
  rnewArray<char>(Live, 3000); // live region, bucket 12 ([2048, 4096))
  for (int I = 0; I != 5; ++I) {
    RegionHandle R = Mgr.newRegion();
    rnewArray<char>(R, 100); // bucket 7 ([64, 128))
    EXPECT_TRUE(deleteRegion(R));
  }
  RegionHandle Empty = Mgr.newRegion();
  EXPECT_TRUE(deleteRegion(Empty)); // bucket 0 (no bytes requested)

  rgn::MetricsSnapshot M = Mgr.metrics();
  std::uint64_t TotalInHist = 0, LiveInHist = 0, LifetimesInHist = 0;
  for (unsigned I = 0; I != rgn::MetricsSnapshot::kLogBuckets; ++I) {
    TotalInHist += M.RegionSizeClasses[I];
    LiveInHist += M.LiveRegionSizeClasses[I];
    LifetimesInHist += M.RegionLifetimes[I];
  }
  EXPECT_EQ(TotalInHist, M.Stats.TotalRegions)
      << "every region ever created lands in exactly one size class";
  EXPECT_EQ(LiveInHist, M.Stats.LiveRegions);
  EXPECT_EQ(LifetimesInHist, M.Stats.TotalRegions - M.Stats.LiveRegions)
      << "every deleted region has exactly one lifetime";

  EXPECT_EQ(M.RegionSizeClasses[0], 1u) << "the empty region";
  EXPECT_EQ(M.RegionSizeClasses[7], 5u) << "the five 100-byte regions";
  EXPECT_EQ(M.LiveRegionSizeClasses[12], 1u) << "the live 3000-byte region";
  EXPECT_TRUE(deleteRegion(Live));
}

TEST_F(MetricsTest, LifetimeUsesLogicalClock) {
  Frame F;
  // A region deleted before any sibling is created: lifetime 1.
  RegionHandle Short = Mgr.newRegion();
  EXPECT_TRUE(deleteRegion(Short));
  rgn::MetricsSnapshot M = Mgr.metrics();
  EXPECT_EQ(M.RegionLifetimes[1], 1u) << "lifetime 1 lands in bucket 1";

  // A region that outlives 7 siblings: lifetime 8, bucket 4.
  RegionHandle Old = Mgr.newRegion();
  for (int I = 0; I != 7; ++I) {
    RegionHandle Sib = Mgr.newRegion();
    EXPECT_TRUE(deleteRegion(Sib));
  }
  EXPECT_TRUE(deleteRegion(Old));
  M = Mgr.metrics();
  EXPECT_EQ(M.RegionLifetimes[4], 1u) << "lifetime 8 lands in bucket 4";
}

TEST_F(MetricsTest, MetricsJsonRoundTripsThroughAFile) {
  Frame F;
  RegionHandle R = Mgr.newRegion();
  rnewArray<char>(R, 1000);
  rgn::MetricsSnapshot M = Mgr.metrics();

  std::string Path = ::testing::TempDir() + "rstat_metrics_test.json";
  ASSERT_TRUE(writeMetricsJson(M, Path.c_str()));
  std::FILE *In = std::fopen(Path.c_str(), "r");
  ASSERT_NE(In, nullptr);
  char Buf[8192];
  std::size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, In);
  std::fclose(In);
  std::remove(Path.c_str());
  Buf[N] = '\0';
  EXPECT_NE(std::strstr(Buf, "\"manager\""), nullptr);
  EXPECT_NE(std::strstr(Buf, "\"pageSource\""), nullptr);
  EXPECT_NE(std::strstr(Buf, "\"regionSizeClasses\""), nullptr);
  EXPECT_NE(std::strstr(Buf, "\"totalAllocs\": 1"), nullptr);
  EXPECT_FALSE(writeMetricsJson(M, "/nonexistent-dir/x.json"));
  EXPECT_TRUE(deleteRegion(R));
}

//===----------------------------------------------------------------------===//
// Event tracing
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, DisarmedTracingRecordsNothing) {
  ASSERT_FALSE(rstat::tracingArmed());
  Frame F;
  RegionHandle R = Mgr.newRegion();
  EXPECT_TRUE(deleteRegion(R));
  EXPECT_EQ(rstat::tracedEventCount(), 0u);
}

TEST_F(MetricsTest, ArmedTracingRecordsLifecycleEvents) {
  rstat::armTracing();
  EXPECT_TRUE(rstat::tracingArmed());
  Frame F;
  RegionHandle R = Mgr.newRegion();
  rnewArray<char>(R, 3 * kPageSize); // large object: its own run grab
  EXPECT_TRUE(deleteRegion(R));
  // newregion (+run-grab), large run-grab, two run-frees, deleteregion:
  // at least five events on this thread's ring.
  EXPECT_GE(rstat::tracedEventCount(), 5u);
  EXPECT_EQ(rstat::droppedEventCount(), 0u);

  std::string Path = ::testing::TempDir() + "rstat_trace_test.json";
  long Written = rstat::writeChromeTrace(Path.c_str());
  // Every buffered instant is written, plus one derived counter event
  // ("C" phase) per lifecycle instant that moves a heap-shape track.
  EXPECT_GE(static_cast<std::size_t>(Written), rstat::tracedEventCount());
  std::FILE *In = std::fopen(Path.c_str(), "r");
  ASSERT_NE(In, nullptr);
  char Buf[1 << 16];
  std::size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, In);
  std::fclose(In);
  std::remove(Path.c_str());
  Buf[N] = '\0';
  EXPECT_NE(std::strstr(Buf, "\"traceEvents\""), nullptr);
  EXPECT_NE(std::strstr(Buf, "\"newregion\""), nullptr);
  EXPECT_NE(std::strstr(Buf, "\"deleteregion\""), nullptr);
  EXPECT_NE(std::strstr(Buf, "\"run-free\""), nullptr);
  EXPECT_NE(std::strstr(Buf, "\"ph\":\"C\""), nullptr);
  EXPECT_NE(std::strstr(Buf, "\"live-regions\""), nullptr);
  EXPECT_NE(std::strstr(Buf, "\"live-bytes\""), nullptr);
  EXPECT_EQ(rstat::writeChromeTrace("/nonexistent-dir/x.json"), -1);
}

TEST_F(MetricsTest, RefusedDeletionTracesAsRefused) {
  rstat::armTracing();
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  struct Node {
    RegionPtr<Node> Next;
  };
  rnew<Node>(A)->Next = rnew<Node>(B);
  EXPECT_FALSE(deleteRegion(B));
  std::string Path = ::testing::TempDir() + "rstat_refused_test.json";
  rstat::writeChromeTrace(Path.c_str());
  std::FILE *In = std::fopen(Path.c_str(), "r");
  ASSERT_NE(In, nullptr);
  char Buf[1 << 16];
  std::size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, In);
  std::fclose(In);
  std::remove(Path.c_str());
  Buf[N] = '\0';
  EXPECT_NE(std::strstr(Buf, "deleteregion-refused"), nullptr);
}

TEST_F(MetricsTest, RingWrapCountsDrops) {
  rstat::armTracing(/*EventsPerThread=*/8);
  Frame F;
  // Each create/delete pair records >= 4 events; 8 pairs overflow an
  // 8-entry ring for sure.
  for (int I = 0; I != 8; ++I) {
    RegionHandle R = Mgr.newRegion();
    EXPECT_TRUE(deleteRegion(R));
  }
  EXPECT_EQ(rstat::tracedEventCount(), 8u) << "ring holds its capacity";
  EXPECT_GT(rstat::droppedEventCount(), 0u) << "overwrites are reported";
}

TEST_F(MetricsTest, WorkerThreadsAttachLazily) {
  rstat::armTracing();
  std::size_t Before = rstat::tracedEventCount();
  std::thread([] {
    // The worker's first manager attaches it to the open epoch.
    RegionManager Worker;
    Region *R = Worker.newRegion();
    Worker.deleteRegionRaw(R);
  }).join();
  EXPECT_GT(rstat::tracedEventCount(), Before)
      << "events recorded on an exited worker thread survive in its ring";
}

TEST_F(MetricsTest, DisarmStopsRecordingButKeepsEvents) {
  rstat::armTracing();
  Frame F;
  {
    RegionHandle R = Mgr.newRegion();
    EXPECT_TRUE(deleteRegion(R));
  }
  std::size_t Recorded = rstat::tracedEventCount();
  EXPECT_GT(Recorded, 0u);
  rstat::disarmTracing();
  {
    RegionHandle R = Mgr.newRegion();
    EXPECT_TRUE(deleteRegion(R));
  }
  EXPECT_EQ(rstat::tracedEventCount(), Recorded)
      << "disarmed threads stop recording; prior events stay exportable";
}

//===----------------------------------------------------------------------===//
// Heap introspection
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, DumpHeapListsLiveRegionsAndRuns) {
  Frame F;
  RegionHandle A = Mgr.newRegion();
  rnewArray<char>(A, 10000);                 // str pages + growth run
  rnewArray<char>(A, 3 * kPageSize);         // large block run
  std::string Path = ::testing::TempDir() + "rstat_dump_test.txt";
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  ASSERT_NE(Out, nullptr);
  Mgr.dumpHeap(Out);
  std::fclose(Out);
  std::FILE *In = std::fopen(Path.c_str(), "r");
  ASSERT_NE(In, nullptr);
  char Buf[1 << 16];
  std::size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, In);
  std::fclose(In);
  std::remove(Path.c_str());
  Buf[N] = '\0';
  EXPECT_NE(std::strstr(Buf, "1 live region(s)"), nullptr);
  EXPECT_NE(std::strstr(Buf, "rc=0"), nullptr);
  EXPECT_NE(std::strstr(Buf, "run 0"), nullptr);
  EXPECT_NE(std::strstr(Buf, "large block"), nullptr);
  EXPECT_TRUE(deleteRegion(A));
}

} // namespace
