//===- tests/BarrierCountingTest.cpp - Buffered counting semantics --------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// The write barrier batches its ±1 reference-count adjustments in a
// small per-thread buffer (coalescing repeated stores to the same
// regions) and defers its statistics to per-region counters. These
// tests pin the observable contract: counts and statistics read
// through the public API are exactly what unbuffered, eager counting
// would produce — in particular at every deletion decision, which is
// where the paper's safety rests.
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "region/Regions.h"

#include <gtest/gtest.h>

#include <thread>

using namespace regions;
using rt::Frame;
using rt::RegionHandle;

namespace {

struct Node {
  explicit Node(int V = 0) : Value(V) {}
  int Value;
  RegionPtr<Node> Next;
};

struct BarrierCountingTest : ::testing::Test {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
};

//===----------------------------------------------------------------------===//
// Buffered adjustments stay exact
//===----------------------------------------------------------------------===//

TEST_F(BarrierCountingTest, CountsExactAfterInterleavedCrossRegionStores) {
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  Node *InA = rnew<Node>(A, 1);
  Node *InB = rnew<Node>(B, 2);

  // Ping-pong a slot in A between values in A and B: every store to
  // InB is a +1 on B, every overwrite a -1, all landing in the
  // pending buffer and largely cancelling there.
  Node *Slot = rnew<Node>(A, 0);
  for (int I = 0; I != 1000; ++I)
    Slot->Next = (I % 2) ? InB : InA;
  // Final state: Slot->Next == InB, so B holds exactly one external
  // reference. referenceCount() flushes before reading.
  EXPECT_EQ(B->referenceCount(), 1);
  EXPECT_EQ(A->referenceCount(), 0) << "A's references are all internal";

  EXPECT_FALSE(deleteRegion(B)) << "live cross-region ref blocks deletion";
  Slot->Next = InA;
  EXPECT_EQ(B->referenceCount(), 0);
  EXPECT_TRUE(deleteRegion(B));
  EXPECT_TRUE(deleteRegion(A));
}

TEST_F(BarrierCountingTest, BufferOverflowSpillsWithoutLosingCounts) {
  // More distinct regions than the pending buffer has entries, all
  // adjusted back-to-back so the overflow path (direct rcAdd) runs.
  Frame F;
  constexpr int kRegions = 24; // PendingCountBuffer::kEntries is 8
  RegionHandle Home = Mgr.newRegion();
  Node *Holder[kRegions];
  RegionHandle Others[kRegions];
  for (int I = 0; I != kRegions; ++I) {
    Others[I] = Mgr.newRegion();
    Holder[I] = rnew<Node>(Home, I);
  }
  for (int I = 0; I != kRegions; ++I)
    Holder[I]->Next = rnew<Node>(Others[I], I);
  for (int I = 0; I != kRegions; ++I) {
    EXPECT_EQ(Others[I]->referenceCount(), 1) << "region " << I;
    EXPECT_FALSE(deleteRegion(Others[I]));
    Holder[I]->Next = nullptr;
    EXPECT_TRUE(deleteRegion(Others[I])) << "region " << I;
  }
  EXPECT_TRUE(deleteRegion(Home));
  EXPECT_EQ(Mgr.stats().DeleteFailures,
            static_cast<std::uint64_t>(kRegions));
}

TEST_F(BarrierCountingTest, DeletionInspectsPendingBufferFirst) {
  // The essence of flush-before-inspect: a single buffered +1 that has
  // not been applied to Region::RC yet must still veto deletion.
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  Node *InA = rnew<Node>(A, 1);
  // One cross-region store; the +1 for B sits in the pending buffer.
  InA->Next = rnew<Node>(B, 2);
  EXPECT_FALSE(deleteRegion(B))
      << "deletion must flush buffered adjustments before deciding";
  InA->Next = nullptr;
  EXPECT_TRUE(deleteRegion(B));
  EXPECT_TRUE(deleteRegion(A));
}

//===----------------------------------------------------------------------===//
// Deferred statistics equivalence
//===----------------------------------------------------------------------===//

TEST_F(BarrierCountingTest, DeferredStatsMatchEagerValues) {
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  Node *NA1 = rnew<Node>(A, 1);
  Node *NA2 = rnew<Node>(A, 2);
  Node *NB = rnew<Node>(B, 3);

  const RegionStats &Before = Mgr.stats();
  std::uint64_t Stores0 = Before.BarrierStores;
  std::uint64_t Same0 = Before.BarrierSameRegion;
  std::uint64_t Adj0 = Before.BarrierAdjustments;

  NA1->Next = NA2; // sameregion: 1 store, 1 sameregion, 0 adjustments
  NA1->Next = NB;  // cross: 1 store, 1 sameregion (slot in A, old in A),
                   //   1 adjustment (+1 B; old A == slot region, uncounted)
  NA1->Next = nullptr; // cross: 1 store, 0 sameregion (old in B, new
                       //   null, slot in A), 1 adjustment (-1 B)
  static RegionPtr<Node> Global;
  Global = NA1; // global slot: 1 store, 0 sameregion, 1 adjustment (+1 A)
  Global = nullptr; // 1 store, 0 sameregion, 1 adjustment (-1 A)

  const RegionStats &After = Mgr.stats();
  EXPECT_EQ(After.BarrierStores - Stores0, 5u);
  EXPECT_EQ(After.BarrierSameRegion - Same0, 2u);
  EXPECT_EQ(After.BarrierAdjustments - Adj0, 4u);

  EXPECT_EQ(A->referenceCount(), 0);
  EXPECT_EQ(B->referenceCount(), 0);
  EXPECT_TRUE(deleteRegion(B));
  EXPECT_TRUE(deleteRegion(A));
}

TEST_F(BarrierCountingTest, StatsFoldAtRegionDeletionToo) {
  // Deltas parked on a region must survive its deletion: fold into the
  // manager aggregate when the region dies, visible in stats() after.
  Frame F;
  std::uint64_t Stores0 = Mgr.stats().BarrierStores;
  RegionHandle A = Mgr.newRegion();
  Node *N1 = rnew<Node>(A, 1);
  N1->Next = rnew<Node>(A, 2); // sameregion store parked on A
  // Deletion runs N1's cleanup thunk, whose ~RegionPtr nulls Next —
  // one more barriered (sameregion) store, parked on A mid-deletion.
  EXPECT_TRUE(deleteRegion(A));
  EXPECT_EQ(Mgr.stats().BarrierStores - Stores0, 2u)
      << "deltas parked on a deleted region must not vanish";
}

//===----------------------------------------------------------------------===//
// Static sameregion elision
//===----------------------------------------------------------------------===//

TEST_F(BarrierCountingTest, SameRegionPtrCrossRegionStoreDies) {
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  struct Linked {
    SameRegionPtr<Linked> Next;
  };
  Linked *InA = rnew<Linked>(A);
  Linked *InB = rnew<Linked>(B);
  InA->Next = InA; // sameregion: fine
  // Unhardened builds die on the containment assert; RGN_HARDEN builds
  // report the escape through rsan's fatal diagnostic first.
  EXPECT_DEATH(InA->Next = InB, "SameRegionPtr");
  InA->Next = nullptr;
  EXPECT_TRUE(deleteRegion(B));
  EXPECT_TRUE(deleteRegion(A));
}

TEST_F(BarrierCountingTest, AssignKnownRegionCrossRegionValueDies) {
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  Node *InA = rnew<Node>(A, 1);
  Node *InB = rnew<Node>(B, 2);
  Node *Holder = rnew<Node>(A, 0);
  assignKnownRegion(Holder->Next, InA, A.get()); // genuine sameregion
  EXPECT_EQ(Holder->Next.get(), InA);
  EXPECT_DEATH(assignKnownRegion(Holder->Next, InB, A.get()),
               "new value must live in the claimed region");
  assignKnownRegion(Holder->Next, static_cast<Node *>(nullptr), A.get());
  EXPECT_TRUE(deleteRegion(B));
  EXPECT_TRUE(deleteRegion(A));
}

//===----------------------------------------------------------------------===//
// Thread exit drains the pending buffer
//===----------------------------------------------------------------------===//

TEST_F(BarrierCountingTest, ThreadExitFlushesBufferedIncrement) {
  // Regression test: a thread that exits holding a buffered +1 used to
  // lose it (the constinit buffer has no destructor), so this deletion
  // wrongly SUCCEEDED with InA->Next still pointing into B — the exact
  // use-after-free the counts exist to prevent.
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  Node *InA = rnew<Node>(A, 1);
  Node *InB = rnew<Node>(B, 2);
  std::thread([&] {
    // The +1 for B lands in THIS thread's pending buffer; nothing on
    // this thread ever inspects a count, so only the exit flusher can
    // deliver it.
    InA->Next = InB;
  }).join();
  EXPECT_EQ(B->referenceCount(), 1)
      << "buffered +1 from the exited thread was lost";
  EXPECT_FALSE(deleteRegion(B))
      << "cross-region reference stored by an exited thread must still "
         "veto deletion";
  InA->Next = nullptr;
  EXPECT_TRUE(deleteRegion(B));
  EXPECT_TRUE(deleteRegion(A));
}

TEST_F(BarrierCountingTest, ThreadExitFlushesBufferedDecrement) {
  // The mirror image: the exiting thread clears the reference, and its
  // buffered -1 must land or the deletion is refused forever (a leak).
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  Node *InA = rnew<Node>(A, 1);
  InA->Next = rnew<Node>(B, 2);
  EXPECT_EQ(B->referenceCount(), 1);
  std::thread([&] { InA->Next = nullptr; }).join();
  EXPECT_EQ(B->referenceCount(), 0)
      << "buffered -1 from the exited thread was lost";
  EXPECT_TRUE(deleteRegion(B))
      << "deletion must succeed once the exited thread's store cleared "
         "the last reference";
  EXPECT_TRUE(deleteRegion(A));
}

TEST_F(BarrierCountingTest, ManyExitingThreadsLeaveCountsExact) {
  // Thread churn with deltas that cancel across threads: every buffered
  // ±1 must survive its thread. Serial joins keep the store ordering
  // well-defined (each thread sees the previous one's stores).
  Frame F;
  RegionHandle A = Mgr.newRegion();
  RegionHandle B = Mgr.newRegion();
  constexpr int kThreads = 16;
  Node *Holders[kThreads];
  Node *InB = rnew<Node>(B, 0);
  for (int I = 0; I != kThreads; ++I)
    Holders[I] = rnew<Node>(A, I);
  for (int I = 0; I != kThreads; ++I)
    std::thread([&, I] {
      Holders[I]->Next = InB;              // +1 B
      if (I % 2)
        Holders[I]->Next = nullptr;        // -1 B, same thread
    }).join();
  EXPECT_EQ(B->referenceCount(), kThreads / 2);
  for (int I = 0; I != kThreads; I += 2)
    Holders[I]->Next = nullptr;
  EXPECT_EQ(B->referenceCount(), 0);
  EXPECT_TRUE(deleteRegion(B));
  EXPECT_TRUE(deleteRegion(A));
}

//===----------------------------------------------------------------------===//
// Parallel deletion flushes too
//===----------------------------------------------------------------------===//

TEST(ParallelBufferedCountingTest, TryDeleteFlushesPendingCounts) {
  // A safe-config manager behind a ParallelSpace: a buffered barrier
  // adjustment must be visible to tryDelete's inspection, and a refusal
  // by the owning manager must leave the shared record retryable
  // instead of aborting (the old path asserted).
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
  par::ParallelSpace Space;
  par::ThreadSlot Tid(Space);

  Region *Home = Mgr.newRegion();
  par::SharedRegion *SHome = Space.share(Home);
  Region *Target = Mgr.newRegion();
  par::SharedRegion *STarget = Space.share(Target);

  Node *Holder = rnew<Node>(Home, 0);
  // Cross-region store through the ordinary barrier: +1 on Target sits
  // in the calling thread's pending buffer.
  Holder->Next = rnew<Node>(Target, 1);
  EXPECT_FALSE(Space.tryDelete(STarget))
      << "manager-side count must veto shared deletion after flush";
  EXPECT_EQ(Space.liveSharedRegions(), 2u) << "refusal keeps the record";

  Holder->Next = nullptr;
  EXPECT_TRUE(Space.tryDelete(STarget)) << "retry succeeds once cleared";
  EXPECT_FALSE(Space.tryDelete(STarget)) << "second delete is a no-op";
  EXPECT_TRUE(Space.tryDelete(SHome));
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
}

TEST(ParallelBufferedCountingTest, UnregisterThreadBanksBalances) {
  // An exiting thread's local-count balances fold into the region's
  // detached count: sums (and so deletability) are unchanged, and the
  // freed slot index is reissued.
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  par::ParallelSpace Space;
  par::SharedRegion *S = Space.share(Mgr.newRegion());

  unsigned TidA = Space.registerThread();
  Space.addRef(S, TidA);
  Space.unregisterThread(TidA);
  EXPECT_EQ(S->totalCount(), 1) << "banked balance survives the exit";

  unsigned TidB = Space.registerThread();
  EXPECT_EQ(TidB, TidA) << "slot index is recycled";
  Space.dropRef(S, TidB);
  EXPECT_EQ(S->totalCount(), 0);
  EXPECT_TRUE(Space.tryDelete(S));
  Space.unregisterThread(TidB);
}

} // namespace
