//===- tests/WorkloadQualityTest.cpp - Semantic quality of workloads ------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// The workloads are real algorithms, not trace replays — these tests
// verify they actually do their jobs: cfrac finds the true factors,
// Buchberger produces a closed basis, TextTiling's boundaries land
// near the generator's ground truth, and winnowing ranks genuinely
// plagiarized document pairs above clean ones.
//
//===----------------------------------------------------------------------===//

#include "alloc/LeaAllocator.h"
#include "backend/Models.h"
#include "poly/Poly.h"
#include "text/TextGen.h"
#include "workloads/Cfrac.h"
#include "workloads/Grobner.h"
#include "workloads/Moss.h"
#include "workloads/Tile.h"

#include <gtest/gtest.h>

using namespace regions;
using namespace regions::workloads;

namespace {

struct WorkloadQualityTest : ::testing::Test {
  LeaAllocator A{std::size_t{1} << 28};
  DirectModel Mem{A};
};

//===----------------------------------------------------------------------===//
// cfrac: the factors must be the actual prime factors
//===----------------------------------------------------------------------===//

TEST_F(WorkloadQualityTest, CfracFindsTruePrimeFactor) {
  CfracOptions Opt;
  Opt.Decimal = "10967535067"; // 104729 * 104723
  Opt.FactorBaseSize = 30;
  CfracResult R = runCfrac(Mem, Opt);
  ASSERT_TRUE(R.Factored);
  EXPECT_TRUE(R.FactorLow64 == 104729 || R.FactorLow64 == 104723)
      << "got " << R.FactorLow64;
}

TEST_F(WorkloadQualityTest, CfracFindsFactorOfMediumSemiprime) {
  CfracOptions Opt;
  Opt.Decimal = "1041483498857"; // 1020379 * 1020683
  Opt.FactorBaseSize = 40;
  CfracResult R = runCfrac(Mem, Opt);
  ASSERT_TRUE(R.Factored);
  EXPECT_TRUE(R.FactorLow64 == 1020379 || R.FactorLow64 == 1020683)
      << "got " << R.FactorLow64;
}

TEST_F(WorkloadQualityTest, CfracHandlesPrimeTimesSmallPrime) {
  CfracOptions Opt;
  Opt.Decimal = "310"; // 2 * 5 * 31: a base prime divides N
  Opt.FactorBaseSize = 10;
  CfracResult R = runCfrac(Mem, Opt);
  ASSERT_TRUE(R.Factored);
  EXPECT_GT(R.FactorLow64, 1u);
  EXPECT_LT(R.FactorLow64, 310u);
  EXPECT_EQ(310u % R.FactorLow64, 0u) << "must be a true divisor";
}

TEST_F(WorkloadQualityTest, CfracPerfectSquare) {
  CfracOptions Opt;
  Opt.Decimal = "1524155677489"; // 1234567^2
  Opt.FactorBaseSize = 20;
  CfracResult R = runCfrac(Mem, Opt);
  ASSERT_TRUE(R.Factored);
  EXPECT_EQ(R.FactorLow64, 1234567u);
}

//===----------------------------------------------------------------------===//
// grobner: the returned basis must be closed under S-poly reduction
//===----------------------------------------------------------------------===//

TEST_F(WorkloadQualityTest, GrobnerBasisIsClosed) {
  // Re-run the algorithm, then independently check the Buchberger
  // criterion: every S-polynomial of basis pairs reduces to zero.
  GrobnerOptions Opt;
  Opt.NumPolys = 6;
  Opt.NumVars = 5;
  Opt.Seed = 9;

  [[maybe_unused]] DirectModel::Frame F;
  DirectModel::Token Scope = Mem.makeRegion();
  ScopedArena<DirectModel> Arena{Mem, Scope};
  PolyBuilder<ScopedArena<DirectModel>> B(Arena);

  // Recompute the basis with the library (small bound keeps it quick).
  std::vector<Poly> Basis;
  {
    std::vector<Poly> Gens = grobner_detail::generateSystem(B, Opt);
    for (Poly P : Gens) {
      Poly R = B.reduce(P, Basis.data(),
                        static_cast<std::uint32_t>(Basis.size()));
      if (!R.isZero())
        Basis.push_back(R);
    }
    bool Changed = true;
    int Guard = 0;
    while (Changed && ++Guard < 200) {
      Changed = false;
      for (std::size_t I = 0; I < Basis.size() && !Changed; ++I)
        for (std::size_t J = I + 1; J < Basis.size() && !Changed; ++J) {
          if (Basis[I].lead().Mono.coprimeWith(Basis[J].lead().Mono))
            continue;
          Poly S = B.sPoly(Basis[I], Basis[J]);
          Poly R = B.reduce(S, Basis.data(),
                            static_cast<std::uint32_t>(Basis.size()));
          if (!R.isZero()) {
            Basis.push_back(R);
            Changed = true;
          }
        }
    }
    ASSERT_LT(Guard, 200) << "basis computation did not converge";
  }

  // Independent closure check.
  for (std::size_t I = 0; I < Basis.size(); ++I)
    for (std::size_t J = I + 1; J < Basis.size(); ++J) {
      Poly S = B.sPoly(Basis[I], Basis[J]);
      Poly R = B.reduce(S, Basis.data(),
                        static_cast<std::uint32_t>(Basis.size()));
      ASSERT_TRUE(R.isZero())
          << "S-poly of basis elements " << I << "," << J
          << " does not reduce to zero: not a Groebner basis";
    }
  // And the generators themselves reduce to zero modulo the basis.
  std::vector<Poly> Gens = grobner_detail::generateSystem(B, Opt);
  for (Poly P : Gens)
    EXPECT_TRUE(B.reduce(P, Basis.data(),
                         static_cast<std::uint32_t>(Basis.size()))
                    .isZero());
}

//===----------------------------------------------------------------------===//
// tile: boundaries near the generator's ground truth
//===----------------------------------------------------------------------===//

TEST_F(WorkloadQualityTest, TileBoundariesTrackGroundTruth) {
  TileOptions Opt;
  Opt.NumDocs = 1;
  Opt.Text.Seed = 77;
  Opt.Text.NumSegments = 8;
  Opt.Text.SentencesPerSegment = 20;
  TileResult R = runTile(Mem, Opt);
  // The generator embeds NumSegments-1 = 7 true topic shifts; the
  // detector should recover roughly that many cuts. (TextTiling's
  // relative depth cutoff famously also fires on lexical noise, so we
  // bound rather than pin the count.)
  EXPECT_GE(R.TotalBoundaries, Opt.Text.NumSegments / 2)
      << "must recover a fair share of the 7 true boundaries";
  EXPECT_LE(R.TotalBoundaries, Opt.Text.NumSegments * 5 / 2)
      << "must not shatter the text into noise";
}

//===----------------------------------------------------------------------===//
// moss: plagiarized pairs must out-rank clean corpora
//===----------------------------------------------------------------------===//

TEST_F(WorkloadQualityTest, MossDetectsPlagiarizedCorpus) {
  MossOptions Dirty;
  Dirty.NumDocs = 20;
  Dirty.Sub.PlagiarismRate = 0.5;
  Dirty.Sub.Seed = 3;
  MossResult R1 = runMoss(Mem, Dirty);
  EXPECT_GT(R1.MatchingPairs, 0u);

  MossOptions Clean = Dirty;
  Clean.Sub.PlagiarismRate = 0.0; // document-private vocabularies only
  MossResult R2 = runMoss(Mem, Clean);
  EXPECT_EQ(R2.MatchingPairs, 0u)
      << "no shared fragments, no matching pairs";
  EXPECT_GT(R1.TotalMatches, R2.TotalMatches * 10 + 10);
}

TEST_F(WorkloadQualityTest, MossMatchesScaleWithPlagiarismRate) {
  std::uint64_t Last = 0;
  for (double Rate : {0.1, 0.4, 0.8}) {
    MossOptions Opt;
    Opt.NumDocs = 16;
    Opt.Sub.PlagiarismRate = Rate;
    Opt.Sub.Seed = 12;
    MossResult R = runMoss(Mem, Opt);
    EXPECT_GE(R.TotalMatches, Last)
        << "more plagiarism, more matches (rate " << Rate << ")";
    Last = R.TotalMatches;
  }
  EXPECT_GT(Last, 0u);
}

} // namespace
