//===- tests/EmulationTest.cpp - Region emulation library tests -----------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Direct tests of the §5.2 emulation library (region API implemented
// object-by-object over malloc/free).
//
//===----------------------------------------------------------------------===//

#include "alloc/BestFitAllocator.h"
#include "alloc/LeaAllocator.h"
#include "alloc/PowerOfTwoAllocator.h"
#include "emulation/EmulationRegions.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace regions;

namespace {

struct EmulationTest : ::testing::Test {
  LeaAllocator Malloc{std::size_t{1} << 26};
  EmulationRegionLib Lib{Malloc};
};

TEST_F(EmulationTest, NewRegionIsEmpty) {
  EmuRegion *R = Lib.newRegion();
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->NumObjects, 0u);
  EXPECT_EQ(R->RequestedBytes, 0u);
  Lib.deleteRegion(R);
  EXPECT_EQ(R, nullptr) << "handle nulled, like deleteregion";
}

TEST_F(EmulationTest, AllocatesUsableMemory) {
  EmuRegion *R = Lib.newRegion();
  auto *P = static_cast<char *>(Lib.alloc(R, 100));
  std::memset(P, 0x3c, 100);
  EXPECT_EQ(P[99], 0x3c);
  EXPECT_EQ(R->NumObjects, 1u);
  EXPECT_EQ(R->RequestedBytes, 100u);
  Lib.deleteRegion(R);
}

TEST_F(EmulationTest, DeleteFreesEveryObject) {
  EmuRegion *R = Lib.newRegion();
  for (int I = 0; I != 1000; ++I)
    Lib.alloc(R, 24);
  std::uint64_t AllocsBefore = Malloc.stats().TotalAllocs;
  Lib.deleteRegion(R);
  EXPECT_EQ(Malloc.stats().TotalFrees, AllocsBefore)
      << "every object plus the region record freed individually";
  EXPECT_EQ(Malloc.stats().LiveRequestedBytes, 0u);
}

TEST_F(EmulationTest, PerObjectOverheadIsEightBytes) {
  EmuRegion *R = Lib.newRegion();
  std::uint64_t Before = Lib.stats().ListOverheadBytes;
  for (int I = 0; I != 10; ++I)
    Lib.alloc(R, 50);
  EXPECT_EQ(Lib.stats().ListOverheadBytes - Before,
            10 * sizeof(EmuRegion::ObjHeader))
      << "the paper's noted list overhead: one word per object";
  Lib.deleteRegion(R);
}

TEST_F(EmulationTest, RegionStatsTrackLifecycle) {
  EmuRegion *A = Lib.newRegion();
  EmuRegion *B = Lib.newRegion();
  Lib.alloc(A, 100);
  Lib.alloc(B, 5000);
  EXPECT_EQ(Lib.stats().TotalRegions, 2u);
  EXPECT_EQ(Lib.stats().LiveRegions, 2u);
  EXPECT_EQ(Lib.stats().MaxLiveRegions, 2u);
  EXPECT_EQ(Lib.stats().MaxRegionBytes, 5000u);
  Lib.deleteRegion(A);
  EXPECT_EQ(Lib.stats().LiveRegions, 1u);
  Lib.deleteRegion(B);
  EXPECT_EQ(Lib.stats().LiveRegions, 0u);
}

TEST_F(EmulationTest, ManyRegionsChurn) {
  Prng Rng(5);
  for (int Round = 0; Round != 200; ++Round) {
    EmuRegion *R = Lib.newRegion();
    unsigned N = 1 + static_cast<unsigned>(Rng.nextBelow(50));
    for (unsigned I = 0; I != N; ++I) {
      auto *P = static_cast<unsigned char *>(
          Lib.alloc(R, 1 + Rng.nextSkewed(0, 400)));
      *P = static_cast<unsigned char>(Round);
    }
    EXPECT_EQ(R->NumObjects, N);
    Lib.deleteRegion(R);
  }
  EXPECT_EQ(Malloc.stats().LiveRequestedBytes, 0u);
  EXPECT_EQ(Lib.stats().LiveRegions, 0u);
}

TEST(EmulationOverAllocatorsTest, WorksOverEveryMalloc) {
  BestFitAllocator Sun(1 << 24);
  PowerOfTwoAllocator Bsd(1 << 24);
  LeaAllocator Lea(1 << 24);
  MallocInterface *Mallocs[] = {&Sun, &Bsd, &Lea};
  for (MallocInterface *M : Mallocs) {
    EmulationRegionLib Lib(*M);
    EmuRegion *R = Lib.newRegion();
    std::vector<char *> Ps;
    for (int I = 0; I != 100; ++I) {
      auto *P = static_cast<char *>(Lib.alloc(R, 64));
      std::memset(P, I, 64);
      Ps.push_back(P);
    }
    for (int I = 0; I != 100; ++I)
      ASSERT_EQ(Ps[static_cast<unsigned>(I)][63], static_cast<char>(I))
          << M->name();
    Lib.deleteRegion(R);
    EXPECT_EQ(M->stats().LiveRequestedBytes, 0u) << M->name();
  }
}

} // namespace
