//===- tests/RegionTest.cpp - Region allocator tests ----------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Covers the §4.1 allocator: bump allocation, the normal/str split,
// page management, regionOf, large objects, statistics and cleanup
// (finalization) behaviour. Safety (reference-count) semantics are in
// RegionSafetyTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "region/Regions.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

using namespace regions;

namespace {

/// Non-trivially-destructible type that records destruction.
struct Tracked {
  explicit Tracked(int *Counter = nullptr) : Counter(Counter) {}
  ~Tracked() {
    if (Counter)
      ++*Counter;
  }
  int *Counter;
  int Payload[4] = {};
};

struct RegionTest : ::testing::Test {
  RegionTest() {
    // These tests assert immediate page recycling; disable the rsan
    // quarantine (a no-op in unhardened builds) so deleted regions'
    // pages reach the free lists right away.
    Mgr.setQuarantineBudget(0);
  }
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
};

TEST_F(RegionTest, NewRegionIsEmpty) {
  Region *R = Mgr.newRegion();
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->allocCount(), 0u);
  EXPECT_EQ(R->requestedBytes(), 0u);
  EXPECT_EQ(R->referenceCount(), 0);
  EXPECT_EQ(&R->manager(), &Mgr);
}

TEST_F(RegionTest, TrivialAllocationsComeFromStrAllocator) {
  Region *R = Mgr.newRegion();
  int *A = rnew<int>(R, 41);
  int *B = rnew<int>(R, 42);
  EXPECT_EQ(*A, 41);
  EXPECT_EQ(*B, 42);
  EXPECT_EQ(R->allocCount(), 2u);
  EXPECT_EQ(R->requestedBytes(), 2 * sizeof(int));
}

TEST_F(RegionTest, AllocationsAreAligned) {
  Region *R = Mgr.newRegion();
  for (int I = 0; I < 50; ++I) {
    void *P = Mgr.allocRaw(R, 1 + (I % 13));
    EXPECT_TRUE(isAligned(P, kDefaultAlignment));
    void *Q = Mgr.allocScanned(R, 1 + (I % 13), detail::scanThunk<Tracked>);
    EXPECT_TRUE(isAligned(Q, kDefaultAlignment));
  }
}

TEST_F(RegionTest, RegionOfResolvesAllocations) {
  Region *R1 = Mgr.newRegion();
  Region *R2 = Mgr.newRegion();
  int *A = rnew<int>(R1, 1);
  int *B = rnew<int>(R2, 2);
  EXPECT_EQ(regionOf(A), R1);
  EXPECT_EQ(regionOf(B), R2);
  // Interior pointers resolve too.
  auto *Arr = rnewArray<int>(R1, 100);
  EXPECT_EQ(regionOf(Arr + 57), R1);
}

TEST_F(RegionTest, RegionOfRegionStructIsItself) {
  Region *R = Mgr.newRegion();
  EXPECT_EQ(regionOf(R), R);
}

TEST_F(RegionTest, RegionOfStackAndGlobalIsNull) {
  int Local = 0;
  static int Global = 0;
  EXPECT_EQ(regionOf(&Local), nullptr);
  EXPECT_EQ(regionOf(&Global), nullptr);
  EXPECT_EQ(regionOf(nullptr), nullptr);
}

TEST_F(RegionTest, ScannedMemoryIsZeroed) {
  // A do-nothing cleanup for raw 64-byte blobs we deliberately scribble.
  ScanThunk BlobThunk = [](void *) -> std::size_t { return 64; };
  Region *R = Mgr.newRegion();
  // Fill pages, free the region, allocate again: recycled page content
  // must still come back zeroed for scanned allocations.
  for (int I = 0; I < 100; ++I) {
    auto *P = static_cast<unsigned char *>(Mgr.allocScanned(R, 64, BlobThunk));
    for (int J = 0; J < 64; ++J)
      EXPECT_EQ(P[J], 0u);
    std::memset(P, 0xee, 64);
  }
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  Region *R2 = Mgr.newRegion();
  for (int I = 0; I < 100; ++I) {
    auto *P = static_cast<unsigned char *>(Mgr.allocScanned(R2, 64,
                                                            BlobThunk));
    for (int J = 0; J < 64; ++J)
      EXPECT_EQ(P[J], 0u) << "recycled page leaked content";
  }
}

TEST_F(RegionTest, ManySmallAllocationsSpanPages) {
  Region *R = Mgr.newRegion();
  std::set<std::uintptr_t> Pages;
  for (int I = 0; I < 4000; ++I) {
    void *P = rnew<long>(R, I);
    Pages.insert(reinterpret_cast<std::uintptr_t>(P) >> kPageShift);
  }
  EXPECT_GT(Pages.size(), 4u) << "4000 longs cannot fit in four pages";
  for (void *P : {static_cast<void *>(R)})
    EXPECT_EQ(regionOf(P), R);
}

TEST_F(RegionTest, PageSlackIsWastedNotReused) {
  // The paper: "If an object does not fit in the space remaining at the
  // end of a page that space is wasted." Allocate two objects that
  // cannot share a page and check they land on different pages.
  Region *R = Mgr.newRegion();
  void *A = Mgr.allocRaw(R, 3000);
  void *B = Mgr.allocRaw(R, 3000);
  EXPECT_NE(reinterpret_cast<std::uintptr_t>(A) >> kPageShift,
            reinterpret_cast<std::uintptr_t>(B) >> kPageShift);
}

TEST_F(RegionTest, DeleteReturnsPagesForReuse) {
  Region *R = Mgr.newRegion();
  for (int I = 0; I < 1000; ++I)
    rnew<long>(R, I);
  std::size_t Os = Mgr.osBytes();
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(R, nullptr);
  Region *R2 = Mgr.newRegion();
  for (int I = 0; I < 1000; ++I)
    rnew<long>(R2, I);
  EXPECT_EQ(Mgr.osBytes(), Os) << "second region must reuse freed pages";
}

TEST_F(RegionTest, RegionOfFreedPagesIsNull) {
  Region *R = Mgr.newRegion();
  int *A = rnew<int>(R, 7);
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(regionOf(A), nullptr);
}

TEST_F(RegionTest, CacheOffsetsCycle) {
  // §4.1: successive regions are offset by 64 bytes in their first
  // page, up to 512, to avoid cache conflicts between region structs.
  std::vector<Region *> Regions;
  std::set<std::uintptr_t> OffsetsSeen;
  for (int I = 0; I < 9; ++I) {
    Region *R = Mgr.newRegion();
    Regions.push_back(R);
    OffsetsSeen.insert(reinterpret_cast<std::uintptr_t>(R) & (kPageSize - 1));
  }
  EXPECT_EQ(OffsetsSeen.size(), 9u) << "nine distinct 64-byte offsets";
  for (std::uintptr_t Off : OffsetsSeen)
    EXPECT_EQ((Off - *OffsetsSeen.begin()) % 64, 0u);
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

TEST_F(RegionTest, TrivialArrayIsZeroInitialized) {
  Region *R = Mgr.newRegion();
  int *A = rnewArray<int>(R, 256);
  for (int I = 0; I < 256; ++I)
    EXPECT_EQ(A[I], 0);
}

TEST_F(RegionTest, NonTrivialArrayRunsAllDestructors) {
  Region *R = Mgr.newRegion();
  int Count = 0;
  Tracked *A = rnewArray<Tracked>(R, 37);
  for (int I = 0; I < 37; ++I)
    A[I].Counter = &Count;
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Count, 37);
}

TEST_F(RegionTest, EmptyArrayIsValid) {
  Region *R = Mgr.newRegion();
  int *A = rnewArray<int>(R, 0);
  EXPECT_NE(A, nullptr);
  Tracked *B = rnewArray<Tracked>(R, 0);
  EXPECT_NE(B, nullptr);
  EXPECT_TRUE(Mgr.deleteRegionRaw(R));
}

//===----------------------------------------------------------------------===//
// Strings
//===----------------------------------------------------------------------===//

TEST_F(RegionTest, StrdupCopies) {
  Region *R = Mgr.newRegion();
  const char *Src = "hello regions";
  char *Copy = rstrdup(R, Src);
  EXPECT_STREQ(Copy, Src);
  EXPECT_NE(Copy, Src);
  EXPECT_EQ(regionOf(Copy), R);
}

TEST_F(RegionTest, StrndupTruncatesAndTerminates) {
  Region *R = Mgr.newRegion();
  char *Copy = rstrndup(R, "abcdef", 3);
  EXPECT_STREQ(Copy, "abc");
}

//===----------------------------------------------------------------------===//
// Large objects (extension past the paper's one-page prototype limit)
//===----------------------------------------------------------------------===//

TEST_F(RegionTest, LargeRawAllocation) {
  Region *R = Mgr.newRegion();
  std::size_t Size = 3 * kPageSize + 100;
  auto *P = static_cast<char *>(Mgr.allocRaw(R, Size));
  std::memset(P, 0x5a, Size);
  EXPECT_EQ(regionOf(P), R);
  EXPECT_EQ(regionOf(P + Size - 1), R);
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
}

TEST_F(RegionTest, LargeScannedAllocationRunsCleanup) {
  Region *R = Mgr.newRegion();
  int Count = 0;
  // An object bigger than a page with a destructor.
  struct Big {
    ~Big() {
      if (Counter)
        ++*Counter;
    }
    int *Counter = nullptr;
    char Bulk[2 * kPageSize];
  };
  auto *B = rnew<Big>(R);
  B->Counter = &Count;
  EXPECT_EQ(regionOf(B), R);
  EXPECT_EQ(regionOf(B->Bulk + sizeof(B->Bulk) - 1), R);
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Count, 1);
}

TEST_F(RegionTest, LargeTrivialArray) {
  Region *R = Mgr.newRegion();
  std::size_t N = 10000;
  auto *A = rnewArray<std::uint64_t>(R, N);
  for (std::size_t I = 0; I < N; ++I)
    A[I] = I;
  for (std::size_t I = 0; I < N; ++I)
    ASSERT_EQ(A[I], I);
  EXPECT_EQ(regionOf(A + N - 1), R);
}

TEST_F(RegionTest, LargePagesFreedOnDelete) {
  Region *R = Mgr.newRegion();
  Mgr.allocRaw(R, 10 * kPageSize);
  Mgr.allocRaw(R, 10 * kPageSize);
  std::size_t Os = Mgr.osBytes();
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  Region *R2 = Mgr.newRegion();
  Mgr.allocRaw(R2, 10 * kPageSize);
  Mgr.allocRaw(R2, 10 * kPageSize);
  EXPECT_LE(Mgr.osBytes(), Os + 2 * kPageSize)
      << "large runs must be recycled";
}

//===----------------------------------------------------------------------===//
// Cleanup / finalization
//===----------------------------------------------------------------------===//

TEST_F(RegionTest, CleanupRunsExactlyOncePerObject) {
  Region *R = Mgr.newRegion();
  int Count = 0;
  for (int I = 0; I < 500; ++I)
    rnew<Tracked>(R, &Count);
  EXPECT_EQ(Count, 0) << "no finalization before deletion";
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Count, 500);
}

TEST_F(RegionTest, CleanupSkippedWhenDisabled) {
  RegionManager Unsafe{SafetyConfig::unsafeConfig(), std::size_t{16} << 20};
  Region *R = Unsafe.newRegion();
  int Count = 0;
  rnew<Tracked>(R, &Count);
  ASSERT_TRUE(Unsafe.deleteRegionRaw(R));
  EXPECT_EQ(Count, 0) << "unsafe regions do not scan on delete";
}

TEST_F(RegionTest, MixedAllocatorsCleanupOnlyScanned) {
  Region *R = Mgr.newRegion();
  int Count = 0;
  for (int I = 0; I < 64; ++I) {
    rnew<Tracked>(R, &Count); // scanned
    rnew<std::uint64_t>(R, 0); // str side, no cleanup
    rstrdup(R, "some string data");
  }
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Count, 64);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST_F(RegionTest, StatsCountAllocations) {
  Region *R = Mgr.newRegion();
  rnew<int>(R, 1);
  rnewArray<int>(R, 10);
  rstrdup(R, "abc");
  const RegionStats &S = Mgr.stats();
  EXPECT_EQ(S.TotalAllocs, 3u);
  EXPECT_EQ(S.TotalRequestedBytes, sizeof(int) + 10 * sizeof(int) + 4);
}

TEST_F(RegionTest, StatsTrackRegionLifecycle) {
  Region *A = Mgr.newRegion();
  Region *B = Mgr.newRegion();
  EXPECT_EQ(Mgr.stats().LiveRegions, 2u);
  EXPECT_EQ(Mgr.stats().MaxLiveRegions, 2u);
  ASSERT_TRUE(Mgr.deleteRegionRaw(A));
  EXPECT_EQ(Mgr.stats().LiveRegions, 1u);
  EXPECT_EQ(Mgr.stats().MaxLiveRegions, 2u);
  EXPECT_EQ(Mgr.stats().TotalRegions, 2u);
  ASSERT_TRUE(Mgr.deleteRegionRaw(B));
  EXPECT_EQ(Mgr.liveRegionCount(), 0u);
}

TEST_F(RegionTest, StatsTrackLiveBytesHighWater) {
  Region *A = Mgr.newRegion();
  rnewArray<char>(A, 10000);
  EXPECT_EQ(Mgr.stats().LiveRequestedBytes, 10000u);
  ASSERT_TRUE(Mgr.deleteRegionRaw(A));
  EXPECT_EQ(Mgr.stats().LiveRequestedBytes, 0u);
  EXPECT_EQ(Mgr.stats().MaxLiveRequestedBytes, 10000u);
}

TEST_F(RegionTest, StatsTrackMaxRegionBytes) {
  Region *A = Mgr.newRegion();
  Region *B = Mgr.newRegion();
  rnewArray<char>(A, 100);
  rnewArray<char>(B, 5000);
  EXPECT_EQ(Mgr.stats().MaxRegionBytes, 5000u);
}

//===----------------------------------------------------------------------===//
// Manager isolation
//===----------------------------------------------------------------------===//

TEST_F(RegionTest, TwoManagersAreIndependent) {
  RegionManager Other{SafetyConfig::safeConfig(), std::size_t{16} << 20};
  Region *A = Mgr.newRegion();
  Region *B = Other.newRegion();
  int *PA = rnew<int>(A, 1);
  int *PB = rnew<int>(B, 2);
  EXPECT_EQ(regionOf(PA), A);
  EXPECT_EQ(regionOf(PB), B);
  EXPECT_EQ(&A->manager(), &Mgr);
  EXPECT_EQ(&B->manager(), &Other);
}

TEST_F(RegionTest, DeleteRegionRawNullsHandle) {
  Region *R = Mgr.newRegion();
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(R, nullptr);
}

//===----------------------------------------------------------------------===//
// Figure 7 scan termination
//===----------------------------------------------------------------------===//

/// Padded to make header + object exactly 40 bytes, so 102 of them fill
/// a page's usable area to the last byte (no room for an end marker).
struct TrackedPad {
  explicit TrackedPad(int *Counter) : Counter(Counter) {}
  ~TrackedPad() {
    if (Counter)
      ++*Counter;
  }
  int *Counter;
  char Pad[32 - sizeof(int *)];
};

TEST_F(RegionTest, ScanTerminatesOnExactlyFullPage) {
  constexpr std::size_t kSlotBytes =
      sizeof(ScanThunk) + alignTo(sizeof(TrackedPad), kDefaultAlignment);
  constexpr std::size_t kUsable = kPageSize - sizeof(detail::PageHeader);
  static_assert(kUsable % kSlotBytes == 0,
                "objects must fill the page exactly for this test");
  constexpr std::size_t kPerPage = kUsable / kSlotBytes;

  Region *R = Mgr.newRegion();
  int Count = 0;
  // Region structure occupies part of the first page; spill onto a
  // second page and fill it to the brim so the scan has no marker slot.
  for (std::size_t I = 0; I != 2 * kPerPage; ++I)
    rnew<TrackedPad>(R, &Count);
  std::size_t Before = Mgr.stats().CleanupThunksRun;
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Count, static_cast<int>(2 * kPerPage))
      << "scan must stop at the page boundary, not run past it";
  EXPECT_EQ(Mgr.stats().CleanupThunksRun, Before + 2 * kPerPage);
}

TEST_F(RegionTest, ScanTerminatesOnPartialPage) {
  Region *R = Mgr.newRegion();
  int Count = 0;
  for (int I = 0; I != 5; ++I)
    rnew<Tracked>(R, &Count);
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Count, 5) << "scan must stop at the end marker";
}

TEST_F(RegionTest, ScanTerminatesOnRecycledDirtyPages) {
  // Dirty a batch of pages with non-zero garbage, then return them to
  // the page source. The next region's normal pages are recycled and
  // carry stale bytes, so termination must come from explicit end
  // markers (or the bulk clear), never from leftover data.
  Region *Dirty = Mgr.newRegion();
  for (int I = 0; I != 64; ++I)
    std::memset(Mgr.allocRaw(Dirty, 1000), 0xab, 1000);
  ASSERT_TRUE(Mgr.deleteRegionRaw(Dirty));

  Region *R = Mgr.newRegion();
  int Count = 0;
  for (int I = 0; I != 300; ++I) // spans pages, last one partial
    rnew<Tracked>(R, &Count);
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Count, 300);
}

TEST_F(RegionTest, ScannedMemoryIsZeroedOnRecycledPages) {
  Region *Dirty = Mgr.newRegion();
  for (int I = 0; I != 16; ++I)
    std::memset(Mgr.allocRaw(Dirty, 4000), 0xcd, 4000);
  ASSERT_TRUE(Mgr.deleteRegionRaw(Dirty));

  Region *R = Mgr.newRegion();
  for (int I = 0; I != 200; ++I) {
    auto *P = static_cast<unsigned char *>(
        Mgr.allocScanned(R, 48, detail::scanThunk<Tracked>));
    for (int J = 0; J != 48; ++J)
      ASSERT_EQ(P[J], 0u) << "stale byte at offset " << J;
  }
}

//===----------------------------------------------------------------------===//
// Allocation-size overflow
//===----------------------------------------------------------------------===//

TEST_F(RegionTest, ArrayCountOverflowIsFatalTrivial) {
  Region *R = Mgr.newRegion();
  EXPECT_DEATH(rnewArray<std::uint64_t>(R, SIZE_MAX / 4),
               "rnewArray: array byte size overflows");
}

TEST_F(RegionTest, ArrayCountOverflowIsFatalNonTrivial) {
  Region *R = Mgr.newRegion();
  EXPECT_DEATH(rnewArray<Tracked>(R, SIZE_MAX / 8),
               "rnewArray: array byte size overflows");
}

TEST_F(RegionTest, HugeButNonOverflowingAllocationIsFatal) {
  // Sizes that survive the multiplication but would wrap when rounded
  // up to pages must also die cleanly rather than under-allocate.
  Region *R = Mgr.newRegion();
  EXPECT_DEATH(Mgr.allocRaw(R, SIZE_MAX - 64),
               "region allocation size overflows");
}

} // namespace
