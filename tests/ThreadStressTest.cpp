//===- tests/ThreadStressTest.cpp - TSan-clean multithreaded stress -------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Multithreaded stress aimed at the thread-safety story: concurrent
// barrier stores inside per-thread managers (buffered pending counts
// flushing at thread exit), thread churn through a ParallelSpace
// (register/addRef/dropRef/unregister racing with tryDelete), and
// armed tracing under the same churn. Run under TSan these tests must
// be clean; in any build the counts must come out exact after joins.
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "region/Pool.h"
#include "region/Regions.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace regions;

namespace {

struct Node {
  explicit Node(int V) : Value(V) {}
  int Value;
  RegionPtr<Node> Next;
};

//===----------------------------------------------------------------------===//
// Per-thread managers: barrier stores and thread-exit flushing
//===----------------------------------------------------------------------===//

TEST(ThreadStressTest, PerThreadManagersChurnIndependently) {
  // Each thread runs its own manager — the design's intended mode.
  // The only shared state is the pending-count buffer machinery's
  // thread-exit path, exercised kThreads times.
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int T = 0; T != kThreads; ++T)
    Threads.emplace_back([&Failures] {
      RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
      rt::Frame F;
      for (int I = 0; I != kRounds; ++I) {
        rt::RegionHandle A = Mgr.newRegion();
        rt::RegionHandle B = Mgr.newRegion();
        Node *NA = rnew<Node>(A, I);
        NA->Next = rnew<Node>(B, I + 1); // cross-region: buffered +1 on B
        if (deleteRegion(B)) // must refuse: A still points in
          Failures.fetch_add(1, std::memory_order_relaxed);
        NA->Next = nullptr; // buffered -1 on B
        if (!deleteRegion(B) || !deleteRegion(A))
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
      // Thread exits with an empty buffer here; other iterations of
      // this test leave deltas pending on purpose (below).
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

TEST(ThreadStressTest, ExitFlushesRaceWithMainThreadInspection) {
  // Worker threads concurrently deposit buffered deltas and exit
  // without any explicit flush; the exit flushers all run at once.
  // Each thread targets its own region (exact counting of one
  // region's RC across threads is ParallelSpace's job, below), so the
  // only concurrency here is the flusher machinery itself. After the
  // joins every delta must have landed exactly once.
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
  rt::Frame F;
  rt::RegionHandle Home = Mgr.newRegion();
  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  rt::RegionHandle Targets[kThreads];
  Node *Slots[kThreads];
  Node *InTarget[kThreads];
  for (int T = 0; T != kThreads; ++T) {
    Targets[T] = Mgr.newRegion();
    Slots[T] = rnew<Node>(Home, T);
    InTarget[T] = rnew<Node>(Targets[T], T);
  }

  for (int W = 0; W != kRounds; ++W) {
    std::vector<std::thread> Wave;
    for (int T = 0; T != kThreads; ++T)
      Wave.emplace_back([&, W, T] {
        if (W & 1) {
          Slots[T]->Next = nullptr; // buffered -1, left pending at exit
        } else {
          Slots[T]->Next = InTarget[T]; // buffered +1, left at exit
        }
      });
    for (std::thread &T : Wave)
      T.join();
    long long Expected = (W & 1) ? 0 : 1;
    for (int T = 0; T != kThreads; ++T)
      EXPECT_EQ(Targets[T]->referenceCount(), Expected)
          << "round " << W << " target " << T
          << ": joined threads' buffered deltas must all be flushed";
  }
  for (int T = 0; T != kThreads; ++T) {
    Slots[T]->Next = nullptr;
    EXPECT_TRUE(deleteRegion(Targets[T]));
  }
  EXPECT_TRUE(deleteRegion(Home));
}

//===----------------------------------------------------------------------===//
// ParallelSpace: thread churn against shared regions
//===----------------------------------------------------------------------===//

TEST(ThreadStressTest, SharedRegionChurnKeepsSumExact) {
  // kThreads threads churn refs on one shared region while repeatedly
  // registering and unregistering (slot recycling under contention).
  // After all joins the sum of local counts must be exactly zero and
  // deletion must succeed first try.
  par::ParallelSpace Space;
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  par::SharedRegion *S = Space.share(Mgr.newRegion());

  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  std::vector<std::thread> Threads;
  for (int T = 0; T != kThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != kRounds; ++I) {
        par::ThreadSlot Slot(Space); // register/unregister churn
        Space.addRef(S, Slot);
        Space.addRef(S, Slot);
        Space.dropRef(S, Slot);
        Space.dropRef(S, Slot);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(S->totalCount(), 0);
  EXPECT_TRUE(Space.tryDelete(S));
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
}

TEST(ThreadStressTest, SharedExchangeRacesStayBalanced) {
  // The paper's shared-slot write under real contention: every thread
  // exchanges the same atomic slot between nullptr and an object in
  // the shared region. Whatever interleaving happens, the adjustments
  // pair off; after a final owned store of nullptr the sum is zero.
  par::ParallelSpace Space;
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  Region *R = Mgr.newRegion();
  int *Obj = rnewArray<int>(R, 4);
  par::SharedRegion *S = Space.share(R);

  std::atomic<int *> Slot{nullptr};
  constexpr int kThreads = 8;
  constexpr int kRounds = 500;
  std::vector<std::thread> Threads;
  for (int T = 0; T != kThreads; ++T)
    Threads.emplace_back([&] {
      par::ThreadSlot Tid(Space);
      for (int I = 0; I != kRounds; ++I) {
        // Install: new value is in S, displaced value (if any) too.
        Space.sharedExchange(Slot, Obj, S, S, Tid);
        // Clear: new value is non-region null, displaced may be in S.
        Space.sharedExchange(Slot, static_cast<int *>(nullptr),
                             static_cast<par::SharedRegion *>(nullptr), S,
                             Tid);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  // Drop whatever the raced exchanges left installed; the displaced
  // value (if any) resolves to S without being named.
  Space.sharedExchange<int>(Slot, nullptr, nullptr,
                            Space.registerThread());
  EXPECT_EQ(S->totalCount(), 0)
      << "every displaced reference must pair with exactly one drop";
  EXPECT_TRUE(Space.tryDelete(S));
}

//===----------------------------------------------------------------------===//
// Sharded create/delete synchronization
//===----------------------------------------------------------------------===//

TEST(ThreadStressTest, ShardedDistinctRegionChurn) {
  // The tentpole workload: every thread cycles its *own* regions
  // (create → share → publish → unpublish → tryDelete) through one
  // shared space. Distinct regions hash to (mostly) distinct shards,
  // so nothing here should serialize; TSan must see no races and
  // every cycle's delete must succeed first try — each thread only
  // deletes regions its own manager owns, so the manager-quiescence
  // contract holds per thread.
  par::ParallelSpace Space;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != kThreads; ++T)
    Threads.emplace_back([&] {
      RegionManager Mgr{SafetyConfig::unsafeConfig(), std::size_t{64} << 20};
      par::ThreadSlot Tid(Space);
      std::atomic<int *> Slot{nullptr};
      for (int I = 0; I != kRounds; ++I) {
        par::SharedRegion *S = Space.share(Mgr.newRegion());
        int *Obj = rnew<int>(S->region(), I);
        Space.sharedExchange(Slot, Obj, S, Tid);
        if (Space.tryDelete(S)) { // published: must refuse
          Failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        Space.sharedExchange<int>(Slot, nullptr, nullptr, Tid);
        if (!Space.tryDelete(S)) // unpublished: must accept
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
  EXPECT_GT(Space.lockFreeRefusals(), 0u)
      << "published-region refusals must be served lock-free";
}

TEST(ThreadStressTest, ConcurrentTryDeleteRacesDeletingFlag) {
  // Many threads hammer tryDelete on the *same* pinned region: every
  // call must refuse (the pin is visible in the relaxed sum), nothing
  // may free, and the refusals must not take the shard lock. Then the
  // pin is dropped and the same threads race one tryDelete each
  // against the Deleting flag: exactly one may win.
  par::ParallelSpace Space;
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  par::SharedRegion *S = Space.share(Mgr.newRegion());
  unsigned Pin = Space.registerThread();
  Space.addRef(S, Pin);

  constexpr int kThreads = 8;
  constexpr int kAttempts = 500;
  {
    std::vector<std::thread> Threads;
    for (int T = 0; T != kThreads; ++T)
      Threads.emplace_back([&] {
        for (int I = 0; I != kAttempts; ++I)
          if (Space.tryDelete(S))
            ADD_FAILURE() << "pinned region must never delete";
      });
    for (std::thread &T : Threads)
      T.join();
  }
  EXPECT_EQ(Space.liveSharedRegions(), 1u);
  EXPECT_GE(Space.lockFreeRefusals(),
            static_cast<std::uint64_t>(kThreads) * kAttempts)
      << "every pinned-region refusal is lock-free";

  // Unpin; the happens-before edge for the counts is the threads'
  // construction below. Racing deleters arbitrate through the
  // Deleting CAS: one winner, losers refuse without stampeding.
  Space.dropRef(S, Pin);
  std::atomic<int> Wins{0};
  {
    std::vector<std::thread> Threads;
    for (int T = 0; T != kThreads; ++T)
      Threads.emplace_back([&] {
        if (Space.tryDelete(S))
          Wins.fetch_add(1, std::memory_order_relaxed);
      });
    for (std::thread &T : Threads)
      T.join();
  }
  EXPECT_EQ(Wins.load(), 1) << "exactly one racing deleter may win";
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
  Space.unregisterThread(Pin);
}

TEST(ThreadStressTest, ThreadSlotChurnAcrossShardsKeepsSumsExact) {
  // Register/unregister churn (whose banking walk now locks one shard
  // at a time) racing against ref traffic on regions spread over many
  // shards. After the joins every region's sum must be exactly zero —
  // banking must not lose or double-count a balance whichever shard
  // the region landed on.
  par::ParallelSpace Space;
  RegionManager Mgr{SafetyConfig::unsafeConfig(), std::size_t{64} << 20};
  constexpr int kRegions = 16;
  par::SharedRegion *Shared[kRegions];
  for (int R = 0; R != kRegions; ++R)
    Shared[R] = Space.share(Mgr.newRegion());

  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  std::vector<std::thread> Threads;
  for (int T = 0; T != kThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != kRounds; ++I) {
        par::ThreadSlot Slot(Space); // unregister banks across shards
        par::SharedRegion *S = Shared[(T + I) % kRegions];
        Space.addRef(S, Slot);
        Space.addRef(S, Slot);
        Space.dropRef(S, Slot);
        Space.dropRef(S, Slot);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int R = 0; R != kRegions; ++R) {
    EXPECT_EQ(Shared[R]->totalCount(), 0) << "region " << R;
    EXPECT_TRUE(Space.tryDelete(Shared[R])) << "region " << R;
  }
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
}

//===----------------------------------------------------------------------===//
// Resolving exchanges and the deletion hand-off
//===----------------------------------------------------------------------===//

TEST(ThreadStressTest, CrossRegionExchangeRacesResolveExact) {
  // TSan stress variant of the cross-region regression: threads race
  // install/clear on ONE slot with values from TWO shared regions
  // while a poller hammers tryDelete on both. Each drop must land on
  // the region the displaced value actually points into — resolved
  // after the exchange — so after the joins both sums are exactly the
  // slot occupancy plus the pins. A caller-guessed "old region" cannot
  // get this right under any schedule.
  par::ParallelSpace Space;
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  par::SharedRegion *SA = Space.share(Mgr.newRegion());
  par::SharedRegion *SB = Space.share(Mgr.newRegion());
  int *ObjA = rnew<int>(SA->region(), 1);
  int *ObjB = rnew<int>(SB->region(), 2);
  // Pins: keep both sums visibly positive so the poller's every answer
  // is a lock-free refusal and nothing can free mid-race.
  unsigned Pin = Space.registerThread();
  Space.addRef(SA, Pin);
  Space.addRef(SB, Pin);

  std::atomic<int *> Slot{nullptr};
  std::atomic<bool> Stop{false};
  constexpr int kThreads = 6;
  constexpr int kRounds = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != kThreads; ++T)
    Threads.emplace_back([&, T] {
      par::ThreadSlot Tid(Space);
      for (int I = 0; I != kRounds; ++I) {
        switch ((I + T) % 3) {
        case 0:
          Space.sharedExchange(Slot, ObjA, SA, Tid);
          break;
        case 1:
          Space.sharedExchange(Slot, ObjB, SB, Tid);
          break;
        default:
          Space.sharedExchange<int>(Slot, nullptr, nullptr, Tid);
          break;
        }
      }
    });
  std::thread Poller([&] {
    while (!Stop.load(std::memory_order_acquire))
      if (Space.tryDelete(SA) || Space.tryDelete(SB))
        ADD_FAILURE() << "pinned regions must never delete mid-race";
  });
  for (std::thread &T : Threads)
    T.join();
  Stop.store(true, std::memory_order_release);
  Poller.join();

  int *Final = Slot.load();
  EXPECT_EQ(SA->totalCount(), Final == ObjA ? 2 : 1)
      << "A's sum must be its pin plus its slot occupancy";
  EXPECT_EQ(SB->totalCount(), Final == ObjB ? 2 : 1)
      << "B's sum must be its pin plus its slot occupancy";
  Space.sharedExchange<int>(Slot, nullptr, nullptr, Pin);
  Space.dropRef(SA, Pin);
  Space.dropRef(SB, Pin);
  EXPECT_TRUE(Space.tryDelete(SA));
  EXPECT_TRUE(Space.tryDelete(SB));
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
}

TEST(ThreadStressTest, QuiescedManagersRetiredByRacingWorkers) {
  // The cross-thread deletion hand-off under stress: owner threads
  // create, share, and pin regions, quiesce their managers into the
  // space, and exit for good. Worker threads then unpin (one drop per
  // region, partitioned by an atomic ticket) and race tryDelete over
  // every region: exactly one deleter may win each, and the
  // destructive step for one manager's regions — scattered over
  // different shards — must serialize through that manager's hand-off
  // lock. Run under TSan this proves non-owner deletion is race-free.
  par::ParallelSpace Space;
  constexpr int kOwners = 4;
  constexpr int kRegionsPer = 16;
  constexpr int kTotal = kOwners * kRegionsPer;
  std::unique_ptr<RegionManager> Managers[kOwners];
  par::SharedRegion *Shared[kTotal];
  {
    std::vector<std::thread> Owners;
    for (int O = 0; O != kOwners; ++O)
      Owners.emplace_back([&, O] {
        Managers[O] = std::make_unique<RegionManager>(
            SafetyConfig::unsafeConfig(), std::size_t{64} << 20);
        unsigned Tid = Space.registerThread();
        for (int R = 0; R != kRegionsPer; ++R) {
          par::SharedRegion *S = Space.share(Managers[O]->newRegion());
          Space.addRef(S, Tid); // pinned until a worker unpins it
          Shared[O * kRegionsPer + R] = S;
        }
        Space.quiesce(*Managers[O]);
        Space.unregisterThread(Tid); // pins bank into Detached
      });
    for (std::thread &T : Owners)
      T.join();
  }
  for (int O = 0; O != kOwners; ++O)
    EXPECT_TRUE(Space.managerQuiesced(*Managers[O]));
  EXPECT_EQ(Space.liveSharedRegions(), static_cast<std::size_t>(kTotal));

  constexpr int kWorkers = 8;
  std::atomic<int> Wins{0};
  {
    // Wave 1: each pin dropped exactly once, workers partition by
    // ticket. Counts go negative on the dropping worker's slot; only
    // the sums matter.
    std::atomic<int> Ticket{0};
    std::vector<std::thread> Workers;
    for (int W = 0; W != kWorkers; ++W)
      Workers.emplace_back([&] {
        par::ThreadSlot Tid(Space);
        for (int I; (I = Ticket.fetch_add(1, std::memory_order_relaxed)) <
                    kTotal;)
          Space.dropRef(Shared[I], Tid);
      });
    for (std::thread &T : Workers)
      T.join();
  }
  {
    // Wave 2: every worker races one tryDelete per region. None of
    // these threads ever touched the owning managers; quiesce() makes
    // their deletions legitimate and the hand-off lock serializes them.
    std::vector<std::thread> Workers;
    for (int W = 0; W != kWorkers; ++W)
      Workers.emplace_back([&] {
        par::ThreadSlot Tid(Space);
        for (int I = 0; I != kTotal; ++I)
          if (Space.tryDelete(Shared[I]))
            Wins.fetch_add(1, std::memory_order_relaxed);
      });
    for (std::thread &T : Workers)
      T.join();
  }
  EXPECT_EQ(Wins.load(), kTotal) << "exactly one winner per region";
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
  for (int O = 0; O != kOwners; ++O)
    EXPECT_EQ(Managers[O]->liveRegionCount(), 0u)
        << "every quiesced manager fully drained by non-owners";
}

//===----------------------------------------------------------------------===//
// Armed tracing under churn
//===----------------------------------------------------------------------===//

TEST(ThreadStressTest, ConcurrentPoolChurnStaysExact) {
  // rpool's intended deployment: one RegionPool per worker thread over
  // that worker's own manager, churning region-per-request cycles
  // while tracing is armed (the pool's trace events ride the same TLS
  // ring machinery as everything else). TSan must see no races between
  // the workers, the trace registry, or the pool counters; after the
  // joins every per-manager count must be exact.
  rstat::armTracing(1 << 10);
  constexpr int kThreads = 6;
  constexpr int kRequests = 300;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int T = 0; T != kThreads; ++T)
    Threads.emplace_back([&Failures] {
      RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
      RegionPool Pool{Mgr};
      for (int I = 0; I != kRequests; ++I) {
        Region *R = Pool.acquire();
        Mgr.allocRaw(R, 64);
        Mgr.allocRaw(R, 2048);
        if (I % 8 == 0)
          Mgr.allocRaw(R, 3 * kPageSize); // large run: retained too
        if (!Pool.release(R))
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
      const PoolStats &P = Mgr.poolStats();
      // Cold miss on the first acquire, hits ever after; every release
      // parked (the default budget dwarfs this footprint).
      if (P.Misses != 1 || P.Hits != std::uint64_t{kRequests} - 1 ||
          P.Releases != std::uint64_t{kRequests})
        Failures.fetch_add(1, std::memory_order_relaxed);
      if (Mgr.stats().ResetRegions != std::uint64_t{kRequests})
        Failures.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GT(rstat::tracedEventCount(), 0u);
  rstat::disarmTracing();
}

TEST(ThreadStressTest, ArmedTracingSurvivesThreadChurn) {
  // Threads attach (via manager construction), record region events,
  // and exit while other threads are still recording and the main
  // thread concurrently polls counters and disarms mid-flight. TSan
  // must see no races; the rings must retain the exited threads'
  // events for export.
  rstat::armTracing(1 << 10);
  constexpr int kThreads = 6;
  std::vector<std::thread> Threads;
  for (int T = 0; T != kThreads; ++T)
    Threads.emplace_back([] {
      RegionManager Mgr{SafetyConfig::safeConfig()};
      for (int I = 0; I != 50; ++I) {
        Region *R = Mgr.newRegion();
        Mgr.allocRaw(R, 64);
        Mgr.deleteRegionRaw(R);
      }
    });
  // Poll from the controlling thread while workers run.
  std::size_t Seen = 0;
  for (int I = 0; I != 100; ++I)
    Seen = rstat::tracedEventCount();
  for (std::thread &T : Threads)
    T.join();
  Seen = rstat::tracedEventCount();
  EXPECT_GT(Seen, 0u) << "exited workers' rings survive in the registry";
  rstat::disarmTracing();
  EXPECT_EQ(rstat::tracedEventCount(), Seen)
      << "disarm stops recording but loses nothing";
}

} // namespace
