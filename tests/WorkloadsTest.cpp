//===- tests/WorkloadsTest.cpp - Cross-backend workload tests -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Integration tests: every workload must produce the same checksum on
// every backend (region organization and malloc organization are two
// views of one program), must succeed semantically (factor found,
// basis computed, boundaries found, matches found), and region
// backends must end with zero live regions.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace regions;
using namespace regions::workloads;

namespace {

WorkloadOptions smallOptions() {
  WorkloadOptions Opt;
  Opt.Scale = 0.1; // keep the full grid fast in unit tests
  return Opt;
}

constexpr BackendKind kComparisonBackends[] = {
    BackendKind::RegionSafe, BackendKind::RegionUnsafe,
    BackendKind::Sun,        BackendKind::Bsd,
    BackendKind::Lea,        BackendKind::Gc,
    BackendKind::EmuLea,     BackendKind::Bump,
};

class PerWorkloadTest : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(PerWorkloadTest, ChecksumsAgreeAcrossAllBackends) {
  WorkloadOptions Opt = smallOptions();
  RunResult Reference = runWorkload(GetParam(), BackendKind::Lea, Opt);
  EXPECT_TRUE(Reference.Ok) << "workload failed semantically";
  EXPECT_NE(Reference.Checksum, 0u);
  for (BackendKind B : kComparisonBackends) {
    RunResult R = runWorkload(GetParam(), B, Opt);
    EXPECT_EQ(R.Checksum, Reference.Checksum)
        << "backend " << backendName(B) << " diverged";
    EXPECT_TRUE(R.Ok) << backendName(B);
  }
}

TEST_P(PerWorkloadTest, RegionBackendReportsRegionActivity) {
  WorkloadOptions Opt = smallOptions();
  RunResult R = runWorkload(GetParam(), BackendKind::RegionSafe, Opt);
  ASSERT_TRUE(R.HasRegionStats);
  EXPECT_GT(R.TotalRegions, 0u);
  EXPECT_GT(R.TotalAllocs, 0u);
  EXPECT_GT(R.MaxRegionBytes, 0u);
  EXPECT_EQ(R.Region.LiveRegions, 0u) << "workload leaked regions";
  EXPECT_EQ(R.Region.DeleteFailures, 0u)
      << "workload left stale references somewhere";
}

TEST_P(PerWorkloadTest, UnsafeRegionsDoNoCounting) {
  WorkloadOptions Opt = smallOptions();
  RunResult R = runWorkload(GetParam(), BackendKind::RegionUnsafe, Opt);
  ASSERT_TRUE(R.HasRegionStats);
  EXPECT_EQ(R.Region.BarrierAdjustments, 0u);
  EXPECT_EQ(R.StackScans, 0u);
}

TEST_P(PerWorkloadTest, MallocBackendFreesEverything) {
  WorkloadOptions Opt = smallOptions();
  RunResult R = runWorkload(GetParam(), BackendKind::Lea, Opt);
  // Live bytes at the end: the DirectModel either freed objects
  // individually or they were program-lifetime structures. Workloads
  // are written to dispose of everything they allocate.
  EXPECT_GT(R.TotalAllocs, 0u);
}

TEST_P(PerWorkloadTest, CacheTracingProducesStats) {
  WorkloadOptions Opt = smallOptions();
  Opt.TouchTracing = true;
  RunResult R = runWorkload(GetParam(), BackendKind::RegionSafe, Opt);
  ASSERT_TRUE(R.HasCacheStats);
  EXPECT_GT(R.Cache.Reads + R.Cache.Writes, 0u);
}

TEST_P(PerWorkloadTest, GcBackendCollects) {
  WorkloadOptions Opt = smallOptions();
  RunResult R = runWorkload(GetParam(), BackendKind::Gc, Opt);
  ASSERT_TRUE(R.HasGcStats);
  EXPECT_TRUE(R.Ok);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PerWorkloadTest,
                         ::testing::ValuesIn(kAllWorkloads),
                         [](const ::testing::TestParamInfo<WorkloadId> &I) {
                           return std::string(workloadName(I.param));
                         });

//===----------------------------------------------------------------------===//
// Workload-specific semantic checks
//===----------------------------------------------------------------------===//

TEST(CfracSemanticsTest, FactorsTheSmallSemiprime) {
  WorkloadOptions Opt;
  Opt.Scale = 0.1; // 10967535067 = 104729 * 104723
  RunResult R = runWorkload(WorkloadId::Cfrac, BackendKind::Lea, Opt);
  EXPECT_TRUE(R.Ok) << "cfrac must find a factor";
}

TEST(CfracSemanticsTest, FactorsTheMediumSemiprime) {
  WorkloadOptions Opt;
  Opt.Scale = 0.5; // 1041483498857 = 1020379 * 1020683
  RunResult R = runWorkload(WorkloadId::Cfrac, BackendKind::Lea, Opt);
  EXPECT_TRUE(R.Ok);
}

TEST(MossSemanticsTest, SplitAndSlowVariantsMatchSemantically) {
  // The locality optimization must not change the computed matches.
  WorkloadOptions Split = smallOptions();
  Split.MossSplitRegions = true;
  WorkloadOptions Slow = smallOptions();
  Slow.MossSplitRegions = false;
  RunResult A = runWorkload(WorkloadId::Moss, BackendKind::RegionSafe, Split);
  RunResult B = runWorkload(WorkloadId::Moss, BackendKind::RegionSafe, Slow);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_GT(A.TotalRegions, B.TotalRegions - 1)
      << "split variant uses an extra region";
}

TEST(SafetyCostTest, DisablingComponentsKeepsResults) {
  // Figure 11's methodology: toggling safety components must never
  // change workload results, only cost.
  WorkloadOptions Opt = smallOptions();
  RunResult Full = runWorkload(WorkloadId::Mudlle, BackendKind::RegionSafe,
                               Opt);
  for (int Component = 0; Component != 3; ++Component) {
    WorkloadOptions Partial = Opt;
    Partial.RegionConfig = SafetyConfig::safeConfig();
    if (Component == 0)
      Partial.RegionConfig.RefCounts = false;
    if (Component == 1)
      Partial.RegionConfig.StackScan = false;
    if (Component == 2)
      Partial.RegionConfig.CleanupScan = false;
    RunResult R = runWorkload(WorkloadId::Mudlle, BackendKind::RegionSafe,
                              Partial);
    EXPECT_EQ(R.Checksum, Full.Checksum) << "component " << Component;
  }
}

TEST(ScaleTest, LargerScaleDoesMoreWork) {
  WorkloadOptions Small = smallOptions();
  WorkloadOptions Bigger = smallOptions();
  Bigger.Scale = 0.3;
  RunResult A = runWorkload(WorkloadId::Tile, BackendKind::Lea, Small);
  RunResult B = runWorkload(WorkloadId::Tile, BackendKind::Lea, Bigger);
  EXPECT_GT(B.TotalAllocs, A.TotalAllocs);
}

TEST(DeterminismTest, RepeatRunsAreIdentical) {
  WorkloadOptions Opt = smallOptions();
  for (WorkloadId W : {WorkloadId::Grobner, WorkloadId::Moss}) {
    RunResult A = runWorkload(W, BackendKind::RegionSafe, Opt);
    RunResult B = runWorkload(W, BackendKind::RegionSafe, Opt);
    EXPECT_EQ(A.Checksum, B.Checksum) << workloadName(W);
    EXPECT_EQ(A.TotalAllocs, B.TotalAllocs) << workloadName(W);
  }
}

// Regression: the conservative collector must treat callee-saved
// registers as roots. Under the timed wrapper the compiler is prone to
// keeping the only copy of a live AST pointer in such a register
// across the allocation that triggers the collection; a stack scan
// that misses the register spill area sweeps the live subtree and the
// compiler then walks a corrupted, self-referential AST.
TEST(GcRootsTest, InstrumentedLccSurvivesMidParseCollections) {
  WorkloadOptions Opt = smallOptions();
  Opt.InstrumentMemoryTime = true;
  RunResult R = runWorkload(WorkloadId::Lcc, BackendKind::Gc, Opt);
  EXPECT_TRUE(R.Ok);
  ASSERT_TRUE(R.HasGcStats);
  EXPECT_GE(R.Gc.Collections, 1u)
      << "workload too small to exercise a collection";
}

} // namespace
