//===- tests/MudlleVmTest.cpp - Bytecode and VM coverage ------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Instruction-level coverage of the mud bytecode and VM beyond the
// end-to-end tests in MudlleTest.cpp: encoding, every opcode's
// semantics, step limits, and stress programs.
//
//===----------------------------------------------------------------------===//

#include "alloc/LeaAllocator.h"
#include "backend/Models.h"
#include "mudlle/Compiler.h"
#include "mudlle/Parser.h"
#include "mudlle/Vm.h"

#include <gtest/gtest.h>

using namespace regions;
using namespace regions::mud;

namespace {

//===----------------------------------------------------------------------===//
// Instruction encoding
//===----------------------------------------------------------------------===//

TEST(BytecodeTest, EncodeDecodeRoundTrips) {
  for (std::int32_t Operand :
       {0, 1, -1, 1000, -1000, kMaxImm, kMinImm}) {
    for (Op O : {Op::PushImm, Op::Jmp, Op::Load, Op::Call}) {
      std::uint32_t W = encode(O, Operand);
      EXPECT_EQ(opOf(W), O);
      EXPECT_EQ(operandOf(W), Operand);
    }
  }
}

TEST(BytecodeTest, NegativeOperandsUseArithmeticShift) {
  std::uint32_t W = encode(Op::PushImm, -5);
  EXPECT_EQ(operandOf(W), -5);
  EXPECT_EQ(opOf(W), Op::PushImm);
}

//===----------------------------------------------------------------------===//
// Hand-assembled programs: exact opcode semantics
//===----------------------------------------------------------------------===//

/// Builds a one-function program from raw words and runs it.
class AsmRunner {
public:
  AsmRunner() : Mem(Mgr), Code(Mem.makeRegion()) {}

  VmResult run(std::initializer_list<std::uint32_t> Words,
               std::uint16_t NumLocals = 4,
               std::uint64_t MaxSteps = 100000) {
    auto *Prog = Mem.create<CompiledProgram<RegionModel>>(Code);
    auto *F = Mem.create<CompiledFunction<RegionModel>>(Code);
    auto *Buf = static_cast<std::uint32_t *>(
        Mem.allocBytes(Code, Words.size() * 4));
    std::size_t I = 0;
    for (std::uint32_t W : Words)
      Buf[I++] = W;
    F->Name = "main";
    F->Code = Buf;
    F->CodeLen = static_cast<std::uint32_t>(Words.size());
    F->NumParams = 0;
    F->NumLocals = NumLocals;
    F->Index = 0;
    Prog->Functions = F;
    Prog->NumFunctions = 1;
    Prog->MainIndex = 0;
    Vm<RegionModel> Machine(*Prog);
    return Machine.runMain(MaxSteps);
  }

private:
  RegionManager Mgr;
  RegionModel Mem;
  rt::Frame Frame;
  RegionModel::Token Code;
};

TEST(VmOpcodeTest, PushAndReturn) {
  AsmRunner R;
  VmResult V = R.run({encode(Op::PushImm, 77), encode(Op::Ret)});
  ASSERT_TRUE(V.Ok);
  EXPECT_EQ(V.Value, 77);
}

TEST(VmOpcodeTest, NopIsSkipped) {
  AsmRunner R;
  VmResult V = R.run({encode(Op::Nop), encode(Op::PushImm, 1),
                      encode(Op::Nop), encode(Op::Ret)});
  ASSERT_TRUE(V.Ok);
  EXPECT_EQ(V.Value, 1);
}

TEST(VmOpcodeTest, LoadStoreLocals) {
  AsmRunner R;
  VmResult V = R.run({encode(Op::PushImm, 9), encode(Op::Store, 2),
                      encode(Op::Load, 2), encode(Op::Load, 2),
                      encode(Op::Add), encode(Op::Ret)});
  ASSERT_TRUE(V.Ok);
  EXPECT_EQ(V.Value, 18);
}

TEST(VmOpcodeTest, ArithmeticOpcodes) {
  struct Case {
    Op O;
    std::int32_t A, B;
    std::int64_t Expect;
  };
  const Case Cases[] = {
      {Op::Add, 3, 4, 7},    {Op::Sub, 3, 4, -1},  {Op::Mul, -3, 4, -12},
      {Op::Div, 9, 2, 4},    {Op::Div, 9, 0, 0},   {Op::Mod, 9, 4, 1},
      {Op::Mod, 9, 0, 0},    {Op::Lt, 1, 2, 1},    {Op::Lt, 2, 1, 0},
      {Op::Le, 2, 2, 1},     {Op::Gt, 3, 2, 1},    {Op::Ge, 1, 2, 0},
      {Op::Eq, 5, 5, 1},     {Op::Ne, 5, 5, 0},
  };
  for (const Case &C : Cases) {
    AsmRunner R;
    VmResult V = R.run({encode(Op::PushImm, C.A), encode(Op::PushImm, C.B),
                        encode(C.O), encode(Op::Ret)});
    ASSERT_TRUE(V.Ok);
    EXPECT_EQ(V.Value, C.Expect)
        << "op " << static_cast<int>(C.O) << " " << C.A << "," << C.B;
  }
}

TEST(VmOpcodeTest, NegAndNot) {
  AsmRunner R1;
  EXPECT_EQ(R1.run({encode(Op::PushImm, 5), encode(Op::Neg),
                    encode(Op::Ret)})
                .Value,
            -5);
  AsmRunner R2;
  EXPECT_EQ(R2.run({encode(Op::PushImm, 0), encode(Op::Not),
                    encode(Op::Ret)})
                .Value,
            1);
}

TEST(VmOpcodeTest, JumpsAndConditionals) {
  // 0: push 1; 1: jz 4; 2: push 10; 3: ret; 4: push 20; 5: ret
  AsmRunner R1;
  EXPECT_EQ(R1.run({encode(Op::PushImm, 1), encode(Op::Jz, 4),
                    encode(Op::PushImm, 10), encode(Op::Ret),
                    encode(Op::PushImm, 20), encode(Op::Ret)})
                .Value,
            10);
  AsmRunner R2;
  EXPECT_EQ(R2.run({encode(Op::PushImm, 0), encode(Op::Jz, 4),
                    encode(Op::PushImm, 10), encode(Op::Ret),
                    encode(Op::PushImm, 20), encode(Op::Ret)})
                .Value,
            20);
  AsmRunner R3;
  EXPECT_EQ(R3.run({encode(Op::PushImm, 7), encode(Op::Jnz, 4),
                    encode(Op::PushImm, 10), encode(Op::Ret),
                    encode(Op::PushImm, 20), encode(Op::Ret)})
                .Value,
            20);
}

TEST(VmOpcodeTest, InfiniteLoopHitsStepLimit) {
  AsmRunner R;
  VmResult V = R.run({encode(Op::Jmp, 0)}, 1, 1000);
  EXPECT_FALSE(V.Ok);
  EXPECT_STREQ(V.Error, "step limit exceeded");
}

TEST(VmOpcodeTest, FallingOffEndIsAnError) {
  AsmRunner R;
  VmResult V = R.run({encode(Op::PushImm, 1)});
  EXPECT_FALSE(V.Ok);
  EXPECT_STREQ(V.Error, "fell off the end of a function");
}

//===----------------------------------------------------------------------===//
// Compiled-program stress
//===----------------------------------------------------------------------===//

template <class M>
VmResult compileAndRun(M &Mem, const char *Source) {
  [[maybe_unused]] typename M::Frame F;
  typename M::Token Ast = Mem.makeRegion();
  typename M::Token Code = Mem.makeRegion();
  VmResult R;
  {
    Parser<M> P(Mem, Ast, Source);
    auto *File = P.parseFile();
    if (P.failed()) {
      R.Error = P.errorMessage();
    } else {
      Compiler<M> C(Mem, Code);
      auto *Prog = C.compile(File);
      if (!Prog)
        R.Error = C.errorMessage();
      else {
        Vm<M> Machine(*Prog);
        R = Machine.runMain();
      }
    }
  }
  Mem.dropRegion(Ast);
  Mem.dropRegion(Code);
  return R;
}

struct MudStressTest : ::testing::Test {
  LeaAllocator A;
  DirectModel Mem{A};
};

TEST_F(MudStressTest, DeepRecursion) {
  VmResult R = compileAndRun(Mem, "fn down(n) { if (n <= 0) { return 0; }\n"
                                  "  return down(n - 1) + 1; }\n"
                                  "fn main() { return down(20000); }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, 20000);
}

TEST_F(MudStressTest, MutualCallsThroughManyFunctions) {
  std::string Src;
  // f0 returns its argument; f_i(n) = f_{i-1}(n) + 1.
  Src += "fn f0(n) { return n; }\n";
  for (int I = 1; I <= 60; ++I)
    Src += "fn f" + std::to_string(I) + "(n) { return f" +
           std::to_string(I - 1) + "(n) + 1; }\n";
  Src += "fn main() { return f60(5); }";
  VmResult R = compileAndRun(Mem, Src.c_str());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, 65);
}

TEST_F(MudStressTest, ManyLocalsInOneFunction) {
  std::string Src = "fn main() {\n";
  for (int I = 0; I != 200; ++I)
    Src += "  var v" + std::to_string(I) + " = " + std::to_string(I) +
           ";\n";
  Src += "  var total = 0;\n";
  for (int I = 0; I != 200; ++I)
    Src += "  total = total + v" + std::to_string(I) + ";\n";
  Src += "  return total;\n}\n";
  VmResult R = compileAndRun(Mem, Src.c_str());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, 19900);
}

TEST_F(MudStressTest, NestedLoops) {
  VmResult R = compileAndRun(
      Mem, "fn main() { var s = 0; var i = 0;\n"
           "  while (i < 100) { var j = 0;\n"
           "    while (j < 100) { s = s + 1; j = j + 1; }\n"
           "    i = i + 1; }\n"
           "  return s; }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, 10000);
}

TEST_F(MudStressTest, CollatzIterations) {
  VmResult R = compileAndRun(
      Mem, "fn steps(n) { var c = 0;\n"
           "  while (n != 1) {\n"
           "    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }\n"
           "    c = c + 1; }\n"
           "  return c; }\n"
           "fn main() { return steps(27); }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, 111) << "Collatz(27) takes 111 steps";
}

TEST_F(MudStressTest, OperatorPrecedenceTorture) {
  // Comparisons are non-associative in mud (one per chain, like the
  // grammar in Parser.h); parenthesize to chain them.
  VmResult R = compileAndRun(
      Mem, "fn main() { return ((1 + 2 * 3 - 4 / 2 % 3 < 6) == 1) && "
           "!(2 > 3) || 0; }");
  ASSERT_TRUE(R.Ok) << R.Error;
  // 1 + 6 - (4/2)%3 = 7 - 2 = 5; 5 < 6 -> 1; 1 == 1 -> 1;
  // 1 && !(0) -> 1; 1 || 0 -> 1.
  EXPECT_EQ(R.Value, 1);
}

TEST_F(MudStressTest, ChainedComparisonIsASyntaxError) {
  VmResult R = compileAndRun(Mem, "fn main() { return 1 < 2 < 3; }");
  EXPECT_FALSE(R.Ok) << "comparison chains need parentheses";
}

} // namespace
