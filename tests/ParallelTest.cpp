//===- tests/ParallelTest.cpp - Parallel region extension tests -----------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Tests the §1 parallel extension: per-thread local reference counts,
// deletion when the sum is zero, and atomic-exchange pointer writes
// keeping the sum exact under contention.
//
//===----------------------------------------------------------------------===//

#include "region/Parallel.h"
#include "region/Regions.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace regions;
using namespace regions::par;

namespace {

struct ParallelTest : ::testing::Test {
  ParallelSpace Space;
};

TEST_F(ParallelTest, RegisterThreadsGetDistinctSlots) {
  unsigned A = Space.registerThread();
  unsigned B = Space.registerThread();
  EXPECT_NE(A, B);
}

TEST_F(ParallelTest, ShareAndDeleteWithZeroCount) {
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  SharedRegion *S = Space.share(Mgr.newRegion());
  EXPECT_EQ(S->totalCount(), 0);
  EXPECT_TRUE(Space.tryDelete(S));
  EXPECT_FALSE(Space.tryDelete(S)) << "second delete is a no-op";
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
}

TEST_F(ParallelTest, PositiveCountBlocksDeletion) {
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  unsigned Tid = Space.registerThread();
  SharedRegion *S = Space.share(Mgr.newRegion());
  Space.addRef(S, Tid);
  EXPECT_FALSE(Space.tryDelete(S));
  Space.dropRef(S, Tid);
  EXPECT_TRUE(Space.tryDelete(S));
}

TEST_F(ParallelTest, CrossThreadCountsSumToZero) {
  // Thread A creates a reference; thread B destroys it. A's local count
  // is +1, B's is -1 — negative local counts are fine, the sum governs.
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  unsigned TidA = Space.registerThread();
  unsigned TidB = Space.registerThread();
  SharedRegion *S = Space.share(Mgr.newRegion());
  Space.addRef(S, TidA);
  EXPECT_EQ(S->totalCount(), 1);
  Space.dropRef(S, TidB);
  EXPECT_EQ(S->totalCount(), 0);
  EXPECT_TRUE(Space.tryDelete(S));
}

TEST_F(ParallelTest, SharedExchangeAdjustsLocalCounts) {
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  unsigned Tid = Space.registerThread();
  SharedRegion *S = Space.share(Mgr.newRegion());
  int *Obj = rnew<int>(S->region(), 42);
  std::atomic<int *> Slot{nullptr};
  // Install: +1 on this thread. The displaced null resolves to no
  // region; the caller names only the region of the value it installs.
  int *Old = Space.sharedExchange(Slot, Obj, S, Tid);
  EXPECT_EQ(Old, nullptr);
  EXPECT_EQ(S->totalCount(), 1);
  // Replace with null: the displaced Obj resolves to S through the
  // page map and share()'s binding — no hint involved.
  Old = Space.sharedExchange<int>(Slot, nullptr, nullptr, Tid);
  EXPECT_EQ(Old, Obj);
  EXPECT_EQ(S->totalCount(), 0);
  EXPECT_TRUE(Space.tryDelete(S));
}

TEST_F(ParallelTest, ResolvingExchangeIgnoresNonRegionValues) {
  // Stack/global/malloc pointers pass through shared slots uncounted:
  // the resolve classifies them as not-in-any-region and drops nothing.
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  unsigned Tid = Space.registerThread();
  SharedRegion *S = Space.share(Mgr.newRegion());
  int StackVal = 5;
  std::atomic<int *> Slot{&StackVal};
  int *Obj = rnew<int>(S->region(), 42);
  EXPECT_EQ(Space.sharedExchange(Slot, Obj, S, Tid), &StackVal);
  EXPECT_EQ(S->totalCount(), 1) << "displaced stack pointer: no drop";
  EXPECT_EQ(Space.sharedExchange(Slot, &StackVal, nullptr, Tid), Obj);
  EXPECT_EQ(S->totalCount(), 0);
  EXPECT_TRUE(Space.tryDelete(S));
}

TEST_F(ParallelTest, ResolvingExchangeIgnoresPrivateRegionValues) {
  // A pointer into a region that was never share()d resolves to a null
  // binding: the region is private to its owner, no count to adjust.
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  unsigned Tid = Space.registerThread();
  Region *Priv = Mgr.newRegion();
  int *PrivObj = rnew<int>(Priv, 1);
  SharedRegion *S = Space.share(Mgr.newRegion());
  int *Obj = rnew<int>(S->region(), 2);
  std::atomic<int *> Slot{PrivObj};
  EXPECT_EQ(Space.sharedExchange(Slot, Obj, S, Tid), PrivObj);
  EXPECT_EQ(S->totalCount(), 1) << "displaced private-region pointer: no drop";
  Space.sharedExchange<int>(Slot, nullptr, nullptr, Tid);
  EXPECT_EQ(S->totalCount(), 0);
  EXPECT_TRUE(Space.tryDelete(S));
  EXPECT_TRUE(Mgr.deleteRegionRaw(Priv));
}

TEST_F(ParallelTest, ResolvingExchangeCrossRegion) {
  // The bug this API exists for, deterministically: a slot holding a
  // value from region A is overwritten with a value from region B. The
  // drop must land on A — the displaced reference's region — found by
  // resolution, not on anything the caller guessed.
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  unsigned Tid = Space.registerThread();
  SharedRegion *SA = Space.share(Mgr.newRegion());
  SharedRegion *SB = Space.share(Mgr.newRegion());
  int *ObjA = rnew<int>(SA->region(), 1);
  int *ObjB = rnew<int>(SB->region(), 2);
  std::atomic<int *> Slot{nullptr};
  Space.sharedExchange(Slot, ObjA, SA, Tid);
  EXPECT_EQ(SA->totalCount(), 1);
  EXPECT_EQ(SB->totalCount(), 0);
  // Cross-region overwrite: +1 on B, and the displaced value resolves
  // to A for the -1.
  EXPECT_EQ(Space.sharedExchange(Slot, ObjB, SB, Tid), ObjA);
  EXPECT_EQ(SA->totalCount(), 0) << "drop must resolve to region A";
  EXPECT_EQ(SB->totalCount(), 1);
  EXPECT_FALSE(Space.tryDelete(SB)) << "B is live in the slot";
  EXPECT_TRUE(Space.tryDelete(SA)) << "A's count must be exactly zero";
  Space.sharedExchange<int>(Slot, nullptr, nullptr, Tid);
  EXPECT_EQ(SB->totalCount(), 0);
  EXPECT_TRUE(Space.tryDelete(SB));
}

TEST_F(ParallelTest, CrossRegionRacingExchangesKeepSumsExact) {
  // Regression for the pre-resolving API: threads race install/clear
  // on ONE slot with values from TWO shared regions. A caller-supplied
  // "old region" is a pre-exchange guess about a post-exchange fact —
  // under this race the guessed drops systematically land on the wrong
  // region (one sum permanently high: leak; the other prematurely
  // zero: use-after-free at tryDelete). Resolution makes both sums
  // exact regardless of interleaving.
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  SharedRegion *SA = Space.share(Mgr.newRegion());
  SharedRegion *SB = Space.share(Mgr.newRegion());
  int *ObjA = rnew<int>(SA->region(), 1);
  int *ObjB = rnew<int>(SB->region(), 2);
  std::atomic<int *> Slot{nullptr};

  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != kThreads; ++T) {
    Threads.emplace_back([&, T] {
      unsigned Tid = Space.registerThread();
      for (int I = 0; I != kIters; ++I) {
        switch ((I + T) % 3) {
        case 0:
          Space.sharedExchange(Slot, ObjA, SA, Tid);
          break;
        case 1:
          Space.sharedExchange(Slot, ObjB, SB, Tid);
          break;
        default:
          Space.sharedExchange<int>(Slot, nullptr, nullptr, Tid);
          break;
        }
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  int *Final = Slot.load();
  EXPECT_EQ(SA->totalCount(), Final == ObjA ? 1 : 0)
      << "A's sum must be exactly its slot occupancy";
  EXPECT_EQ(SB->totalCount(), Final == ObjB ? 1 : 0)
      << "B's sum must be exactly its slot occupancy";
  // tryDelete accept/refuse must follow the slot: the occupied region
  // refuses (its reference is live), the other deletes.
  unsigned Tid = Space.registerThread();
  if (Final) {
    SharedRegion *Live = Final == ObjA ? SA : SB;
    SharedRegion *Dead = Final == ObjA ? SB : SA;
    EXPECT_FALSE(Space.tryDelete(Live)) << "live slot reference";
    EXPECT_TRUE(Space.tryDelete(Dead));
    Space.sharedExchange<int>(Slot, nullptr, nullptr, Tid);
    EXPECT_TRUE(Space.tryDelete(Live));
  } else {
    EXPECT_TRUE(Space.tryDelete(SA));
    EXPECT_TRUE(Space.tryDelete(SB));
  }
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
}

TEST_F(ParallelTest, QuiesceHandsDeletionToNonOwnerThread) {
  // The ROADMAP cross-thread hand-off: an owner that is permanently
  // done with its manager quiesces it into the space; a non-owner
  // thread's tryDelete may then run the authoritative deletion.
  auto Mgr = std::make_unique<RegionManager>(SafetyConfig::unsafeConfig());
  EXPECT_FALSE(Space.managerQuiesced(*Mgr));
  SharedRegion *S = nullptr;
  std::thread Owner([&] {
    unsigned Tid = Space.registerThread();
    S = Space.share(Mgr->newRegion());
    Space.addRef(S, Tid); // keep it alive past the owner's exit
    Space.quiesce(*Mgr);
  });
  Owner.join();
  EXPECT_TRUE(Space.managerQuiesced(*Mgr));
  // This thread never touched Mgr; the hand-off makes its tryDelete
  // legitimate once the count drains.
  unsigned Tid = Space.registerThread();
  EXPECT_FALSE(Space.tryDelete(S)) << "owner's pin is visible";
  Space.dropRef(S, Tid);
  EXPECT_TRUE(Space.tryDelete(S)) << "non-owner delete after quiesce";
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
  EXPECT_EQ(Mgr->liveRegionCount(), 0u);
}

TEST_F(ParallelTest, ManyThreadsChurnOneSlot) {
  // The paper's claim: atomic exchange keeps counts exact under data
  // races. N threads hammer one shared slot with install/clear pairs;
  // afterwards the sum must equal exactly the surviving reference.
  RegionManager OwnerMgr{SafetyConfig::unsafeConfig()};
  SharedRegion *S = Space.share(OwnerMgr.newRegion());
  int *Obj = rnew<int>(S->region(), 7);
  std::atomic<int *> Slot{nullptr};

  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != kThreads; ++T) {
    Threads.emplace_back([&, T] {
      unsigned Tid = Space.registerThread();
      for (int I = 0; I != kIters; ++I) {
        // Each displaced value's count is dropped by the displacing
        // thread, so the slot's content is counted exactly once.
        // Single-region slot: the hinted fast path is sound here (every
        // value racing through is S's or null), and RGN_HARDEN verifies
        // the hint against the resolution on every displacement.
        int *New = (I + T) % 2 ? Obj : nullptr;
        Space.sharedExchange(Slot, New, New ? S : nullptr, S, Tid);
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  std::int64_t Expected = Slot.load() ? 1 : 0;
  EXPECT_EQ(S->totalCount(), Expected)
      << "atomic exchange must keep the summed count exact";
  // Clear the slot and delete.
  unsigned Tid = Space.registerThread();
  Space.sharedExchange<int>(Slot, nullptr, nullptr, S, Tid);
  EXPECT_EQ(S->totalCount(), 0);
  EXPECT_TRUE(Space.tryDelete(S));
}

TEST_F(ParallelTest, ThreadsBuildInPrivateRegionsAndShare) {
  // The paper's usage model: threads allocate in their own regions
  // (no allocator synchronization) and publish references through
  // shared slots.
  constexpr int kThreads = 4;
  std::atomic<int *> Results[kThreads] = {};
  std::vector<SharedRegion *> Shared(kThreads);
  // Per-thread managers, owned beyond the threads' lifetimes so
  // published pointers stay valid until the main thread deletes.
  std::vector<std::unique_ptr<RegionManager>> Managers;
  for (int T = 0; T != kThreads; ++T)
    Managers.push_back(std::make_unique<RegionManager>(
        SafetyConfig::unsafeConfig(), std::size_t{64} << 20));
  {
    std::vector<std::thread> Threads;
    std::atomic<int> Ready{0};
    for (int T = 0; T != kThreads; ++T) {
      Threads.emplace_back([&, T] {
        unsigned Tid = Space.registerThread();
        // Thread-private manager: allocation needs no locks.
        RegionManager &Mgr = *Managers[static_cast<std::size_t>(T)];
        Region *R = Mgr.newRegion();
        SharedRegion *S = Space.share(R);
        Shared[static_cast<std::size_t>(T)] = S;
        int *Val = rnew<int>(R, T * 100);
        Space.sharedExchange(Results[T], Val, S, Tid);
        ++Ready;
        while (Ready.load() != kThreads)
          std::this_thread::yield();
        // Read a neighbour's published value.
        int *Peer = Results[(T + 1) % kThreads].load();
        EXPECT_EQ(*Peer, ((T + 1) % kThreads) * 100);
      });
    }
    for (auto &T : Threads)
      T.join();
  }
  // Main thread unpublishes and deletes everything.
  unsigned Tid = Space.registerThread();
  for (int T = 0; T != kThreads; ++T) {
    EXPECT_FALSE(Space.tryDelete(Shared[T])) << "still referenced";
    // Cross-arena resolve: the displaced value lives in thread T's
    // manager, not in any arena this thread allocated from.
    Space.sharedExchange<int>(Results[T], nullptr, nullptr, Tid);
    EXPECT_TRUE(Space.tryDelete(Shared[T]));
  }
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
}

TEST_F(ParallelTest, VisiblyNonZeroCountRefusesLockFree) {
  // The optimistic fast path: when the relaxed sum is visibly
  // non-zero, tryDelete must refuse without touching the shard lock.
  // The per-shard refusal counters are bumped only on the lock-free
  // paths, so they are the observable proof.
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  unsigned Tid = Space.registerThread();
  SharedRegion *S = Space.share(Mgr.newRegion());
  EXPECT_EQ(Space.lockFreeRefusals(), 0u);
  Space.addRef(S, Tid);
  EXPECT_FALSE(Space.tryDelete(S));
  EXPECT_EQ(Space.lockFreeRefusals(), 1u)
      << "a pinned region's refusal must be served by the relaxed sum";
  EXPECT_FALSE(Space.tryDelete(S));
  EXPECT_EQ(Space.lockFreeRefusals(), 2u);
  Space.dropRef(S, Tid);
  EXPECT_TRUE(Space.tryDelete(S));
  EXPECT_EQ(Space.lockFreeRefusals(), 2u)
      << "a successful delete takes the locked path, not the counter";
}

TEST_F(ParallelTest, ManyRegionsAcrossShardsDeleteInAnyOrder) {
  // Spread enough regions that every shard sees traffic, then delete
  // in an order unrelated to creation; re-share afterwards so pooled
  // records get reused with clean state (counts zeroed, Deleted and
  // Deleting flags reset).
  RegionManager Mgr{SafetyConfig::unsafeConfig(), std::size_t{64} << 20};
  constexpr int kRegions = 64;
  std::vector<SharedRegion *> Shared;
  bool ShardSeen[kNumShards] = {};
  for (int I = 0; I != kRegions; ++I) {
    Region *R = Mgr.newRegion();
    ShardSeen[ParallelSpace::shardOf(R)] = true;
    Shared.push_back(Space.share(R));
  }
  int ShardsHit = 0;
  for (bool Seen : ShardSeen)
    ShardsHit += Seen;
  EXPECT_GT(ShardsHit, 1) << "64 regions must spread past one shard";
  EXPECT_EQ(Space.liveSharedRegions(), static_cast<std::size_t>(kRegions));
  // Delete every third, then the rest back-to-front: exercises the
  // swap-pop index maintenance in each shard's live table.
  for (int I = 0; I < kRegions; I += 3) {
    EXPECT_TRUE(Space.tryDelete(Shared[I])) << "region " << I;
    Shared[I] = nullptr;
  }
  for (int I = kRegions - 1; I >= 0; --I) {
    if (Shared[I]) {
      EXPECT_TRUE(Space.tryDelete(Shared[I])) << "region " << I;
    }
  }
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
  // Reuse pooled records: fresh shares must behave like new ones.
  unsigned Tid = Space.registerThread();
  for (int I = 0; I != kRegions; ++I) {
    SharedRegion *S = Space.share(Mgr.newRegion());
    EXPECT_EQ(S->totalCount(), 0) << "pooled record must come back clean";
    Space.addRef(S, Tid);
    EXPECT_FALSE(Space.tryDelete(S));
    Space.dropRef(S, Tid);
    EXPECT_TRUE(Space.tryDelete(S)) << "pooled Deleting flag must reset";
  }
  EXPECT_EQ(Space.liveSharedRegions(), 0u);
}

#if !RGN_HARDEN_ENABLED
TEST_F(ParallelTest, RecordMagazineRecyclesOnRegisteredThreads) {
  // The TLS record magazine binds only in registerThread, whose
  // unregisterThread contract guarantees the flush — a raw deleter
  // thread could exit with stashed records and strand them (found by
  // LeakSanitizer), so unregistered threads route retired records to
  // the shard pool instead. A registered thread's share→tryDelete→
  // share cycle must recycle the identical record thread-locally.
  // (Hardened builds never pool records at all.)
  RegionManager Mgr{SafetyConfig::unsafeConfig()};
  unsigned Tid = Space.registerThread();
  SharedRegion *First = Space.share(Mgr.newRegion());
  ASSERT_TRUE(Space.tryDelete(First));
  SharedRegion *Second = Space.share(Mgr.newRegion());
  EXPECT_EQ(Second, First)
      << "registered thread must recycle its magazine-stashed record";
  ASSERT_TRUE(Space.tryDelete(Second));
  Space.unregisterThread(Tid);
}
#endif

TEST_F(ParallelTest, DoubleUnregisterDies) {
  // Releasing a slot twice would let two live threads share one index
  // (their adjustments would merge); the debug check must catch it.
  // Asserts stay on in every build type here, so no NDEBUG guard.
  unsigned Tid = Space.registerThread();
  Space.unregisterThread(Tid);
  EXPECT_DEATH(Space.unregisterThread(Tid), "double unregisterThread");
}

} // namespace
