//===- tests/DebugToolsTest.cpp - Debug aids and std allocator ------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Covers the region-debugging environment (the diagnosis tool the
// paper's §5.1 wishes for), the manager report, and the standard-
// library allocator adapter.
//
//===----------------------------------------------------------------------===//

#include "region/Debug.h"
#include "region/Regions.h"
#include "region/StdAllocator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace regions;

namespace {

struct Node {
  int V = 0;
  RegionPtr<Node> Next;
};

RegionPtr<Node> GlobalNode;

struct DebugToolsTest : ::testing::Test {
  void SetUp() override { GlobalNode = nullptr; }
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{64} << 20};
};

//===----------------------------------------------------------------------===//
// diagnoseDeletion
//===----------------------------------------------------------------------===//

TEST_F(DebugToolsTest, CleanRegionWouldSucceed) {
  rt::Frame F;
  rt::RegionHandle R = Mgr.newRegion();
  rnew<Node>(R);
  DeletionDiagnosis D = diagnoseDeletion(R.get(), R.slotAddress());
  EXPECT_TRUE(D.WouldSucceed);
  EXPECT_EQ(D.CountedRefs, 0);
  EXPECT_TRUE(D.BlockingStackSlots.empty());
  EXPECT_TRUE(deleteRegion(R)) << "diagnosis must agree with reality";
}

TEST_F(DebugToolsTest, FindsTheStaleLocal) {
  rt::Frame F;
  rt::RegionHandle R = Mgr.newRegion();
  rt::Ref<Node> Stale = rnew<Node>(R);
  DeletionDiagnosis D = diagnoseDeletion(R.get(), R.slotAddress());
  EXPECT_FALSE(D.WouldSucceed);
  ASSERT_EQ(D.BlockingStackSlots.size(), 1u);
  EXPECT_EQ(D.BlockingStackSlots[0],
            reinterpret_cast<void *const *>(Stale.slotAddress()))
      << "the diagnosis must name the exact offending local";
  EXPECT_EQ(D.BlockingStackValues[0], Stale.get());
  EXPECT_FALSE(deleteRegion(R));
  Stale = nullptr;
  EXPECT_TRUE(diagnoseDeletion(R.get(), R.slotAddress()).WouldSucceed);
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(DebugToolsTest, CountsGlobalAndCrossRegionRefs) {
  rt::Frame F;
  rt::RegionHandle R = Mgr.newRegion();
  rt::RegionHandle Other = Mgr.newRegion();
  Node *In = rnew<Node>(R);
  GlobalNode = In;
  rnew<Node>(Other)->Next = In;
  DeletionDiagnosis D = diagnoseDeletion(R.get(), R.slotAddress());
  EXPECT_FALSE(D.WouldSucceed);
  EXPECT_EQ(D.CountedRefs, 2) << "one global + one cross-region";
  EXPECT_TRUE(D.BlockingStackSlots.empty());
  GlobalNode = nullptr;
  EXPECT_EQ(diagnoseDeletion(R.get(), R.slotAddress()).CountedRefs, 1);
  EXPECT_TRUE(deleteRegion(Other));
  EXPECT_TRUE(diagnoseDeletion(R.get(), R.slotAddress()).WouldSucceed);
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(DebugToolsTest, DiagnosisIsNonMutating) {
  rt::Frame F;
  rt::RegionHandle R = Mgr.newRegion();
  rt::Ref<Node> Keep = rnew<Node>(R);
  long long Before = R->referenceCount();
  for (int I = 0; I != 10; ++I)
    diagnoseDeletion(R.get(), R.slotAddress());
  EXPECT_EQ(R->referenceCount(), Before);
  EXPECT_EQ(rt::RuntimeStack::current().scannedFrameCount(), 0u)
      << "diagnosis must not move the high-water mark";
  Keep = nullptr;
  EXPECT_TRUE(deleteRegion(R));
}

TEST_F(DebugToolsTest, UnsafeRegionsAlwaysDiagnoseDeletable) {
  RegionManager Unsafe{SafetyConfig::unsafeConfig(), std::size_t{16} << 20};
  rt::Frame F;
  Region *R = Unsafe.newRegion();
  rt::Ref<Node> Stale = rnew<Node>(R);
  EXPECT_TRUE(diagnoseDeletion(R).WouldSucceed);
  Stale = nullptr;
  EXPECT_TRUE(Unsafe.deleteRegionRaw(R));
}

TEST_F(DebugToolsTest, AnonymousDiagnosisCountsHandle) {
  // Without an excluded handle, a counted global handle is a blocker.
  static RegionPtr<Region> Handle;
  Handle = Mgr.newRegion();
  EXPECT_FALSE(diagnoseDeletion(Handle.get()).WouldSucceed);
  EXPECT_TRUE(diagnoseDeletion(Handle.get(), Handle.slotAddress(),
                               /*HandleCounted=*/true)
                  .WouldSucceed);
  EXPECT_TRUE(deleteRegion(Handle));
}

TEST_F(DebugToolsTest, PrintFunctionsProduceOutput) {
  rt::Frame F;
  rt::RegionHandle R = Mgr.newRegion();
  rt::Ref<Node> Stale = rnew<Node>(R);
  DeletionDiagnosis D = diagnoseDeletion(R.get(), R.slotAddress());

  char *Buf = nullptr;
  std::size_t Len = 0;
  std::FILE *Mem = open_memstream(&Buf, &Len);
  printDiagnosis(D, R.get(), Mem);
  printManagerReport(Mgr, Mem);
  std::fclose(Mem);
  std::string Out(Buf, Len);
  free(Buf);
  EXPECT_NE(Out.find("FAIL"), std::string::npos);
  EXPECT_NE(Out.find("live local"), std::string::npos);
  EXPECT_NE(Out.find("RegionManager report"), std::string::npos);
  EXPECT_NE(Out.find("barriers"), std::string::npos);
  Stale = nullptr;
  EXPECT_TRUE(deleteRegion(R));
}

//===----------------------------------------------------------------------===//
// RegionStdAllocator
//===----------------------------------------------------------------------===//

TEST_F(DebugToolsTest, VectorOverRegion) {
  Region *R = Mgr.newRegion();
  std::vector<int, RegionStdAllocator<int>> V{RegionStdAllocator<int>(R)};
  for (int I = 0; I != 10000; ++I)
    V.push_back(I);
  EXPECT_EQ(regionOf(V.data()), R);
  long Sum = 0;
  for (int X : V)
    Sum += X;
  EXPECT_EQ(Sum, 49995000);
  // Growth left old buffers as region garbage: requested > final size.
  EXPECT_GT(R->requestedBytes(), V.size() * sizeof(int));
  V = decltype(V)(RegionStdAllocator<int>(R)); // drop the buffer first
  EXPECT_TRUE(Mgr.deleteRegionRaw(R));
}

TEST_F(DebugToolsTest, StringOverRegion) {
  Region *R = Mgr.newRegion();
  using RStr =
      std::basic_string<char, std::char_traits<char>,
                        RegionStdAllocator<char>>;
  RStr S{RegionStdAllocator<char>(R)};
  for (int I = 0; I != 100; ++I)
    S += "regions! ";
  EXPECT_EQ(S.size(), 900u);
  EXPECT_EQ(regionOf(S.data()), R);
}

TEST_F(DebugToolsTest, AllocatorEqualityFollowsRegion) {
  Region *R1 = Mgr.newRegion();
  Region *R2 = Mgr.newRegion();
  RegionStdAllocator<int> A1(R1), A1b(R1);
  RegionStdAllocator<long> A2(R2);
  EXPECT_TRUE(A1 == A1b);
  EXPECT_TRUE(A1 != A2);
  RegionStdAllocator<double> Rebound(A1);
  EXPECT_EQ(Rebound.region(), R1);
}

TEST_F(DebugToolsTest, NestedContainersOverOneRegion) {
  Region *R = Mgr.newRegion();
  using InnerVec = std::vector<int, RegionStdAllocator<int>>;
  using OuterVec =
      std::vector<InnerVec, RegionStdAllocator<InnerVec>>;
  OuterVec Outer{RegionStdAllocator<InnerVec>(R)};
  for (int I = 0; I != 50; ++I) {
    InnerVec Inner{RegionStdAllocator<int>(R)};
    for (int J = 0; J != I; ++J)
      Inner.push_back(J);
    Outer.push_back(std::move(Inner));
  }
  EXPECT_EQ(Outer[49].size(), 49u);
  EXPECT_EQ(regionOf(Outer.data()), R);
  EXPECT_EQ(regionOf(Outer[49].data()), R);
}

} // namespace
