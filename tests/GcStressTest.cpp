//===- tests/GcStressTest.cpp - Collector stress and policy tests ---------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Beyond GcTest.cpp's unit coverage: allocation-policy behaviour,
// metadata recycling, mixed object sizes under churn, and the
// §1 heap-headroom claim in miniature.
//
//===----------------------------------------------------------------------===//

#include "gc/GcHeap.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace regions;

namespace {

struct Cell {
  Cell *Next;
  std::uint64_t Tag;
  std::uint64_t Pad[2];
};

struct GcStressTest : ::testing::Test {
  GcStressTest() : Heap(std::size_t{1} << 28) {
    Heap.setScanMachineStack(false);
  }
  GcHeap Heap;
};

TEST_F(GcStressTest, SizeClassesServeAllSmallSizes) {
  static void *Keep[256];
  Heap.addRootRange(Keep, Keep + 256);
  for (int I = 1; I <= 256; ++I) {
    Keep[I - 1] = Heap.malloc(static_cast<std::size_t>(I) * 8);
    std::memset(Keep[I - 1], 0x11, static_cast<std::size_t>(I) * 8);
  }
  Heap.collect();
  for (int I = 1; I <= 256; ++I) {
    ASSERT_TRUE(Heap.isLiveObject(Keep[I - 1])) << "size " << I * 8;
    auto *P = static_cast<unsigned char *>(Keep[I - 1]);
    ASSERT_EQ(P[static_cast<std::size_t>(I) * 8 - 1], 0x11u);
  }
  std::memset(Keep, 0, sizeof(Keep));
  Heap.removeRootRange(Keep);
}

TEST_F(GcStressTest, BitmapSlotsAreRecycled) {
  // Fill pages, free them all, fill again: the bitmap pool must not
  // grow without bound.
  for (int Round = 0; Round != 10; ++Round) {
    for (int I = 0; I != 20000; ++I)
      Heap.malloc(32);
    Heap.collect();
  }
  // All rounds dead: heap stays bounded.
  EXPECT_LT(Heap.osBytes(), std::size_t{16} << 20);
}

TEST_F(GcStressTest, LargeObjectChurnReusesRuns) {
  for (int Round = 0; Round != 200; ++Round) {
    void *P = Heap.malloc(6 * kPageSize);
    std::memset(P, Round & 0xff, 6 * kPageSize);
    if (Round % 16 == 15)
      Heap.collect();
  }
  Heap.collect();
  EXPECT_LT(Heap.osBytes(), std::size_t{32} << 20)
      << "dead large runs must be reused";
}

TEST_F(GcStressTest, DeepListSurvivesRepeatedCollections) {
  static Cell *Head;
  Head = nullptr;
  Heap.addRootRange(&Head, &Head + 1);
  constexpr int N = 30000;
  for (int I = 0; I != N; ++I) {
    auto *C = static_cast<Cell *>(Heap.malloc(sizeof(Cell)));
    C->Next = Head;
    C->Tag = static_cast<std::uint64_t>(I) * 2654435761u;
    Head = C;
  }
  for (int Round = 0; Round != 5; ++Round) {
    Heap.collect();
    int Count = 0;
    std::uint64_t XorSum = 0;
    for (Cell *C = Head; C; C = C->Next) {
      XorSum ^= C->Tag;
      ++Count;
    }
    ASSERT_EQ(Count, N) << "round " << Round;
    std::uint64_t Expect = 0;
    for (int I = 0; I != N; ++I)
      Expect ^= static_cast<std::uint64_t>(I) * 2654435761u;
    ASSERT_EQ(XorSum, Expect);
  }
  Head = nullptr;
  Heap.removeRootRange(&Head);
}

TEST_F(GcStressTest, PartialDeathInSharedPages) {
  // Objects of one size class share pages; killing every other object
  // must free exactly those and keep the survivors intact.
  static Cell *Survivors[500];
  Heap.addRootRange(Survivors, Survivors + 500);
  std::vector<Cell *> Doomed;
  for (int I = 0; I != 1000; ++I) {
    auto *C = static_cast<Cell *>(Heap.malloc(sizeof(Cell)));
    C->Tag = static_cast<std::uint64_t>(I);
    C->Next = nullptr;
    if (I % 2 == 0)
      Survivors[I / 2] = C;
    else
      Doomed.push_back(C);
  }
  Heap.collect();
  for (int I = 0; I != 500; ++I) {
    ASSERT_TRUE(Heap.isLiveObject(Survivors[I]));
    ASSERT_EQ(Survivors[I]->Tag, static_cast<std::uint64_t>(I * 2));
  }
  for (Cell *C : Doomed)
    EXPECT_FALSE(Heap.isLiveObject(C));
  std::memset(Survivors, 0, sizeof(Survivors));
  Heap.removeRootRange(Survivors);
}

TEST_F(GcStressTest, HeadroomPolicyControlsCollections) {
  // The paper's §1 framing: less headroom, more collections.
  auto ChurnWith = [](double Factor) {
    GcHeap H(std::size_t{1} << 27);
    H.setScanMachineStack(false);
    H.setGrowthFactor(Factor);
    static Cell *Core;
    Core = nullptr;
    H.addRootRange(&Core, &Core + 1);
    for (int I = 0; I != 3000; ++I) { // live core
      auto *C = static_cast<Cell *>(H.malloc(sizeof(Cell)));
      C->Next = Core;
      Core = C;
    }
    for (int I = 0; I != 100000; ++I) // garbage
      H.malloc(sizeof(Cell));
    std::uint64_t Collections = H.gcStats().Collections;
    Core = nullptr;
    H.removeRootRange(&Core);
    return Collections;
  };
  std::uint64_t Tight = ChurnWith(0.25);
  std::uint64_t Ample = ChurnWith(4.0);
  EXPECT_GT(Tight, Ample * 3)
      << "tight heaps must collect far more often";
}

TEST_F(GcStressTest, RandomGraphMutationUnderAutoCollect) {
  Heap.setGrowthFactor(0.5); // collect aggressively
  static Cell *Roots[64];
  std::memset(Roots, 0, sizeof(Roots));
  Heap.addRootRange(Roots, Roots + 64);
  Prng Rng(31);
  for (int Step = 0; Step != 100000; ++Step) {
    unsigned Slot = static_cast<unsigned>(Rng.nextBelow(64));
    auto *C = static_cast<Cell *>(Heap.malloc(sizeof(Cell)));
    C->Next = Roots[Rng.nextBelow(64)];
    C->Tag = reinterpret_cast<std::uintptr_t>(C) ^ 0x5a5a5a5a;
    Roots[Slot] = C;
  }
  EXPECT_GT(Heap.gcStats().Collections, 0u);
  // Verify integrity of everything reachable.
  for (Cell *C : Roots) {
    int Guard = 0;
    for (Cell *Cur = C; Cur && Guard < 1000000; Cur = Cur->Next, ++Guard)
      ASSERT_EQ(Cur->Tag, reinterpret_cast<std::uintptr_t>(Cur) ^
                              0x5a5a5a5a);
  }
  std::memset(Roots, 0, sizeof(Roots));
  Heap.removeRootRange(Roots);
}

} // namespace
