//===- tests/SupportTest.cpp - Support utilities tests --------------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Align.h"
#include "support/PageSource.h"
#include "support/Prng.h"
#include "support/Stopwatch.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

using namespace regions;

//===----------------------------------------------------------------------===//
// Align
//===----------------------------------------------------------------------===//

TEST(AlignTest, AlignToRoundsUp) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(9, 8), 16u);
  EXPECT_EQ(alignTo(4095, 4096), 4096u);
  EXPECT_EQ(alignTo(4097, 4096), 8192u);
}

TEST(AlignTest, AlignDownRoundsDown) {
  EXPECT_EQ(alignDown(0, 8), 0u);
  EXPECT_EQ(alignDown(7, 8), 0u);
  EXPECT_EQ(alignDown(8, 8), 8u);
  EXPECT_EQ(alignDown(4097, 4096), 4096u);
}

TEST(AlignTest, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(4096));
  EXPECT_FALSE(isPowerOf2(4097));
}

TEST(AlignTest, NextPowerOf2) {
  EXPECT_EQ(nextPowerOf2(1), 1u);
  EXPECT_EQ(nextPowerOf2(3), 4u);
  EXPECT_EQ(nextPowerOf2(16), 16u);
  EXPECT_EQ(nextPowerOf2(17), 32u);
}

TEST(AlignTest, Log2OfPow2) {
  EXPECT_EQ(log2OfPow2(1), 0u);
  EXPECT_EQ(log2OfPow2(2), 1u);
  EXPECT_EQ(log2OfPow2(4096), 12u);
}

TEST(AlignTest, IsAlignedChecksPointers) {
  alignas(16) char Buf[32];
  EXPECT_TRUE(isAligned(Buf, 8));
  EXPECT_FALSE(isAligned(Buf + 1, 8));
  EXPECT_TRUE(isAligned(Buf + 8, 8));
}

//===----------------------------------------------------------------------===//
// Prng
//===----------------------------------------------------------------------===//

TEST(PrngTest, DeterministicForSameSeed) {
  Prng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(PrngTest, NextBelowInRange) {
  Prng P(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(P.nextBelow(17), 17u);
}

TEST(PrngTest, NextInRangeInclusive) {
  Prng P(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 5000; ++I) {
    std::uint64_t V = P.nextInRange(3, 6);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 6u);
    SawLo |= V == 3;
    SawHi |= V == 6;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng P(9);
  for (int I = 0; I < 1000; ++I) {
    double D = P.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(PrngTest, SkewedFavorsSmall) {
  Prng P(11);
  int Small = 0;
  for (int I = 0; I < 10000; ++I)
    Small += P.nextSkewed(0, 1000) < 200;
  // Cubing the uniform puts ~58% of mass below 0.2*max.
  EXPECT_GT(Small, 5000);
}

TEST(PrngTest, ReseedResets) {
  Prng P(5);
  std::uint64_t First = P.next();
  P.next();
  P.reseed(5);
  EXPECT_EQ(P.next(), First);
}

//===----------------------------------------------------------------------===//
// PageSource
//===----------------------------------------------------------------------===//

TEST(PageSourceTest, AllocatesAlignedDistinctPages) {
  PageSource S(1 << 20);
  void *A = S.allocPages(1);
  void *B = S.allocPages(1);
  EXPECT_NE(A, B);
  EXPECT_TRUE(isAligned(A, kPageSize));
  EXPECT_TRUE(isAligned(B, kPageSize));
}

TEST(PageSourceTest, PagesAreWritable) {
  PageSource S(1 << 20);
  auto *P = static_cast<char *>(S.allocPages(2));
  std::memset(P, 0xab, 2 * kPageSize);
  EXPECT_EQ(P[0], static_cast<char>(0xab));
  EXPECT_EQ(P[2 * kPageSize - 1], static_cast<char>(0xab));
}

TEST(PageSourceTest, ReusesFreedPagesBeforeGrowing) {
  PageSource S(1 << 20);
  void *A = S.allocPages(1);
  std::size_t Os = S.osBytes();
  S.freePages(A, 1);
  void *B = S.allocPages(1);
  EXPECT_EQ(A, B);
  EXPECT_EQ(S.osBytes(), Os) << "reuse must not grow the OS footprint";
}

TEST(PageSourceTest, OsBytesIsHighWaterMark) {
  PageSource S(1 << 20);
  void *A = S.allocPages(4);
  EXPECT_EQ(S.osBytes(), 4 * kPageSize);
  S.freePages(A, 4);
  EXPECT_EQ(S.osBytes(), 4 * kPageSize) << "freeing never shrinks OS bytes";
  EXPECT_EQ(S.inUseBytes(), 0u);
}

TEST(PageSourceTest, LargeRunSplitFirstFit) {
  PageSource S(1 << 22);
  void *Big = S.allocPages(64);
  S.freePages(Big, 64);
  // A smaller request should be carved from the freed run.
  void *Small = S.allocPages(20);
  EXPECT_EQ(Small, Big);
  std::size_t Before = S.osBytes();
  void *Rest = S.allocPages(44);
  EXPECT_EQ(S.osBytes(), Before) << "remainder must satisfy the second request";
  EXPECT_EQ(static_cast<char *>(Rest),
            static_cast<char *>(Big) + 20 * kPageSize);
}

TEST(PageSourceTest, ContainsAndPageIndex) {
  PageSource S(1 << 20);
  auto *P = static_cast<char *>(S.allocPages(2));
  EXPECT_TRUE(S.contains(P));
  EXPECT_TRUE(S.contains(P + kPageSize + 100));
  EXPECT_EQ(S.pageIndex(P) + 1, S.pageIndex(P + kPageSize));
  int Local;
  EXPECT_FALSE(S.contains(&Local));
}

TEST(PageSourceTest, ContainsCoversWholeReservedArena) {
  // Regression test: contains() documented "within the reserved arena"
  // but tested the frontier, so an address between the frontier and
  // the end of the reservation answered false — and the answer for a
  // fixed address changed as unrelated allocations moved the frontier.
  PageSource S(1 << 20);
  S.allocPages(2); // frontier = 2 pages; reservation = 256 pages
  ASSERT_LT(std::size_t{2}, S.reservedPages());
  char *BetweenFrontierAndEnd = S.base() + 5 * kPageSize;
  EXPECT_TRUE(S.contains(BetweenFrontierAndEnd))
      << "reserved-but-unissued pages are inside the arena";
  EXPECT_TRUE(S.contains(S.base() + S.reservedPages() * kPageSize - 1));
  EXPECT_FALSE(S.contains(S.base() + S.reservedPages() * kPageSize));
  EXPECT_FALSE(S.contains(S.base() - 1));
}

TEST(PageSourceTest, ContainsHandedOutTracksFrontier) {
  // The tighter probe the GC's root scan wants: only pages that were
  // actually issued. Monotone in the frontier, not allocation state —
  // a freed page was still handed out once.
  PageSource S(1 << 20);
  EXPECT_FALSE(S.containsHandedOut(S.base()));
  void *P = S.allocPages(2);
  EXPECT_TRUE(S.containsHandedOut(P));
  EXPECT_TRUE(S.containsHandedOut(S.base() + 2 * kPageSize - 1));
  EXPECT_FALSE(S.containsHandedOut(S.base() + 2 * kPageSize));
  S.freePages(P, 2);
  EXPECT_TRUE(S.containsHandedOut(P)) << "freeing does not rewind it";
  EXPECT_EQ(S.frontierPages(), 2u);
}

TEST(PageSourceTest, CoalesceSweepCounterTicks) {
  PageSource S(1 << 20);
  EXPECT_EQ(S.coalesceSweeps(), 0u);
  // Two adjacent single-page frees, then an explicit sweep merges them.
  auto *P = static_cast<char *>(S.allocPages(2));
  S.freePages(P, 1);
  S.freePages(P + kPageSize, 1);
  S.coalesceFreeRuns();
  EXPECT_EQ(S.coalesceSweeps(), 1u);
  // The merged pair serves a 2-page request without frontier growth.
  std::size_t Os = S.osBytes();
  EXPECT_EQ(S.allocPages(2), P);
  EXPECT_EQ(S.osBytes(), Os);
  S.resetForTesting();
  EXPECT_EQ(S.coalesceSweeps(), 0u) << "reset rewinds the counter";
}

TEST(PageSourceTest, InUseTracksAllocationsAndFrees) {
  PageSource S(1 << 20);
  void *A = S.allocPages(3);
  void *B = S.allocPages(2);
  EXPECT_EQ(S.inUseBytes(), 5 * kPageSize);
  S.freePages(A, 3);
  EXPECT_EQ(S.inUseBytes(), 2 * kPageSize);
  S.freePages(B, 2);
  EXPECT_EQ(S.inUseBytes(), 0u);
}

TEST(PageSourceTest, ManyAllocFreeCyclesStayBounded) {
  PageSource S(1 << 22);
  for (int I = 0; I < 1000; ++I) {
    void *P = S.allocPages(1 + (I % 4));
    S.freePages(P, 1 + (I % 4));
  }
  EXPECT_LE(S.osBytes(), 16 * kPageSize);
}

TEST(PageSourceTest, FreshPagesReportZeroed) {
  PageSource S(1 << 20);
  bool Zeroed = false;
  auto *P = static_cast<unsigned char *>(S.allocPages(2, &Zeroed));
  EXPECT_TRUE(Zeroed) << "frontier pages come from anonymous mappings";
  for (std::size_t I = 0; I < 2 * kPageSize; I += 257)
    ASSERT_EQ(P[I], 0u) << "stale byte at offset " << I;
}

TEST(PageSourceTest, RecycledPagesReportDirty) {
  PageSource S(1 << 20);
  void *P = S.allocPages(1);
  std::memset(P, 0xee, kPageSize);
  S.freePages(P, 1);
  bool Zeroed = true;
  void *Q = S.allocPages(1, &Zeroed);
  EXPECT_EQ(Q, P);
  EXPECT_FALSE(Zeroed) << "recycled pages must be reported dirty";
  // The same holds for multi-page runs through the size bins.
  void *Big = S.allocPages(4);
  S.freePages(Big, 4);
  Zeroed = true;
  EXPECT_EQ(S.allocPages(4, &Zeroed), Big);
  EXPECT_FALSE(Zeroed);
}

TEST(PageSourceTest, SinglePageCacheIsLifo) {
  PageSource S(1 << 20);
  void *A = S.allocPages(1);
  void *B = S.allocPages(1);
  void *C = S.allocPages(1);
  S.freePages(A, 1);
  S.freePages(B, 1);
  S.freePages(C, 1);
  EXPECT_EQ(S.cachedSinglePages(), 3u);
  EXPECT_EQ(S.allocPages(1), C) << "most recently freed page reused first";
  EXPECT_EQ(S.allocPages(1), B);
  EXPECT_EQ(S.allocPages(1), A);
  EXPECT_EQ(S.cachedSinglePages(), 0u);
}

TEST(PageSourceTest, ResetPreservesDirtyTracking) {
  PageSource S(1 << 20);
  void *P = S.allocPages(1);
  std::memset(P, 0x5a, kPageSize);
  S.resetForTesting();
  EXPECT_EQ(S.inUseBytes(), 0u);
  EXPECT_EQ(S.cachedSinglePages(), 0u);
  // The rewound frontier hands back the same page, but its contents
  // were never rewritten: it must not be reported zeroed.
  bool Zeroed = true;
  void *Q = S.allocPages(1, &Zeroed);
  EXPECT_EQ(Q, P);
  EXPECT_FALSE(Zeroed);
}

TEST(PageSourceTest, LargeRunRemainderRebinsExactly) {
  // Audit of the first-fit carve: when the remainder of a large run
  // fits a bin (<= kMaxBin pages), it must move to that exact bin and
  // serve an exact-size request with no frontier growth.
  PageSource S(1 << 22);
  auto *Big = static_cast<char *>(S.allocPages(64));
  S.freePages(Big, 64);
  void *Carved = S.allocPages(50); // remainder 14 <= kMaxBin
  EXPECT_EQ(Carved, Big);
  std::size_t Os = S.osBytes();
  void *Rest = S.allocPages(14);
  EXPECT_EQ(S.osBytes(), Os) << "rebinned remainder must serve the request";
  EXPECT_EQ(static_cast<char *>(Rest), Big + 50 * kPageSize);
}

TEST(PageSourceTest, SplitsSmallerRunsFromLargerBins) {
  PageSource S(1 << 22);
  auto *Run8 = static_cast<char *>(S.allocPages(8));
  S.freePages(Run8, 8);
  std::size_t Os = S.osBytes();
  // No 3-run exists; the 8-run must split rather than grow the
  // frontier, and its remainder must rebin exactly.
  void *Three = S.allocPages(3);
  EXPECT_EQ(Three, Run8);
  void *Five = S.allocPages(5);
  EXPECT_EQ(static_cast<char *>(Five), Run8 + 3 * kPageSize);
  EXPECT_EQ(S.osBytes(), Os) << "bin splitting must avoid frontier growth";
}

TEST(PageSourceTest, CoalescingReformsChunkedFrees) {
  // A run freed in arbitrary page-aligned pieces must be reusable
  // whole: deferred coalescing re-merges the pieces before the
  // frontier would grow.
  PageSource S(1 << 22);
  auto *Run = static_cast<char *>(S.allocPages(16));
  std::size_t Os = S.osBytes();
  for (int I = 0; I < 4; ++I)
    S.freePages(Run + I * 4 * kPageSize, 4);
  EXPECT_EQ(S.allocPages(16), Run);
  EXPECT_EQ(S.osBytes(), Os) << "chunked frees must re-form the large run";
}

TEST(PageSourceTest, FragmentationStressStaysBounded) {
  // Churn single pages and mixed run sizes, free everything in an
  // interleaved order, then demand the whole footprint as one run:
  // coalescing must satisfy it without any new frontier growth.
  PageSource S(1 << 22);
  constexpr int kPages = 48;
  char *Pages[kPages];
  for (auto &P : Pages)
    P = static_cast<char *>(S.allocPages(1));
  std::size_t Os = S.osBytes();
  for (int I = 0; I < kPages; I += 2) // evens, then odds
    S.freePages(Pages[I], 1);
  for (int I = 1; I < kPages; I += 2)
    S.freePages(Pages[I], 1);
  void *Whole = S.allocPages(kPages);
  EXPECT_EQ(Whole, Pages[0]);
  EXPECT_EQ(S.osBytes(), Os)
      << "interleaved single-page frees must coalesce into one run";
  S.freePages(Whole, kPages);

  // Mixed run sizes, freed out of order, reassembled again.
  char *A = static_cast<char *>(S.allocPages(5));
  char *B = static_cast<char *>(S.allocPages(11));
  char *C = static_cast<char *>(S.allocPages(16));
  char *D = static_cast<char *>(S.allocPages(16));
  Os = S.osBytes();
  S.freePages(C, 16);
  S.freePages(A, 5);
  S.freePages(D, 16);
  S.freePages(B, 11);
  EXPECT_EQ(S.allocPages(48), A);
  EXPECT_EQ(S.osBytes(), Os);
}

TEST(PageSourceTest, FrontierAbuttingRunSeedsGrowth) {
  // A free run ending exactly at the frontier serves an oversized
  // request by growing the frontier only by the shortfall.
  PageSource S(1 << 22);
  void *A = S.allocPages(4);
  S.freePages(A, 4);
  bool Zeroed = true;
  void *B = S.allocPages(6, &Zeroed);
  EXPECT_EQ(B, A);
  EXPECT_EQ(S.osBytes(), 6 * kPageSize)
      << "only the 2-page shortfall may come from the frontier";
  EXPECT_FALSE(Zeroed) << "the recycled prefix is dirty";
}

TEST(PageSourceTest, ResetClearsCoalescingStateAndZeroGuarantees) {
  PageSource S(1 << 20);
  auto *A = static_cast<char *>(S.allocPages(3));
  void *B = S.allocPages(2);
  std::memset(A, 0x77, 3 * kPageSize);
  S.freePages(A, 3);
  S.freePages(B, 2);
  S.resetForTesting();
  EXPECT_EQ(S.inUseBytes(), 0u);
  EXPECT_EQ(S.osBytes(), 0u);
  EXPECT_EQ(S.cachedSinglePages(), 0u);
  EXPECT_EQ(S.freeListedPages(), 0u) << "no free-listed runs may survive reset";
  S.coalesceFreeRuns(); // must be a no-op on the clean state
  EXPECT_EQ(S.freeListedPages(), 0u);

  // Reset -> realloc reproduces the fresh-arena guarantees: previously
  // touched pages come back dirty, never-touched pages still zeroed.
  bool Zeroed = true;
  auto *P = static_cast<char *>(S.allocPages(5, &Zeroed));
  EXPECT_EQ(P, A);
  EXPECT_FALSE(Zeroed) << "pre-reset contents were not rewound";
  Zeroed = false;
  auto *Q = static_cast<unsigned char *>(S.allocPages(2, &Zeroed));
  EXPECT_TRUE(Zeroed) << "pages past the pre-reset high water are fresh";
  for (std::size_t I = 0; I < 2 * kPageSize; I += 509)
    ASSERT_EQ(Q[I], 0u);
}

//===----------------------------------------------------------------------===//
// Stopwatch
//===----------------------------------------------------------------------===//

TEST(StopwatchTest, AccumulatesTime) {
  Stopwatch W;
  W.start();
  W.stop();
  std::uint64_t First = W.nanos();
  W.start();
  W.stop();
  EXPECT_GE(W.nanos(), First);
}

TEST(StopwatchTest, ResetClears) {
  Stopwatch W;
  W.start();
  W.stop();
  W.reset();
  EXPECT_EQ(W.nanos(), 0u);
}

TEST(StopwatchTest, MonotonicNanosAdvances) {
  std::uint64_t A = monotonicNanos();
  std::uint64_t B = monotonicNanos();
  EXPECT_LE(A, B);
}

//===----------------------------------------------------------------------===//
// TableWriter
//===----------------------------------------------------------------------===//

TEST(TableWriterTest, FormatHelpers) {
  EXPECT_EQ(TableWriter::fmt(std::uint64_t{1234}), "1234");
  EXPECT_EQ(TableWriter::fmt(1.5, 2), "1.50");
  EXPECT_EQ(TableWriter::fmtKb(2048), "2.0");
  EXPECT_EQ(TableWriter::fmtPercentOf(110.0, 100.0), "+10.0%");
  EXPECT_EQ(TableWriter::fmtPercentOf(90.0, 100.0), "-10.0%");
  EXPECT_EQ(TableWriter::fmtPercentOf(1.0, 0.0), "n/a");
}

TEST(TableWriterTest, PrintsAlignedRows) {
  TableWriter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  // Smoke test: printing to a memstream must not crash and must include
  // all cells.
  char *Buf = nullptr;
  std::size_t Len = 0;
  std::FILE *F = open_memstream(&Buf, &Len);
  ASSERT_NE(F, nullptr);
  T.print(F);
  std::fclose(F);
  std::string Out(Buf, Len);
  free(Buf);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  EXPECT_NE(Out.find("22"), std::string::npos);
}
