//===- tests/AllocValidationTest.cpp - Heap invariant fuzzing -------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Fuzzes the boundary-tag allocators (Sun best-fit and Lea) under
// randomized alloc/free schedules, running the exhaustive heap
// validator after every batch: chunk sizes, boundary-tag flags, free
// footers, coalescing completeness, and fence integrity.
//
//===----------------------------------------------------------------------===//

#include "alloc/BestFitAllocator.h"
#include "alloc/LeaAllocator.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace regions;

namespace {

template <class Allocator> class BoundaryTagFuzz : public ::testing::Test {};

using BoundaryTagAllocators = ::testing::Types<LeaAllocator,
                                               BestFitAllocator>;
TYPED_TEST_SUITE(BoundaryTagFuzz, BoundaryTagAllocators);

TYPED_TEST(BoundaryTagFuzz, FreshHeapValidates) {
  TypeParam A(1 << 24);
  auto Check = A.validateHeap();
  EXPECT_TRUE(Check.Ok) << Check.Error;
  EXPECT_EQ(Check.Chunks, 0u) << "no segments yet";
  A.malloc(100);
  Check = A.validateHeap();
  EXPECT_TRUE(Check.Ok) << Check.Error;
  EXPECT_GE(Check.Chunks, 1u);
}

TYPED_TEST(BoundaryTagFuzz, SplitAndCoalesceValidate) {
  TypeParam A(1 << 24);
  void *P1 = A.malloc(1000);
  void *P2 = A.malloc(1000);
  void *P3 = A.malloc(1000);
  EXPECT_TRUE(A.validateHeap().Ok);
  A.free(P2);
  EXPECT_TRUE(A.validateHeap().Ok) << "hole between in-use chunks";
  A.free(P1);
  EXPECT_TRUE(A.validateHeap().Ok) << "left-coalesce";
  A.free(P3);
  auto Check = A.validateHeap();
  EXPECT_TRUE(Check.Ok) << Check.Error;
  EXPECT_EQ(Check.FreeChunks, 1u)
      << "everything must coalesce back into the segment chunk";
}

TYPED_TEST(BoundaryTagFuzz, RandomScheduleKeepsInvariants) {
  TypeParam A(std::size_t{1} << 28);
  Prng Rng(2024);
  std::vector<std::pair<void *, std::size_t>> Live;
  for (int Batch = 0; Batch != 60; ++Batch) {
    for (int Op = 0; Op != 300; ++Op) {
      if (!Live.empty() && Rng.nextBool(0.45)) {
        std::size_t I = Rng.nextBelow(Live.size());
        A.free(Live[I].first);
        Live[I] = Live.back();
        Live.pop_back();
      } else {
        std::size_t Size = 1 + Rng.nextSkewed(0, 3000);
        void *P = A.malloc(Size);
        ASSERT_NE(P, nullptr);
        Live.emplace_back(P, Size);
      }
    }
    auto Check = A.validateHeap();
    ASSERT_TRUE(Check.Ok) << "batch " << Batch << ": " << Check.Error;
    ASSERT_GE(Check.Chunks, Live.size());
  }
  for (auto &[P, Size] : Live)
    A.free(P);
  auto Check = A.validateHeap();
  EXPECT_TRUE(Check.Ok) << Check.Error;
  EXPECT_EQ(Check.FreeChunks, A.segmentCount())
      << "an empty heap is one free chunk per segment";
}

TYPED_TEST(BoundaryTagFuzz, FreeBytesAccounting) {
  TypeParam A(1 << 26);
  std::vector<void *> Ps;
  for (int I = 0; I != 500; ++I)
    Ps.push_back(A.malloc(64));
  auto Before = A.validateHeap();
  ASSERT_TRUE(Before.Ok);
  for (void *P : Ps)
    A.free(P);
  auto After = A.validateHeap();
  ASSERT_TRUE(After.Ok);
  EXPECT_GT(After.FreeBytes, Before.FreeBytes + 500 * 64)
      << "freed chunk bytes must reappear as free bytes";
}

TYPED_TEST(BoundaryTagFuzz, AlternatingHolePattern) {
  // Free every other chunk (maximal fragmentation), then the rest
  // (maximal coalescing) — the classic boundary-tag stress.
  TypeParam A(1 << 26);
  std::vector<void *> Ps;
  for (int I = 0; I != 1000; ++I)
    Ps.push_back(A.malloc(48));
  for (int I = 0; I < 1000; I += 2)
    A.free(Ps[I]);
  auto Mid = A.validateHeap();
  ASSERT_TRUE(Mid.Ok) << Mid.Error;
  EXPECT_GT(Mid.FreeChunks, 400u) << "holes must not merge across "
                                     "live chunks";
  for (int I = 1; I < 1000; I += 2)
    A.free(Ps[I]);
  auto End = A.validateHeap();
  ASSERT_TRUE(End.Ok) << End.Error;
  EXPECT_EQ(End.FreeChunks, A.segmentCount());
}

TYPED_TEST(BoundaryTagFuzz, LargeAndSmallInterleaved) {
  TypeParam A(std::size_t{1} << 28);
  Prng Rng(7);
  std::vector<void *> Live;
  for (int I = 0; I != 400; ++I) {
    Live.push_back(A.malloc(Rng.nextBool(0.1) ? 200000 : 40));
    if (I % 50 == 49) {
      auto Check = A.validateHeap();
      ASSERT_TRUE(Check.Ok) << Check.Error;
    }
  }
  for (std::size_t I = 0; I < Live.size(); I += 3)
    A.free(Live[I]);
  EXPECT_TRUE(A.validateHeap().Ok);
}

} // namespace
