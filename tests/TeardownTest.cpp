//===- tests/TeardownTest.cpp - Run-table teardown and Figure-8 parity ---===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Locks in the invariants of run-based region page management: chunked
// growth must not leak pages at teardown, must keep churning workloads'
// OS footprint flat, and — the Figure-8 parity bound — may not inflate
// the paper's workload-mix osBytes() beyond a small documented slack
// over the historical single-page-growth numbers.
//
//===----------------------------------------------------------------------===//

#include "region/Regions.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace regions;
using namespace regions::workloads;

namespace {

struct NoisyObj {
  int Value = 0;
  ~NoisyObj() { Value = -1; }
};

// The reuse assertions below require freed pages to recycle
// immediately; hardened builds park them in quarantine by default.
struct RunTableTest : ::testing::Test {
  RegionManager Mgr;
  void SetUp() override { Mgr.setQuarantineBudget(0); }
};

TEST_F(RunTableTest, DeleteReturnsEveryRunPage) {
  // Grow a region through several geometric runs (normal, str, and
  // large pages mixed) and delete it: every page must come back, and
  // the page map must forget the whole range.
  Region *R = Mgr.newRegion();
  char *Probes[64];
  int NumProbes = 0;
  for (int I = 0; I < 200; ++I) {
    auto *P = static_cast<char *>(Mgr.allocRaw(R, 1024));
    if (I % 4 == 0 && NumProbes < 32)
      Probes[NumProbes++] = P;
    rnew<NoisyObj>(R);
  }
  void *Big = Mgr.allocRaw(R, 5 * kPageSize); // large-object run
  Probes[NumProbes++] = static_cast<char *>(Big);
  for (int I = 0; I != NumProbes; ++I)
    ASSERT_EQ(regionOf(Probes[I]), R);
  std::size_t OsBefore = Mgr.osBytes();
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Mgr.osBytes(), OsBefore) << "deletion never grows the footprint";
  for (int I = 0; I != NumProbes; ++I)
    EXPECT_EQ(regionOf(Probes[I]), nullptr)
        << "page map entry " << I << " survived the range clear";

  // Everything freed: an identical region must fit in the same pages.
  Region *R2 = Mgr.newRegion();
  for (int I = 0; I < 200; ++I) {
    Mgr.allocRaw(R2, 1024);
    rnew<NoisyObj>(R2);
  }
  Mgr.allocRaw(R2, 5 * kPageSize);
  EXPECT_EQ(Mgr.osBytes(), OsBefore)
      << "recycled runs must serve an identical region without growth";
  Mgr.deleteRegionRaw(R2);
}

TEST_F(RunTableTest, ChurnKeepsOsBytesFlat) {
  // Create/populate/delete cycles at a fixed size: after the first
  // cycle establishes the footprint, chunked growth must reuse the
  // freed runs exactly — osBytes() is a high-water mark, so any
  // schedule asymmetry would show up as monotonic growth.
  std::size_t OsAfterFirst = 0;
  for (int Cycle = 0; Cycle < 50; ++Cycle) {
    Region *R = Mgr.newRegion();
    for (int I = 0; I < 300; ++I)
      Mgr.allocRaw(R, 512);
    ASSERT_TRUE(Mgr.deleteRegionRaw(R));
    if (Cycle == 0)
      OsAfterFirst = Mgr.osBytes();
  }
  EXPECT_EQ(Mgr.osBytes(), OsAfterFirst)
      << "steady-state churn must not inflate the Figure-8 metric";
}

TEST_F(RunTableTest, ManyLiveRegionsThenTeardownInMixedOrder) {
  constexpr int kRegions = 24;
  Region *Rs[kRegions];
  for (int I = 0; I < kRegions; ++I) {
    Rs[I] = Mgr.newRegion();
    // Different sizes so regions sit mid-run with uncarved slack.
    for (int J = 0; J <= I * 7; ++J)
      Mgr.allocRaw(Rs[I], 700);
  }
  std::size_t Os = Mgr.osBytes();
  for (int I = 0; I < kRegions; I += 2)
    ASSERT_TRUE(Mgr.deleteRegionRaw(Rs[I]));
  for (int I = 1; I < kRegions; I += 2)
    ASSERT_TRUE(Mgr.deleteRegionRaw(Rs[I]));
  EXPECT_EQ(Mgr.liveRegionCount(), 0u);
  EXPECT_EQ(Mgr.osBytes(), Os);
  // The coalescing source must now be able to hand the pages out as
  // regions of a different shape without growing.
  Region *Big = Mgr.newRegion();
  for (int J = 0; J < 2000; ++J)
    Mgr.allocRaw(Big, 700);
  EXPECT_LE(Mgr.osBytes(), Os)
      << "reassembled runs must serve a differently-shaped region";
  Mgr.deleteRegionRaw(Big);
}

//===----------------------------------------------------------------------===//
// Figure-8 parity: chunked growth vs the historical per-page baseline
//===----------------------------------------------------------------------===//

// Historical osBytes() of the safe-region backend on the Figure 8 /
// Table 2 workload mix at Scale=1, Seed=1 (deterministic), measured
// with single-page region growth before the run-table change. Chunked
// growth trades a bounded amount of uncarved run slack for O(runs)
// teardown; the documented slack is 25% (worst measured: grobner at
// +21%, from mid-size regions' current-run tails — see DESIGN.md).
struct ParityRow {
  WorkloadId W;
  std::uint64_t BaselineOsBytes;
};
constexpr ParityRow kFig8Baseline[] = {
    {WorkloadId::Cfrac, 32 * 1024},    {WorkloadId::Grobner, 112 * 1024},
    {WorkloadId::Mudlle, 140 * 1024},  {WorkloadId::Lcc, 200 * 1024},
    {WorkloadId::Tile, 688 * 1024},    {WorkloadId::Moss, 564 * 1024},
};
constexpr double kFig8SlackFactor = 1.25;

TEST(Fig8ParityTest, ChunkedGrowthKeepsOsBytesWithinDocumentedSlack) {
  if (detail::kRsanEnabled)
    GTEST_SKIP() << "hardened metadata and quarantine inflate osBytes; "
                    "Figure 8 parity is a lean-build property";
  for (const ParityRow &Row : kFig8Baseline) {
    WorkloadOptions Opt;
    Opt.Scale = 1.0;
    Opt.Seed = 1;
    RunResult Res = runWorkload(Row.W, BackendKind::RegionSafe, Opt);
    ASSERT_TRUE(Res.Ok) << workloadName(Row.W);
    EXPECT_LE(static_cast<double>(Res.OsBytes),
              static_cast<double>(Row.BaselineOsBytes) * kFig8SlackFactor)
        << workloadName(Row.W) << ": chunked growth inflated osBytes past "
        << "the documented " << kFig8SlackFactor << "x slack";
  }
}

} // namespace
