//===- tests/ExtensionsTest.cpp - Future-work feature tests ---------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Covers the features the paper's §5.6 plans as future work and the
// convenience layers built on the core: compile-time sameregion
// pointers, lexically scoped regions, the bytecode disassembler, and
// the instrumented timing model.
//
//===----------------------------------------------------------------------===//

#include "alloc/LeaAllocator.h"
#include "backend/Models.h"
#include "backend/TimedModel.h"
#include "mudlle/Compiler.h"
#include "mudlle/Disasm.h"
#include "mudlle/Parser.h"
#include "region/Regions.h"
#include "region/Scoped.h"

#include <gtest/gtest.h>

using namespace regions;

namespace {

//===----------------------------------------------------------------------===//
// SameRegionPtr: the §5.6 compile-time sameregion optimization
//===----------------------------------------------------------------------===//

struct FastNode {
  int V = 0;
  SameRegionPtr<FastNode> Next; ///< statically intra-region
};

TEST(SameRegionPtrTest, TriviallyDestructibleAndHeaderless) {
  static_assert(std::is_trivially_destructible_v<FastNode>,
                "SameRegionPtr must not force cleanup headers");
  RegionManager Mgr;
  Region *R = Mgr.newRegion();
  // Trivially destructible objects take the pointer-free path; no
  // cleanup thunks run at deletion.
  for (int I = 0; I != 100; ++I)
    rnew<FastNode>(R);
  std::uint64_t Before = Mgr.stats().CleanupThunksRun;
  ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  EXPECT_EQ(Mgr.stats().CleanupThunksRun, Before)
      << "sameregion-only objects need no cleanup scan";
}

TEST(SameRegionPtrTest, NoBarrierTraffic) {
  RegionManager Mgr;
  Region *R = Mgr.newRegion();
  FastNode *A = rnew<FastNode>(R);
  FastNode *B = rnew<FastNode>(R);
  std::uint64_t Stores = Mgr.stats().BarrierStores;
  for (int I = 0; I != 1000; ++I)
    A->Next = (I % 2) ? B : nullptr;
  EXPECT_EQ(Mgr.stats().BarrierStores, Stores)
      << "statically-recognized sameregion stores skip the barrier";
  EXPECT_EQ(R->referenceCount(), 0);
  EXPECT_TRUE(Mgr.deleteRegionRaw(R));
}

TEST(SameRegionPtrTest, BuildsAndTraversesList) {
  RegionManager Mgr;
  rt::Frame F;
  rt::RegionHandle R = Mgr.newRegion();
  FastNode *Head = nullptr;
  for (int I = 0; I != 500; ++I) {
    FastNode *N = rnew<FastNode>(R);
    N->V = I;
    N->Next = Head;
    Head = N;
  }
  long Sum = 0;
  for (FastNode *N = Head; N; N = N->Next)
    Sum += N->V;
  EXPECT_EQ(Sum, 124750);
  Head = nullptr;
  EXPECT_TRUE(deleteRegion(R));
}

//===----------------------------------------------------------------------===//
// ScopedRegion
//===----------------------------------------------------------------------===//

struct Node {
  int V = 0;
  RegionPtr<Node> Next;
};

TEST(ScopedRegionTest, DeletesAtScopeExit) {
  RegionManager Mgr;
  {
    ScopedRegion Tmp(Mgr);
    rnew<Node>(Tmp)->V = 1;
    EXPECT_EQ(Mgr.liveRegionCount(), 1u);
  }
  EXPECT_EQ(Mgr.liveRegionCount(), 0u);
}

TEST(ScopedRegionTest, ResetDeletesEarly) {
  RegionManager Mgr;
  ScopedRegion Tmp(Mgr);
  rnew<Node>(Tmp);
  EXPECT_TRUE(Tmp.reset());
  EXPECT_EQ(Mgr.liveRegionCount(), 0u);
  EXPECT_EQ(Tmp.get(), nullptr);
}

TEST(ScopedRegionTest, ResetRefusedWhileReferenced) {
  RegionManager Mgr;
  rt::Frame F;
  ScopedRegion Tmp(Mgr);
  rt::Ref<Node> Keep = rnew<Node>(Tmp);
  EXPECT_FALSE(Tmp.reset()) << "live reference blocks early reset";
  EXPECT_NE(Tmp.get(), nullptr);
  Keep = nullptr;
  EXPECT_TRUE(Tmp.reset());
}

TEST(ScopedRegionTest, NestedScopes) {
  RegionManager Mgr;
  ScopedRegion Outer(Mgr);
  Node *Kept = rnew<Node>(Outer);
  {
    ScopedRegion Inner(Mgr);
    Node *Tmp = rnew<Node>(Inner);
    Tmp->V = 9;
    Kept->V = Tmp->V + 1;
    EXPECT_EQ(Mgr.liveRegionCount(), 2u);
  }
  EXPECT_EQ(Mgr.liveRegionCount(), 1u);
  EXPECT_EQ(Kept->V, 10);
}

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

TEST(DisasmTest, WordDisassembly) {
  using namespace mud;
  EXPECT_EQ(disassembleWord(encode(Op::PushImm, 42)), "push 42");
  EXPECT_EQ(disassembleWord(encode(Op::PushImm, -3)), "push -3");
  EXPECT_EQ(disassembleWord(encode(Op::Add)), "add");
  EXPECT_EQ(disassembleWord(encode(Op::Jz, 7)), "jz 7");
  EXPECT_EQ(disassembleWord(encode(Op::Ret)), "ret");
  EXPECT_EQ(disassembleWord(encode(Op::Nop)), "nop");
}

TEST(DisasmTest, FullProgramDisassembly) {
  using namespace mud;
  LeaAllocator A;
  DirectModel Mem(A);
  DirectModel::Token Ast = Mem.makeRegion();
  DirectModel::Token Code = Mem.makeRegion();
  Parser<DirectModel> P(Mem, Ast,
                        "fn twice(x) { return x + x; }\n"
                        "fn main() { return twice(21); }");
  auto *File = P.parseFile();
  ASSERT_FALSE(P.failed());
  Compiler<DirectModel> C(Mem, Code);
  auto *Prog = C.compile(File);
  ASSERT_NE(Prog, nullptr);
  std::string Out = disassemble(*Prog);
  EXPECT_NE(Out.find("fn twice (params=1"), std::string::npos);
  EXPECT_NE(Out.find("fn main (params=0"), std::string::npos);
  EXPECT_NE(Out.find("call 0"), std::string::npos)
      << "main must call function index 0:\n" << Out;
  EXPECT_NE(Out.find("ret"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// TimedModel
//===----------------------------------------------------------------------===//

TEST(TimedModelTest, AccumulatesTimeAndDelegates) {
  RegionManager Mgr;
  RegionModel Inner(Mgr);
  TimedModel<RegionModel> Timed(Inner);
  [[maybe_unused]] rt::Frame F;
  TimedModel<RegionModel>::Token Scope = Timed.makeRegion();
  for (int I = 0; I != 1000; ++I)
    Timed.create<Node>(Scope);
  Timed.allocBytes(Scope, 100);
  Timed.strdup(Scope, "hello");
  EXPECT_GT(Timed.memoryNanos(), 0u);
  EXPECT_EQ(Mgr.stats().TotalAllocs, 1002u) << "calls reach the inner model";
  EXPECT_TRUE(Timed.dropRegion(Scope));
  EXPECT_EQ(Mgr.liveRegionCount(), 0u);
}

TEST(TimedModelTest, TouchIsUntimed) {
  LeaAllocator A;
  DirectModel Inner(A);
  TimedModel<DirectModel> Timed(Inner);
  int X = 0;
  std::uint64_t Before = Timed.memoryNanos();
  for (int I = 0; I != 1000; ++I)
    Timed.touch(&X, 4, false);
  EXPECT_EQ(Timed.memoryNanos(), Before);
}

} // namespace
