//===- tests/MudlleTest.cpp - Mud compiler substrate tests ----------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/LeaAllocator.h"
#include "backend/Models.h"
#include "mudlle/Compiler.h"
#include "mudlle/Parser.h"
#include "mudlle/ProgramGen.h"
#include "mudlle/Vm.h"

#include <gtest/gtest.h>

using namespace regions;
using namespace regions::mud;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, TokenizesPunctuationAndOperators) {
  Lexer L("( ) { } , ; = + - * / % < <= > >= == != && || !");
  TokKind Expected[] = {
      TokKind::LParen, TokKind::RParen, TokKind::LBrace,  TokKind::RBrace,
      TokKind::Comma,  TokKind::Semi,   TokKind::Assign,  TokKind::Plus,
      TokKind::Minus,  TokKind::Star,   TokKind::Slash,   TokKind::Percent,
      TokKind::Lt,     TokKind::Le,     TokKind::Gt,      TokKind::Ge,
      TokKind::EqEq,   TokKind::Ne,     TokKind::AndAnd,  TokKind::OrOr,
      TokKind::Bang,   TokKind::Eof};
  for (TokKind K : Expected)
    EXPECT_EQ(L.next().Kind, K);
}

TEST(LexerTest, TokenizesKeywordsAndIdents) {
  Lexer L("fn var if else while return foo _bar x1");
  EXPECT_EQ(L.next().Kind, TokKind::KwFn);
  EXPECT_EQ(L.next().Kind, TokKind::KwVar);
  EXPECT_EQ(L.next().Kind, TokKind::KwIf);
  EXPECT_EQ(L.next().Kind, TokKind::KwElse);
  EXPECT_EQ(L.next().Kind, TokKind::KwWhile);
  EXPECT_EQ(L.next().Kind, TokKind::KwReturn);
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokKind::Ident);
  EXPECT_TRUE(T.textEquals("foo"));
  EXPECT_TRUE(L.next().textEquals("_bar"));
  EXPECT_TRUE(L.next().textEquals("x1"));
}

TEST(LexerTest, TokenizesNumbers) {
  Lexer L("0 42 8388607 99999999");
  EXPECT_EQ(L.next().Value, 0);
  EXPECT_EQ(L.next().Value, 42);
  EXPECT_EQ(L.next().Value, 8388607);
  EXPECT_EQ(L.next().Value, 8388607) << "clamped to the immediate range";
}

TEST(LexerTest, SkipsCommentsAndCountsLines) {
  Lexer L("a // comment\nb\nc");
  EXPECT_EQ(L.next().Line, 1u);
  EXPECT_EQ(L.next().Line, 2u);
  EXPECT_EQ(L.next().Line, 3u);
}

TEST(LexerTest, ReportsErrors) {
  Lexer L("@");
  EXPECT_EQ(L.next().Kind, TokKind::Error);
  Lexer L2("&x");
  EXPECT_EQ(L2.next().Kind, TokKind::Error) << "single & is invalid";
}

//===----------------------------------------------------------------------===//
// End-to-end compile + run on every model
//===----------------------------------------------------------------------===//

/// Parses, compiles and runs main(); returns the VmResult.
template <class M> VmResult runProgram(M &Mem, const char *Source) {
  [[maybe_unused]] typename M::Frame F;
  typename M::Token AstScope = Mem.makeRegion();
  typename M::Token CodeScope = Mem.makeRegion();
  VmResult R;
  {
    Parser<M> P(Mem, AstScope, Source);
    SourceFile<M> *File = P.parseFile();
    if (P.failed()) {
      R.Error = P.errorMessage();
      Mem.dropRegion(AstScope);
      Mem.dropRegion(CodeScope);
      return R;
    }
    Compiler<M> C(Mem, CodeScope);
    CompiledProgram<M> *Prog = C.compile(File);
    if (!Prog) {
      R.Error = C.errorMessage();
      Mem.dropRegion(AstScope);
      Mem.dropRegion(CodeScope);
      return R;
    }
    Vm<M> Machine(*Prog);
    R = Machine.runMain();
  }
  EXPECT_TRUE(Mem.dropRegion(AstScope));
  EXPECT_TRUE(Mem.dropRegion(CodeScope));
  return R;
}

struct MudRegionTest : ::testing::Test {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{256} << 20};
  RegionModel M{Mgr};

  std::int64_t run(const char *Source) {
    VmResult R = runProgram(M, Source);
    EXPECT_TRUE(R.Ok) << (R.Error ? R.Error : "unknown error");
    return R.Value;
  }
};

TEST_F(MudRegionTest, ReturnsConstant) {
  EXPECT_EQ(run("fn main() { return 42; }"), 42);
}

TEST_F(MudRegionTest, Arithmetic) {
  EXPECT_EQ(run("fn main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(run("fn main() { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(run("fn main() { return 7 / 2; }"), 3);
  EXPECT_EQ(run("fn main() { return 7 % 3; }"), 1);
  EXPECT_EQ(run("fn main() { return -5 + 2; }"), -3);
  EXPECT_EQ(run("fn main() { return 5 / 0; }"), 0) << "defined semantics";
  EXPECT_EQ(run("fn main() { return 5 % 0; }"), 0);
}

TEST_F(MudRegionTest, ComparisonsAndLogic) {
  EXPECT_EQ(run("fn main() { return 3 < 4; }"), 1);
  EXPECT_EQ(run("fn main() { return 4 <= 3; }"), 0);
  EXPECT_EQ(run("fn main() { return 5 == 5; }"), 1);
  EXPECT_EQ(run("fn main() { return 5 != 5; }"), 0);
  EXPECT_EQ(run("fn main() { return 1 && 2; }"), 1);
  EXPECT_EQ(run("fn main() { return 0 && 2; }"), 0);
  EXPECT_EQ(run("fn main() { return 0 || 3; }"), 1);
  EXPECT_EQ(run("fn main() { return 0 || 0; }"), 0);
  EXPECT_EQ(run("fn main() { return !0; }"), 1);
  EXPECT_EQ(run("fn main() { return !7; }"), 0);
}

TEST_F(MudRegionTest, ShortCircuitSkipsRhs) {
  // RHS divides by zero only when evaluated... division is total here,
  // so use a counter via while instead: if && short-circuits, the loop
  // below runs zero times.
  const char *Src = "fn sideEffect(x) { return x; }\n"
                    "fn main() { var n = 0;\n"
                    "  if (0 && sideEffect(1)) { n = 99; }\n"
                    "  return n; }";
  EXPECT_EQ(run(Src), 0);
}

TEST_F(MudRegionTest, VariablesAndAssignment) {
  EXPECT_EQ(run("fn main() { var x = 10; x = x + 5; return x; }"), 15);
}

TEST_F(MudRegionTest, IfElse) {
  EXPECT_EQ(run("fn main() { if (1) { return 10; } else { return 20; } }"),
            10);
  EXPECT_EQ(run("fn main() { if (0) { return 10; } else { return 20; } }"),
            20);
  EXPECT_EQ(run("fn main() { if (0) { return 10; } return 30; }"), 30);
}

TEST_F(MudRegionTest, WhileLoop) {
  EXPECT_EQ(run("fn main() { var s = 0; var i = 1;\n"
                "  while (i <= 10) { s = s + i; i = i + 1; }\n"
                "  return s; }"),
            55);
}

TEST_F(MudRegionTest, FunctionCalls) {
  EXPECT_EQ(run("fn add(a, b) { return a + b; }\n"
                "fn main() { return add(2, add(3, 4)); }"),
            9);
}

TEST_F(MudRegionTest, Recursion) {
  EXPECT_EQ(run("fn fact(n) { if (n <= 1) { return 1; }\n"
                "  return n * fact(n - 1); }\n"
                "fn main() { return fact(10); }"),
            3628800);
}

TEST_F(MudRegionTest, Fibonacci) {
  EXPECT_EQ(run("fn fib(n) { if (n < 2) { return n; }\n"
                "  return fib(n - 1) + fib(n - 2); }\n"
                "fn main() { return fib(15); }"),
            610);
}

TEST_F(MudRegionTest, ImplicitReturnZero) {
  EXPECT_EQ(run("fn main() { var x = 5; x = x; }"), 0);
}

TEST_F(MudRegionTest, RegionsFullyReclaimed) {
  run("fn f(a) { return a * 2; } fn main() { return f(21); }");
  EXPECT_EQ(Mgr.liveRegionCount(), 0u)
      << "AST, code, and all compile regions must be gone";
  // Compile regions: one per file + one per function => TotalRegions
  // is ast + code + file-table + two functions = 5.
  EXPECT_EQ(Mgr.stats().TotalRegions, 5u);
}

//===----------------------------------------------------------------------===//
// Parser and compiler error reporting
//===----------------------------------------------------------------------===//

TEST_F(MudRegionTest, ParseErrors) {
  const char *Bad[] = {
      "fn main( { return 1; }",
      "fn main() { return 1 }",
      "fn main() { var = 3; }",
      "fn main() { if 1 { return 1; } }",
      "main() { return 1; }",
  };
  for (const char *Src : Bad) {
    VmResult R = runProgram(M, Src);
    EXPECT_FALSE(R.Ok) << Src;
    EXPECT_NE(R.Error, nullptr);
  }
}

TEST_F(MudRegionTest, CompileErrors) {
  const char *Bad[] = {
      "fn main() { return x; }",                      // undeclared var
      "fn main() { x = 1; return 0; }",               // assign undeclared
      "fn main() { var x = 1; var x = 2; return x; }",// redeclaration
      "fn main() { return nosuch(1); }",              // undefined fn
      "fn f(a) { return a; } fn main() { return f(1, 2); }", // arity
      "fn f(a) { return a; } fn f(a) { return a; } fn main() { return 0; }",
  };
  for (const char *Src : Bad) {
    VmResult R = runProgram(M, Src);
    EXPECT_FALSE(R.Ok) << Src;
  }
}

TEST_F(MudRegionTest, NoMainIsAnError) {
  VmResult R = runProgram(M, "fn f(a) { return a; }");
  EXPECT_FALSE(R.Ok);
}

//===----------------------------------------------------------------------===//
// Peephole optimizer
//===----------------------------------------------------------------------===//

TEST_F(MudRegionTest, PeepholeFoldsConstants) {
  [[maybe_unused]] rt::Frame F;
  RegionModel::Token Ast = M.makeRegion();
  RegionModel::Token Code = M.makeRegion();
  {
    Parser<RegionModel> P(M, Ast, "fn main() { return 2 + 3 * 4; }");
    auto *File = P.parseFile();
    ASSERT_FALSE(P.failed());
    Compiler<RegionModel> C(M, Code);
    auto *Prog = C.compile(File);
    ASSERT_NE(Prog, nullptr);
    EXPECT_GE(Prog->PeepholeRewrites, 2u) << "3*4 and 2+12 both fold";
    Vm<RegionModel> Machine(*Prog);
    EXPECT_EQ(Machine.runMain().Value, 14);
  }
  EXPECT_TRUE(M.dropRegion(Ast));
  EXPECT_TRUE(M.dropRegion(Code));
}

//===----------------------------------------------------------------------===//
// Cross-model agreement and the program generator
//===----------------------------------------------------------------------===//

TEST(MudModelAgreementTest, AllModelsComputeTheSameValue) {
  GenOptions Opt;
  Opt.NumFunctions = 12;
  Opt.Seed = 7;
  std::string Source = ProgramGenerator(Opt).generate();

  std::int64_t RegionValue;
  {
    RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{256} << 20};
    RegionModel M(Mgr);
    VmResult R = runProgram(M, Source.c_str());
    ASSERT_TRUE(R.Ok) << (R.Error ? R.Error : "?");
    RegionValue = R.Value;
    EXPECT_EQ(Mgr.liveRegionCount(), 0u);
  }
  {
    RegionManager Mgr{SafetyConfig::unsafeConfig(), std::size_t{256} << 20};
    RegionModel M(Mgr);
    VmResult R = runProgram(M, Source.c_str());
    ASSERT_TRUE(R.Ok);
    EXPECT_EQ(R.Value, RegionValue);
  }
  {
    LeaAllocator A;
    DirectModel M(A);
    VmResult R = runProgram(M, Source.c_str());
    ASSERT_TRUE(R.Ok);
    EXPECT_EQ(R.Value, RegionValue);
  }
  {
    LeaAllocator A;
    EmulationRegionLib Lib(A);
    EmuModel M(Lib);
    VmResult R = runProgram(M, Source.c_str());
    ASSERT_TRUE(R.Ok);
    EXPECT_EQ(R.Value, RegionValue);
  }
}

TEST(ProgramGenTest, DeterministicForSeed) {
  GenOptions Opt;
  Opt.NumFunctions = 6;
  Opt.Seed = 3;
  EXPECT_EQ(ProgramGenerator(Opt).generate(),
            ProgramGenerator(Opt).generate());
  GenOptions Opt2 = Opt;
  Opt2.Seed = 4;
  EXPECT_NE(ProgramGenerator(Opt).generate(),
            ProgramGenerator(Opt2).generate());
}

TEST(ProgramGenTest, GeneratedProgramsCompileAcrossSeeds) {
  for (std::uint64_t Seed = 1; Seed <= 8; ++Seed) {
    GenOptions Opt;
    Opt.NumFunctions = 10;
    Opt.Seed = Seed;
    std::string Source = ProgramGenerator(Opt).generate();
    RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{256} << 20};
    RegionModel M(Mgr);
    VmResult R = runProgram(M, Source.c_str());
    EXPECT_TRUE(R.Ok) << "seed " << Seed << ": "
                      << (R.Error ? R.Error : "?");
  }
}

TEST(ProgramGenTest, FiveHundredLineFileShape) {
  GenOptions Opt; // defaults tuned for the paper's 500-line file
  std::string Source = ProgramGenerator(Opt).generate();
  std::size_t Lines = 1;
  for (char C : Source)
    Lines += C == '\n';
  EXPECT_GT(Lines, 300u);
  EXPECT_LT(Lines, 1200u);
}

} // namespace
