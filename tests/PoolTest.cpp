//===- tests/PoolTest.cpp - rpool reset + RegionPool behaviour ------------===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Locks in the rpool subsystem (region/Pool.h, resetRegion): in-place
// reset semantics (same storage, fresh logical region), the safety
// protocol parity with deleteregion (refusal on live references,
// fatality on shared regions), bounded retention (page budget, trims),
// OS-footprint flatness across region-per-request churn, stats/metrics
// plumbing, zero cost when unused, and — where build flags allow —
// poisoned use-after-reset detection and the pooled-vs-new/delete
// speedup the bench/server suite reports.
//
//===----------------------------------------------------------------------===//

#include "region/Metrics.h"
#include "region/Parallel.h"
#include "region/Pool.h"
#include "region/Regions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>

using namespace regions;

namespace {

// The footprint-flatness assertions require freed and trimmed pages to
// recycle immediately; hardened builds park them in quarantine.
struct PoolTest : ::testing::Test {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{256} << 20};
  void SetUp() override { Mgr.setQuarantineBudget(0); }
};

// One region-per-request cycle: a few header strings plus a body large
// enough to exercise both bump pages and (at kBig) a large-object run.
void serveRequest(RegionManager &Mgr, Region *R, std::size_t BodyBytes) {
  for (int I = 0; I != 4; ++I)
    Mgr.allocRaw(R, 64);
  for (std::size_t Left = BodyBytes; Left != 0;) {
    std::size_t Chunk = Left < 8192 ? Left : 8192;
    Mgr.allocRaw(R, Chunk);
    Left -= Chunk;
  }
}

TEST_F(PoolTest, AcquireReusesTheReleasedRegionInPlace) {
  RegionPool Pool{Mgr};
  Region *R = Pool.acquire();
  EXPECT_EQ(Mgr.poolStats().Misses, 1u); // cold: nothing cached yet
  unsigned FirstId = R->id();
  serveRequest(Mgr, R, 16384);
  EXPECT_GT(R->allocCount(), 0u);

  ASSERT_TRUE(Pool.release(R));
  EXPECT_EQ(Pool.cachedRegions(), 1u);
  EXPECT_GT(Pool.retainedPages(), 0u);

  Region *Again = Pool.acquire();
  EXPECT_EQ(Again, R) << "same storage, recycled in place";
  EXPECT_GT(Again->id(), FirstId) << "but a fresh logical region";
  EXPECT_EQ(Again->allocCount(), 0u);
  EXPECT_EQ(Again->requestedBytes(), 0u);
  EXPECT_EQ(Again->referenceCount(), 0);
  EXPECT_EQ(Mgr.poolStats().Hits, 1u);
  ASSERT_TRUE(Pool.release(Again));
}

TEST_F(PoolTest, ChurnKeepsOsBytesFlatAcrossTenThousandRequests) {
  RegionPool Pool{Mgr};
  // Warm-up establishes the footprint: one cycle of every request
  // shape the loop serves, so the reservoir holds exact-fit runs for
  // each of them before the flatness clock starts.
  for (std::size_t Body : {std::size_t{4096}, std::size_t{16384},
                           std::size_t{65536}}) {
    Region *R = Pool.acquire();
    serveRequest(Mgr, R, Body);
    ASSERT_TRUE(Pool.release(R));
  }
  std::size_t OsWarm = Mgr.osBytes();

  for (int Cycle = 0; Cycle != 10000; ++Cycle) {
    Region *Req = Pool.acquire();
    // Mixed footprints, never above the warm-up shape.
    serveRequest(Mgr, Req, Cycle % 3 == 0   ? 4096
                           : Cycle % 3 == 1 ? 16384
                                            : 65536);
    ASSERT_TRUE(Pool.release(Req));
    ASSERT_EQ(Mgr.osBytes(), OsWarm)
        << "cycle " << Cycle << ": pooled churn must not touch the "
        << "Figure-8 osBytes high-water mark";
  }
  EXPECT_EQ(Mgr.poolStats().Hits, 10002u); // every post-cold acquire hit
  EXPECT_EQ(Mgr.stats().ResetRegions, 10003u);
}

TEST_F(PoolTest, ExactFitLargeBufferReusesTheSameRun) {
  // The steady-state hot case: the retained large-object run serves
  // the next incarnation's identical buffer at the same address, with
  // no new page-source traffic.
  RegionPool Pool{Mgr};
  Region *R = Pool.acquire();
  Mgr.allocRaw(R, 64);
  void *Buf = Mgr.allocRaw(R, 2 * kPageSize); // large-object path
  ASSERT_TRUE(Pool.release(R));
  std::size_t Os = Mgr.osBytes();

  Region *Again = Pool.acquire();
  ASSERT_EQ(Again, R);
  Mgr.allocRaw(Again, 64);
  void *Buf2 = Mgr.allocRaw(Again, 2 * kPageSize);
  EXPECT_EQ(Buf2, Buf) << "exact-fit reservoir hit reuses the run";
  EXPECT_EQ(Mgr.osBytes(), Os);
  ASSERT_TRUE(Pool.release(Again));
}

TEST_F(PoolTest, ReleaseRefusedWhileExternallyReferenced) {
  RegionPool Pool{Mgr};
  Region *R = Pool.acquire();
  serveRequest(Mgr, R, 4096);
  unsigned Id = R->id();

  R->rcAdd(1); // a counted external reference is still live
  EXPECT_FALSE(Pool.release(R)) << "reset must refuse like deleteregion";
  EXPECT_EQ(Mgr.stats().ResetRefusals, 1u);
  EXPECT_EQ(R->id(), Id) << "refused reset leaves the region untouched";
  EXPECT_GT(R->allocCount(), 0u);
  EXPECT_EQ(Pool.cachedRegions(), 0u);

  R->rcAdd(-1);
  EXPECT_TRUE(Pool.release(R));
  EXPECT_EQ(Pool.cachedRegions(), 1u);
}

TEST_F(PoolTest, RetentionBudgetTrimsOverflowToTheSource) {
  RegionPoolConfig Cfg;
  Cfg.MaxRegions = 2;
  Cfg.MaxRetainedPages = 64;
  RegionPool Pool{Mgr, Cfg};

  Region *A = Pool.acquire();
  Region *B = Pool.acquire();
  Region *C = Pool.acquire();
  serveRequest(Mgr, A, 4096);
  serveRequest(Mgr, B, 4096);
  serveRequest(Mgr, C, 4096);
  ASSERT_TRUE(Pool.release(A));
  ASSERT_TRUE(Pool.release(B));
  ASSERT_TRUE(Pool.release(C)); // evicts the oldest (A) to make room
  EXPECT_EQ(Pool.cachedRegions(), 2u);
  EXPECT_LE(Pool.retainedPages(), Cfg.MaxRetainedPages);
  EXPECT_EQ(Mgr.poolStats().Trims, 1u);
  EXPECT_EQ(Mgr.poolStats().Releases, 3u);

  // A region whose reservoir can never fit the budget is deleted
  // outright instead of parked — and without evicting warm entries it
  // was never going to displace.
  Region *Big = Pool.acquire(); // pops the warmest cached region
  EXPECT_EQ(Pool.cachedRegions(), 1u);
  serveRequest(Mgr, Big, 64 * kPageSize + 16384);
  std::uint64_t LiveBefore = Mgr.stats().LiveRegions;
  ASSERT_TRUE(Pool.release(Big));
  EXPECT_EQ(Pool.cachedRegions(), 1u) << "never parked, nothing evicted";
  EXPECT_EQ(Mgr.stats().LiveRegions, LiveBefore - 1) << "deleted instead";
  EXPECT_EQ(Mgr.poolStats().Trims, 2u);

  std::uint64_t LiveBeforeTrim = Mgr.stats().LiveRegions;
  Pool.trimAll();
  EXPECT_EQ(Pool.cachedRegions(), 0u);
  EXPECT_EQ(Pool.retainedPages(), 0u);
  EXPECT_EQ(Mgr.stats().LiveRegions, LiveBeforeTrim - 1);
}

TEST_F(PoolTest, DestructorReturnsEveryCachedRegion) {
  std::uint64_t LiveBefore = Mgr.stats().LiveRegions;
  {
    RegionPool Pool{Mgr};
    Region *A = Pool.acquire();
    Region *B = Pool.acquire();
    serveRequest(Mgr, A, 16384);
    serveRequest(Mgr, B, 4096);
    ASSERT_TRUE(Pool.release(A));
    ASSERT_TRUE(Pool.release(B));
    EXPECT_EQ(Mgr.stats().LiveRegions, LiveBefore + 2);
  }
  EXPECT_EQ(Mgr.stats().LiveRegions, LiveBefore);
}

TEST_F(PoolTest, StatsAndMetricsPlumbing) {
  RegionPool Pool{Mgr};
  Region *R = Pool.acquire();
  serveRequest(Mgr, R, 16384);
  std::uint64_t TotalBefore = Mgr.stats().TotalRegions;
  // stats() already folds live regions' deferred counters, so this
  // total includes R's allocations while R is still live.
  std::uint64_t AllocsBefore = Mgr.stats().TotalAllocs;
  ASSERT_TRUE(Pool.release(R));

  const RegionStats &S = Mgr.stats();
  EXPECT_EQ(S.TotalRegions, TotalBefore + 1)
      << "a reset ends one logical region and starts another";
  EXPECT_EQ(S.ResetRegions, 1u);
  EXPECT_EQ(S.TotalAllocs, AllocsBefore)
      << "the retired incarnation's allocations stay in the totals";

  MetricsSnapshot M = Mgr.metrics();
  EXPECT_EQ(M.Pool.Hits, Mgr.poolStats().Hits);
  EXPECT_EQ(M.Pool.Misses, 1u);
  EXPECT_EQ(M.Pool.Releases, 1u);
  EXPECT_EQ(M.Stats.ResetRegions, 1u);
}

TEST_F(PoolTest, ZeroCostWhenUnused) {
  // A manager that never sees a pool keeps every rpool counter at
  // zero and pays nothing: plain new/delete cycles are unaffected.
  for (int I = 0; I != 32; ++I) {
    Region *R = Mgr.newRegion();
    serveRequest(Mgr, R, 16384);
    ASSERT_TRUE(Mgr.deleteRegionRaw(R));
  }
  const RegionStats &S = Mgr.stats();
  EXPECT_EQ(S.ResetRegions, 0u);
  EXPECT_EQ(S.ResetRefusals, 0u);
  const PoolStats &P = Mgr.poolStats();
  EXPECT_EQ(P.Hits + P.Misses + P.Releases + P.Trims, 0u);
}

//===----------------------------------------------------------------------===//
// Safety-mode preservation
//===----------------------------------------------------------------------===//

using PoolDeathTest = PoolTest;

TEST_F(PoolDeathTest, ResettingASharedRegionIsFatal) {
  // A shared region's record holds counted references owned by other
  // threads: recycling the storage under them would be a use-after-
  // free by construction, so reset refuses fatally in every build —
  // shared regions retire through ParallelSpace::tryDelete only.
  par::ParallelSpace Space;
  Region *R = Mgr.newRegion();
  Space.share(R);
  EXPECT_DEATH(Mgr.resetRegion(R), "shared region");
}

#if RGN_HARDEN_ENABLED

TEST_F(PoolTest, UseAfterResetReadsPoisonOrTraps) {
  RegionPool Pool{Mgr};
  Region *R = Pool.acquire();
  serveRequest(Mgr, R, 16384);
  auto *Stale =
      static_cast<unsigned char *>(Mgr.allocRaw(R, 128));
  std::memset(Stale, 0xAB, 128);
  ASSERT_TRUE(Pool.release(R));
#if RGN_ASAN
  // Retained reservoir pages are re-poisoned at reset: ASan traps the
  // stale access itself.
  EXPECT_DEATH({ Stale[0] = 1; }, "AddressSanitizer");
#else
  // Without ASan the stale bytes read quarantine poison, never the
  // previous incarnation's contents.
  EXPECT_EQ(Stale[0], 0xD5u);
#endif
  (void)Pool.acquire(); // drain so the pool dtor sees a clean cache
}

#endif // RGN_HARDEN_ENABLED

//===----------------------------------------------------------------------===//
// The bench/server claim, enforced where timing is meaningful
//===----------------------------------------------------------------------===//

#if defined(NDEBUG) && !RGN_HARDEN_ENABLED

double cyclesPerSecond(RegionManager &Mgr, RegionPool *Pool, int Reps) {
  using Clock = std::chrono::steady_clock;
  auto Start = Clock::now();
  for (int I = 0; I != Reps; ++I) {
    Region *R = Pool ? Pool->acquire() : Mgr.newRegion();
    serveRequest(Mgr, R, 16384);
    if (Pool)
      Pool->release(R);
    else
      Mgr.deleteRegionRaw(R);
  }
  std::chrono::duration<double> Secs = Clock::now() - Start;
  return Reps / Secs.count();
}

TEST_F(PoolTest, PooledCyclesAtLeastTwiceAsFastAsNewDelete) {
  // The acceptance bound bench/server measures, enforced here in
  // optimized builds (Debug/hardened timing is not meaningful). Best
  // of five trials on each side irons out scheduler noise.
  constexpr int kReps = 20000;
  RegionPool Pool{Mgr};
  cyclesPerSecond(Mgr, &Pool, kReps); // warm both paths and the arena
  cyclesPerSecond(Mgr, nullptr, kReps);
  double BestNew = 0, BestPooled = 0;
  for (int Trial = 0; Trial != 5; ++Trial) {
    BestPooled = std::max(BestPooled, cyclesPerSecond(Mgr, &Pool, kReps));
    BestNew = std::max(BestNew, cyclesPerSecond(Mgr, nullptr, kReps));
  }
  EXPECT_GE(BestPooled, 2.0 * BestNew)
      << "pooled " << BestPooled << " cycles/s vs new/delete " << BestNew;
}

#endif // NDEBUG && !RGN_HARDEN_ENABLED

} // namespace
