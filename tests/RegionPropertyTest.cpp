//===- tests/RegionPropertyTest.cpp - Model-checked safety properties -----===//
//
// Part of the regions project (Gay & Aiken, PLDI 1998 reproduction).
//
// Randomized property tests: a reference model tracks every pointer we
// create (heap fields, globals, registered locals) and predicts, for
// each region, the paper's deletion rule. After every random operation
// batch the library's reference counts and deleteRegion verdicts must
// match the model exactly.
//
//===----------------------------------------------------------------------===//

#include "region/Debug.h"
#include "region/Regions.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

using namespace regions;

namespace {

struct Node {
  int Id = 0;
  RegionPtr<Node> Out; ///< one heap reference per node keeps the model simple
};

/// One global slot per test run.
RegionPtr<Node> GlobalSlot;

/// The oracle: predicts each region's reference count from first
/// principles (paper §4.2: count pointers from other regions, global
/// storage, and scanned stack frames; sameregion pointers and
/// unscanned locals are never counted).
struct Model {
  struct HeapEdge {
    int FromRegion; ///< region holding the pointer
    int ToRegion;   ///< region pointed into
  };
  std::map<const void *, HeapEdge> HeapEdges; ///< keyed by slot address
  int GlobalTarget = -1;                      ///< region id or -1

  long long expectedCount(int RegionId, bool CountsOn) const {
    if (!CountsOn)
      return 0;
    long long N = 0;
    for (const auto &[Slot, Edge] : HeapEdges)
      if (Edge.ToRegion == RegionId && Edge.FromRegion != RegionId)
        ++N;
    if (GlobalTarget == RegionId)
      ++N;
    return N;
  }
};

struct RegionPropertyTest : ::testing::TestWithParam<std::uint64_t> {
  void SetUp() override { GlobalSlot = nullptr; }
};

TEST_P(RegionPropertyTest, CountsMatchTheModel) {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{256} << 20};
  Prng Rng(GetParam());
  Model Oracle;

  constexpr int kRegions = 6;
  constexpr int kNodesPerRegion = 8;
  std::vector<Region *> Regions;
  std::vector<std::vector<Node *>> Nodes(kRegions);
  for (int R = 0; R != kRegions; ++R) {
    Regions.push_back(Mgr.newRegion());
    for (int N = 0; N != kNodesPerRegion; ++N)
      Nodes[R].push_back(rnew<Node>(Regions[static_cast<unsigned>(R)]));
  }

  auto CheckAllCounts = [&](const char *When) {
    for (int R = 0; R != kRegions; ++R)
      ASSERT_EQ(Regions[R]->referenceCount(),
                Oracle.expectedCount(R, true))
          << When << ": region " << R;
  };

  for (int Step = 0; Step != 3000; ++Step) {
    int FromR = static_cast<int>(Rng.nextBelow(kRegions));
    int FromN = static_cast<int>(Rng.nextBelow(kNodesPerRegion));
    Node *Holder = Nodes[FromR][FromN];
    switch (Rng.nextBelow(4)) {
    case 0: { // point a heap field at a random node
      int ToR = static_cast<int>(Rng.nextBelow(kRegions));
      int ToN = static_cast<int>(Rng.nextBelow(kNodesPerRegion));
      Holder->Out = Nodes[ToR][ToN];
      Oracle.HeapEdges[&Holder->Out] = {FromR, ToR};
      break;
    }
    case 1: // clear a heap field
      Holder->Out = nullptr;
      Oracle.HeapEdges.erase(&Holder->Out);
      break;
    case 2: { // retarget the global
      int ToR = static_cast<int>(Rng.nextBelow(kRegions));
      GlobalSlot = Nodes[ToR][0];
      Oracle.GlobalTarget = ToR;
      break;
    }
    case 3: // clear the global
      GlobalSlot = nullptr;
      Oracle.GlobalTarget = -1;
      break;
    }
    if (Step % 250 == 0)
      CheckAllCounts("mid-run");
  }
  CheckAllCounts("final");

  // Deletion verdicts must match the oracle for every region.
  for (int R = 0; R != kRegions; ++R) {
    bool Expect = Oracle.expectedCount(R, true) == 0;
    Region *Target = Regions[R];
    bool Got = Mgr.deleteRegionRaw(Target);
    EXPECT_EQ(Got, Expect) << "region " << R;
    if (!Got)
      continue;
    // Deleting the region dropped its outgoing edges; fix the model.
    for (auto It = Oracle.HeapEdges.begin();
         It != Oracle.HeapEdges.end();) {
      if (It->second.FromRegion == R || It->second.ToRegion == R)
        It = Oracle.HeapEdges.erase(It);
      else
        ++It;
    }
    if (Oracle.GlobalTarget == R) {
      // The global still points into freed pages: clear it without
      // barrier effects (regionOf is already null for freed pages).
      GlobalSlot = nullptr;
      Oracle.GlobalTarget = -1;
    }
    Regions[R] = nullptr;
    // Verify the survivors immediately: the cleanup scan must have
    // decremented exactly the dead region's outgoing references.
    for (int S = 0; S != kRegions; ++S) {
      if (!Regions[S])
        continue;
      ASSERT_EQ(Regions[S]->referenceCount(),
                Oracle.expectedCount(S, true))
          << "after deleting region " << R << ", survivor " << S;
    }
  }
}

TEST_P(RegionPropertyTest, LocalsNeverAffectCountsUntilScan) {
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{128} << 20};
  Prng Rng(GetParam() * 977 + 5);
  rt::Frame Outer;

  Region *R = Mgr.newRegion();
  std::vector<Node *> Pool;
  for (int N = 0; N != 16; ++N)
    Pool.push_back(rnew<Node>(R));

  // Churn registered locals wildly: counts must stay untouched.
  {
    rt::Ref<Node> A, B, C;
    for (int Step = 0; Step != 2000; ++Step) {
      rt::Ref<Node> *Target =
          Rng.nextBelow(3) == 0 ? &A : Rng.nextBelow(2) ? &B : &C;
      *Target = Rng.nextBool(0.2)
                    ? nullptr
                    : Pool[Rng.nextBelow(Pool.size())];
      ASSERT_EQ(R->referenceCount(), 0) << "locals are deferred";
    }
    // Now force a scan from a callee frame: exactly the live locals
    // pointing into R must be counted.
    {
      rt::Frame Inner;
      rt::RuntimeStack::current().scanForDelete();
      long long Live = (A.get() != nullptr) + (B.get() != nullptr) +
                       (C.get() != nullptr);
      ASSERT_EQ(R->referenceCount(), Live);
    }
    ASSERT_EQ(R->referenceCount(), 0) << "unscan on return";
    A = nullptr;
    B = nullptr;
    C = nullptr;
  }
  EXPECT_TRUE(Mgr.deleteRegionRaw(R));
}

TEST_P(RegionPropertyTest, RandomScopeNestingBalances) {
  // Randomly nested frames with scans at random depths: after
  // everything unwinds, every region's count must be zero again.
  RegionManager Mgr{SafetyConfig::safeConfig(), std::size_t{128} << 20};
  Prng Rng(GetParam() * 31 + 7);
  Region *R = Mgr.newRegion();
  std::vector<Node *> Pool;
  for (int N = 0; N != 8; ++N)
    Pool.push_back(rnew<Node>(R));

  struct Rec {
    static void go(Prng &Rng, Region *R, std::vector<Node *> &Pool,
                   int Depth) {
      rt::Frame F;
      rt::Ref<Node> L1 = Pool[Rng.nextBelow(Pool.size())];
      rt::Ref<Node> L2 =
          Rng.nextBool(0.5) ? Pool[Rng.nextBelow(Pool.size())] : nullptr;
      if (Rng.nextBool(0.3))
        rt::RuntimeStack::current().scanForDelete();
      if (Depth < 12 && Rng.nextBool(0.7))
        go(Rng, R, Pool, Depth + 1);
      if (Rng.nextBool(0.3))
        rt::RuntimeStack::current().scanForDelete();
      // Mutate locals after possible scans (the localWrite slow path
      // when our frame was scanned by a callee's deletion).
      L1 = Pool[Rng.nextBelow(Pool.size())];
      L2 = nullptr;
    }
  };
  {
    rt::Frame Top;
    Rec::go(Rng, R, Pool, 0);
    Rec::go(Rng, R, Pool, 0);
  }
  EXPECT_EQ(R->referenceCount(), 0)
      << "scan/unscan/localWrite must balance exactly";
  EXPECT_TRUE(Mgr.deleteRegionRaw(R));
}

TEST_P(RegionPropertyTest, ResetMatchesDeletePlusNewObservably) {
  // rpool parity: a region recycled in place with resetRegion must be
  // observationally identical to one deleted and recreated — same
  // stats totals, walkable Figure-7 pages, clean hardened metadata,
  // and the same refusal protocol while counted references pend. Two
  // managers run the same random workload, one per strategy.
  RegionManager MgrA{SafetyConfig::safeConfig(), std::size_t{128} << 20};
  RegionManager MgrB{SafetyConfig::safeConfig(), std::size_t{128} << 20};
  Prng Rng(GetParam() * 131 + 17);
  Region *A = MgrA.newRegion(); // recycled in place every round
  Region *B = MgrB.newRegion(); // deleted and recreated every round

  for (int Round = 0; Round != 25; ++Round) {
    // One random workload, applied identically to both regions: raw
    // blobs across every size class (bump pages and large-object runs)
    // plus scanned nodes with sameregion links for the cleanup walk.
    for (unsigned I = 1 + Rng.nextBelow(20); I != 0; --I) {
      std::size_t Size = std::size_t{16} << Rng.nextBelow(11); // ≤ 16 KB
      MgrA.allocRaw(A, Size);
      MgrB.allocRaw(B, Size);
    }
    for (unsigned I = Rng.nextBelow(8); I != 0; --I) {
      Node *NA = rnew<Node>(A);
      Node *NB = rnew<Node>(B);
      NA->Out = NA; // sameregion: walked at cleanup, never counted
      NB->Out = NB;
    }
    ASSERT_EQ(A->allocCount(), B->allocCount());
    ASSERT_EQ(A->requestedBytes(), B->requestedBytes());

    if (Rng.nextBool(0.4)) {
      // Pending external references refuse a reset exactly as they
      // refuse a deletion; both leave the region untouched.
      A->rcAdd(1);
      B->rcAdd(1);
      EXPECT_FALSE(MgrA.resetRegion(A));
      Region *Handle = B;
      EXPECT_FALSE(MgrB.deleteRegionRaw(Handle));
      EXPECT_EQ(Handle, B) << "refusal leaves the handle intact";
      EXPECT_GT(A->allocCount(), 0u) << "refused reset changes nothing";
      A->rcAdd(-1);
      B->rcAdd(-1);
    }

    RsanReport Before = rsanCheckRegion(A);
    if (Before.Checked)
      EXPECT_TRUE(Before.clean()) << "round " << Round << " pre-reset";

    ASSERT_TRUE(MgrA.resetRegion(A));
    ASSERT_TRUE(MgrB.deleteRegionRaw(B));
    B = MgrB.newRegion();

    // The recycled region reads as freshly created: empty, clean
    // metadata, and a terminating Figure-7 walk over the reset page.
    RsanReport After = rsanCheckRegion(A);
    if (After.Checked)
      EXPECT_TRUE(After.clean()) << "round " << Round << " post-reset";
    EXPECT_EQ(A->allocCount(), 0u);
    EXPECT_EQ(A->requestedBytes(), 0u);
    EXPECT_EQ(A->referenceCount(), 0);

    // Observable manager totals stay in lockstep across strategies.
    const RegionStats SA = MgrA.stats();
    const RegionStats SB = MgrB.stats();
    ASSERT_EQ(SA.TotalRegions, SB.TotalRegions);
    ASSERT_EQ(SA.LiveRegions, SB.LiveRegions);
    ASSERT_EQ(SA.TotalAllocs, SB.TotalAllocs);
    ASSERT_EQ(SA.TotalRequestedBytes, SB.TotalRequestedBytes);
    ASSERT_EQ(SA.MaxRegionBytes, SB.MaxRegionBytes);
    ASSERT_EQ(SA.BarrierStores, SB.BarrierStores);
    ASSERT_EQ(SA.ResetRefusals, SB.DeleteFailures)
        << "each strategy's refusals tick its own counter in lockstep";
  }
  // Final deletion proves the recycled region's pages walk to their
  // end markers one last time (the cleanup scan traverses them all).
  EXPECT_TRUE(MgrA.deleteRegionRaw(A));
  EXPECT_TRUE(MgrB.deleteRegionRaw(B));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const ::testing::TestParamInfo<std::uint64_t> &I) {
                           return "seed" + std::to_string(I.param);
                         });

} // namespace
